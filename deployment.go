package lambdanic

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"lambdanic/internal/core"
	"lambdanic/internal/dispatch"
	"lambdanic/internal/faults"
	"lambdanic/internal/gateway"
	"lambdanic/internal/healthd"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/monitor"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

// Deployment is the runnable λ-NIC control plane (paper Fig. 2): a
// workload manager with a Raft-backed control store, a gateway that
// stamps workload IDs and proxies requests with weakly-consistent
// delivery, worker nodes serving installed lambdas, and a memcached
// substitute for the key-value workloads. It runs either on an
// in-memory packet network (examples, tests) or on real UDP sockets
// (the cmd/ daemons).
type Deployment struct {
	manager *core.Manager
	gw      *gateway.Gateway
	workers []*core.Worker
	client  *transport.Endpoint
	mem     *kvstore.Server
	metrics *monitor.Registry

	workerAddrs []net.Addr
	workerNames []string
	closers     []func() error

	// Fault-tolerance wiring (nil/empty unless enabled in the config).
	injector    *faults.Injector
	hbs         []*healthd.Heartbeater
	hd          *healthd.Daemon
	healthEpoch time.Time
}

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig struct {
	// Workers is the number of worker nodes (default 2; the paper's
	// testbed has 4).
	Workers int
	// ControlNodes sizes the Raft control store (default 3).
	ControlNodes int
	// Seed makes the in-memory network deterministic.
	Seed int64
	// LossRate injects packet loss on the in-memory network, exercising
	// the weakly-consistent delivery path (D3).
	LossRate float64
	// FaultRules installs deterministic per-link fault rules (loss,
	// delay, duplication, reordering, partitions) on every node's
	// connection. Leave empty for the unfaulted hot path.
	FaultRules []faults.Rule
	// Health enables the failure-detection loop: workers heartbeat into
	// the control store, and a manager-side daemon evicts workers whose
	// heartbeats stop, re-places their lambdas, and drains the gateway.
	Health bool
	// HealthInterval overrides the heartbeat/poll period (default
	// healthd.DefaultInterval).
	HealthInterval time.Duration
	// Rebalance starts the gateway's elephant-flow rebalancer, fed by
	// healthd's EWMA-smoothed per-worker load. Requires Health.
	Rebalance bool
	// RebalanceInterval overrides the rebalance tick (default 4×
	// the health interval — load reports need a few beats to settle).
	RebalanceInterval time.Duration
}

func (c *DeploymentConfig) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.ControlNodes <= 0 {
		c.ControlNodes = 3
	}
}

// NewDeployment starts a full in-memory deployment.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	cfg.fillDefaults()
	n := transport.NewMemNetwork(cfg.Seed)
	n.LossRate = cfg.LossRate

	d := &Deployment{metrics: monitor.NewRegistry()}
	// The injector exists whenever faults can be applied (rules now, or
	// kill/restart via the health loop); otherwise it stays nil and
	// WrapConn is an identity, keeping the hot path untouched.
	if len(cfg.FaultRules) > 0 || cfg.Health {
		d.injector = faults.NewInjector(cfg.Seed, cfg.FaultRules...)
	}
	wrap := func(conn net.PacketConn, name string) net.PacketConn {
		return d.injector.WrapConn(conn, name)
	}
	fail := func(err error) (*Deployment, error) {
		_ = d.Close()
		return nil, err
	}

	manager, err := core.NewManager(cfg.ControlNodes, cfg.Seed)
	if err != nil {
		return fail(err)
	}
	d.manager = manager

	// memcached substitute on the master node (§6.1.2), with a
	// write-through EMEM-table mirror: the table is the RDMA-readable
	// form of the store, and each worker probes it on the one-sided
	// GET fast path instead of invoking the kv lambda.
	mcConn, err := n.Listen("m1:memcached")
	if err != nil {
		return fail(err)
	}
	store := kvstore.NewStore()
	kvTable := kvstore.NewTable(kvstore.DefaultSlots)
	store.SetMirror(kvTable)
	d.mem = kvstore.NewServer(store, wrap(mcConn, "m1:memcached"))
	d.closers = append(d.closers, d.mem.Close)

	// Worker nodes M2..M(1+n), each with its own memcached client.
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("m%d", i+2)
		kvConn, err := n.Listen(name + ":kv")
		if err != nil {
			return fail(err)
		}
		wConn, err := n.Listen(name)
		if err != nil {
			return fail(err)
		}
		deps := &workloads.Deps{
			KV:      kvstore.NewClient(wrap(kvConn, name+":kv"), transport.MemAddr("m1:memcached")),
			KVTable: kvTable,
		}
		w := core.NewWorker(wrap(wConn, name), deps)
		if i == 0 {
			// One worker feeds the monitoring engine (per-node scrape in
			// a real cluster).
			if err := w.EnableMetrics(d.metrics); err != nil {
				return fail(err)
			}
		}
		d.workers = append(d.workers, w)
		d.workerAddrs = append(d.workerAddrs, transport.MemAddr(name))
		d.workerNames = append(d.workerNames, name)
		d.closers = append(d.closers, w.Close, kvConn.Close)
	}

	gwConn, err := n.Listen("m1:gateway")
	if err != nil {
		return fail(err)
	}
	d.gw = gateway.New(wrap(gwConn, "m1:gateway"))
	d.closers = append(d.closers, d.gw.Close)
	if err := d.gw.EnableMetrics(d.metrics); err != nil {
		return fail(err)
	}
	if err := manager.EnableMetrics(d.metrics); err != nil {
		return fail(err)
	}

	// The gateway learns routes through the control store's placement
	// watch (§6.1.1: etcd syncs lambda state with the gateway).
	manager.WatchPlacements(func(p core.Placement) {
		addrs := make([]net.Addr, 0, len(p.Workers))
		for _, w := range p.Workers {
			addrs = append(addrs, transport.MemAddr(w))
		}
		d.gw.SetRoute(p.ID, addrs)
	})

	cliConn, err := n.Listen("client")
	if err != nil {
		return fail(err)
	}
	d.client = transport.NewEndpoint(wrap(cliConn, "client"), nil,
		transport.WithTimeout(250*time.Millisecond), transport.WithRetries(8))
	d.closers = append(d.closers, d.client.Close)

	if cfg.Health {
		if err := d.startHealth(cfg); err != nil {
			return fail(err)
		}
	}
	return d, nil
}

// startHealth wires the failure-detection loop: per-worker heartbeaters
// publishing into the control store, and a manager-side daemon that
// polls them, detects silence, and on death evicts the worker from
// placements and drains it from the gateway.
func (d *Deployment) startHealth(cfg DeploymentConfig) error {
	interval := cfg.HealthInterval
	if interval <= 0 {
		interval = healthd.DefaultInterval
	}
	for i, w := range d.workers {
		w := w
		hb := healthd.NewHeartbeater(d.workerNames[i], interval,
			w.Inflight, d.manager.PutHealth)
		hb.Start()
		d.hbs = append(d.hbs, hb)
	}
	epoch := time.Now()
	d.healthEpoch = epoch
	det := healthd.NewDetector(healthd.Config{Interval: interval})
	d.hd = healthd.NewDaemon(det,
		func() []healthd.Heartbeat {
			hbs, err := d.manager.HealthSnapshot()
			if err != nil {
				return nil
			}
			return hbs
		},
		func() time.Duration { return time.Since(epoch) })
	if err := d.hd.EnableMetrics(d.metrics); err != nil {
		return err
	}
	d.hd.OnTransition = func(tr healthd.Transition) {
		if tr.To != healthd.StatusDead {
			return
		}
		// Re-place first so the gateway's watch installs the surviving
		// route, then drain in-flight calls to the dead worker.
		_ = d.manager.EvictWorker(tr.Worker)
		d.gw.EvictWorker(transport.MemAddr(tr.Worker))
	}
	d.hd.Start(interval)
	d.closers = append(d.closers, func() error {
		d.hd.Stop()
		for _, hb := range d.hbs {
			hb.Stop()
		}
		return nil
	})
	if cfg.Rebalance {
		// The rebalancer consumes healthd's smoothed load: flows from
		// overloaded workers' elephants migrate to the least-loaded
		// survivors. Dead or suspect workers are excluded from the
		// report so migrations never target them.
		every := cfg.RebalanceInterval
		if every <= 0 {
			every = 4 * interval
		}
		loads := func() []dispatch.Load {
			var out []dispatch.Load
			for _, wh := range det.Snapshot(time.Since(epoch)) {
				if wh.Status != healthd.StatusAlive {
					continue
				}
				out = append(out, dispatch.Load{Worker: wh.Worker, Load: wh.SmoothedLoad})
			}
			return out
		}
		stop := d.gw.StartRebalancer(gateway.RebalanceConfig{Every: every, Loads: loads})
		d.closers = append(d.closers, func() error { stop(); return nil })
	}
	return nil
}

// Health exposes the failure detector (nil unless Health was enabled).
func (d *Deployment) Health() *healthd.Detector {
	if d.hd == nil {
		return nil
	}
	return d.hd.Detector()
}

// HealthReport returns the detector's per-worker view at the current
// wall-clock instant: status, last-heartbeat age, suspicion level. Nil
// unless Health was enabled.
func (d *Deployment) HealthReport() []healthd.WorkerHealth {
	if d.hd == nil {
		return nil
	}
	return d.hd.Detector().Snapshot(time.Since(d.healthEpoch))
}

// Faults exposes the deployment's injector (nil unless fault rules or
// the health loop were enabled).
func (d *Deployment) Faults() *faults.Injector { return d.injector }

// Gateway exposes the gateway (routes, failover counters).
func (d *Deployment) Gateway() *gateway.Gateway { return d.gw }

// KillWorker crash-stops a worker: its transport goes silent in both
// directions and its heartbeats stop, so healthd detects and evicts it.
func (d *Deployment) KillWorker(i int) error {
	if i < 0 || i >= len(d.workers) {
		return fmt.Errorf("lambdanic: no worker %d", i)
	}
	if d.injector == nil {
		return errors.New("lambdanic: deployment has no fault injector (enable Health or FaultRules)")
	}
	name := d.workerNames[i]
	d.injector.SetDown(name, true)
	d.injector.SetDown(name+":kv", true)
	if i < len(d.hbs) {
		d.hbs[i].Pause(true)
	}
	return nil
}

// RestartWorker brings a killed worker back; its next heartbeat revives
// it in the detector, and re-deploying or re-recording placements
// restores its routes.
func (d *Deployment) RestartWorker(i int) error {
	if i < 0 || i >= len(d.workers) {
		return fmt.Errorf("lambdanic: no worker %d", i)
	}
	if d.injector == nil {
		return errors.New("lambdanic: deployment has no fault injector (enable Health or FaultRules)")
	}
	name := d.workerNames[i]
	d.injector.SetDown(name, false)
	d.injector.SetDown(name+":kv", false)
	if i < len(d.hbs) {
		d.hbs[i].Pause(false)
	}
	return nil
}

// Deploy registers a workload with the manager, installs it on every
// worker, and records the placement in the control store; the gateway
// picks the route up through its placement watch.
func (d *Deployment) Deploy(w *Workload) error {
	if _, err := d.manager.Register(w); err != nil {
		return err
	}
	names := make([]string, 0, len(d.workers))
	for i, worker := range d.workers {
		if err := worker.Install(w); err != nil {
			return err
		}
		names = append(names, d.workerAddrs[i].String())
	}
	return d.manager.RecordPlacement(w.Name, names)
}

// Invoke calls a deployed lambda through the gateway.
func (d *Deployment) Invoke(ctx context.Context, id uint32, payload []byte) ([]byte, error) {
	return d.client.Call(ctx, transport.MemAddr("m1:gateway"), id, payload)
}

// Manager exposes the workload manager (placements, compilation).
func (d *Deployment) Manager() *core.Manager { return d.manager }

// Metrics returns the deployment's monitoring registry (gateway and
// first-worker instrumentation), renderable in the Prometheus text
// format.
func (d *Deployment) Metrics() *monitor.Registry { return d.metrics }

// GatewayStats reports forwarded and unrouted request counts.
func (d *Deployment) GatewayStats() (forwarded, unrouted uint64) {
	return d.gw.Forwarded(), d.gw.Unrouted()
}

// Close tears the deployment down.
func (d *Deployment) Close() error {
	var firstErr error
	for i := len(d.closers) - 1; i >= 0; i-- {
		if err := d.closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ErrDeploymentClosed is returned by operations on a closed deployment.
var ErrDeploymentClosed = errors.New("lambdanic: deployment closed")
