package lambdanic

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"lambdanic/internal/core"
	"lambdanic/internal/gateway"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/monitor"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

// Deployment is the runnable λ-NIC control plane (paper Fig. 2): a
// workload manager with a Raft-backed control store, a gateway that
// stamps workload IDs and proxies requests with weakly-consistent
// delivery, worker nodes serving installed lambdas, and a memcached
// substitute for the key-value workloads. It runs either on an
// in-memory packet network (examples, tests) or on real UDP sockets
// (the cmd/ daemons).
type Deployment struct {
	manager *core.Manager
	gw      *gateway.Gateway
	workers []*core.Worker
	client  *transport.Endpoint
	mem     *kvstore.Server
	metrics *monitor.Registry

	workerAddrs []net.Addr
	closers     []func() error
}

// DeploymentConfig parameterizes NewDeployment.
type DeploymentConfig struct {
	// Workers is the number of worker nodes (default 2; the paper's
	// testbed has 4).
	Workers int
	// ControlNodes sizes the Raft control store (default 3).
	ControlNodes int
	// Seed makes the in-memory network deterministic.
	Seed int64
	// LossRate injects packet loss on the in-memory network, exercising
	// the weakly-consistent delivery path (D3).
	LossRate float64
}

func (c *DeploymentConfig) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.ControlNodes <= 0 {
		c.ControlNodes = 3
	}
}

// NewDeployment starts a full in-memory deployment.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	cfg.fillDefaults()
	n := transport.NewMemNetwork(cfg.Seed)
	n.LossRate = cfg.LossRate

	d := &Deployment{metrics: monitor.NewRegistry()}
	fail := func(err error) (*Deployment, error) {
		_ = d.Close()
		return nil, err
	}

	manager, err := core.NewManager(cfg.ControlNodes, cfg.Seed)
	if err != nil {
		return fail(err)
	}
	d.manager = manager

	// memcached substitute on the master node (§6.1.2).
	mcConn, err := n.Listen("m1:memcached")
	if err != nil {
		return fail(err)
	}
	d.mem = kvstore.NewServer(kvstore.NewStore(), mcConn)
	d.closers = append(d.closers, d.mem.Close)

	// Worker nodes M2..M(1+n), each with its own memcached client.
	for i := 0; i < cfg.Workers; i++ {
		name := fmt.Sprintf("m%d", i+2)
		kvConn, err := n.Listen(name + ":kv")
		if err != nil {
			return fail(err)
		}
		wConn, err := n.Listen(name)
		if err != nil {
			return fail(err)
		}
		deps := &workloads.Deps{KV: kvstore.NewClient(kvConn, transport.MemAddr("m1:memcached"))}
		w := core.NewWorker(wConn, deps)
		if i == 0 {
			// One worker feeds the monitoring engine (per-node scrape in
			// a real cluster).
			if err := w.EnableMetrics(d.metrics); err != nil {
				return fail(err)
			}
		}
		d.workers = append(d.workers, w)
		d.workerAddrs = append(d.workerAddrs, transport.MemAddr(name))
		d.closers = append(d.closers, w.Close, kvConn.Close)
	}

	gwConn, err := n.Listen("m1:gateway")
	if err != nil {
		return fail(err)
	}
	d.gw = gateway.New(gwConn)
	d.closers = append(d.closers, d.gw.Close)
	if err := d.gw.EnableMetrics(d.metrics); err != nil {
		return fail(err)
	}

	// The gateway learns routes through the control store's placement
	// watch (§6.1.1: etcd syncs lambda state with the gateway).
	manager.WatchPlacements(func(p core.Placement) {
		addrs := make([]net.Addr, 0, len(p.Workers))
		for _, w := range p.Workers {
			addrs = append(addrs, transport.MemAddr(w))
		}
		d.gw.SetRoute(p.ID, addrs)
	})

	cliConn, err := n.Listen("client")
	if err != nil {
		return fail(err)
	}
	d.client = transport.NewEndpoint(cliConn, nil,
		transport.WithTimeout(250*time.Millisecond), transport.WithRetries(8))
	d.closers = append(d.closers, d.client.Close)
	return d, nil
}

// Deploy registers a workload with the manager, installs it on every
// worker, and records the placement in the control store; the gateway
// picks the route up through its placement watch.
func (d *Deployment) Deploy(w *Workload) error {
	if _, err := d.manager.Register(w); err != nil {
		return err
	}
	names := make([]string, 0, len(d.workers))
	for i, worker := range d.workers {
		if err := worker.Install(w); err != nil {
			return err
		}
		names = append(names, d.workerAddrs[i].String())
	}
	return d.manager.RecordPlacement(w.Name, names)
}

// Invoke calls a deployed lambda through the gateway.
func (d *Deployment) Invoke(ctx context.Context, id uint32, payload []byte) ([]byte, error) {
	return d.client.Call(ctx, transport.MemAddr("m1:gateway"), id, payload)
}

// Manager exposes the workload manager (placements, compilation).
func (d *Deployment) Manager() *core.Manager { return d.manager }

// Metrics returns the deployment's monitoring registry (gateway and
// first-worker instrumentation), renderable in the Prometheus text
// format.
func (d *Deployment) Metrics() *monitor.Registry { return d.metrics }

// GatewayStats reports forwarded and unrouted request counts.
func (d *Deployment) GatewayStats() (forwarded, unrouted uint64) {
	return d.gw.Forwarded(), d.gw.Unrouted()
}

// Close tears the deployment down.
func (d *Deployment) Close() error {
	var firstErr error
	for i := len(d.closers) - 1; i >= 0; i-- {
		if err := d.closers[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ErrDeploymentClosed is returned by operations on a closed deployment.
var ErrDeploymentClosed = errors.New("lambdanic: deployment closed")
