package mcc

import "lambdanic/internal/nicsim"

// ProgramFootprint is a program's link-time resource demand: the static
// instruction count charged against each NPU core's instruction store,
// and the per-level memory bytes its objects pin. It is the quantity
// the placement engine scores NIC candidacy from, and what experiments
// previously re-derived ad hoc from StaticInstructions + MemoryBytes.
type ProgramFootprint struct {
	// Instructions is the image code size (static instructions), the
	// value checked against NICConfig.InstrStorePerCore at load time.
	Instructions int
	// Memory is per-level object memory demand in bytes.
	Memory map[nicsim.MemLevel]int
}

// Footprint computes the link-time footprint of a program without
// linking it: instruction count plus per-level object placement.
func Footprint(p *Program) ProgramFootprint {
	fp := ProgramFootprint{
		Instructions: p.StaticInstructions(),
		Memory:       make(map[nicsim.MemLevel]int, 4),
	}
	for _, o := range p.Objects {
		fp.Memory[o.EffectiveLevel()] += o.Size
	}
	return fp
}

// Footprint reports the linked image's footprint (same quantities as
// Footprint(e.Program())).
func (e *Executable) Footprint() ProgramFootprint { return Footprint(e.prog) }

// TotalMemoryBytes sums the per-level demand.
func (f ProgramFootprint) TotalMemoryBytes() int {
	total := 0
	for _, b := range f.Memory {
		total += b
	}
	return total
}

// InstrPressure is the instruction-store occupancy fraction against a
// per-core store of the given size (>1 means the image does not fit).
func (f ProgramFootprint) InstrPressure(storePerCore int) float64 {
	if storePerCore <= 0 {
		return 1
	}
	return float64(f.Instructions) / float64(storePerCore)
}

// FastFraction is the fraction of the program's memory demand resident
// in the fast on-chip levels (core-local + CTM). A program whose state
// lives mostly in EMEM gains less from NIC residency: every access pays
// external-DRAM latency either way.
func (f ProgramFootprint) FastFraction() float64 {
	total := f.TotalMemoryBytes()
	if total == 0 {
		return 1
	}
	fast := f.Memory[nicsim.MemLocal] + f.Memory[nicsim.MemCTM]
	return float64(fast) / float64(total)
}
