package mcc

import (
	"fmt"
	"sort"
	"strings"

	"lambdanic/internal/cluster"
	"lambdanic/internal/nicsim"
)

// This file implements the paper's three target-specific optimizations
// (§5.1) whose combined effect Figure 9 reports:
//
//   - lambda coalescing: duplicate logic brought in by separately
//     compiled lambdas is deduplicated into shared helper functions,
//     and unreachable code is eliminated;
//   - match reduction: per-lambda parse and match tables are composed
//     into one if-else dispatch sequence, removing duplicate match
//     fields, per-table lookup machinery, and parsers for headers no
//     lambda uses;
//   - memory stratification: objects are placed into LMEM/CTM/IMEM/EMEM
//     by size and user pragma, and accesses to near memories drop their
//     wide-address setup instructions.

// MatchTable is one P4-style table in the match stage (paper Listing
// 3): match on a header field, dispatch to a lambda function.
type MatchTable struct {
	// Name identifies the table (e.g. "route_web_server").
	Name string
	// Field is the header slot the table matches on.
	Field int64
	// Entries map matched values to called functions.
	Entries []MatchEntry
}

// MatchEntry is one table row.
type MatchEntry struct {
	Value  int64
	Action string
}

// MatchPlan is the declarative description of the parse and match
// stages, attached to a Program by the Match+Lambda composer. Codegen
// turns it into the __match function; match reduction rewrites it.
type MatchPlan struct {
	Tables []MatchTable
	// Parsers lists generated header-parser function names in parse
	// order.
	Parsers []string
	// UsedParsers marks parsers whose header some lambda actually
	// reads; match reduction drops the rest.
	UsedParsers map[string]bool
	// Reduced records that match reduction ran.
	Reduced bool
}

func (m *MatchPlan) clone() *MatchPlan {
	if m == nil {
		return nil
	}
	cp := &MatchPlan{Reduced: m.Reduced}
	for _, t := range m.Tables {
		entries := make([]MatchEntry, len(t.Entries))
		copy(entries, t.Entries)
		cp.Tables = append(cp.Tables, MatchTable{Name: t.Name, Field: t.Field, Entries: entries})
	}
	cp.Parsers = append(cp.Parsers, m.Parsers...)
	if m.UsedParsers != nil {
		cp.UsedParsers = make(map[string]bool, len(m.UsedParsers))
		for k, v := range m.UsedParsers {
			cp.UsedParsers[k] = v
		}
	}
	return cp
}

// tablePreambleInstrs is the per-table lookup machinery a naive table
// apply emits (key hashing and way selection, emulating a CAM lookup on
// NPUs). Reduced if-else dispatch does not need it.
const tablePreambleInstrs = 30

// GenerateMatch synthesizes the __match function from the plan. In
// naive form each table keeps its own preamble and key extraction; in
// reduced form tables matching the same field are merged into a single
// if-else chain with one key extraction (paper §5.1: "the P4 tables are
// converted into if-else sequences").
func GenerateMatch(plan *MatchPlan) (*Function, error) {
	b := NewBuilder(MatchFunction)
	// Run the parsers first (parse stage precedes match, Fig. 3).
	for _, p := range plan.Parsers {
		if plan.Reduced && plan.UsedParsers != nil && !plan.UsedParsers[p] {
			continue
		}
		b.Call(p)
	}
	if plan.Reduced {
		generateReducedMatch(b, plan)
	} else {
		generateNaiveMatch(b, plan)
	}
	// Fall-through: no table matched; hand the packet to the host OS.
	b.MovImm(1, StatusToHost)
	b.Ret(1)
	return b.Build()
}

func generateNaiveMatch(b *Builder, plan *MatchPlan) {
	for ti, t := range plan.Tables {
		// Key extraction for this table.
		b.HdrGet(2, t.Field)
		// Table-apply machinery: key mix + way select.
		b.MovImm(3, int64(0x9E3779B9))
		b.Mul(3, 2, 3)
		b.MovImm(4, 16)
		b.Shr(3, 3, 4)
		b.Xor(3, 3, 2)
		for i := 0; i < tablePreambleInstrs-5; i++ {
			b.Nop() // remaining fixed lookup machinery
		}
		for ei, entry := range t.Entries {
			skip := fmt.Sprintf("t%d_e%d_skip", ti, ei)
			b.MovImm(5, entry.Value)
			b.Eq(6, 2, 5)
			b.Brz(6, skip)
			b.Call(entry.Action)
			b.MovImm(1, StatusForward)
			b.Ret(1)
			b.Label(skip)
		}
	}
}

// matchGroup is one merged per-field dispatch group of the reduced
// match stage; the codegen below and the compiled engine's jump table
// (compile.go) must agree on it exactly.
type matchGroup struct {
	field   int64
	entries []MatchEntry
}

// groupMatchTables merges tables by match field, preserving order of
// first appearance and dropping duplicate values within a group.
func groupMatchTables(plan *MatchPlan) []*matchGroup {
	var groups []*matchGroup
	index := make(map[int64]*matchGroup)
	for _, t := range plan.Tables {
		g, ok := index[t.Field]
		if !ok {
			g = &matchGroup{field: t.Field}
			index[t.Field] = g
			groups = append(groups, g)
		}
		for _, e := range t.Entries {
			dup := false
			for _, have := range g.entries {
				if have.Value == e.Value {
					dup = true
					break
				}
			}
			if !dup {
				g.entries = append(g.entries, e)
			}
		}
	}
	return groups
}

func generateReducedMatch(b *Builder, plan *MatchPlan) {
	for gi, g := range groupMatchTables(plan) {
		b.HdrGet(2, g.field) // one key extraction per field
		for ei, entry := range g.entries {
			skip := fmt.Sprintf("g%d_e%d_skip", gi, ei)
			b.MovImm(5, entry.Value)
			b.Eq(6, 2, 5)
			b.Brz(6, skip)
			b.Call(entry.Action)
			b.MovImm(1, StatusForward)
			b.Ret(1)
			b.Label(skip)
		}
	}
}

// PassResult records one optimization step for Figure 9.
type PassResult struct {
	// Pass is the optimization name.
	Pass string
	// Instructions is the program size after the pass.
	Instructions int
	// Saved is the instruction count removed by this pass.
	Saved int
}

// OptimizeConfig selects passes and provides placement budgets.
type OptimizeConfig struct {
	Coalesce    bool
	ReduceMatch bool
	Stratify    bool
	// NIC provides memory capacities for stratification; zero values
	// use cluster.Default().
	NIC cluster.NICConfig
}

// AllPasses enables every optimization.
func AllPasses() OptimizeConfig {
	return OptimizeConfig{Coalesce: true, ReduceMatch: true, Stratify: true}
}

// Optimize applies the configured passes in the paper's order and
// returns the optimized copy plus the per-pass size trajectory
// (Figure 9). The input program is not modified.
func Optimize(p *Program, cfg OptimizeConfig) (*Program, []PassResult, error) {
	if cfg.NIC.NPUCores() == 0 {
		cfg.NIC = cluster.Default().NIC
	}
	out := p.Clone()
	results := []PassResult{{Pass: "unoptimized", Instructions: out.StaticInstructions()}}
	prev := out.StaticInstructions()

	apply := func(name string, enabled bool, pass func(*Program) error) error {
		if !enabled {
			return nil
		}
		if err := pass(out); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		now := out.StaticInstructions()
		results = append(results, PassResult{Pass: name, Instructions: now, Saved: prev - now})
		prev = now
		return nil
	}

	if err := apply("lambda coalescing", cfg.Coalesce, coalesceLambdas); err != nil {
		return nil, nil, err
	}
	if err := apply("match reduction", cfg.ReduceMatch, reduceMatch); err != nil {
		return nil, nil, err
	}
	if err := apply("memory stratification", cfg.Stratify, func(pr *Program) error {
		return stratifyMemory(pr, cfg.NIC)
	}); err != nil {
		return nil, nil, err
	}
	if err := out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("mcc: optimized program invalid: %w", err)
	}
	return out, results, nil
}

// coalesceLambdas deduplicates functions with identical bodies
// (separately compiled lambdas each carry private copies of shared
// helpers) and removes code unreachable from any entry point.
func coalesceLambdas(p *Program) error {
	// Map canonical body -> first function name carrying it.
	canon := make(map[string]string)
	replace := make(map[string]string)
	for _, f := range p.Funcs {
		key := bodyKey(f)
		if first, ok := canon[key]; ok {
			replace[f.Name] = first
			continue
		}
		canon[key] = f.Name
	}
	// Entry functions must survive under their own IDs even when their
	// bodies coincide; only non-entry helpers are replaced.
	entryNames := make(map[string]bool, len(p.Entries))
	for _, fn := range p.Entries {
		entryNames[fn] = true
	}
	for dup := range replace {
		if entryNames[dup] || dup == MatchFunction {
			delete(replace, dup)
		}
	}
	// Rewrite call sites.
	for _, f := range p.Funcs {
		for i := range f.Body {
			if f.Body[i].Op == OpCall {
				if target, ok := replace[f.Body[i].Sym]; ok {
					f.Body[i].Sym = target
				}
			}
		}
	}
	// Rewrite match-plan actions.
	if p.Match != nil {
		for ti := range p.Match.Tables {
			for ei := range p.Match.Tables[ti].Entries {
				if target, ok := replace[p.Match.Tables[ti].Entries[ei].Action]; ok {
					p.Match.Tables[ti].Entries[ei].Action = target
				}
			}
		}
	}
	removeDeadFunctions(p)
	return nil
}

// bodyKey canonicalizes a function body for structural comparison.
func bodyKey(f *Function) string {
	var sb strings.Builder
	for _, in := range f.Body {
		fmt.Fprintf(&sb, "%d,%d,%d,%d,%d,%s,%s;", in.Op, in.Rd, in.Rs1, in.Rs2, in.Imm, in.Sym, in.Sym2)
	}
	return sb.String()
}

// removeDeadFunctions drops functions unreachable from entries and
// __match (dead-code elimination, §5.1).
func removeDeadFunctions(p *Program) {
	reachable := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if reachable[name] {
			return
		}
		reachable[name] = true
		f := p.Func(name)
		if f == nil {
			return
		}
		for _, in := range f.Body {
			if in.Op == OpCall {
				visit(in.Sym)
			}
		}
	}
	if p.Func(MatchFunction) != nil {
		visit(MatchFunction)
	}
	for _, fn := range p.Entries {
		visit(fn)
	}
	kept := p.Funcs[:0]
	for _, f := range p.Funcs {
		if reachable[f.Name] {
			kept = append(kept, f)
		}
	}
	p.Funcs = kept
}

// reduceMatch regenerates the __match function in reduced form: merged
// tables, single key extraction per field, no per-table lookup
// machinery, and parsers for unused headers dropped.
func reduceMatch(p *Program) error {
	if p.Match == nil || p.Func(MatchFunction) == nil {
		return nil // nothing to reduce (no synthesized match stage)
	}
	p.Match.Reduced = true
	nf, err := GenerateMatch(p.Match)
	if err != nil {
		return err
	}
	for i, f := range p.Funcs {
		if f.Name == MatchFunction {
			p.Funcs[i] = nf
			break
		}
	}
	removeDeadFunctions(p)
	return nil
}

// stratifyMemory assigns each object a memory level by pragma and size
// (§4.2.1 D2, §5.1), then strength-reduces the wide-address setup for
// near-memory accesses: a `movi rX, 0` feeding only the address operand
// of a LMEM/CTM access is folded into the access.
func stratifyMemory(p *Program, nic cluster.NICConfig) error {
	// Budgets: keep a reserve for the packet buffers and basic NIC
	// operations (§3.1c: "reserve ample SmartNIC resources").
	localBudget := nic.LocalMemPerThread / 2
	ctmBudget := nic.CTMPerIsland / 2
	imemBudget := nic.IMEMBytes / 2

	// Deterministic placement order: hot first, then by size ascending.
	// Core-local memory is reserved for hot-hinted objects (it is tiny
	// and register-addressed); everything else descends CTM -> IMEM ->
	// EMEM by size.
	objs := make([]*Object, len(p.Objects))
	copy(objs, p.Objects)
	sort.SliceStable(objs, func(i, j int) bool {
		hi, hj := objs[i].Hint == HintHot, objs[j].Hint == HintHot
		if hi != hj {
			return hi
		}
		if objs[i].Size != objs[j].Size {
			return objs[i].Size < objs[j].Size
		}
		return objs[i].Name < objs[j].Name
	})
	for _, o := range objs {
		switch {
		case o.Hint == HintCold:
			o.Level = nicsim.MemEMEM
		case o.Hint == HintHot && o.Size <= localBudget:
			o.Level = nicsim.MemLocal
			localBudget -= o.Size
		case o.Size <= ctmBudget:
			o.Level = nicsim.MemCTM
			ctmBudget -= o.Size
		case o.Size <= imemBudget:
			o.Level = nicsim.MemIMEM
			imemBudget -= o.Size
		default:
			o.Level = nicsim.MemEMEM
		}
	}

	// Only LMEM supports direct addressing; CTM and beyond still need
	// the base register.
	near := func(name string) bool {
		o := p.Object(name)
		return o != nil && o.EffectiveLevel() == nicsim.MemLocal
	}
	for _, f := range p.Funcs {
		f.Body = foldNearAddressSetup(f.Body, near)
	}
	return nil
}

// foldNearAddressSetup removes `movi rX, 0` instructions whose only
// consumer is the address register of an immediately following near-
// memory access: direct addressing needs no base register on LMEM/CTM,
// so the access is rewritten to RegZero. The fold only applies when a
// conservative forward scan proves rX is dead afterwards (rewritten
// before any read, with no intervening control flow). Branch targets
// are remapped.
func foldNearAddressSetup(body []Instr, near func(string) bool) []Instr {
	remove := make([]bool, len(body))
	for i := 0; i+1 < len(body); i++ {
		cur := body[i]
		next := &body[i+1]
		if cur.Op != OpMovImm || cur.Imm != 0 || cur.Rd == RegZero {
			continue
		}
		isAccess := next.Op == OpLoad || next.Op == OpStore || next.Op == OpLoadW || next.Op == OpStoreW
		if !isAccess || next.Rs1 != cur.Rd || !near(next.Sym) {
			continue
		}
		if !deadAfter(body, i+1, cur.Rd) {
			continue
		}
		remove[i] = true
		next.Rs1 = RegZero
	}
	// Build old->new index map.
	newIdx := make([]int, len(body)+1)
	n := 0
	for i := range body {
		newIdx[i] = n
		if !remove[i] {
			n++
		}
	}
	newIdx[len(body)] = n
	out := make([]Instr, 0, n)
	for i, in := range body {
		if remove[i] {
			continue
		}
		switch in.Op {
		case OpJmp, OpBrz, OpBrnz:
			in.Imm = int64(newIdx[in.Imm])
		}
		out = append(out, in)
	}
	return out
}

// deadAfter reports whether register r is provably dead after the
// instruction at index idx: every path from idx+1 rewrites r before
// reading it, established by a linear scan that gives up (returns
// false) at any branch or call.
func deadAfter(body []Instr, idx int, r Reg) bool {
	// The access at idx may itself rewrite r (a load into its own
	// address register).
	if writesReg(&body[idx], r) {
		return true
	}
	for i := idx + 1; i < len(body); i++ {
		in := &body[i]
		switch in.Op {
		case OpJmp, OpBrz, OpBrnz, OpCall:
			return false // control flow or callee may observe r
		case OpRet:
			return !readsReg(in, r)
		}
		if readsReg(in, r) {
			return false
		}
		if writesReg(in, r) {
			return true
		}
	}
	return true // fell off the end: registers are dead
}

// writesReg reports whether the instruction defines r.
func writesReg(in *Instr, r Reg) bool {
	switch in.Op {
	case OpMovImm, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpEq, OpLt, OpLoad, OpLoadW, OpHdrGet,
		OpPktLoad, OpPktLen, OpHash:
		return in.Rd == r
	default:
		return false
	}
}

// readsReg reports whether the instruction uses r as a source.
func readsReg(in *Instr, r Reg) bool {
	switch in.Op {
	case OpMov, OpBrz, OpBrnz, OpLoad, OpLoadW, OpHdrSet, OpPktLoad,
		OpEmitByte, OpRet:
		return in.Rs1 == r
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq,
		OpLt, OpStore, OpStoreW, OpEmit, OpHash:
		return in.Rs1 == r || in.Rs2 == r
	case OpMemcpy, OpGray:
		return in.Rd == r || in.Rs1 == r || in.Rs2 == r
	default:
		return false
	}
}
