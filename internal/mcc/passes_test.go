package mcc

import (
	"testing"
	"testing/quick"

	"lambdanic/internal/cluster"
	"lambdanic/internal/nicsim"
)

// nicsimTestCfg returns the default NIC configuration for cycle
// comparisons.
func nicsimTestCfg() cluster.NICConfig { return cluster.Default().NIC }

// helperBody builds a helper function with the given name whose body is
// identical across names (so duplicates coalesce), padded to n
// instructions.
func helperBody(name string, n int) *Function {
	b := NewBuilder(name)
	b.MovImm(4, 1)
	b.MovImm(5, 2)
	b.Add(6, 4, 5)
	for len(b.body) < n-1 {
		b.Nop()
	}
	b.Ret(6)
	return b.MustBuild()
}

// buildMatchProgram assembles a program with two lambdas that each
// carry a private copy of the same helper, plus a naive match stage
// with one table per lambda and two parsers (one unused).
func buildMatchProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()

	// Parsers: ethernet-ish and an unused tunnel header.
	pe := NewBuilder("__parse_lambda_hdr")
	pe.PktLen(2)
	pe.HdrSet(FieldPayloadLen, 2)
	pe.Ret(2)
	pt := NewBuilder("__parse_tunnel_hdr")
	for i := 0; i < 10; i++ {
		pt.Nop()
	}
	pt.Ret(0)

	for _, f := range []*Function{pe.MustBuild(), pt.MustBuild(),
		helperBody("helper_copy_a", 40), helperBody("helper_copy_b", 40)} {
		if err := p.AddFunc(f); err != nil {
			t.Fatal(err)
		}
	}

	la := NewBuilder("lambda_a")
	la.Call("helper_copy_a")
	la.MovImm(1, 0)
	la.Load(2, "obj_a", 1, 0)
	la.EmitByte(2)
	la.Ret(2)
	lb := NewBuilder("lambda_b")
	lb.Call("helper_copy_b")
	lb.MovImm(1, 0)
	lb.Load(2, "obj_b", 1, 0)
	lb.EmitByte(2)
	lb.Ret(2)
	if err := p.AddFunc(la.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(lb.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddObject(&Object{Name: "obj_a", Size: 64, Init: []byte{7}, Hint: HintHot}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddObject(&Object{Name: "obj_b", Size: 64, Init: []byte{9}, Hint: HintHot}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(1, "lambda_a"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(2, "lambda_b"); err != nil {
		t.Fatal(err)
	}

	p.Match = &MatchPlan{
		Tables: []MatchTable{
			{Name: "route_a", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 1, Action: "lambda_a"}}},
			{Name: "route_b", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 2, Action: "lambda_b"}}},
		},
		Parsers:     []string{"__parse_lambda_hdr", "__parse_tunnel_hdr"},
		UsedParsers: map[string]bool{"__parse_lambda_hdr": true},
	}
	mf, err := GenerateMatch(p.Match)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(mf); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("program invalid: %v", err)
	}
	return p
}

func execLambda(t *testing.T, p *Program, id uint32) []byte {
	t.Helper()
	e, err := Link(p, LinkOptions{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	resp, err := e.Execute(&nicsim.Request{LambdaID: id, Payload: []byte("xy"), Packets: 1})
	if err != nil {
		t.Fatalf("Execute(%d): %v", id, err)
	}
	return resp.Payload
}

func TestCoalescingDeduplicatesHelpers(t *testing.T) {
	p := buildMatchProgram(t)
	before := p.StaticInstructions()
	opt, results, err := Optimize(p, OptimizeConfig{Coalesce: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	after := opt.StaticInstructions()
	if after >= before {
		t.Errorf("coalescing did not shrink program: %d -> %d", before, after)
	}
	// One 40-instruction helper copy must be gone.
	if saved := before - after; saved != 40 {
		t.Errorf("saved = %d, want 40 (one duplicate helper)", saved)
	}
	if len(results) != 2 || results[1].Pass != "lambda coalescing" {
		t.Errorf("results = %+v", results)
	}
	// The original program is untouched.
	if p.StaticInstructions() != before {
		t.Error("Optimize modified its input")
	}
	// Behaviour preserved.
	if got := execLambda(t, opt, 1); len(got) != 1 || got[0] != 7 {
		t.Errorf("lambda_a output = %v", got)
	}
	if got := execLambda(t, opt, 2); len(got) != 1 || got[0] != 9 {
		t.Errorf("lambda_b output = %v", got)
	}
}

func TestMatchReductionMergesTablesAndDropsParsers(t *testing.T) {
	p := buildMatchProgram(t)
	before := p.StaticInstructions()
	opt, _, err := Optimize(p, OptimizeConfig{ReduceMatch: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	after := opt.StaticInstructions()
	if after >= before {
		t.Errorf("match reduction did not shrink program: %d -> %d", before, after)
	}
	if opt.Func("__parse_tunnel_hdr") != nil {
		t.Error("unused parser survived match reduction")
	}
	if opt.Func("__parse_lambda_hdr") == nil {
		t.Error("used parser was removed")
	}
	if !opt.Match.Reduced {
		t.Error("plan not marked reduced")
	}
	// Dispatch still works for both lambdas.
	if got := execLambda(t, opt, 1); len(got) != 1 || got[0] != 7 {
		t.Errorf("lambda_a output = %v", got)
	}
	if got := execLambda(t, opt, 2); len(got) != 1 || got[0] != 9 {
		t.Errorf("lambda_b output = %v", got)
	}
}

func TestStratificationPlacesAndFolds(t *testing.T) {
	p := buildMatchProgram(t)
	before := p.StaticInstructions()
	opt, _, err := Optimize(p, OptimizeConfig{Stratify: true})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	// Small objects move off EMEM.
	for _, name := range []string{"obj_a", "obj_b"} {
		o := opt.Object(name)
		if o.EffectiveLevel() == nicsim.MemEMEM {
			t.Errorf("%s still in EMEM after stratification", name)
		}
	}
	// The movi-0/load pattern in each lambda folds: 2 instructions.
	if saved := before - opt.StaticInstructions(); saved != 2 {
		t.Errorf("fold saved = %d, want 2", saved)
	}
	// Behaviour preserved.
	if got := execLambda(t, opt, 1); len(got) != 1 || got[0] != 7 {
		t.Errorf("lambda_a output = %v", got)
	}
}

func TestStratificationRespectsColdHint(t *testing.T) {
	b := NewBuilder("f")
	b.Ret(0)
	p := singleEntry(t, b.MustBuild(),
		&Object{Name: "cold", Size: 8, Hint: HintCold},
		&Object{Name: "hot", Size: 8, Hint: HintHot},
	)
	opt, _, err := Optimize(p, OptimizeConfig{Stratify: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.Object("cold").EffectiveLevel(); got != nicsim.MemEMEM {
		t.Errorf("cold object placed in %v, want EMEM", got)
	}
	if got := opt.Object("hot").EffectiveLevel(); got != nicsim.MemLocal {
		t.Errorf("hot object placed in %v, want LMEM", got)
	}
}

func TestAllPassesMonotoneShrink(t *testing.T) {
	p := buildMatchProgram(t)
	_, results, err := Optimize(p, AllPasses())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("len(results) = %d, want 4", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Instructions > results[i-1].Instructions {
			t.Errorf("pass %q grew the program: %d -> %d",
				results[i].Pass, results[i-1].Instructions, results[i].Instructions)
		}
	}
}

func TestOptimizePreservesBehaviorProperty(t *testing.T) {
	// Property: for random request payloads and both lambda IDs, the
	// optimized program produces byte-identical responses.
	base := buildMatchProgram(t)
	opt, _, err := Optimize(base, AllPasses())
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	eBase, err := Link(base, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eOpt, err := Link(opt, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	f := func(id uint8, payload []byte) bool {
		lambda := uint32(id%2) + 1
		req := &nicsim.Request{LambdaID: lambda, Payload: payload, Packets: 1}
		r1, err1 := eBase.Execute(req)
		r2, err2 := eOpt.Execute(req)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		return string(r1.Payload) == string(r2.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimizedProgramIsCheaperDynamically(t *testing.T) {
	// The optimized image must also retire fewer dynamic instructions
	// (shorter match path) and stall less on memory (near placement).
	base := buildMatchProgram(t)
	opt, _, err := Optimize(base, AllPasses())
	if err != nil {
		t.Fatal(err)
	}
	eBase, err := Link(base, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eOpt, err := Link(opt, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req := &nicsim.Request{LambdaID: 2, Payload: []byte("q"), Packets: 1}
	rBase, err := eBase.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	rOpt, err := eOpt.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	cfg := nicsimTestCfg()
	if rOpt.Stats.Instructions >= rBase.Stats.Instructions {
		t.Errorf("dynamic instructions: opt %d >= base %d", rOpt.Stats.Instructions, rBase.Stats.Instructions)
	}
	if rOpt.Stats.Cycles(cfg) >= rBase.Stats.Cycles(cfg) {
		t.Errorf("cycles: opt %d >= base %d", rOpt.Stats.Cycles(cfg), rBase.Stats.Cycles(cfg))
	}
}

func TestGenerateMatchFallThroughToHost(t *testing.T) {
	p := buildMatchProgram(t)
	e, err := Link(p, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Force execution with an ID the match stage does not know; the
	// match function returns StatusToHost. (The NIC normally filters
	// these via Handles, so call the match function directly.)
	status, _, _, err := e.RunStandalone(MatchFunction, nil, map[int]int64{FieldWorkloadID: 777})
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusToHost {
		t.Errorf("status = %d, want StatusToHost", status)
	}
}
