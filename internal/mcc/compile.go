package mcc

// This file implements the compiled execution backend: at link time
// every Sym/Sym2 is resolved to its object slot and each function body
// is compiled into a flat closure array. Straight-line runs of
// ALU/header ops are fused into superinstructions that charge the step
// counter once per basic block, and bounds/field-range checks are
// hoisted to compile time where operands are immediates. The backend
// must be observationally identical to the interpreter — same status,
// response bytes, ExecStats (instruction and per-level access counts),
// and error sentinels, bit for bit — which the differential tests in
// diff_test.go enforce.

import "lambdanic/internal/nicsim"

// closure executes one compiled instruction (or fused block) and
// returns the next pc, or retPC when the function returned.
type closure func(*env) (int, error)

// uop is a decoded side-effect-only component of a superinstruction:
// no control flow, no faulting, its step charge accounted at block
// level. Fused runs execute as a flat []uop walked by an inline switch
// — one indirect call per block instead of one per instruction, which
// is where the compiled engine's throughput comes from.
type uop struct {
	kind         uint8
	rd, rs1, rs2 uint8
	imm          int64
	slot         *objectSlot
	lvl          nicsim.MemLevel
}

// uop kinds. The ALU kinds mirror the opcode set one-for-one; the
// remaining kinds are the non-faulting forms compileFused proves safe
// at compile time.
const (
	uNop uint8 = iota
	uMovImm
	uMov
	uAdd
	uSub
	uMul
	uAnd
	uOr
	uXor
	uShl
	uShr
	uEq
	uLt
	uHdrGet
	uHdrSet
	uPktLen
	uEmitByte
	uAccess // load with a discarded destination: only the access counts
	uLoad
	uLoadW
	uStore
	uStoreW
)

// runUop executes one micro-op. This is the out-of-line twin of the
// switch inlined in fuseBlock's hot loop, used by the step-limit
// fallback path and by single-op slots; the differential fuzzer drives
// both copies against the interpreter.
func runUop(e *env, u *uop) {
	switch u.kind {
	case uMovImm:
		e.regs[u.rd%NumRegs] = u.imm
	case uMov:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs]
	case uAdd:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] + e.regs[u.rs2%NumRegs]
	case uSub:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] - e.regs[u.rs2%NumRegs]
	case uMul:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] * e.regs[u.rs2%NumRegs]
	case uAnd:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] & e.regs[u.rs2%NumRegs]
	case uOr:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] | e.regs[u.rs2%NumRegs]
	case uXor:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] ^ e.regs[u.rs2%NumRegs]
	case uShl:
		e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] << uint64(e.regs[u.rs2%NumRegs]&63)
	case uShr:
		e.regs[u.rd%NumRegs] = int64(uint64(e.regs[u.rs1%NumRegs]) >> uint64(e.regs[u.rs2%NumRegs]&63))
	case uEq:
		e.regs[u.rd%NumRegs] = boolTo64(e.regs[u.rs1%NumRegs] == e.regs[u.rs2%NumRegs])
	case uLt:
		e.regs[u.rd%NumRegs] = boolTo64(e.regs[u.rs1%NumRegs] < e.regs[u.rs2%NumRegs])
	case uHdrGet:
		e.regs[u.rd%NumRegs] = e.headers[u.imm]
	case uHdrSet:
		e.headers[u.imm] = e.regs[u.rs1%NumRegs]
	case uPktLen:
		e.regs[u.rd%NumRegs] = int64(len(e.payload))
	case uEmitByte:
		e.resp = append(e.resp, byte(e.regs[u.rs1%NumRegs]))
	case uAccess:
		e.stats.AddAccess(u.lvl, 1)
	case uLoad:
		e.stats.AddAccess(u.lvl, 1)
		e.regs[u.rd%NumRegs] = int64(u.slot.mem[u.imm])
	case uLoadW:
		e.stats.AddAccess(u.lvl, 1)
		e.regs[u.rd%NumRegs] = int64(le64(u.slot.mem[u.imm:]))
	case uStore:
		e.stats.AddAccess(u.lvl, 1)
		u.slot.mem[u.imm] = byte(e.regs[u.rs2%NumRegs])
	case uStoreW:
		e.stats.AddAccess(u.lvl, 1)
		putLE64(u.slot.mem[u.imm:], uint64(e.regs[u.rs2%NumRegs]))
	}
}

// retPC is the sentinel next-pc meaning "OpRet executed"; the status
// register is in env.ret.
const retPC = -1

// compiledFunc is one function's closure array.
type compiledFunc struct {
	name   string
	code   []closure
	fusion *Fusion
}

// Fusion describes which instruction runs of a function were fused
// into superinstructions (for DisassembleFused and tests).
type Fusion struct {
	Runs []FusedRun
}

// FusedRun is one fused straight-line block: Len component
// instructions starting at Start.
type FusedRun struct {
	Start, Len int
}

// Fusion returns the fusion layout the compiled engine chose for the
// named function, or nil when nothing was fused (or the function is
// unknown).
func (e *Executable) Fusion(fn string) *Fusion {
	if cf := e.funcs[fn]; cf != nil {
		return cf.fusion
	}
	return nil
}

// run executes a compiled function to completion, returning its status
// register. Mirrors env.run's depth handling exactly.
func (cf *compiledFunc) run(e *env) (int64, error) {
	if e.depth >= maxCallDepth {
		return 0, ErrCallDepth
	}
	e.depth++
	code := cf.code
	pc := 0
	for pc < len(code) {
		next, err := code[pc](e)
		if err != nil {
			e.depth--
			return 0, err
		}
		if next == retPC {
			e.depth--
			return e.ret, nil
		}
		pc = next
	}
	e.depth--
	// Falling off the end is an implicit StatusForward.
	return StatusForward, nil
}

// compileProgram builds the closure arrays and, when the reduced match
// stage is recognized, the WorkloadID jump table. Runs for every Link
// (the interpreter engine simply never calls into it).
func compileProgram(e *Executable) {
	e.funcs = make(map[string]*compiledFunc, len(e.prog.Funcs))
	for _, f := range e.prog.Funcs {
		e.funcs[f.Name] = &compiledFunc{name: f.Name}
	}
	for _, f := range e.prog.Funcs {
		compileFunc(e, e.funcs[f.Name], f)
	}
	e.dispatch = buildJumpTable(e)
}

// compileFunc compiles one body. Maximal runs of fusable instructions
// not crossing a branch target become superinstructions stored at the
// run's leader; interior slots keep their single-instruction closures
// (sequential flow never enters them, but they stay executable).
func compileFunc(e *Executable, cf *compiledFunc, f *Function) {
	body := f.Body
	isTarget := make([]bool, len(body)+1)
	for i := range body {
		switch body[i].Op {
		case OpJmp, OpBrz, OpBrnz:
			isTarget[body[i].Imm] = true
		}
	}
	cf.code = make([]closure, len(body))
	fu := &Fusion{}
	pc := 0
	for pc < len(body) {
		// Extend a fusable straight-line run from pc.
		n := 0
		for pc+n < len(body) {
			if n > 0 && isTarget[pc+n] {
				break
			}
			if _, ok := compileFused(e, &body[pc+n]); !ok {
				break
			}
			n++
		}
		if n == 0 {
			cf.code[pc] = compileSlow(e, &body[pc], pc)
			pc++
			continue
		}
		ops := make([]uop, n)
		for i := 0; i < n; i++ {
			ops[i], _ = compileFused(e, &body[pc+i])
		}
		if n >= 2 {
			cf.code[pc] = fuseBlock(ops, pc+n)
			fu.Runs = append(fu.Runs, FusedRun{Start: pc, Len: n})
			for i := 1; i < n; i++ {
				cf.code[pc+i] = singleOp(ops[i], pc+i+1)
			}
		} else {
			cf.code[pc] = singleOp(ops[0], pc+1)
		}
		pc += n
	}
	if len(fu.Runs) > 0 {
		cf.fusion = fu
	}
}

// fuseBlock wraps a run of decoded micro-ops into one superinstruction
// that charges the run's step cost once and executes it with an inline
// switch (no per-instruction dispatch). Decoded no-ops are stripped
// from the hot stream (their charge is part of the block count). Runs
// made entirely of register-file ops take a specialized loop over a
// local copy of the register file. If the block would cross the step
// limit it falls back to per-op charging over the raw decoded run so
// the reported instruction count (exactly limit+1) and the partial
// side effects match the interpreter tripping mid-block.
func fuseBlock(raw []uop, next int) closure {
	n := uint64(len(raw))
	packed := make([]uop, 0, len(raw))
	regOnly := true
	for _, u := range raw {
		if u.kind == uNop {
			continue
		}
		if u.kind > uLt { // uMovImm..uLt touch only the register file
			regOnly = false
		}
		packed = append(packed, u)
	}
	if regOnly && len(packed) >= 4 {
		return fuseRegBlock(raw, packed, n, next)
	}
	return func(e *env) (int, error) {
		if e.steps+n > e.exe.stepLimit {
			return fuseSlow(e, raw, next)
		}
		e.steps += n
		e.stats.Instructions += n
		ops := packed
		for i := range ops {
			u := &ops[i]
			// Inline twin of runUop — keep the two in sync.
			switch u.kind {
			case uMovImm:
				e.regs[u.rd%NumRegs] = u.imm
			case uMov:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs]
			case uAdd:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] + e.regs[u.rs2%NumRegs]
			case uSub:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] - e.regs[u.rs2%NumRegs]
			case uMul:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] * e.regs[u.rs2%NumRegs]
			case uAnd:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] & e.regs[u.rs2%NumRegs]
			case uOr:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] | e.regs[u.rs2%NumRegs]
			case uXor:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] ^ e.regs[u.rs2%NumRegs]
			case uShl:
				e.regs[u.rd%NumRegs] = e.regs[u.rs1%NumRegs] << uint64(e.regs[u.rs2%NumRegs]&63)
			case uShr:
				e.regs[u.rd%NumRegs] = int64(uint64(e.regs[u.rs1%NumRegs]) >> uint64(e.regs[u.rs2%NumRegs]&63))
			case uEq:
				e.regs[u.rd%NumRegs] = boolTo64(e.regs[u.rs1%NumRegs] == e.regs[u.rs2%NumRegs])
			case uLt:
				e.regs[u.rd%NumRegs] = boolTo64(e.regs[u.rs1%NumRegs] < e.regs[u.rs2%NumRegs])
			case uHdrGet:
				e.regs[u.rd%NumRegs] = e.headers[u.imm]
			case uHdrSet:
				e.headers[u.imm] = e.regs[u.rs1%NumRegs]
			case uPktLen:
				e.regs[u.rd%NumRegs] = int64(len(e.payload))
			case uEmitByte:
				e.resp = append(e.resp, byte(e.regs[u.rs1%NumRegs]))
			case uAccess:
				e.stats.AddAccess(u.lvl, 1)
			case uLoad:
				e.stats.AddAccess(u.lvl, 1)
				e.regs[u.rd%NumRegs] = int64(u.slot.mem[u.imm])
			case uLoadW:
				e.stats.AddAccess(u.lvl, 1)
				e.regs[u.rd%NumRegs] = int64(le64(u.slot.mem[u.imm:]))
			case uStore:
				e.stats.AddAccess(u.lvl, 1)
				u.slot.mem[u.imm] = byte(e.regs[u.rs2%NumRegs])
			case uStoreW:
				e.stats.AddAccess(u.lvl, 1)
				putLE64(u.slot.mem[u.imm:], uint64(e.regs[u.rs2%NumRegs]))
			}
		}
		return next, nil
	}
}

// fuseSlow is the step-limit-crossing path shared by all block shapes:
// per-op charging over the raw decoded run, tripping at exactly the
// instruction the interpreter would trip on.
func fuseSlow(e *env, raw []uop, next int) (int, error) {
	for i := range raw {
		if err := e.charge(1); err != nil {
			return 0, err
		}
		runUop(e, &raw[i])
	}
	return next, nil
}

// regPair is two chained register ops executed as one dispatch: op2
// consumes op1's result while it is still in a local, and when op2
// overwrites op1's destination the intermediate store is dead and
// elided. Unpaired ops ride along with k2 = uNop.
type regPair struct {
	k1, rd1, a1, b1 uint8
	k2, rd2, b2     uint8
	flags           uint8
	imm             int64
}

const (
	pairStoreT uint8 = 1 << iota // regs[rd1] = t before op2 (rd1 stays live)
	pairYReg                     // op2 = t OP regs[b2]
	pairSwap                     // op2 = regs[b2] OP t
)

// deadStoreElim removes register writes that are provably overwritten
// before any read inside the same block (classic backward-liveness DSE,
// applied to reg-only runs, which are pure regs→regs functions). Every
// register is live at block exit, so final register state — and with it
// the differential parity against the interpreter — is unchanged. The
// block still pre-charges the raw instruction count: the simulated NIC
// pays for every instruction; only host-side execution skips dead work.
func deadStoreElim(packed []uop) []uop {
	var live [NumRegs]bool
	for i := range live {
		live[i] = true
	}
	kept := make([]uop, 0, len(packed))
	for i := len(packed) - 1; i >= 0; i-- {
		u := &packed[i]
		if !live[u.rd%NumRegs] {
			continue
		}
		live[u.rd%NumRegs] = false
		switch u.kind {
		case uMov:
			live[u.rs1%NumRegs] = true
		case uAdd, uSub, uMul, uAnd, uOr, uXor, uShl, uShr, uEq, uLt:
			live[u.rs1%NumRegs] = true
			live[u.rs2%NumRegs] = true
		}
		kept = append(kept, *u)
	}
	// kept is in reverse order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}
	return kept
}

// packRegPairs greedily combines adjacent register ops where the
// second reads the first's destination. All other dataflow keeps both
// halves' sequential semantics: op2's register operand can never alias
// op1's destination (it would be the chained operand), so reading it
// after op1 is equivalent.
func packRegPairs(packed []uop) []regPair {
	pairs := make([]regPair, 0, len(packed))
	for i := 0; i < len(packed); i++ {
		u := &packed[i]
		pr := regPair{k1: u.kind, rd1: u.rd, a1: u.rs1, b1: u.rs2, imm: u.imm, k2: uNop, flags: pairStoreT}
		if i+1 < len(packed) {
			v := &packed[i+1]
			chained := false
			switch {
			case v.kind == uMov && v.rs1 == u.rd:
				chained = true
			case v.kind >= uAdd && v.kind <= uLt && v.rs1 == u.rd && v.rs2 == u.rd:
				chained = true
			case v.kind >= uAdd && v.kind <= uLt && v.rs1 == u.rd:
				chained = true
				pr.flags |= pairYReg
				pr.b2 = v.rs2
			case v.kind >= uAdd && v.kind <= uLt && v.rs2 == u.rd:
				chained = true
				pr.flags |= pairSwap
				pr.b2 = v.rs1
			}
			if chained {
				pr.k2, pr.rd2 = v.kind, v.rd
				if u.rd == v.rd {
					pr.flags &^= pairStoreT // op2 overwrites it: dead store
				}
				pairs = append(pairs, pr)
				i++
				continue
			}
		}
		pairs = append(pairs, pr)
	}
	return pairs
}

// fuseRegBlock specializes runs that only touch the register file
// (moves, immediates, ALU): the loop runs over a local copy of the
// registers, so the per-op accesses stay on one stack frame instead of
// going through the env pointer, chained ops execute in result-producing
// pairs, and the switch carries only the register kinds.
func fuseRegBlock(raw, packed []uop, n uint64, next int) closure {
	pairs := packRegPairs(deadStoreElim(packed))
	return func(e *env) (int, error) {
		if e.steps+n > e.exe.stepLimit {
			return fuseSlow(e, raw, next)
		}
		e.steps += n
		e.stats.Instructions += n
		regs := e.regs
		for i := range pairs {
			p := &pairs[i]
			var t int64
			switch p.k1 {
			case uMovImm:
				t = p.imm
			case uMov:
				t = regs[p.a1%NumRegs]
			case uAdd:
				t = regs[p.a1%NumRegs] + regs[p.b1%NumRegs]
			case uSub:
				t = regs[p.a1%NumRegs] - regs[p.b1%NumRegs]
			case uMul:
				t = regs[p.a1%NumRegs] * regs[p.b1%NumRegs]
			case uAnd:
				t = regs[p.a1%NumRegs] & regs[p.b1%NumRegs]
			case uOr:
				t = regs[p.a1%NumRegs] | regs[p.b1%NumRegs]
			case uXor:
				t = regs[p.a1%NumRegs] ^ regs[p.b1%NumRegs]
			case uShl:
				t = regs[p.a1%NumRegs] << uint64(regs[p.b1%NumRegs]&63)
			case uShr:
				t = int64(uint64(regs[p.a1%NumRegs]) >> uint64(regs[p.b1%NumRegs]&63))
			case uEq:
				t = boolTo64(regs[p.a1%NumRegs] == regs[p.b1%NumRegs])
			case uLt:
				t = boolTo64(regs[p.a1%NumRegs] < regs[p.b1%NumRegs])
			}
			if p.flags&pairStoreT != 0 {
				regs[p.rd1%NumRegs] = t
			}
			if p.k2 == uNop {
				continue
			}
			x, y := t, t
			if p.flags&pairYReg != 0 {
				y = regs[p.b2%NumRegs]
			} else if p.flags&pairSwap != 0 {
				x, y = regs[p.b2%NumRegs], t
			}
			switch p.k2 {
			case uMov:
				regs[p.rd2%NumRegs] = t
			case uAdd:
				regs[p.rd2%NumRegs] = x + y
			case uSub:
				regs[p.rd2%NumRegs] = x - y
			case uMul:
				regs[p.rd2%NumRegs] = x * y
			case uAnd:
				regs[p.rd2%NumRegs] = x & y
			case uOr:
				regs[p.rd2%NumRegs] = x | y
			case uXor:
				regs[p.rd2%NumRegs] = x ^ y
			case uShl:
				regs[p.rd2%NumRegs] = x << uint64(y&63)
			case uShr:
				regs[p.rd2%NumRegs] = int64(uint64(x) >> uint64(y&63))
			case uEq:
				regs[p.rd2%NumRegs] = boolTo64(x == y)
			case uLt:
				regs[p.rd2%NumRegs] = boolTo64(x < y)
			}
		}
		e.regs = regs
		return next, nil
	}
}

// singleOp wraps one micro-op as a standalone closure.
func singleOp(u uop, next int) closure {
	return func(e *env) (int, error) {
		if err := e.charge(1); err != nil {
			return 0, err
		}
		runUop(e, &u)
		return next, nil
	}
}

// aluKind maps the fusable ALU opcodes onto their uop kinds.
var aluKind = map[Opcode]uint8{
	OpAdd: uAdd, OpSub: uSub, OpMul: uMul, OpAnd: uAnd, OpOr: uOr,
	OpXor: uXor, OpShl: uShl, OpShr: uShr, OpEq: uEq, OpLt: uLt,
}

// compileFused decodes instructions that can join a superinstruction:
// no control flow, and provably no fault — which for memory ops means
// an immediate address (RegZero base) whose bounds check passes at
// compile time. Writes to RegZero decode to uNop (the register is
// hardwired zero and ALU/move ops have no other side effects).
func compileFused(e *Executable, in *Instr) (uop, bool) {
	u := uop{rd: uint8(in.Rd), rs1: uint8(in.Rs1), rs2: uint8(in.Rs2), imm: in.Imm}
	switch in.Op {
	case OpNop:
		return u, true
	case OpMovImm:
		if in.Rd != RegZero {
			u.kind = uMovImm
		}
		return u, true
	case OpMov:
		if in.Rd != RegZero {
			u.kind = uMov
		}
		return u, true
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpLt:
		if in.Rd != RegZero {
			u.kind = aluKind[in.Op]
		}
		return u, true
	case OpHdrGet:
		if in.Imm < 0 || in.Imm >= NumFields {
			return u, false // faults: slow path
		}
		if in.Rd != RegZero {
			u.kind = uHdrGet
		}
		return u, true
	case OpHdrSet:
		if in.Imm < 0 || in.Imm >= NumFields {
			return u, false
		}
		u.kind = uHdrSet
		return u, true
	case OpPktLen:
		if in.Rd != RegZero {
			u.kind = uPktLen
		}
		return u, true
	case OpEmitByte:
		u.kind = uEmitByte
		return u, true
	case OpLoad, OpLoadW, OpStore, OpStoreW:
		// Direct-addressed near-memory access (memory stratification
		// rewrites the base to RegZero): the bounds check hoists to
		// compile time when the whole address is the immediate.
		if in.Rs1 != RegZero {
			return u, false
		}
		slot := e.slot(in.Sym)
		if slot == nil {
			return u, false
		}
		width := int64(1)
		if in.Op == OpLoadW || in.Op == OpStoreW {
			width = 8
		}
		if in.Imm < 0 || in.Imm+width > int64(len(slot.mem)) {
			return u, false // faults at runtime: slow path
		}
		u.slot, u.lvl = slot, slot.level
		switch in.Op {
		case OpLoad:
			u.kind = uLoad
		case OpLoadW:
			u.kind = uLoadW
		case OpStore:
			u.kind = uStore
		default:
			u.kind = uStoreW
		}
		if (in.Op == OpLoad || in.Op == OpLoadW) && in.Rd == RegZero {
			u.kind = uAccess
		}
		return u, true
	}
	return u, false
}

// compileSlow compiles the instructions that keep per-op charging:
// control flow, calls, dynamic-address memory ops, bulk assists, and
// any op whose fault path survived to runtime.
func compileSlow(e *Executable, in *Instr, pc int) closure {
	next := pc + 1
	rd, rs1, rs2, imm := in.Rd, in.Rs1, in.Rs2, in.Imm
	switch in.Op {
	case OpJmp:
		tgt := int(imm)
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			return tgt, nil
		}
	case OpBrz:
		tgt := int(imm)
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			if e.regs[rs1] == 0 {
				return tgt, nil
			}
			return next, nil
		}
	case OpBrnz:
		tgt := int(imm)
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			if e.regs[rs1] != 0 {
				return tgt, nil
			}
			return next, nil
		}
	case OpHdrGet, OpHdrSet:
		// Only reached with an out-of-range field immediate.
		return faultClosure(errHdrRange)
	case OpLoad, OpLoadW:
		slot := e.slot(in.Sym)
		if slot == nil {
			return faultClosure(errUnknownObject)
		}
		lvl := slot.level
		wide := in.Op == OpLoadW
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			addr := e.regs[rs1] + imm
			width := int64(1)
			if wide {
				width = 8
			}
			if addr < 0 || addr+width > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			e.stats.AddAccess(lvl, 1)
			if rd != RegZero {
				if wide {
					e.regs[rd] = int64(le64(slot.mem[addr:]))
				} else {
					e.regs[rd] = int64(slot.mem[addr])
				}
			}
			return next, nil
		}
	case OpStore, OpStoreW:
		slot := e.slot(in.Sym)
		if slot == nil {
			return faultClosure(errUnknownObject)
		}
		lvl := slot.level
		wide := in.Op == OpStoreW
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			addr := e.regs[rs1] + imm
			width := int64(1)
			if wide {
				width = 8
			}
			if addr < 0 || addr+width > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			e.stats.AddAccess(lvl, 1)
			if wide {
				putLE64(slot.mem[addr:], uint64(e.regs[rs2]))
			} else {
				slot.mem[addr] = byte(e.regs[rs2])
			}
			return next, nil
		}
	case OpPktLoad:
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			addr := e.regs[rs1] + imm
			if addr < 0 || addr >= int64(len(e.payload)) {
				return 0, errPayloadOOB
			}
			e.stats.AddAccess(e.payloadLevel, 1)
			if rd != RegZero {
				e.regs[rd] = int64(e.payload[addr])
			}
			return next, nil
		}
	case OpEmit:
		slot := e.slot(in.Sym)
		if slot == nil {
			return faultClosure(errUnknownObject)
		}
		lvl := slot.level
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			off, n := e.regs[rs1], e.regs[rs2]
			if off < 0 || n < 0 || off+n > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			if err := e.charge(1 + bursts(n)); err != nil {
				return 0, err
			}
			e.stats.AddAccess(lvl, bursts(n))
			e.resp = append(e.resp, slot.mem[off:off+n]...)
			return next, nil
		}
	case OpCall:
		callee := e.funcs[in.Sym]
		if callee == nil {
			return faultClosure(errUnknownFunc)
		}
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			if _, err := callee.run(e); err != nil {
				return 0, err
			}
			return next, nil
		}
	case OpRet:
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			e.ret = e.regs[rs1]
			return retPC, nil
		}
	case OpMemcpy:
		return compileMemcpy(e, in, next)
	case OpGray:
		return compileGray(e, in, next)
	case OpHash:
		slot := e.slot(in.Sym)
		if slot == nil {
			return faultClosure(errUnknownObject)
		}
		lvl := slot.level
		return func(e *env) (int, error) {
			if err := e.charge(1); err != nil {
				return 0, err
			}
			off, n := e.regs[rs1], e.regs[rs2]
			if off < 0 || n < 0 || off+n > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			if err := e.charge(bulkSetup + uint64(n+7)/8); err != nil {
				return 0, err
			}
			e.stats.AddAccess(lvl, bursts(n))
			if rd != RegZero {
				e.regs[rd] = int64(fnv1a(slot.mem[off : off+n]))
			}
			return next, nil
		}
	default:
		return faultClosure(errInvalidOp)
	}
}

// faultClosure charges the instruction, then fails with the pre-built
// error — the behavior the interpreter has for the same fault.
func faultClosure(err error) closure {
	return func(e *env) (int, error) {
		if cerr := e.charge(1); cerr != nil {
			return 0, cerr
		}
		return 0, err
	}
}

// bulkSrc resolves a memcpy/gray source at compile time.
func bulkSrc(e *Executable, sym2 string) (slot *objectSlot, payload bool, ok bool) {
	if sym2 == PayloadObject {
		return nil, true, true
	}
	s := e.slot(sym2)
	return s, false, s != nil
}

func compileMemcpy(e *Executable, in *Instr, next int) closure {
	rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
	dst := e.slot(in.Sym)
	srcSlot, fromPayload, ok := bulkSrc(e, in.Sym2)
	if dst == nil || !ok {
		return faultClosure(errUnknownObject)
	}
	return func(e *env) (int, error) {
		if err := e.charge(1); err != nil {
			return 0, err
		}
		n := e.regs[rs2]
		if n < 0 {
			return 0, errMemcpyNegLen
		}
		src, slvl := e.payload, e.payloadLevel
		if !fromPayload {
			src, slvl = srcSlot.mem, srcSlot.level
		}
		doff, soff := e.regs[rd], e.regs[rs1]
		if doff < 0 || soff < 0 || doff+n > int64(len(dst.mem)) || soff+n > int64(len(src)) {
			return 0, dst.oobErr
		}
		if err := e.charge(bulkSetup + bursts(n)); err != nil {
			return 0, err
		}
		e.stats.AddAccess(slvl, bursts(n))
		e.stats.AddAccess(dst.level, bursts(n))
		copy(dst.mem[doff:doff+n], src[soff:soff+n])
		return next, nil
	}
}

func compileGray(e *Executable, in *Instr, next int) closure {
	rd, rs1, rs2 := in.Rd, in.Rs1, in.Rs2
	dst := e.slot(in.Sym)
	srcSlot, fromPayload, ok := bulkSrc(e, in.Sym2)
	if dst == nil || !ok {
		return faultClosure(errUnknownObject)
	}
	return func(e *env) (int, error) {
		if err := e.charge(1); err != nil {
			return 0, err
		}
		n := e.regs[rs2]
		if n < 0 || n%4 != 0 {
			return 0, errGrayLen
		}
		pixels := n / 4
		src, slvl := e.payload, e.payloadLevel
		if !fromPayload {
			src, slvl = srcSlot.mem, srcSlot.level
		}
		doff, soff := e.regs[rd], e.regs[rs1]
		if doff < 0 || soff < 0 || soff+n > int64(len(src)) || doff+pixels > int64(len(dst.mem)) {
			return 0, dst.oobErr
		}
		if err := e.charge(bulkSetup + uint64(pixels)); err != nil {
			return 0, err
		}
		e.stats.AddAccess(slvl, bursts(n))
		e.stats.AddAccess(dst.level, bursts(pixels))
		grayPixels(dst.mem[doff:doff+pixels], src[soff:soff+n])
		return next, nil
	}
}

// jumpTable is the compiled form of a recognized reduced match stage:
// instead of walking the generated if-else chain, dispatch indexes a
// map keyed on the WorkloadID header (paper §6.4 — the match stage
// costs O(1) regardless of how many lambdas the image carries). Step
// charges replay exactly what the chain walk would have charged, so
// ExecStats stay bit-identical to the interpreter.
type jumpTable struct {
	parsers []*compiledFunc
	entries []MatchEntry
	targets []*compiledFunc
	byID    map[int64]int
	// dense is the hot-path index: dense[id] = entry index + 1 (0 =
	// miss) for ids below denseDispatchMax, skipping the map lookup.
	dense []int32
	// missCharge is the chain cost when no entry matches: key
	// extraction, every compare triplet, and the fall-through epilogue.
	missCharge uint64
}

// denseDispatchMax bounds the dense dispatch array; workload IDs at or
// above it fall back to the map.
const denseDispatchMax = 1024

func (jt *jumpTable) lookup(key int64) (int, bool) {
	if key >= 0 && key < int64(len(jt.dense)) {
		idx := jt.dense[key]
		return int(idx) - 1, idx > 0
	}
	idx, ok := jt.byID[key]
	return idx, ok
}

// buildJumpTable recognizes the reduced match stage. It only activates
// when the __match body is byte-for-byte what GenerateMatch produces
// for the attached plan (a hand-edited match falls back to compiled
// chain execution) and all tables merged into a single WorkloadID
// group.
func buildJumpTable(e *Executable) *jumpTable {
	p := e.prog
	if p.Match == nil || !p.Match.Reduced {
		return nil
	}
	mf := p.Func(MatchFunction)
	if mf == nil {
		return nil
	}
	regen, err := GenerateMatch(p.Match)
	if err != nil || bodyKey(regen) != bodyKey(mf) {
		return nil
	}
	groups := groupMatchTables(p.Match)
	if len(groups) != 1 || groups[0].field != FieldWorkloadID {
		return nil
	}
	jt := &jumpTable{byID: make(map[int64]int, len(groups[0].entries))}
	for _, pn := range p.Match.Parsers {
		if p.Match.UsedParsers != nil && !p.Match.UsedParsers[pn] {
			continue
		}
		cf := e.funcs[pn]
		if cf == nil {
			return nil
		}
		jt.parsers = append(jt.parsers, cf)
	}
	for i, ent := range groups[0].entries {
		cf := e.funcs[ent.Action]
		if cf == nil {
			return nil
		}
		jt.entries = append(jt.entries, ent)
		jt.targets = append(jt.targets, cf)
		jt.byID[ent.Value] = i
	}
	size := int64(0)
	for _, ent := range jt.entries {
		if ent.Value >= 0 && ent.Value < denseDispatchMax && ent.Value+1 > size {
			size = ent.Value + 1
		}
	}
	jt.dense = make([]int32, size)
	for i, ent := range jt.entries {
		if ent.Value >= 0 && ent.Value < size {
			jt.dense[ent.Value] = int32(i) + 1
		}
	}
	jt.missCharge = 1 + 3*uint64(len(jt.entries)) + 2
	return jt
}

// run dispatches one request through the jump table with the exact
// observable behavior of executing the generated __match function:
// same depth accounting, same parser execution, same step charges
// (chargeExact reproduces the chain-walk trip point), and the same
// scratch-register state entering the lambda (r2 = key, r5 = matched
// value, r6 = compare result).
func (jt *jumpTable) run(e *env) (int64, error) {
	if e.depth >= maxCallDepth {
		return 0, ErrCallDepth
	}
	e.depth++
	defer func() { e.depth-- }()

	for _, pf := range jt.parsers {
		if err := e.charge(1); err != nil { // the call instruction
			return 0, err
		}
		if _, err := pf.run(e); err != nil {
			return 0, err
		}
	}
	key := e.headers[FieldWorkloadID]
	if idx, ok := jt.lookup(key); ok {
		// Chain cost to reach entry idx and call it: one key
		// extraction, three ops per skipped entry, this entry's
		// compare triplet, and the call.
		if err := e.chargeExact(3*uint64(idx) + 5); err != nil {
			return 0, err
		}
		e.regs[2], e.regs[5], e.regs[6] = key, jt.entries[idx].Value, 1
		if _, err := jt.targets[idx].run(e); err != nil {
			return 0, err
		}
		if err := e.chargeExact(2); err != nil { // movi + ret epilogue
			return 0, err
		}
		e.regs[1] = StatusForward
		return StatusForward, nil
	}
	if err := e.chargeExact(jt.missCharge); err != nil {
		return 0, err
	}
	e.regs[2] = key
	if n := len(jt.entries); n > 0 {
		e.regs[5], e.regs[6] = jt.entries[n-1].Value, 0
	}
	e.regs[1] = StatusToHost
	return StatusToHost, nil
}
