package mcc

import (
	"errors"
	"strings"
	"testing"
)

func TestStaticCheckCatchesConstantOOBStore(t *testing.T) {
	b := NewBuilder("bad")
	b.MovImm(1, 100) // beyond the 8-byte object
	b.MovImm(2, 1)
	b.Store("buf", 1, 0, 2)
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	violations := StaticCheck(p)
	if len(violations) != 1 {
		t.Fatalf("violations = %d, want 1: %v", len(violations), violations)
	}
	if !strings.Contains(violations[0].Msg, "buf[100:101]") {
		t.Errorf("message = %q", violations[0].Msg)
	}
	// Link refuses the program.
	if _, err := Link(p, LinkOptions{}); err == nil {
		t.Error("Link accepted statically invalid program")
	}
}

func TestStaticCheckCatchesNegativeOffset(t *testing.T) {
	b := NewBuilder("bad")
	b.MovImm(1, 5)
	b.Load(2, "buf", 1, -10) // addr = -5
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	if len(StaticCheck(p)) != 1 {
		t.Error("negative constant address not caught")
	}
}

func TestStaticCheckConstantPropagationThroughALU(t *testing.T) {
	// addr = (4 + 4) * 2 = 16, width 8 -> [16:24] of a 16-byte object.
	b := NewBuilder("bad")
	b.MovImm(1, 4)
	b.MovImm(2, 4)
	b.Add(3, 1, 2)
	b.MovImm(4, 2)
	b.Mul(3, 3, 4)
	b.LoadW(5, "buf", 3, 0)
	b.Ret(5)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 16})
	if len(StaticCheck(p)) != 1 {
		t.Error("ALU-propagated OOB address not caught")
	}
}

func TestStaticCheckEmitAndBulk(t *testing.T) {
	// Constant emit past the object end.
	b := NewBuilder("bademit")
	b.MovImm(1, 4)
	b.MovImm(2, 10)
	b.Emit("buf", 1, 2) // [4:14] of 8
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	if len(StaticCheck(p)) != 1 {
		t.Error("OOB emit not caught")
	}

	// Constant memcpy writing past the destination.
	b2 := NewBuilder("badcpy")
	b2.MovImm(1, 0)  // src off
	b2.MovImm(2, 64) // len
	b2.MovImm(3, 8)  // dst off
	b2.Memcpy("dst", 3, "src", 1, 2)
	b2.Ret(2)
	p2 := singleEntry(t, b2.MustBuild(),
		&Object{Name: "src", Size: 64},
		&Object{Name: "dst", Size: 32})
	if len(StaticCheck(p2)) != 1 {
		t.Error("OOB memcpy not caught")
	}
}

func TestStaticCheckUnknownAddressesSkipped(t *testing.T) {
	// Addresses from headers are dynamic: the static pass must not
	// flag them (the interpreter's dynamic check guards them instead).
	b := NewBuilder("dyn")
	b.HdrGet(1, FieldArg0)
	b.Load(2, "buf", 1, 0)
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	if got := StaticCheck(p); len(got) != 0 {
		t.Errorf("dynamic access flagged: %v", got)
	}
}

func TestStaticCheckKnowledgeDiesAtBranchTargets(t *testing.T) {
	// r1 is 0 on the fall-through path but unknown at the loop target,
	// where it may have been incremented; the access must not be
	// flagged even though one constant path would be in bounds.
	b := NewBuilder("loopy")
	b.MovImm(1, 0)
	b.Label("loop")
	b.Load(2, "buf", 1, 0)
	b.MovImm(3, 1)
	b.Add(1, 1, 3)
	b.MovImm(4, 4)
	b.Lt(5, 1, 4)
	b.Brnz(5, "loop")
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 2})
	// The loop walks past the 2-byte object at runtime, but statically
	// the address at the target is unknown — no false positive, and the
	// dynamic check still catches it.
	if got := StaticCheck(p); len(got) != 0 {
		t.Errorf("loop access flagged statically: %v", got)
	}
	e, err := Link(p, LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := e.RunStandalone("loopy", nil, nil); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("dynamic check missed the overflow: %v", err)
	}
}

func TestStaticCheckKnowledgeDiesAtCalls(t *testing.T) {
	helper := NewBuilder("helper")
	helper.MovImm(1, 100) // clobbers r1 with an OOB value
	helper.Ret(1)
	main := NewBuilder("main")
	main.MovImm(1, 0)
	main.Call("helper")
	main.Load(2, "buf", 1, 0) // r1 is 100 at runtime, unknown statically
	main.Ret(2)
	p := NewProgram()
	if err := p.AddFunc(helper.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(main.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddObject(&Object{Name: "buf", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(1, "main"); err != nil {
		t.Fatal(err)
	}
	if got := StaticCheck(p); len(got) != 0 {
		t.Errorf("post-call access flagged: %v", got)
	}
}

func TestStaticCheckCleanPrograms(t *testing.T) {
	// The whole benchmark program must pass the static assertions (it
	// links, which runs them).
	p := buildMatchProgram(t)
	if got := StaticCheck(p); len(got) != 0 {
		t.Errorf("benchmark program has violations: %v", got)
	}
}

func TestDisassembleFunction(t *testing.T) {
	b := NewBuilder("demo")
	b.MovImm(1, 5)
	b.Label("loop")
	b.MovImm(2, 1)
	b.Sub(1, 1, 2)
	b.Brnz(1, "loop")
	b.Load(3, "buf", RegZero, 2)
	b.Ret(3)
	f := b.MustBuild()
	out := f.Disassemble()
	for _, want := range []string{"demo:", "movi r1, 5", "L0:", "brnz r1, L0", "ld r3, buf[rz+2]", "ret r3"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestDisassembleProgram(t *testing.T) {
	p := buildMatchProgram(t)
	out := p.Disassemble()
	for _, want := range []string{".object obj_a", ".entry 1 -> lambda_a", "__match:", "call lambda_a"} {
		if !strings.Contains(out, want) {
			t.Errorf("program disassembly missing %q", want)
		}
	}
}
