package mcc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"lambdanic/internal/nicsim"
)

// Well-known symbols.
const (
	// PayloadObject names the request payload pseudo-object readable by
	// bulk operations.
	PayloadObject = "__payload"
	// MatchFunction, when present, is the synthesized parse+match entry
	// run for every request (internal/matchlambda generates it). When
	// absent, the linker dispatches directly to the lambda entry.
	MatchFunction = "__match"
)

// Engine selects the execution backend for a linked image.
type Engine int

const (
	// EngineCompiled (the default) executes closure-compiled function
	// bodies with fused basic blocks and link-time symbol resolution.
	EngineCompiled Engine = iota
	// EngineInterp executes the IR through the reference switch
	// interpreter. The compiled engine is differentially tested against
	// it; ExecStats must match bit-for-bit.
	EngineInterp
)

// String names the engine for reports and benchmarks.
func (e Engine) String() string {
	if e == EngineInterp {
		return "interp"
	}
	return "compiled"
}

// LinkOptions tune the produced executable.
type LinkOptions struct {
	// StepLimit bounds dynamic instructions per request; 0 uses the
	// default.
	StepLimit uint64
	// SinglePacketLevel is where single-packet payloads live when the
	// lambda reads them (the packet buffer in CTM by default).
	SinglePacketLevel nicsim.MemLevel
	// MultiPacketLevel is where RDMA-committed multi-packet payloads
	// live (EMEM by default; §4.2.1 D3).
	MultiPacketLevel nicsim.MemLevel
	// Engine selects the execution backend (compiled by default).
	Engine Engine
}

// objectSlot is a linked object: name resolution happened at link time,
// so the data path indexes a dense slice instead of a string-keyed map.
// The out-of-bounds error is pre-built so faulting programs do not
// allocate per miss.
type objectSlot struct {
	name   string
	mem    []byte
	init   []byte
	level  nicsim.MemLevel
	oobErr error
}

// Executable is linked firmware implementing nicsim.Program: the
// Match+Lambda image every NPU core runs. Object memory persists across
// requests (the paper's "global objects that persist state across
// runs", §4.1); Reset restores initial contents.
type Executable struct {
	prog      *Program
	slots     []objectSlot
	slotIndex map[string]int // control-plane name lookups only
	stepLimit uint64
	opts      LinkOptions
	engine    Engine

	// Compiled backend state (built for every image; unused when the
	// interpreter engine is selected).
	funcs    map[string]*compiledFunc
	dispatch *jumpTable
	// envSlot is a single-element cache in front of envPool: the
	// steady-state single-caller path trades one atomic swap for the
	// pool's pin/unpin round trip.
	envSlot atomic.Pointer[env]
	envPool sync.Pool
}

var _ nicsim.Program = (*Executable)(nil)

// Link validates the program, allocates object memory, resolves every
// symbol, and produces an executable image.
func Link(p *Program, opts LinkOptions) (*Executable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Entries) == 0 {
		return nil, fmt.Errorf("mcc: program has no lambda entries")
	}
	// Compile-time memory assertions (§4.2.1 D2): statically provable
	// out-of-bounds accesses never reach the NIC.
	if violations := StaticCheck(p); len(violations) > 0 {
		return nil, fmt.Errorf("mcc: %d static assertion(s) failed, first: %w",
			len(violations), violations[0])
	}
	if opts.StepLimit == 0 {
		opts.StepLimit = defaultStepLimit
	}
	if opts.SinglePacketLevel == 0 {
		opts.SinglePacketLevel = nicsim.MemCTM
	}
	if opts.MultiPacketLevel == 0 {
		opts.MultiPacketLevel = nicsim.MemEMEM
	}
	e := &Executable{
		prog:      p,
		slots:     make([]objectSlot, len(p.Objects)),
		slotIndex: make(map[string]int, len(p.Objects)),
		stepLimit: opts.StepLimit,
		opts:      opts,
		engine:    opts.Engine,
	}
	for i, o := range p.Objects {
		e.slots[i] = objectSlot{
			name:   o.Name,
			mem:    make([]byte, o.Size),
			init:   o.Init,
			level:  o.EffectiveLevel(),
			oobErr: fmt.Errorf("%w: object %s", ErrOutOfBounds, o.Name),
		}
		e.slotIndex[o.Name] = i
	}
	e.Reset()
	compileProgram(e)
	return e, nil
}

// Reset restores every object to its initial contents, in place:
// compiled closures hold slot pointers, so backing arrays survive.
func (e *Executable) Reset() {
	for i := range e.slots {
		s := &e.slots[i]
		clear(s.mem)
		copy(s.mem, s.init)
	}
}

// slot resolves an object name, or nil (control-plane/compile-time
// use only; the data path holds direct slot pointers).
func (e *Executable) slot(name string) *objectSlot {
	if i, ok := e.slotIndex[name]; ok {
		return &e.slots[i]
	}
	return nil
}

// Program returns the linked program (read-only use).
func (e *Executable) Program() *Program { return e.prog }

// Engine reports which execution backend the image uses.
func (e *Executable) Engine() Engine { return e.engine }

// DispatchKind reports how the compiled engine enters the image:
// "jump-table" (reduced match stage keyed on WorkloadID), "match-chain"
// (a __match function executed as compiled code), or "direct" (per-ID
// entry lookup). The interpreter engine reports "interp".
func (e *Executable) DispatchKind() string {
	switch {
	case e.engine == EngineInterp:
		return "interp"
	case e.dispatch != nil:
		return "jump-table"
	case e.funcs[MatchFunction] != nil:
		return "match-chain"
	default:
		return "direct"
	}
}

// Handles reports whether the image has a lambda for the ID.
func (e *Executable) Handles(id uint32) bool {
	_, ok := e.prog.Entries[id]
	return ok
}

// StaticInstructions is the image code size.
func (e *Executable) StaticInstructions() int { return e.prog.StaticInstructions() }

// MemoryBytes reports per-level memory demand from object placement.
func (e *Executable) MemoryBytes() map[nicsim.MemLevel]int {
	out := make(map[nicsim.MemLevel]int)
	for _, o := range e.prog.Objects {
		out[o.EffectiveLevel()] += o.Size
	}
	return out
}

// getEnv takes an execution context from the pool (compiled engine).
func (e *Executable) getEnv() *env {
	if en := e.envSlot.Swap(nil); en != nil {
		en.reset()
		return en
	}
	v := e.envPool.Get()
	if v == nil {
		return &env{exe: e}
	}
	en := v.(*env)
	en.reset()
	return en
}

func (e *Executable) putEnv(en *env) {
	en.payload = nil // do not retain the caller's buffer
	if e.envSlot.CompareAndSwap(nil, en) {
		return
	}
	e.envPool.Put(en)
}

// prepare fills a request's initial machine state.
func (e *Executable) prepare(en *env, req *nicsim.Request) {
	en.payload = req.Payload
	en.payloadLevel = e.opts.SinglePacketLevel
	if req.Packets > 1 {
		en.payloadLevel = e.opts.MultiPacketLevel
	}
	en.headers[FieldWorkloadID] = int64(req.LambdaID)
	en.headers[FieldPayloadLen] = int64(len(req.Payload))
}

// Execute runs the image for one request: parse (header extraction),
// match (synthesized __match function when present), then the lambda —
// charging dynamic instructions and memory accesses. The response
// payload is detached from the engine's buffers and may be retained by
// the caller (nicsim holds responses across simulated time); use
// ExecutePooled on paths that can give the buffer back.
func (e *Executable) Execute(req *nicsim.Request) (nicsim.Response, error) {
	if e.engine == EngineInterp {
		return e.executeInterp(req)
	}
	en := e.getEnv()
	e.prepare(en, req)
	status, err := e.runCompiled(en, req)
	if err != nil {
		resp := nicsim.Response{Stats: en.stats}
		noEntry := err == ErrNoEntry
		e.putEnv(en)
		if noEntry {
			return nicsim.Response{}, fmt.Errorf("%w: %d", ErrNoEntry, req.LambdaID)
		}
		return resp, fmt.Errorf("lambda %d: %w", req.LambdaID, err)
	}
	en.headers[FieldStatus] = status
	resp := nicsim.Response{Payload: en.resp, Stats: en.stats}
	en.resp = nil // ownership moves to the caller
	e.putEnv(en)
	return resp, nil
}

// ExecutePooled is Execute for steady-state data paths: the response
// (including its payload bytes) is only valid inside fn, after which
// the buffers return to the pool. Steady-state execution is 0 allocs
// per op. The returned error matches Execute's.
func (e *Executable) ExecutePooled(req *nicsim.Request, fn func(nicsim.Response)) error {
	if e.engine == EngineInterp {
		resp, err := e.executeInterp(req)
		if fn != nil {
			fn(resp)
		}
		return err
	}
	en := e.getEnv()
	e.prepare(en, req)
	status, err := e.runCompiled(en, req)
	if err != nil {
		noEntry := err == ErrNoEntry
		if fn != nil && !noEntry {
			fn(nicsim.Response{Stats: en.stats})
		} else if fn != nil {
			fn(nicsim.Response{})
		}
		e.putEnv(en)
		if noEntry {
			return fmt.Errorf("%w: %d", ErrNoEntry, req.LambdaID)
		}
		return fmt.Errorf("lambda %d: %w", req.LambdaID, err)
	}
	en.headers[FieldStatus] = status
	if fn != nil {
		fn(nicsim.Response{Payload: en.resp, Stats: en.stats})
	}
	e.putEnv(en)
	return err
}

// runCompiled dispatches a prepared request through the compiled
// backend: jump table when the reduced match stage was recognized,
// compiled __match chain otherwise, direct entry when there is no
// match stage.
func (e *Executable) runCompiled(en *env, req *nicsim.Request) (int64, error) {
	if e.dispatch != nil {
		return e.dispatch.run(en)
	}
	if mf := e.funcs[MatchFunction]; mf != nil {
		return mf.run(en)
	}
	name, ok := e.prog.Entries[req.LambdaID]
	if !ok {
		return 0, ErrNoEntry
	}
	return e.funcs[name].run(en)
}

// executeInterp is the reference interpreter data path.
func (e *Executable) executeInterp(req *nicsim.Request) (nicsim.Response, error) {
	env := env{exe: e}
	e.prepare(&env, req)

	entry := e.prog.Func(MatchFunction)
	if entry == nil {
		name, ok := e.prog.Entries[req.LambdaID]
		if !ok {
			return nicsim.Response{}, fmt.Errorf("%w: %d", ErrNoEntry, req.LambdaID)
		}
		entry = e.prog.Func(name)
	}
	status, err := env.run(entry)
	if err != nil {
		return nicsim.Response{Stats: env.stats}, fmt.Errorf("lambda %d: %w", req.LambdaID, err)
	}
	env.headers[FieldStatus] = status
	return nicsim.Response{Payload: env.resp, Stats: env.stats}, nil
}

// RunStandalone executes a single named function outside the NIC (used
// by tests and the compiler's constant-effect checks). It returns the
// status, response bytes, and statistics.
func (e *Executable) RunStandalone(fn string, payload []byte, headers map[int]int64) (int64, []byte, nicsim.ExecStats, error) {
	if e.engine == EngineInterp {
		f := e.prog.Func(fn)
		if f == nil {
			return 0, nil, nicsim.ExecStats{}, fmt.Errorf("mcc: unknown function %q", fn)
		}
		env := env{exe: e, payload: payload, payloadLevel: e.opts.SinglePacketLevel}
		if env.payloadLevel == 0 {
			env.payloadLevel = nicsim.MemCTM
		}
		for k, v := range headers {
			if k >= 0 && k < NumFields {
				env.headers[k] = v
			}
		}
		status, err := env.run(f)
		return status, env.resp, env.stats, err
	}
	cf := e.funcs[fn]
	if cf == nil {
		return 0, nil, nicsim.ExecStats{}, fmt.Errorf("mcc: unknown function %q", fn)
	}
	en := e.getEnv()
	en.payload = payload
	en.payloadLevel = e.opts.SinglePacketLevel
	if en.payloadLevel == 0 {
		en.payloadLevel = nicsim.MemCTM
	}
	for k, v := range headers {
		if k >= 0 && k < NumFields {
			en.headers[k] = v
		}
	}
	status, err := cf.run(en)
	resp := en.resp
	en.resp = nil // detached: the caller keeps the partial response
	stats := en.stats
	e.putEnv(en)
	return status, resp, stats, err
}
