package mcc

import (
	"fmt"

	"lambdanic/internal/nicsim"
)

// Well-known symbols.
const (
	// PayloadObject names the request payload pseudo-object readable by
	// bulk operations.
	PayloadObject = "__payload"
	// MatchFunction, when present, is the synthesized parse+match entry
	// run for every request (internal/matchlambda generates it). When
	// absent, the linker dispatches directly to the lambda entry.
	MatchFunction = "__match"
)

// LinkOptions tune the produced executable.
type LinkOptions struct {
	// StepLimit bounds dynamic instructions per request; 0 uses the
	// default.
	StepLimit uint64
	// SinglePacketLevel is where single-packet payloads live when the
	// lambda reads them (the packet buffer in CTM by default).
	SinglePacketLevel nicsim.MemLevel
	// MultiPacketLevel is where RDMA-committed multi-packet payloads
	// live (EMEM by default; §4.2.1 D3).
	MultiPacketLevel nicsim.MemLevel
}

// Executable is linked firmware implementing nicsim.Program: the
// Match+Lambda image every NPU core runs. Object memory persists across
// requests (the paper's "global objects that persist state across
// runs", §4.1); Reset restores initial contents.
type Executable struct {
	prog      *Program
	mem       map[string][]byte
	levels    map[string]nicsim.MemLevel
	stepLimit uint64
	opts      LinkOptions
}

var _ nicsim.Program = (*Executable)(nil)

// Link validates the program, allocates object memory, and produces an
// executable image.
func Link(p *Program, opts LinkOptions) (*Executable, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Entries) == 0 {
		return nil, fmt.Errorf("mcc: program has no lambda entries")
	}
	// Compile-time memory assertions (§4.2.1 D2): statically provable
	// out-of-bounds accesses never reach the NIC.
	if violations := StaticCheck(p); len(violations) > 0 {
		return nil, fmt.Errorf("mcc: %d static assertion(s) failed, first: %w",
			len(violations), violations[0])
	}
	if opts.StepLimit == 0 {
		opts.StepLimit = defaultStepLimit
	}
	if opts.SinglePacketLevel == 0 {
		opts.SinglePacketLevel = nicsim.MemCTM
	}
	if opts.MultiPacketLevel == 0 {
		opts.MultiPacketLevel = nicsim.MemEMEM
	}
	e := &Executable{
		prog:      p,
		mem:       make(map[string][]byte, len(p.Objects)),
		levels:    make(map[string]nicsim.MemLevel, len(p.Objects)),
		stepLimit: opts.StepLimit,
		opts:      opts,
	}
	e.Reset()
	return e, nil
}

// Reset restores every object to its initial contents.
func (e *Executable) Reset() {
	for _, o := range e.prog.Objects {
		buf := make([]byte, o.Size)
		copy(buf, o.Init)
		e.mem[o.Name] = buf
		e.levels[o.Name] = o.EffectiveLevel()
	}
}

// Program returns the linked program (read-only use).
func (e *Executable) Program() *Program { return e.prog }

// Handles reports whether the image has a lambda for the ID.
func (e *Executable) Handles(id uint32) bool {
	_, ok := e.prog.Entries[id]
	return ok
}

// StaticInstructions is the image code size.
func (e *Executable) StaticInstructions() int { return e.prog.StaticInstructions() }

// MemoryBytes reports per-level memory demand from object placement.
func (e *Executable) MemoryBytes() map[nicsim.MemLevel]int {
	out := make(map[nicsim.MemLevel]int)
	for _, o := range e.prog.Objects {
		out[o.EffectiveLevel()] += o.Size
	}
	return out
}

// Execute runs the image for one request: parse (header extraction),
// match (synthesized __match function when present), then the lambda —
// charging dynamic instructions and memory accesses.
func (e *Executable) Execute(req *nicsim.Request) (nicsim.Response, error) {
	env := env{
		exe:          e,
		payload:      req.Payload,
		payloadLevel: e.opts.SinglePacketLevel,
	}
	if req.Packets > 1 {
		env.payloadLevel = e.opts.MultiPacketLevel
	}
	env.headers[FieldWorkloadID] = int64(req.LambdaID)
	env.headers[FieldPayloadLen] = int64(len(req.Payload))

	entry := e.prog.Func(MatchFunction)
	if entry == nil {
		name, ok := e.prog.Entries[req.LambdaID]
		if !ok {
			return nicsim.Response{}, fmt.Errorf("%w: %d", ErrNoEntry, req.LambdaID)
		}
		entry = e.prog.Func(name)
	}
	status, err := env.run(entry)
	if err != nil {
		return nicsim.Response{Stats: env.stats}, fmt.Errorf("lambda %d: %w", req.LambdaID, err)
	}
	env.headers[FieldStatus] = status
	return nicsim.Response{Payload: env.resp, Stats: env.stats}, nil
}

// RunStandalone executes a single named function outside the NIC (used
// by tests and the compiler's constant-effect checks). It returns the
// status, response bytes, and statistics.
func (e *Executable) RunStandalone(fn string, payload []byte, headers map[int]int64) (int64, []byte, nicsim.ExecStats, error) {
	f := e.prog.Func(fn)
	if f == nil {
		return 0, nil, nicsim.ExecStats{}, fmt.Errorf("mcc: unknown function %q", fn)
	}
	env := env{exe: e, payload: payload, payloadLevel: e.opts.SinglePacketLevel}
	if env.payloadLevel == 0 {
		env.payloadLevel = nicsim.MemCTM
	}
	for k, v := range headers {
		if k >= 0 && k < NumFields {
			env.headers[k] = v
		}
	}
	status, err := env.run(f)
	return status, env.resp, env.stats, err
}
