// Real-workload benchmarks over the public API (external test package
// for the same import-cycle reason as allocs_test.go). These are the
// ns/op numbers the lambdabench experiment tracks; keeping them as Go
// benchmarks makes them profilable with -cpuprofile.
package mcc_test

import (
	"testing"

	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/workloads"
)

func benchWorkloads(b *testing.B, eng mcc.Engine) {
	ws := []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.ImageTransformer(16, 16),
	}
	exe, _, err := workloads.CompileOptimizedWith(ws, workloads.NaiveProgramTarget,
		mcc.LinkOptions{Engine: eng})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range ws {
		payload := w.MakeRequest(7)
		req := &nicsim.Request{
			LambdaID: w.ID,
			Payload:  payload,
			Packets:  workloads.Packets(len(payload)),
		}
		b.Run(w.Name, func(b *testing.B) {
			for i := 0; i < 3; i++ {
				if err := exe.ExecutePooled(req, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := exe.ExecutePooled(req, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWorkloadInterp(b *testing.B)   { benchWorkloads(b, mcc.EngineInterp) }
func BenchmarkWorkloadCompiled(b *testing.B) { benchWorkloads(b, mcc.EngineCompiled) }
