package mcc

import (
	"errors"
	"strings"
	"testing"

	"lambdanic/internal/nicsim"
)

// linkBoth links the same program under both engines. Object memory is
// per-executable, so the two images evolve independently.
func linkBoth(t *testing.T, p *Program, opts LinkOptions) (compiled, interp *Executable) {
	t.Helper()
	opts.Engine = EngineCompiled
	c, err := Link(p, opts)
	if err != nil {
		t.Fatalf("Link compiled: %v", err)
	}
	opts.Engine = EngineInterp
	i, err := Link(p, opts)
	if err != nil {
		t.Fatalf("Link interp: %v", err)
	}
	return c, i
}

// execBoth runs the request through both engines and asserts identical
// observable behavior: status header via response payload, ExecStats,
// and error sentinel class.
func execBoth(t *testing.T, compiled, interp *Executable, req *nicsim.Request) (nicsim.Response, error) {
	t.Helper()
	cr, cerr := compiled.Execute(req)
	ir, ierr := interp.Execute(req)
	if (cerr == nil) != (ierr == nil) {
		t.Fatalf("error divergence: compiled=%v interp=%v", cerr, ierr)
	}
	if cerr != nil && !sameFaultClass(cerr, ierr) {
		t.Fatalf("fault class divergence: compiled=%v interp=%v", cerr, ierr)
	}
	if string(cr.Payload) != string(ir.Payload) {
		t.Fatalf("response divergence: compiled=%q interp=%q", cr.Payload, ir.Payload)
	}
	if cr.Stats != ir.Stats {
		t.Fatalf("stats divergence: compiled=%+v interp=%+v", cr.Stats, ir.Stats)
	}
	return cr, cerr
}

// sameFaultClass compares errors by sentinel.
func sameFaultClass(a, b error) bool {
	for _, sentinel := range []error{ErrStepLimit, ErrCallDepth, ErrOutOfBounds, ErrNoEntry, errHdrRange, errUnknownObject, errUnknownFunc, errInvalidOp} {
		if errors.Is(a, sentinel) || errors.Is(b, sentinel) {
			return errors.Is(a, sentinel) && errors.Is(b, sentinel)
		}
	}
	return a.Error() == b.Error()
}

func reducedMatchProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram()
	add := func(f *Function) {
		if err := p.AddFunc(f); err != nil {
			t.Fatal(err)
		}
	}
	// Lambda A: arithmetic + emit; observes the scratch registers the
	// match chain leaves behind (r2 = key) like a real generated lambda
	// could.
	la := NewBuilder("lambda_a")
	la.MovImm(3, 10)
	la.Add(3, 3, 2) // r2 holds the matched key
	la.EmitByte(3)
	la.MovImm(1, StatusForward)
	la.Ret(1)
	add(la.MustBuild())
	// Lambda B: stateful counter in an object.
	lb := NewBuilder("lambda_b")
	lb.MovImm(4, 0)
	lb.Load(5, "ctr", 4, 0)
	lb.MovImm(6, 1)
	lb.Add(5, 5, 6)
	lb.Store("ctr", 4, 0, 5)
	lb.EmitByte(5)
	lb.MovImm(1, StatusForward)
	lb.Ret(1)
	add(lb.MustBuild())
	if err := p.AddObject(&Object{Name: "ctr", Size: 8, Level: nicsim.MemCTM}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(1, "lambda_a"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(2, "lambda_b"); err != nil {
		t.Fatal(err)
	}
	p.Match = &MatchPlan{
		Tables: []MatchTable{
			{Name: "ra", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 1, Action: "lambda_a"}}},
			{Name: "rb", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 2, Action: "lambda_b"}}},
		},
		Reduced: true,
	}
	mf, err := GenerateMatch(p.Match)
	if err != nil {
		t.Fatal(err)
	}
	add(mf)
	return p
}

func TestDispatchKinds(t *testing.T) {
	// Direct dispatch: no match stage.
	bd := NewBuilder("f")
	bd.MovImm(1, StatusForward)
	bd.Ret(1)
	direct := link(t, singleEntry(t, bd.MustBuild()))
	if got := direct.DispatchKind(); got != "direct" {
		t.Fatalf("DispatchKind = %q, want direct", got)
	}
	if direct.Engine() != EngineCompiled {
		t.Fatalf("default engine = %v, want compiled", direct.Engine())
	}

	// Reduced match stage: jump table.
	jt := link(t, reducedMatchProgram(t))
	if got := jt.DispatchKind(); got != "jump-table" {
		t.Fatalf("DispatchKind = %q, want jump-table", got)
	}

	// Interpreter engine reports itself.
	ie, err := Link(reducedMatchProgram(t), LinkOptions{Engine: EngineInterp})
	if err != nil {
		t.Fatal(err)
	}
	if got := ie.DispatchKind(); got != "interp" {
		t.Fatalf("DispatchKind = %q, want interp", got)
	}
}

// A __match body that no longer matches what GenerateMatch would emit
// for the plan must not be replaced by the jump table: the edited code
// is the source of truth and executes as a compiled chain.
func TestJumpTableRejectsHandEditedMatch(t *testing.T) {
	p := reducedMatchProgram(t)
	mf := p.Func(MatchFunction)
	mf.Body = append([]Instr{{Op: OpNop}}, mf.Body...)
	// Fix up branch targets shifted by the prepended nop.
	for i := 1; i < len(mf.Body); i++ {
		switch mf.Body[i].Op {
		case OpJmp, OpBrz, OpBrnz:
			mf.Body[i].Imm++
		}
	}
	exe := link(t, p)
	if got := exe.DispatchKind(); got != "match-chain" {
		t.Fatalf("DispatchKind = %q, want match-chain", got)
	}
	// And it still agrees with the interpreter.
	ie, err := Link(p, LinkOptions{Engine: EngineInterp})
	if err != nil {
		t.Fatal(err)
	}
	execBoth(t, exe, ie, &nicsim.Request{LambdaID: 2, Packets: 1})
}

func TestJumpTableParity(t *testing.T) {
	p := reducedMatchProgram(t)
	compiled, interp := linkBoth(t, p, LinkOptions{})
	// Hits on both lambdas (lambda_b is stateful: the counter advances
	// in lockstep in both images), then a miss.
	for _, id := range []uint32{1, 2, 2, 2, 1, 99} {
		resp, err := execBoth(t, compiled, interp, &nicsim.Request{LambdaID: id, Packets: 1})
		if err != nil {
			t.Fatalf("lambda %d: %v", id, err)
		}
		if id == 99 && len(resp.Payload) != 0 {
			t.Fatalf("miss emitted payload %q", resp.Payload)
		}
	}
}

// Tiny step limits must trip at the exact same instruction count in
// both engines, whether the limit lands inside a fused block, inside
// the jump-table dispatch chain, or inside a lambda.
func TestStepLimitParity(t *testing.T) {
	p := reducedMatchProgram(t)
	for limit := uint64(1); limit <= 40; limit++ {
		compiled, interp := linkBoth(t, p, LinkOptions{StepLimit: limit})
		for _, id := range []uint32{1, 2, 99} {
			req := &nicsim.Request{LambdaID: id, Packets: 1}
			cr, cerr := compiled.Execute(req)
			ir, ierr := interp.Execute(req)
			if (cerr == nil) != (ierr == nil) || (cerr != nil && !sameFaultClass(cerr, ierr)) {
				t.Fatalf("limit %d id %d: compiled err %v, interp err %v", limit, id, cerr, ierr)
			}
			if cr.Stats != ir.Stats {
				t.Fatalf("limit %d id %d: stats %+v vs %+v", limit, id, cr.Stats, ir.Stats)
			}
			if cerr != nil && cr.Stats.Instructions != limit+1 {
				t.Fatalf("limit %d id %d: tripped at %d instructions, want limit+1", limit, id, cr.Stats.Instructions)
			}
		}
	}
}

func TestCompiledCallDepthParity(t *testing.T) {
	p := NewProgram()
	const chain = maxCallDepth + 4
	for i := chain - 1; i >= 0; i-- {
		b := NewBuilder(funcName(i))
		if i+1 < chain {
			b.Call(funcName(i + 1))
		}
		b.MovImm(1, StatusForward)
		b.Ret(1)
		if err := p.AddFunc(b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddEntry(1, funcName(0)); err != nil {
		t.Fatal(err)
	}
	compiled, interp := linkBoth(t, p, LinkOptions{})
	_, err := execBoth(t, compiled, interp, &nicsim.Request{LambdaID: 1, Packets: 1})
	if !errors.Is(err, ErrCallDepth) {
		t.Fatalf("err = %v, want ErrCallDepth", err)
	}
}

func funcName(i int) string {
	return "chain_" + string(rune('a'+i/10)) + string(rune('a'+i%10))
}

// Pooled execution must leave no state behind: two identical requests
// observe identical stats and payloads even though the second reuses
// the first's env and response buffer.
func TestExecutePooledReuse(t *testing.T) {
	exe := link(t, reducedMatchProgram(t))
	req := &nicsim.Request{LambdaID: 1, Packets: 1}
	var first []byte
	var firstStats nicsim.ExecStats
	if err := exe.ExecutePooled(req, func(r nicsim.Response) {
		first = append([]byte(nil), r.Payload...)
		firstStats = r.Stats
	}); err != nil {
		t.Fatal(err)
	}
	if err := exe.ExecutePooled(req, func(r nicsim.Response) {
		if string(r.Payload) != string(first) {
			t.Fatalf("pooled rerun payload %q, want %q", r.Payload, first)
		}
		if r.Stats != firstStats {
			t.Fatalf("pooled rerun stats %+v, want %+v", r.Stats, firstStats)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// Reset must restore object contents in place: compiled closures hold
// slot pointers into the original backing arrays.
func TestResetPreservesCompiledSlots(t *testing.T) {
	compiled, interp := linkBoth(t, reducedMatchProgram(t), LinkOptions{})
	req := &nicsim.Request{LambdaID: 2, Packets: 1}
	before, err := execBoth(t, compiled, interp, req)
	if err != nil {
		t.Fatal(err)
	}
	execBoth(t, compiled, interp, req) // counter = 2 in both images
	compiled.Reset()
	interp.Reset()
	after, err := execBoth(t, compiled, interp, req)
	if err != nil {
		t.Fatal(err)
	}
	if string(after.Payload) != string(before.Payload) {
		t.Fatalf("post-Reset payload %q, want %q", after.Payload, before.Payload)
	}
}

func TestDisassembleFusedRoundTrip(t *testing.T) {
	b := NewBuilder("fusetest")
	b.MovImm(2, 7)
	b.MovImm(3, 5)
	b.Add(4, 2, 3)
	b.HdrGet(5, FieldArg0)
	b.Brz(5, "skip") // breaks the run
	b.Xor(4, 4, 2)
	b.Mul(4, 4, 3)
	b.Label("skip")
	b.EmitByte(4)
	b.Ret(4)
	exe := link(t, singleEntry(t, b.MustBuild()))
	f := exe.Program().Func("fusetest")
	fu := exe.Fusion("fusetest")
	if fu == nil || len(fu.Runs) == 0 {
		t.Fatal("no fusion recorded for a straight-line prefix")
	}
	fused := f.DisassembleFused(fu)
	if !strings.Contains(fused, "fuse{") {
		t.Fatalf("fused listing missing markers:\n%s", fused)
	}
	// Stripping the fusion markers must recover the plain listing
	// exactly — traces stay debuggable.
	var kept []string
	for _, line := range strings.Split(fused, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "fuse{") || trimmed == "}" {
			continue
		}
		kept = append(kept, line)
	}
	if got, want := strings.Join(kept, "\n"), f.Disassemble(); got != want {
		t.Fatalf("round-trip mismatch:\n--- stripped fused ---\n%s\n--- plain ---\n%s", got, want)
	}
	// Fused runs never cross a branch target.
	for _, r := range fu.Runs {
		for i := range f.Body {
			switch f.Body[i].Op {
			case OpJmp, OpBrz, OpBrnz:
				tgt := int(f.Body[i].Imm)
				if tgt > r.Start && tgt < r.Start+r.Len {
					t.Fatalf("branch target %d inside fused run %+v", tgt, r)
				}
			}
		}
	}
}

// Dynamic-address loads keep their runtime bounds checks and fail with
// the object's pre-built sentinel error in both engines.
func TestCompiledOutOfBoundsParity(t *testing.T) {
	b := NewBuilder("oob")
	b.HdrGet(2, FieldArg0) // attacker-controlled offset
	b.Load(3, "buf", 2, 0)
	b.EmitByte(3)
	b.Ret(3)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	compiled, interp := linkBoth(t, p, LinkOptions{})
	// In range.
	if _, err := execBoth(t, compiled, interp, &nicsim.Request{LambdaID: 1, Packets: 1}); err != nil {
		t.Fatal(err)
	}
	// RunStandalone with an out-of-range header drives the fault.
	_, _, cstats, cerr := compiled.RunStandalone("oob", nil, map[int]int64{FieldArg0: 99})
	_, _, istats, ierr := interp.RunStandalone("oob", nil, map[int]int64{FieldArg0: 99})
	if !errors.Is(cerr, ErrOutOfBounds) || !errors.Is(ierr, ErrOutOfBounds) {
		t.Fatalf("want ErrOutOfBounds from both, got compiled=%v interp=%v", cerr, ierr)
	}
	if cstats != istats {
		t.Fatalf("fault stats diverge: %+v vs %+v", cstats, istats)
	}
	if cerr.Error() != ierr.Error() {
		t.Fatalf("fault messages diverge: %q vs %q", cerr, ierr)
	}
}
