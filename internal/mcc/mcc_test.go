package mcc

import (
	"errors"
	"strings"
	"testing"

	"lambdanic/internal/nicsim"
)

// link is a test helper wrapping Link.
func link(t *testing.T, p *Program) *Executable {
	t.Helper()
	e, err := Link(p, LinkOptions{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return e
}

// singleEntry builds a program with one lambda (ID 1) from a function
// and optional objects.
func singleEntry(t *testing.T, f *Function, objs ...*Object) *Program {
	t.Helper()
	p := NewProgram()
	if err := p.AddFunc(f); err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if err := p.AddObject(o); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddEntry(1, f.Name); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuilderLabelResolution(t *testing.T) {
	b := NewBuilder("count")
	// r0 = 3; loop: r0--; if r0 != 0 goto loop; ret r0
	b.MovImm(0, 3)
	b.MovImm(1, 1)
	b.Label("loop")
	b.Sub(0, 0, 1)
	b.Brnz(0, "loop")
	b.Ret(0)
	f, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if f.Body[3].Imm != 2 {
		t.Errorf("branch target = %d, want 2", f.Body[3].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with undefined label succeeded")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Label("x")
	b.Nop()
	b.Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build with duplicate label succeeded")
	}
}

func TestInterpArithmetic(t *testing.T) {
	b := NewBuilder("alu")
	b.MovImm(1, 10)
	b.MovImm(2, 3)
	b.Add(3, 1, 2) // 13
	b.Mul(3, 3, 2) // 39
	b.Sub(3, 3, 1) // 29
	b.MovImm(4, 1)
	b.Shl(3, 3, 4) // 58
	b.Shr(3, 3, 4) // 29
	b.EmitByte(3)
	b.Ret(3)
	p := singleEntry(t, b.MustBuild())
	e := link(t, p)
	status, resp, _, err := e.RunStandalone("alu", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 29 || len(resp) != 1 || resp[0] != 29 {
		t.Errorf("status=%d resp=%v, want 29/[29]", status, resp)
	}
}

func TestInterpLoop(t *testing.T) {
	// Sum 1..10 via branch ops.
	b := NewBuilder("sum")
	b.MovImm(1, 10) // i
	b.MovImm(2, 0)  // acc
	b.MovImm(3, 1)
	b.Label("loop")
	b.Add(2, 2, 1)
	b.Sub(1, 1, 3)
	b.Brnz(1, "loop")
	b.Ret(2)
	p := singleEntry(t, b.MustBuild())
	e := link(t, p)
	status, _, stats, err := e.RunStandalone("sum", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 55 {
		t.Errorf("sum = %d, want 55", status)
	}
	// 3 setup + 10 iterations x 3 + ret = 34 instructions.
	if stats.Instructions != 34 {
		t.Errorf("Instructions = %d, want 34", stats.Instructions)
	}
}

func TestInterpMemoryAndLevels(t *testing.T) {
	b := NewBuilder("mem")
	b.MovImm(1, 0)
	b.MovImm(2, 0x41)
	b.Store("buf", 1, 0, 2)
	b.Load(3, "buf", 1, 0)
	b.EmitByte(3)
	b.Ret(3)
	obj := &Object{Name: "buf", Size: 16, Level: nicsim.MemIMEM}
	p := singleEntry(t, b.MustBuild(), obj)
	e := link(t, p)
	_, resp, stats, err := e.RunStandalone("mem", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if string(resp) != "A" {
		t.Errorf("resp = %q, want A", resp)
	}
	if got := stats.Accesses(nicsim.MemIMEM); got != 2 {
		t.Errorf("IMEM accesses = %d, want 2", got)
	}
}

func TestInterpWordOps(t *testing.T) {
	b := NewBuilder("word")
	b.MovImm(1, 0)
	b.MovImm(2, 0x1122334455667788)
	b.StoreW("buf", 1, 0, 2)
	b.LoadW(3, "buf", 1, 0)
	b.Ret(3)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	e := link(t, p)
	status, _, _, err := e.RunStandalone("word", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 0x1122334455667788 {
		t.Errorf("round-trip = %#x", status)
	}
}

func TestInterpOutOfBounds(t *testing.T) {
	// The address comes from a header, so the static assertions cannot
	// prove it bad; the dynamic check must catch it.
	b := NewBuilder("oob")
	b.HdrGet(1, FieldArg0)
	b.Load(2, "buf", 1, 0)
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 8})
	e := link(t, p)
	_, _, _, err := e.RunStandalone("oob", nil, map[int]int64{FieldArg0: 100})
	if !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestInterpStepLimit(t *testing.T) {
	b := NewBuilder("spin")
	b.Label("loop")
	b.Jmp("loop")
	p := singleEntry(t, b.MustBuild())
	e, err := Link(p, LinkOptions{StepLimit: 1000})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _, err = e.RunStandalone("spin", nil, nil)
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("err = %v, want ErrStepLimit", err)
	}
}

func TestInterpHeadersAndPayload(t *testing.T) {
	b := NewBuilder("hdr")
	b.HdrGet(1, FieldArg0)
	b.PktLoad(2, RegZero, 1) // payload[1]
	b.Add(3, 1, 2)
	b.PktLen(4)
	b.Add(3, 3, 4)
	b.Ret(3)
	p := singleEntry(t, b.MustBuild())
	e := link(t, p)
	status, _, _, err := e.RunStandalone("hdr", []byte{9, 7, 5}, map[int]int64{FieldArg0: 100})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 100+7+3 {
		t.Errorf("status = %d, want 110", status)
	}
}

func TestInterpZeroRegister(t *testing.T) {
	b := NewBuilder("zr")
	b.MovImm(RegZero, 42) // must be discarded
	b.Mov(1, RegZero)
	b.Ret(1)
	p := singleEntry(t, b.MustBuild())
	e := link(t, p)
	status, _, _, err := e.RunStandalone("zr", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 0 {
		t.Errorf("RegZero read = %d, want 0", status)
	}
}

func TestInterpCallAndSharedState(t *testing.T) {
	helper := NewBuilder("helper")
	helper.MovImm(5, 7)
	helper.Ret(5)
	main := NewBuilder("main")
	main.Call("helper")
	main.Ret(5) // registers are shared across calls (NPU style)
	p := NewProgram()
	if err := p.AddFunc(helper.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(main.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(1, "main"); err != nil {
		t.Fatal(err)
	}
	e := link(t, p)
	status, _, _, err := e.RunStandalone("main", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 7 {
		t.Errorf("status = %d, want 7", status)
	}
}

func TestValidateRejectsRecursion(t *testing.T) {
	a := NewBuilder("a")
	a.Call("b")
	a.Ret(0)
	bf := NewBuilder("b")
	bf.Call("a")
	bf.Ret(0)
	p := NewProgram()
	if err := p.AddFunc(a.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunc(bf.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(1, "a"); err != nil {
		t.Fatal(err)
	}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("Validate = %v, want recursion error", err)
	}
}

func TestValidateRejectsUnknownSymbols(t *testing.T) {
	b := NewBuilder("f")
	b.Load(1, "ghost", 0, 0)
	b.Ret(1)
	p := singleEntry(t, b.MustBuild())
	// Remove the object check path by not adding "ghost".
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted unknown object")
	}

	b2 := NewBuilder("g")
	b2.Call("phantom")
	b2.Ret(0)
	p2 := NewProgram()
	if err := p2.AddFunc(b2.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := p2.Validate(); err == nil {
		t.Error("Validate accepted unknown call target")
	}
}

func TestBulkMemcpyAndCosts(t *testing.T) {
	b := NewBuilder("cp")
	b.MovImm(1, 0)   // src off
	b.MovImm(2, 128) // len
	b.MovImm(3, 0)   // dst off
	b.Memcpy("dst", 3, "src", 1, 2)
	b.MovImm(4, 0)
	b.MovImm(5, 128)
	b.Emit("dst", 4, 5)
	b.Ret(2)
	src := &Object{Name: "src", Size: 128, Init: []byte(strings.Repeat("x", 128)), Level: nicsim.MemEMEM}
	dst := &Object{Name: "dst", Size: 128, Level: nicsim.MemCTM}
	p := singleEntry(t, b.MustBuild(), src, dst)
	e := link(t, p)
	_, resp, stats, err := e.RunStandalone("cp", nil, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(resp) != 128 || resp[0] != 'x' {
		t.Errorf("copy failed: %d bytes", len(resp))
	}
	// 128 bytes = 2 bursts at each side.
	if got := stats.Accesses(nicsim.MemEMEM); got != 2 {
		t.Errorf("EMEM accesses = %d, want 2", got)
	}
	// dst: 2 write bursts + 2 emit read bursts.
	if got := stats.Accesses(nicsim.MemCTM); got != 4 {
		t.Errorf("CTM accesses = %d, want 4", got)
	}
}

func TestBulkGrayFromPayload(t *testing.T) {
	b := NewBuilder("gray")
	b.PktLen(2)    // bytes
	b.MovImm(1, 0) // src off
	b.MovImm(3, 0) // dst off
	b.Gray("out", 3, PayloadObject, 1, 2)
	b.MovImm(4, 2)
	b.Shr(5, 2, 4) // pixels = bytes/4
	b.Emit("out", 3, 5)
	b.Ret(5)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "out", Size: 64})
	e := link(t, p)
	// Two pixels: pure red and pure green.
	payload := []byte{255, 0, 0, 255, 0, 255, 0, 255}
	status, resp, stats, err := e.RunStandalone("gray", payload, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if status != 2 || len(resp) != 2 {
		t.Fatalf("pixels = %d resp = %v", status, resp)
	}
	// (77*255)>>8 = 76 for red; (150*255)>>8 = 149 for green.
	if resp[0] != 76 || resp[1] != 149 {
		t.Errorf("gray = %v, want [76 149]", resp)
	}
	if stats.Instructions < uint64(2) {
		t.Error("gray charged no per-pixel instructions")
	}
}

func TestBulkGrayRejectsPartialPixel(t *testing.T) {
	b := NewBuilder("gray")
	b.MovImm(2, 3) // not a multiple of 4
	b.Gray("out", 3, PayloadObject, 1, 2)
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "out", Size: 64})
	e := link(t, p)
	if _, _, _, err := e.RunStandalone("gray", []byte{1, 2, 3}, nil); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("err = %v, want ErrOutOfBounds", err)
	}
}

func TestBulkHashDeterministic(t *testing.T) {
	b := NewBuilder("h")
	b.MovImm(1, 0)
	b.MovImm(2, 8)
	b.Hash(3, "key", 1, 2)
	b.Ret(3)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "key", Size: 8, Init: []byte("abcdefgh")})
	e := link(t, p)
	s1, _, _, err := e.RunStandalone("h", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, _, err := e.RunStandalone("h", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 || s1 == 0 {
		t.Errorf("hash not deterministic or zero: %d vs %d", s1, s2)
	}
}

func TestObjectStatePersistsAcrossRuns(t *testing.T) {
	// A counter lambda: increments a persistent word (paper §4.1:
	// "global objects that persist state across runs").
	b := NewBuilder("counter")
	b.MovImm(1, 0)
	b.LoadW(2, "state", 1, 0)
	b.MovImm(3, 1)
	b.Add(2, 2, 3)
	b.StoreW("state", 1, 0, 2)
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "state", Size: 8})
	e := link(t, p)
	for want := int64(1); want <= 3; want++ {
		got, _, _, err := e.RunStandalone("counter", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("run %d: counter = %d", want, got)
		}
	}
	e.Reset()
	got, _, _, err := e.RunStandalone("counter", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("after Reset counter = %d, want 1", got)
	}
}

func TestExecuteViaNICInterface(t *testing.T) {
	b := NewBuilder("echo")
	b.PktLen(2)
	b.MovImm(1, 0)
	b.MovImm(3, 0)
	b.Memcpy("buf", 3, PayloadObject, 1, 2)
	b.Emit("buf", 3, 2)
	b.Ret(2)
	p := singleEntry(t, b.MustBuild(), &Object{Name: "buf", Size: 256})
	e := link(t, p)
	if !e.Handles(1) || e.Handles(2) {
		t.Error("Handles wrong")
	}
	resp, err := e.Execute(&nicsim.Request{LambdaID: 1, Payload: []byte("ping"), Packets: 1})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if string(resp.Payload) != "ping" {
		t.Errorf("resp = %q", resp.Payload)
	}
	// Single-packet payload reads charge CTM.
	if resp.Stats.Accesses(nicsim.MemCTM) == 0 {
		t.Error("no CTM accesses for single-packet payload")
	}
	// Multi-packet payloads are RDMA-committed to EMEM.
	resp2, err := e.Execute(&nicsim.Request{LambdaID: 1, Payload: []byte("pingpong"), Packets: 3})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if resp2.Stats.Accesses(nicsim.MemEMEM) == 0 {
		t.Error("no EMEM accesses for multi-packet payload")
	}
}

func TestExecuteUnknownEntry(t *testing.T) {
	b := NewBuilder("f")
	b.Ret(0)
	p := singleEntry(t, b.MustBuild())
	e := link(t, p)
	if _, err := e.Execute(&nicsim.Request{LambdaID: 99}); !errors.Is(err, ErrNoEntry) {
		t.Errorf("err = %v, want ErrNoEntry", err)
	}
}

func TestLinkRejectsEmptyProgram(t *testing.T) {
	if _, err := Link(NewProgram(), LinkOptions{}); err == nil {
		t.Error("Link accepted program with no entries")
	}
}

func TestMemoryBytesByLevel(t *testing.T) {
	b := NewBuilder("f")
	b.Ret(0)
	p := singleEntry(t, b.MustBuild(),
		&Object{Name: "a", Size: 100, Level: nicsim.MemCTM},
		&Object{Name: "b", Size: 200, Level: nicsim.MemEMEM},
		&Object{Name: "c", Size: 300}, // unassigned -> EMEM
	)
	e := link(t, p)
	mem := e.MemoryBytes()
	if mem[nicsim.MemCTM] != 100 || mem[nicsim.MemEMEM] != 500 {
		t.Errorf("MemoryBytes = %v", mem)
	}
}
