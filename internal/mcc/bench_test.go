package mcc

import (
	"testing"

	"lambdanic/internal/nicsim"
)

// benchProgram builds a representative lambda: header read, loop,
// memory traffic, emit.
func benchProgram(b *testing.B, engine Engine) *Executable {
	b.Helper()
	bd := NewBuilder("bench")
	bd.HdrGet(1, FieldArg0)
	bd.MovImm(2, 0)  // acc
	bd.MovImm(3, 32) // i
	bd.MovImm(4, 1)
	bd.Label("loop")
	bd.MovImm(5, 0)
	bd.Load(6, "buf", 5, 4)
	bd.Add(2, 2, 6)
	bd.Sub(3, 3, 4)
	bd.Brnz(3, "loop")
	bd.EmitByte(2)
	bd.Ret(2)
	p := NewProgram()
	if err := p.AddFunc(bd.MustBuild()); err != nil {
		b.Fatal(err)
	}
	if err := p.AddObject(&Object{Name: "buf", Size: 64, Level: nicsim.MemLocal}); err != nil {
		b.Fatal(err)
	}
	if err := p.AddEntry(1, "bench"); err != nil {
		b.Fatal(err)
	}
	exe, err := Link(p, LinkOptions{Engine: engine})
	if err != nil {
		b.Fatal(err)
	}
	return exe
}

func benchmarkExecute(b *testing.B, engine Engine) {
	exe := benchProgram(b, engine)
	req := &nicsim.Request{LambdaID: 1, Payload: []byte{1, 2, 3}, Packets: 1}
	b.ReportAllocs()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		err := exe.ExecutePooled(req, func(resp nicsim.Response) {
			instr = resp.Stats.Instructions
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(instr), "instr/req")
}

func BenchmarkInterpreterExecute(b *testing.B) { benchmarkExecute(b, EngineInterp) }
func BenchmarkCompiledExecute(b *testing.B)   { benchmarkExecute(b, EngineCompiled) }

func benchmarkBulkGray(b *testing.B, engine Engine) {
	bd := NewBuilder("gray")
	bd.PktLen(2)
	bd.MovImm(1, 0)
	bd.MovImm(3, 0)
	bd.Gray("out", 3, PayloadObject, 1, 2)
	bd.Ret(2)
	p := NewProgram()
	if err := p.AddFunc(bd.MustBuild()); err != nil {
		b.Fatal(err)
	}
	if err := p.AddObject(&Object{Name: "out", Size: 1 << 16}); err != nil {
		b.Fatal(err)
	}
	if err := p.AddEntry(1, "gray"); err != nil {
		b.Fatal(err)
	}
	exe, err := Link(p, LinkOptions{Engine: engine})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 64*1024)
	req := &nicsim.Request{LambdaID: 1, Payload: payload, Packets: 47}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := exe.ExecutePooled(req, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreterBulkGray(b *testing.B) { benchmarkBulkGray(b, EngineInterp) }
func BenchmarkCompiledBulkGray(b *testing.B)    { benchmarkBulkGray(b, EngineCompiled) }

func BenchmarkOptimizeAllPasses(b *testing.B) {
	p := buildBenchMatchProgram(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Optimize(p, AllPasses()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticCheck(b *testing.B) {
	p := buildBenchMatchProgram(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := StaticCheck(p); len(v) != 0 {
			b.Fatal("unexpected violations")
		}
	}
}

// buildBenchMatchProgram adapts the test fixture for benchmarks.
func buildBenchMatchProgram(b *testing.B) *Program {
	b.Helper()
	p := NewProgram()
	add := func(f *Function) {
		if err := p.AddFunc(f); err != nil {
			b.Fatal(err)
		}
	}
	add(helperBody("helper_a", 200))
	add(helperBody("helper_b", 200))
	la := NewBuilder("lambda_a")
	la.Call("helper_a")
	la.Ret(0)
	lb := NewBuilder("lambda_b")
	lb.Call("helper_b")
	lb.Ret(0)
	add(la.MustBuild())
	add(lb.MustBuild())
	if err := p.AddEntry(1, "lambda_a"); err != nil {
		b.Fatal(err)
	}
	if err := p.AddEntry(2, "lambda_b"); err != nil {
		b.Fatal(err)
	}
	p.Match = &MatchPlan{
		Tables: []MatchTable{
			{Name: "ra", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 1, Action: "lambda_a"}}},
			{Name: "rb", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 2, Action: "lambda_b"}}},
		},
	}
	mf, err := GenerateMatch(p.Match)
	if err != nil {
		b.Fatal(err)
	}
	add(mf)
	return p
}
