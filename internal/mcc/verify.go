package mcc

import "fmt"

// This file implements the compiler's static memory assertions: "the
// compiler can insert static and dynamic assertions to ensure that a
// lambda does not access the physical memory of other lambdas" (paper
// §4.2.1 D2; §7 "λ-NIC enforces this policy using compile-time
// assertions"). Accesses whose addresses are statically known —
// established by a light constant propagation over each basic block —
// are bounds-checked against their object at compile time; everything
// else remains guarded by the interpreter's dynamic checks.

// Violation is one statically provable out-of-bounds access.
type Violation struct {
	Func string
	PC   int
	Msg  string
}

// Error renders the violation.
func (v Violation) Error() string {
	return fmt.Sprintf("mcc: static assertion: %s+%d: %s", v.Func, v.PC, v.Msg)
}

// StaticCheck runs the compile-time assertions over every function and
// returns all provable violations.
func StaticCheck(p *Program) []Violation {
	var out []Violation
	for _, f := range p.Funcs {
		out = append(out, staticCheckFunc(p, f)...)
	}
	return out
}

// known tracks statically known register values within a basic block.
type known struct {
	val [NumRegs]int64
	ok  [NumRegs]bool
}

func (k *known) reset() {
	*k = known{}
	k.ok[RegZero] = true // hardwired zero
}

func (k *known) get(r Reg) (int64, bool) {
	if r == RegZero {
		return 0, true
	}
	return k.val[r], k.ok[r]
}

func (k *known) set(r Reg, v int64) {
	if r == RegZero {
		return
	}
	k.val[r], k.ok[r] = v, true
}

func (k *known) clear(r Reg) {
	if r == RegZero {
		return
	}
	k.ok[r] = false
}

func staticCheckFunc(p *Program, f *Function) []Violation {
	// Branch targets start fresh blocks: constant knowledge does not
	// flow across them (conservative).
	isTarget := make([]bool, len(f.Body)+1)
	for _, in := range f.Body {
		switch in.Op {
		case OpJmp, OpBrz, OpBrnz:
			if in.Imm >= 0 && in.Imm <= int64(len(f.Body)) {
				isTarget[in.Imm] = true
			}
		}
	}

	var out []Violation
	var k known
	k.reset()
	violate := func(pc int, format string, args ...any) {
		out = append(out, Violation{Func: f.Name, PC: pc, Msg: fmt.Sprintf(format, args...)})
	}
	objSize := func(name string) (int, bool) {
		if name == PayloadObject {
			return 0, false // payload size is dynamic
		}
		o := p.Object(name)
		if o == nil {
			return 0, false
		}
		return o.Size, true
	}
	checkAccess := func(pc int, sym string, base Reg, off int64, width int64) {
		v, ok := k.get(base)
		if !ok {
			return
		}
		size, ok := objSize(sym)
		if !ok {
			return
		}
		addr := v + off
		if addr < 0 || addr+width > int64(size) {
			violate(pc, "access %s[%d:%d] outside object of %d bytes", sym, addr, addr+width, size)
		}
	}

	for pc := 0; pc < len(f.Body); pc++ {
		if isTarget[pc] {
			k.reset()
		}
		in := &f.Body[pc]
		switch in.Op {
		case OpMovImm:
			k.set(in.Rd, in.Imm)
		case OpMov:
			if v, ok := k.get(in.Rs1); ok {
				k.set(in.Rd, v)
			} else {
				k.clear(in.Rd)
			}
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpLt:
			a, okA := k.get(in.Rs1)
			c, okC := k.get(in.Rs2)
			if okA && okC {
				k.set(in.Rd, evalALU(in.Op, a, c))
			} else {
				k.clear(in.Rd)
			}
		case OpLoad:
			checkAccess(pc, in.Sym, in.Rs1, in.Imm, 1)
			k.clear(in.Rd)
		case OpLoadW:
			checkAccess(pc, in.Sym, in.Rs1, in.Imm, 8)
			k.clear(in.Rd)
		case OpStore:
			checkAccess(pc, in.Sym, in.Rs1, in.Imm, 1)
		case OpStoreW:
			checkAccess(pc, in.Sym, in.Rs1, in.Imm, 8)
		case OpEmit:
			off, okO := k.get(in.Rs1)
			n, okN := k.get(in.Rs2)
			if okO && okN {
				if size, ok := objSize(in.Sym); ok && (off < 0 || n < 0 || off+n > int64(size)) {
					violate(pc, "emit %s[%d:%d] outside object of %d bytes", in.Sym, off, off+n, size)
				}
			}
		case OpMemcpy, OpGray:
			doff, okD := k.get(in.Rd)
			soff, okS := k.get(in.Rs1)
			n, okN := k.get(in.Rs2)
			if okD && okN {
				outBytes := n
				if in.Op == OpGray {
					outBytes = n / 4
				}
				if size, ok := objSize(in.Sym); ok && (doff < 0 || n < 0 || doff+outBytes > int64(size)) {
					violate(pc, "%s writes %s[%d:%d] outside object of %d bytes", in.Op, in.Sym, doff, doff+outBytes, size)
				}
			}
			if okS && okN {
				if size, ok := objSize(in.Sym2); ok && (soff < 0 || n < 0 || soff+n > int64(size)) {
					violate(pc, "%s reads %s[%d:%d] outside object of %d bytes", in.Op, in.Sym2, soff, soff+n, size)
				}
			}
		case OpHash:
			off, okO := k.get(in.Rs1)
			n, okN := k.get(in.Rs2)
			if okO && okN {
				if size, ok := objSize(in.Sym); ok && (off < 0 || n < 0 || off+n > int64(size)) {
					violate(pc, "hash %s[%d:%d] outside object of %d bytes", in.Sym, off, off+n, size)
				}
			}
			k.clear(in.Rd)
		case OpHdrGet, OpPktLoad, OpPktLen:
			k.clear(in.Rd)
		case OpCall:
			// Callees share the register file: all knowledge dies.
			k.reset()
		}
	}
	return out
}

func evalALU(op Opcode, a, b int64) int64 {
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << uint64(b&63)
	case OpShr:
		return int64(uint64(a) >> uint64(b&63))
	case OpEq:
		return boolTo64(a == b)
	case OpLt:
		return boolTo64(a < b)
	default:
		return 0
	}
}
