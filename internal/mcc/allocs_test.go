// Steady-state allocation gate for the compiled engine, in an external
// test package so it can drive the real paper workloads through the
// public API (workloads imports mcc; the internal test package cannot
// import it back).
package mcc_test

import (
	"runtime/debug"
	"testing"

	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/workloads"
)

// TestExecAllocs gates the tentpole's 0 allocs/op claim: steady-state
// pooled execution of the KV and grayscale lambdas (and the web
// server) must not allocate. GC is disabled for the measurement so
// sync.Pool eviction between runs cannot fake an allocation.
func TestExecAllocs(t *testing.T) {
	ws := []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.ImageTransformer(16, 16),
	}
	exe, _, err := workloads.CompileOptimizedWith(ws, 0, mcc.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if kind := exe.DispatchKind(); kind != "jump-table" {
		t.Fatalf("DispatchKind = %q, want jump-table for the optimized paper program", kind)
	}

	cases := make(map[string]*nicsim.Request)
	for _, w := range ws {
		payload := w.MakeRequest(7)
		cases[w.Name] = &nicsim.Request{
			LambdaID: w.ID,
			Payload:  payload,
			Packets:  workloads.Packets(len(payload)),
		}
	}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	for name, req := range cases {
		// Warm: first requests pay the runtime library's one-time init
		// and grow the pooled response buffer to steady-state capacity.
		for i := 0; i < 5; i++ {
			if err := exe.ExecutePooled(req, nil); err != nil {
				t.Fatalf("%s warmup: %v", name, err)
			}
		}
		avg := testing.AllocsPerRun(200, func() {
			if err := exe.ExecutePooled(req, nil); err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Errorf("%s: steady-state ExecutePooled allocates %.2f allocs/op, want 0", name, avg)
		}
	}
}
