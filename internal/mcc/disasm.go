package mcc

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders a function as readable assembly with labels at
// branch targets, for debugging and compiler reports.
func (f *Function) Disassemble() string {
	return f.DisassembleFused(nil)
}

// DisassembleFused renders the function with the compiled engine's
// fusion layout (Executable.Fusion) overlaid: each superinstruction is
// bracketed by a `fuse{n}` marker carrying its one-shot block charge
// and a closing `}`, with the component instructions listed unchanged
// inside. Passing nil yields the plain listing; stripping the marker
// lines always recovers it, which the round-trip test relies on to
// keep traces debuggable.
func (f *Function) DisassembleFused(fu *Fusion) string {
	targets := map[int]string{}
	for _, in := range f.Body {
		switch in.Op {
		case OpJmp, OpBrz, OpBrnz:
			idx := int(in.Imm)
			if _, ok := targets[idx]; !ok {
				targets[idx] = fmt.Sprintf("L%d", len(targets))
			}
		}
	}
	starts := map[int]int{} // leader pc -> run length
	if fu != nil {
		for _, r := range fu.Runs {
			starts[r.Start] = r.Len
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: ; %d instructions\n", f.Name, len(f.Body))
	open := 0 // remaining instructions in the open fused block
	for pc, in := range f.Body {
		if label, ok := targets[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", label)
		}
		if n, ok := starts[pc]; ok {
			fmt.Fprintf(&b, "  fuse{%d} ; charge %d once\n", n, n)
			open = n
		}
		fmt.Fprintf(&b, "  %4d  %s\n", pc, formatInstr(&in, targets))
		if open > 0 {
			if open--; open == 0 {
				b.WriteString("  }\n")
			}
		}
	}
	return b.String()
}

func formatInstr(in *Instr, targets map[int]string) string {
	reg := func(r Reg) string {
		if r == RegZero {
			return "rz"
		}
		return fmt.Sprintf("r%d", r)
	}
	target := func(imm int64) string {
		if label, ok := targets[int(imm)]; ok {
			return label
		}
		return fmt.Sprintf("@%d", imm)
	}
	switch in.Op {
	case OpNop:
		return "nop"
	case OpMovImm:
		return fmt.Sprintf("movi %s, %d", reg(in.Rd), in.Imm)
	case OpMov:
		return fmt.Sprintf("mov %s, %s", reg(in.Rd), reg(in.Rs1))
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr, OpEq, OpLt:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, reg(in.Rd), reg(in.Rs1), reg(in.Rs2))
	case OpJmp:
		return fmt.Sprintf("jmp %s", target(in.Imm))
	case OpBrz:
		return fmt.Sprintf("brz %s, %s", reg(in.Rs1), target(in.Imm))
	case OpBrnz:
		return fmt.Sprintf("brnz %s, %s", reg(in.Rs1), target(in.Imm))
	case OpLoad, OpLoadW:
		return fmt.Sprintf("%s %s, %s[%s+%d]", in.Op, reg(in.Rd), in.Sym, reg(in.Rs1), in.Imm)
	case OpStore, OpStoreW:
		return fmt.Sprintf("%s %s[%s+%d], %s", in.Op, in.Sym, reg(in.Rs1), in.Imm, reg(in.Rs2))
	case OpHdrGet:
		return fmt.Sprintf("hget %s, hdr[%d]", reg(in.Rd), in.Imm)
	case OpHdrSet:
		return fmt.Sprintf("hset hdr[%d], %s", in.Imm, reg(in.Rs1))
	case OpPktLoad:
		return fmt.Sprintf("pld %s, pkt[%s+%d]", reg(in.Rd), reg(in.Rs1), in.Imm)
	case OpPktLen:
		return fmt.Sprintf("plen %s", reg(in.Rd))
	case OpEmit:
		return fmt.Sprintf("emit %s[%s : %s+%s]", in.Sym, reg(in.Rs1), reg(in.Rs1), reg(in.Rs2))
	case OpEmitByte:
		return fmt.Sprintf("emitb %s", reg(in.Rs1))
	case OpCall:
		return fmt.Sprintf("call %s", in.Sym)
	case OpRet:
		return fmt.Sprintf("ret %s", reg(in.Rs1))
	case OpMemcpy:
		return fmt.Sprintf("memcpy %s[%s], %s[%s], %s", in.Sym, reg(in.Rd), in.Sym2, reg(in.Rs1), reg(in.Rs2))
	case OpGray:
		return fmt.Sprintf("gray %s[%s], %s[%s], %s", in.Sym, reg(in.Rd), in.Sym2, reg(in.Rs1), reg(in.Rs2))
	case OpHash:
		return fmt.Sprintf("hash %s, %s[%s : %s+%s]", reg(in.Rd), in.Sym, reg(in.Rs1), reg(in.Rs1), reg(in.Rs2))
	default:
		return in.Op.String()
	}
}

// Disassemble renders the whole program: objects, entries, then every
// function in declaration order.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program: %d functions, %d instructions\n",
		len(p.Funcs), p.StaticInstructions())
	for _, o := range p.Objects {
		fmt.Fprintf(&b, ".object %s %d bytes level=%s hint=%d\n",
			o.Name, o.Size, o.EffectiveLevel(), o.Hint)
	}
	ids := append([]uint32(nil), p.EntryOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(&b, ".entry %d -> %s\n", id, p.Entries[id])
	}
	for _, f := range p.Funcs {
		b.WriteString(f.Disassemble())
	}
	return b.String()
}
