package mcc

import "fmt"

// Builder composes a Function with label-based control flow, so callers
// never hand-compute branch targets.
//
//	b := NewBuilder("web_server")
//	b.MovImm(0, 0)
//	b.Label("loop")
//	...
//	b.Brnz(1, "loop")
//	f, err := b.Build()
type Builder struct {
	name   string
	body   []Instr
	labels map[string]int
	// fixups maps instruction index -> label awaiting resolution.
	fixups map[int]string
	err    error
}

// NewBuilder starts a function.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Label marks the next instruction's position.
func (b *Builder) Label(name string) *Builder {
	if _, ok := b.labels[name]; ok {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.body)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("mcc: builder %q: "+format, append([]any{b.name}, args...)...)
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.body = append(b.body, in)
	return b
}

// Nop appends a no-op (useful to pad code to a known size).
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: OpNop}) }

// MovImm sets rd to an immediate.
func (b *Builder) MovImm(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: OpMovImm, Rd: rd, Imm: imm})
}

// Mov copies rs1 into rd.
func (b *Builder) Mov(rd, rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpMov, Rd: rd, Rs1: rs1})
}

// ALU helpers.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder { return b.alu(OpAdd, rd, rs1, rs2) }
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder { return b.alu(OpSub, rd, rs1, rs2) }
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder { return b.alu(OpMul, rd, rs1, rs2) }
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder { return b.alu(OpAnd, rd, rs1, rs2) }
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder  { return b.alu(OpOr, rd, rs1, rs2) }
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder { return b.alu(OpXor, rd, rs1, rs2) }
func (b *Builder) Shl(rd, rs1, rs2 Reg) *Builder { return b.alu(OpShl, rd, rs1, rs2) }
func (b *Builder) Shr(rd, rs1, rs2 Reg) *Builder { return b.alu(OpShr, rd, rs1, rs2) }
func (b *Builder) Eq(rd, rs1, rs2 Reg) *Builder  { return b.alu(OpEq, rd, rs1, rs2) }
func (b *Builder) Lt(rd, rs1, rs2 Reg) *Builder  { return b.alu(OpLt, rd, rs1, rs2) }

func (b *Builder) alu(op Opcode, rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Jmp branches unconditionally to a label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups[len(b.body)] = label
	return b.emit(Instr{Op: OpJmp})
}

// Brz branches to label when rs1 == 0.
func (b *Builder) Brz(rs1 Reg, label string) *Builder {
	b.fixups[len(b.body)] = label
	return b.emit(Instr{Op: OpBrz, Rs1: rs1})
}

// Brnz branches to label when rs1 != 0.
func (b *Builder) Brnz(rs1 Reg, label string) *Builder {
	b.fixups[len(b.body)] = label
	return b.emit(Instr{Op: OpBrnz, Rs1: rs1})
}

// Load reads a byte: rd <- obj[rs1+off].
func (b *Builder) Load(rd Reg, obj string, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: off, Sym: obj})
}

// Store writes rs2's low byte: obj[rs1+off] <- rs2.
func (b *Builder) Store(obj string, rs1 Reg, off int64, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpStore, Rs1: rs1, Rs2: rs2, Imm: off, Sym: obj})
}

// LoadW reads an 8-byte little-endian word.
func (b *Builder) LoadW(rd Reg, obj string, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: OpLoadW, Rd: rd, Rs1: rs1, Imm: off, Sym: obj})
}

// StoreW writes an 8-byte little-endian word from rs2.
func (b *Builder) StoreW(obj string, rs1 Reg, off int64, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpStoreW, Rs1: rs1, Rs2: rs2, Imm: off, Sym: obj})
}

// HdrGet reads header field idx into rd.
func (b *Builder) HdrGet(rd Reg, field int64) *Builder {
	return b.emit(Instr{Op: OpHdrGet, Rd: rd, Imm: field})
}

// HdrSet writes rs1 into header field idx.
func (b *Builder) HdrSet(field int64, rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpHdrSet, Rs1: rs1, Imm: field})
}

// PktLoad reads payload byte rs1+off into rd.
func (b *Builder) PktLoad(rd Reg, rs1 Reg, off int64) *Builder {
	return b.emit(Instr{Op: OpPktLoad, Rd: rd, Rs1: rs1, Imm: off})
}

// PktLen loads the payload length into rd.
func (b *Builder) PktLen(rd Reg) *Builder {
	return b.emit(Instr{Op: OpPktLen, Rd: rd})
}

// Emit appends obj[rs1 : rs1+rs2] to the response.
func (b *Builder) Emit(obj string, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpEmit, Rs1: rs1, Rs2: rs2, Sym: obj})
}

// EmitByte appends rs1's low byte to the response.
func (b *Builder) EmitByte(rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpEmitByte, Rs1: rs1})
}

// Call invokes another function.
func (b *Builder) Call(fn string) *Builder {
	return b.emit(Instr{Op: OpCall, Sym: fn})
}

// Ret returns with the status code in rs1.
func (b *Builder) Ret(rs1 Reg) *Builder {
	return b.emit(Instr{Op: OpRet, Rs1: rs1})
}

// Memcpy copies rs2 bytes from src[rs1..] to dst[rd..] using the NIC's
// block-copy assist.
func (b *Builder) Memcpy(dst string, rd Reg, src string, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpMemcpy, Rd: rd, Rs1: rs1, Rs2: rs2, Sym: dst, Sym2: src})
}

// Gray converts rs2 bytes of RGBA pixels in src[rs1..] to grayscale
// bytes in dst[rd..].
func (b *Builder) Gray(dst string, rd Reg, src string, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpGray, Rd: rd, Rs1: rs1, Rs2: rs2, Sym: dst, Sym2: src})
}

// Hash computes the FNV-1a hash of obj[rs1 : rs1+rs2] into rd.
func (b *Builder) Hash(rd Reg, obj string, rs1, rs2 Reg) *Builder {
	return b.emit(Instr{Op: OpHash, Rd: rd, Rs1: rs1, Rs2: rs2, Sym: obj})
}

// Build resolves labels and returns the function.
func (b *Builder) Build() (*Function, error) {
	if b.err != nil {
		return nil, b.err
	}
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("mcc: builder %q: undefined label %q", b.name, label)
		}
		b.body[idx].Imm = int64(target)
	}
	return &Function{Name: b.name, Body: b.body}, nil
}

// MustBuild is Build for program literals in tests and workload
// definitions, where a failure is a programming error.
func (b *Builder) MustBuild() *Function {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}
