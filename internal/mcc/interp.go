package mcc

import (
	"errors"
	"fmt"

	"lambdanic/internal/nicsim"
)

// Header field slots exposed to lambdas through OpHdrGet/OpHdrSet. The
// parse stage fills these from the wire headers before the match stage
// runs (paper Fig. 3: lambdas operate directly on parsed headers).
const (
	FieldWorkloadID = iota
	FieldRequestID
	FieldFlags
	FieldSeq
	FieldTotal
	FieldPayloadLen
	FieldSrcNode
	FieldArg0
	FieldArg1
	FieldStatus
	NumFields
)

// Lambda return status codes (mirroring RETURN_FORWARD and friends in
// the paper's Listing 2).
const (
	StatusDrop    = 0
	StatusForward = 1
	StatusToHost  = 2
)

// Execution cost constants: bulk operations are backed by the NIC's
// specialized hardware assists (§2.2), so they retire far fewer
// instructions than a software loop and touch memory in bursts.
const (
	// burstBytes is the memory-burst size for bulk transfers.
	burstBytes = 64
	// bulkSetup is the fixed instruction cost of issuing a bulk op.
	bulkSetup = 4
)

// Interpreter limits.
const (
	defaultStepLimit = 1 << 26 // guards against non-terminating lambdas
	maxCallDepth     = 16
)

// Execution errors. Faults are reported through these sentinels; both
// engines return the exact same pre-built error values on the hot path
// (no per-miss fmt.Errorf), so fault-injected bad programs stay cheap
// and the differential tests can compare error identity.
var (
	ErrStepLimit   = errors.New("mcc: step limit exceeded")
	ErrCallDepth   = errors.New("mcc: call depth exceeded")
	ErrOutOfBounds = errors.New("mcc: memory access out of bounds")
	ErrNoEntry     = errors.New("mcc: no entry for lambda")
)

// Pre-built fault values shared by the interpreter and the compiled
// engine. Per-object out-of-bounds errors live on the objectSlot.
var (
	errHdrRange      = errors.New("mcc: header field out of range")
	errPayloadOOB    = fmt.Errorf("%w: payload", ErrOutOfBounds)
	errMemcpyNegLen  = fmt.Errorf("%w: memcpy negative length", ErrOutOfBounds)
	errGrayLen       = fmt.Errorf("%w: gray length not a pixel multiple", ErrOutOfBounds)
	errUnknownObject = errors.New("mcc: unknown object")
	errUnknownFunc   = errors.New("mcc: call to unknown function")
	errInvalidOp     = errors.New("mcc: invalid opcode")
)

// env is one request's execution context. The compiled engine pools
// envs (and their response buffers) across requests; the interpreter
// allocates one per request.
type env struct {
	exe          *Executable
	headers      [NumFields]int64
	payload      []byte
	payloadLevel nicsim.MemLevel
	resp         []byte
	regs         [NumRegs]int64
	stats        nicsim.ExecStats
	steps        uint64
	depth        int
	// ret receives the status register when a compiled closure executes
	// OpRet (closures signal "return" through a sentinel pc).
	ret int64
}

// reset prepares a pooled env for reuse, keeping the response buffer's
// backing array.
func (e *env) reset() {
	e.headers = [NumFields]int64{}
	e.payload = nil
	e.payloadLevel = 0
	e.resp = e.resp[:0]
	e.regs = [NumRegs]int64{}
	e.stats = nicsim.ExecStats{}
	e.steps = 0
	e.depth = 0
	e.ret = 0
}

// set writes a register, discarding writes to RegZero.
func (e *env) set(r Reg, v int64) {
	if r != RegZero {
		e.regs[r] = v
	}
}

func (e *env) charge(instr uint64) error {
	e.steps += instr
	e.stats.Instructions += instr
	if e.steps > e.exe.stepLimit {
		return ErrStepLimit
	}
	return nil
}

// chargeExact charges n instructions but, when the step limit is
// crossed, reports exactly limit+1 — the count a one-at-a-time charge
// loop would have reached when it tripped. The compiled engine's jump
// table uses it for dispatch chains whose only side effects before the
// limit are scratch registers, keeping ExecStats bit-identical to the
// interpreter walking the same chain.
func (e *env) chargeExact(n uint64) error {
	if e.steps+n > e.exe.stepLimit {
		over := e.exe.stepLimit - e.steps + 1
		e.steps += over
		e.stats.Instructions += over
		return ErrStepLimit
	}
	e.steps += n
	e.stats.Instructions += n
	return nil
}

func bursts(n int64) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64((n + burstBytes - 1) / burstBytes)
}

// object resolves a name to its linked slot (dense array + side map;
// the map is control-plane only, but the interpreter keeps using it so
// its per-access cost profile stays the measured baseline).
func (e *env) object(name string) (*objectSlot, error) {
	idx, ok := e.exe.slotIndex[name]
	if !ok {
		return nil, errUnknownObject
	}
	return &e.exe.slots[idx], nil
}

// run executes a function to completion, returning its status register.
func (e *env) run(f *Function) (int64, error) {
	if e.depth >= maxCallDepth {
		return 0, ErrCallDepth
	}
	e.depth++
	defer func() { e.depth-- }()

	pc := 0
	for pc < len(f.Body) {
		in := &f.Body[pc]
		if err := e.charge(1); err != nil {
			return 0, err
		}
		next := pc + 1
		switch in.Op {
		case OpNop:
		case OpMovImm:
			e.set(in.Rd, in.Imm)
		case OpMov:
			e.set(in.Rd, e.regs[in.Rs1])
		case OpAdd:
			e.set(in.Rd, e.regs[in.Rs1]+e.regs[in.Rs2])
		case OpSub:
			e.set(in.Rd, e.regs[in.Rs1]-e.regs[in.Rs2])
		case OpMul:
			e.set(in.Rd, e.regs[in.Rs1]*e.regs[in.Rs2])
		case OpAnd:
			e.set(in.Rd, e.regs[in.Rs1]&e.regs[in.Rs2])
		case OpOr:
			e.set(in.Rd, e.regs[in.Rs1]|e.regs[in.Rs2])
		case OpXor:
			e.set(in.Rd, e.regs[in.Rs1]^e.regs[in.Rs2])
		case OpShl:
			e.set(in.Rd, e.regs[in.Rs1]<<uint64(e.regs[in.Rs2]&63))
		case OpShr:
			e.set(in.Rd, int64(uint64(e.regs[in.Rs1])>>uint64(e.regs[in.Rs2]&63)))
		case OpEq:
			e.set(in.Rd, boolTo64(e.regs[in.Rs1] == e.regs[in.Rs2]))
		case OpLt:
			e.set(in.Rd, boolTo64(e.regs[in.Rs1] < e.regs[in.Rs2]))
		case OpJmp:
			next = int(in.Imm)
		case OpBrz:
			if e.regs[in.Rs1] == 0 {
				next = int(in.Imm)
			}
		case OpBrnz:
			if e.regs[in.Rs1] != 0 {
				next = int(in.Imm)
			}
		case OpLoad, OpLoadW:
			slot, err := e.object(in.Sym)
			if err != nil {
				return 0, err
			}
			addr := e.regs[in.Rs1] + in.Imm
			width := int64(1)
			if in.Op == OpLoadW {
				width = 8
			}
			if addr < 0 || addr+width > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			e.stats.AddAccess(slot.level, 1)
			if in.Op == OpLoad {
				e.set(in.Rd, int64(slot.mem[addr]))
			} else {
				e.set(in.Rd, int64(le64(slot.mem[addr:])))
			}
		case OpStore, OpStoreW:
			slot, err := e.object(in.Sym)
			if err != nil {
				return 0, err
			}
			addr := e.regs[in.Rs1] + in.Imm
			width := int64(1)
			if in.Op == OpStoreW {
				width = 8
			}
			if addr < 0 || addr+width > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			e.stats.AddAccess(slot.level, 1)
			if in.Op == OpStore {
				slot.mem[addr] = byte(e.regs[in.Rs2])
			} else {
				putLE64(slot.mem[addr:], uint64(e.regs[in.Rs2]))
			}
		case OpHdrGet:
			if in.Imm < 0 || in.Imm >= NumFields {
				return 0, errHdrRange
			}
			e.set(in.Rd, e.headers[in.Imm])
		case OpHdrSet:
			if in.Imm < 0 || in.Imm >= NumFields {
				return 0, errHdrRange
			}
			e.headers[in.Imm] = e.regs[in.Rs1]
		case OpPktLoad:
			addr := e.regs[in.Rs1] + in.Imm
			if addr < 0 || addr >= int64(len(e.payload)) {
				return 0, errPayloadOOB
			}
			e.stats.AddAccess(e.payloadLevel, 1)
			e.set(in.Rd, int64(e.payload[addr]))
		case OpPktLen:
			e.set(in.Rd, int64(len(e.payload)))
		case OpEmit:
			slot, err := e.object(in.Sym)
			if err != nil {
				return 0, err
			}
			off, n := e.regs[in.Rs1], e.regs[in.Rs2]
			if off < 0 || n < 0 || off+n > int64(len(slot.mem)) {
				return 0, slot.oobErr
			}
			if err := e.charge(1 + bursts(n)); err != nil {
				return 0, err
			}
			e.stats.AddAccess(slot.level, bursts(n))
			e.resp = append(e.resp, slot.mem[off:off+n]...)
		case OpEmitByte:
			e.resp = append(e.resp, byte(e.regs[in.Rs1]))
		case OpCall:
			callee := e.exe.prog.Func(in.Sym)
			if callee == nil {
				return 0, errUnknownFunc
			}
			if _, err := e.run(callee); err != nil {
				return 0, err
			}
		case OpRet:
			return e.regs[in.Rs1], nil
		case OpMemcpy:
			if err := e.bulkCopy(in); err != nil {
				return 0, err
			}
		case OpGray:
			if err := e.bulkGray(in); err != nil {
				return 0, err
			}
		case OpHash:
			if err := e.bulkHash(in); err != nil {
				return 0, err
			}
		default:
			return 0, errInvalidOp
		}
		pc = next
	}
	// Falling off the end is an implicit StatusForward.
	return StatusForward, nil
}

// bulkCopy implements OpMemcpy: dst[rd..] <- src[rs1..], rs2 bytes. A
// source name of PayloadObject copies from the request payload.
func (e *env) bulkCopy(in *Instr) error {
	n := e.regs[in.Rs2]
	if n < 0 {
		return errMemcpyNegLen
	}
	dst, err := e.object(in.Sym)
	if err != nil {
		return err
	}
	var src []byte
	var slvl nicsim.MemLevel
	if in.Sym2 == PayloadObject {
		src, slvl = e.payload, e.payloadLevel
	} else {
		so, err := e.object(in.Sym2)
		if err != nil {
			return err
		}
		src, slvl = so.mem, so.level
	}
	doff, soff := e.regs[in.Rd], e.regs[in.Rs1]
	if doff < 0 || soff < 0 || doff+n > int64(len(dst.mem)) || soff+n > int64(len(src)) {
		return dst.oobErr
	}
	if err := e.charge(bulkSetup + bursts(n)); err != nil {
		return err
	}
	e.stats.AddAccess(slvl, bursts(n))
	e.stats.AddAccess(dst.level, bursts(n))
	copy(dst.mem[doff:doff+n], src[soff:soff+n])
	return nil
}

// bulkGray implements OpGray: convert rs2 bytes of RGBA in src[rs1..]
// to grayscale bytes in dst[rd..] using the integer luma approximation
// (77R + 150G + 29B) >> 8 — NPUs have no floating point (§3.1b).
func (e *env) bulkGray(in *Instr) error {
	n := e.regs[in.Rs2]
	if n < 0 || n%4 != 0 {
		return errGrayLen
	}
	pixels := n / 4
	dst, err := e.object(in.Sym)
	if err != nil {
		return err
	}
	var src []byte
	var slvl nicsim.MemLevel
	if in.Sym2 == PayloadObject {
		src, slvl = e.payload, e.payloadLevel
	} else {
		so, err := e.object(in.Sym2)
		if err != nil {
			return err
		}
		src, slvl = so.mem, so.level
	}
	doff, soff := e.regs[in.Rd], e.regs[in.Rs1]
	if doff < 0 || soff < 0 || soff+n > int64(len(src)) || doff+pixels > int64(len(dst.mem)) {
		return dst.oobErr
	}
	// One instruction per pixel through the conversion assist.
	if err := e.charge(bulkSetup + uint64(pixels)); err != nil {
		return err
	}
	e.stats.AddAccess(slvl, bursts(n))
	e.stats.AddAccess(dst.level, bursts(pixels))
	grayPixels(dst.mem[doff:doff+pixels], src[soff:soff+n])
	return nil
}

// grayPixels converts len(dst) RGBA pixels from src to luma bytes.
func grayPixels(dst, src []byte) {
	for p := range dst {
		r := uint32(src[p*4])
		g := uint32(src[p*4+1])
		bl := uint32(src[p*4+2])
		dst[p] = byte((77*r + 150*g + 29*bl) >> 8)
	}
}

// bulkHash implements OpHash: FNV-1a over obj[rs1 : rs1+rs2].
func (e *env) bulkHash(in *Instr) error {
	slot, err := e.object(in.Sym)
	if err != nil {
		return err
	}
	off, n := e.regs[in.Rs1], e.regs[in.Rs2]
	if off < 0 || n < 0 || off+n > int64(len(slot.mem)) {
		return slot.oobErr
	}
	if err := e.charge(bulkSetup + uint64(n+7)/8); err != nil {
		return err
	}
	e.stats.AddAccess(slot.level, bursts(n))
	e.set(in.Rd, int64(fnv1a(slot.mem[off:off+n])))
	return nil
}

// fnv1a hashes b with 64-bit FNV-1a.
func fnv1a(b []byte) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
