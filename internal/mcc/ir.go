// Package mcc is a compiler for λ-NIC lambda bodies, standing in for
// the Micro-C toolchain the paper uses on Netronome NICs (§4.1, §5).
//
// Lambdas are expressed in a small RISC-style intermediate
// representation (IR): sixteen general registers, ALU and branch
// operations, loads/stores against named memory objects, header
// accessors, and a few bulk operations that model the NIC's specialized
// hardware assists (block copy, pixel conversion, hashing). The IR is
// deliberately restricted the way NPUs are (§3.1b): no floating point,
// no dynamic allocation, no recursion — the compiler rejects recursive
// call graphs.
//
// The package provides
//
//   - a builder for composing functions and programs;
//   - an optimizer implementing the paper's three target-specific
//     passes (§5.1): lambda coalescing, match reduction, and memory
//     stratification;
//   - a linker producing firmware that implements nicsim.Program: the
//     interpreter executes requests functionally while counting
//     instructions and per-level memory accesses, which the NIC
//     simulator converts to cycles.
//
// Static instruction counts from this package regenerate Figure 9 and
// enforce the 16 K per-core instruction-store limit.
package mcc

import (
	"fmt"

	"lambdanic/internal/nicsim"
)

// Reg is one of the sixteen general-purpose registers r0..r15.
type Reg uint8

// NumRegs is the register-file size.
const NumRegs = 16

// RegZero (r15) is hardwired to zero: reads return 0 and writes are
// discarded, as on many RISC ISAs. Direct-addressed near-memory
// accesses use it as their base register after memory stratification.
const RegZero Reg = 15

// Opcode enumerates IR operations. Every opcode costs one instruction
// slot; memory opcodes additionally charge accesses at the level their
// object is placed in.
type Opcode uint8

// IR opcodes.
const (
	OpNop Opcode = iota + 1
	// Data movement.
	OpMovImm // rd <- Imm
	OpMov    // rd <- rs1
	// ALU.
	OpAdd // rd <- rs1 + rs2
	OpSub // rd <- rs1 - rs2
	OpMul // rd <- rs1 * rs2
	OpAnd // rd <- rs1 & rs2
	OpOr  // rd <- rs1 | rs2
	OpXor // rd <- rs1 ^ rs2
	OpShl // rd <- rs1 << rs2
	OpShr // rd <- rs1 >> rs2 (logical)
	OpEq  // rd <- rs1 == rs2 ? 1 : 0
	OpLt  // rd <- rs1 < rs2 ? 1 : 0 (signed)
	// Control flow. Imm is the absolute target index in the function.
	OpJmp  // pc <- Imm
	OpBrz  // if rs1 == 0: pc <- Imm
	OpBrnz // if rs1 != 0: pc <- Imm
	// Memory. Sym names the object; address is rs1 + Imm.
	OpLoad  // rd <- object[rs1+Imm] (byte)
	OpStore // object[rs1+Imm] <- rs1's low byte... see Interp
	OpLoadW // rd <- 8-byte word at object[rs1+Imm]
	OpStoreW
	// Header access. Imm is the header field index.
	OpHdrGet // rd <- header[Imm]
	OpHdrSet // header[Imm] <- rs1
	// Packet payload access (the parsed request's payload region).
	OpPktLoad // rd <- payload[rs1+Imm]
	OpPktLen  // rd <- len(payload)
	// Response construction.
	OpEmit     // append object[rs1 : rs1+rs2] to the response
	OpEmitByte // append rs1's low byte to the response
	// Calls.
	OpCall // call function Sym
	OpRet  // return; rs1 holds the status code
	// Bulk operations backed by NIC hardware assists.
	OpMemcpy // object[Sym][rd..] <- object[Sym2][rs1..], rs2 bytes
	OpGray   // grayscale rs2/4 RGBA pixels: Sym2 -> Sym
	OpHash   // rd <- FNV hash of object[Sym][rs1 : rs1+rs2]
)

// String returns the mnemonic.
func (o Opcode) String() string {
	names := map[Opcode]string{
		OpNop: "nop", OpMovImm: "movi", OpMov: "mov", OpAdd: "add",
		OpSub: "sub", OpMul: "mul", OpAnd: "and", OpOr: "or",
		OpXor: "xor", OpShl: "shl", OpShr: "shr", OpEq: "eq",
		OpLt: "lt", OpJmp: "jmp", OpBrz: "brz", OpBrnz: "brnz",
		OpLoad: "ld", OpStore: "st", OpLoadW: "ldw", OpStoreW: "stw",
		OpHdrGet: "hget", OpHdrSet: "hset", OpPktLoad: "pld",
		OpPktLen: "plen", OpEmit: "emit", OpEmitByte: "emitb",
		OpCall: "call", OpRet: "ret", OpMemcpy: "memcpy",
		OpGray: "gray", OpHash: "hash",
	}
	if s, ok := names[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Instr is one IR instruction.
type Instr struct {
	Op       Opcode
	Rd       Reg
	Rs1, Rs2 Reg
	Imm      int64
	// Sym is a function name (OpCall) or object name (memory ops).
	Sym string
	// Sym2 is the source object for OpMemcpy/OpGray.
	Sym2 string
}

// Function is a named sequence of instructions.
type Function struct {
	Name string
	Body []Instr
}

// Size returns the function's instruction count.
func (f *Function) Size() int { return len(f.Body) }

// Clone returns a deep copy.
func (f *Function) Clone() *Function {
	body := make([]Instr, len(f.Body))
	copy(body, f.Body)
	return &Function{Name: f.Name, Body: body}
}

// AccessHint is the user pragma guiding memory stratification (§4.2.1
// D2: "users can also provide pragmas specifying which objects are read
// more frequently").
type AccessHint int

// Access hints.
const (
	HintAuto AccessHint = iota // compiler decides from size
	HintHot                    // accessed on every request: keep close
	HintCold                   // rarely accessed: external memory is fine
)

// Object is a named memory region in the lambda's flat address space
// (D2). The naive compiler places every object in EMEM; the memory-
// stratification pass reassigns levels.
type Object struct {
	Name string
	Size int
	Hint AccessHint
	// Level is the assigned memory level; zero means unassigned (the
	// naive placement treats it as EMEM).
	Level nicsim.MemLevel
	// Init optionally seeds the region's contents.
	Init []byte
}

// EffectiveLevel returns the placement used at execution time.
func (o *Object) EffectiveLevel() nicsim.MemLevel {
	if o.Level == 0 {
		return nicsim.MemEMEM
	}
	return o.Level
}

// Program is a complete Match+Lambda image before linking: the match
// stage and parser are synthesized functions (by internal/matchlambda),
// lambda entry points map workload IDs to functions.
type Program struct {
	Funcs   []*Function
	Objects []*Object
	// Entries maps lambda (workload) ID to its entry function name.
	Entries map[uint32]string
	// EntryOrder preserves deterministic iteration (map order is
	// randomized in Go); filled by AddEntry.
	EntryOrder []uint32
	// Match describes the synthesized parse+match stage, when present;
	// the match-reduction pass rewrites it.
	Match *MatchPlan
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{Entries: make(map[uint32]string)}
}

// AddFunc appends a function, rejecting duplicates.
func (p *Program) AddFunc(f *Function) error {
	if p.Func(f.Name) != nil {
		return fmt.Errorf("mcc: duplicate function %q", f.Name)
	}
	p.Funcs = append(p.Funcs, f)
	return nil
}

// Func returns the named function, or nil.
func (p *Program) Func(name string) *Function {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddObject appends an object, rejecting duplicates.
func (p *Program) AddObject(o *Object) error {
	if p.Object(o.Name) != nil {
		return fmt.Errorf("mcc: duplicate object %q", o.Name)
	}
	p.Objects = append(p.Objects, o)
	return nil
}

// Object returns the named object, or nil.
func (p *Program) Object(name string) *Object {
	for _, o := range p.Objects {
		if o.Name == name {
			return o
		}
	}
	return nil
}

// AddEntry registers a lambda entry point.
func (p *Program) AddEntry(id uint32, fn string) error {
	if _, ok := p.Entries[id]; ok {
		return fmt.Errorf("mcc: duplicate lambda ID %d", id)
	}
	if p.Func(fn) == nil {
		return fmt.Errorf("mcc: entry %d references unknown function %q", id, fn)
	}
	p.Entries[id] = fn
	p.EntryOrder = append(p.EntryOrder, id)
	return nil
}

// StaticInstructions is the program's total code size — the quantity
// Figure 9 tracks and the per-core instruction store bounds.
func (p *Program) StaticInstructions() int {
	total := 0
	for _, f := range p.Funcs {
		total += f.Size()
	}
	return total
}

// Clone deep-copies the program (passes operate on copies so the naive
// program remains available for comparison).
func (p *Program) Clone() *Program {
	cp := NewProgram()
	for _, f := range p.Funcs {
		cp.Funcs = append(cp.Funcs, f.Clone())
	}
	for _, o := range p.Objects {
		oc := *o
		if o.Init != nil {
			oc.Init = append([]byte(nil), o.Init...)
		}
		cp.Objects = append(cp.Objects, &oc)
	}
	for id, fn := range p.Entries {
		cp.Entries[id] = fn
	}
	cp.EntryOrder = append(cp.EntryOrder, p.EntryOrder...)
	cp.Match = p.Match.clone()
	return cp
}

// Validate checks structural invariants: resolvable symbols, in-range
// branch targets, register bounds, and the NPU restriction that the
// call graph is acyclic (no recursion, §3.1b).
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		for i, in := range f.Body {
			if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
				return fmt.Errorf("mcc: %s+%d: register out of range", f.Name, i)
			}
			switch in.Op {
			case OpJmp, OpBrz, OpBrnz:
				if in.Imm < 0 || in.Imm >= int64(len(f.Body)) {
					return fmt.Errorf("mcc: %s+%d: branch target %d out of range", f.Name, i, in.Imm)
				}
			case OpCall:
				if p.Func(in.Sym) == nil {
					return fmt.Errorf("mcc: %s+%d: call to unknown function %q", f.Name, i, in.Sym)
				}
			case OpLoad, OpStore, OpLoadW, OpStoreW, OpEmit, OpHash:
				if p.Object(in.Sym) == nil {
					return fmt.Errorf("mcc: %s+%d: unknown object %q", f.Name, i, in.Sym)
				}
			case OpMemcpy, OpGray:
				if p.Object(in.Sym) == nil {
					return fmt.Errorf("mcc: %s+%d: unknown object %q", f.Name, i, in.Sym)
				}
				if in.Sym2 != PayloadObject && p.Object(in.Sym2) == nil {
					return fmt.Errorf("mcc: %s+%d: unknown object %q", f.Name, i, in.Sym2)
				}
			}
		}
	}
	for id, fn := range p.Entries {
		if p.Func(fn) == nil {
			return fmt.Errorf("mcc: lambda %d entry %q missing", id, fn)
		}
	}
	return p.checkNoRecursion()
}

// checkNoRecursion rejects cyclic call graphs.
func (p *Program) checkNoRecursion() error {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[string]int, len(p.Funcs))
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case inStack:
			return fmt.Errorf("mcc: recursion through %q is not supported on NPUs", name)
		case done:
			return nil
		}
		state[name] = inStack
		f := p.Func(name)
		if f != nil {
			for _, in := range f.Body {
				if in.Op == OpCall {
					if err := visit(in.Sym); err != nil {
						return err
					}
				}
			}
		}
		state[name] = done
		return nil
	}
	for _, f := range p.Funcs {
		if err := visit(f.Name); err != nil {
			return err
		}
	}
	return nil
}
