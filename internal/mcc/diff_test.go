package mcc

// Differential fuzzing of the two execution engines (the tentpole
// invariant): for randomly generated programs, the closure-compiled
// engine and the reference interpreter must agree on status, response
// bytes, ExecStats.Instructions, per-level access counts, persistent
// object memory, and fault sentinels — including step-limit trips that
// land inside fused blocks, out-of-bounds accesses, and call-depth
// overflows.

import (
	"bytes"
	"math/rand"
	"testing"

	"lambdanic/internal/nicsim"
)

var fuzzLevels = []nicsim.MemLevel{nicsim.MemLocal, nicsim.MemCTM, nicsim.MemIMEM, nicsim.MemEMEM}

var fuzzObjects = []struct {
	name string
	size int
}{
	{"o0", 16},
	{"o1", 64},
	{"o2", 256},
}

// genBody emits a random function body. Calls go strictly to
// higher-indexed functions so the call graph stays acyclic (Validate
// rejects recursion).
func genBody(r *rand.Rand, fi int, names []string) []Instr {
	n := 5 + r.Intn(30)
	body := make([]Instr, n)
	reg := func() Reg { return Reg(r.Intn(NumRegs)) }
	obj := func() string { return fuzzObjects[r.Intn(len(fuzzObjects))].name }
	src2 := func() string {
		if r.Intn(3) == 0 {
			return PayloadObject
		}
		return obj()
	}
	ops := []Opcode{
		OpNop, OpMovImm, OpMov, OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor,
		OpShl, OpShr, OpEq, OpLt, OpJmp, OpBrz, OpBrnz, OpLoad, OpStore,
		OpLoadW, OpStoreW, OpHdrGet, OpHdrSet, OpPktLoad, OpPktLen,
		OpEmit, OpEmitByte, OpCall, OpRet, OpMemcpy, OpGray, OpHash,
	}
	for i := range body {
		op := ops[r.Intn(len(ops))]
		if op == OpCall && fi >= len(names)-1 {
			op = OpNop
		}
		in := Instr{Op: op, Rd: reg(), Rs1: reg(), Rs2: reg()}
		switch op {
		case OpMovImm:
			in.Imm = int64(r.Intn(512) - 64)
		case OpJmp, OpBrz, OpBrnz:
			in.Imm = int64(r.Intn(n))
		case OpLoad, OpStore, OpLoadW, OpStoreW:
			in.Sym = obj()
			in.Imm = int64(r.Intn(300) - 8)
		case OpHdrGet, OpHdrSet:
			in.Imm = int64(r.Intn(NumFields+2) - 1)
		case OpPktLoad:
			in.Imm = int64(r.Intn(80) - 8)
		case OpEmit, OpHash:
			in.Sym = obj()
		case OpCall:
			in.Sym = names[fi+1+r.Intn(len(names)-1-fi)]
		case OpMemcpy, OpGray:
			in.Sym = obj()
			in.Sym2 = src2()
		}
		body[i] = in
	}
	return body
}

func genProgram(t *testing.T, r *rand.Rand) *Program {
	t.Helper()
	p := NewProgram()
	for _, o := range fuzzObjects {
		init := make([]byte, o.size)
		r.Read(init)
		if err := p.AddObject(&Object{
			Name:  o.name,
			Size:  o.size,
			Init:  init,
			Level: fuzzLevels[r.Intn(len(fuzzLevels))],
		}); err != nil {
			t.Fatal(err)
		}
	}
	names := []string{"f0", "f1", "f2"}
	for i, name := range names {
		if err := p.AddFunc(&Function{Name: name, Body: genBody(r, i, names)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddEntry(1, "f0"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddEntry(2, "f1"); err != nil {
		t.Fatal(err)
	}
	// Every fourth program gets a reduced match stage so the jump
	// table's charging is fuzzed too.
	if r.Intn(4) == 0 {
		p.Match = &MatchPlan{
			Tables: []MatchTable{
				{Name: "r0", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 1, Action: "f0"}}},
				{Name: "r1", Field: FieldWorkloadID, Entries: []MatchEntry{{Value: 2, Action: "f1"}}},
			},
			Reduced: true,
		}
		mf, err := GenerateMatch(p.Match)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.AddFunc(mf); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestDifferentialFuzz(t *testing.T) {
	programs := 300
	if testing.Short() {
		programs = 60
	}
	// Small limits force trips inside fused blocks and dispatch chains;
	// the large one lets loops run (or spin to the limit).
	limits := []uint64{23, 157, 10000}
	linked, skipped := 0, 0
	for seed := 0; seed < programs; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		p := genProgram(t, r)
		limit := limits[seed%len(limits)]
		ce, cerr := Link(p, LinkOptions{StepLimit: limit, Engine: EngineCompiled})
		ie, ierr := Link(p, LinkOptions{StepLimit: limit, Engine: EngineInterp})
		if (cerr == nil) != (ierr == nil) {
			t.Fatalf("seed %d: link divergence: compiled=%v interp=%v", seed, cerr, ierr)
		}
		if cerr != nil {
			skipped++ // StaticCheck rejected the program in both engines
			continue
		}
		linked++
		for reqn := 0; reqn < 5; reqn++ {
			payload := make([]byte, r.Intn(65))
			r.Read(payload)
			req := &nicsim.Request{
				LambdaID: []uint32{1, 2, 1, 7, 1}[reqn],
				Payload:  payload,
				Packets:  1 + 3*(reqn%2),
			}
			cresp, cerr := ce.Execute(req)
			iresp, ierr := ie.Execute(req)
			if (cerr == nil) != (ierr == nil) {
				t.Fatalf("seed %d req %d: error divergence: compiled=%v interp=%v\n%s",
					seed, reqn, cerr, ierr, p.Disassemble())
			}
			if cerr != nil && !sameFaultClass(cerr, ierr) {
				t.Fatalf("seed %d req %d: fault class divergence: compiled=%v interp=%v\n%s",
					seed, reqn, cerr, ierr, p.Disassemble())
			}
			if cresp.Stats != iresp.Stats {
				t.Fatalf("seed %d req %d (err=%v): stats divergence:\ncompiled %+v\ninterp   %+v\n%s",
					seed, reqn, cerr, cresp.Stats, iresp.Stats, p.Disassemble())
			}
			if !bytes.Equal(cresp.Payload, iresp.Payload) {
				t.Fatalf("seed %d req %d: response divergence:\ncompiled %x\ninterp   %x\n%s",
					seed, reqn, cresp.Payload, iresp.Payload, p.Disassemble())
			}
		}
		// Persistent object memory must have evolved identically.
		for i := range ce.slots {
			if !bytes.Equal(ce.slots[i].mem, ie.slots[i].mem) {
				t.Fatalf("seed %d: object %s memory divergence", seed, ce.slots[i].name)
			}
		}
	}
	if linked == 0 {
		t.Fatal("every generated program was rejected; generator too hot")
	}
	t.Logf("fuzzed %d programs (%d rejected by StaticCheck), 5 requests each", linked, skipped)
}
