package mcc

import (
	"testing"

	"lambdanic/internal/nicsim"
)

func footprintProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("fp")
	b.MovImm(1, 0)
	b.Ret(1)
	return singleEntry(t, b.MustBuild(),
		&Object{Name: "local", Size: 256, Level: nicsim.MemLocal},
		&Object{Name: "ctm", Size: 768, Level: nicsim.MemCTM},
		&Object{Name: "table", Size: 3072, Level: nicsim.MemEMEM},
		&Object{Name: "unassigned", Size: 1024}, // naive placement: EMEM
	)
}

func TestFootprint(t *testing.T) {
	p := footprintProgram(t)
	fp := Footprint(p)
	if fp.Instructions != p.StaticInstructions() {
		t.Errorf("Instructions = %d, want %d", fp.Instructions, p.StaticInstructions())
	}
	if fp.Instructions <= 0 {
		t.Errorf("Instructions = %d, want > 0", fp.Instructions)
	}
	if got := fp.Memory[nicsim.MemLocal]; got != 256 {
		t.Errorf("LMEM demand = %d, want 256", got)
	}
	if got := fp.Memory[nicsim.MemCTM]; got != 768 {
		t.Errorf("CTM demand = %d, want 768", got)
	}
	// The unassigned object counts at its effective (EMEM) level.
	if got := fp.Memory[nicsim.MemEMEM]; got != 3072+1024 {
		t.Errorf("EMEM demand = %d, want 4096", got)
	}
	if got := fp.TotalMemoryBytes(); got != 256+768+3072+1024 {
		t.Errorf("TotalMemoryBytes = %d, want 5120", got)
	}
	// 1024 of 5120 bytes sit in the fast levels.
	if got := fp.FastFraction(); got != 1024.0/5120.0 {
		t.Errorf("FastFraction = %v, want 0.2", got)
	}
}

func TestExecutableFootprintMatchesProgram(t *testing.T) {
	p := footprintProgram(t)
	want := Footprint(p)
	e := link(t, p)
	got := e.Footprint()
	if got.Instructions != want.Instructions {
		t.Errorf("linked Instructions = %d, want %d", got.Instructions, want.Instructions)
	}
	for lvl, b := range want.Memory {
		if got.Memory[lvl] != b {
			t.Errorf("linked demand at %v = %d, want %d", lvl, got.Memory[lvl], b)
		}
	}
}

func TestInstrPressure(t *testing.T) {
	fp := ProgramFootprint{Instructions: 8192}
	if got := fp.InstrPressure(16384); got != 0.5 {
		t.Errorf("pressure = %v, want 0.5", got)
	}
	if got := fp.InstrPressure(4096); got != 2 {
		t.Errorf("pressure = %v, want 2 (does not fit)", got)
	}
	// A degenerate store always reads as full.
	if got := fp.InstrPressure(0); got != 1 {
		t.Errorf("pressure with zero store = %v, want 1", got)
	}
}

func TestFastFractionNoMemory(t *testing.T) {
	fp := ProgramFootprint{Instructions: 10}
	// A stateless lambda is a perfect NIC fit: nothing to stratify.
	if got := fp.FastFraction(); got != 1 {
		t.Errorf("FastFraction with no objects = %v, want 1", got)
	}
}
