package workloads

import (
	"bytes"
	"testing"
	"testing/quick"

	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
)

// compileKVStore links the KV-store lambda alone.
func compileKVStore(t *testing.T) *mcc.Executable {
	t.Helper()
	w := KVStoreLambda()
	p, err := matchlambda.Compose([]*matchlambda.LambdaSpec{w.Spec}, matchlambda.ComposeOptions{
		Headers: []matchlambda.HeaderSpec{KVStoreHeader()},
		Shared:  []*mcc.Function{BuildRuntimeLib(0)},
		SharedObjects: []*mcc.Object{
			{Name: "lib_state", Size: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := mcc.Optimize(p, mcc.AllPasses())
	if err != nil {
		t.Fatal(err)
	}
	exe, err := mcc.Link(opt, mcc.LinkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func kvsExec(t *testing.T, exe *mcc.Executable, payload []byte) []byte {
	t.Helper()
	resp, err := exe.Execute(&nicsim.Request{LambdaID: KVStoreLambdaID, Payload: payload, Packets: 1})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return resp.Payload
}

func TestKVStoreLambdaPutGet(t *testing.T) {
	exe := compileKVStore(t)
	value := []byte("hello-from-nic!!") // exactly 16 bytes
	if got := kvsExec(t, exe, KVStoreOp(true, 12345, value)); len(got) != 1 || got[0] != KVSStored {
		t.Fatalf("put = %q", got)
	}
	got := kvsExec(t, exe, KVStoreOp(false, 12345, nil))
	if !bytes.Equal(got, value) {
		t.Errorf("get = %q, want %q", got, value)
	}
	// Missing key.
	if got := kvsExec(t, exe, KVStoreOp(false, 999, nil)); len(got) != 1 || got[0] != KVSMiss {
		t.Errorf("missing get = %q, want miss", got)
	}
	// Overwrite.
	value2 := []byte("updated-value--!")
	if got := kvsExec(t, exe, KVStoreOp(true, 12345, value2)); got[0] != KVSStored {
		t.Fatalf("overwrite = %q", got)
	}
	if got := kvsExec(t, exe, KVStoreOp(false, 12345, nil)); !bytes.Equal(got, value2) {
		t.Errorf("get after overwrite = %q", got)
	}
}

func TestKVStoreLambdaShortValuePadded(t *testing.T) {
	exe := compileKVStore(t)
	if got := kvsExec(t, exe, KVStoreOp(true, 7, []byte("ab"))); got[0] != KVSStored {
		t.Fatal("put failed")
	}
	got := kvsExec(t, exe, KVStoreOp(false, 7, nil))
	if len(got) != kvsValueSize || got[0] != 'a' || got[1] != 'b' || got[2] != 0 {
		t.Errorf("padded value = %q", got)
	}
}

func TestKVStoreLambdaCollisionChain(t *testing.T) {
	// Fill one probe chain: keys that all hash to the same bucket.
	exe := compileKVStore(t)
	base := kvsHash(1) % kvsBuckets
	var colliders []uint64
	for k := uint64(1); len(colliders) < kvsProbes+1; k++ {
		if kvsHash(k)%kvsBuckets == base {
			colliders = append(colliders, k)
		}
	}
	// The first kvsProbes collide-keys fit; the next PUT reports full.
	for i, k := range colliders[:kvsProbes] {
		if got := kvsExec(t, exe, KVStoreOp(true, k, []byte{byte(i)})); got[0] != KVSStored {
			t.Fatalf("collider %d not stored: %q", i, got)
		}
	}
	if got := kvsExec(t, exe, KVStoreOp(true, colliders[kvsProbes], []byte("x"))); got[0] != KVSFull {
		t.Errorf("overfull put = %q, want full", got)
	}
	// All stored colliders remain retrievable.
	for i, k := range colliders[:kvsProbes] {
		got := kvsExec(t, exe, KVStoreOp(false, k, nil))
		if len(got) != kvsValueSize || got[0] != byte(i) {
			t.Errorf("collider %d readback = %q", i, got)
		}
	}
}

func TestKVStoreLambdaMatchesNativeModelProperty(t *testing.T) {
	// Property: arbitrary op sequences produce byte-identical responses
	// on the NIC table and the native mirror.
	exe := compileKVStore(t)
	w := KVStoreLambda()
	f := func(ops []uint16) bool {
		exe.Reset()
		fresh := KVStoreLambda() // fresh native model
		for i, op := range ops {
			if i >= 24 {
				break
			}
			key := uint64(op % 97)
			put := op%3 != 0
			var payload []byte
			if put {
				payload = KVStoreOp(true, key, []byte{byte(op), byte(op >> 8)})
			} else {
				payload = KVStoreOp(false, key, nil)
			}
			resp, err := exe.Execute(&nicsim.Request{LambdaID: KVStoreLambdaID, Payload: payload, Packets: 1})
			if err != nil {
				return false
			}
			want, err := fresh.Handle(payload, nil)
			if err != nil {
				return false
			}
			if !bytes.Equal(resp.Payload, want) {
				return false
			}
		}
		return true
	}
	_ = w
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKVStoreLambdaShortRequest(t *testing.T) {
	w := KVStoreLambda()
	if _, err := w.Handle([]byte{1, 2}, nil); err == nil {
		t.Error("native handler accepted short request")
	}
	if _, err := w.Handle(KVStoreOp(true, 1, nil)[:9], nil); err == nil {
		t.Error("native handler accepted put without value")
	}
}

func TestKVStoreLambdaFitsInstructionStore(t *testing.T) {
	exe := compileKVStore(t)
	if got := exe.StaticInstructions(); got > 16*1024 {
		t.Errorf("kv store image = %d instructions, exceeds store", got)
	}
	// The table lives in NIC memory.
	mem := exe.MemoryBytes()
	total := 0
	for _, b := range mem {
		total += b
	}
	if total < kvsTableSize {
		t.Errorf("NIC memory = %d, want >= table size %d", total, kvsTableSize)
	}
}
