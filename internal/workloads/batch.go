package workloads

import (
	"encoding/binary"
	"fmt"

	"lambdanic/internal/cpusim"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// Batch sweeper: the noisy-neighbor workload for multi-tenant
// experiments. Each request scans the lambda's EMEM-resident data
// block `sweeps` times (one 8-byte load per iteration), so a single
// request holds an NPU thread for hundreds of microseconds — the
// analytics-shaped traffic SuperNIC-style sharing must isolate from
// interactive lambdas. The request and response both fit in one wire
// packet, keeping the workload usable in parallel-domain simulations
// where multi-packet RDMA commits are modeled differently per kernel.
const (
	batchDataSize      = 4096
	DefaultBatchSweeps = 400
)

// batchData builds the deterministic data block the sweeper scans.
func batchData() []byte {
	data := make([]byte, batchDataSize)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		data[i] = byte(x)
	}
	return data
}

// BatchSweeper returns the batch-sweep workload with the default sweep
// count.
func BatchSweeper() *Workload {
	return BatchSweeperVariant("batch_sweep", BatchSweepID, DefaultBatchSweeps)
}

// BatchSweeperVariant returns a batch sweeper with its own name, ID,
// and per-request sweep count (service demand knob).
func BatchSweeperVariant(name string, id uint32, sweeps int) *Workload {
	if sweeps <= 0 {
		sweeps = DefaultBatchSweeps
	}
	data := batchData()
	return &Workload{
		Name: name,
		ID:   id,
		Spec: &matchlambda.LambdaSpec{
			Name:  name,
			ID:    id,
			Entry: buildBatchEntry(name, sweeps),
			Objects: []*mcc.Object{
				// Cold hint pins the block in EMEM: every sweep load pays
				// the external-memory latency, which is what makes one
				// request expensive.
				{Name: name + "_data", Size: batchDataSize, Init: data, Hint: mcc.HintCold},
				{Name: name + "_scratch", Size: 64},
			},
			Uses: []string{"webreq"},
		},
		Profile: cpusim.Profile{
			ID:                 id,
			NativeInstructions: uint64(sweeps) * 8,
			GILFraction:        1,
		},
		MakeRequest: func(i int) []byte {
			var p [2]byte
			binary.BigEndian.PutUint16(p[:], uint16(i))
			return p[:]
		},
		Handle: func(payload []byte, _ *Deps) ([]byte, error) {
			if len(payload) < 2 {
				return nil, fmt.Errorf("%s: short request", name)
			}
			seed := uint64(binary.BigEndian.Uint16(payload[:2]))
			acc := seed
			idx := 0
			for i := 0; i < sweeps; i++ {
				acc += binary.LittleEndian.Uint64(data[idx : idx+8])
				idx += 8
				if idx >= batchDataSize-7 {
					idx = 0
				}
			}
			var out [8]byte
			binary.LittleEndian.PutUint64(out[:], acc)
			return out[:], nil
		},
	}
}

// buildBatchEntry generates the sweep loop: one EMEM word load plus a
// handful of ALU instructions per iteration, mirroring the native
// handler exactly.
func buildBatchEntry(name string, sweeps int) *mcc.Function {
	b := mcc.NewBuilder(name)
	b.Call("lib_runtime")
	b.HdrGet(4, mcc.FieldArg0)          // r4 = acc, seeded from the request
	b.MovImm(2, int64(sweeps))          // r2 = loop counter
	b.MovImm(3, 0)                      // r3 = data index
	b.MovImm(7, 1)                      // r7 = 1 (decrement)
	b.MovImm(8, 8)                      // r8 = 8 (word stride)
	b.MovImm(9, int64(batchDataSize-7)) // r9 = wrap bound (idx+8 <= size)
	b.Label("sweep")
	b.LoadW(5, name+"_data", 3, 0) // the EMEM access
	b.Add(4, 4, 5)
	b.Add(3, 3, 8)
	b.Lt(6, 3, 9)
	b.Brnz(6, "inbound")
	b.MovImm(3, 0)
	b.Label("inbound")
	b.Sub(2, 2, 7)
	b.Brnz(2, "sweep")
	// Respond with the 8-byte accumulator.
	b.MovImm(6, 0)
	b.StoreW(name+"_scratch", 6, 0, 4)
	b.MovImm(5, 8)
	b.Emit(name+"_scratch", 6, 5)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)
	return b.MustBuild()
}
