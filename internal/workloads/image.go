package workloads

import (
	"encoding/binary"
	"fmt"

	"lambdanic/internal/cpusim"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// The image transformer (§6.2c) converts RGBA images to grayscale. Its
// requests span many packets, so on λ-NIC the payload arrives via the
// RDMA path into NIC memory (§4.2.1 D3) and the lambda reads it from
// there. The request payload is an imgreq header (width and height,
// 4 bytes each, big-endian) followed by width*height RGBA pixels.

// imgHeaderSize is the imgreq header length.
const imgHeaderSize = 8

// DefaultImageWidth/Height size the benchmark image; 512x512 RGBA is
// a 1 MiB request payload spanning ~750 wire packets.
const (
	DefaultImageWidth  = 512
	DefaultImageHeight = 512
)

// ImageTransformer returns the image-transformer workload for images up
// to width x height pixels.
func ImageTransformer(width, height int) *Workload {
	if width <= 0 || height <= 0 {
		width, height = DefaultImageWidth, DefaultImageHeight
	}
	maxPixels := width * height
	// Per-pixel native cost on the CPU backends: decode, convert,
	// encode in the interpreted runtime.
	perPixelInstr := uint64(12)
	return &Workload{
		Name: "image_transformer",
		ID:   ImageTransformerID,
		Spec: &matchlambda.LambdaSpec{
			Name:  "image_transformer",
			ID:    ImageTransformerID,
			Entry: buildImageEntry(),
			Helpers: []*mcc.Function{
				// Identical body to the web server's copy; lambda
				// coalescing merges the two (§6.4: "we combine their
				// reply logic").
				buildResponseHelper("img_fmt_response"),
			},
			Objects: []*mcc.Object{
				// The grayscale output buffer: large, so memory
				// stratification maps it to IMEM (§6.4: "the image
				// variable within the image-transformer lambda is
				// mapped to IMEM").
				{Name: "img_out", Size: maxPixels},
				{Name: "img_meta", Size: 64, Hint: mcc.HintHot},
			},
			Uses: []string{"imgreq"},
		},
		Profile: cpusim.Profile{
			ID:                 ImageTransformerID,
			NativeInstructions: uint64(maxPixels) * perPixelInstr,
			GILFraction:        0.18, // pixel loops run in C extensions
		},
		MakeRequest: func(i int) []byte {
			return ImageRequest(width, height, byte(i))
		},
		Handle: func(payload []byte, _ *Deps) ([]byte, error) {
			return grayscaleNative(payload)
		},
	}
}

// ImageRequest builds an imgreq payload: header plus a deterministic
// RGBA gradient seeded by seed.
func ImageRequest(width, height int, seed byte) []byte {
	p := make([]byte, imgHeaderSize+width*height*4)
	binary.BigEndian.PutUint32(p[0:4], uint32(width))
	binary.BigEndian.PutUint32(p[4:8], uint32(height))
	px := p[imgHeaderSize:]
	for i := 0; i < width*height; i++ {
		px[i*4] = byte(i) + seed
		px[i*4+1] = byte(i >> 8)
		px[i*4+2] = byte(i >> 16)
		px[i*4+3] = 0xFF
	}
	return p
}

// grayscaleNative is the reference implementation used by the CPU
// backends and to validate the NIC path: integer luma, matching the
// NIC's conversion assist.
func grayscaleNative(payload []byte) ([]byte, error) {
	if len(payload) < imgHeaderSize {
		return nil, fmt.Errorf("image_transformer: short request")
	}
	w := int(binary.BigEndian.Uint32(payload[0:4]))
	h := int(binary.BigEndian.Uint32(payload[4:8]))
	px := payload[imgHeaderSize:]
	if w <= 0 || h <= 0 || len(px) < w*h*4 {
		return nil, fmt.Errorf("image_transformer: bad dimensions %dx%d for %d bytes", w, h, len(px))
	}
	out := make([]byte, w*h)
	for i := 0; i < w*h; i++ {
		r := uint32(px[i*4])
		g := uint32(px[i*4+1])
		b := uint32(px[i*4+2])
		out[i] = byte((77*r + 150*g + 29*b) >> 8)
	}
	return out, nil
}

// buildImageEntry generates the transformer's entry: runtime init,
// header validation with unrolled metadata bookkeeping (near stores the
// stratifier folds), the grayscale bulk conversion from the
// RDMA-committed payload, response formatting, and the emit.
func buildImageEntry() *mcc.Function {
	b := mcc.NewBuilder("image_transformer")
	b.Call("lib_runtime")
	// Parsed imgreq header: r1 = width, r2 = height.
	b.HdrGet(1, mcc.FieldArg0)
	b.HdrGet(2, mcc.FieldArg1)
	b.Mul(3, 1, 2) // pixels
	// Bounds guard: pixels*4 + header must fit the payload.
	b.MovImm(4, 4)
	b.Mul(4, 3, 4)
	b.PktLen(5)
	b.MovImm(6, imgHeaderSize)
	b.Sub(5, 5, 6)
	b.Lt(7, 5, 4) // payload too small?
	b.Brz(7, "size_ok")
	b.MovImm(1, mcc.StatusDrop)
	b.Ret(1)
	b.Label("size_ok")
	// Metadata bookkeeping: record dimensions and derived values in
	// img_meta through near accesses (movi-0 + store/load pairs).
	for i := 0; i < 16; i++ {
		b.MovImm(8, 0)
		b.Load(9, "img_meta", 8, int64(i%32))
		b.Add(10, 10, 9)
	}
	b.MovImm(8, 0)
	b.StoreW("img_meta", 8, 0, 1)
	b.MovImm(8, 0)
	b.StoreW("img_meta", 8, 8, 2)
	// Grayscale conversion: src = payload after the header, n = 4*px.
	b.MovImm(8, imgHeaderSize) // src offset
	b.MovImm(9, 0)             // dst offset
	b.Gray("img_out", 9, mcc.PayloadObject, 8, 4)
	// Format and emit the grayscale bytes.
	b.Call("img_fmt_response")
	b.MovImm(9, 0)
	b.Emit("img_out", 9, 3)
	// Trailer: unrolled output validation.
	padChecksum(b, "img_out", 10)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)
	return b.MustBuild()
}
