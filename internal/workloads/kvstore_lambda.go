package workloads

import (
	"encoding/binary"
	"fmt"

	"lambdanic/internal/cpusim"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// This file implements the paper's §7 extension: "Certain types of data
// stores (like key-value stores) can also benefit from λ-NIC. Their
// restricted compute pattern lends itself nicely to run on λ-NIC's
// Match+Lambda machine model." The KV-store lambda serves GET and PUT
// requests entirely from NIC memory — a NetCache-style in-network store
// — with an open-addressing hash table in a CTM-resident object.
//
// Request payload (kvsreq header):
//
//	op(1) key(8, big-endian) [value(16) for PUT]
//
// Responses: value bytes on a GET hit, 'M' on a miss, 'S' on a stored
// PUT, 'F' when the probe chain is exhausted (table full around that
// hash). Probing is bounded (no unbounded loops on NPUs): slots are
// examined up to kvsProbes times; deletion is not supported.

// KVStoreLambdaID is the extension workload's well-known ID.
const KVStoreLambdaID uint32 = 5

// Hash-table geometry. The table object is power-of-two sized so the
// probe wrap is a mask.
const (
	kvsBuckets   = 64
	kvsSlotSize  = 32 // flag(8) key(8) value(16)
	kvsTableSize = kvsBuckets * kvsSlotSize
	kvsProbes    = 8
	kvsValueSize = 16
)

// KV-store response codes.
const (
	KVSMiss   = 'M'
	KVSStored = 'S'
	KVSFull   = 'F'
)

// KVStoreOp builds a request payload.
func KVStoreOp(put bool, key uint64, value []byte) []byte {
	p := make([]byte, 9, 9+kvsValueSize)
	if put {
		p[0] = 1
	}
	binary.BigEndian.PutUint64(p[1:9], key)
	if put {
		v := make([]byte, kvsValueSize)
		copy(v, value)
		p = append(p, v...)
	}
	return p
}

// KVStoreHeader is the kvsreq application header: op and key parsed
// into header slots.
func KVStoreHeader() matchlambda.HeaderSpec {
	return matchlambda.HeaderSpec{Name: "kvsreq", Fields: []matchlambda.FieldSpec{
		{Slot: mcc.FieldArg0, Offset: 0, Bytes: 1},
		{Slot: mcc.FieldArg1, Offset: 1, Bytes: 8},
	}}
}

// KVStoreLambda returns the NIC-resident key-value store workload.
func KVStoreLambda() *Workload {
	model := newKVSModel()
	return &Workload{
		Name: "kv_store",
		ID:   KVStoreLambdaID,
		Spec: &matchlambda.LambdaSpec{
			Name:  "kv_store",
			ID:    KVStoreLambdaID,
			Entry: buildKVStoreEntry(),
			Objects: []*mcc.Object{
				{Name: "kvs_table", Size: kvsTableSize},
			},
			Uses: []string{"kvsreq"},
		},
		Profile: cpusim.Profile{
			ID:                 KVStoreLambdaID,
			NativeInstructions: 800,
			GILFraction:        1,
		},
		MakeRequest: func(i int) []byte {
			if i%2 == 0 {
				return KVStoreOp(true, uint64(i/2), []byte(fmt.Sprintf("v%d", i/2)))
			}
			return KVStoreOp(false, uint64(i/2), nil)
		},
		// The native handler mirrors the NIC table's exact semantics
		// (bounded probing, no deletion) so the two paths are
		// equivalence-testable.
		Handle: func(payload []byte, _ *Deps) ([]byte, error) {
			return model.handle(payload)
		},
	}
}

// kvsModel is the native mirror of the NIC hash table.
type kvsModel struct {
	flags  [kvsBuckets]bool
	keys   [kvsBuckets]uint64
	values [kvsBuckets][kvsValueSize]byte
}

func newKVSModel() *kvsModel { return &kvsModel{} }

// kvsHash is the multiplicative hash both implementations use
// (Fibonacci hashing: golden-ratio multiplier, top bits).
func kvsHash(key uint64) uint64 {
	const phi = 0x9E3779B97F4A7C15
	return (key * phi) >> 56
}

func (m *kvsModel) handle(payload []byte) ([]byte, error) {
	if len(payload) < 9 {
		return nil, fmt.Errorf("kv_store: short request")
	}
	put := payload[0] == 1
	key := binary.BigEndian.Uint64(payload[1:9])
	if put && len(payload) < 9+kvsValueSize {
		return nil, fmt.Errorf("kv_store: put without value")
	}
	bucket := int(kvsHash(key) % kvsBuckets)
	for probe := 0; probe < kvsProbes; probe++ {
		slot := (bucket + probe) % kvsBuckets
		if !m.flags[slot] {
			if !put {
				return []byte{KVSMiss}, nil
			}
			m.flags[slot] = true
			m.keys[slot] = key
			copy(m.values[slot][:], payload[9:9+kvsValueSize])
			return []byte{KVSStored}, nil
		}
		if m.keys[slot] == key {
			if put {
				copy(m.values[slot][:], payload[9:9+kvsValueSize])
				return []byte{KVSStored}, nil
			}
			out := make([]byte, kvsValueSize)
			copy(out, m.values[slot][:])
			return out, nil
		}
	}
	if put {
		return []byte{KVSFull}, nil
	}
	return []byte{KVSMiss}, nil
}

// buildKVStoreEntry generates the IR: hash the key, probe up to
// kvsProbes slots (unrolled — NPUs have no unbounded loops), and serve
// the hit/miss/insert paths. Register plan: r1 op, r2 key, r4 slot
// byte-offset, r7-r10 scratch.
func buildKVStoreEntry() *mcc.Function {
	b := mcc.NewBuilder("kv_store")
	b.HdrGet(1, mcc.FieldArg0) // op: 0 get, 1 put
	b.HdrGet(2, mcc.FieldArg1) // key
	// bucket = kvsHash(key) % buckets; slot offset = bucket * slotSize.
	b.MovImm(3, -0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	b.Mul(4, 2, 3)
	b.MovImm(3, 56)
	b.Shr(4, 4, 3)
	b.MovImm(3, kvsBuckets-1)
	b.And(4, 4, 3)
	b.MovImm(3, kvsSlotSize)
	b.Mul(4, 4, 3)
	for probe := 0; probe < kvsProbes; probe++ {
		next := fmt.Sprintf("probe%d", probe+1)
		empty := fmt.Sprintf("empty%d", probe)
		cont := fmt.Sprintf("cont%d", probe)
		if probe > 0 {
			b.Label(fmt.Sprintf("probe%d", probe))
		}
		b.LoadW(7, "kvs_table", 4, 0) // flag
		b.Brz(7, empty)
		b.LoadW(8, "kvs_table", 4, 8) // stored key
		b.Eq(9, 8, 2)
		b.Brnz(9, "found")
		b.Jmp(cont)
		// Empty slot: a PUT claims it; a GET misses.
		b.Label(empty)
		b.Brnz(1, "insert")
		b.Jmp("miss")
		// Advance to the next slot, wrapping the table.
		b.Label(cont)
		b.MovImm(10, kvsSlotSize)
		b.Add(4, 4, 10)
		b.MovImm(10, kvsTableSize-1)
		b.And(4, 4, 10)
		if probe == kvsProbes-1 {
			b.Jmp("exhausted")
		} else {
			_ = next
		}
	}
	// Probe chain exhausted.
	b.Label("exhausted")
	b.Brnz(1, "full")
	b.Jmp("miss")

	// Hit: PUT overwrites the value, GET emits it.
	b.Label("found")
	b.Brnz(1, "store_value")
	b.MovImm(7, 16)
	b.Add(7, 4, 7) // value offset
	b.MovImm(8, kvsValueSize)
	b.Emit("kvs_table", 7, 8)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)

	// Insert: claim the slot, write flag + key, then the value.
	b.Label("insert")
	b.MovImm(7, 1)
	b.StoreW("kvs_table", 4, 0, 7)
	b.StoreW("kvs_table", 4, 8, 2)
	b.Label("store_value")
	// Value bytes live at payload offset 9.
	b.MovImm(7, 9)
	b.MovImm(8, kvsValueSize)
	b.MovImm(9, 16)
	b.Add(9, 4, 9)
	b.Memcpy("kvs_table", 9, mcc.PayloadObject, 7, 8)
	b.MovImm(7, KVSStored)
	b.EmitByte(7)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)

	b.Label("miss")
	b.MovImm(7, KVSMiss)
	b.EmitByte(7)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)

	b.Label("full")
	b.MovImm(7, KVSFull)
	b.EmitByte(7)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)
	return b.MustBuild()
}
