package workloads

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"lambdanic/internal/cluster"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/transport"
)

// nicsimTestNIC returns the default NIC configuration for cycle math.
func nicsimTestNIC() cluster.NICConfig { return cluster.Default().NIC }

// compile builds and links the optimized image for a workload set.
func compile(t *testing.T, ws []*Workload) *mcc.Executable {
	t.Helper()
	exe, _, err := CompileOptimized(ws, NaiveProgramTarget)
	if err != nil {
		t.Fatalf("CompileOptimized: %v", err)
	}
	return exe
}

// execNIC runs one request through the image, warming the runtime
// library first (the paper measures warm lambdas).
func execNIC(t *testing.T, exe *mcc.Executable, id uint32, payload []byte) []byte {
	t.Helper()
	req := &nicsim.Request{LambdaID: id, Payload: payload, Packets: Packets(len(payload))}
	if _, err := exe.Execute(req); err != nil {
		t.Fatalf("warmup Execute(%d): %v", id, err)
	}
	resp, err := exe.Execute(req)
	if err != nil {
		t.Fatalf("Execute(%d): %v", id, err)
	}
	return resp.Payload
}

func TestNaiveProgramMatchesPaperSize(t *testing.T) {
	p, err := BuildNaiveProgram(DefaultSet(), NaiveProgramTarget)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.StaticInstructions(); got != NaiveProgramTarget {
		t.Errorf("naive size = %d, want %d (paper §6.4)", got, NaiveProgramTarget)
	}
	if NaiveProgramTarget > 16*1024 {
		t.Error("naive program exceeds the 16K instruction store")
	}
}

func TestFigure9Trajectory(t *testing.T) {
	// Paper Figure 9: 8,902 -> -5.11% -> -8.65% -> -9.56% (=8,050).
	// The reproduction must land within 0.25 percentage points of each
	// step.
	p, err := BuildNaiveProgram(DefaultSet(), NaiveProgramTarget)
	if err != nil {
		t.Fatal(err)
	}
	_, results, err := mcc.Optimize(p, mcc.AllPasses())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d entries", len(results))
	}
	wantPct := []float64{0, 5.11, 8.65, 9.56}
	for i, r := range results {
		gotPct := 100 * float64(NaiveProgramTarget-r.Instructions) / float64(NaiveProgramTarget)
		if diff := gotPct - wantPct[i]; diff < -0.25 || diff > 0.25 {
			t.Errorf("pass %q: -%.2f%%, want -%.2f%% ± 0.25", r.Pass, gotPct, wantPct[i])
		}
	}
}

func TestWebServerNICMatchesNative(t *testing.T) {
	exe := compile(t, DefaultSet())
	web := WebServer()
	for i := 0; i < webPages; i++ {
		payload := web.MakeRequest(i)
		nic := execNIC(t, exe, WebServerID, payload)
		native, err := web.Handle(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(nic, native) {
			t.Errorf("page %d: NIC %q != native %q", i, nic, native)
		}
		if !strings.Contains(string(nic), "lambda-nic page") {
			t.Errorf("page %d content wrong: %q", i, nic)
		}
	}
}

func TestKVClientEmitsMemcachedCommand(t *testing.T) {
	exe := compile(t, DefaultSet())
	kv := KVGetClient()
	// Key 37 -> the lambda must construct "get user:0037\r\n".
	payload := kv.MakeRequest(37)
	out := execNIC(t, exe, KVGetClientID, payload)
	if got, want := string(out), "get user:0037\r\n"; got != want {
		t.Errorf("NIC kv command = %q, want %q", got, want)
	}
	// SET client uses its own verb.
	set := KVSetClient()
	out = execNIC(t, exe, KVSetClientID, set.MakeRequest(5))
	if got, want := string(out), "set user:0005\r\n"; got != want {
		t.Errorf("NIC kv set command = %q, want %q", got, want)
	}
}

func TestKVCommandDigitsProperty(t *testing.T) {
	exe := compile(t, DefaultSet())
	f := func(key uint16) bool {
		k := uint32(key) % kvKeySpace
		payload := kvRequestPayload(0, k)
		req := &nicsim.Request{LambdaID: KVGetClientID, Payload: payload, Packets: 1}
		resp, err := exe.Execute(req)
		if err != nil {
			return false
		}
		want := "get " + kvKeyName(k) + "\r\n"
		return string(resp.Payload) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKVNativeHandlersAgainstStore(t *testing.T) {
	n := transport.NewMemNetwork(1)
	sc, err := n.Listen("memcached")
	if err != nil {
		t.Fatal(err)
	}
	srv := kvstore.NewServer(kvstore.NewStore(), sc)
	defer srv.Close()
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	deps := &Deps{KV: kvstore.NewClient(cc, transport.MemAddr("memcached"))}

	set, get := KVSetClient(), KVGetClient()
	if out, err := set.Handle(set.MakeRequest(9), deps); err != nil || string(out) != "STORED" {
		t.Fatalf("set: %q/%v", out, err)
	}
	out, err := get.Handle(get.MakeRequest(9), deps)
	if err != nil || string(out) != "value-9" {
		t.Fatalf("get: %q/%v", out, err)
	}
	// Missing key.
	out, err = get.Handle(get.MakeRequest(500), deps)
	if err != nil || string(out) != "MISS" {
		t.Fatalf("miss: %q/%v", out, err)
	}
}

func TestKVNativeWithoutDeps(t *testing.T) {
	get := KVGetClient()
	if _, err := get.Handle(get.MakeRequest(0), nil); err == nil {
		t.Error("handler without deps succeeded")
	}
	if _, err := get.Handle([]byte{1}, nil); err == nil {
		t.Error("short request accepted")
	}
}

func TestImageTransformerNICMatchesNative(t *testing.T) {
	// A small image keeps the test fast; the set must include the
	// matching spec so sizes line up.
	ws := []*Workload{WebServer(), KVGetClient(), KVSetClient(), ImageTransformer(8, 8)}
	exe := compile(t, ws)
	img := ImageTransformer(8, 8)
	payload := img.MakeRequest(3)
	nic := execNIC(t, exe, ImageTransformerID, payload)
	native, err := img.Handle(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nic, native) {
		t.Errorf("NIC grayscale (%d bytes) != native (%d bytes)", len(nic), len(native))
	}
	if len(nic) != 64 {
		t.Errorf("output = %d bytes, want 64 (8x8 gray)", len(nic))
	}
}

func TestImageTransformerRejectsTruncated(t *testing.T) {
	ws := []*Workload{WebServer(), KVGetClient(), KVSetClient(), ImageTransformer(8, 8)}
	exe := compile(t, ws)
	img := ImageTransformer(8, 8)
	payload := img.MakeRequest(0)[:40] // truncated mid-pixel data
	req := &nicsim.Request{LambdaID: ImageTransformerID, Payload: payload, Packets: 1}
	resp, err := exe.Execute(req)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(resp.Payload) != 0 {
		t.Errorf("truncated image produced %d bytes, want drop", len(resp.Payload))
	}
	// Native path errors explicitly.
	if _, err := img.Handle(payload, nil); err == nil {
		t.Error("native handler accepted truncated image")
	}
}

func TestImageUsesIMEMPlacement(t *testing.T) {
	// §6.4: "the image variable within the image-transformer lambda is
	// mapped to IMEM".
	p, err := BuildNaiveProgram(DefaultSet(), NaiveProgramTarget)
	if err != nil {
		t.Fatal(err)
	}
	opt, _, err := mcc.Optimize(p, mcc.AllPasses())
	if err != nil {
		t.Fatal(err)
	}
	if got := opt.Object("img_out").EffectiveLevel(); got != nicsim.MemIMEM {
		t.Errorf("img_out placed in %v, want IMEM", got)
	}
	if got := opt.Object("web_server_content").EffectiveLevel(); got != nicsim.MemLocal {
		t.Errorf("web_server_content placed in %v, want LMEM (hot)", got)
	}
}

func TestMultiPacketImageChargesEMEM(t *testing.T) {
	ws := []*Workload{WebServer(), KVGetClient(), KVSetClient(), ImageTransformer(64, 64)}
	exe := compile(t, ws)
	img := ImageTransformer(64, 64)
	payload := img.MakeRequest(0) // 16 KiB -> 12 packets
	req := &nicsim.Request{LambdaID: ImageTransformerID, Payload: payload, Packets: Packets(len(payload))}
	resp, err := exe.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stats.Accesses(nicsim.MemEMEM) == 0 {
		t.Error("multi-packet image payload charged no EMEM accesses (RDMA path)")
	}
}

func TestDynamicCostOrdering(t *testing.T) {
	// The image transformer must cost far more cycles than the web
	// server; the kv clients sit in between or near web.
	exe := compile(t, []*Workload{WebServer(), KVGetClient(), KVSetClient(), ImageTransformer(64, 64)})
	cost := func(id uint32, payload []byte) uint64 {
		req := &nicsim.Request{LambdaID: id, Payload: payload, Packets: Packets(len(payload))}
		if _, err := exe.Execute(req); err != nil { // warm
			t.Fatal(err)
		}
		resp, err := exe.Execute(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Stats.Cycles(nicsimTestNIC())
	}
	web := cost(WebServerID, WebServer().MakeRequest(0))
	img := cost(ImageTransformerID, ImageTransformer(64, 64).MakeRequest(0))
	if img < 10*web {
		t.Errorf("image cycles (%d) not ≫ web cycles (%d)", img, web)
	}
}

func TestWorkloadSetHelpers(t *testing.T) {
	ws := DefaultSet()
	if len(ws) != 4 {
		t.Fatalf("DefaultSet = %d workloads", len(ws))
	}
	byID := ByID(ws)
	if byID[WebServerID].Name != "web_server" || byID[ImageTransformerID].Name != "image_transformer" {
		t.Error("ByID mapping wrong")
	}
	if Packets(0) != 1 || Packets(1400) != 1 || Packets(1401) != 2 {
		t.Error("Packets wrong")
	}
}

func TestColdStartRunsRuntimeInit(t *testing.T) {
	exe := compile(t, DefaultSet())
	req := &nicsim.Request{LambdaID: WebServerID, Payload: WebServer().MakeRequest(0), Packets: 1}
	cold, err := exe.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := exe.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.Instructions <= warm.Stats.Instructions {
		t.Errorf("cold (%d) not > warm (%d): one-time init missing",
			cold.Stats.Instructions, warm.Stats.Instructions)
	}
}
