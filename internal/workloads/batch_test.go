package workloads

import (
	"bytes"
	"testing"

	"lambdanic/internal/nicsim"
)

func TestBatchSweeperNICMatchesNative(t *testing.T) {
	bw := BatchSweeperVariant("batch_sweep", BatchSweepID, 50)
	exe := compile(t, []*Workload{bw})
	for i := 0; i < 3; i++ {
		payload := bw.MakeRequest(i*37 + 1)
		nic := execNIC(t, exe, BatchSweepID, payload)
		native, err := bw.Handle(payload, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(nic, native) {
			t.Errorf("request %d: NIC %x != native %x", i, nic, native)
		}
		if len(nic) != 8 {
			t.Errorf("request %d: response length %d, want 8", i, len(nic))
		}
	}
}

// The sweep loop must charge one EMEM access per iteration — that is
// what makes a batch request expensive on the NIC.
func TestBatchSweeperChargesEMEM(t *testing.T) {
	const sweeps = 200
	bw := BatchSweeperVariant("batch_sweep", BatchSweepID, sweeps)
	exe := compile(t, []*Workload{bw})
	req := &nicsim.Request{LambdaID: BatchSweepID, Payload: bw.MakeRequest(0), Packets: 1}
	if _, err := exe.Execute(req); err != nil { // warm the runtime lib
		t.Fatal(err)
	}
	resp, err := exe.Execute(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Stats.Accesses(nicsim.MemEMEM); got < sweeps {
		t.Errorf("EMEM accesses = %d, want >= %d (one per sweep)", got, sweeps)
	}
	// The wrap index stays in bounds for long scans past the block end.
	long := BatchSweeperVariant("batch_long", BatchSweepID+10, 2000)
	exeLong := compile(t, []*Workload{long})
	reqLong := &nicsim.Request{LambdaID: BatchSweepID + 10, Payload: long.MakeRequest(9), Packets: 1}
	if _, err := exeLong.Execute(reqLong); err != nil {
		t.Fatalf("2000-sweep scan faulted: %v", err)
	}
	nic := execNIC(t, exeLong, BatchSweepID+10, long.MakeRequest(9))
	native, err := long.Handle(long.MakeRequest(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(nic, native) {
		t.Errorf("wrapped scan: NIC %x != native %x", nic, native)
	}
}
