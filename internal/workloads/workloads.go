// Package workloads defines the paper's three benchmark lambdas (§6.2)
// in the two forms the framework runs them:
//
//   - a Match+Lambda form (internal/matchlambda spec with an mcc entry
//     function, helpers, and memory objects) executed by the simulated
//     SmartNIC — instruction counts here regenerate Figure 9;
//   - a native Go handler plus a cpusim service profile, used by the
//     bare-metal and container baseline backends and by the runnable
//     UDP examples.
//
// The lambdas are:
//
//	web server        — returns text content selected by the request
//	                    (§6.2a), modeled on the paper's Listing 2;
//	key-value clients — two distinct clients issuing memcached GET and
//	                    SET requests (§6.2b); their private copies of
//	                    the request-building helper are what lambda
//	                    coalescing deduplicates (§6.4);
//	image transformer — RGBA→grayscale conversion over multi-packet
//	                    RDMA payloads (§6.2c).
package workloads

import (
	"encoding/binary"
	"fmt"

	"lambdanic/internal/cpusim"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// Well-known workload IDs, assigned the way the paper's workload
// manager assigns unique IDs at compilation (§4.1).
const (
	WebServerID        uint32 = 1
	KVGetClientID      uint32 = 2
	KVSetClientID      uint32 = 3
	ImageTransformerID uint32 = 4
	BatchSweepID       uint32 = 5
)

// MTU mirrors transport.DefaultMTU for packet-count estimation without
// importing the transport package.
const MTU = 1400

// Deps carries the external services a native handler may need.
type Deps struct {
	// KV is the memcached-substitute client used by the key-value
	// client lambdas.
	KV *kvstore.Client
	// KVTable is the EMEM-resident mirror of the KV store (the table
	// the NIC registers as an RDMA region). When present, GETs can be
	// served by a one-sided probe without invoking the lambda.
	KVTable *kvstore.Table
}

// Workload is one benchmark lambda in both runnable forms.
type Workload struct {
	Name string
	ID   uint32
	// Tenant names the owning tenant ("" = the default tenant). Set by
	// tenant-aware registration (core.Manager.RegisterFor); it rides
	// into worker metrics as a label so fleet views can scope by owner.
	Tenant string
	// Spec is the Match+Lambda form for the NIC backend.
	Spec *matchlambda.LambdaSpec
	// Profile is the CPU-side service demand for the baseline
	// backends.
	Profile cpusim.Profile
	// MakeRequest builds the i-th request payload.
	MakeRequest func(i int) []byte
	// Handle is the native Go implementation (functional layer).
	Handle func(payload []byte, deps *Deps) ([]byte, error)
	// Bypass, when non-nil, tries to serve a request on the one-sided
	// fast path without invoking the lambda (λ-NIC's RDMA-read GET
	// path). ok=false falls through to Handle — the request is then
	// served exactly as if no bypass existed.
	Bypass func(payload []byte, deps *Deps) (resp []byte, ok bool)
}

// Packets returns the wire packet count for a payload.
func Packets(payloadBytes int) int {
	if payloadBytes <= 0 {
		return 1
	}
	return (payloadBytes + MTU - 1) / MTU
}

// Web server content: three pages of webPageSize bytes, matching the
// paper's self-contained text responses (§6.2a).
const (
	webPages    = 3
	webPageSize = 64
)

// webContent builds the static page store.
func webContent() []byte {
	buf := make([]byte, webPages*webPageSize)
	for p := 0; p < webPages; p++ {
		page := fmt.Sprintf("<html><body>lambda-nic page %d</body></html>", p)
		copy(buf[p*webPageSize:(p+1)*webPageSize], page)
	}
	return buf
}

// WebServer returns the web-server workload. The lambda reads the
// requested page ID from the webreq header (2 bytes at payload offset
// 0), copies the page from its content store, and emits it — the shape
// of the paper's Listing 2 web_server.
func WebServer() *Workload {
	return WebServerVariant("web_server", WebServerID)
}

// WebServerVariant returns a distinct web-server lambda with its own
// name, ID, and memory objects. The contention experiment (§6.3.2)
// deploys three such variants side by side; their helper bodies are
// identical, so lambda coalescing still merges them.
func WebServerVariant(name string, id uint32) *Workload {
	content := webContent()
	entry := buildWebEntry(name)
	return &Workload{
		Name: name,
		ID:   id,
		Spec: &matchlambda.LambdaSpec{
			Name:  name,
			ID:    id,
			Entry: entry,
			Helpers: []*mcc.Function{
				buildResponseHelper(name + "_fmt_response"),
			},
			Objects: []*mcc.Object{
				{Name: name + "_content", Size: len(content), Init: content, Hint: mcc.HintHot},
				{Name: name + "_scratch", Size: 128},
			},
			Uses: []string{"webreq"},
		},
		Profile: cpusim.Profile{
			ID:                 id,
			NativeInstructions: 600,
			GILFraction:        1,
		},
		MakeRequest: func(i int) []byte {
			var p [2]byte
			binary.BigEndian.PutUint16(p[:], uint16(i%webPages))
			return p[:]
		},
		Handle: func(payload []byte, _ *Deps) ([]byte, error) {
			if len(payload) < 2 {
				return nil, fmt.Errorf("web_server: short request")
			}
			page := int(binary.BigEndian.Uint16(payload[:2])) % webPages
			return content[page*webPageSize : (page+1)*webPageSize], nil
		},
	}
}

// buildWebEntry generates a web server's entry function. The body is
// straight-line Micro-C-style code: runtime init, request validation,
// page-offset computation, an unrolled header-templating sequence
// (providing the movi-0/near-load sites stratification folds), the page
// copy, and the shared response formatting helper.
func buildWebEntry(name string) *mcc.Function {
	b := mcc.NewBuilder(name)
	b.Call("lib_runtime")
	// r1 = page id from the parsed webreq header.
	b.HdrGet(1, mcc.FieldArg0)
	// Clamp: id = id % webPages via compare chain (no div on NPUs).
	b.MovImm(2, webPages)
	b.Label("mod")
	b.Lt(3, 1, 2)
	b.Brnz(3, "modded")
	b.Sub(1, 1, 2)
	b.Jmp("mod")
	b.Label("modded")
	// r4 = page offset = id * webPageSize.
	b.MovImm(2, webPageSize)
	b.Mul(4, 1, 2)
	// Unrolled template reads: probe content bytes through near loads
	// (each is a movi-0 + load pair the stratifier strength-reduces).
	for i := 0; i < 4; i++ {
		b.MovImm(8, 0)
		b.Load(9, name+"_content", 8, int64(i%webPageSize))
		b.Xor(10, 10, 9)
	}
	// Copy the page into scratch and format the response.
	b.MovImm(5, webPageSize)
	b.MovImm(6, 0)
	b.Memcpy(name+"_scratch", 6, name+"_content", 4, 5)
	b.Call(name + "_fmt_response")
	b.MovImm(6, 0)
	b.Emit(name+"_scratch", 6, 5)
	// Trailer checksum over the scratch page (unrolled arithmetic the
	// real firmware performs for the L4 checksum).
	padChecksum(b, name+"_scratch", 12)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)
	return b.MustBuild()
}

// buildResponseHelper generates the response-formatting helper. The web
// server and image transformer each carry a private copy ("a pattern of
// response that does not query external services... we combine their
// reply logic", §6.4); the bodies are identical so coalescing merges
// them.
func buildResponseHelper(name string) *mcc.Function {
	b := mcc.NewBuilder(name)
	// Build a response header into r7: status line + content length.
	b.MovImm(7, 0x200)
	b.MovImm(8, 8)
	b.Shl(7, 7, 8)
	b.Or(7, 7, 5)
	// Unrolled emit of a canned header template.
	for i := 0; i < 95; i++ {
		b.Xor(9, 7, 8)
		b.Add(9, 9, 7)
	}
	b.Ret(7)
	return b.MustBuild()
}

// BuildRuntimeLib generates the shared runtime-library function every
// lambda calls (linked once by the composer): a guarded one-time
// initialization of library state followed by unrolled table setup.
// Static size is significant — it is the lambda runtime — but the
// dynamic cost after the first (cold) request is four instructions.
// pad sizes the init body; internal/workloads.BuildNaiveProgram tunes
// it so the naive four-lambda program lands at the paper's ~8.9 K
// instructions (§6.4, Figure 9).
func BuildRuntimeLib(pad int) *mcc.Function {
	b := mcc.NewBuilder("lib_runtime")
	b.MovImm(1, 0)
	b.LoadW(2, "lib_state", 1, 0)
	b.Brnz(2, "inited")
	b.MovImm(2, 1)
	b.StoreW("lib_state", 1, 0, 2)
	// One-time table/state initialization (unrolled stores; one
	// instruction per pad unit so padding is exact).
	b.MovImm(3, 0x5A)
	for i := 0; i < pad; i++ {
		b.Store("lib_state", 1, int64(8+i%32), 3)
	}
	b.Label("inited")
	b.Ret(2)
	return b.MustBuild()
}

// padChecksum emits n unrolled checksum steps over an object.
func padChecksum(b *mcc.Builder, obj string, n int) {
	b.MovImm(11, 0)
	for i := 0; i < n; i++ {
		b.MovImm(12, 0)
		b.Load(13, obj, 12, int64(i%16))
		b.Add(11, 11, 13)
	}
}
