package workloads

import (
	"encoding/binary"
	"fmt"

	"lambdanic/internal/cpusim"
	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// The key-value client lambdas (§6.2b) query users' data from a
// memcached server: the GET client reads keys, the SET client writes
// them. The request payload carries a kvreq header: op (1 byte) and a
// 4-byte key index. In Match+Lambda form the lambda builds the
// memcached text command into its scratch object and emits it; the
// register-only packet-assembly helper is carried privately by each
// client with an identical body — the duplicate logic the paper's
// lambda coalescing merges ("they contain equivalent logic to generate
// a new packet to query memcached, which we can combine and reuse",
// §6.4).

// kvKeySpace is the number of distinct keys the clients cycle through.
const kvKeySpace = 1000

// KVGetClient returns the memcached GET client workload.
func KVGetClient() *Workload {
	return &Workload{
		Name: "kv_get_client",
		ID:   KVGetClientID,
		Spec: &matchlambda.LambdaSpec{
			Name:  "kv_get_client",
			ID:    KVGetClientID,
			Entry: buildKVEntry("kv_get_client", "kvget", "get "),
			Helpers: []*mcc.Function{
				buildKVPacketHelper("kvget_build_req"),
			},
			Objects: []*mcc.Object{
				{Name: "kvget_scratch", Size: 256, Hint: mcc.HintHot},
			},
			Uses: []string{"kvreq"},
		},
		Profile: cpusim.Profile{
			ID:                     KVGetClientID,
			NativeInstructions:     900,
			GILFraction:            1,
			ExternalConnPerRequest: true,
		},
		MakeRequest: func(i int) []byte {
			return kvRequestPayload(0, uint32(i%kvKeySpace))
		},
		Handle: func(payload []byte, deps *Deps) ([]byte, error) {
			_, key, err := parseKVRequest(payload)
			if err != nil {
				return nil, err
			}
			if deps == nil || deps.KV == nil {
				return nil, fmt.Errorf("kv_get_client: no memcached dependency")
			}
			v, ok, err := deps.KV.Get(kvKeyName(key))
			if err != nil {
				return nil, fmt.Errorf("kv_get_client: %w", err)
			}
			if !ok {
				return []byte("MISS"), nil
			}
			return v, nil
		},
		// One-sided fast path: a GET whose key is present in the
		// EMEM-resident table mirror is answered by a probe of that
		// table — no lambda invocation, no memcached round trip.
		// Misses (and every SET) fall through to the lambda path
		// against the authoritative store.
		Bypass: func(payload []byte, deps *Deps) ([]byte, bool) {
			if deps == nil || deps.KVTable == nil {
				return nil, false
			}
			op, key, err := parseKVRequest(payload)
			if err != nil || op != 0 {
				return nil, false
			}
			return deps.KVTable.Get(kvKeyName(key))
		},
	}
}

// KVSetClient returns the memcached SET client workload.
func KVSetClient() *Workload {
	return &Workload{
		Name: "kv_set_client",
		ID:   KVSetClientID,
		Spec: &matchlambda.LambdaSpec{
			Name:  "kv_set_client",
			ID:    KVSetClientID,
			Entry: buildKVEntry("kv_set_client", "kvset", "set "),
			Helpers: []*mcc.Function{
				buildKVPacketHelper("kvset_build_req"),
			},
			Objects: []*mcc.Object{
				{Name: "kvset_scratch", Size: 256, Hint: mcc.HintHot},
			},
			Uses: []string{"kvreq"},
		},
		Profile: cpusim.Profile{
			ID:                     KVSetClientID,
			NativeInstructions:     1100,
			GILFraction:            1,
			ExternalConnPerRequest: true,
		},
		MakeRequest: func(i int) []byte {
			return kvRequestPayload(1, uint32(i%kvKeySpace))
		},
		Handle: func(payload []byte, deps *Deps) ([]byte, error) {
			_, key, err := parseKVRequest(payload)
			if err != nil {
				return nil, err
			}
			if deps == nil || deps.KV == nil {
				return nil, fmt.Errorf("kv_set_client: no memcached dependency")
			}
			value := fmt.Sprintf("value-%d", key)
			if err := deps.KV.Set(kvKeyName(key), 0, []byte(value)); err != nil {
				return nil, fmt.Errorf("kv_set_client: %w", err)
			}
			return []byte("STORED"), nil
		},
	}
}

// kvKeyName formats the memcached key for an index.
func kvKeyName(idx uint32) string { return fmt.Sprintf("user:%04d", idx%kvKeySpace) }

// KVRequestKey decodes a kvreq payload into its memcached key and
// reports whether the request is a GET — the decision point for the
// one-sided bypass (only GETs can be served by a remote read).
func KVRequestKey(payload []byte) (key string, isGet bool) {
	op, idx, err := parseKVRequest(payload)
	if err != nil {
		return "", false
	}
	return kvKeyName(idx), op == 0
}

// kvRequestPayload builds the kvreq wire payload: op byte + 4-byte key.
func kvRequestPayload(op byte, key uint32) []byte {
	p := make([]byte, 5)
	p[0] = op
	binary.BigEndian.PutUint32(p[1:], key)
	return p
}

// parseKVRequest decodes a kvreq payload.
func parseKVRequest(payload []byte) (op byte, key uint32, err error) {
	if len(payload) < 5 {
		return 0, 0, fmt.Errorf("kv client: short request (%d bytes)", len(payload))
	}
	return payload[0], binary.BigEndian.Uint32(payload[1:5]), nil
}

// buildKVEntry generates a key-value client's entry function: runtime
// init, kvreq validation, memcached command construction into the
// client's scratch buffer (unrolled template stores plus key-digit
// conversion), the shared packet-assembly helper, and the emit.
func buildKVEntry(name, prefix, verb string) *mcc.Function {
	scratch := prefix + "_scratch"
	b := mcc.NewBuilder(name)
	b.Call("lib_runtime")
	// Validate the parsed kvreq header.
	b.HdrGet(1, mcc.FieldArg0) // op
	b.HdrGet(2, mcc.FieldArg1) // key index
	// Write the command verb, one byte per unrolled store.
	for i, c := range []byte(verb) {
		b.MovImm(3, int64(c))
		b.MovImm(4, 0)
		b.Store(scratch, 4, int64(i), 3)
	}
	// Write the key template "user:0000" then patch in the digits.
	keyBase := len(verb)
	for i, c := range []byte("user:0000") {
		b.MovImm(3, int64(c))
		b.MovImm(4, 0)
		b.Store(scratch, 4, int64(keyBase+i), 3)
	}
	// Digit conversion: four iterations of divide-by-10 via repeated
	// subtraction (NPUs lack integer division), unrolled.
	b.Mov(5, 2) // remaining value
	for d := 3; d >= 0; d-- {
		// r6 = r5 % 10; r5 = r5 / 10 by subtract-count.
		b.MovImm(7, 0) // quotient
		b.MovImm(8, 10)
		loop := fmt.Sprintf("div%d", d)
		done := fmt.Sprintf("div%d_done", d)
		b.Label(loop)
		b.Lt(9, 5, 8)
		b.Brnz(9, done)
		b.Sub(5, 5, 8)
		b.MovImm(10, 1)
		b.Add(7, 7, 10)
		b.Jmp(loop)
		b.Label(done)
		// r5 now holds the digit; store '0'+digit.
		b.MovImm(10, '0')
		b.Add(10, 10, 5)
		b.MovImm(4, 0)
		b.Store(scratch, 4, int64(keyBase+5+d), 10)
		b.Mov(5, 7)
	}
	// Terminate with \r\n.
	b.MovImm(3, '\r')
	b.MovImm(4, 0)
	b.Store(scratch, 4, int64(keyBase+9), 3)
	b.MovImm(3, '\n')
	b.MovImm(4, 0)
	b.Store(scratch, 4, int64(keyBase+10), 3)
	// Shared packet assembly (framing, checksum) — register-only logic
	// identical across the two clients.
	b.Call(prefix + "_build_req")
	// Emit the command.
	b.MovImm(4, 0)
	b.MovImm(5, int64(keyBase+11))
	b.Emit(scratch, 4, 5)
	// Post-processing pad: response validation loop the real client
	// performs on memcached replies.
	padChecksum(b, scratch, 15)
	b.MovImm(1, mcc.StatusForward)
	b.Ret(1)
	return b.MustBuild()
}

// buildKVPacketHelper generates the packet-assembly helper: UDP framing
// words, the memcached frame header, and a checksum over the command —
// all register arithmetic, so the two clients' copies are structurally
// identical and coalescing merges them.
func buildKVPacketHelper(name string) *mcc.Function {
	b := mcc.NewBuilder(name)
	b.MovImm(1, 0x11211) // memcached port pair seed
	b.MovImm(2, 16)
	for i := 0; i < 86; i++ {
		b.Shl(3, 1, 2)
		b.Xor(1, 1, 3)
		b.Add(1, 1, 2)
	}
	b.Ret(1)
	return b.MustBuild()
}
