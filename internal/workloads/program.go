package workloads

import (
	"fmt"

	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
)

// NaiveProgramTarget is the paper's naive four-lambda program size:
// 8,902 instructions (§6.4, Figure 9). BuildNaiveProgram pads the
// shared runtime library so the composed program lands exactly there.
const NaiveProgramTarget = 8902

// Headers returns the full header dictionary the naive program parses:
// the application headers the lambdas declare plus a generic protocol
// stack (ethernet/ipv4/udp/tunnel) that no lambda uses — the parse
// logic match reduction removes ("removing the unused headers and
// duplicate match fields from the final code", §5.1).
//
// Parser order matters and is part of the contract: parsers run in
// slice order and later parsers overwrite earlier ones' slots, so the
// most specific application header (imgreq, with the longest minimum
// payload) comes last. Each parser bounds-checks the payload, so a
// shorter request leaves the more specific slots untouched.
func Headers() []matchlambda.HeaderSpec {
	return []matchlambda.HeaderSpec{
		{Name: "ethernet", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldSrcNode, Offset: 0, Bytes: 6},
			{Slot: mcc.FieldSrcNode, Offset: 6, Bytes: 6},
			{Slot: mcc.FieldSrcNode, Offset: 12, Bytes: 2},
		}},
		{Name: "ipv4", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldSrcNode, Offset: 14, Bytes: 1},
			{Slot: mcc.FieldSrcNode, Offset: 15, Bytes: 1},
			{Slot: mcc.FieldSrcNode, Offset: 16, Bytes: 2},
			{Slot: mcc.FieldSrcNode, Offset: 18, Bytes: 4},
			{Slot: mcc.FieldSrcNode, Offset: 22, Bytes: 4},
		}},
		{Name: "udp", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldSrcNode, Offset: 26, Bytes: 2},
			{Slot: mcc.FieldSrcNode, Offset: 28, Bytes: 2},
			{Slot: mcc.FieldSrcNode, Offset: 30, Bytes: 2},
		}},
		{Name: "tunnel", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldSrcNode, Offset: 32, Bytes: 4},
			{Slot: mcc.FieldSrcNode, Offset: 36, Bytes: 4},
			{Slot: mcc.FieldSrcNode, Offset: 40, Bytes: 2},
		}},
		// Application headers, least- to most-specific.
		{Name: "webreq", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldArg0, Offset: 0, Bytes: 2},
		}},
		{Name: "kvreq", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldArg0, Offset: 0, Bytes: 1},
			{Slot: mcc.FieldArg1, Offset: 1, Bytes: 4},
		}},
		{Name: "imgreq", Fields: []matchlambda.FieldSpec{
			{Slot: mcc.FieldArg0, Offset: 0, Bytes: 4},
			{Slot: mcc.FieldArg1, Offset: 4, Bytes: 4},
		}},
	}
}

// DefaultSet returns the paper's benchmark set in Figure 9's
// composition: two key-value clients, a web server, and an image
// transformer (§6.4).
func DefaultSet() []*Workload {
	return []*Workload{
		WebServer(),
		KVGetClient(),
		KVSetClient(),
		ImageTransformer(DefaultImageWidth, DefaultImageHeight),
	}
}

// ByID indexes a workload set.
func ByID(ws []*Workload) map[uint32]*Workload {
	out := make(map[uint32]*Workload, len(ws))
	for _, w := range ws {
		out[w.ID] = w
	}
	return out
}

// BuildNaiveProgram composes the workloads into one naive Match+Lambda
// program, padding the shared runtime library so the total code size
// lands on target (0 means no padding). The result is the "Unoptimized"
// program of Figure 9; run mcc.Optimize on it for the optimized
// trajectory.
func BuildNaiveProgram(ws []*Workload, target int) (*mcc.Program, error) {
	compose := func(pad int) (*mcc.Program, error) {
		specs := make([]*matchlambda.LambdaSpec, 0, len(ws))
		for _, w := range ws {
			// Entries and helpers are reused across compositions;
			// compose clones nothing, so rebuild specs fresh each call
			// to avoid cross-program aliasing of mutable bodies.
			specs = append(specs, w.Spec)
		}
		return matchlambda.Compose(specs, matchlambda.ComposeOptions{
			Headers: Headers(),
			Shared:  []*mcc.Function{BuildRuntimeLib(pad)},
			SharedObjects: []*mcc.Object{
				{Name: "lib_state", Size: 64},
			},
		})
	}
	p, err := compose(0)
	if err != nil {
		return nil, err
	}
	if target <= 0 {
		return p, nil
	}
	size := p.StaticInstructions()
	if size >= target {
		return p, nil
	}
	p, err = compose(target - size)
	if err != nil {
		return nil, err
	}
	if got := p.StaticInstructions(); got != target {
		return nil, fmt.Errorf("workloads: padded program is %d instructions, want %d", got, target)
	}
	return p, nil
}

// CompileOptimized builds the naive program, runs all optimizer passes,
// and links the result, returning the executable image and the per-pass
// trajectory (Figure 9).
func CompileOptimized(ws []*Workload, target int) (*mcc.Executable, []mcc.PassResult, error) {
	return CompileOptimizedWith(ws, target, mcc.LinkOptions{})
}

// CompileOptimizedWith is CompileOptimized with explicit link options
// (execution engine, step limit, payload placement). The reduced match
// stage the optimizer emits is what the compiled engine turns into its
// WorkloadID jump table.
func CompileOptimizedWith(ws []*Workload, target int, opts mcc.LinkOptions) (*mcc.Executable, []mcc.PassResult, error) {
	naive, err := BuildNaiveProgram(ws, target)
	if err != nil {
		return nil, nil, err
	}
	opt, results, err := mcc.Optimize(naive, mcc.AllPasses())
	if err != nil {
		return nil, nil, err
	}
	exe, err := mcc.Link(opt, opts)
	if err != nil {
		return nil, nil, err
	}
	return exe, results, nil
}
