package faults

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Proc is a controllable process-like target — a worker daemon the
// injector can kill, restart, or slow. The functional deployment
// implements it over its workers; tests implement it directly.
type Proc interface {
	// Kill stops the process: it must stop serving and stop
	// heartbeating until restarted.
	Kill() error
	// Restart brings a killed process back.
	Restart() error
	// Slow adds per-request service delay; zero clears it.
	Slow(d time.Duration) error
}

// Op enumerates process fault operations.
type Op int

// Process fault operations.
const (
	OpKill Op = iota + 1
	OpRestart
	OpSlow
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case OpKill:
		return "kill"
	case OpRestart:
		return "restart"
	case OpSlow:
		return "slow"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// ProcEvent is one scheduled process fault.
type ProcEvent struct {
	// At is the offset from script start.
	At time.Duration
	// Target names the process in the proc map passed to Run.
	Target string
	Op     Op
	// Delay is the slowdown installed by OpSlow.
	Delay time.Duration
}

// Script is an ordered schedule of process faults — the kill/restart/
// slow half of a chaos scenario. The schedule itself is fixed data, so
// a script replayed against the same targets produces the same fault
// sequence every run.
type Script struct {
	Events []ProcEvent
}

// Sorted returns the events in firing order (stable for equal times).
func (s *Script) Sorted() []ProcEvent {
	out := append([]ProcEvent(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// ScriptRun is a script executing against live targets.
type ScriptRun struct {
	mu     sync.Mutex
	timers []*time.Timer
	errs   []error
	done   sync.WaitGroup
}

// Run starts the script against the named processes on wall-clock
// timers, returning immediately. Events naming unknown targets are
// recorded as errors. Wait for completion (or cancel early) through the
// returned run. A nil script returns an empty, already-finished run.
func (s *Script) Run(procs map[string]Proc) *ScriptRun {
	run := &ScriptRun{}
	if s == nil {
		return run
	}
	for _, ev := range s.Sorted() {
		ev := ev
		p, ok := procs[ev.Target]
		if !ok {
			run.addErr(fmt.Errorf("faults: script target %q unknown", ev.Target))
			continue
		}
		run.done.Add(1)
		t := time.AfterFunc(ev.At, func() {
			defer run.done.Done()
			var err error
			switch ev.Op {
			case OpKill:
				err = p.Kill()
			case OpRestart:
				err = p.Restart()
			case OpSlow:
				err = p.Slow(ev.Delay)
			default:
				err = fmt.Errorf("faults: invalid op %v", ev.Op)
			}
			if err != nil {
				run.addErr(fmt.Errorf("faults: %s %s: %w", ev.Op, ev.Target, err))
			}
		})
		run.mu.Lock()
		run.timers = append(run.timers, t)
		run.mu.Unlock()
	}
	return run
}

func (r *ScriptRun) addErr(err error) {
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
}

// Wait blocks until every scheduled event has fired and returns the
// collected errors.
func (r *ScriptRun) Wait() []error {
	r.done.Wait()
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error(nil), r.errs...)
}

// Stop cancels events that have not fired yet.
func (r *ScriptRun) Stop() {
	r.mu.Lock()
	timers := r.timers
	r.timers = nil
	r.mu.Unlock()
	for _, t := range timers {
		if t.Stop() {
			r.done.Done()
		}
	}
}
