package faults

import (
	"net"
	"sync"
	"time"
)

// WrapConn decorates a packet connection with the injector's rules:
// every outgoing packet is judged on the (name → destination) link. A
// nil injector returns conn unchanged — the unfaulted hot path keeps
// its original connection with zero added cost.
//
// Rules fire sender-side only (drop, duplicate, reorder, delay before
// the write), so wrapping both ends of a link never double-applies a
// rule; ingress filtering honors the down state alone, keeping a downed
// endpoint silent in both directions. Reordering holds one packet back
// and releases it behind the next, mirroring the in-memory network's
// model.
func (inj *Injector) WrapConn(conn net.PacketConn, name string) net.PacketConn {
	if inj == nil {
		return conn
	}
	return &faultConn{PacketConn: conn, inj: inj, name: name}
}

// faultConn applies injector verdicts around an inner connection.
type faultConn struct {
	net.PacketConn
	inj  *Injector
	name string

	// held is the packet being reordered behind the next write, per
	// destination.
	mu   sync.Mutex
	held map[string]heldPacket
}

type heldPacket struct {
	data []byte
	addr net.Addr
}

// WriteTo applies egress faults before delegating to the inner
// connection. Dropped packets report success, like a lossy wire.
func (c *faultConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	v := c.inj.Judge(c.name, addr.String())
	if v.Drop {
		return len(p), nil
	}
	if v.Delay > 0 {
		// Copy: the caller may reuse p once WriteTo returns.
		data := append([]byte(nil), p...)
		time.AfterFunc(v.Delay, func() {
			c.writeJudged(data, addr, v)
		})
		return len(p), nil
	}
	c.writeJudged(p, addr, v)
	return len(p), nil
}

// writeJudged performs the write honoring reorder/dup verdicts.
func (c *faultConn) writeJudged(p []byte, addr net.Addr, v Verdict) {
	key := addr.String()
	c.mu.Lock()
	if v.Reorder {
		if c.held == nil {
			c.held = make(map[string]heldPacket)
		}
		if _, busy := c.held[key]; !busy {
			c.held[key] = heldPacket{data: append([]byte(nil), p...), addr: addr}
			c.mu.Unlock()
			return
		}
	}
	flush, flushing := c.held[key]
	delete(c.held, key)
	c.mu.Unlock()
	c.PacketConn.WriteTo(p, addr)
	if v.Dup {
		c.PacketConn.WriteTo(p, addr)
	}
	if flushing {
		c.PacketConn.WriteTo(flush.data, flush.addr)
	}
}

// ReadFrom drops ingress packets addressed to a downed endpoint or
// judged lost on the source link; everything else passes through.
func (c *faultConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, from, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			return n, from, err
		}
		if from != nil && c.inj.IsDown(from.String()) {
			continue
		}
		if c.inj.IsDown(c.name) {
			continue
		}
		return n, from, nil
	}
}
