// Package faults is λ-NIC's fault-injection subsystem: a deterministic,
// seeded injector that drives failure scenarios through both of the
// repository's layers. On the functional layer it wraps transport links
// (any net.PacketConn — the in-memory network or real UDP) with
// scriptable per-link rules — packet loss, delay, duplication,
// reordering, and one-way partitions — and kills, restarts, or slows
// worker daemons through the Proc interface (script.go). On the timing
// layer it schedules hardware fault events (NIC crash, island
// degradation, firmware-swap downtime, §7) into the discrete-event
// simulation (sim.go).
//
// Determinism is the design center: every per-packet decision is a pure
// function of (seed, link, packet index), independent of goroutine
// interleaving, so the same seed always yields the same drop/duplicate/
// reorder schedule — the property the chaos experiments' repeatability
// tests assert. Like the obs tracer, the disabled path is free: a nil
// *Injector judges every packet as clean and wraps connections as
// no-ops, so instrumented paths pay only a pointer test.
package faults

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Rule scripts one fault pattern on a directional link. Zero-valued
// fields inject nothing, so a Rule only describes the faults it names.
type Rule struct {
	// From and To match the link's endpoint names; empty or "*" matches
	// any endpoint. Endpoint names are transport addresses (memnet node
	// names or UDP host:port strings).
	From, To string
	// FirstPacket and LastPacket bound the rule to a window of packet
	// indexes on the matched link: the rule applies to the half-open
	// index range [FirstPacket, LastPacket). A zero LastPacket leaves
	// the window open-ended. Indexes count packets sent on the link
	// since the injector was created.
	FirstPacket, LastPacket uint64
	// Drop is the probability the packet is lost in transit.
	Drop float64
	// Dup is the probability the packet is delivered twice.
	Dup float64
	// Reorder is the probability the packet is held back and delivered
	// behind the next packet on the link.
	Reorder float64
	// Delay is added to every matched packet's delivery.
	Delay time.Duration
	// Partition drops every matched packet — a one-way partition. Cut
	// both directions with a second mirrored rule.
	Partition bool
}

// matches reports whether the rule applies to the link and packet index.
func (r Rule) matches(from, to string, n uint64) bool {
	if r.From != "" && r.From != "*" && r.From != from {
		return false
	}
	if r.To != "" && r.To != "*" && r.To != to {
		return false
	}
	if n < r.FirstPacket {
		return false
	}
	if r.LastPacket > 0 && n >= r.LastPacket {
		return false
	}
	return true
}

// Verdict is the injector's decision for one packet.
type Verdict struct {
	Drop    bool
	Dup     bool
	Reorder bool
	Delay   time.Duration
}

// Clean reports whether the packet passes untouched.
func (v Verdict) Clean() bool {
	return !v.Drop && !v.Dup && !v.Reorder && v.Delay == 0
}

// Injector evaluates fault rules over links. Safe for concurrent use.
// A nil *Injector is the disabled injector: it judges every packet
// clean and wraps connections as pass-throughs.
type Injector struct {
	seed  int64
	rules []Rule

	mu     sync.Mutex
	counts map[string]uint64 // per-link packet index
	down   map[string]bool   // endpoints taken down (kill/restart)
	slow   map[string]time.Duration
}

// NewInjector builds an injector with a deterministic seed and an
// initial rule set.
func NewInjector(seed int64, rules ...Rule) *Injector {
	return &Injector{
		seed:   seed,
		rules:  append([]Rule(nil), rules...),
		counts: make(map[string]uint64),
		down:   make(map[string]bool),
		slow:   make(map[string]time.Duration),
	}
}

// AddRule appends a rule at runtime.
func (inj *Injector) AddRule(r Rule) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.rules = append(inj.rules, r)
	inj.mu.Unlock()
}

// Rules returns a copy of the installed rule set.
func (inj *Injector) Rules() []Rule {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Rule(nil), inj.rules...)
}

// SetDown marks an endpoint as crashed: every packet to or from it is
// dropped until the endpoint is brought back up. This is the transport
// face of killing a worker daemon.
func (inj *Injector) SetDown(endpoint string, down bool) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	if down {
		inj.down[endpoint] = true
	} else {
		delete(inj.down, endpoint)
	}
	inj.mu.Unlock()
}

// IsDown reports whether the endpoint is marked crashed.
func (inj *Injector) IsDown(endpoint string) bool {
	if inj == nil {
		return false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.down[endpoint]
}

// SetSlow adds a fixed egress delay to every packet the endpoint sends
// (a slowed worker daemon). A zero delay clears the slowdown.
func (inj *Injector) SetSlow(endpoint string, d time.Duration) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	if d > 0 {
		inj.slow[endpoint] = d
	} else {
		delete(inj.slow, endpoint)
	}
	inj.mu.Unlock()
}

// Salts separating the independent random draws made per packet.
const (
	saltDrop = iota + 1
	saltDup
	saltReorder
)

// u01 derives a uniform [0,1) value as a pure function of (seed, link,
// packet index, salt) with a splitmix64-style finalizer, so fault
// decisions do not depend on goroutine interleaving.
func (inj *Injector) u01(link string, n uint64, salt uint64) float64 {
	h := uint64(inj.seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(link); i++ {
		h ^= uint64(link[i])
		h *= 0x100000001b3
	}
	h ^= n * 0xbf58476d1ce4e5b9
	h ^= salt * 0x94d049bb133111eb
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / (1 << 53)
}

// Judge decides the fate of the next packet on the from→to link. On a
// nil injector it returns the clean verdict without any bookkeeping.
func (inj *Injector) Judge(from, to string) Verdict {
	if inj == nil {
		return Verdict{}
	}
	link := from + "\x00" + to
	inj.mu.Lock()
	n := inj.counts[link]
	inj.counts[link] = n + 1
	if inj.down[from] || inj.down[to] {
		inj.mu.Unlock()
		return Verdict{Drop: true}
	}
	var v Verdict
	v.Delay = inj.slow[from]
	rules := inj.rules
	inj.mu.Unlock()
	for _, r := range rules {
		if !r.matches(from, to, n) {
			continue
		}
		if r.Partition || (r.Drop > 0 && inj.u01(link, n, saltDrop) < r.Drop) {
			return Verdict{Drop: true}
		}
		if r.Dup > 0 && inj.u01(link, n, saltDup) < r.Dup {
			v.Dup = true
		}
		if r.Reorder > 0 && inj.u01(link, n, saltReorder) < r.Reorder {
			v.Reorder = true
		}
		v.Delay += r.Delay
	}
	return v
}

// ParseRules parses the compact flag syntax used by the daemons'
// -faults flag: comma-separated key=value pairs forming one rule, e.g.
// "drop=0.05,dup=0.01,reorder=0.02,delay=2ms". Recognized keys: drop,
// dup, reorder, delay, from, to, first, last, partition.
func ParseRules(spec string) ([]Rule, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var r Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad rule term %q (want key=value)", part)
		}
		var err error
		switch key {
		case "drop":
			_, err = fmt.Sscanf(val, "%g", &r.Drop)
		case "dup":
			_, err = fmt.Sscanf(val, "%g", &r.Dup)
		case "reorder":
			_, err = fmt.Sscanf(val, "%g", &r.Reorder)
		case "delay":
			r.Delay, err = time.ParseDuration(val)
		case "from":
			r.From = val
		case "to":
			r.To = val
		case "first":
			_, err = fmt.Sscanf(val, "%d", &r.FirstPacket)
		case "last":
			_, err = fmt.Sscanf(val, "%d", &r.LastPacket)
		case "partition":
			r.Partition = val == "true" || val == "1"
		default:
			return nil, fmt.Errorf("faults: unknown rule key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: bad value for %s: %w", key, err)
		}
	}
	return []Rule{r}, nil
}
