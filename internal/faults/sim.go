package faults

import (
	"fmt"
	"sort"

	"lambdanic/internal/sim"
)

// SimFaultKind enumerates timing-layer hardware fault events.
type SimFaultKind int

// Hardware fault kinds scheduled into the simulation (§7: firmware
// swaps halt the NIC; crashes and island degradation are the failure
// modes healthd exists to survive).
const (
	// FaultNICCrash black-holes a simulated NIC: requests in flight and
	// arriving are silently lost until recovery.
	FaultNICCrash SimFaultKind = iota + 1
	// FaultNICRecover brings a crashed NIC back.
	FaultNICRecover
	// FaultDegrade multiplies a target's service time by Factor —
	// island degradation or thermal throttling.
	FaultDegrade
	// FaultFirmwareSwap reloads firmware, paying the configured swap
	// downtime (§7).
	FaultFirmwareSwap
	// FaultHostDown fails a simulated host CPU; requests error until
	// recovery.
	FaultHostDown
	// FaultHostRecover brings a failed host back.
	FaultHostRecover
)

// String names the fault kind.
func (k SimFaultKind) String() string {
	switch k {
	case FaultNICCrash:
		return "nic-crash"
	case FaultNICRecover:
		return "nic-recover"
	case FaultDegrade:
		return "degrade"
	case FaultFirmwareSwap:
		return "firmware-swap"
	case FaultHostDown:
		return "host-down"
	case FaultHostRecover:
		return "host-recover"
	default:
		return fmt.Sprintf("SimFaultKind(%d)", int(k))
	}
}

// SimFault is one scheduled hardware fault event.
type SimFault struct {
	// At is the virtual time the fault fires.
	At sim.Time
	// Kind selects the fault.
	Kind SimFaultKind
	// Target names the afflicted device (a worker name in experiments).
	Target string
	// Factor is the service-time multiplier for FaultDegrade (≥ 1).
	Factor float64
}

// Timeline is an ordered schedule of hardware faults for one simulated
// run. Because the events are plain data executed through the sim's
// deterministic queue, the same timeline against the same simulation
// always reproduces the same failure history.
type Timeline struct {
	Faults []SimFault
}

// Sorted returns the faults in firing order (stable for equal times).
func (t *Timeline) Sorted() []SimFault {
	out := append([]SimFault(nil), t.Faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Schedule enqueues every fault into the simulation, invoking apply
// when each fires. The apply callback maps the fault onto concrete
// devices (nicsim crash/recover/slowdown, cpusim fail/recover,
// firmware reload) — the timeline itself stays device-agnostic. A nil
// timeline schedules nothing.
func (t *Timeline) Schedule(s *sim.Sim, apply func(SimFault)) {
	if t == nil || s == nil || apply == nil {
		return
	}
	for _, f := range t.Sorted() {
		f := f
		s.At(f.At, func() { apply(f) })
	}
}
