package faults

import (
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"lambdanic/internal/sim"
)

// TestJudgeRepeatable is the subsystem's core guarantee: the verdict
// schedule is a pure function of the seed, so two injectors with the
// same seed and rules produce identical fault schedules regardless of
// call interleaving.
func TestJudgeRepeatable(t *testing.T) {
	rules := []Rule{{Drop: 0.1, Dup: 0.05, Reorder: 0.08, Delay: time.Millisecond}}
	run := func(seed int64) []Verdict {
		inj := NewInjector(seed, rules...)
		out := make([]Verdict, 0, 2000)
		for i := 0; i < 1000; i++ {
			out = append(out, inj.Judge("a", "b"))
			out = append(out, inj.Judge("b", "a"))
		}
		return out
	}
	first := run(42)
	second := run(42)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same seed produced different verdict schedules")
	}
	if reflect.DeepEqual(first, run(43)) {
		t.Fatal("different seeds produced identical verdict schedules")
	}
	var drops int
	for _, v := range first {
		if v.Drop {
			drops++
		}
	}
	if drops == 0 || drops == len(first) {
		t.Fatalf("drop rate 0.1 over %d packets yielded %d drops", len(first), drops)
	}
}

// TestJudgeInterleavingIndependent verifies verdicts on one link do not
// shift when traffic on another link is interleaved between calls —
// the property that makes concurrent runs reproducible.
func TestJudgeInterleavingIndependent(t *testing.T) {
	rules := []Rule{{Drop: 0.2}}
	solo := NewInjector(7, rules...)
	var want []Verdict
	for i := 0; i < 500; i++ {
		want = append(want, solo.Judge("a", "b"))
	}
	mixed := NewInjector(7, rules...)
	var got []Verdict
	for i := 0; i < 500; i++ {
		mixed.Judge("c", "d") // unrelated traffic
		got = append(got, mixed.Judge("a", "b"))
		mixed.Judge("d", "c")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("verdicts on a link changed when other links carried traffic")
	}
}

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if v := inj.Judge("a", "b"); !v.Clean() {
		t.Fatalf("nil injector verdict = %+v, want clean", v)
	}
	inj.AddRule(Rule{Drop: 1})
	inj.SetDown("a", true)
	inj.SetSlow("a", time.Second)
	if inj.IsDown("a") {
		t.Fatal("nil injector reports endpoint down")
	}
	if rules := inj.Rules(); rules != nil {
		t.Fatalf("nil injector rules = %v, want nil", rules)
	}
	inner := &recordConn{}
	if got := inj.WrapConn(inner, "a"); got != net.PacketConn(inner) {
		t.Fatal("nil injector did not return the wrapped conn unchanged")
	}
}

func TestRuleWindowAndLinkMatching(t *testing.T) {
	inj := NewInjector(1, Rule{From: "a", To: "b", FirstPacket: 2, LastPacket: 4, Partition: true})
	// Packets 0,1 pass; 2,3 partitioned; 4+ pass again.
	for i := 0; i < 6; i++ {
		v := inj.Judge("a", "b")
		want := i >= 2 && i < 4
		if v.Drop != want {
			t.Fatalf("packet %d: drop=%v, want %v", i, v.Drop, want)
		}
	}
	// Reverse direction is a different link: never matched.
	if v := inj.Judge("b", "a"); v.Drop {
		t.Fatal("one-way partition dropped reverse-direction traffic")
	}
	if v := inj.Judge("a", "c"); v.Drop {
		t.Fatal("rule for a→b matched a→c")
	}
}

func TestDownEndpointDropsBothDirections(t *testing.T) {
	inj := NewInjector(1)
	inj.SetDown("w1", true)
	if v := inj.Judge("w1", "gw"); !v.Drop {
		t.Fatal("downed sender not dropped")
	}
	if v := inj.Judge("gw", "w1"); !v.Drop {
		t.Fatal("traffic to downed endpoint not dropped")
	}
	inj.SetDown("w1", false)
	if v := inj.Judge("gw", "w1"); v.Drop {
		t.Fatal("restarted endpoint still dropping")
	}
}

func TestSlowEndpointDelays(t *testing.T) {
	inj := NewInjector(1)
	inj.SetSlow("w1", 3*time.Millisecond)
	if v := inj.Judge("w1", "gw"); v.Delay != 3*time.Millisecond {
		t.Fatalf("slowed sender delay = %v, want 3ms", v.Delay)
	}
	if v := inj.Judge("gw", "w1"); v.Delay != 0 {
		t.Fatalf("slowdown leaked to reverse direction: %v", v.Delay)
	}
	inj.SetSlow("w1", 0)
	if v := inj.Judge("w1", "gw"); v.Delay != 0 {
		t.Fatal("cleared slowdown still delaying")
	}
}

// recordConn is a fake net.PacketConn capturing writes.
type recordConn struct {
	mu     sync.Mutex
	writes []string
}

func (c *recordConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	c.mu.Lock()
	c.writes = append(c.writes, string(p))
	c.mu.Unlock()
	return len(p), nil
}

func (c *recordConn) got() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.writes...)
}

func (c *recordConn) ReadFrom(p []byte) (int, net.Addr, error) { select {} }
func (c *recordConn) Close() error                             { return nil }
func (c *recordConn) LocalAddr() net.Addr                      { return fakeAddr("rec") }
func (c *recordConn) SetDeadline(time.Time) error              { return nil }
func (c *recordConn) SetReadDeadline(time.Time) error          { return nil }
func (c *recordConn) SetWriteDeadline(time.Time) error         { return nil }

type fakeAddr string

func (a fakeAddr) Network() string { return "fake" }
func (a fakeAddr) String() string  { return string(a) }

func TestWrapConnDropDupReorder(t *testing.T) {
	dst := fakeAddr("b")

	// Partition: nothing reaches the wire, writes still report success.
	inner := &recordConn{}
	conn := NewInjector(1, Rule{Partition: true}).WrapConn(inner, "a")
	if n, err := conn.WriteTo([]byte("x"), dst); n != 1 || err != nil {
		t.Fatalf("dropped write returned (%d, %v)", n, err)
	}
	if w := inner.got(); len(w) != 0 {
		t.Fatalf("partitioned conn wrote %v", w)
	}

	// Duplication: every packet delivered twice.
	inner = &recordConn{}
	conn = NewInjector(1, Rule{Dup: 1}).WrapConn(inner, "a")
	conn.WriteTo([]byte("x"), dst)
	if w := inner.got(); len(w) != 2 || w[0] != "x" || w[1] != "x" {
		t.Fatalf("dup writes = %v, want [x x]", w)
	}

	// Reordering: first packet held, released behind the second.
	inner = &recordConn{}
	conn = NewInjector(1, Rule{FirstPacket: 0, LastPacket: 1, Reorder: 1}).WrapConn(inner, "a")
	conn.WriteTo([]byte("1"), dst)
	conn.WriteTo([]byte("2"), dst)
	if w := inner.got(); !reflect.DeepEqual(w, []string{"2", "1"}) {
		t.Fatalf("reordered writes = %v, want [2 1]", w)
	}
}

func TestWrapConnDelay(t *testing.T) {
	inner := &recordConn{}
	conn := NewInjector(1, Rule{Delay: 5 * time.Millisecond}).WrapConn(inner, "a")
	conn.WriteTo([]byte("x"), fakeAddr("b"))
	if w := inner.got(); len(w) != 0 {
		t.Fatal("delayed packet written immediately")
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(inner.got()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("delayed packet never delivered")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("drop=0.05,dup=0.01,reorder=0.02,delay=2ms,from=a,to=b,first=10,last=20")
	if err != nil {
		t.Fatal(err)
	}
	want := Rule{From: "a", To: "b", FirstPacket: 10, LastPacket: 20,
		Drop: 0.05, Dup: 0.01, Reorder: 0.02, Delay: 2 * time.Millisecond}
	if len(rules) != 1 || rules[0] != want {
		t.Fatalf("ParseRules = %+v, want %+v", rules, want)
	}
	if rules, err := ParseRules("  "); err != nil || rules != nil {
		t.Fatalf("blank spec = (%v, %v), want (nil, nil)", rules, err)
	}
	if _, err := ParseRules("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseRules("drop"); err == nil {
		t.Fatal("term without value accepted")
	}
}

// scriptProc records operations applied to it.
type scriptProc struct {
	mu  sync.Mutex
	ops []string
}

func (p *scriptProc) record(op string) error {
	p.mu.Lock()
	p.ops = append(p.ops, op)
	p.mu.Unlock()
	return nil
}

func (p *scriptProc) Kill() error                { return p.record("kill") }
func (p *scriptProc) Restart() error             { return p.record("restart") }
func (p *scriptProc) Slow(d time.Duration) error { return p.record("slow:" + d.String()) }

func TestScriptRun(t *testing.T) {
	p := &scriptProc{}
	s := &Script{Events: []ProcEvent{
		{At: 10 * time.Millisecond, Target: "w1", Op: OpRestart},
		{At: 0, Target: "w1", Op: OpKill},
		{At: 5 * time.Millisecond, Target: "w1", Op: OpSlow, Delay: time.Second},
		{At: 0, Target: "missing", Op: OpKill},
	}}
	run := s.Run(map[string]Proc{"w1": p})
	errs := run.Wait()
	if len(errs) != 1 {
		t.Fatalf("errors = %v, want exactly the unknown-target error", errs)
	}
	p.mu.Lock()
	ops := append([]string(nil), p.ops...)
	p.mu.Unlock()
	want := []string{"kill", "slow:1s", "restart"}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
}

func TestScriptNilAndStop(t *testing.T) {
	var s *Script
	if errs := s.Run(nil).Wait(); len(errs) != 0 {
		t.Fatalf("nil script errors = %v", errs)
	}
	p := &scriptProc{}
	run := (&Script{Events: []ProcEvent{{At: time.Hour, Target: "w1", Op: OpKill}}}).
		Run(map[string]Proc{"w1": p})
	run.Stop()
	run.Wait() // must not block on the cancelled event
}

func TestTimelineSchedule(t *testing.T) {
	s := sim.New(1)
	tl := &Timeline{Faults: []SimFault{
		{At: 20 * time.Microsecond, Kind: FaultNICRecover, Target: "w1"},
		{At: 10 * time.Microsecond, Kind: FaultNICCrash, Target: "w1"},
		{At: 15 * time.Microsecond, Kind: FaultDegrade, Target: "w2", Factor: 2},
	}}
	var got []string
	var at []sim.Time
	tl.Schedule(s, func(f SimFault) {
		got = append(got, f.Kind.String()+"/"+f.Target)
		at = append(at, s.Now())
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"nic-crash/w1", "degrade/w2", "nic-recover/w1"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fault order = %v, want %v", got, want)
	}
	if at[0] != 10*time.Microsecond || at[2] != 20*time.Microsecond {
		t.Fatalf("fault times = %v", at)
	}
	var nilT *Timeline
	nilT.Schedule(s, func(SimFault) { t.Fatal("nil timeline fired") })
	s.RunUntilIdle()
}
