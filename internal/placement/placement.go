// Package placement implements the dynamic NIC/host boundary
// scheduler: a runtime engine that decides, per lambda, whether it
// should execute on the λ-NIC's NPU cores or on the host CPUs, and
// re-splits that boundary as load shifts. The λ-NIC paper fixes the
// boundary at deploy time (lambdas compile to Match+Lambda firmware
// and stay resident); this engine generalizes the existing static
// host-fallback into a feedback loop over three signals:
//
//   - fit: instruction-store pressure and memory-level placement of
//     the compiled firmware, exported by mcc.Footprint — a lambda
//     whose code overflows the per-core instruction store can never
//     run on the NIC, and one whose objects spill to EMEM benefits
//     less from NIC residency;
//   - latency: EWMA of observed per-backend service latency, the
//     direct evidence of which side currently serves the lambda
//     faster;
//   - load: relative utilization of the NIC and host pools, so the
//     engine sheds work off whichever side is saturating.
//
// Decisions pass through a hysteresis margin and a minimum dwell time
// (anti-flap, mirroring autoscale's cooldown), and moves execute as
// three-step transparent migrations (warm target, cut over the
// gateway route snapshot, drain the source) via the Coordinator in
// migrate.go.
//
// Like healthd, the engine is clock-free: every entry point takes an
// explicit timestamp, so it runs unchanged under the discrete-event
// simulator's virtual clock and a daemon's wall clock.
package placement

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"lambdanic/internal/mcc"
	"lambdanic/internal/monitor"
)

// Location is where a lambda currently executes.
type Location int

const (
	// LocHost: the lambda runs on the host CPU backend.
	LocHost Location = iota
	// LocNIC: the lambda runs on the SmartNIC backend.
	LocNIC
	// LocMigrating: a move is in flight; requests still route to the
	// source until cutover.
	LocMigrating
)

func (l Location) String() string {
	switch l {
	case LocHost:
		return "HOST"
	case LocNIC:
		return "NIC"
	case LocMigrating:
		return "MIGRATING"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// Config parameterizes the engine.
type Config struct {
	// InstrStorePerCore is the NIC's per-core instruction store in
	// instructions; firmware exceeding it is host-pinned.
	InstrStorePerCore int
	// LatencyAlpha is the EWMA factor in (0, 1] applied to observed
	// latencies; 1 keeps only the newest sample.
	LatencyAlpha float64
	// Margin is the hysteresis half-band: a workload on the host moves
	// to the NIC only when its NIC score exceeds +Margin, and a
	// NIC-resident workload moves off only below -Margin. The dead
	// band between them absorbs score jitter.
	Margin float64
	// MinDwell is the minimum time a workload stays put after a move
	// before the engine reconsiders it (anti-flap).
	MinDwell time.Duration
	// Cooldown is the engine-wide minimum time between decision rounds
	// that issue moves: after any migration starts, every workload's
	// latency EWMA needs a settle period to shed the queueing the
	// migration just relieved, or the engine chases its own wake.
	// Zero disables the cooldown.
	Cooldown time.Duration
	// MaxMoves caps boundary moves per Decide round (0 = unlimited).
	// With a cap, the most out-of-band workloads move first and the
	// rest are re-evaluated after the fleet absorbs the change.
	MaxMoves int
	// History bounds the decision ring buffer.
	History int
	// WLatency, WFit and WLoad weight the three score terms.
	WLatency, WFit, WLoad float64
}

func (c Config) withDefaults() Config {
	if c.LatencyAlpha <= 0 || c.LatencyAlpha > 1 {
		c.LatencyAlpha = 0.3
	}
	if c.Margin <= 0 {
		c.Margin = 0.15
	}
	if c.MinDwell <= 0 {
		c.MinDwell = 50 * time.Millisecond
	}
	if c.History <= 0 {
		c.History = 64
	}
	if c.WLatency <= 0 {
		c.WLatency = 1
	}
	if c.WFit <= 0 {
		c.WFit = 0.5
	}
	if c.WLoad <= 0 {
		c.WLoad = 0.5
	}
	return c
}

// Decision records one boundary move.
type Decision struct {
	Workload string        `json:"workload"`
	From     Location      `json:"-"`
	To       Location      `json:"-"`
	Score    float64       `json:"score"`
	Reason   string        `json:"reason"`
	At       time.Duration `json:"at"`
}

// Score is the engine's current view of one workload, exposed for
// lnicctl place and tests.
type Score struct {
	Workload    string
	Loc         Location
	NICScore    float64 // composite: >0 favors NIC, <0 favors host
	Fit         float64 // memory/instruction fit term in [0,1]; <0 means host-pinned
	LatencyGain float64 // (host-nic)/max latency advantage in [-1,1]
	NICLatency  time.Duration
	HostLatency time.Duration
}

type lambdaState struct {
	fp       mcc.ProgramFootprint
	loc      Location
	target   Location // valid while loc == LocMigrating
	nicLat   float64  // EWMA seconds
	hostLat  float64
	hasNIC   bool
	hasHost  bool
	lastMove time.Duration
	hasMoved bool
}

// Engine scores workloads and issues boundary decisions. Safe for
// concurrent use.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	lambdas    map[string]*lambdaState
	nicLoad    float64
	hostLoad   float64
	history    []Decision
	migrations uint64
	evals      uint64
	lastIssue  time.Duration
	hasIssued  bool
}

// New builds an engine.
func New(cfg Config) *Engine {
	return &Engine{cfg: cfg.withDefaults(), lambdas: make(map[string]*lambdaState)}
}

// Register adds a workload with its compiled-firmware footprint and
// initial location. Re-registering updates the footprint but keeps
// runtime state.
func (e *Engine) Register(workload string, fp mcc.ProgramFootprint, initial Location) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.lambdas[workload]; ok {
		st.fp = fp
		return
	}
	e.lambdas[workload] = &lambdaState{fp: fp, loc: initial, target: initial}
}

// ObserveLatency feeds one observed service latency for a workload on
// a backend side. Samples for LocMigrating are ignored.
func (e *Engine) ObserveLatency(workload string, loc Location, lat time.Duration) {
	if lat < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.lambdas[workload]
	if !ok {
		return
	}
	s := lat.Seconds()
	a := e.cfg.LatencyAlpha
	switch loc {
	case LocNIC:
		if !st.hasNIC {
			st.nicLat, st.hasNIC = s, true
		} else {
			st.nicLat = a*s + (1-a)*st.nicLat
		}
	case LocHost:
		if !st.hasHost {
			st.hostLat, st.hasHost = s, true
		} else {
			st.hostLat = a*s + (1-a)*st.hostLat
		}
	}
}

// ObserveLoad feeds the current normalized utilization of the NIC and
// host pools (0 idle .. 1 saturated; values above 1 are legal and
// mean overload).
func (e *Engine) ObserveLoad(nic, host float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.nicLoad, e.hostLoad = nic, host
}

// Place returns the current location of a workload (LocHost for
// unknown workloads: the safe default is the general-purpose side).
func (e *Engine) Place(workload string) Location {
	e.mu.Lock()
	defer e.mu.Unlock()
	if st, ok := e.lambdas[workload]; ok {
		return st.loc
	}
	return LocHost
}

// score computes the NIC-favorability score for one workload.
// Caller holds e.mu.
func (e *Engine) score(st *lambdaState) (nicScore, fit, latGain float64) {
	// Fit: hard reject firmware that overflows the instruction store,
	// otherwise reward low pressure and fast-memory residency.
	pressure := st.fp.InstrPressure(e.cfg.InstrStorePerCore)
	if pressure > 1 {
		return math.Inf(-1), -1, 0
	}
	fit = (1 - pressure) * (0.5 + 0.5*st.fp.FastFraction())

	// Latency: relative advantage of the NIC over the host. With only
	// one side observed there is no evidence either way; the term
	// stays neutral and fit+load decide.
	if st.hasNIC && st.hasHost {
		m := math.Max(st.nicLat, st.hostLat)
		if m > 0 {
			latGain = (st.hostLat - st.nicLat) / m
		}
	}

	nicScore = e.cfg.WLatency*latGain + e.cfg.WFit*fit - e.cfg.WLoad*(e.nicLoad-e.hostLoad)
	return nicScore, fit, latGain
}

// Decide evaluates every workload at the given time and returns the
// boundary moves to execute. Each returned workload transitions to
// LocMigrating; the caller (normally a Coordinator) must call
// Complete when the migration finishes, or Abort to roll it back.
func (e *Engine) Decide(now time.Duration) []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evals++
	if e.cfg.Cooldown > 0 && e.hasIssued && now-e.lastIssue < e.cfg.Cooldown {
		return nil
	}
	names := make([]string, 0, len(e.lambdas))
	for name := range e.lambdas {
		names = append(names, name)
	}
	sort.Strings(names)

	type candidate struct {
		d      Decision
		excess float64 // how far past the margin the score sits
	}
	var cands []candidate
	for _, name := range names {
		st := e.lambdas[name]
		if st.loc == LocMigrating {
			continue
		}
		if st.hasMoved && now-st.lastMove < e.cfg.MinDwell {
			continue
		}
		nicScore, fit, latGain := e.score(st)
		var d *Decision
		var excess float64
		switch {
		case st.loc == LocNIC && nicScore < -e.cfg.Margin:
			excess = -e.cfg.Margin - nicScore
			d = &Decision{
				Workload: name, From: LocNIC, To: LocHost, Score: nicScore,
				Reason: fmt.Sprintf("nic score %.2f below -%.2f (fit %.2f, latency gain %.2f, nic load %.2f vs host %.2f)",
					nicScore, e.cfg.Margin, fit, latGain, e.nicLoad, e.hostLoad),
			}
		case st.loc == LocHost && nicScore > e.cfg.Margin:
			excess = nicScore - e.cfg.Margin
			d = &Decision{
				Workload: name, From: LocHost, To: LocNIC, Score: nicScore,
				Reason: fmt.Sprintf("nic score %.2f above +%.2f (fit %.2f, latency gain %.2f, nic load %.2f vs host %.2f)",
					nicScore, e.cfg.Margin, fit, latGain, e.nicLoad, e.hostLoad),
			}
		}
		if d == nil {
			continue
		}
		d.At = now
		cands = append(cands, candidate{d: *d, excess: excess})
	}
	// Most out-of-band first; ties break on name (stable against map
	// ordering) so decisions replay identically across runs.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].excess > cands[j].excess })
	if e.cfg.MaxMoves > 0 && len(cands) > e.cfg.MaxMoves {
		cands = cands[:e.cfg.MaxMoves]
	}

	out := make([]Decision, 0, len(cands))
	for _, c := range cands {
		st := e.lambdas[c.d.Workload]
		st.loc = LocMigrating
		st.target = c.d.To
		st.lastMove = now
		st.hasMoved = true
		e.pushHistory(c.d)
		out = append(out, c.d)
	}
	if len(out) > 0 {
		e.lastIssue = now
		e.hasIssued = true
	}
	return out
}

// Complete finalizes an in-flight migration: the workload lands on
// its decision target.
func (e *Engine) Complete(workload string, now time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.lambdas[workload]
	if !ok || st.loc != LocMigrating {
		return
	}
	st.loc = st.target
	st.lastMove = now
	e.migrations++
}

// Abort rolls an in-flight migration back to the side opposite its
// target (the source keeps serving; dwell still applies so the
// engine does not immediately retry).
func (e *Engine) Abort(workload string, now time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.lambdas[workload]
	if !ok || st.loc != LocMigrating {
		return
	}
	if st.target == LocNIC {
		st.loc = LocHost
	} else {
		st.loc = LocNIC
	}
	st.lastMove = now
}

func (e *Engine) pushHistory(d Decision) {
	e.history = append(e.history, d)
	if over := len(e.history) - e.cfg.History; over > 0 {
		e.history = append(e.history[:0], e.history[over:]...)
	}
}

// History returns the most recent decisions, oldest first.
func (e *Engine) History() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Decision, len(e.history))
	copy(out, e.history)
	return out
}

// Scores returns the current per-workload scores, sorted by name.
func (e *Engine) Scores() []Score {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Score, 0, len(e.lambdas))
	for name, st := range e.lambdas {
		nicScore, fit, latGain := e.score(st)
		out = append(out, Score{
			Workload:    name,
			Loc:         st.loc,
			NICScore:    nicScore,
			Fit:         fit,
			LatencyGain: latGain,
			NICLatency:  time.Duration(st.nicLat * float64(time.Second)),
			HostLatency: time.Duration(st.hostLat * float64(time.Second)),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workload < out[j].Workload })
	return out
}

// Migrations returns the count of completed migrations.
func (e *Engine) Migrations() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.migrations
}

// EnableMetrics registers the engine's counters on a monitor
// registry: lnic_placement_state{workload} (0=host, 1=nic,
// 2=migrating), lnic_placement_migrations_total and
// lnic_placement_evals_total. Workloads must be registered before
// this is called; later Register calls are not reflected as new
// gauge series.
func (e *Engine) EnableMetrics(reg *monitor.Registry) error {
	e.mu.Lock()
	names := make([]string, 0, len(e.lambdas))
	for name := range e.lambdas {
		names = append(names, name)
	}
	e.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		name := name
		if err := reg.GaugeFunc("lnic_placement_state",
			"Current execution side per workload (0=host, 1=nic, 2=migrating).",
			map[string]string{"workload": name},
			func() float64 { return float64(e.Place(name)) }); err != nil {
			return err
		}
	}
	if err := reg.CounterFunc("lnic_placement_migrations_total",
		"Completed NIC/host boundary migrations.", nil,
		func() uint64 { return e.Migrations() }); err != nil {
		return err
	}
	return reg.CounterFunc("lnic_placement_evals_total",
		"Placement decision rounds evaluated.", nil,
		func() uint64 {
			e.mu.Lock()
			defer e.mu.Unlock()
			return e.evals
		})
}
