// Transparent migration: the three-step protocol that moves a lambda
// across the NIC/host boundary without dropping requests.
//
//  1. Warm — deploy/wake the lambda on the target side while the
//     source keeps serving (no route change yet).
//  2. Cutover — flip the gateway's copy-on-write route snapshot so
//     new requests land on the target. In-flight requests on the
//     source are unaffected: they complete against the snapshot they
//     were dispatched under.
//  3. Drain — wait for the source's in-flight count to reach zero,
//     then release its resources (on the NIC side this frees NPU
//     cores and warm state).
//
// The whole move is recorded as a placement.migrate span on the obs
// timeline — the generalization of the old one-off host-fallback
// mark in nicsim.
package placement

import (
	"time"

	"lambdanic/internal/obs"
)

// Fabric is the seam between the coordinator and the cluster it
// manipulates. The experiment harness implements it over simulated
// backends; daemons implement it over the gateway's SetRoute and the
// workload manager.
type Fabric interface {
	// Warm prepares the workload on the target side and calls ready
	// when it can serve (e.g. firmware loaded, container started).
	Warm(workload string, to Location, ready func())
	// Cutover atomically repoints new traffic for the workload at the
	// target side.
	Cutover(workload string, to Location)
	// Drain waits for the source side's in-flight requests for the
	// workload to complete, then calls drained.
	Drain(workload string, from Location, drained func())
}

// Coordinator executes engine decisions against a Fabric.
type Coordinator struct {
	eng   *Engine
	fab   Fabric
	clock func() time.Duration
	col   *obs.Collector
}

// NewCoordinator wires an engine to a fabric. clock supplies
// timestamps for spans and engine completion (virtual or wall).
func NewCoordinator(eng *Engine, fab Fabric, clock func() time.Duration) *Coordinator {
	if clock == nil {
		clock = func() time.Duration { return 0 }
	}
	return &Coordinator{eng: eng, fab: fab, clock: clock}
}

// SetCollector attaches an obs collector; each migration then emits a
// placement.migrate span plus warm/cutover marks on its timeline.
func (c *Coordinator) SetCollector(col *obs.Collector) { c.col = col }

// Run evaluates the engine at now and launches a migration for every
// decision. It returns the decisions started; completion is
// asynchronous (driven by the fabric's callbacks).
func (c *Coordinator) Run(now time.Duration) []Decision {
	ds := c.eng.Decide(now)
	for _, d := range ds {
		c.execute(d)
	}
	return ds
}

func (c *Coordinator) execute(d Decision) {
	start := c.clock()
	c.col.MarkEvent("placement", "warm:"+d.Workload+"->"+d.To.String(), start)
	c.fab.Warm(d.Workload, d.To, func() {
		cut := c.clock()
		c.fab.Cutover(d.Workload, d.To)
		c.col.MarkEvent("placement", "cutover:"+d.Workload+"->"+d.To.String(), cut)
		c.fab.Drain(d.Workload, d.From, func() {
			end := c.clock()
			c.eng.Complete(d.Workload, end)
			if c.col != nil {
				req := c.col.Begin(0, "placement.migrate:"+d.Workload)
				req.AddSpan(obs.StagePlacement, "placement",
					"migrate:"+d.From.String()+"->"+d.To.String(), start, end)
				req.Finish(end, nil)
			}
		})
	})
}
