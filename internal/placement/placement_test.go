package placement

import (
	"strings"
	"testing"
	"time"

	"lambdanic/internal/mcc"
	"lambdanic/internal/monitor"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/obs"
)

func lightFP() mcc.ProgramFootprint {
	return mcc.ProgramFootprint{
		Instructions: 1000,
		Memory:       map[nicsim.MemLevel]int{nicsim.MemLocal: 512},
	}
}

func heavyFP() mcc.ProgramFootprint {
	return mcc.ProgramFootprint{
		Instructions: 14000,
		Memory:       map[nicsim.MemLevel]int{nicsim.MemEMEM: 1 << 20},
	}
}

func testConfig() Config {
	return Config{
		InstrStorePerCore: 16384,
		LatencyAlpha:      1, // no smoothing: deterministic tests
		Margin:            0.15,
		MinDwell:          50 * time.Millisecond,
	}
}

func TestOversizedFirmwareIsHostPinned(t *testing.T) {
	e := New(testConfig())
	fp := lightFP()
	fp.Instructions = 20000 // over the 16K store
	e.Register("giant", fp, LocNIC)
	ds := e.Decide(0)
	if len(ds) != 1 || ds[0].To != LocHost {
		t.Fatalf("decisions = %+v, want giant -> HOST", ds)
	}
	e.Complete("giant", time.Second)
	// Once host-pinned it never comes back, whatever the latency says.
	e.ObserveLatency("giant", LocHost, 10*time.Millisecond)
	if ds := e.Decide(10 * time.Second); len(ds) != 0 {
		t.Fatalf("host-pinned firmware offered a move: %+v", ds)
	}
}

func TestLatencyGainMovesWorkloadToNIC(t *testing.T) {
	e := New(testConfig())
	e.Register("web", lightFP(), LocHost)
	e.ObserveLatency("web", LocHost, 800*time.Microsecond)
	e.ObserveLatency("web", LocNIC, 100*time.Microsecond)
	ds := e.Decide(0)
	if len(ds) != 1 || ds[0].To != LocNIC {
		t.Fatalf("decisions = %+v, want web -> NIC", ds)
	}
	if e.Place("web") != LocMigrating {
		t.Fatalf("Place = %v, want MIGRATING", e.Place("web"))
	}
	e.Complete("web", time.Second)
	if e.Place("web") != LocNIC {
		t.Fatalf("Place = %v after Complete, want NIC", e.Place("web"))
	}
	if e.Migrations() != 1 {
		t.Fatalf("Migrations = %d, want 1", e.Migrations())
	}
}

func TestLoadPressureShedsHeavyLambdaOffNIC(t *testing.T) {
	cfg := testConfig()
	cfg.WLoad = 1
	e := New(cfg)
	e.Register("sweeper", heavyFP(), LocNIC)
	// Saturated NIC, idle host: the load term dominates the small fit
	// bonus and pushes the EMEM-bound lambda off the NIC.
	e.ObserveLoad(1.0, 0.1)
	ds := e.Decide(0)
	if len(ds) != 1 || ds[0].To != LocHost {
		t.Fatalf("decisions = %+v, want sweeper -> HOST", ds)
	}
}

func TestHysteresisDeadBandHolds(t *testing.T) {
	e := New(testConfig())
	e.Register("web", lightFP(), LocNIC)
	// Mild host advantage inside the margin: no move.
	e.ObserveLatency("web", LocNIC, 105*time.Microsecond)
	e.ObserveLatency("web", LocHost, 100*time.Microsecond)
	e.ObserveLoad(0.5, 0.5)
	if ds := e.Decide(0); len(ds) != 0 {
		t.Fatalf("score inside dead band produced decisions: %+v", ds)
	}
}

func TestMinDwellSuppressesFlapping(t *testing.T) {
	e := New(testConfig())
	e.Register("web", lightFP(), LocHost)
	e.ObserveLatency("web", LocHost, 800*time.Microsecond)
	e.ObserveLatency("web", LocNIC, 100*time.Microsecond)
	if ds := e.Decide(0); len(ds) != 1 {
		t.Fatal("expected initial move to NIC")
	}
	e.Complete("web", 10*time.Millisecond)
	// Latency inverts immediately; the dwell window holds the workload.
	e.ObserveLatency("web", LocNIC, 8*time.Millisecond)
	if ds := e.Decide(20 * time.Millisecond); len(ds) != 0 {
		t.Fatalf("moved inside MinDwell: %+v", ds)
	}
	if ds := e.Decide(100 * time.Millisecond); len(ds) != 1 || ds[0].To != LocHost {
		t.Fatalf("post-dwell decisions = %+v, want web -> HOST", ds)
	}
}

func TestMaxMovesPicksMostOutOfBand(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMoves = 1
	e := New(cfg)
	// Both want the NIC, but "fast" has the bigger latency gap; the
	// capped round must move it first and leave "slow" for later.
	e.Register("slow", lightFP(), LocHost)
	e.ObserveLatency("slow", LocHost, 300*time.Microsecond)
	e.ObserveLatency("slow", LocNIC, 100*time.Microsecond)
	e.Register("fast", lightFP(), LocHost)
	e.ObserveLatency("fast", LocHost, 5*time.Millisecond)
	e.ObserveLatency("fast", LocNIC, 100*time.Microsecond)

	ds := e.Decide(0)
	if len(ds) != 1 || ds[0].Workload != "fast" {
		t.Fatalf("decisions = %+v, want single move of fast", ds)
	}
	e.Complete("fast", time.Millisecond)
	// The runner-up moves on the next round.
	ds = e.Decide(2 * time.Millisecond)
	if len(ds) != 1 || ds[0].Workload != "slow" {
		t.Fatalf("second round = %+v, want slow -> NIC", ds)
	}
}

func TestCooldownBlocksBackToBackRounds(t *testing.T) {
	cfg := testConfig()
	cfg.MaxMoves = 1
	cfg.Cooldown = 10 * time.Millisecond
	e := New(cfg)
	e.Register("a", lightFP(), LocHost)
	e.ObserveLatency("a", LocHost, 5*time.Millisecond)
	e.ObserveLatency("a", LocNIC, 100*time.Microsecond)
	e.Register("b", lightFP(), LocHost)
	e.ObserveLatency("b", LocHost, 5*time.Millisecond)
	e.ObserveLatency("b", LocNIC, 100*time.Microsecond)

	if ds := e.Decide(0); len(ds) != 1 {
		t.Fatalf("first round = %+v, want one move", ds)
	}
	e.Complete("a", time.Millisecond)
	// Inside the cooldown the engine stays quiet even though b is
	// eligible and past the margin.
	if ds := e.Decide(5 * time.Millisecond); len(ds) != 0 {
		t.Fatalf("moved during cooldown: %+v", ds)
	}
	if ds := e.Decide(12 * time.Millisecond); len(ds) != 1 || ds[0].Workload != "b" {
		t.Fatalf("post-cooldown round = %+v, want b -> NIC", ds)
	}
}

func TestAbortRollsBack(t *testing.T) {
	e := New(testConfig())
	e.Register("web", lightFP(), LocHost)
	e.ObserveLatency("web", LocHost, 800*time.Microsecond)
	e.ObserveLatency("web", LocNIC, 100*time.Microsecond)
	if ds := e.Decide(0); len(ds) != 1 {
		t.Fatal("expected a move")
	}
	e.Abort("web", 10*time.Millisecond)
	if e.Place("web") != LocHost {
		t.Fatalf("Place = %v after Abort, want HOST", e.Place("web"))
	}
	if e.Migrations() != 0 {
		t.Fatalf("Migrations = %d after abort, want 0", e.Migrations())
	}
}

func TestHistoryRingBounded(t *testing.T) {
	cfg := testConfig()
	cfg.History = 4
	cfg.MinDwell = time.Millisecond
	e := New(cfg)
	e.Register("web", lightFP(), LocHost)
	now := time.Duration(0)
	// Flip latency evidence back and forth to force repeated moves.
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			e.ObserveLatency("web", LocHost, 800*time.Microsecond)
			e.ObserveLatency("web", LocNIC, 100*time.Microsecond)
		} else {
			e.ObserveLatency("web", LocHost, 100*time.Microsecond)
			e.ObserveLatency("web", LocNIC, 800*time.Microsecond)
		}
		now += 10 * time.Millisecond
		for _, d := range e.Decide(now) {
			e.Complete(d.Workload, now)
		}
	}
	h := e.History()
	if len(h) != 4 {
		t.Fatalf("history length = %d, want 4 (bounded)", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].At < h[i-1].At {
			t.Fatalf("history out of order: %+v", h)
		}
	}
}

func TestScoresExposeState(t *testing.T) {
	e := New(testConfig())
	e.Register("b", heavyFP(), LocHost)
	e.Register("a", lightFP(), LocNIC)
	e.ObserveLatency("a", LocNIC, 100*time.Microsecond)
	sc := e.Scores()
	if len(sc) != 2 || sc[0].Workload != "a" || sc[1].Workload != "b" {
		t.Fatalf("Scores = %+v, want sorted [a b]", sc)
	}
	if sc[0].Loc != LocNIC || sc[0].NICLatency != 100*time.Microsecond {
		t.Fatalf("score a = %+v", sc[0])
	}
	if sc[0].Fit <= sc[1].Fit {
		t.Fatalf("LMEM-resident fit %.2f should beat EMEM-resident fit %.2f",
			sc[0].Fit, sc[1].Fit)
	}
}

func TestMetricsRender(t *testing.T) {
	e := New(testConfig())
	e.Register("web", lightFP(), LocNIC)
	reg := monitor.NewRegistry()
	if err := e.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	out := reg.Render()
	for _, want := range []string{
		`lnic_placement_state{workload="web"} 1`,
		"lnic_placement_migrations_total 0",
		"lnic_placement_evals_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// fakeFabric records the migration protocol's call order and lets the
// test control when warm/drain complete.
type fakeFabric struct {
	calls   []string
	readyFn func()
	drainFn func()
}

func (f *fakeFabric) Warm(w string, to Location, ready func()) {
	f.calls = append(f.calls, "warm:"+w+"->"+to.String())
	f.readyFn = ready
}
func (f *fakeFabric) Cutover(w string, to Location) {
	f.calls = append(f.calls, "cutover:"+w+"->"+to.String())
}
func (f *fakeFabric) Drain(w string, from Location, drained func()) {
	f.calls = append(f.calls, "drain:"+w+"<-"+from.String())
	f.drainFn = drained
}

func TestCoordinatorRunsThreeStepProtocol(t *testing.T) {
	e := New(testConfig())
	e.Register("web", lightFP(), LocHost)
	e.ObserveLatency("web", LocHost, 800*time.Microsecond)
	e.ObserveLatency("web", LocNIC, 100*time.Microsecond)

	var now time.Duration
	fab := &fakeFabric{}
	col := obs.NewCollector(func() time.Duration { return now })
	c := NewCoordinator(e, fab, func() time.Duration { return now })
	c.SetCollector(col)

	if ds := c.Run(0); len(ds) != 1 {
		t.Fatal("coordinator started no migration")
	}
	if e.Place("web") != LocMigrating {
		t.Fatalf("Place = %v during warm, want MIGRATING", e.Place("web"))
	}
	now = 2 * time.Millisecond
	fab.readyFn() // warm completes -> cutover fires, drain starts
	if e.Place("web") != LocMigrating {
		t.Fatalf("Place = %v during drain, want MIGRATING", e.Place("web"))
	}
	now = 5 * time.Millisecond
	fab.drainFn() // drain completes -> engine finalizes

	want := []string{"warm:web->NIC", "cutover:web->NIC", "drain:web<-HOST"}
	if len(fab.calls) != len(want) {
		t.Fatalf("fabric calls = %v, want %v", fab.calls, want)
	}
	for i := range want {
		if fab.calls[i] != want[i] {
			t.Fatalf("fabric calls = %v, want %v", fab.calls, want)
		}
	}
	if e.Place("web") != LocNIC {
		t.Fatalf("Place = %v after drain, want NIC", e.Place("web"))
	}

	// The move is visible on the obs timeline as a placement.migrate
	// span covering warm through drain.
	var found bool
	for _, r := range col.Requests() {
		for _, sp := range r.Spans {
			if sp.Stage == obs.StagePlacement && sp.Detail == "migrate:HOST->NIC" {
				found = true
				if sp.Start != 0 || sp.End != 5*time.Millisecond {
					t.Fatalf("span [%v,%v], want [0,5ms]", sp.Start, sp.End)
				}
			}
		}
	}
	if !found {
		t.Fatal("placement.migrate span missing from obs timeline")
	}
}
