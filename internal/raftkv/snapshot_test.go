package raftkv

import (
	"fmt"
	"testing"
)

func TestCompactTruncatesLog(t *testing.T) {
	c := NewCluster(3, 3)
	if _, err := c.ElectLeader(300); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), "v", 300); err != nil {
			t.Fatal(err)
		}
	}
	leader := c.Leader()
	n := c.Node(leader)
	before := n.LogLen()
	if err := n.CompactTo(n.lastApplied, c.KV(leader).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if n.LogLen() >= before {
		t.Errorf("log not truncated: %d -> %d", before, n.LogLen())
	}
	if n.SnapshotIndex() == 0 {
		t.Error("snapshot index not set")
	}
	// The cluster keeps committing after compaction.
	if err := c.Put("post-compact", "yes", 300); err != nil {
		t.Fatalf("Put after compaction: %v", err)
	}
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	for id := NodeID(1); id <= 3; id++ {
		if v, ok := c.Get(id, "post-compact"); !ok || v != "yes" {
			t.Errorf("node %d missing post-compaction write", id)
		}
	}
}

func TestCompactRejectsUnappliedIndex(t *testing.T) {
	c := NewCluster(1, 1)
	if _, err := c.ElectLeader(100); err != nil {
		t.Fatal(err)
	}
	n := c.Node(1)
	if err := n.CompactTo(99, nil); err == nil {
		t.Error("compaction beyond applied accepted")
	}
	// Compacting to an already-compacted index is a no-op.
	if err := c.Put("a", "b", 100); err != nil {
		t.Fatal(err)
	}
	if err := n.CompactTo(n.lastApplied, c.KV(1).Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := n.CompactTo(n.SnapshotIndex(), nil); err != nil {
		t.Errorf("idempotent compaction failed: %v", err)
	}
}

func TestSnapshotInstallOnLaggingFollower(t *testing.T) {
	// A follower that misses many entries past the leader's compaction
	// point must catch up via snapshot installation, not log replay.
	c := NewCluster(3, 4) // seed 4: node 1 is a follower
	if _, err := c.ElectLeader(300); err != nil {
		t.Fatal(err)
	}
	if c.Leader() == 1 {
		t.Skip("node 1 leads under this seed")
	}
	c.Down(1)
	for i := 0; i < 30; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i), 300); err != nil {
			t.Fatal(err)
		}
	}
	// Compact the live nodes so the prefix node 1 needs is gone.
	c.CompactAll()
	leader := c.Leader()
	if c.Node(leader).SnapshotIndex() == 0 {
		t.Fatal("leader did not compact")
	}
	// Node 1 rejoins; it must receive a snapshot.
	c.Up(1)
	for i := 0; i < 200; i++ {
		c.Tick()
	}
	if got := c.Node(1).SnapshotIndex(); got == 0 {
		t.Error("follower never installed a snapshot")
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%d", i)
		if v, ok := c.Get(1, key); !ok || v != fmt.Sprintf("v%d", i) {
			t.Errorf("follower missing %s after snapshot (got %q, %v)", key, v, ok)
		}
	}
	// And it continues replicating normally afterwards.
	if err := c.Put("after-snap", "ok", 300); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if v, ok := c.Get(1, "after-snap"); !ok || v != "ok" {
		t.Error("follower not replicating after snapshot install")
	}
}

func TestAutoCompactionBoundsLogGrowth(t *testing.T) {
	c := NewCluster(3, 9)
	if _, err := c.ElectLeader(300); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < snapshotThreshold+100; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i%50), "v", 300); err != nil {
			t.Fatal(err)
		}
	}
	for id := NodeID(1); id <= 3; id++ {
		if got := c.Node(id).LogLen(); got > snapshotThreshold+50 {
			t.Errorf("node %d log grew to %d entries despite auto-compaction", id, got)
		}
	}
	// State machines remain correct.
	for i := 0; i < 50; i++ {
		if v, ok := c.Get(c.Leader(), fmt.Sprintf("k%d", i)); !ok || v != "v" {
			t.Errorf("key k%d lost after compaction", i)
		}
	}
}
