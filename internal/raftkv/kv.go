package raftkv

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Command is one state-machine operation carried in a log entry.
type Command struct {
	// Op is "put" or "delete".
	Op    string `json:"op"`
	Key   string `json:"key"`
	Value string `json:"value,omitempty"`
}

// Command operations.
const (
	OpPut    = "put"
	OpDelete = "delete"
)

// EncodeCommand serializes a command for proposal.
func EncodeCommand(c Command) ([]byte, error) {
	if c.Op != OpPut && c.Op != OpDelete {
		return nil, fmt.Errorf("raftkv: invalid op %q", c.Op)
	}
	return json.Marshal(c)
}

// DecodeCommand parses a log entry's payload.
func DecodeCommand(data []byte) (Command, error) {
	var c Command
	if err := json.Unmarshal(data, &c); err != nil {
		return Command{}, fmt.Errorf("raftkv: decode command: %w", err)
	}
	return c, nil
}

// KV is the replicated key-value state machine one node applies
// committed entries to.
type KV struct {
	data map[string]string
}

// NewKV returns an empty state machine.
func NewKV() *KV { return &KV{data: make(map[string]string)} }

// Apply executes one committed entry.
func (kv *KV) Apply(e Entry) error {
	if len(e.Data) == 0 {
		return nil // no-op entry
	}
	c, err := DecodeCommand(e.Data)
	if err != nil {
		return err
	}
	switch c.Op {
	case OpPut:
		kv.data[c.Key] = c.Value
	case OpDelete:
		delete(kv.data, c.Key)
	}
	return nil
}

// Get reads a key.
func (kv *KV) Get(key string) (string, bool) {
	v, ok := kv.data[key]
	return v, ok
}

// Len returns the number of keys.
func (kv *KV) Len() int { return len(kv.data) }

// Snapshot copies the state (for tests and observers).
func (kv *KV) Snapshot() map[string]string {
	out := make(map[string]string, len(kv.data))
	for k, v := range kv.data {
		out[k] = v
	}
	return out
}

// Cluster is a single-threaded harness running N Raft nodes with
// in-memory message delivery, used by the λ-NIC control plane to keep
// deployment state consistent and by tests to inject partitions and
// message loss. All methods must be called from one goroutine.
type Cluster struct {
	// order fixes iteration order so runs are deterministic.
	order  []NodeID
	nodes  map[NodeID]*Node
	kvs    map[NodeID]*KV
	downed map[NodeID]bool
	// cut marks severed links, keyed by [from][to].
	cut map[NodeID]map[NodeID]bool

	// inflight messages awaiting delivery.
	queue []Message

	// watchers are notified as committed commands apply (the etcd-style
	// watch the gateway uses to track placement changes).
	watchers []watcher

	// lastLeader and leaderChanges track control-plane churn: every
	// transition to a different leader after the first election counts.
	// leaderChanges is atomic so monitoring can scrape it from another
	// goroutine while the (single-threaded) cluster runs.
	lastLeader    NodeID
	leaderChanges atomic.Uint64
}

type watcher struct {
	node   NodeID
	prefix string
	fn     func(Command)
}

// Cluster errors.
var (
	ErrNoLeader = errors.New("raftkv: no leader elected")
	ErrTimedOut = errors.New("raftkv: commit did not complete")
)

// NewCluster builds an n-node cluster (IDs 1..n).
func NewCluster(n int, seed int64) *Cluster {
	peers := make([]NodeID, n)
	for i := range peers {
		peers[i] = NodeID(i + 1)
	}
	c := &Cluster{
		order:  peers,
		nodes:  make(map[NodeID]*Node, n),
		kvs:    make(map[NodeID]*KV, n),
		downed: make(map[NodeID]bool),
		cut:    make(map[NodeID]map[NodeID]bool),
	}
	for _, id := range peers {
		c.nodes[id] = NewNode(id, peers, seed+int64(id))
		c.kvs[id] = NewKV()
	}
	return c
}

// Node returns a member (tests only).
func (c *Cluster) Node(id NodeID) *Node { return c.nodes[id] }

// KV returns a member's applied state machine.
func (c *Cluster) KV(id NodeID) *KV { return c.kvs[id] }

// Down takes a node offline (it neither ticks nor receives messages).
func (c *Cluster) Down(id NodeID) { c.downed[id] = true }

// Up brings a node back online.
func (c *Cluster) Up(id NodeID) { delete(c.downed, id) }

// Partition severs all links between group A and group B (both ways).
func (c *Cluster) Partition(a, b []NodeID) {
	for _, x := range a {
		for _, y := range b {
			c.cutLink(x, y)
			c.cutLink(y, x)
		}
	}
}

func (c *Cluster) cutLink(from, to NodeID) {
	if c.cut[from] == nil {
		c.cut[from] = make(map[NodeID]bool)
	}
	c.cut[from][to] = true
}

// Heal removes all partitions.
func (c *Cluster) Heal() { c.cut = make(map[NodeID]map[NodeID]bool) }

// Tick advances every live node one logical tick and delivers all
// resulting messages to quiescence.
func (c *Cluster) Tick() {
	for _, id := range c.order {
		if c.downed[id] {
			continue
		}
		c.nodes[id].Tick()
	}
	c.pump()
}

// pump collects outboxes and delivers messages until none remain.
func (c *Cluster) pump() {
	for {
		for _, id := range c.order {
			n := c.nodes[id]
			if c.downed[id] {
				n.Outbox() // drop a dead node's output
				continue
			}
			c.queue = append(c.queue, n.Outbox()...)
			c.applyEntries(id)
		}
		if len(c.queue) == 0 {
			c.autoCompact()
			c.noteLeader()
			return
		}
		batch := c.queue
		c.queue = nil
		for _, m := range batch {
			if c.downed[m.To] || c.downed[m.From] {
				continue
			}
			if c.cut[m.From][m.To] {
				continue
			}
			dst, ok := c.nodes[m.To]
			if !ok {
				continue
			}
			dst.Step(m)
		}
	}
}

// autoCompact snapshots any node whose log outgrew the threshold —
// etcd's periodic snapshotting, keeping long-running control stores
// bounded.
func (c *Cluster) autoCompact() {
	for _, id := range c.order {
		if c.downed[id] {
			continue
		}
		n := c.nodes[id]
		if n.LogLen() > snapshotThreshold && n.lastApplied > n.snapIndex {
			_ = n.CompactTo(n.lastApplied, c.kvs[id].Snapshot())
		}
	}
}

func (c *Cluster) applyEntries(id NodeID) {
	if snap := c.nodes[id].TakeInstalledSnapshot(); snap != nil {
		c.kvs[id].Load(snap.State)
	}
	for _, e := range c.nodes[id].Applied() {
		// Apply errors indicate corrupt proposals; the state machine
		// skips them (they were validated at proposal time).
		_ = c.kvs[id].Apply(e)
		c.notify(id, e)
	}
}

func (c *Cluster) notify(id NodeID, e Entry) {
	if len(c.watchers) == 0 || len(e.Data) == 0 {
		return
	}
	cmd, err := DecodeCommand(e.Data)
	if err != nil {
		return
	}
	for _, w := range c.watchers {
		if w.node == id && strings.HasPrefix(cmd.Key, w.prefix) {
			w.fn(cmd)
		}
	}
}

// Subscribe registers a watch on one node's applied commands under a
// key prefix — the etcd watch mechanism the control plane uses to push
// placement changes to the gateway. The callback runs synchronously
// inside the cluster's apply path and must not call back into the
// cluster.
func (c *Cluster) Subscribe(node NodeID, prefix string, fn func(Command)) {
	c.watchers = append(c.watchers, watcher{node: node, prefix: prefix, fn: fn})
}

// noteLeader records leadership transitions once the message queue
// quiesces.
func (c *Cluster) noteLeader() {
	l := c.Leader()
	if l == 0 || l == c.lastLeader {
		return
	}
	if c.lastLeader != 0 {
		c.leaderChanges.Add(1)
	}
	c.lastLeader = l
}

// LeaderChanges counts transitions to a different leader after the
// first election — the control-plane churn signal chaos runs correlate
// with data-plane recovery. Safe to read from any goroutine.
func (c *Cluster) LeaderChanges() uint64 { return c.leaderChanges.Load() }

// Leader returns the current leader if exactly one live node believes
// it leads at the highest term, else 0.
func (c *Cluster) Leader() NodeID {
	var best NodeID
	var bestTerm uint64
	for _, id := range c.order {
		n := c.nodes[id]
		if c.downed[id] || n.State() != Leader {
			continue
		}
		if n.Term() > bestTerm {
			best, bestTerm = id, n.Term()
		}
	}
	return best
}

// ElectLeader ticks until a leader emerges, up to maxTicks.
func (c *Cluster) ElectLeader(maxTicks int) (NodeID, error) {
	for i := 0; i < maxTicks; i++ {
		if l := c.Leader(); l != 0 {
			return l, nil
		}
		c.Tick()
	}
	if l := c.Leader(); l != 0 {
		return l, nil
	}
	return 0, ErrNoLeader
}

// Put proposes key=value on the leader and ticks until the entry
// commits and applies on the leader, up to maxTicks.
func (c *Cluster) Put(key, value string, maxTicks int) error {
	return c.propose(Command{Op: OpPut, Key: key, Value: value}, maxTicks)
}

// Delete proposes a key removal.
func (c *Cluster) Delete(key string, maxTicks int) error {
	return c.propose(Command{Op: OpDelete, Key: key}, maxTicks)
}

func (c *Cluster) propose(cmd Command, maxTicks int) error {
	leaderID, err := c.ElectLeader(maxTicks)
	if err != nil {
		return err
	}
	data, err := EncodeCommand(cmd)
	if err != nil {
		return err
	}
	leader := c.nodes[leaderID]
	index, err := leader.Propose(data)
	if err != nil {
		return err
	}
	c.pump()
	for i := 0; i < maxTicks; i++ {
		if leader.CommitIndex() >= index && leader.State() == Leader {
			c.pump()
			return nil
		}
		if leader.State() != Leader {
			// Leadership changed mid-proposal; the weakly-consistent
			// control plane retries.
			return c.propose(cmd, maxTicks)
		}
		c.Tick()
	}
	return fmt.Errorf("%w: index %d", ErrTimedOut, index)
}

// Get reads a key from a node's applied state (a follower read may
// lag the leader; use the leader for read-your-writes).
func (c *Cluster) Get(id NodeID, key string) (string, bool) {
	return c.kvs[id].Get(key)
}
