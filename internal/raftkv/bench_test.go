package raftkv

import (
	"fmt"
	"testing"
)

func BenchmarkCommitThroughput3Nodes(b *testing.B) {
	c := NewCluster(3, 1)
	if _, err := c.ElectLeader(300); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i%100), "v", 300); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommitThroughput5Nodes(b *testing.B) {
	c := NewCluster(5, 1)
	if _, err := c.ElectLeader(300); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Put(fmt.Sprintf("k%d", i%100), "v", 300); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLeaderElection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCluster(3, int64(i))
		if _, err := c.ElectLeader(500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCommandEncodeDecode(b *testing.B) {
	cmd := Command{Op: OpPut, Key: "placement/web_server", Value: `{"workers":["m2","m3"]}`}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := EncodeCommand(cmd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeCommand(data); err != nil {
			b.Fatal(err)
		}
	}
}
