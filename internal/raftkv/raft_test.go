package raftkv

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func electLeader(t *testing.T, c *Cluster) NodeID {
	t.Helper()
	l, err := c.ElectLeader(200)
	if err != nil {
		t.Fatalf("ElectLeader: %v", err)
	}
	return l
}

func TestSingleNodeBecomesLeaderAndCommits(t *testing.T) {
	c := NewCluster(1, 1)
	l := electLeader(t, c)
	if l != 1 {
		t.Fatalf("leader = %d", l)
	}
	if err := c.Put("k", "v", 100); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(1, "k"); !ok || v != "v" {
		t.Errorf("Get = %q/%v", v, ok)
	}
}

func TestThreeNodeElection(t *testing.T) {
	c := NewCluster(3, 42)
	l := electLeader(t, c)
	// Exactly one leader; the others are followers at the same term.
	leaders := 0
	for id := NodeID(1); id <= 3; id++ {
		if c.Node(id).State() == Leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want 1", leaders)
	}
	for id := NodeID(1); id <= 3; id++ {
		if id == l {
			continue
		}
		// A few more ticks propagate leadership.
		c.Tick()
		if got := c.Node(id).Leader(); got != l {
			t.Errorf("node %d sees leader %d, want %d", id, got, l)
		}
	}
}

func TestReplicationToAllNodes(t *testing.T) {
	c := NewCluster(3, 7)
	electLeader(t, c)
	for i := 0; i < 10; i++ {
		if err := c.Put(fmt.Sprintf("key%d", i), fmt.Sprintf("val%d", i), 200); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// A few extra ticks let followers apply the final commit index.
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	for id := NodeID(1); id <= 3; id++ {
		for i := 0; i < 10; i++ {
			v, ok := c.Get(id, fmt.Sprintf("key%d", i))
			if !ok || v != fmt.Sprintf("val%d", i) {
				t.Errorf("node %d key%d = %q/%v", id, i, v, ok)
			}
		}
	}
}

func TestDeleteReplicates(t *testing.T) {
	c := NewCluster(3, 9)
	electLeader(t, c)
	if err := c.Put("k", "v", 200); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("k", 200); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		c.Tick()
	}
	for id := NodeID(1); id <= 3; id++ {
		if _, ok := c.Get(id, "k"); ok {
			t.Errorf("node %d still has deleted key", id)
		}
	}
}

func TestProposeOnFollowerFails(t *testing.T) {
	c := NewCluster(3, 11)
	l := electLeader(t, c)
	var follower NodeID
	for id := NodeID(1); id <= 3; id++ {
		if id != l {
			follower = id
			break
		}
	}
	_, err := c.Node(follower).Propose([]byte("x"))
	if !errors.Is(err, ErrNotLeader) {
		t.Errorf("err = %v, want ErrNotLeader", err)
	}
}

func TestLeaderFailover(t *testing.T) {
	c := NewCluster(3, 13)
	l1 := electLeader(t, c)
	if err := c.Put("before", "1", 200); err != nil {
		t.Fatal(err)
	}
	c.Down(l1)
	// Remaining two nodes elect a new leader.
	var l2 NodeID
	for i := 0; i < 400 && l2 == 0; i++ {
		c.Tick()
		l2 = c.Leader()
	}
	if l2 == 0 || l2 == l1 {
		t.Fatalf("no new leader after failover (l1=%d l2=%d)", l1, l2)
	}
	if err := c.Put("after", "2", 200); err != nil {
		t.Fatalf("Put after failover: %v", err)
	}
	// The old leader rejoins and catches up.
	c.Up(l1)
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	for _, key := range []string{"before", "after"} {
		if v, ok := c.Get(l1, key); !ok || v == "" {
			t.Errorf("rejoined node missing %q", key)
		}
	}
	// Terms are monotonic: the new leader's term exceeds the old one's
	// election term.
	if c.Node(l2).Term() <= 1 {
		t.Errorf("term did not advance: %d", c.Node(l2).Term())
	}
}

func TestMinorityPartitionCannotCommit(t *testing.T) {
	c := NewCluster(5, 17)
	l := electLeader(t, c)
	// Partition the leader plus one node away from the other three.
	var minority, majority []NodeID
	minority = append(minority, l)
	for id := NodeID(1); id <= 5; id++ {
		if id == l {
			continue
		}
		if len(minority) < 2 {
			minority = append(minority, id)
		} else {
			majority = append(majority, id)
		}
	}
	c.Partition(minority, majority)

	// The majority elects a fresh leader and commits.
	var newLeader NodeID
	for i := 0; i < 400; i++ {
		c.Tick()
		for _, id := range majority {
			if c.Node(id).State() == Leader {
				newLeader = id
			}
		}
		if newLeader != 0 {
			break
		}
	}
	if newLeader == 0 {
		t.Fatal("majority did not elect a leader")
	}
	data, err := EncodeCommand(Command{Op: OpPut, Key: "maj", Value: "yes"})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := c.Node(newLeader).Propose(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if c.Node(newLeader).CommitIndex() < idx {
		t.Error("majority could not commit")
	}

	// The minority leader must not have committed anything new.
	dataMin, err := EncodeCommand(Command{Op: OpPut, Key: "min", Value: "no"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Node(l).Propose(dataMin); err == nil {
		before := c.Node(l).CommitIndex()
		for i := 0; i < 100; i++ {
			c.Tick()
		}
		if c.Node(l).CommitIndex() > before {
			t.Error("minority committed without quorum")
		}
	}

	// Healing reconciles everyone onto the majority's history.
	c.Heal()
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	for id := NodeID(1); id <= 5; id++ {
		if v, ok := c.Get(id, "maj"); !ok || v != "yes" {
			t.Errorf("node %d missing majority write after heal", id)
		}
		if _, ok := c.Get(id, "min"); ok {
			t.Errorf("node %d has uncommitted minority write", id)
		}
	}
}

func TestLogMatchingProperty(t *testing.T) {
	// Property: after arbitrary small workloads, all nodes' applied
	// prefixes agree (State Machine Safety).
	f := func(ops []uint8) bool {
		c := NewCluster(3, 23)
		if _, err := c.ElectLeader(300); err != nil {
			return false
		}
		for i, op := range ops {
			if i >= 8 {
				break
			}
			key := fmt.Sprintf("k%d", op%4)
			if op%3 == 0 {
				if err := c.Delete(key, 300); err != nil {
					return false
				}
			} else {
				if err := c.Put(key, fmt.Sprintf("v%d", i), 300); err != nil {
					return false
				}
			}
		}
		for i := 0; i < 20; i++ {
			c.Tick()
		}
		snap := c.KV(1).Snapshot()
		for id := NodeID(2); id <= 3; id++ {
			other := c.KV(id).Snapshot()
			if len(other) != len(snap) {
				return false
			}
			for k, v := range snap {
				if other[k] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCommandEncoding(t *testing.T) {
	c := Command{Op: OpPut, Key: "a", Value: "b"}
	data, err := EncodeCommand(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCommand(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := EncodeCommand(Command{Op: "bogus"}); err == nil {
		t.Error("EncodeCommand accepted bogus op")
	}
	if _, err := DecodeCommand([]byte("{not json")); err == nil {
		t.Error("DecodeCommand accepted garbage")
	}
}

func TestStateString(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Error("State.String wrong")
	}
	if State(9).String() != "State(9)" {
		t.Error("unknown State.String wrong")
	}
}

func TestDeterministicElections(t *testing.T) {
	run := func() (NodeID, uint64) {
		c := NewCluster(3, 99)
		l, err := c.ElectLeader(300)
		if err != nil {
			t.Fatal(err)
		}
		return l, c.Node(l).Term()
	}
	l1, t1 := run()
	l2, t2 := run()
	if l1 != l2 || t1 != t2 {
		t.Errorf("elections not deterministic: (%d,%d) vs (%d,%d)", l1, t1, l2, t2)
	}
}

func TestLeaderChangesCounter(t *testing.T) {
	c := NewCluster(3, 17)
	l1 := electLeader(t, c)
	// The first election is bootstrap, not churn.
	if got := c.LeaderChanges(); got != 0 {
		t.Fatalf("LeaderChanges after first election = %d, want 0", got)
	}
	c.Down(l1)
	var l2 NodeID
	for i := 0; i < 400 && l2 == 0; i++ {
		c.Tick()
		l2 = c.Leader()
	}
	if l2 == 0 || l2 == l1 {
		t.Fatalf("no new leader after failover (l1=%d l2=%d)", l1, l2)
	}
	if got := c.LeaderChanges(); got != 1 {
		t.Errorf("LeaderChanges after failover = %d, want 1", got)
	}
	// Steady-state ticks under the same leader add no churn.
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if got := c.LeaderChanges(); got != 1 {
		t.Errorf("LeaderChanges in steady state = %d, want 1", got)
	}
}
