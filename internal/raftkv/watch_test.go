package raftkv

import (
	"testing"
)

func TestSubscribeReceivesMatchingPuts(t *testing.T) {
	c := NewCluster(3, 5)
	var got []Command
	c.Subscribe(1, "placement/", func(cmd Command) { got = append(got, cmd) })
	if _, err := c.ElectLeader(300); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("placement/web", "a", 300); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("other/key", "b", 300); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("placement/kv", "c", 300); err != nil {
		t.Fatal(err)
	}
	// Let node 1 apply everything.
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if len(got) != 2 {
		t.Fatalf("watch fired %d times, want 2: %+v", len(got), got)
	}
	if got[0].Key != "placement/web" || got[1].Key != "placement/kv" {
		t.Errorf("watch order wrong: %+v", got)
	}
}

func TestSubscribeSeesDeletes(t *testing.T) {
	c := NewCluster(3, 6)
	deletes := 0
	c.Subscribe(1, "placement/", func(cmd Command) {
		if cmd.Op == OpDelete {
			deletes++
		}
	})
	if err := c.Put("placement/web", "a", 300); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("placement/web", 300); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		c.Tick()
	}
	if deletes != 1 {
		t.Errorf("deletes observed = %d, want 1", deletes)
	}
}

func TestSubscribeFiresOnceEvenWithRetransmits(t *testing.T) {
	// Raft may resend AppendEntries; the watch must fire once per
	// committed entry on the subscribed node regardless.
	c := NewCluster(3, 7)
	count := 0
	c.Subscribe(1, "k", func(Command) { count++ })
	if err := c.Put("k1", "v", 300); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Tick()
	}
	if count != 1 {
		t.Errorf("watch fired %d times, want 1", count)
	}
}

func TestSubscribeCatchesUpAfterNodeRestart(t *testing.T) {
	// If the watched node is down during commits, its watch fires when
	// it comes back and applies the log.
	c := NewCluster(3, 4)
	var got []string
	c.Subscribe(1, "p/", func(cmd Command) { got = append(got, cmd.Key) })
	if _, err := c.ElectLeader(300); err != nil {
		t.Fatal(err)
	}
	// Ensure node 1 is not the leader so proposals continue without it.
	if c.Leader() == 1 {
		t.Skip("node 1 elected leader under this seed; scenario needs a follower")
	}
	c.Down(1)
	if err := c.Put("p/during-downtime", "x", 300); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("watch fired while node down: %v", got)
	}
	c.Up(1)
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if len(got) != 1 || got[0] != "p/during-downtime" {
		t.Errorf("catch-up watch = %v", got)
	}
}
