package raftkv

import (
	"encoding/json"
	"fmt"
)

// Log compaction and snapshot installation, the etcd features that keep
// a long-running control store's log bounded: a node snapshots its
// applied state and truncates the log prefix; a leader whose follower
// has fallen behind the compacted prefix ships the snapshot instead of
// log entries (Raft §7).

// Snapshot captures applied state up to an index.
type Snapshot struct {
	Index uint64            `json:"index"`
	Term  uint64            `json:"term"`
	State map[string]string `json:"state"`
}

// MsgInstallSnapshot carries a snapshot to a lagging follower.
const MsgInstallSnapshot MsgType = 99

// snapshotThreshold is how many applied entries a node keeps before the
// cluster harness compacts automatically.
const snapshotThreshold = 256

// CompactTo snapshots the given applied state machine contents at
// index (which must be ≤ lastApplied) and truncates the log prefix.
func (n *Node) CompactTo(index uint64, state map[string]string) error {
	if index > n.lastApplied {
		return fmt.Errorf("raftkv: compact index %d beyond applied %d", index, n.lastApplied)
	}
	if index <= n.snapIndex {
		return nil // already compacted past here
	}
	offset := n.logOffset()
	if index < offset {
		return nil
	}
	term := n.entryAt(index).Term
	// Keep a sentinel carrying the snapshot's index/term, then the
	// suffix.
	suffix := n.log[index-offset+1:]
	newLog := make([]Entry, 0, len(suffix)+1)
	newLog = append(newLog, Entry{Term: term, Index: index})
	newLog = append(newLog, suffix...)
	n.log = newLog
	n.snapIndex = index
	n.snapTerm = term
	n.snapshot = cloneState(state)
	return nil
}

// SnapshotIndex returns the compaction point (0 when never compacted).
func (n *Node) SnapshotIndex() uint64 { return n.snapIndex }

func cloneState(state map[string]string) map[string]string {
	out := make(map[string]string, len(state))
	for k, v := range state {
		out[k] = v
	}
	return out
}

// logOffset is the index of the sentinel entry log[0].
func (n *Node) logOffset() uint64 { return n.log[0].Index }

// entryAt fetches a log entry by absolute index; callers must ensure it
// is within [logOffset, lastLogIndex].
func (n *Node) entryAt(index uint64) Entry { return n.log[index-n.logOffset()] }

// sendSnapshot ships the compacted state to a lagging follower.
func (n *Node) sendSnapshot(to NodeID) {
	data, err := json.Marshal(Snapshot{Index: n.snapIndex, Term: n.snapTerm, State: n.snapshot})
	if err != nil {
		return
	}
	n.send(Message{
		Type:     MsgInstallSnapshot,
		To:       to,
		LogIndex: n.snapIndex,
		LogTerm:  n.snapTerm,
		Entries:  []Entry{{Term: n.snapTerm, Index: n.snapIndex, Data: data}},
	})
}

// stepInstallSnapshot applies an incoming snapshot on a follower.
func (n *Node) stepInstallSnapshot(m Message) {
	if m.Term < n.term || len(m.Entries) != 1 {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: false, Match: n.commitIndex})
		return
	}
	n.state = Follower
	n.leader = m.From
	n.resetElectionTimeout()
	if m.LogIndex <= n.commitIndex {
		// Already have this prefix; just ack.
		n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: true, Match: n.commitIndex})
		return
	}
	var snap Snapshot
	if err := json.Unmarshal(m.Entries[0].Data, &snap); err != nil {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: false, Match: n.commitIndex})
		return
	}
	// Replace the log with the snapshot sentinel.
	n.log = []Entry{{Term: snap.Term, Index: snap.Index}}
	n.snapIndex = snap.Index
	n.snapTerm = snap.Term
	n.snapshot = cloneState(snap.State)
	n.commitIndex = snap.Index
	n.lastApplied = snap.Index
	n.pendingSnapshot = &snap
	n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: true, Match: snap.Index})
}

// TakeInstalledSnapshot drains a snapshot installed by the leader, for
// the state-machine owner to load. Returns nil when none is pending.
func (n *Node) TakeInstalledSnapshot() *Snapshot {
	s := n.pendingSnapshot
	n.pendingSnapshot = nil
	return s
}

// Load replaces a KV state machine's contents from a snapshot.
func (kv *KV) Load(state map[string]string) {
	kv.data = cloneState(state)
}

// CompactAll snapshots every live node at its applied index and
// truncates logs — the cluster-level compaction etcd performs
// periodically. The harness calls it automatically once logs exceed
// snapshotThreshold.
func (c *Cluster) CompactAll() {
	for _, id := range c.order {
		if c.downed[id] {
			continue
		}
		n := c.nodes[id]
		if n.lastApplied == 0 {
			continue
		}
		// Snapshot the node's own applied state.
		_ = n.CompactTo(n.lastApplied, c.kvs[id].Snapshot())
	}
}
