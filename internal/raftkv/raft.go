// Package raftkv is a from-scratch Raft consensus implementation with a
// key-value state machine, standing in for etcd in the λ-NIC control
// plane: the paper's bare-metal backend "relies on a Raft-based
// distributed key-value store, called etcd, to sync lambda-related
// states (number of active lambdas, their placement and load balancing
// policies) with the gateway" (§6.1.1), and λ-NIC augments the same
// store to manage deployments across worker nodes.
//
// The consensus core follows the Raft paper (Ongaro & Ousterhout 2014,
// the paper's reference [83]): leader election with randomized
// timeouts, log replication via AppendEntries, and commitment on quorum
// match. The design is an etcd-raft-style deterministic state machine —
// no goroutines or timers inside the node; callers drive it with Tick
// and Step and drain outgoing messages and applied entries — which
// makes elections and failures exhaustively testable.
package raftkv

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a cluster member (1-based).
type NodeID int

// State is a node's Raft role.
type State int

// Raft roles.
const (
	Follower State = iota + 1
	Candidate
	Leader
)

// String names the role.
func (s State) String() string {
	switch s {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// MsgType enumerates Raft RPCs.
type MsgType int

// Message types.
const (
	MsgVoteRequest MsgType = iota + 1
	MsgVoteResponse
	MsgAppend // AppendEntries: replication and heartbeat
	MsgAppendResponse
)

// Entry is one replicated log entry.
type Entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

// Message is one Raft RPC.
type Message struct {
	Type MsgType
	From NodeID
	To   NodeID
	Term uint64

	// Vote requests / append: candidate's or leader's log position.
	LogIndex uint64 // prevLogIndex for appends, lastLogIndex for votes
	LogTerm  uint64

	// Append payload.
	Entries []Entry
	Commit  uint64

	// Responses.
	Granted bool   // vote granted / append success
	Match   uint64 // follower's match index on success, hint on failure
}

// Node errors.
var (
	ErrNotLeader = errors.New("raftkv: not the leader")
)

// Tick counts for timeouts (in Tick() units).
const (
	heartbeatTicks  = 1
	electionMinTick = 10
	electionMaxTick = 20
)

// Node is one Raft participant. Drive it with Tick/Step/Propose and
// drain Outbox and Applied after each call. Not safe for concurrent
// use; wrap with external synchronization (see Cluster).
type Node struct {
	id    NodeID
	peers []NodeID // all members including self

	state    State
	term     uint64
	votedFor NodeID
	votes    map[NodeID]bool
	leader   NodeID

	// log is 1-indexed: log[0] is a sentinel with Term 0, Index 0.
	log         []Entry
	commitIndex uint64
	lastApplied uint64

	nextIndex  map[NodeID]uint64
	matchIndex map[NodeID]uint64

	electionElapsed  int
	electionTimeout  int
	heartbeatElapsed int

	// Compaction state (snapshot.go).
	snapIndex       uint64
	snapTerm        uint64
	snapshot        map[string]string
	pendingSnapshot *Snapshot

	rng *rand.Rand

	outbox  []Message
	applied []Entry
}

// NewNode constructs a follower with an empty log.
func NewNode(id NodeID, peers []NodeID, seed int64) *Node {
	n := &Node{
		id:         id,
		peers:      append([]NodeID(nil), peers...),
		state:      Follower,
		log:        []Entry{{}},
		nextIndex:  make(map[NodeID]uint64),
		matchIndex: make(map[NodeID]uint64),
		votes:      make(map[NodeID]bool),
		rng:        rand.New(rand.NewSource(seed)),
	}
	n.resetElectionTimeout()
	return n
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.id }

// State returns the node's current role.
func (n *Node) State() State { return n.state }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the node's view of the current leader (0 if unknown).
func (n *Node) Leader() NodeID { return n.leader }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// LogLen returns the number of real entries in the log.
func (n *Node) LogLen() int { return len(n.log) - 1 }

// Outbox drains pending outgoing messages.
func (n *Node) Outbox() []Message {
	out := n.outbox
	n.outbox = nil
	return out
}

// Applied drains newly committed entries, in order.
func (n *Node) Applied() []Entry {
	out := n.applied
	n.applied = nil
	return out
}

func (n *Node) resetElectionTimeout() {
	n.electionElapsed = 0
	n.electionTimeout = electionMinTick + n.rng.Intn(electionMaxTick-electionMinTick+1)
}

func (n *Node) lastLogIndex() uint64 { return n.log[len(n.log)-1].Index }
func (n *Node) lastLogTerm() uint64  { return n.log[len(n.log)-1].Term }

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

func (n *Node) send(m Message) {
	m.From = n.id
	m.Term = n.term
	n.outbox = append(n.outbox, m)
}

// Tick advances the node's logical clock: followers/candidates count
// toward an election timeout; leaders emit heartbeats.
func (n *Node) Tick() {
	switch n.state {
	case Leader:
		n.heartbeatElapsed++
		if n.heartbeatElapsed >= heartbeatTicks {
			n.heartbeatElapsed = 0
			n.broadcastAppend()
		}
	default:
		n.electionElapsed++
		if n.electionElapsed >= n.electionTimeout {
			n.startElection()
		}
	}
}

func (n *Node) startElection() {
	n.state = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = 0
	n.votes = map[NodeID]bool{n.id: true}
	n.resetElectionTimeout()
	if len(n.peers) == 1 {
		n.becomeLeader()
		return
	}
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.send(Message{
			Type:     MsgVoteRequest,
			To:       p,
			LogIndex: n.lastLogIndex(),
			LogTerm:  n.lastLogTerm(),
		})
	}
}

func (n *Node) becomeLeader() {
	n.state = Leader
	n.leader = n.id
	n.heartbeatElapsed = 0
	for _, p := range n.peers {
		n.nextIndex[p] = n.lastLogIndex() + 1
		n.matchIndex[p] = 0
	}
	n.matchIndex[n.id] = n.lastLogIndex()
	n.broadcastAppend()
}

func (n *Node) becomeFollower(term uint64, leader NodeID) {
	n.state = Follower
	n.term = term
	n.votedFor = 0
	n.leader = leader
	n.resetElectionTimeout()
}

// Propose appends a command to the leader's log for replication. It
// fails on non-leaders; callers redirect to Leader().
func (n *Node) Propose(data []byte) (uint64, error) {
	if n.state != Leader {
		return 0, fmt.Errorf("%w: node %d is %v", ErrNotLeader, n.id, n.state)
	}
	e := Entry{Term: n.term, Index: n.lastLogIndex() + 1, Data: append([]byte(nil), data...)}
	n.log = append(n.log, e)
	n.matchIndex[n.id] = e.Index
	if len(n.peers) == 1 {
		n.maybeCommit()
	} else {
		n.broadcastAppend()
	}
	return e.Index, nil
}

func (n *Node) broadcastAppend() {
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to NodeID) {
	next := n.nextIndex[to]
	if next < 1 {
		next = 1
	}
	if next > n.lastLogIndex()+1 {
		next = n.lastLogIndex() + 1
	}
	// The follower needs entries we have compacted away: ship the
	// snapshot instead (Raft §7).
	if next <= n.logOffset() && n.snapIndex > 0 {
		n.sendSnapshot(to)
		return
	}
	if next <= n.logOffset() {
		next = n.logOffset() + 1
	}
	prev := n.entryAt(next - 1)
	entries := make([]Entry, 0, n.lastLogIndex()+1-next)
	for i := next; i <= n.lastLogIndex(); i++ {
		entries = append(entries, n.entryAt(i))
	}
	n.send(Message{
		Type:     MsgAppend,
		To:       to,
		LogIndex: prev.Index,
		LogTerm:  prev.Term,
		Entries:  entries,
		Commit:   n.commitIndex,
	})
}

// Step processes one incoming message.
func (n *Node) Step(m Message) {
	if m.Term > n.term {
		leader := NodeID(0)
		if m.Type == MsgAppend {
			leader = m.From
		}
		n.becomeFollower(m.Term, leader)
	}
	switch m.Type {
	case MsgVoteRequest:
		n.stepVoteRequest(m)
	case MsgVoteResponse:
		n.stepVoteResponse(m)
	case MsgAppend:
		n.stepAppend(m)
	case MsgAppendResponse:
		n.stepAppendResponse(m)
	case MsgInstallSnapshot:
		n.stepInstallSnapshot(m)
	}
}

func (n *Node) stepVoteRequest(m Message) {
	grant := false
	if m.Term >= n.term && (n.votedFor == 0 || n.votedFor == m.From) {
		// Election restriction: candidate's log must be at least as
		// up-to-date as ours.
		upToDate := m.LogTerm > n.lastLogTerm() ||
			(m.LogTerm == n.lastLogTerm() && m.LogIndex >= n.lastLogIndex())
		if upToDate {
			grant = true
			n.votedFor = m.From
			n.resetElectionTimeout()
		}
	}
	n.send(Message{Type: MsgVoteResponse, To: m.From, Granted: grant})
}

func (n *Node) stepVoteResponse(m Message) {
	if n.state != Candidate || m.Term < n.term {
		return
	}
	if m.Granted {
		n.votes[m.From] = true
		if len(n.votes) >= n.quorum() {
			n.becomeLeader()
		}
	}
}

func (n *Node) stepAppend(m Message) {
	if m.Term < n.term {
		n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: false, Match: n.commitIndex})
		return
	}
	// Valid leader for this term.
	n.state = Follower
	n.leader = m.From
	n.resetElectionTimeout()

	// Consistency check on the previous entry. A prev index below our
	// compaction point is covered by the snapshot.
	switch {
	case m.LogIndex < n.logOffset():
		n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: false, Match: n.commitIndex})
		return
	case m.LogIndex > n.lastLogIndex() || n.entryAt(m.LogIndex).Term != m.LogTerm:
		n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: false, Match: n.commitIndex})
		return
	}
	// Append, truncating conflicts.
	for _, e := range m.Entries {
		if e.Index <= n.snapIndex {
			continue // covered by the snapshot
		}
		if e.Index <= n.lastLogIndex() {
			if n.entryAt(e.Index).Term != e.Term {
				n.log = n.log[:e.Index-n.logOffset()]
				n.log = append(n.log, e)
			}
			continue
		}
		n.log = append(n.log, e)
	}
	match := m.LogIndex + uint64(len(m.Entries))
	if m.Commit > n.commitIndex {
		n.commitIndex = min64(m.Commit, n.lastLogIndex())
		n.applyCommitted()
	}
	n.send(Message{Type: MsgAppendResponse, To: m.From, Granted: true, Match: match})
}

func (n *Node) stepAppendResponse(m Message) {
	if n.state != Leader || m.Term < n.term {
		return
	}
	if m.Granted {
		if m.Match > n.matchIndex[m.From] {
			n.matchIndex[m.From] = m.Match
		}
		n.nextIndex[m.From] = n.matchIndex[m.From] + 1
		n.maybeCommit()
		return
	}
	// Back off and retry.
	if n.nextIndex[m.From] > m.Match+1 {
		n.nextIndex[m.From] = m.Match + 1
	} else if n.nextIndex[m.From] > 1 {
		n.nextIndex[m.From]--
	}
	n.sendAppend(m.From)
}

// maybeCommit advances commitIndex to the highest index replicated on a
// quorum with an entry from the current term (Raft §5.4.2).
func (n *Node) maybeCommit() {
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		matches = append(matches, n.matchIndex[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.quorum()-1]
	if candidate > n.commitIndex && candidate >= n.logOffset() && n.entryAt(candidate).Term == n.term {
		n.commitIndex = candidate
		n.applyCommitted()
		n.broadcastAppend() // propagate the new commit index promptly
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		if n.lastApplied < n.logOffset() {
			continue // covered by an installed snapshot
		}
		n.applied = append(n.applied, n.entryAt(n.lastApplied))
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
