package cluster

import (
	"testing"
	"time"
)

func TestDefaultMatchesPaperTestbed(t *testing.T) {
	tb := Default()
	if got := tb.NIC.NPUCores(); got != 56 {
		t.Errorf("NPUCores = %d, want 56 (paper §6.1.2)", got)
	}
	if got := tb.NIC.NPUThreads(); got != 448 {
		t.Errorf("NPUThreads = %d, want 448 (56 cores x 8 threads)", got)
	}
	if got := tb.Host.Threads(); got != 56 {
		t.Errorf("Host.Threads = %d, want 56 (2x14 cores, 2 threads)", got)
	}
	if tb.NIC.ClockHz != 633_000_000 {
		t.Errorf("NIC clock = %d, want 633 MHz", tb.NIC.ClockHz)
	}
	if tb.NIC.InstrStorePerCore != 16*1024 {
		t.Errorf("instruction store = %d, want 16K", tb.NIC.InstrStorePerCore)
	}
	if tb.Workers != 4 {
		t.Errorf("Workers = %d, want 4", tb.Workers)
	}
	if tb.NIC.EMEMBytes != 2*1024*1024*1024 {
		t.Errorf("EMEM = %d, want 2 GiB", tb.NIC.EMEMBytes)
	}
}

func TestSerialization(t *testing.T) {
	l := LinkConfig{BandwidthBitsPerSec: 10_000_000_000}
	// 1250 bytes = 10000 bits = 1 µs at 10 Gbps.
	if got := l.Serialization(1250); got != time.Microsecond {
		t.Errorf("Serialization(1250) = %v, want 1µs", got)
	}
	if got := l.Serialization(0); got != 0 {
		t.Errorf("Serialization(0) = %v, want 0", got)
	}
	var zero LinkConfig
	if got := zero.Serialization(100); got != 0 {
		t.Errorf("zero-bandwidth Serialization = %v, want 0", got)
	}
}

func TestOneWayComposition(t *testing.T) {
	l := LinkConfig{
		BandwidthBitsPerSec: 10_000_000_000,
		SwitchLatency:       600 * time.Nanosecond,
		WireLatency:         300 * time.Nanosecond,
	}
	want := 900*time.Nanosecond + time.Microsecond
	if got := l.OneWay(1250); got != want {
		t.Errorf("OneWay(1250) = %v, want %v", got, want)
	}
}

func TestMemoryHierarchyOrdering(t *testing.T) {
	n := Default().NIC
	if !(n.LocalLatency < n.CTMLatency && n.CTMLatency < n.IMEMLatency && n.IMEMLatency < n.EMEMLatency) {
		t.Errorf("memory latencies not strictly increasing: %d %d %d %d",
			n.LocalLatency, n.CTMLatency, n.IMEMLatency, n.EMEMLatency)
	}
}
