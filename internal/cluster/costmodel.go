// Package cluster models the paper's five-node evaluation testbed
// (§6.1.2) and centralizes the calibrated cost model used by the
// hardware simulators and backends.
//
// Every latency/throughput result in this repository is produced by
// queueing and cycle accounting in internal/nicsim and internal/cpusim;
// the constants below are the calibration inputs. They are derived from
// the hardware the paper names (Netronome Agilio CX, Xeon Gold 5117,
// 10 G Arista switch) and from the per-component overheads the paper
// attributes results to (kernel network stack, context switches,
// container virtualization, OpenFaaS gateway). Where the paper gives a
// number (56 cores, 8 threads/core, 633 MHz, 16 K instructions/core,
// 2 GiB NIC RAM) we use it verbatim; where it does not, the constant is
// set to a publicly documented typical value and noted as calibrated.
package cluster

import "time"

// NICConfig describes an ASIC-based SmartNIC in the style of the
// Netronome Agilio CX 2x10GbE used in the paper (§6.1.2).
type NICConfig struct {
	// Islands is the number of core clusters sharing a CTM.
	Islands int
	// CoresPerIsland * Islands gives the paper's 56 RISC cores.
	CoresPerIsland int
	// ThreadsPerCore is the hardware thread count per NPU core (8 in
	// the paper, 448 threads total).
	ThreadsPerCore int
	// ClockHz is the NPU clock (633 MHz in the paper).
	ClockHz uint64
	// InstrStorePerCore is the per-core instruction store limit (16 K
	// instructions in the paper). Programs larger than this do not fit.
	InstrStorePerCore int
	// Memory sizes, bytes.
	LocalMemPerThread int // core-local registers/LMEM slice
	CTMPerIsland      int // Cluster Target Memory
	IMEMBytes         int // on-chip internal memory
	EMEMBytes         int // external DRAM (2 GiB on-board RAM)
	// Memory access latencies, cycles. Calibrated from Netronome NFP
	// architecture documentation (local ~1-3, CTM ~50, IMEM ~150,
	// EMEM ~500 cycles).
	LocalLatency, CTMLatency, IMEMLatency, EMEMLatency uint64
	// ParseMatchCycles is the fixed parse+match pipeline cost per
	// request packet. The paper reports reordering four packets costs
	// 120 instructions (§5 footnote); parse+match of a single-packet
	// RPC is of the same magnitude.
	ParseMatchCycles uint64
	// ReorderCyclesPerPacket is the per-packet reordering cost for
	// multi-packet RPCs (120 instructions / 4 packets, §5 footnote).
	ReorderCyclesPerPacket uint64
}

// HostConfig describes one worker server: two Intel Xeon Gold 5117
// processors (2 × 14 physical cores, 56 hardware threads at 2.0 GHz)
// with 32 GiB RAM (§6.1.2).
type HostConfig struct {
	PhysicalCores  int
	ThreadsPerCore int
	ClockHz        uint64
	MemoryBytes    int64
}

// Threads returns the number of hardware threads (56 in the paper's
// testbed, the count its parallel experiments use).
func (h HostConfig) Threads() int { return h.PhysicalCores * h.ThreadsPerCore }

// LinkConfig models the 10 Gbps links and the Arista DCS-7124S switch.
type LinkConfig struct {
	BandwidthBitsPerSec uint64
	// SwitchLatency is the port-to-port cut-through latency.
	SwitchLatency time.Duration
	// WireLatency is per-hop propagation + PHY/MAC latency.
	WireLatency time.Duration
}

// Serialization returns the time to put bytes on the wire.
func (l LinkConfig) Serialization(bytes int) time.Duration {
	if l.BandwidthBitsPerSec == 0 {
		return 0
	}
	bits := uint64(bytes) * 8
	return time.Duration(bits * uint64(time.Second) / l.BandwidthBitsPerSec)
}

// OneWay returns the one-way network latency for a payload of the given
// size between two nodes through the switch.
func (l LinkConfig) OneWay(bytes int) time.Duration {
	return l.WireLatency + l.SwitchLatency + l.Serialization(bytes)
}

// SoftwareCosts captures per-request software-path costs on the host
// CPU backends. These model the overheads the paper attributes its
// results to (§2.1, §3, §6.3): the kernel network stack, the serverless
// framework's dispatch path, container virtualization (overlay network
// and a process fork per request in the OpenFaaS classic watchdog), and
// context switches between co-resident lambdas.
type SoftwareCosts struct {
	// KernelRx/KernelTx: kernel UDP/TCP stack per-packet costs (bare
	// metal). Calibrated to typical Linux figures (~15 µs per
	// direction) so that the bare-metal web-server round trip lands
	// ~30x above λ-NIC's, as in Fig. 6.
	KernelRx, KernelTx time.Duration
	// DispatchWarm is the backend service's request dispatch cost on a
	// hot path (Python service thread hand-off while warm).
	DispatchWarm time.Duration
	// DispatchLoaded is the dispatch occupancy under concurrent load,
	// when the Python service's GIL serializes request handling. This
	// is the throughput-determining serialized cost for the bare-metal
	// backend in Fig. 7/Table 2.
	DispatchLoaded time.Duration
	// ContextSwitch is the direct + indirect (cache/TLB pollution) cost
	// of switching a core between distinct lambda processes (§6.3.2).
	ContextSwitch time.Duration
	// OverlayPerPacket is the container overlay-network (veth, bridge,
	// NAT/conntrack, calico) additional per-packet cost.
	OverlayPerPacket time.Duration
	// ContainerFork is the per-request process fork+exec in the
	// OpenFaaS classic watchdog; the dominant container cost and the
	// reason the container web-server latency sits near a millisecond
	// (880x λ-NIC) in Fig. 6.
	ContainerFork time.Duration
	// InterpreterFactor is the per-instruction slowdown of the Python
	// lambda runtime relative to native code; applied to workload
	// instruction counts when lambdas execute on CPU backends. This is
	// why the 2.0 GHz Xeon loses to 633 MHz NPUs on the image
	// transformer (Fig. 6/7: 3-5x).
	InterpreterFactor float64
	// GatewayLatency is the OpenFaaS gateway + NAT proxy pipeline
	// latency every request traverses in throughput experiments.
	GatewayLatency time.Duration
	// GatewayOccupancy is the gateway's serialized per-request CPU
	// occupancy; its reciprocal caps cluster throughput (~58 kreq/s,
	// Table 2).
	GatewayOccupancy time.Duration
}

// Testbed is the full evaluation environment of §6.1.2: one master
// (gateway, workload manager, memcached, monitoring) and four worker
// nodes, all on a 10 G switch.
type Testbed struct {
	Workers int
	NIC     NICConfig
	Host    HostConfig
	Link    LinkConfig
	Costs   SoftwareCosts
}

// Default returns the testbed configured to match the paper.
func Default() Testbed {
	return Testbed{
		Workers: 4,
		NIC: NICConfig{
			Islands:                7,
			CoresPerIsland:         8, // 7 x 8 = 56 cores
			ThreadsPerCore:         8, // 448 threads
			ClockHz:                633_000_000,
			InstrStorePerCore:      16 * 1024,
			LocalMemPerThread:      4 * 1024,
			CTMPerIsland:           256 * 1024,
			IMEMBytes:              8 * 1024 * 1024,
			EMEMBytes:              2 * 1024 * 1024 * 1024,
			LocalLatency:           1,
			CTMLatency:             50,
			IMEMLatency:            150,
			EMEMLatency:            500,
			ParseMatchCycles:       120,
			ReorderCyclesPerPacket: 30,
		},
		Host: HostConfig{
			PhysicalCores:  28, // 2 x Xeon Gold 5117 (14C)
			ThreadsPerCore: 2,  // 56 hardware threads
			ClockHz:        2_000_000_000,
			MemoryBytes:    32 * 1024 * 1024 * 1024,
		},
		Link: LinkConfig{
			BandwidthBitsPerSec: 10_000_000_000,
			SwitchLatency:       300 * time.Nanosecond,
			WireLatency:         150 * time.Nanosecond,
		},
		Costs: SoftwareCosts{
			KernelRx:          20 * time.Microsecond,
			KernelTx:          15 * time.Microsecond,
			DispatchWarm:      40 * time.Microsecond,
			DispatchLoaded:    510 * time.Microsecond,
			ContextSwitch:     490 * time.Microsecond,
			OverlayPerPacket:  30 * time.Microsecond,
			ContainerFork:     2420 * time.Microsecond,
			InterpreterFactor: 38,
			GatewayLatency:    300 * time.Microsecond,
			GatewayOccupancy:  17200 * time.Nanosecond,
		},
	}
}

// NPUCores returns the total NPU core count (56 in the paper).
func (n NICConfig) NPUCores() int { return n.Islands * n.CoresPerIsland }

// NPUThreads returns the total NPU hardware thread count (448).
func (n NICConfig) NPUThreads() int { return n.NPUCores() * n.ThreadsPerCore }
