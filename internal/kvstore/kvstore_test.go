package kvstore

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"lambdanic/internal/transport"
)

func TestStoreSetGetDelete(t *testing.T) {
	s := NewStore()
	if err := s.Set("k1", 7, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	it, err := s.Get("k1")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "v1" || it.Flags != 7 {
		t.Errorf("got %+v", it)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("get after delete: %v", err)
	}
	if err := s.Delete("k1"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestStoreValidation(t *testing.T) {
	s := NewStore()
	if err := s.Set("", 0, nil); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("empty key: %v", err)
	}
	if err := s.Set(strings.Repeat("k", 251), 0, nil); !errors.Is(err, ErrKeyTooLong) {
		t.Errorf("long key: %v", err)
	}
	if err := s.Set("bad key", 0, nil); !errors.Is(err, ErrMalformedKey) {
		t.Errorf("space in key: %v", err)
	}
	if err := s.Set("k", 0, make([]byte, DefaultMaxDataLen+1)); !errors.Is(err, ErrValueTooBig) {
		t.Errorf("big value: %v", err)
	}
}

func TestStoreCopiesValues(t *testing.T) {
	s := NewStore()
	v := []byte("abc")
	if err := s.Set("k", 0, v); err != nil {
		t.Fatal(err)
	}
	v[0] = 'z' // must not affect stored copy
	it, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(it.Value) != "abc" {
		t.Errorf("stored value aliased caller buffer: %q", it.Value)
	}
	it.Value[0] = 'y' // must not affect store
	it2, _ := s.Get("k")
	if string(it2.Value) != "abc" {
		t.Errorf("returned value aliased store: %q", it2.Value)
	}
}

func TestStoreStats(t *testing.T) {
	s := NewStore()
	if err := s.Set("a", 0, []byte("1")); err != nil {
		t.Fatal(err)
	}
	_, _ = s.Get("a")
	_, _ = s.Get("missing")
	gets, sets, hits, misses, _ := s.Stats()
	if gets != 2 || sets != 1 || hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d/%d/%d", gets, sets, hits, misses)
	}
}

func TestProtocolSetGet(t *testing.T) {
	s := NewStore()
	resp := s.HandleCommand([]byte("set mykey 42 0 5\r\nhello\r\n"))
	if string(resp) != "STORED\r\n" {
		t.Fatalf("set resp = %q", resp)
	}
	resp = s.HandleCommand([]byte("get mykey\r\n"))
	want := "VALUE mykey 42 5\r\nhello\r\nEND\r\n"
	if string(resp) != want {
		t.Errorf("get resp = %q, want %q", resp, want)
	}
}

func TestProtocolMultiGet(t *testing.T) {
	s := NewStore()
	if err := s.Set("a", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set("b", 2, []byte("yy")); err != nil {
		t.Fatal(err)
	}
	resp := s.HandleCommand([]byte("get a missing b\r\n"))
	text := string(resp)
	if !strings.Contains(text, "VALUE a 1 1") || !strings.Contains(text, "VALUE b 2 2") {
		t.Errorf("multi-get resp = %q", text)
	}
	if strings.Contains(text, "missing") {
		t.Errorf("missing key present in response: %q", text)
	}
}

func TestProtocolDelete(t *testing.T) {
	s := NewStore()
	if err := s.Set("a", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if resp := s.HandleCommand([]byte("delete a\r\n")); string(resp) != "DELETED\r\n" {
		t.Errorf("delete = %q", resp)
	}
	if resp := s.HandleCommand([]byte("delete a\r\n")); string(resp) != "NOT_FOUND\r\n" {
		t.Errorf("delete missing = %q", resp)
	}
}

func TestProtocolStats(t *testing.T) {
	s := NewStore()
	resp := string(s.HandleCommand([]byte("stats\r\n")))
	if !strings.HasPrefix(resp, "STAT ") || !strings.HasSuffix(resp, "END\r\n") {
		t.Errorf("stats = %q", resp)
	}
}

func TestProtocolErrors(t *testing.T) {
	s := NewStore()
	cases := []string{
		"\r\n",
		"bogus\r\n",
		"set k\r\n",
		"set k x 0 5\r\nhello\r\n",
		"set k 0 x 5\r\nhello\r\n",
		"set k 0 0 99\r\nshort\r\n",
		"set k 0 0 -1\r\n\r\n",
		"get\r\n",
		"delete\r\n",
	}
	for _, c := range cases {
		resp := string(s.HandleCommand([]byte(c)))
		if !strings.Contains(resp, "ERROR") {
			t.Errorf("command %q -> %q, want error", c, resp)
		}
	}
}

func TestProtocolRoundTripProperty(t *testing.T) {
	// Property: any binary value round-trips through the text protocol.
	f := func(value []byte) bool {
		if len(value) > 1024 {
			value = value[:1024]
		}
		s := NewStore()
		if resp := s.HandleCommand(BuildSet("key", 9, value)); string(resp) != "STORED\r\n" {
			return false
		}
		got, ok := ParseGetResponse(s.HandleCommand(BuildGet("key")))
		return ok && bytes.Equal(got, value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestServerClientOverMemNetwork(t *testing.T) {
	n := transport.NewMemNetwork(1)
	sc, err := n.Listen("memcached")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(NewStore(), sc)
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	client := NewClient(cc, transport.MemAddr("memcached"))

	if err := client.Set("user:1", 0, []byte("sean")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, ok, err := client.Get("user:1")
	if err != nil || !ok || string(v) != "sean" {
		t.Errorf("Get = %q/%v/%v", v, ok, err)
	}
	_, ok, err = client.Get("user:2")
	if err != nil || ok {
		t.Errorf("Get missing = %v/%v", ok, err)
	}
}
