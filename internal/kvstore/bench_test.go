package kvstore

import (
	"fmt"
	"testing"
)

func BenchmarkStoreSetGet(b *testing.B) {
	s := NewStore()
	value := []byte("benchmark-value-0123456789")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("user:%04d", i%1000)
		if err := s.Set(key, 0, value); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProtocolSetGet(b *testing.B) {
	s := NewStore()
	set := BuildSet("user:0001", 0, []byte("value"))
	get := BuildGet("user:0001")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if resp := s.HandleCommand(set); string(resp) != "STORED\r\n" {
			b.Fatal("set failed")
		}
		if _, ok := ParseGetResponse(s.HandleCommand(get)); !ok {
			b.Fatal("get failed")
		}
	}
}
