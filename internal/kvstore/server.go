package kvstore

import (
	"net"
	"sync"
)

// Server serves the memcached text protocol over a packet connection
// (UDP-style: one datagram per command, one per response), the way the
// paper's key-value client lambdas reach memcached on the master node
// (§6.1.2, §6.2b).
type Server struct {
	store *Store
	conn  net.PacketConn
	wg    sync.WaitGroup
	once  sync.Once
}

// NewServer starts serving the store on conn. The server owns conn.
func NewServer(store *Store, conn net.PacketConn) *Server {
	s := &Server{store: store, conn: conn}
	s.wg.Add(1)
	go s.loop()
	return s
}

// Store returns the underlying store.
func (s *Server) Store() *Store { return s.store }

// Addr returns the server's listen address.
func (s *Server) Addr() net.Addr { return s.conn.LocalAddr() }

// Close stops the server and waits for its goroutine.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		err = s.conn.Close()
		s.wg.Wait()
	})
	return err
}

func (s *Server) loop() {
	defer s.wg.Done()
	buf := make([]byte, 1<<20+1024)
	for {
		n, from, err := s.conn.ReadFrom(buf)
		if err != nil {
			return
		}
		resp := s.store.HandleCommand(buf[:n])
		if _, err := s.conn.WriteTo(resp, from); err != nil {
			return
		}
	}
}

// Client is a minimal memcached client over a packet connection.
type Client struct {
	conn   net.PacketConn
	server net.Addr
	mu     sync.Mutex
	buf    []byte
}

// NewClient returns a client that sends commands from conn to server.
// The caller retains ownership of conn.
func NewClient(conn net.PacketConn, server net.Addr) *Client {
	return &Client{conn: conn, server: server, buf: make([]byte, 1<<20+1024)}
}

func (c *Client) roundTrip(cmd []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.conn.WriteTo(cmd, c.server); err != nil {
		return nil, err
	}
	n, _, err := c.conn.ReadFrom(c.buf)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, c.buf[:n])
	return out, nil
}

// Set stores a value.
func (c *Client) Set(key string, flags uint32, value []byte) error {
	resp, err := c.roundTrip(BuildSet(key, flags, value))
	if err != nil {
		return err
	}
	if string(resp) != "STORED\r\n" {
		return &ProtocolError{Response: string(resp)}
	}
	return nil
}

// Get fetches a value; ok is false on miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	resp, err := c.roundTrip(BuildGet(key))
	if err != nil {
		return nil, false, err
	}
	v, ok := ParseGetResponse(resp)
	return v, ok, nil
}

// ProtocolError is an unexpected server response.
type ProtocolError struct {
	Response string
}

func (e *ProtocolError) Error() string {
	return "kvstore: unexpected response: " + e.Response
}
