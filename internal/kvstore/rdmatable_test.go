package kvstore

import (
	"bytes"
	"fmt"
	"testing"
)

func TestTableSetGetDelete(t *testing.T) {
	tb := NewTable(64)
	if !tb.Set("user:0001", []byte("alpha")) {
		t.Fatal("Set failed")
	}
	if v, ok := tb.Get("user:0001"); !ok || string(v) != "alpha" {
		t.Fatalf("Get = %q/%v", v, ok)
	}
	if !tb.Set("user:0001", []byte("beta")) {
		t.Fatal("overwrite failed")
	}
	if v, _ := tb.Get("user:0001"); string(v) != "beta" {
		t.Fatalf("after overwrite Get = %q", v)
	}
	tb.Delete("user:0001")
	if _, ok := tb.Get("user:0001"); ok {
		t.Fatal("Get after Delete hit")
	}
}

func TestTableRejectsOversized(t *testing.T) {
	tb := NewTable(64)
	if tb.Set(string(bytes.Repeat([]byte{'k'}, slotKeyCap+1)), []byte("v")) {
		t.Error("oversized key accepted")
	}
	if tb.Set("k", bytes.Repeat([]byte{'v'}, slotValCap+1)) {
		t.Error("oversized value accepted")
	}
	if !tb.Set("k", bytes.Repeat([]byte{'v'}, slotValCap)) {
		t.Error("max-size value rejected")
	}
}

func TestTableProbeWindowLookup(t *testing.T) {
	// Every key stored in the table must be findable by the one-sided
	// protocol: fetch ProbeWindow bytes, scan with Lookup.
	tb := NewTable(1024)
	stored := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		if tb.Set(key, []byte(fmt.Sprintf("value-%d", i))) {
			stored++
		}
	}
	if stored < 900 {
		t.Fatalf("only %d/1000 keys fit; probe windows too contended", stored)
	}
	buf := tb.Bytes()
	found := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		aOff, aLen, bOff, bLen := tb.ProbeWindow(key)
		window := append(append([]byte(nil), buf[aOff:aOff+aLen]...), buf[bOff:bOff+bLen]...)
		if v, ok := Lookup(window, key); ok {
			if want := fmt.Sprintf("value-%d", i); string(v) != want {
				t.Fatalf("Lookup(%q) = %q, want %q", key, v, want)
			}
			found++
		}
	}
	if found != stored {
		t.Errorf("one-sided lookup found %d of %d stored keys", found, stored)
	}
	// A key that was never stored must miss.
	if _, ok := Lookup(buf, "user:9999x"); ok {
		t.Error("Lookup hit an absent key")
	}
}

func TestTableTombstoneKeepsChainReachable(t *testing.T) {
	// Deleting an entry mid-chain must not cut off later entries that
	// probed past it.
	tb := NewTable(4) // tiny table forces collisions
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		tb.Set(k, []byte("v-"+k))
	}
	tb.Delete(keys[0])
	for _, k := range keys[1:] {
		if v, ok := tb.Get(k); ok && string(v) != "v-"+k {
			t.Errorf("Get(%q) = %q after delete of %q", k, v, keys[0])
		}
	}
	// The tombstoned slot is reusable.
	if !tb.Set("e", []byte("v-e")) {
		t.Skip("probe window full; reuse not exercised with this geometry")
	}
	if v, ok := tb.Get("e"); !ok || string(v) != "v-e" {
		t.Errorf("Get(e) = %q/%v after tombstone reuse", v, ok)
	}
}

func TestStoreMirrorsIntoTable(t *testing.T) {
	s := NewStore()
	tb := NewTable(64)
	s.SetMirror(tb)
	if err := s.Set("user:0007", 0, []byte("seven")); err != nil {
		t.Fatal(err)
	}
	if v, ok := tb.Get("user:0007"); !ok || string(v) != "seven" {
		t.Fatalf("mirror Get = %q/%v", v, ok)
	}
	if err := s.Delete("user:0007"); err != nil {
		t.Fatal(err)
	}
	if _, ok := tb.Get("user:0007"); ok {
		t.Error("mirror still holds deleted key")
	}
}
