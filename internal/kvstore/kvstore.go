// Package kvstore is a memcached-style key-value store, standing in for
// the memcached server the paper's key-value-client lambdas query
// (§6.2b). It implements a compatible subset of the memcached text
// protocol (get/set/delete with flags and byte counts) over an
// in-memory store, and can serve it over any net.PacketConn for the
// runnable examples and daemons.
package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Store is a concurrency-safe in-memory key-value store with memcached
// semantics (flags per entry, whole-value replacement).
type Store struct {
	mu      sync.RWMutex
	items   map[string]Item
	maxKey  int
	maxData int

	// mirror, when set, receives every successful mutation — the
	// write-through hook keeping the EMEM-resident Table coherent so
	// one-sided readers bypass the lambda path. Called under s.mu.
	mirror Mirror

	// Counters, memcached "stats"-style.
	gets, sets, hits, misses, deletes uint64
}

// Mirror is a write-through replica of the store's contents — the
// RDMA-readable Table. A Set that the mirror cannot represent returns
// false; the entry then lives only in the store and bypass readers
// fall back to the lambda path for it.
type Mirror interface {
	Set(key string, value []byte) bool
	Delete(key string)
}

// SetMirror installs the write-through mirror. Install before serving
// traffic; existing entries are not back-filled.
func (s *Store) SetMirror(m Mirror) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mirror = m
}

// Item is one stored entry.
type Item struct {
	Value []byte
	Flags uint32
}

// Store limits, mirroring memcached's defaults.
const (
	DefaultMaxKeyLen  = 250
	DefaultMaxDataLen = 1 << 20
)

// Store errors.
var (
	ErrKeyTooLong   = errors.New("kvstore: key too long")
	ErrValueTooBig  = errors.New("kvstore: value too big")
	ErrNotFound     = errors.New("kvstore: not found")
	ErrMalformedKey = errors.New("kvstore: malformed key")
)

// NewStore returns an empty store with default limits.
func NewStore() *Store {
	return &Store{
		items:   make(map[string]Item),
		maxKey:  DefaultMaxKeyLen,
		maxData: DefaultMaxDataLen,
	}
}

func validKey(key string, maxLen int) error {
	if len(key) == 0 || len(key) > maxLen {
		return ErrKeyTooLong
	}
	if strings.ContainsAny(key, " \r\n\x00") {
		return ErrMalformedKey
	}
	return nil
}

// Set stores value under key, replacing any prior entry.
func (s *Store) Set(key string, flags uint32, value []byte) error {
	if err := validKey(key, s.maxKey); err != nil {
		return err
	}
	if len(value) > s.maxData {
		return ErrValueTooBig
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sets++
	s.items[key] = Item{Value: append([]byte(nil), value...), Flags: flags}
	if s.mirror != nil {
		s.mirror.Set(key, value)
	}
	return nil
}

// Get fetches the entry for key.
func (s *Store) Get(key string) (Item, error) {
	if err := validKey(key, s.maxKey); err != nil {
		return Item{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	it, ok := s.items[key]
	if !ok {
		s.misses++
		return Item{}, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.hits++
	return Item{Value: append([]byte(nil), it.Value...), Flags: it.Flags}, nil
}

// Delete removes key.
func (s *Store) Delete(key string) error {
	if err := validKey(key, s.maxKey); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deletes++
	if _, ok := s.items[key]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(s.items, key)
	if s.mirror != nil {
		s.mirror.Delete(key)
	}
	return nil
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// Stats returns operation counters (gets, sets, hits, misses, deletes).
func (s *Store) Stats() (gets, sets, hits, misses, deletes uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gets, s.sets, s.hits, s.misses, s.deletes
}

// HandleCommand executes one memcached text-protocol command and
// returns the protocol response. Supported commands:
//
//	set <key> <flags> <exptime> <bytes>\r\n<data>\r\n -> STORED
//	get <key>\r\n  -> VALUE <key> <flags> <bytes>\r\n<data>\r\nEND
//	delete <key>\r\n -> DELETED | NOT_FOUND
//	stats\r\n -> STAT lines
//
// Exptime is parsed but ignored (the simulated workloads never expire
// entries). Malformed input yields memcached-style ERROR responses.
func (s *Store) HandleCommand(cmd []byte) []byte {
	line, rest, _ := bytes.Cut(cmd, []byte("\r\n"))
	fields := strings.Fields(string(line))
	if len(fields) == 0 {
		return []byte("ERROR\r\n")
	}
	switch fields[0] {
	case "set":
		return s.handleSet(fields, rest)
	case "get", "gets":
		return s.handleGet(fields)
	case "delete":
		return s.handleDelete(fields)
	case "stats":
		return s.handleStats()
	default:
		return []byte("ERROR\r\n")
	}
}

func clientError(msg string) []byte {
	return []byte("CLIENT_ERROR " + msg + "\r\n")
}

func (s *Store) handleSet(fields []string, rest []byte) []byte {
	if len(fields) != 5 {
		return clientError("bad set command")
	}
	flags, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return clientError("bad flags")
	}
	if _, err := strconv.ParseInt(fields[3], 10, 64); err != nil {
		return clientError("bad exptime")
	}
	n, err := strconv.Atoi(fields[4])
	if err != nil || n < 0 {
		return clientError("bad byte count")
	}
	if len(rest) < n+2 || !bytes.Equal(rest[n:n+2], []byte("\r\n")) {
		return clientError("bad data chunk")
	}
	if err := s.Set(fields[1], uint32(flags), rest[:n]); err != nil {
		return clientError(err.Error())
	}
	return []byte("STORED\r\n")
}

func (s *Store) handleGet(fields []string) []byte {
	if len(fields) < 2 {
		return clientError("bad get command")
	}
	var out bytes.Buffer
	for _, key := range fields[1:] {
		it, err := s.Get(key)
		if err != nil {
			continue // memcached omits missing keys
		}
		fmt.Fprintf(&out, "VALUE %s %d %d\r\n", key, it.Flags, len(it.Value))
		out.Write(it.Value)
		out.WriteString("\r\n")
	}
	out.WriteString("END\r\n")
	return out.Bytes()
}

func (s *Store) handleDelete(fields []string) []byte {
	if len(fields) != 2 {
		return clientError("bad delete command")
	}
	if err := s.Delete(fields[1]); err != nil {
		if errors.Is(err, ErrNotFound) {
			return []byte("NOT_FOUND\r\n")
		}
		return clientError(err.Error())
	}
	return []byte("DELETED\r\n")
}

func (s *Store) handleStats() []byte {
	gets, sets, hits, misses, deletes := s.Stats()
	var out bytes.Buffer
	fmt.Fprintf(&out, "STAT cmd_get %d\r\n", gets)
	fmt.Fprintf(&out, "STAT cmd_set %d\r\n", sets)
	fmt.Fprintf(&out, "STAT get_hits %d\r\n", hits)
	fmt.Fprintf(&out, "STAT get_misses %d\r\n", misses)
	fmt.Fprintf(&out, "STAT cmd_delete %d\r\n", deletes)
	fmt.Fprintf(&out, "STAT curr_items %d\r\n", s.Len())
	out.WriteString("END\r\n")
	return out.Bytes()
}

// ParseGetResponse extracts the first value from a "get" response.
func ParseGetResponse(resp []byte) ([]byte, bool) {
	if !bytes.HasPrefix(resp, []byte("VALUE ")) {
		return nil, false
	}
	header, rest, ok := bytes.Cut(resp, []byte("\r\n"))
	if !ok {
		return nil, false
	}
	fields := strings.Fields(string(header))
	if len(fields) != 4 {
		return nil, false
	}
	n, err := strconv.Atoi(fields[3])
	if err != nil || n < 0 || len(rest) < n {
		return nil, false
	}
	return rest[:n], true
}

// BuildSet formats a set command.
func BuildSet(key string, flags uint32, value []byte) []byte {
	var out bytes.Buffer
	fmt.Fprintf(&out, "set %s %d 0 %d\r\n", key, flags, len(value))
	out.Write(value)
	out.WriteString("\r\n")
	return out.Bytes()
}

// BuildGet formats a get command.
func BuildGet(key string) []byte {
	return []byte("get " + key + "\r\n")
}
