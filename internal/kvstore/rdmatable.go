package kvstore

import (
	"encoding/binary"
	"sync"
)

// Table is a fixed-geometry open-addressing hash table laid out in one
// flat byte slice — the EMEM-resident form of the store that λ-NIC can
// expose as an RDMA region. A remote client that knows the geometry
// can serve a GET with a one-sided read of the key's probe window and
// a client-side scan (Lookup), never invoking a lambda; writes and
// misses fall back to the lambda path against the authoritative Store,
// which keeps the table coherent through the mirror hook (SetMirror).
//
// Slot layout (SlotSize bytes each):
//
//	[0]     used flag (0 = empty, 1 = occupied)
//	[1]     key length
//	[2:40]  key bytes (up to slotKeyCap)
//	[40:42] value length, big endian
//	[42:]   value bytes (up to slotValCap)
//
// Keys hash with FNV-1a; collisions probe linearly for up to
// ProbeLimit slots. Entries that don't fit (oversized key/value or a
// full probe window) are simply not mirrored — a bypass reader misses
// and falls back, trading fast-path coverage for bounded geometry.
type Table struct {
	mu    sync.RWMutex
	buf   []byte
	slots int
}

// Table geometry.
const (
	SlotSize   = 128
	slotKeyCap = 38
	slotValCap = SlotSize - 42
	// ProbeLimit bounds the linear-probe window — and therefore the
	// byte range a one-sided reader must fetch.
	ProbeLimit = 8
	// DefaultSlots is the default table capacity.
	DefaultSlots = 1024
)

// NewTable builds a table with at least the given number of slots
// (rounded up to a power of two; DefaultSlots if n <= 0).
func NewTable(n int) *Table {
	if n <= 0 {
		n = DefaultSlots
	}
	slots := 1
	for slots < n {
		slots <<= 1
	}
	return &Table{buf: make([]byte, slots*SlotSize), slots: slots}
}

// Slots returns the table's slot count.
func (t *Table) Slots() int { return t.slots }

// Bytes exposes the table's backing store — the buffer to register as
// an RDMA region. One-sided readers observe whatever bytes are present
// at read-completion time, exactly like hardware.
func (t *Table) Bytes() []byte { return t.buf }

// hashKey is FNV-1a over the key bytes.
func hashKey(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// ProbeWindow returns the byte ranges a one-sided reader must fetch to
// look up key: the probe window starting at the key's home slot, split
// into two ranges when it wraps past the end of the table. bLen is 0
// when no wrap occurs.
func (t *Table) ProbeWindow(key string) (aOff, aLen, bOff, bLen int) {
	n := ProbeLimit
	if n > t.slots {
		n = t.slots
	}
	home := int(hashKey(key) % uint64(t.slots))
	aOff = home * SlotSize
	if home+n <= t.slots {
		return aOff, n * SlotSize, 0, 0
	}
	first := t.slots - home
	return aOff, first * SlotSize, 0, (n - first) * SlotSize
}

// Lookup scans a fetched probe window (one or more SlotSize-aligned
// slots, e.g. the bytes returned by an RDMA read of ProbeWindow's
// ranges) for key. The returned value aliases window.
func Lookup(window []byte, key string) ([]byte, bool) {
	if len(key) > slotKeyCap {
		return nil, false
	}
	for off := 0; off+SlotSize <= len(window); off += SlotSize {
		slot := window[off : off+SlotSize]
		if slot[0] == 0 {
			return nil, false // empty slot terminates the probe chain
		}
		klen := int(slot[1])
		if klen != len(key) || string(slot[2:2+klen]) != key {
			continue
		}
		vlen := int(binary.BigEndian.Uint16(slot[40:42]))
		if vlen > slotValCap {
			return nil, false
		}
		return slot[42 : 42+vlen], true
	}
	return nil, false
}

// Get probes the local table for key — the server-side (shared-memory)
// form of the bypass lookup. The returned value is a copy.
func (t *Table) Get(key string) ([]byte, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.find(key)
	if !ok {
		return nil, false
	}
	slot := t.buf[idx*SlotSize : (idx+1)*SlotSize]
	vlen := int(binary.BigEndian.Uint16(slot[40:42]))
	return append([]byte(nil), slot[42:42+vlen]...), true
}

// Set mirrors key=value into the table, overwriting any prior entry.
// It reports false when the entry cannot be represented (oversized key
// or value, or a full probe window) — the entry is then served only by
// the authoritative store.
func (t *Table) Set(key string, value []byte) bool {
	if len(key) == 0 || len(key) > slotKeyCap || len(value) > slotValCap {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.find(key)
	if !ok {
		idx, ok = t.findFree(key)
		if !ok {
			return false
		}
	}
	slot := t.buf[idx*SlotSize : (idx+1)*SlotSize]
	slot[0] = 1
	slot[1] = byte(len(key))
	copy(slot[2:2+slotKeyCap], key)
	binary.BigEndian.PutUint16(slot[40:42], uint16(len(value)))
	copy(slot[42:], value)
	for i := 42 + len(value); i < SlotSize; i++ {
		slot[i] = 0
	}
	return true
}

// Delete removes key's mirror entry. The slot is tombstoned as used
// with a zero key length so later probes in its chain stay reachable.
func (t *Table) Delete(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx, ok := t.find(key)
	if !ok {
		return
	}
	slot := t.buf[idx*SlotSize : (idx+1)*SlotSize]
	slot[1] = 0 // tombstone: used, matches no key
	binary.BigEndian.PutUint16(slot[40:42], 0)
}

// find locates key's slot index; t.mu must be held.
func (t *Table) find(key string) (int, bool) {
	home := int(hashKey(key) % uint64(t.slots))
	n := ProbeLimit
	if n > t.slots {
		n = t.slots
	}
	for i := 0; i < n; i++ {
		idx := (home + i) % t.slots
		slot := t.buf[idx*SlotSize : (idx+1)*SlotSize]
		if slot[0] == 0 {
			return 0, false
		}
		if klen := int(slot[1]); klen == len(key) && string(slot[2:2+klen]) == key {
			return idx, true
		}
	}
	return 0, false
}

// findFree locates the first free (empty or tombstoned) slot in key's
// probe window; t.mu must be held.
func (t *Table) findFree(key string) (int, bool) {
	home := int(hashKey(key) % uint64(t.slots))
	n := ProbeLimit
	if n > t.slots {
		n = t.slots
	}
	for i := 0; i < n; i++ {
		idx := (home + i) % t.slots
		slot := t.buf[idx*SlotSize : (idx+1)*SlotSize]
		if slot[0] == 0 || slot[1] == 0 {
			return idx, true
		}
	}
	return 0, false
}
