package dispatch

// LRU is a fixed-capacity least-recently-used set of flow keys. nicsim
// keeps one per NPU core to model warm state (match-table entries, KV
// working set, I-cache lines a flow has pulled in); live workers keep one
// per workload for the WARM% telemetry column. Not safe for concurrent
// use — nicsim is single-threaded per domain, workers wrap it in a mutex.
type LRU struct {
	cap   int
	index map[uint64]int // flow -> node index
	nodes []lruNode
	head  int // most recently used
	tail  int // least recently used
	free  int // head of free list (-1 when full)
}

type lruNode struct {
	flow       uint64
	prev, next int
}

const lruNil = -1

// NewLRU returns an LRU holding at most capacity flows (minimum 1).
func NewLRU(capacity int) *LRU {
	if capacity < 1 {
		capacity = 1
	}
	l := &LRU{
		cap:   capacity,
		index: make(map[uint64]int, capacity),
		nodes: make([]lruNode, capacity),
		head:  lruNil,
		tail:  lruNil,
	}
	for i := 0; i < capacity-1; i++ {
		l.nodes[i].next = i + 1
	}
	l.nodes[capacity-1].next = lruNil
	l.free = 0
	return l
}

// Touch records an access to flow. It returns true when the flow was
// already resident (a warm hit) and false on a cold miss; either way the
// flow ends up most-recently-used, evicting the coldest entry if needed.
func (l *LRU) Touch(flow uint64) bool {
	if i, ok := l.index[flow]; ok {
		l.unlink(i)
		l.pushFront(i)
		return true
	}
	i := l.free
	if i == lruNil {
		i = l.tail
		l.unlink(i)
		delete(l.index, l.nodes[i].flow)
	} else {
		l.free = l.nodes[i].next
	}
	l.nodes[i].flow = flow
	l.index[flow] = i
	l.pushFront(i)
	return false
}

// Len returns the number of resident flows.
func (l *LRU) Len() int { return len(l.index) }

// Contains reports residency without touching recency.
func (l *LRU) Contains(flow uint64) bool {
	_, ok := l.index[flow]
	return ok
}

func (l *LRU) unlink(i int) {
	n := l.nodes[i]
	if n.prev != lruNil {
		l.nodes[n.prev].next = n.next
	} else {
		l.head = n.next
	}
	if n.next != lruNil {
		l.nodes[n.next].prev = n.prev
	} else {
		l.tail = n.prev
	}
}

func (l *LRU) pushFront(i int) {
	l.nodes[i].prev = lruNil
	l.nodes[i].next = l.head
	if l.head != lruNil {
		l.nodes[l.head].prev = i
	}
	l.head = i
	if l.tail == lruNil {
		l.tail = i
	}
}
