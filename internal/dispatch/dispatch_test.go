package dispatch

import (
	"fmt"
	"testing"
)

func TestFlowKeyStable(t *testing.T) {
	a := FlowKey("10.0.0.1:9000", 7)
	if a != FlowKey("10.0.0.1:9000", 7) {
		t.Fatal("FlowKey not stable")
	}
	if a == FlowKey("10.0.0.1:9000", 8) {
		t.Fatal("workload not mixed into flow key")
	}
	if a == FlowKey("10.0.0.2:9000", 7) {
		t.Fatal("source not mixed into flow key")
	}
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("nic-%02d", i)
	}
	return out
}

func TestRingDeterministicAndSeedSensitive(t *testing.T) {
	m := members(8)
	r1 := NewRing(m, 42, 0)
	r2 := NewRing(m, 42, 0)
	r3 := NewRing(m, 43, 0)
	same, diff := 0, 0
	for f := uint64(0); f < 1000; f++ {
		if r1.Pick(f) != r2.Pick(f) {
			t.Fatalf("same seed, different pick for flow %d", f)
		}
		if r1.Pick(f) == r3.Pick(f) {
			same++
		} else {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical rings")
	}
	_ = same
}

func TestRingOrderIndependent(t *testing.T) {
	m := members(6)
	rev := make([]string, len(m))
	for i, s := range m {
		rev[len(m)-1-i] = s
	}
	r1 := NewRing(m, 7, 0)
	r2 := NewRing(rev, 7, 0)
	for f := uint64(0); f < 500; f++ {
		if r1.Members()[r1.Pick(f)] != r2.Members()[r2.Pick(f)] {
			t.Fatalf("member order changed placement for flow %d", f)
		}
	}
}

func TestRingSpread(t *testing.T) {
	m := members(8)
	r := NewRing(m, 1, 0)
	counts := make([]int, len(m))
	const flows = 20000
	for f := uint64(0); f < flows; f++ {
		counts[r.Pick(FlowKey(fmt.Sprintf("c%d", f), 1))]++
	}
	want := flows / len(m)
	for i, c := range counts {
		if c < want/3 || c > want*3 {
			t.Fatalf("member %d got %d of %d flows (want near %d)", i, c, flows, want)
		}
	}
}

// Removing one member must only move flows that were pinned to it.
func TestRingStabilityOnMemberRemoval(t *testing.T) {
	m := members(8)
	full := NewRing(m, 9, 0)
	without := NewRing(append(append([]string{}, m[:3]...), m[4:]...), 9, 0)
	moved := 0
	for f := uint64(0); f < 5000; f++ {
		before := full.Members()[full.Pick(f)]
		after := without.Members()[without.Pick(f)]
		if before == m[3] {
			if after == m[3] {
				t.Fatal("flow still pinned to removed member")
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d flows not pinned to the removed member moved", moved)
	}
}

func TestRingSuccessorsDistinctAndStartAtOwner(t *testing.T) {
	m := members(5)
	r := NewRing(m, 3, 0)
	for f := uint64(0); f < 200; f++ {
		succ := r.Successors(f, len(m))
		if len(succ) != len(m) {
			t.Fatalf("want %d successors, got %d", len(m), len(succ))
		}
		if succ[0] != r.Pick(f) {
			t.Fatalf("successor list does not start at owner")
		}
		seen := map[int]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatal("duplicate successor")
			}
			seen[s] = true
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 1, 0)
	if r.Pick(123) != -1 {
		t.Fatal("empty ring must return -1")
	}
	if r.Successors(123, 3) != nil {
		t.Fatal("empty ring must return nil successors")
	}
}

func TestSketchElephantsFloat(t *testing.T) {
	s := NewSketch(64)
	for round := 0; round < 10; round++ {
		for i := 0; i < 100; i++ {
			s.Observe(1) // elephant
		}
		s.Observe(uint64(1000 + round)) // a different mouse each round
		s.Advance()
	}
	top := s.TopK(1)
	if len(top) != 1 || top[0].Flow != 1 {
		t.Fatalf("elephant not on top: %+v", top)
	}
	if s.Rate(1) == 0 {
		t.Fatal("elephant decayed to zero despite sustained traffic")
	}
}

func TestSketchDecayReclaims(t *testing.T) {
	s := NewSketch(8)
	s.Observe(5)
	for i := 0; i < 4; i++ {
		s.Advance()
	}
	if s.Flows() != 0 {
		t.Fatalf("one-shot flow not reclaimed, %d flows live", s.Flows())
	}
}

func TestSketchBoundedNoElephantChurn(t *testing.T) {
	s := NewSketch(4)
	for i := 0; i < 100; i++ {
		s.Observe(1)
		s.Observe(2)
		s.Observe(3)
		s.Observe(4)
	}
	// Table is full of warm flows; a newcomer must not evict them.
	s.Observe(99)
	if s.Rate(99) != 0 {
		t.Fatal("newcomer evicted a warm flow")
	}
	if s.Flows() != 4 {
		t.Fatalf("want 4 flows, got %d", s.Flows())
	}
	if s.Rate(1) == 0 || s.Rate(4) == 0 {
		t.Fatal("warm flow lost")
	}
}

func TestSketchTopKDeterministicOrder(t *testing.T) {
	s := NewSketch(16)
	for f := uint64(1); f <= 5; f++ {
		for i := uint64(0); i < f*10; i++ {
			s.Observe(f)
		}
	}
	top := s.TopK(3)
	if len(top) != 3 || top[0].Flow != 5 || top[1].Flow != 4 || top[2].Flow != 3 {
		t.Fatalf("unexpected top-k: %+v", top)
	}
}

func TestPlanMigratesElephantsFromHotWorker(t *testing.T) {
	loads := []Load{{"a", 100}, {"b", 10}, {"c", 10}}
	elephants := []HeavyFlow{{Flow: 1, Rate: 50}, {Flow: 2, Rate: 40}}
	owner := func(f uint64) string { return "a" }
	plan := Plan(loads, elephants, owner, 1.5)
	if len(plan) == 0 {
		t.Fatal("expected migrations off the hot worker")
	}
	for _, mig := range plan {
		if mig.From != "a" {
			t.Fatalf("migrated from non-hot worker: %+v", mig)
		}
		if mig.To == "a" {
			t.Fatalf("migration back onto hot worker: %+v", mig)
		}
	}
	// Determinism: same inputs, same plan.
	again := Plan([]Load{{"a", 100}, {"b", 10}, {"c", 10}}, elephants, owner, 1.5)
	if len(again) != len(plan) {
		t.Fatalf("plan not deterministic: %d vs %d", len(plan), len(again))
	}
	for i := range plan {
		if plan[i] != again[i] {
			t.Fatalf("plan not deterministic at %d: %+v vs %+v", i, plan[i], again[i])
		}
	}
}

func TestPlanBalancedFleetNoMigrations(t *testing.T) {
	loads := []Load{{"a", 10}, {"b", 11}, {"c", 9}}
	elephants := []HeavyFlow{{Flow: 1, Rate: 50}}
	if p := Plan(loads, elephants, func(uint64) string { return "b" }, 2.0); p != nil {
		t.Fatalf("balanced fleet produced migrations: %+v", p)
	}
}

func TestPlanMiceStayPinned(t *testing.T) {
	// Elephant list only contains flow 1; flow 2 (a mouse) must not appear.
	loads := []Load{{"a", 100}, {"b", 1}}
	plan := Plan(loads, []HeavyFlow{{Flow: 1, Rate: 90}}, func(uint64) string { return "a" }, 1.2)
	for _, mig := range plan {
		if mig.Flow != 1 {
			t.Fatalf("non-elephant migrated: %+v", mig)
		}
	}
}

func TestLRUWarmHitsAndEviction(t *testing.T) {
	l := NewLRU(2)
	if l.Touch(1) {
		t.Fatal("first touch must be a miss")
	}
	if !l.Touch(1) {
		t.Fatal("second touch must be a hit")
	}
	l.Touch(2)
	l.Touch(1) // refresh 1; 2 is now coldest
	l.Touch(3) // evicts 2
	if l.Contains(2) {
		t.Fatal("coldest entry not evicted")
	}
	if !l.Contains(1) || !l.Contains(3) {
		t.Fatal("warm entries lost")
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
}

func TestLRUSingleSlot(t *testing.T) {
	l := NewLRU(1)
	l.Touch(1)
	if !l.Touch(1) {
		t.Fatal("resident flow missed")
	}
	if l.Touch(2) {
		t.Fatal("evicting touch reported as hit")
	}
	if l.Contains(1) {
		t.Fatal("evicted flow still resident")
	}
}
