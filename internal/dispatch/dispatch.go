// Package dispatch implements flow-affine, load-aware request placement:
// a seeded consistent-hash ring for flow-to-worker pinning, a sliding-window
// flow-rate sketch for elephant detection, a deterministic migration planner,
// and a small fixed-capacity LRU used to model per-core warm state.
//
// λ-NIC's gateway originally sprayed requests round-robin, destroying any
// warm state (match-table entries, KV working set, I-cache) a worker had
// built for a client. The oRSS-NIC direction is flow-to-core affinity plus
// migration of only the heavy flows: mice stay pinned so locality is
// preserved, elephants move so no worker melts. Everything here is
// deterministic under a fixed seed so simulation runs are bit-identical.
package dispatch

import "sort"

// fnv1a64 constants (FNV-1a, 64 bit).
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// FlowKey derives a stable 64-bit flow identity from a client source
// address and a workload ID. The same (source, workload) pair always maps
// to the same key, on every node, with no seed: flow identity is a property
// of the traffic, not of the dispatcher instance.
func FlowKey(source string, workload uint32) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(source); i++ {
		h ^= uint64(source[i])
		h *= fnvPrime64
	}
	// Fold the workload in byte by byte so adjacent IDs diverge fully.
	for shift := 0; shift < 32; shift += 8 {
		h ^= uint64((workload >> shift) & 0xff)
		h *= fnvPrime64
	}
	return h
}

// mix64 finalizes a 64-bit hash (splitmix64 finalizer). Used to place
// virtual nodes on the ring and to turn flow keys into ring points.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// DefaultVirtualNodes is the per-member vnode count used when a Ring is
// built with vnodes <= 0. 64 keeps the load spread within a few percent of
// even for double-digit member counts while keeping ring rebuilds cheap.
const DefaultVirtualNodes = 64

// Ring is an immutable seeded consistent-hash ring. Build one per member
// set; route-table writers rebuild it inside their copy-on-write snapshot
// swap, so readers never observe a half-updated ring.
type Ring struct {
	points  []uint64 // sorted vnode hash points
	owners  []int    // owners[i] = member index owning points[i]
	members []string
}

// NewRing builds a ring over members with the given seed and per-member
// vnode count (vnodes <= 0 selects DefaultVirtualNodes). Member order does
// not matter: placement depends only on the member names and the seed, so
// adding or removing one member leaves unrelated flows pinned where they
// were. An empty member list yields a ring whose Pick returns -1.
func NewRing(members []string, seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{members: append([]string(nil), members...)}
	if len(members) == 0 {
		return r
	}
	type point struct {
		hash  uint64
		owner int
	}
	pts := make([]point, 0, len(members)*vnodes)
	for i, m := range members {
		h := uint64(fnvOffset64)
		for j := 0; j < len(m); j++ {
			h ^= uint64(m[j])
			h *= fnvPrime64
		}
		h ^= seed
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{mix64(h + uint64(v)*0x9e3779b97f4a7c15), i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].hash != pts[b].hash {
			return pts[a].hash < pts[b].hash
		}
		// Tie-break on owner so equal hashes (vanishingly rare) are
		// still deterministic regardless of sort internals.
		return pts[a].owner < pts[b].owner
	})
	r.points = make([]uint64, len(pts))
	r.owners = make([]int, len(pts))
	for i, p := range pts {
		r.points[i] = p.hash
		r.owners[i] = p.owner
	}
	return r
}

// Members returns the member list the ring was built over.
func (r *Ring) Members() []string { return r.members }

// Pick returns the index (into the member list) owning the given flow,
// or -1 if the ring is empty.
func (r *Ring) Pick(flow uint64) int {
	if len(r.points) == 0 {
		return -1
	}
	return r.owners[r.search(mix64(flow))]
}

// Successors returns up to max distinct member indices in ring order
// starting at the flow's owner. It is the deterministic failover order:
// if the owner is down, the flow re-pins to the next live successor, the
// same one every time, on every gateway.
func (r *Ring) Successors(flow uint64, max int) []int {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	if max > len(r.members) {
		max = len(r.members)
	}
	out := make([]int, 0, max)
	seen := make(map[int]bool, max)
	start := r.search(mix64(flow))
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		o := r.owners[(start+i)%len(r.points)]
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// search returns the index of the first ring point >= h, wrapping to 0.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
