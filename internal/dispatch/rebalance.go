package dispatch

import "sort"

// Load is one worker's smoothed load as seen by the rebalancer (healthd
// EWMA in deployments, in-flight counts in the standalone gateway).
type Load struct {
	Worker string
	Load   float64
}

// Migration moves one elephant flow from an overloaded worker to an
// underloaded one. Mice are never migrated.
type Migration struct {
	Flow uint64
	From string
	To   string
}

// Plan decides which elephant flows to migrate. A worker is overloaded
// when its load exceeds ratio × the mean load; elephants currently pinned
// to overloaded workers are moved, heaviest first, onto the least-loaded
// worker, with virtual loads updated after each move so a single cold
// worker does not absorb every elephant. owner maps a flow to the worker
// it is currently pinned to (ring pick + any standing migrations).
//
// The plan is deterministic: loads are sorted by (load, name), elephants
// arrive sorted from Sketch.TopK, and each decision depends only on the
// inputs. Returns nil when the fleet is balanced or has fewer than two
// workers.
func Plan(loads []Load, elephants []HeavyFlow, owner func(flow uint64) string, ratio float64) []Migration {
	if len(loads) < 2 || len(elephants) == 0 || owner == nil {
		return nil
	}
	if ratio < 1 {
		ratio = 1
	}
	byName := make(map[string]*Load, len(loads))
	sorted := make([]*Load, 0, len(loads))
	var total float64
	for i := range loads {
		l := &loads[i]
		byName[l.Worker] = l
		sorted = append(sorted, l)
		total += l.Load
	}
	mean := total / float64(len(loads))
	if mean <= 0 {
		return nil
	}
	high := mean * ratio

	// Per-elephant load estimate: split the source worker's excess over
	// the mean across its elephants would require attribution we don't
	// have, so use the mean flow contribution of the heavy set. Rates are
	// sketch counts, not load units; what matters is that moving an
	// elephant debits the source and credits the target consistently.
	var rateSum float64
	for _, e := range elephants {
		rateSum += float64(e.Rate)
	}
	if rateSum <= 0 {
		return nil
	}
	// Scale sketch rate to load units so virtual updates are sane:
	// assume the tracked elephants collectively account for the total load.
	loadPerRate := total / rateSum

	leastLoaded := func() *Load {
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].Load != sorted[b].Load {
				return sorted[a].Load < sorted[b].Load
			}
			return sorted[a].Worker < sorted[b].Worker
		})
		return sorted[0]
	}

	var plan []Migration
	for _, e := range elephants {
		src, ok := byName[owner(e.Flow)]
		if !ok || src.Load <= high {
			continue
		}
		dst := leastLoaded()
		if dst.Worker == src.Worker || dst.Load >= src.Load {
			continue
		}
		delta := float64(e.Rate) * loadPerRate
		if delta > src.Load-mean {
			delta = src.Load - mean // don't overshoot below the mean
		}
		plan = append(plan, Migration{Flow: e.Flow, From: src.Worker, To: dst.Worker})
		src.Load -= delta
		dst.Load += delta
	}
	return plan
}
