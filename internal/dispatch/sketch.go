package dispatch

import "sort"

// Sketch tracks per-flow request rates over a sliding window using a fixed
// slot table with exponential decay: Advance() halves every count, so a
// flow's score is a geometrically-weighted sum of its recent activity.
// Elephants (sustained heavy flows) float to the top; one-shot mice decay
// to zero within a few windows. The table is bounded: when full, a new
// flow evicts the coldest slot only if the slot has decayed below the
// eviction floor, so short bursts cannot churn out established elephants.
//
// Sketch is not safe for concurrent use; callers wrap it in their own
// serialization (the gateway rebalancer owns one per workload).
type Sketch struct {
	slots map[uint64]uint64 // flow -> decayed count
	cap   int
}

// evictFloor: slots at or below this decayed count may be evicted to make
// room for a new flow. 2 means "no hits in the last window and at most a
// couple before that".
const evictFloor = 2

// NewSketch returns a sketch bounded to capacity flows (minimum 1).
func NewSketch(capacity int) *Sketch {
	if capacity < 1 {
		capacity = 1
	}
	return &Sketch{slots: make(map[uint64]uint64, capacity), cap: capacity}
}

// Observe records one request for the flow.
func (s *Sketch) Observe(flow uint64) {
	if c, ok := s.slots[flow]; ok {
		s.slots[flow] = c + 1
		return
	}
	if len(s.slots) >= s.cap {
		// Evict the coldest slot, but only if it is genuinely cold.
		var coldFlow uint64
		coldCount := uint64(1<<64 - 1)
		for f, c := range s.slots {
			if c < coldCount || (c == coldCount && f < coldFlow) {
				coldFlow, coldCount = f, c
			}
		}
		if coldCount > evictFloor {
			return // table full of warm flows; drop the newcomer
		}
		delete(s.slots, coldFlow)
	}
	s.slots[flow] = 1
}

// Advance rolls the window: every count is halved and zeroed slots are
// reclaimed. Call it once per rebalance tick.
func (s *Sketch) Advance() {
	for f, c := range s.slots {
		c >>= 1
		if c == 0 {
			delete(s.slots, f)
		} else {
			s.slots[f] = c
		}
	}
}

// Flows returns the number of tracked flows.
func (s *Sketch) Flows() int { return len(s.slots) }

// Rate returns the decayed count for a flow (0 if untracked).
func (s *Sketch) Rate(flow uint64) uint64 { return s.slots[flow] }

// HeavyFlow is one entry of TopK.
type HeavyFlow struct {
	Flow uint64
	Rate uint64
}

// TopK returns the k heaviest flows, heaviest first. Ties break on the
// flow key so the order is deterministic.
func (s *Sketch) TopK(k int) []HeavyFlow {
	if k <= 0 {
		return nil
	}
	all := make([]HeavyFlow, 0, len(s.slots))
	for f, c := range s.slots {
		all = append(all, HeavyFlow{Flow: f, Rate: c})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Rate != all[b].Rate {
			return all[a].Rate > all[b].Rate
		}
		return all[a].Flow < all[b].Flow
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}
