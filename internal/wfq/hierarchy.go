package wfq

import "fmt"

// Hierarchical is two-level weighted fair queuing for multi-tenant
// NICs: an outer WFQ across tenants (weighted by tenant class) picks
// which tenant is served next, then that tenant's inner WFQ across its
// lambda flows picks the request. Inter-tenant fairness is therefore
// governed only by tenant weights — a tenant flooding many lambda
// flows gains no extra share, which is the isolation property flat
// per-lambda WFQ lacks.
//
// The outer queue holds one token per queued item, stamped with the
// same size, so outer virtual time advances with the tenant's actual
// service demand. Not safe for concurrent use.
type Hierarchical struct {
	outer  *Scheduler            // flows = tenant IDs, items = tokens
	inner  map[uint32]*Scheduler // tenant ID -> per-lambda queue
	flowW  float64               // default weight for inner lambda flows
	tokens []*Item               // free list of outer token items
}

// NewHierarchical builds a hierarchical scheduler. defaultTenantWeight
// applies to tenants without an explicit SetTenantWeight; flowWeight
// is the default weight for lambda flows inside each tenant.
func NewHierarchical(defaultTenantWeight, flowWeight float64) (*Hierarchical, error) {
	outer, err := New(defaultTenantWeight)
	if err != nil {
		return nil, err
	}
	if flowWeight <= 0 {
		return nil, fmt.Errorf("wfq: flow weight %v must be positive", flowWeight)
	}
	return &Hierarchical{
		outer: outer,
		inner: make(map[uint32]*Scheduler),
		flowW: flowWeight,
	}, nil
}

// SetTenantWeight assigns a tenant's outer-queue weight.
func (h *Hierarchical) SetTenantWeight(tenant uint32, w float64) error {
	return h.outer.SetWeight(tenant, w)
}

// Enqueue queues an item (Flow = lambda ID) under the given tenant.
func (h *Hierarchical) Enqueue(tenant uint32, it *Item) {
	q, ok := h.inner[tenant]
	if !ok {
		q, _ = New(h.flowW)
		h.inner[tenant] = q
	}
	q.Enqueue(it)
	// Mirror the demand into the outer queue as a token so tenant
	// virtual time advances by served bytes, not served packets.
	var tok *Item
	if n := len(h.tokens); n > 0 {
		tok = h.tokens[n-1]
		h.tokens = h.tokens[:n-1]
	} else {
		tok = &Item{}
	}
	tok.Flow = tenant
	tok.Size = it.Size
	tok.Payload = nil
	h.outer.Enqueue(tok)
}

// Dequeue serves the next item: the outer queue picks the tenant, the
// tenant's inner queue picks the lambda request. Returns nil when
// empty.
func (h *Hierarchical) Dequeue() *Item {
	tok := h.outer.Dequeue()
	if tok == nil {
		return nil
	}
	tenant := tok.Flow
	h.tokens = append(h.tokens, tok)
	q := h.inner[tenant]
	if q == nil {
		// Invariant violated: a token always has a backing item.
		panic(fmt.Sprintf("wfq: outer token for tenant %d with no inner queue", tenant))
	}
	it := q.Dequeue()
	if it == nil {
		panic(fmt.Sprintf("wfq: outer token for tenant %d with empty inner queue", tenant))
	}
	return it
}

// Len returns the total number of queued items.
func (h *Hierarchical) Len() int { return h.outer.Len() }

// TenantBacklog returns the number of queued items for one tenant.
func (h *Hierarchical) TenantBacklog(tenant uint32) int {
	if q, ok := h.inner[tenant]; ok {
		return q.Len()
	}
	return 0
}

// RemoveTenant forgets an idle tenant's scheduling state (outer
// weight/finish entries and the inner queue). It refuses while the
// tenant still has queued items, reporting whether removal happened.
func (h *Hierarchical) RemoveTenant(tenant uint32) bool {
	if h.TenantBacklog(tenant) > 0 {
		return false
	}
	h.outer.RemoveFlow(tenant)
	delete(h.inner, tenant)
	return true
}
