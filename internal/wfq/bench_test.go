package wfq

import "testing"

func BenchmarkEnqueueDequeue(b *testing.B) {
	s, err := New(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Enqueue(&Item{Flow: uint32(i % 8), Size: 100})
		if s.Len() > 1024 {
			for s.Dequeue() != nil {
			}
		}
	}
}

func BenchmarkSaturated8Flows(b *testing.B) {
	s, err := New(1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		s.Enqueue(&Item{Flow: uint32(i % 8), Size: 100})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := s.Dequeue()
		if it == nil {
			b.Fatal("empty")
		}
		s.Enqueue(&Item{Flow: it.Flow, Size: 100})
	}
}
