package wfq

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, w float64) *Scheduler {
	t.Helper()
	s, err := New(w)
	if err != nil {
		t.Fatalf("New(%v): %v", w, err)
	}
	return s
}

func TestNewRejectsNonPositiveWeight(t *testing.T) {
	for _, w := range []float64{0, -1} {
		if _, err := New(w); err == nil {
			t.Errorf("New(%v) succeeded, want error", w)
		}
	}
}

func TestSetWeightRejectsNonPositive(t *testing.T) {
	s := mustNew(t, 1)
	if err := s.SetWeight(1, 0); err == nil {
		t.Error("SetWeight(1, 0) succeeded, want error")
	}
}

func TestEmptyDequeue(t *testing.T) {
	s := mustNew(t, 1)
	if got := s.Dequeue(); got != nil {
		t.Errorf("Dequeue on empty = %v, want nil", got)
	}
}

func TestFIFOWithinFlow(t *testing.T) {
	s := mustNew(t, 1)
	for i := 0; i < 5; i++ {
		s.Enqueue(&Item{Flow: 1, Size: 10, Payload: i})
	}
	for i := 0; i < 5; i++ {
		it := s.Dequeue()
		if it == nil || it.Payload.(int) != i {
			t.Fatalf("item %d out of order: %+v", i, it)
		}
	}
}

func TestEqualWeightsInterleave(t *testing.T) {
	// Two backlogged flows with equal weights and equal sizes must be
	// served alternately.
	s := mustNew(t, 1)
	for i := 0; i < 4; i++ {
		s.Enqueue(&Item{Flow: 1, Size: 100, Payload: "a"})
		s.Enqueue(&Item{Flow: 2, Size: 100, Payload: "b"})
	}
	var order []string
	for it := s.Dequeue(); it != nil; it = s.Dequeue() {
		order = append(order, it.Payload.(string))
	}
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] == order[i+1] {
			t.Fatalf("flows not interleaved: %v", order)
		}
	}
}

func TestWeightedShare(t *testing.T) {
	// Flow 1 has weight 3, flow 2 weight 1: in any service window of
	// backlogged equal-size items, flow 1 should receive ~3x the
	// service.
	s := mustNew(t, 1)
	if err := s.SetWeight(1, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		s.Enqueue(&Item{Flow: 1, Size: 10})
		s.Enqueue(&Item{Flow: 2, Size: 10})
	}
	counts := map[uint32]int{}
	for i := 0; i < 200; i++ {
		it := s.Dequeue()
		counts[it.Flow]++
	}
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("service ratio = %v (counts %v), want ~3", ratio, counts)
	}
}

func TestLargePacketsPenalized(t *testing.T) {
	// With equal weights, a flow sending 10x larger items should be
	// served ~10x less often.
	s := mustNew(t, 1)
	for i := 0; i < 400; i++ {
		s.Enqueue(&Item{Flow: 1, Size: 100})
		s.Enqueue(&Item{Flow: 2, Size: 10})
	}
	counts := map[uint32]int{}
	for i := 0; i < 220; i++ {
		counts[s.Dequeue().Flow]++
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 8 || ratio > 12 {
		t.Errorf("service ratio = %v (counts %v), want ~10", ratio, counts)
	}
}

func TestIdleFlowDoesNotBankCredit(t *testing.T) {
	// A flow that was idle while another was served must not be able to
	// monopolize the scheduler afterwards: its start time is the current
	// virtual time, not its stale last finish.
	s := mustNew(t, 1)
	for i := 0; i < 100; i++ {
		s.Enqueue(&Item{Flow: 1, Size: 10})
	}
	for i := 0; i < 100; i++ {
		s.Dequeue()
	}
	// Now flow 2 wakes up and both are backlogged.
	for i := 0; i < 50; i++ {
		s.Enqueue(&Item{Flow: 1, Size: 10})
		s.Enqueue(&Item{Flow: 2, Size: 10})
	}
	counts := map[uint32]int{}
	for i := 0; i < 40; i++ {
		counts[s.Dequeue().Flow]++
	}
	if counts[1] < 15 || counts[2] < 15 {
		t.Errorf("late-arriving flow starved: %v", counts)
	}
}

func TestZeroSizeItems(t *testing.T) {
	s := mustNew(t, 1)
	s.Enqueue(&Item{Flow: 1, Size: 0})
	s.Enqueue(&Item{Flow: 1, Size: 0})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if s.Dequeue() == nil || s.Dequeue() == nil {
		t.Fatal("zero-size items not dequeued")
	}
}

func TestBacklog(t *testing.T) {
	s := mustNew(t, 1)
	s.Enqueue(&Item{Flow: 1, Size: 1})
	s.Enqueue(&Item{Flow: 1, Size: 1})
	s.Enqueue(&Item{Flow: 2, Size: 1})
	if got := s.Backlog(1); got != 2 {
		t.Errorf("Backlog(1) = %d, want 2", got)
	}
	if got := s.Backlog(9); got != 0 {
		t.Errorf("Backlog(9) = %d, want 0", got)
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: everything enqueued is dequeued exactly once, in
	// nondecreasing virtual-finish order.
	f := func(flows []uint8, sizes []uint8) bool {
		s, err := New(1)
		if err != nil {
			return false
		}
		n := len(flows)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			s.Enqueue(&Item{Flow: uint32(flows[i] % 4), Size: uint64(sizes[i]), Payload: i})
		}
		seen := make(map[int]bool, n)
		prev := -1.0
		for it := s.Dequeue(); it != nil; it = s.Dequeue() {
			idx := it.Payload.(int)
			if seen[idx] {
				return false
			}
			seen[idx] = true
			if it.finish < prev {
				return false
			}
			prev = it.finish
		}
		return len(seen) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
