package wfq

import "testing"

func TestRemoveFlowForgetsState(t *testing.T) {
	s := mustNew(t, 1)
	if err := s.SetWeight(1, 8); err != nil {
		t.Fatal(err)
	}
	// Drain flow 1 far into virtual time via a competitor.
	s.Enqueue(&Item{Flow: 1, Size: 1000})
	s.Enqueue(&Item{Flow: 2, Size: 1000})
	for s.Dequeue() != nil {
	}
	if len(s.weights) != 1 || len(s.lastFinish) != 2 {
		t.Fatalf("precondition: weights=%d lastFinish=%d", len(s.weights), len(s.lastFinish))
	}
	s.RemoveFlow(1)
	if _, ok := s.weights[1]; ok {
		t.Fatal("RemoveFlow left the weight entry")
	}
	if _, ok := s.lastFinish[1]; ok {
		t.Fatal("RemoveFlow left the lastFinish entry")
	}
}

func TestReaddedFlowRestartsFromVirtualTime(t *testing.T) {
	s := mustNew(t, 1)
	// Serve flow 1 alone so its lastFinish (and virtual time) reach 100.
	s.Enqueue(&Item{Flow: 1, Size: 100})
	s.Dequeue()
	if s.virtual != 100 {
		t.Fatalf("virtual = %v, want 100", s.virtual)
	}
	s.RemoveFlow(1)

	// Advance virtual time further with another flow.
	s.Enqueue(&Item{Flow: 2, Size: 150})
	s.Dequeue() // virtual = 250

	// Re-added flow 1 must stamp from current virtual time (250), not
	// its stale lastFinish (100): a fresh item finishes at 250+50.
	it := &Item{Flow: 1, Size: 50}
	s.Enqueue(it)
	if it.finish != 300 {
		t.Fatalf("re-added flow finish = %v, want 300 (virtual 250 + 50)", it.finish)
	}

	// Without RemoveFlow a stale lastFinish below virtual time is also
	// clamped, but a lastFinish *above* virtual would not be: prove the
	// removal path by comparison. Keep flow 3's lastFinish ahead of
	// virtual, then show it does NOT restart.
	s.Enqueue(&Item{Flow: 3, Size: 1000})
	ahead := &Item{Flow: 3, Size: 10}
	s.Enqueue(ahead) // stamps from flow 3's pending finish, not virtual
	if ahead.finish <= s.virtual+10 {
		t.Fatalf("backlogged flow stamped from virtual time: finish=%v virtual=%v", ahead.finish, s.virtual)
	}
}

func mustHier(t *testing.T, tenantW, flowW float64) *Hierarchical {
	t.Helper()
	h, err := NewHierarchical(tenantW, flowW)
	if err != nil {
		t.Fatalf("NewHierarchical(%v, %v): %v", tenantW, flowW, err)
	}
	return h
}

func TestHierarchicalRejectsBadWeights(t *testing.T) {
	if _, err := NewHierarchical(0, 1); err == nil {
		t.Fatal("zero tenant weight accepted")
	}
	if _, err := NewHierarchical(1, 0); err == nil {
		t.Fatal("zero flow weight accepted")
	}
}

func TestHierarchicalEmptyDequeue(t *testing.T) {
	h := mustHier(t, 1, 1)
	if it := h.Dequeue(); it != nil {
		t.Fatalf("Dequeue on empty = %+v, want nil", it)
	}
}

// A tenant fanning out over many lambda flows must not gain share over
// a tenant with one flow — the outer queue arbitrates purely by tenant
// weight. Flat WFQ keyed by lambda would give the fan-out tenant 4/5
// of the service; hierarchical WFQ keeps it at 1/2.
func TestHierarchicalIsolatesFanOut(t *testing.T) {
	h := mustHier(t, 1, 1)
	const perFlow = 8
	for i := 0; i < perFlow; i++ {
		for flow := uint32(10); flow < 14; flow++ { // tenant 1: four flows
			h.Enqueue(1, &Item{Flow: flow, Size: 100, Payload: "fan"})
		}
		h.Enqueue(2, &Item{Flow: 20, Size: 100, Payload: "solo"})
	}
	// First 2*perFlow dequeues: equal split despite the 4:1 flow count.
	counts := map[string]int{}
	for i := 0; i < 2*perFlow; i++ {
		it := h.Dequeue()
		if it == nil {
			t.Fatal("early empty")
		}
		counts[it.Payload.(string)]++
	}
	if counts["solo"] != perFlow || counts["fan"] != perFlow {
		t.Fatalf("service split = %v, want equal %d/%d", counts, perFlow, perFlow)
	}
	// Within the fan-out tenant the four flows share equally.
	rest := map[uint32]int{}
	for it := h.Dequeue(); it != nil; it = h.Dequeue() {
		rest[it.Flow]++
	}
	for flow := uint32(10); flow < 14; flow++ {
		// Each flow had perFlow queued and perFlow/4 served above.
		if rest[flow] != perFlow-perFlow/4 {
			t.Fatalf("inner flow %d remaining = %d, counts=%v", flow, rest[flow], rest)
		}
	}
}

func TestHierarchicalTenantWeights(t *testing.T) {
	h := mustHier(t, 1, 1)
	if err := h.SetTenantWeight(1, 3); err != nil {
		t.Fatal(err)
	}
	// Both tenants backlogged with equal-size items: the weight-3
	// tenant gets ~3/4 of the first 16 services.
	for i := 0; i < 30; i++ {
		h.Enqueue(1, &Item{Flow: 10, Size: 100, Payload: "hi"})
		h.Enqueue(2, &Item{Flow: 20, Size: 100, Payload: "lo"})
	}
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		counts[h.Dequeue().Payload.(string)]++
	}
	if counts["hi"] != 12 || counts["lo"] != 4 {
		t.Fatalf("3:1 weighted split over 16 = %v, want 12/4", counts)
	}
}

func TestHierarchicalLenAndBacklog(t *testing.T) {
	h := mustHier(t, 1, 1)
	h.Enqueue(1, &Item{Flow: 10, Size: 1})
	h.Enqueue(1, &Item{Flow: 11, Size: 1})
	h.Enqueue(2, &Item{Flow: 20, Size: 1})
	if h.Len() != 3 {
		t.Fatalf("Len = %d, want 3", h.Len())
	}
	if h.TenantBacklog(1) != 2 || h.TenantBacklog(2) != 1 || h.TenantBacklog(9) != 0 {
		t.Fatalf("backlogs = %d/%d/%d", h.TenantBacklog(1), h.TenantBacklog(2), h.TenantBacklog(9))
	}
	for h.Dequeue() != nil {
	}
	if h.Len() != 0 || h.TenantBacklog(1) != 0 {
		t.Fatal("drain left state")
	}
}

func TestHierarchicalRemoveTenant(t *testing.T) {
	h := mustHier(t, 1, 1)
	_ = h.SetTenantWeight(1, 5)
	h.Enqueue(1, &Item{Flow: 10, Size: 1})
	if h.RemoveTenant(1) {
		t.Fatal("removed a tenant with backlog")
	}
	h.Dequeue()
	if !h.RemoveTenant(1) {
		t.Fatal("failed to remove idle tenant")
	}
	if _, ok := h.outer.weights[1]; ok {
		t.Fatal("outer weight entry leaked")
	}
	if _, ok := h.inner[1]; ok {
		t.Fatal("inner queue leaked")
	}
	// Re-adding after removal restarts cleanly at default weight.
	h.Enqueue(1, &Item{Flow: 10, Size: 1, Payload: "x"})
	if it := h.Dequeue(); it == nil || it.Payload.(string) != "x" {
		t.Fatalf("re-added tenant dequeue = %+v", it)
	}
}

// Tokens are recycled: a long enqueue/dequeue churn must not grow the
// token free list beyond the high-water backlog.
func TestHierarchicalTokenReuse(t *testing.T) {
	h := mustHier(t, 1, 1)
	for round := 0; round < 100; round++ {
		for i := 0; i < 4; i++ {
			h.Enqueue(uint32(i%2), &Item{Flow: uint32(i), Size: 64})
		}
		for h.Dequeue() != nil {
		}
	}
	if len(h.tokens) > 4 {
		t.Fatalf("token free list grew to %d, want <= high-water 4", len(h.tokens))
	}
}
