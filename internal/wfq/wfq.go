// Package wfq implements weighted fair queuing, the policy λ-NIC uses
// to route requests between lambda threads (paper §4.2.1, D1).
//
// The implementation follows the classic virtual-finish-time WFQ
// formulation (Parekh & Gallager [84] in the paper's references): each
// flow f has a weight w_f; a packet of size L arriving on f is stamped
// with finish time F = max(V, F_prev(f)) + L/w_f where V is the current
// virtual time; packets are served in increasing finish-time order. With
// equal weights this degrades to fair round-robin; with unequal weights
// each backlogged flow receives service proportional to its weight.
package wfq

import (
	"container/heap"
	"fmt"
)

// Item is a queued unit of work — in λ-NIC, one request destined for a
// lambda.
type Item struct {
	// Flow identifies the queue (lambda ID in λ-NIC).
	Flow uint32
	// Size is the service demand used for fairness accounting; any
	// consistent unit works (bytes, estimated cycles).
	Size uint64
	// Payload is the opaque work item.
	Payload any

	finish float64
	seq    uint64
	index  int
}

// Scheduler is a weighted fair queue. The zero value is not usable;
// construct with New. Scheduler is not safe for concurrent use.
type Scheduler struct {
	weights    map[uint32]float64
	lastFinish map[uint32]float64
	virtual    float64
	seq        uint64
	heap       itemHeap
	defaultW   float64
}

// New returns a scheduler whose flows default to the given weight.
// defaultWeight must be positive.
func New(defaultWeight float64) (*Scheduler, error) {
	if defaultWeight <= 0 {
		return nil, fmt.Errorf("wfq: default weight %v must be positive", defaultWeight)
	}
	return &Scheduler{
		weights:    make(map[uint32]float64),
		lastFinish: make(map[uint32]float64),
		defaultW:   defaultWeight,
	}, nil
}

// SetWeight assigns a weight to a flow. Weights must be positive.
func (s *Scheduler) SetWeight(flow uint32, w float64) error {
	if w <= 0 {
		return fmt.Errorf("wfq: weight %v for flow %d must be positive", w, flow)
	}
	s.weights[flow] = w
	return nil
}

// RemoveFlow forgets a flow's weight and finish-time state so the
// maps don't leak as tenants or lambdas churn. Queued items of the
// flow are unaffected; if the flow is re-added later it restarts from
// the current virtual time like a brand-new flow.
func (s *Scheduler) RemoveFlow(flow uint32) {
	delete(s.weights, flow)
	delete(s.lastFinish, flow)
}

func (s *Scheduler) weight(flow uint32) float64 {
	if w, ok := s.weights[flow]; ok {
		return w
	}
	return s.defaultW
}

// Enqueue adds an item, stamping its virtual finish time.
func (s *Scheduler) Enqueue(it *Item) {
	start := s.virtual
	if last, ok := s.lastFinish[it.Flow]; ok && last > start {
		start = last
	}
	size := it.Size
	if size == 0 {
		size = 1 // zero-size items still need a strictly increasing stamp
	}
	it.finish = start + float64(size)/s.weight(it.Flow)
	it.seq = s.seq
	s.seq++
	s.lastFinish[it.Flow] = it.finish
	heap.Push(&s.heap, it)
}

// Dequeue removes and returns the item with the smallest virtual finish
// time, or nil if the scheduler is empty. Virtual time advances to the
// served item's finish time.
func (s *Scheduler) Dequeue() *Item {
	if s.heap.Len() == 0 {
		return nil
	}
	it := heap.Pop(&s.heap).(*Item)
	if it.finish > s.virtual {
		s.virtual = it.finish
	}
	return it
}

// Len returns the number of queued items.
func (s *Scheduler) Len() int { return s.heap.Len() }

// Backlog returns the number of queued items for one flow. It is O(n)
// and intended for tests and diagnostics.
func (s *Scheduler) Backlog(flow uint32) int {
	n := 0
	for _, it := range s.heap {
		if it.Flow == flow {
			n++
		}
	}
	return n
}

type itemHeap []*Item

func (h itemHeap) Len() int { return len(h) }

func (h itemHeap) Less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}

func (h itemHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *itemHeap) Push(x any) {
	it := x.(*Item)
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *itemHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}
