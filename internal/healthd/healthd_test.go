package healthd

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

const iv = 10 * time.Millisecond

func cfg() Config {
	return Config{Interval: iv, SuspectAfter: 2, EvictAfter: 4}
}

// beat feeds n regular heartbeats starting at t=0 and returns the time
// of the last one.
func beat(d *Detector, worker string, n int) time.Duration {
	var last time.Duration
	for i := 0; i < n; i++ {
		last = time.Duration(i) * iv
		d.Observe(Heartbeat{Worker: worker, Seq: uint64(i + 1)}, last)
	}
	return last
}

func TestHeartbeatCodec(t *testing.T) {
	hb := Heartbeat{Worker: "w1", Seq: 42, Load: 7}
	got, err := DecodeHeartbeat(hb.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != hb {
		t.Fatalf("round trip = %+v, want %+v", got, hb)
	}
	if _, err := DecodeHeartbeat("not json"); err == nil {
		t.Fatal("bad heartbeat decoded")
	}
}

// TestDetectionWithinBound asserts the recovery bound from the issue:
// a silenced worker is declared Dead within EvictAfter+1 heartbeat
// intervals, with checks run once per interval.
func TestDetectionWithinBound(t *testing.T) {
	d := NewDetector(cfg())
	last := beat(d, "w1", 5)
	bound := time.Duration(d.Config().EvictAfter+1) * iv
	var died time.Duration
	for at := last; at <= last+bound; at += iv {
		for _, tr := range d.Check(at) {
			if tr.To == StatusDead {
				died = at
			}
		}
	}
	if died == 0 {
		t.Fatalf("worker not declared dead within %v of last heartbeat", bound)
	}
	if elapsed := died - last; elapsed > bound {
		t.Fatalf("death detected after %v, bound %v", elapsed, bound)
	}
}

func TestSuspectThenDeadThenRevive(t *testing.T) {
	d := NewDetector(cfg())
	last := beat(d, "w1", 3)
	if trs := d.Check(last + iv); len(trs) != 0 {
		t.Fatalf("one missed beat produced transitions %v", trs)
	}
	trs := d.Check(last + 2*iv + time.Millisecond)
	if len(trs) != 1 || trs[0].To != StatusSuspect {
		t.Fatalf("phi>2 transitions = %v, want suspect", trs)
	}
	trs = d.Check(last + 5*iv)
	if len(trs) != 1 || trs[0].From != StatusSuspect || trs[0].To != StatusDead {
		t.Fatalf("phi>4 transitions = %v, want suspect→dead", trs)
	}
	// Dead is sticky under further checks.
	if trs := d.Check(last + 10*iv); len(trs) != 0 {
		t.Fatalf("dead worker transitioned again: %v", trs)
	}
	if d.Status("w1") != StatusDead {
		t.Fatal("status not dead")
	}
	// A fresh heartbeat revives.
	tr := d.Observe(Heartbeat{Worker: "w1", Seq: 100}, last+11*iv)
	if tr == nil || tr.From != StatusDead || tr.To != StatusAlive {
		t.Fatalf("revival transition = %v, want dead→alive", tr)
	}
	if d.Status("w1") != StatusAlive {
		t.Fatal("revived worker not alive")
	}
}

func TestStaleSequenceIgnored(t *testing.T) {
	d := NewDetector(cfg())
	last := beat(d, "w1", 3)
	// Replaying an old beat at a much later time must not refresh
	// liveness.
	d.Observe(Heartbeat{Worker: "w1", Seq: 2}, last+3*iv)
	snap := d.Snapshot(last + 3*iv)
	if len(snap) != 1 || snap[0].LastSeen != last {
		t.Fatalf("stale heartbeat refreshed lastSeen: %+v", snap)
	}
}

func TestSnapshotAndForget(t *testing.T) {
	d := NewDetector(cfg())
	d.Observe(Heartbeat{Worker: "w2", Seq: 1, Load: 3}, 0)
	d.Observe(Heartbeat{Worker: "w1", Seq: 1, Load: 5}, 0)
	snap := d.Snapshot(iv)
	if len(snap) != 2 || snap[0].Worker != "w1" || snap[1].Worker != "w2" {
		t.Fatalf("snapshot order = %+v", snap)
	}
	if snap[0].Load != 5 || snap[0].Age != iv {
		t.Fatalf("snapshot fields = %+v", snap[0])
	}
	d.Forget("w1")
	if snap := d.Snapshot(iv); len(snap) != 1 || snap[0].Worker != "w2" {
		t.Fatalf("after forget: %+v", snap)
	}
	if d.Status("w1") != StatusDead {
		t.Fatal("forgotten worker should read dead")
	}
}

// TestDetectorDeterministic feeds two detectors the same timed sequence
// and requires identical transitions — healthd's half of the chaos
// repeatability guarantee.
func TestDetectorDeterministic(t *testing.T) {
	run := func() []Transition {
		d := NewDetector(cfg())
		var out []Transition
		for i := 0; i < 4; i++ {
			at := time.Duration(i) * iv
			d.Observe(Heartbeat{Worker: "w1", Seq: uint64(i + 1)}, at)
			d.Observe(Heartbeat{Worker: "w2", Seq: uint64(i + 1)}, at)
		}
		// w2 dies at 3*iv; keep w1 beating.
		for i := 4; i < 12; i++ {
			at := time.Duration(i) * iv
			d.Observe(Heartbeat{Worker: "w1", Seq: uint64(i + 1)}, at)
			out = append(out, d.Check(at)...)
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("runs diverged:\n%v\n%v", a, b)
	}
	var dead bool
	for _, tr := range a {
		if tr.Worker == "w2" && tr.To == StatusDead {
			dead = true
		}
		if tr.Worker == "w1" {
			t.Fatalf("live worker transitioned: %v", tr)
		}
	}
	if !dead {
		t.Fatal("silenced worker never declared dead")
	}
}

func TestHeartbeaterBeatPauseStop(t *testing.T) {
	var mu sync.Mutex
	var got []Heartbeat
	h := NewHeartbeater("w1", time.Hour, func() int { return 9 }, func(hb Heartbeat) error {
		mu.Lock()
		got = append(got, hb)
		mu.Unlock()
		return nil
	})
	h.Beat()
	h.Beat()
	h.Pause(true)
	h.Beat()
	h.Pause(false)
	h.Beat()
	h.Stop() // never started: must not block
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("beats published = %d, want 3 (pause swallowed one)", len(got))
	}
	for i, hb := range got {
		if hb.Worker != "w1" || hb.Load != 9 || hb.Seq != uint64(i+1) {
			t.Fatalf("beat %d = %+v", i, hb)
		}
	}
}

func TestHeartbeaterLoop(t *testing.T) {
	ch := make(chan Heartbeat, 16)
	h := NewHeartbeater("w1", time.Millisecond, nil, func(hb Heartbeat) error {
		select {
		case ch <- hb:
		default:
		}
		return nil
	})
	h.Start()
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("no heartbeat from started loop")
	}
	h.Stop()
}

func TestDaemonPoll(t *testing.T) {
	var mu sync.Mutex
	now := time.Duration(0)
	seq := uint64(0)
	silent := false
	source := func() []Heartbeat {
		mu.Lock()
		defer mu.Unlock()
		if silent {
			return nil
		}
		seq++
		return []Heartbeat{{Worker: "w1", Seq: seq}}
	}
	d := NewDaemon(NewDetector(cfg()), source, func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	var seen []Transition
	d.OnTransition = func(tr Transition) { seen = append(seen, tr) }
	for i := 0; i < 4; i++ {
		d.Poll()
		mu.Lock()
		now += iv
		mu.Unlock()
	}
	mu.Lock()
	silent = true
	mu.Unlock()
	for i := 0; i < 8; i++ {
		d.Poll()
		mu.Lock()
		now += iv
		mu.Unlock()
	}
	if d.Detector().Status("w1") != StatusDead {
		t.Fatal("silent worker not dead after polls")
	}
	var died bool
	for _, tr := range seen {
		if tr.To == StatusDead {
			died = true
		}
	}
	if !died {
		t.Fatal("OnTransition never saw the death")
	}
	d.Stop() // never started: must not block
}
