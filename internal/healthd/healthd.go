// Package healthd is λ-NIC's failure detector and the control-plane
// half of the fault-tolerance loop: workers heartbeat liveness (a
// sequence number plus a load snapshot) into the Raft-backed control
// store, and the manager side runs timeout/phi-style suspicion over
// heartbeat ages, evicting workers whose silence exceeds the eviction
// threshold so their lambdas can be re-placed (DRF, §4.2.1 D1) and the
// gateway's routes refreshed.
//
// The detector core is deterministic: it never reads a clock itself —
// every Observe and Check receives an explicit timestamp (a duration
// since an epoch), so the same heartbeat/check sequence always yields
// the same transitions whether time is the wall clock or the
// discrete-event simulation's virtual clock. The phi score is the
// classic accrual-detector simplification: heartbeat age divided by the
// mean observed interarrival, so "phi ≥ 3" reads as "three expected
// heartbeats missed".
package healthd

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Heartbeat is one worker liveness report, stored JSON-encoded in the
// control store under "health/<worker>".
type Heartbeat struct {
	Worker string `json:"worker"`
	// Seq increases with every beat; stale or duplicate sequence numbers
	// are ignored by the detector.
	Seq uint64 `json:"seq"`
	// Load is the worker's in-flight request count when it beat.
	Load int `json:"load"`
}

// Encode renders the heartbeat for the control store.
func (h Heartbeat) Encode() string {
	data, _ := json.Marshal(h)
	return string(data)
}

// DecodeHeartbeat parses a control-store heartbeat value.
func DecodeHeartbeat(s string) (Heartbeat, error) {
	var h Heartbeat
	if err := json.Unmarshal([]byte(s), &h); err != nil {
		return Heartbeat{}, fmt.Errorf("healthd: decode heartbeat: %w", err)
	}
	return h, nil
}

// Status is a worker's detector state.
type Status int

// Detector states, in escalation order.
const (
	StatusAlive Status = iota
	StatusSuspect
	StatusDead
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Config parameterizes the detector.
type Config struct {
	// Interval is the expected heartbeat period; it seeds the mean
	// interarrival before any history accumulates.
	Interval time.Duration
	// SuspectAfter is the phi score (missed expected heartbeats) at
	// which a worker turns Suspect.
	SuspectAfter float64
	// EvictAfter is the phi score at which a worker is declared Dead —
	// the recovery bound: detection completes within roughly EvictAfter+1
	// heartbeat intervals of the failure.
	EvictAfter float64
	// Window bounds the interarrival history used for the mean.
	Window int
	// LoadAlpha is the EWMA coefficient for smoothing per-worker load:
	// smoothed = alpha*sample + (1-alpha)*smoothed. Raw in-flight counts
	// are point samples taken at heartbeat instants and whipsaw between
	// beats; the rebalancer wants the trend, not the noise. Values are
	// clamped to (0, 1]; 1 disables smoothing (smoothed == raw).
	LoadAlpha float64
}

// Detector defaults: suspect after ~2 missed beats, evict after 4.
const (
	DefaultInterval     = 50 * time.Millisecond
	DefaultSuspectAfter = 2
	DefaultEvictAfter   = 4
	DefaultWindow       = 8
	// DefaultLoadAlpha weighs a new load sample at 30%: roughly the last
	// three heartbeats dominate the smoothed value.
	DefaultLoadAlpha = 0.3
)

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = DefaultSuspectAfter
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = DefaultEvictAfter
	}
	if c.EvictAfter < c.SuspectAfter {
		c.EvictAfter = c.SuspectAfter
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.LoadAlpha <= 0 {
		c.LoadAlpha = DefaultLoadAlpha
	}
	if c.LoadAlpha > 1 {
		c.LoadAlpha = 1
	}
	return c
}

// Transition is one worker status change.
type Transition struct {
	Worker   string
	From, To Status
	// At is the timestamp of the Check or Observe that produced it.
	At time.Duration
}

// WorkerHealth is one worker's state in a detector snapshot.
type WorkerHealth struct {
	Worker string
	Seq    uint64
	Load   int
	// LastSeen is when the newest heartbeat was observed.
	LastSeen time.Duration
	// Age is now minus LastSeen at snapshot time.
	Age time.Duration
	// Phi is the suspicion score: Age over mean interarrival.
	Phi    float64
	Status Status
	// SmoothedLoad is the EWMA of Load across heartbeats (Config.LoadAlpha)
	// — the signal the gateway rebalancer keys migration decisions off.
	SmoothedLoad float64
}

type workerState struct {
	seq       uint64
	load      int
	ewma      float64
	lastSeen  time.Duration
	intervals []time.Duration
	status    Status
}

// Detector tracks worker liveness from timestamped heartbeats. Safe for
// concurrent use; deterministic given the same call sequence.
type Detector struct {
	cfg Config

	mu      sync.Mutex
	workers map[string]*workerState
}

// NewDetector builds a detector, applying defaults to zero config
// fields.
func NewDetector(cfg Config) *Detector {
	return &Detector{cfg: cfg.withDefaults(), workers: make(map[string]*workerState)}
}

// Config returns the effective (defaulted) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Observe ingests one heartbeat at the given time. Heartbeats with a
// sequence number at or below the last seen one are duplicates from the
// control store poll and are ignored. A heartbeat from a Suspect or
// Dead worker revives it; the returned transition (nil otherwise)
// reports that recovery.
func (d *Detector) Observe(hb Heartbeat, now time.Duration) *Transition {
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.workers[hb.Worker]
	if !ok {
		// First sighting: the EWMA seeds at the first sample so the
		// smoothed value is meaningful immediately.
		d.workers[hb.Worker] = &workerState{seq: hb.Seq, load: hb.Load, ewma: float64(hb.Load), lastSeen: now}
		return nil
	}
	if hb.Seq <= st.seq {
		return nil
	}
	if gap := now - st.lastSeen; gap > 0 {
		st.intervals = append(st.intervals, gap)
		if len(st.intervals) > d.cfg.Window {
			st.intervals = st.intervals[len(st.intervals)-d.cfg.Window:]
		}
	}
	st.seq = hb.Seq
	st.load = hb.Load
	st.ewma = d.cfg.LoadAlpha*float64(hb.Load) + (1-d.cfg.LoadAlpha)*st.ewma
	st.lastSeen = now
	if st.status != StatusAlive {
		tr := &Transition{Worker: hb.Worker, From: st.status, To: StatusAlive, At: now}
		st.status = StatusAlive
		return tr
	}
	return nil
}

// meanInterval is the phi denominator: the mean observed interarrival,
// floored at the configured interval so bursts of quick beats cannot
// make the detector hair-triggered.
func (d *Detector) meanInterval(st *workerState) time.Duration {
	if len(st.intervals) == 0 {
		return d.cfg.Interval
	}
	var sum time.Duration
	for _, iv := range st.intervals {
		sum += iv
	}
	mean := sum / time.Duration(len(st.intervals))
	if mean < d.cfg.Interval {
		mean = d.cfg.Interval
	}
	return mean
}

func (d *Detector) phi(st *workerState, now time.Duration) float64 {
	age := now - st.lastSeen
	if age <= 0 {
		return 0
	}
	return float64(age) / float64(d.meanInterval(st))
}

// Check re-evaluates every worker's suspicion at the given time and
// returns the status transitions, ordered by worker name. Dead is
// sticky: only a fresh heartbeat (Observe) revives a dead worker.
func (d *Detector) Check(now time.Duration) []Transition {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.workers))
	for name := range d.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []Transition
	for _, name := range names {
		st := d.workers[name]
		if st.status == StatusDead {
			continue
		}
		phi := d.phi(st, now)
		next := st.status
		switch {
		case phi >= d.cfg.EvictAfter:
			next = StatusDead
		case phi >= d.cfg.SuspectAfter:
			next = StatusSuspect
		default:
			next = StatusAlive
		}
		if next != st.status {
			out = append(out, Transition{Worker: name, From: st.status, To: next, At: now})
			st.status = next
		}
	}
	return out
}

// Snapshot reports every tracked worker's health at the given time,
// ordered by worker name.
func (d *Detector) Snapshot(now time.Duration) []WorkerHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]WorkerHealth, 0, len(d.workers))
	for name, st := range d.workers {
		out = append(out, WorkerHealth{
			Worker:       name,
			Seq:          st.seq,
			Load:         st.load,
			LastSeen:     st.lastSeen,
			Age:          now - st.lastSeen,
			Phi:          d.phi(st, now),
			Status:       st.status,
			SmoothedLoad: st.ewma,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Status returns one worker's current status; unknown workers read as
// Dead.
func (d *Detector) Status(worker string) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.workers[worker]; ok {
		return st.status
	}
	return StatusDead
}

// Forget drops a worker from tracking (after eviction completes, or
// when a worker is decommissioned).
func (d *Detector) Forget(worker string) {
	d.mu.Lock()
	delete(d.workers, worker)
	d.mu.Unlock()
}
