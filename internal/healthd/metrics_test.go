package healthd

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lambdanic/internal/monitor"
)

func TestDaemonEnableMetrics(t *testing.T) {
	var mu sync.Mutex
	now := time.Duration(0)
	seq := uint64(0)
	silent := false
	source := func() []Heartbeat {
		mu.Lock()
		defer mu.Unlock()
		if silent {
			return nil
		}
		seq++
		return []Heartbeat{
			{Worker: "m2", Seq: seq, Load: 3},
			{Worker: "m3", Seq: seq, Load: 1},
		}
	}
	d := NewDaemon(NewDetector(cfg()), source, func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return now
	})
	reg := monitor.NewRegistry()
	if err := d.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	// Enabling twice is a no-op, not a duplicate registration.
	if err := d.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		d.Poll()
		mu.Lock()
		now += iv
		mu.Unlock()
	}
	page := reg.Render()
	for _, want := range []string{
		`lnic_healthd_load{worker="m2"} 3`,
		`lnic_healthd_load{worker="m3"} 1`,
		`lnic_healthd_status{worker="m2"} 0`,
		`lnic_healthd_phi{worker="m2"}`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("rendered metrics missing %q:\n%s", want, page)
		}
	}

	// Silence the fleet: phi climbs and status walks to dead, visible
	// through the gauges.
	mu.Lock()
	silent = true
	mu.Unlock()
	for i := 0; i < 8; i++ {
		d.Poll()
		mu.Lock()
		now += iv
		mu.Unlock()
	}
	page = reg.Render()
	if !strings.Contains(page, `lnic_healthd_status{worker="m2"} 2`) {
		t.Errorf("dead worker not reflected in status gauge:\n%s", page)
	}
}
