package healthd

import (
	"sync"
	"time"

	"lambdanic/internal/monitor"
)

// Heartbeater periodically publishes a worker's liveness. The publish
// function carries the beat into the control store (core.Manager's
// PutHealth); load samples the worker's in-flight count. Beat may also
// be called directly — virtual-time experiments drive heartbeats from
// sim callbacks instead of the wall-clock goroutine.
type Heartbeater struct {
	worker   string
	interval time.Duration
	load     func() int
	publish  func(Heartbeat) error

	mu      sync.Mutex
	seq     uint64
	paused  bool
	started bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewHeartbeater builds a heartbeater. A nil load function reports zero
// load.
func NewHeartbeater(worker string, interval time.Duration, load func() int, publish func(Heartbeat) error) *Heartbeater {
	if interval <= 0 {
		interval = DefaultInterval
	}
	if load == nil {
		load = func() int { return 0 }
	}
	return &Heartbeater{
		worker:   worker,
		interval: interval,
		load:     load,
		publish:  publish,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Beat publishes one heartbeat now (a no-op while paused).
func (h *Heartbeater) Beat() error {
	h.mu.Lock()
	if h.paused {
		h.mu.Unlock()
		return nil
	}
	h.seq++
	hb := Heartbeat{Worker: h.worker, Seq: h.seq, Load: h.load()}
	h.mu.Unlock()
	return h.publish(hb)
}

// Pause stops (true) or resumes (false) beating without tearing down
// the loop — a killed worker falls silent; a restarted one resumes with
// a higher sequence number.
func (h *Heartbeater) Pause(paused bool) {
	h.mu.Lock()
	h.paused = paused
	h.mu.Unlock()
}

// Start launches the wall-clock beat loop. The first beat is published
// synchronously before Start returns, so the detector learns the worker
// immediately — a worker killed right after startup is still detected
// as dead rather than never known.
func (h *Heartbeater) Start() {
	h.mu.Lock()
	h.started = true
	h.mu.Unlock()
	h.Beat()
	go func() {
		defer close(h.done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.Beat()
			case <-h.stop:
				return
			}
		}
	}()
}

// Stop terminates the beat loop and waits for it to exit. Safe to call
// more than once; a heartbeater that was never started just closes.
func (h *Heartbeater) Stop() {
	h.stopOnce.Do(func() { close(h.stop) })
	h.mu.Lock()
	started := h.started
	h.mu.Unlock()
	if started {
		<-h.done
	}
}

// Daemon is the manager-side detection loop: it polls heartbeats from a
// source (the control store), feeds them to the detector, runs a
// suspicion check, and reports transitions. Poll does one cycle
// synchronously so virtual-time and wall-clock callers share the same
// logic.
type Daemon struct {
	det    *Detector
	source func() []Heartbeat
	now    func() time.Duration
	// OnTransition, when set, observes every status change (including
	// revivals detected during Observe).
	OnTransition func(Transition)

	mu       sync.Mutex
	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	// Monitoring-engine instrumentation (nil unless EnableMetrics):
	// per-worker load, phi, and status gauges, registered lazily as
	// workers first appear in a poll.
	reg    *monitor.Registry
	gauges map[string]*workerGauges
}

// workerGauges is one worker's set of health gauges.
type workerGauges struct {
	load     *monitor.Gauge
	smoothed *monitor.Gauge
	phi      *monitor.Gauge
	status   *monitor.Gauge
}

// NewDaemon wires a detector to a heartbeat source and a clock.
func NewDaemon(det *Detector, source func() []Heartbeat, now func() time.Duration) *Daemon {
	return &Daemon{
		det:    det,
		source: source,
		now:    now,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Detector exposes the daemon's detector (snapshots, status queries).
func (d *Daemon) Detector() *Detector { return d.det }

// EnableMetrics publishes each polled worker's health into the
// monitoring engine: lnic_healthd_load (in-flight requests from the
// last heartbeat), lnic_healthd_load_smoothed (the EWMA the rebalancer
// consumes), lnic_healthd_phi (suspicion score), and
// lnic_healthd_status (0 alive, 1 suspect, 2 dead), all labeled by
// worker. Gauges register lazily the first time a worker appears, so
// enabling before any poll covers the whole fleet.
func (d *Daemon) EnableMetrics(reg *monitor.Registry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.reg != nil {
		return nil
	}
	d.reg = reg
	d.gauges = make(map[string]*workerGauges)
	return nil
}

// publishHealth updates the per-worker gauges from a detector snapshot.
func (d *Daemon) publishHealth(now time.Duration) {
	d.mu.Lock()
	reg, gauges := d.reg, d.gauges
	d.mu.Unlock()
	if reg == nil {
		return
	}
	for _, wh := range d.det.Snapshot(now) {
		g := gauges[wh.Worker]
		if g == nil {
			labels := map[string]string{"worker": wh.Worker}
			load, err := reg.Gauge("lnic_healthd_load", "worker in-flight load from the last heartbeat", labels)
			if err != nil {
				continue
			}
			smoothed, err := reg.Gauge("lnic_healthd_load_smoothed", "worker load EWMA across heartbeats (rebalancer input)", labels)
			if err != nil {
				continue
			}
			phi, err := reg.Gauge("lnic_healthd_phi", "worker suspicion score (heartbeat age over mean interval)", labels)
			if err != nil {
				continue
			}
			status, err := reg.Gauge("lnic_healthd_status", "worker liveness: 0 alive, 1 suspect, 2 dead", labels)
			if err != nil {
				continue
			}
			g = &workerGauges{load: load, smoothed: smoothed, phi: phi, status: status}
			d.mu.Lock()
			gauges[wh.Worker] = g
			d.mu.Unlock()
		}
		g.load.Set(float64(wh.Load))
		g.smoothed.Set(wh.SmoothedLoad)
		g.phi.Set(wh.Phi)
		g.status.Set(float64(wh.Status))
	}
}

// Poll runs one observe+check cycle and returns the transitions.
func (d *Daemon) Poll() []Transition {
	now := d.now()
	var out []Transition
	for _, hb := range d.source() {
		if tr := d.det.Observe(hb, now); tr != nil {
			out = append(out, *tr)
		}
	}
	out = append(out, d.det.Check(now)...)
	d.publishHealth(now)
	if d.OnTransition != nil {
		for _, tr := range out {
			d.OnTransition(tr)
		}
	}
	return out
}

// Start launches a wall-clock poll loop at the given period (the
// detector interval when zero).
func (d *Daemon) Start(period time.Duration) {
	if period <= 0 {
		period = d.det.Config().Interval
	}
	d.mu.Lock()
	d.started = true
	d.mu.Unlock()
	go func() {
		defer close(d.done)
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				d.Poll()
			case <-d.stop:
				return
			}
		}
	}()
}

// Stop terminates the poll loop.
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	d.mu.Lock()
	started := d.started
	d.mu.Unlock()
	if started {
		<-d.done
	}
}
