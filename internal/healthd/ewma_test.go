package healthd

import (
	"math"
	"testing"
	"time"
)

func smoothedOf(t *testing.T, d *Detector, worker string, now time.Duration) float64 {
	t.Helper()
	for _, wh := range d.Snapshot(now) {
		if wh.Worker == worker {
			return wh.SmoothedLoad
		}
	}
	t.Fatalf("worker %s not in snapshot", worker)
	return 0
}

func TestEWMASeedsAtFirstSample(t *testing.T) {
	d := NewDetector(Config{LoadAlpha: 0.5})
	d.Observe(Heartbeat{Worker: "w", Seq: 1, Load: 40}, 0)
	if got := smoothedOf(t, d, "w", 0); got != 40 {
		t.Fatalf("SmoothedLoad after first beat = %v, want 40 (seeded)", got)
	}
}

func TestEWMAFollowsRecurrence(t *testing.T) {
	alpha := 0.3
	d := NewDetector(Config{LoadAlpha: alpha})
	samples := []int{10, 20, 0, 100, 50}
	want := float64(samples[0])
	now := time.Duration(0)
	d.Observe(Heartbeat{Worker: "w", Seq: 1, Load: samples[0]}, now)
	for i, load := range samples[1:] {
		now += 50 * time.Millisecond
		d.Observe(Heartbeat{Worker: "w", Seq: uint64(i + 2), Load: load}, now)
		want = alpha*float64(load) + (1-alpha)*want
	}
	if got := smoothedOf(t, d, "w", now); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SmoothedLoad = %v, want %v", got, want)
	}
	// The raw load is the last sample; the EWMA must differ (it carries
	// history) and sit between the extremes.
	if got := smoothedOf(t, d, "w", now); got == 50 {
		t.Fatal("SmoothedLoad equals raw load; smoothing is a no-op")
	}
}

func TestEWMADampensSpike(t *testing.T) {
	d := NewDetector(Config{}) // default alpha
	now := time.Duration(0)
	for i := 1; i <= 10; i++ {
		d.Observe(Heartbeat{Worker: "w", Seq: uint64(i), Load: 10}, now)
		now += 50 * time.Millisecond
	}
	// One wild sample: raw jumps to 1000, smoothed must not.
	d.Observe(Heartbeat{Worker: "w", Seq: 11, Load: 1000}, now)
	got := smoothedOf(t, d, "w", now)
	if got >= 500 {
		t.Fatalf("SmoothedLoad %v tracked the spike; want damping", got)
	}
	if got <= 10 {
		t.Fatalf("SmoothedLoad %v ignored the spike entirely", got)
	}
}

func TestEWMAIgnoresStaleBeats(t *testing.T) {
	d := NewDetector(Config{LoadAlpha: 0.5})
	d.Observe(Heartbeat{Worker: "w", Seq: 5, Load: 10}, 0)
	before := smoothedOf(t, d, "w", 0)
	d.Observe(Heartbeat{Worker: "w", Seq: 5, Load: 999}, 50*time.Millisecond) // duplicate seq
	if got := smoothedOf(t, d, "w", 50*time.Millisecond); got != before {
		t.Fatalf("stale heartbeat moved the EWMA: %v -> %v", before, got)
	}
}

func TestEWMAAlphaOneTracksRaw(t *testing.T) {
	d := NewDetector(Config{LoadAlpha: 1})
	now := time.Duration(0)
	for i, load := range []int{5, 80, 3} {
		d.Observe(Heartbeat{Worker: "w", Seq: uint64(i + 1), Load: load}, now)
		now += 50 * time.Millisecond
	}
	if got := smoothedOf(t, d, "w", now); got != 3 {
		t.Fatalf("alpha=1 SmoothedLoad = %v, want raw 3", got)
	}
}

func TestEWMAAlphaDefaulted(t *testing.T) {
	cfg := NewDetector(Config{}).Config()
	if cfg.LoadAlpha != DefaultLoadAlpha {
		t.Fatalf("LoadAlpha defaulted to %v, want %v", cfg.LoadAlpha, DefaultLoadAlpha)
	}
	cfg = NewDetector(Config{LoadAlpha: 7}).Config()
	if cfg.LoadAlpha != 1 {
		t.Fatalf("LoadAlpha clamped to %v, want 1", cfg.LoadAlpha)
	}
}
