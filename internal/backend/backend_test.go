package backend

import (
	"errors"
	"testing"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/sim"
	"lambdanic/internal/workloads"
)

// smallSet returns the workload set with a test-sized image.
func smallSet() []*workloads.Workload {
	return []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.KVSetClient(),
		workloads.ImageTransformer(16, 16),
	}
}

func newNICBackend(t *testing.T, s *sim.Sim) *LambdaNIC {
	t.Helper()
	b, err := NewLambdaNIC(s, cluster.Default(), nicsim.DispatchUniform)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Deploy(smallSet()); err != nil {
		t.Fatal(err)
	}
	return b
}

// warm runs one request per workload so one-time init is off the
// measured path (the paper measures warm lambdas).
func warm(t *testing.T, s *sim.Sim, b Backend) {
	t.Helper()
	for _, w := range smallSet() {
		b.Invoke(w.ID, w.MakeRequest(0), func(r Result) {
			if r.Err != nil {
				t.Fatalf("warm %s: %v", w.Name, r.Err)
			}
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeBeforeDeploy(t *testing.T) {
	s := sim.New(1)
	b, err := NewLambdaNIC(s, cluster.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var got error
	b.Invoke(1, nil, func(r Result) { got = r.Err })
	if !errors.Is(got, ErrNotDeployed) {
		t.Errorf("err = %v, want ErrNotDeployed", got)
	}

	h, err := NewBareMetal(s, cluster.Default(), false)
	if err != nil {
		t.Fatal(err)
	}
	h.Invoke(1, nil, func(r Result) { got = r.Err })
	if !errors.Is(got, ErrNotDeployed) {
		t.Errorf("host err = %v, want ErrNotDeployed", got)
	}
}

func TestLambdaNICServesWebRequest(t *testing.T) {
	s := sim.New(1)
	b := newNICBackend(t, s)
	warm(t, s, b)

	var resp []byte
	var at sim.Time
	start := s.Now()
	b.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(1), func(r Result) {
		if r.Err != nil {
			t.Fatalf("Invoke: %v", r.Err)
		}
		resp = r.Payload
		at = s.Now() - start
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(resp) == 0 {
		t.Fatal("no response payload")
	}
	// Warm web service should complete in a handful of microseconds.
	if at <= 0 || at > 50*time.Microsecond {
		t.Errorf("latency = %v, want (0, 50µs]", at)
	}
}

func TestLambdaNICMultiPacketUsesRDMA(t *testing.T) {
	// A 64x64 RGBA image is a 16 KiB payload spanning 12 packets, so it
	// must arrive through the RDMA path (§4.2.1 D3).
	big := []*workloads.Workload{
		workloads.WebServer(), workloads.KVGetClient(), workloads.KVSetClient(),
		workloads.ImageTransformer(64, 64),
	}
	s := sim.New(1)
	b, err := NewLambdaNIC(s, cluster.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Deploy(big); err != nil {
		t.Fatal(err)
	}
	img := workloads.ImageTransformer(64, 64)
	b.Invoke(workloads.ImageTransformerID, img.MakeRequest(0), func(r Result) {
		if r.Err != nil {
			t.Fatalf("Invoke: %v", r.Err)
		}
		if len(r.Payload) != 64*64 {
			t.Errorf("grayscale output = %d bytes, want %d", len(r.Payload), 64*64)
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	c := b.rdma.Counters()
	if c.Writes == 0 || c.BytesWritten == 0 {
		t.Errorf("multi-packet request bypassed RDMA: writes=%d bytes=%d", c.Writes, c.BytesWritten)
	}
	// A single-packet request must not touch the RDMA engine.
	b.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(0), nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c2 := b.rdma.Counters(); c2.Writes != c.Writes {
		t.Error("single-packet request used RDMA")
	}
}

func TestBackendOrderingWebLatency(t *testing.T) {
	// The paper's headline (Fig. 6): λ-NIC < bare metal < container for
	// the warm web-server lambda, by orders of magnitude.
	measure := func(mk func(s *sim.Sim) (Backend, error)) time.Duration {
		s := sim.New(1)
		b, err := mk(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Deploy(smallSet()); err != nil {
			t.Fatal(err)
		}
		warm(t, s, b)
		var lat time.Duration
		start := s.Now()
		b.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(0), func(r Result) {
			if r.Err != nil {
				t.Fatalf("Invoke: %v", r.Err)
			}
			lat = s.Now() - start
		})
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return lat
	}
	nic := measure(func(s *sim.Sim) (Backend, error) { return NewLambdaNIC(s, cluster.Default(), 0) })
	bare := measure(func(s *sim.Sim) (Backend, error) { return NewBareMetal(s, cluster.Default(), false) })
	cont := measure(func(s *sim.Sim) (Backend, error) { return NewContainer(s, cluster.Default()) })

	if !(nic < bare && bare < cont) {
		t.Fatalf("ordering violated: nic=%v bare=%v container=%v", nic, bare, cont)
	}
	if ratio := float64(bare) / float64(nic); ratio < 5 {
		t.Errorf("bare/nic ratio = %.1f, want ≫ 1", ratio)
	}
	if ratio := float64(cont) / float64(nic); ratio < 100 {
		t.Errorf("container/nic ratio = %.1f, want ≫ 100", ratio)
	}
}

func TestUsageAccounting(t *testing.T) {
	s := sim.New(1)
	b := newNICBackend(t, s)
	// 8 concurrent requests.
	for i := 0; i < 8; i++ {
		b.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(i), nil)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	u := b.Usage()
	if u.HostCPUPercent != nicManagementCPUPercent {
		t.Errorf("λ-NIC host CPU = %v", u.HostCPUPercent)
	}
	if u.HostMemoryMiB != 0 {
		t.Errorf("λ-NIC host memory = %v, want 0", u.HostMemoryMiB)
	}
	if u.NICMemoryMiB <= 8*nicRequestWorkingSetMiB {
		t.Errorf("λ-NIC NIC memory = %v, want > inflight working sets", u.NICMemoryMiB)
	}

	// Container memory exceeds bare metal by the runtime delta.
	s2 := sim.New(1)
	bare, err := NewBareMetal(s2, cluster.Default(), false)
	if err != nil {
		t.Fatal(err)
	}
	if err := bare.Deploy(smallSet()); err != nil {
		t.Fatal(err)
	}
	s3 := sim.New(1)
	cont, err := NewContainer(s3, cluster.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := cont.Deploy(smallSet()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		bare.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(i), nil)
		cont.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(i), nil)
	}
	if err := s2.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if err := s3.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	bu, cu := bare.Usage(), cont.Usage()
	if cu.HostMemoryMiB-bu.HostMemoryMiB < 100 {
		t.Errorf("container - bare memory = %v, want > 100 MiB", cu.HostMemoryMiB-bu.HostMemoryMiB)
	}
	if bu.HostCPUPercent <= 0 || bu.HostCPUPercent > 100 {
		t.Errorf("bare CPU%% = %v", bu.HostCPUPercent)
	}
	if bu.NICMemoryMiB != 0 || cu.NICMemoryMiB != 0 {
		t.Error("CPU backends must not consume NIC memory")
	}
}

func TestSingleCoreBackendSlower(t *testing.T) {
	run := func(singleCore bool) sim.Time {
		s := sim.New(1)
		b, err := NewBareMetal(s, cluster.Default(), singleCore)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Deploy(smallSet()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			b.Invoke(workloads.WebServerID, workloads.WebServer().MakeRequest(i), nil)
		}
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return s.Now()
	}
	if single, multi := run(true), run(false); single <= multi {
		t.Errorf("single-core (%v) not slower than multi-core (%v)", single, multi)
	}
}

// TestFirmwareEngineCycleParity pins the nicsim cost accounting across
// execution engines: the compiled engine must report the same ExecStats
// as the interpreter, so end-to-end virtual latency per workload is
// identical no matter which engine the firmware was linked with. Also
// asserts the optimizer's reduced match stage compiled into the
// WorkloadID jump table.
func TestFirmwareEngineCycleParity(t *testing.T) {
	latencies := func(opts mcc.LinkOptions) (map[uint32]sim.Time, string) {
		s := sim.New(1)
		b, err := NewLambdaNIC(s, cluster.Default(), nicsim.DispatchUniform)
		if err != nil {
			t.Fatal(err)
		}
		b.SetLinkOptions(opts)
		if err := b.Deploy(smallSet()); err != nil {
			t.Fatal(err)
		}
		warm(t, s, b)
		out := make(map[uint32]sim.Time)
		for _, w := range smallSet() {
			start := s.Now()
			id := w.ID
			b.Invoke(id, w.MakeRequest(3), func(r Result) {
				if r.Err != nil {
					t.Fatalf("invoke %d: %v", id, r.Err)
				}
				out[id] = s.Now() - start
			})
			if err := s.RunUntilIdle(); err != nil {
				t.Fatal(err)
			}
		}
		return out, b.Executable().DispatchKind()
	}

	compiled, kind := latencies(mcc.LinkOptions{})
	if kind != "jump-table" {
		t.Fatalf("compiled firmware DispatchKind = %q, want jump-table", kind)
	}
	interp, kind := latencies(mcc.LinkOptions{Engine: mcc.EngineInterp})
	if kind != "interp" {
		t.Fatalf("interpreter firmware DispatchKind = %q, want interp", kind)
	}
	for id, want := range interp {
		if got := compiled[id]; got != want {
			t.Errorf("workload %d: compiled latency %v != interpreter latency %v (ExecStats diverged)", id, got, want)
		}
	}
}

// TestLambdaNICKVBypass exercises the one-sided GET fast path: keys
// mirrored into the EMEM table are served by RDMA reads (no NPU
// dispatch), absent keys fall back to the lambda path, and the bypass
// is faster than the invocation it replaces.
func TestLambdaNICKVBypass(t *testing.T) {
	s := sim.New(1)
	b := newNICBackend(t, s)
	table := kvstore.NewTable(1024)
	if !table.Set("user:0005", []byte("value-5")) {
		t.Fatal("table.Set failed")
	}
	warm(t, s, b)
	if err := b.EnableKVBypass(workloads.KVGetClientID, table, 8); err != nil {
		t.Fatal(err)
	}

	get := workloads.KVGetClient()
	var hitPayload []byte
	hitStart := s.Now()
	var hitElapsed sim.Time
	b.Invoke(get.ID, get.MakeRequest(5), func(r Result) {
		if r.Err != nil {
			t.Errorf("bypass GET: %v", r.Err)
		}
		hitPayload = r.Payload
		hitElapsed = s.Now() - hitStart
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if string(hitPayload) != "value-5" {
		t.Errorf("bypass GET = %q, want value-5", hitPayload)
	}
	if hits, fb := b.BypassStats(); hits != 1 || fb != 0 {
		t.Errorf("bypass stats = %d/%d, want 1 hit, 0 fallbacks", hits, fb)
	}
	if c := b.RDMA().Counters(); c.Reads == 0 {
		t.Error("bypass hit issued no RDMA reads")
	}

	// A key absent from the table falls back to the lambda path.
	fbStart := s.Now()
	var fbElapsed sim.Time
	b.Invoke(get.ID, get.MakeRequest(6), func(r Result) {
		if r.Err != nil {
			t.Errorf("fallback GET: %v", r.Err)
		}
		fbElapsed = s.Now() - fbStart
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if hits, fb := b.BypassStats(); hits != 1 || fb != 1 {
		t.Errorf("bypass stats = %d/%d, want 1 hit, 1 fallback", hits, fb)
	}
	if hitElapsed >= fbElapsed {
		t.Errorf("bypass hit (%v) not faster than lambda fallback (%v)", hitElapsed, fbElapsed)
	}

	// SETs never take the bypass.
	set := workloads.KVSetClient()
	b.Invoke(set.ID, set.MakeRequest(5), nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if hits, fb := b.BypassStats(); hits != 1 || fb != 1 {
		t.Errorf("bypass stats after SET = %d/%d, want unchanged", hits, fb)
	}
}
