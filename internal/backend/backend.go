// Package backend implements the three serverless backends the paper
// evaluates against each other (§6.1.1):
//
//   - LambdaNIC: lambdas run entirely on the simulated ASIC SmartNIC
//     (internal/nicsim) as compiled Match+Lambda firmware, with
//     multi-packet requests arriving over the RDMA path (§4.2.1 D3);
//   - BareMetal: an Isolate-style standalone service running lambdas as
//     threads on the host CPU simulator (internal/cpusim);
//   - Container: the OpenFaaS/Docker-style backend — bare metal plus
//     overlay networking and a process fork per request.
//
// All three implement one Backend interface so the experiment harness
// (internal/experiments) drives them identically, exactly as the
// paper's gateway drives its three backends.
package backend

import (
	"errors"
	"fmt"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/cpusim"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/obs"
	"lambdanic/internal/rdma"
	"lambdanic/internal/sim"
	"lambdanic/internal/workloads"
)

// Result is one completed request.
type Result struct {
	Err     error
	Payload []byte
}

// Usage is the backend's additional resource consumption while serving
// load (Table 3).
type Usage struct {
	// HostCPUPercent is average host CPU utilization over the run.
	HostCPUPercent float64
	// HostMemoryMiB is added host memory.
	HostMemoryMiB float64
	// NICMemoryMiB is added SmartNIC memory.
	NICMemoryMiB float64
}

// Backend is a deploy-and-invoke serverless execution target bound to a
// discrete-event simulation.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Deploy installs the workloads (compiling them for the target).
	Deploy(ws []*workloads.Workload) error
	// Invoke submits one request at the current virtual time; done
	// fires when the response has returned to the caller's NIC.
	Invoke(id uint32, payload []byte, done func(Result))
	// Usage reports added resource consumption (call after a run).
	Usage() Usage
}

// Traced is implemented by backends that can attach a request-lifecycle
// span container to each invocation. A nil tr behaves like Invoke.
type Traced interface {
	InvokeTraced(id uint32, payload []byte, tr *obs.Req, done func(Result))
}

// ErrNotDeployed is returned when Invoke precedes Deploy.
var ErrNotDeployed = errors.New("backend: no workloads deployed")

// Memory-model constants for Table 3 (documented in DESIGN.md):
// per-request working set of the data-intensive image path, and each
// backend's resident runtime overhead.
const (
	// nicRequestWorkingSetMiB is the per-in-flight-request NIC buffer
	// demand (RDMA-committed payload + output + bookkeeping).
	nicRequestWorkingSetMiB = 1.123
	// hostRequestWorkingSetMiB is the per-in-flight-request host memory
	// demand (decoded request object + response buffer).
	hostRequestWorkingSetMiB = 1.054
	// pythonRuntimeMiB is the bare-metal service's resident overhead.
	pythonRuntimeMiB = 3.5
	// containerRuntimeMiB is the Docker image layers + daemon share +
	// OpenFaaS watchdog resident overhead.
	containerRuntimeMiB = 160.5
	// nicManagementCPUPercent is the host-side cost of the λ-NIC
	// management daemon (firmware health polling only).
	nicManagementCPUPercent = 0.1
	// containerBackgroundCPUPercent is the container engine's steady
	// overhead while serving (dockerd/containerd bookkeeping, veth
	// soft-irq processing, OpenFaaS monitoring), charged on top of the
	// measured request-path utilization.
	containerBackgroundCPUPercent = 2.5
)

// LambdaNIC runs lambdas on the simulated SmartNIC.
type LambdaNIC struct {
	sim     *sim.Sim
	testbed cluster.Testbed
	nic     *nicsim.NIC
	rdma    *rdma.Engine
	exe     *mcc.Executable
	region  *rdma.Region

	// linkOpts select the firmware's execution engine and limits; set
	// before Deploy (zero value: compiled engine, default limits).
	linkOpts mcc.LinkOptions

	// maxInflight tracks the peak number of concurrent requests, for
	// NIC memory accounting.
	inflight, maxInflight int
	maxPayload            int

	// One-sided KV bypass state (EnableKVBypass): the EMEM-resident
	// table registered as an RDMA region, the QP its reads go through,
	// and hit/miss counters.
	kvBypassID  uint32
	kvTable     *kvstore.Table
	kvRegion    *rdma.Region
	kvQP        *rdma.QP
	kvHits      uint64
	kvFallbacks uint64
}

// NewLambdaNIC constructs the λ-NIC backend. dispatch selects the NIC
// scheduler policy (zero value: the hardware's uniform dispatch).
func NewLambdaNIC(s *sim.Sim, tb cluster.Testbed, dispatch nicsim.Dispatch) (*LambdaNIC, error) {
	return NewLambdaNICWithConfig(s, tb, nicsim.Config{Dispatch: dispatch})
}

// NewLambdaNICWithConfig constructs the backend over a fully specified
// NIC scheduler config — the entry point for tenant-weighted WFQ
// dispatch (Dispatch, TenantOf, TenantWeights). The config's NIC
// hardware description is taken from the testbed.
func NewLambdaNICWithConfig(s *sim.Sim, tb cluster.Testbed, nicCfg nicsim.Config) (*LambdaNIC, error) {
	nicCfg.NIC = tb.NIC
	nic, err := nicsim.New(s, nicCfg)
	if err != nil {
		return nil, err
	}
	eng := rdma.New(s, rdma.Config{
		Link:         tb.Link,
		PerPacketDMA: 100 * time.Nanosecond,
		MTU:          workloads.MTU,
	})
	return &LambdaNIC{sim: s, testbed: tb, nic: nic, rdma: eng}, nil
}

// Name implements Backend.
func (b *LambdaNIC) Name() string { return "lambda-nic" }

// NIC exposes the simulated NIC (for stats in tests and reports).
func (b *LambdaNIC) NIC() *nicsim.NIC { return b.nic }

// SetLinkOptions overrides the firmware link options (e.g. to pin the
// interpreter engine for differential runs). Call before Deploy.
func (b *LambdaNIC) SetLinkOptions(opts mcc.LinkOptions) { b.linkOpts = opts }

// Executable exposes the deployed firmware image (nil before Deploy),
// for dispatch introspection in tests and reports.
func (b *LambdaNIC) Executable() *mcc.Executable { return b.exe }

// Deploy compiles the workloads into optimized Match+Lambda firmware
// and loads it (§4.1, §5).
func (b *LambdaNIC) Deploy(ws []*workloads.Workload) error {
	exe, _, err := workloads.CompileOptimizedWith(ws, workloads.NaiveProgramTarget, b.linkOpts)
	if err != nil {
		return fmt.Errorf("lambda-nic deploy: %w", err)
	}
	if err := b.nic.Load(exe); err != nil {
		return fmt.Errorf("lambda-nic deploy: %w", err)
	}
	b.exe = exe
	region, err := b.rdma.Register("rpc-staging", 64*1024*1024)
	if err != nil {
		return fmt.Errorf("lambda-nic deploy: %w", err)
	}
	b.region = region
	return nil
}

// Invoke implements Backend: wire transfer to the NIC (RDMA commit for
// multi-packet RPCs), run-to-completion execution on an NPU thread, and
// the response's wire trip back.
func (b *LambdaNIC) Invoke(id uint32, payload []byte, done func(Result)) {
	b.InvokeTraced(id, payload, nil, done)
}

// EnableKVBypass arms the one-sided KV GET fast path for the given
// workload: the table (the EMEM-resident mirror of the KV store) is
// registered as an RDMA region, and GET requests for that workload are
// served by one-sided reads of the key's probe window — batched under
// a single doorbell — with a client-side scan. window bounds the QP's
// outstanding reads (0 = unlimited); it is the knob behind the
// SMART-style throughput-vs-window curve. Misses (and every non-GET)
// fall back to the lambda-invocation path.
func (b *LambdaNIC) EnableKVBypass(id uint32, table *kvstore.Table, window int) error {
	region, err := b.rdma.RegisterBuffer("kv-table", table.Bytes())
	if err != nil {
		return fmt.Errorf("lambda-nic kv bypass: %w", err)
	}
	b.kvBypassID = id
	b.kvTable = table
	b.kvRegion = region
	b.kvQP = b.rdma.NewQP(window)
	return nil
}

// BypassStats reports one-sided GETs served without a lambda (hits)
// and bypass attempts that fell back to the lambda path (fallbacks).
func (b *LambdaNIC) BypassStats() (hits, fallbacks uint64) { return b.kvHits, b.kvFallbacks }

// RDMA exposes the backend's RDMA engine (counters, Describe).
func (b *LambdaNIC) RDMA() *rdma.Engine { return b.rdma }

// InvokeTraced implements Traced: like Invoke, additionally recording
// the transport hops (wire trips, RDMA commit) into tr and threading tr
// through the NIC so queue wait and execution are attributed too.
func (b *LambdaNIC) InvokeTraced(id uint32, payload []byte, tr *obs.Req, done func(Result)) {
	b.InvokeFlow(id, payload, 0, tr, done)
}

// InvokeFlow is InvokeTraced carrying a flow key (dispatch.FlowKey of
// client source × workload) into the NIC's per-core warm-state model.
// Zero means untracked.
func (b *LambdaNIC) InvokeFlow(id uint32, payload []byte, flow uint64, tr *obs.Req, done func(Result)) {
	if done == nil {
		done = func(Result) {}
	}
	if b.exe == nil {
		done(Result{Err: ErrNotDeployed})
		return
	}
	// One-sided fast path: a KV GET is served by RDMA reads of the
	// table's probe window, never dispatching an NPU thread. Bypass
	// requests stage no payload in NIC memory, so they skip the
	// inflight working-set accounting.
	if b.kvTable != nil && id == b.kvBypassID {
		if key, isGet := workloads.KVRequestKey(payload); isGet {
			b.invokeKVBypass(key, payload, tr, done)
			return
		}
	}
	b.invokeLambda(id, payload, flow, tr, done)
}

// invokeKVBypass serves one GET over the one-sided path: the key's
// probe window (two ranges when it wraps) is fetched by RDMA reads
// flushed under one doorbell, then scanned client-side. A miss falls
// back to the lambda path — the read round trip was the price of
// optimism.
func (b *LambdaNIC) invokeKVBypass(key string, payload []byte, tr *obs.Req, done func(Result)) {
	start := b.sim.Now()
	aOff, aLen, bOff, bLen := b.kvTable.ProbeWindow(key)
	window := make([]byte, aLen+bLen)
	remaining := 1
	if bLen > 0 {
		remaining++
	}
	complete := func() {
		remaining--
		if remaining > 0 {
			return
		}
		if tr != nil {
			tr.AddSpan(obs.StageTransport, "rdma", "one-sided-read", start, b.sim.Now())
		}
		if v, ok := kvstore.Lookup(window, key); ok {
			b.kvHits++
			done(Result{Payload: append([]byte(nil), v...)})
			return
		}
		b.kvFallbacks++
		b.invokeLambda(b.kvBypassID, payload, 0, tr, done)
	}
	b.kvQP.PostRead(b.kvRegion.Key(), aOff, aLen, func(data []byte, err error) {
		if err == nil {
			copy(window[:aLen], data)
		}
		complete()
	})
	if bLen > 0 {
		b.kvQP.PostRead(b.kvRegion.Key(), bOff, bLen, func(data []byte, err error) {
			if err == nil {
				copy(window[aLen:], data)
			}
			complete()
		})
	}
	b.kvQP.RingDoorbell()
}

// invokeLambda is the lambda-invocation path shared by InvokeFlow
// and the bypass fallback.
func (b *LambdaNIC) invokeLambda(id uint32, payload []byte, flow uint64, tr *obs.Req, done func(Result)) {
	b.inflight++
	if b.inflight > b.maxInflight {
		b.maxInflight = b.inflight
	}
	if len(payload) > b.maxPayload {
		b.maxPayload = len(payload)
	}
	finish := func(r Result) {
		b.inflight--
		done(r)
	}
	packets := workloads.Packets(len(payload))
	sent := b.sim.Now()
	inject := func() {
		req := &nicsim.Request{LambdaID: id, Payload: payload, Packets: packets, FlowKey: flow, Trace: tr}
		b.nic.Inject(req, func(resp nicsim.Response, err error) {
			if err != nil {
				finish(Result{Err: err})
				return
			}
			// Response wire trip back to the caller.
			back := b.testbed.Link.OneWay(len(resp.Payload))
			if tr != nil {
				now := b.sim.Now()
				tr.AddSpan(obs.StageTransport, "net", "response-wire", now, now+back)
			}
			b.sim.Schedule(back, func() {
				finish(Result{Payload: resp.Payload})
			})
		})
	}
	if packets > 1 {
		// Multi-packet RPC: commit the payload into NIC memory over
		// RDMA; the completion event triggers the lambda (D3).
		b.rdma.Write(b.region.Key(), 0, payload, func(err error) {
			if err != nil {
				finish(Result{Err: err})
				return
			}
			if tr != nil {
				tr.AddSpan(obs.StageTransport, "net", "rdma-commit", sent, b.sim.Now())
			}
			inject()
		})
		return
	}
	// Single-packet RPC: one wire hop into the parse+match pipeline.
	wire := b.testbed.Link.OneWay(len(payload))
	if tr != nil {
		tr.AddSpan(obs.StageTransport, "net", "request-wire", sent, sent+wire)
	}
	b.sim.Schedule(wire, inject)
}

// WireDelay returns the one-way link latency for a payload of n bytes —
// the delay a parallel-domain caller must model for the request hop it
// performs itself (sim.Parallel Send).
func (b *LambdaNIC) WireDelay(n int) sim.Time { return b.testbed.Link.OneWay(n) }

// InvokeDelivered runs an invocation whose request already crossed the
// wire: the caller modeled the request hop (typically as a cross-domain
// sim.Parallel message of WireDelay latency), so the NIC injects at the
// current time. done fires at NIC completion time with the response's
// wire delay, which the caller models on the way back. Event-for-event
// this matches InvokeTraced on a shared clock: the request hop and
// response hop each cost exactly one scheduled event in either mode,
// which is what keeps parallel and merged chaos runs differentially
// identical. Multi-packet payloads still pay the RDMA commit here,
// device-side.
func (b *LambdaNIC) InvokeDelivered(id uint32, payload []byte, tr *obs.Req, done func(Result, sim.Time)) {
	b.InvokeFlowDelivered(id, payload, 0, tr, done)
}

// InvokeFlowDelivered is InvokeDelivered carrying a flow key into the
// NIC's per-core warm-state model (zero means untracked). It is the
// parallel-domain twin of InvokeFlow: identical event counts keep
// serial and parallel runs differentially identical.
func (b *LambdaNIC) InvokeFlowDelivered(id uint32, payload []byte, flow uint64, tr *obs.Req, done func(Result, sim.Time)) {
	if done == nil {
		done = func(Result, sim.Time) {}
	}
	if b.exe == nil {
		done(Result{Err: ErrNotDeployed}, 0)
		return
	}
	b.inflight++
	if b.inflight > b.maxInflight {
		b.maxInflight = b.inflight
	}
	if len(payload) > b.maxPayload {
		b.maxPayload = len(payload)
	}
	packets := workloads.Packets(len(payload))
	inject := func() {
		req := &nicsim.Request{LambdaID: id, Payload: payload, Packets: packets, FlowKey: flow, Trace: tr}
		b.nic.Inject(req, func(resp nicsim.Response, err error) {
			b.inflight--
			if err != nil {
				done(Result{Err: err}, 0)
				return
			}
			done(Result{Payload: resp.Payload}, b.testbed.Link.OneWay(len(resp.Payload)))
		})
	}
	if packets > 1 {
		sent := b.sim.Now()
		b.rdma.Write(b.region.Key(), 0, payload, func(err error) {
			if err != nil {
				b.inflight--
				done(Result{Err: err}, 0)
				return
			}
			if tr != nil {
				tr.AddSpan(obs.StageTransport, "net", "rdma-commit", sent, b.sim.Now())
			}
			inject()
		})
		return
	}
	inject()
}

// Usage implements Backend: λ-NIC consumes NIC memory (firmware plus
// in-flight working sets) and near-zero host resources (Table 3).
func (b *LambdaNIC) Usage() Usage {
	firmwareMiB := float64(b.nic.MemoryUsed()) / (1 << 20)
	inflightMiB := float64(b.maxInflight) * nicRequestWorkingSetMiB
	return Usage{
		HostCPUPercent: nicManagementCPUPercent,
		HostMemoryMiB:  0,
		NICMemoryMiB:   firmwareMiB + inflightMiB,
	}
}

// Host is a CPU backend (bare-metal or container).
type Host struct {
	name    string
	sim     *sim.Sim
	testbed cluster.Testbed
	host    *cpusim.Host
	mode    cpusim.Mode

	deployed bool

	inflight, maxInflight int
}

// NewBareMetal constructs the Isolate-style bare-metal backend.
// singleCore restricts it to one hardware thread (Fig. 8's "Bare Metal
// (Single Core)").
func NewBareMetal(s *sim.Sim, tb cluster.Testbed, singleCore bool) (*Host, error) {
	return newHost(s, tb, cpusim.ModeBareMetal, singleCore)
}

// NewContainer constructs the OpenFaaS/Docker-style container backend.
func NewContainer(s *sim.Sim, tb cluster.Testbed) (*Host, error) {
	return newHost(s, tb, cpusim.ModeContainer, false)
}

// NewBareMetalQuiet is NewBareMetal without scheduling jitter:
// differential experiments (serial vs parallel domains, ladder vs heap)
// need the host path to draw nothing from the simulator's RNG, since
// the domains' RNG streams differ between topologies.
func NewBareMetalQuiet(s *sim.Sim, tb cluster.Testbed) (*Host, error) {
	return newHostWithJitter(s, tb, cpusim.ModeBareMetal, false, false)
}

func newHost(s *sim.Sim, tb cluster.Testbed, mode cpusim.Mode, singleCore bool) (*Host, error) {
	return newHostWithJitter(s, tb, mode, singleCore, true)
}

func newHostWithJitter(s *sim.Sim, tb cluster.Testbed, mode cpusim.Mode, singleCore, jitter bool) (*Host, error) {
	h, err := cpusim.New(s, cpusim.Config{
		Host:                  tb.Host,
		Costs:                 tb.Costs,
		Mode:                  mode,
		SingleCore:            singleCore,
		ContainerExternalConn: 9500 * time.Microsecond,
		Jitter:                jitter,
	})
	if err != nil {
		return nil, err
	}
	name := mode.String()
	if singleCore {
		name += "-1core"
	}
	return &Host{name: name, sim: s, testbed: tb, host: h, mode: mode}, nil
}

// Name implements Backend.
func (h *Host) Name() string { return h.name }

// CPU exposes the simulated host (for stats in tests and reports).
func (h *Host) CPU() *cpusim.Host { return h.host }

// Deploy registers the workloads' CPU service profiles.
func (h *Host) Deploy(ws []*workloads.Workload) error {
	for _, w := range ws {
		if err := h.host.Deploy(w.Profile); err != nil {
			return fmt.Errorf("%s deploy %s: %w", h.name, w.Name, err)
		}
	}
	h.deployed = len(ws) > 0
	return nil
}

// Invoke implements Backend: wire trip, kernel + dispatch + execution
// on the CPU model, wire trip back.
func (h *Host) Invoke(id uint32, payload []byte, done func(Result)) {
	h.InvokeTraced(id, payload, nil, done)
}

// InvokeTraced implements Traced: the wire trips are attributed to
// transport and the whole CPU-side service (kernel, dispatch,
// execution, context switches) to the host stage — the paper's point
// is precisely that the host path is one opaque expensive stage.
func (h *Host) InvokeTraced(id uint32, payload []byte, tr *obs.Req, done func(Result)) {
	if done == nil {
		done = func(Result) {}
	}
	if !h.deployed {
		done(Result{Err: ErrNotDeployed})
		return
	}
	h.inflight++
	if h.inflight > h.maxInflight {
		h.maxInflight = h.inflight
	}
	packets := workloads.Packets(len(payload))
	sent := h.sim.Now()
	wire := h.testbed.Link.OneWay(len(payload))
	if tr != nil {
		tr.AddSpan(obs.StageTransport, "net", "request-wire", sent, sent+wire)
	}
	h.sim.Schedule(wire, func() {
		submitted := h.sim.Now()
		h.host.Submit(id, len(payload), packets, func(err error) {
			now := h.sim.Now()
			back := h.testbed.Link.OneWay(256)
			if tr != nil {
				tr.AddSpan(obs.StageHost, "host/"+h.name, "service", submitted, now)
				tr.AddSpan(obs.StageTransport, "net", "response-wire", now, now+back)
			}
			h.sim.Schedule(back, func() {
				h.inflight--
				done(Result{Err: err})
			})
		})
	})
}

// WireDelay returns the one-way link latency for a payload of n bytes —
// the delay a parallel-domain caller must model for the request hop it
// performs itself (sim.Parallel Send).
func (h *Host) WireDelay(n int) sim.Time { return h.testbed.Link.OneWay(n) }

// InvokeDelivered runs an invocation whose request already crossed the
// wire: the caller modeled the request hop (typically as a cross-domain
// sim.Parallel message of WireDelay latency), so the host submits at
// the current time. done fires at service completion with the
// response's wire delay, which the caller models on the way back. It
// is the parallel-domain twin of InvokeTraced: the request hop and
// response hop each cost exactly one scheduled event in either mode,
// which keeps serial and parallel boundary runs differentially
// identical.
func (h *Host) InvokeDelivered(id uint32, payload []byte, tr *obs.Req, done func(Result, sim.Time)) {
	if done == nil {
		done = func(Result, sim.Time) {}
	}
	if !h.deployed {
		done(Result{Err: ErrNotDeployed}, 0)
		return
	}
	h.inflight++
	if h.inflight > h.maxInflight {
		h.maxInflight = h.inflight
	}
	packets := workloads.Packets(len(payload))
	submitted := h.sim.Now()
	h.host.Submit(id, len(payload), packets, func(err error) {
		h.inflight--
		if tr != nil {
			tr.AddSpan(obs.StageHost, "host/"+h.name, "service", submitted, h.sim.Now())
		}
		done(Result{Err: err}, h.testbed.Link.OneWay(256))
	})
}

// Usage implements Backend: runtime overhead plus per-in-flight working
// sets on the host; no NIC memory.
func (h *Host) Usage() Usage {
	base := pythonRuntimeMiB
	if h.mode == cpusim.ModeContainer {
		base = containerRuntimeMiB
	}
	cpu := 100 * h.host.Utilization()
	if h.mode == cpusim.ModeContainer {
		cpu += containerBackgroundCPUPercent
	}
	return Usage{
		HostCPUPercent: cpu,
		HostMemoryMiB:  base + float64(h.maxInflight)*hostRequestWorkingSetMiB,
	}
}
