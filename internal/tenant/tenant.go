// Package tenant makes tenants a first-class concept in the λ-NIC
// fleet. The paper packs lambdas onto NICs with no notion of who owns
// them; SuperNIC (arXiv:2109.07744) argues SmartNICs only pay off when
// shared across tenants with enforced isolation. This package supplies
// the shared vocabulary for that sharing: a registry of tenants (ID,
// display name, weight class, quota vector), a binding from workload
// IDs to owning tenants, and token-bucket admission control for the
// gateway edge.
//
// The enforcement points live elsewhere and all key off this package:
// placement quotas in internal/core (DRF keyed by tenant), NIC-local
// hierarchical WFQ in internal/nicsim (outer tenant queue weighted by
// Tenant.Weight), and request shedding in internal/gateway (Admission).
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Class is a tenant's service class; it picks the default scheduling
// weight when a tenant does not set one explicitly.
type Class string

// Service classes, interactive weighted above batch (paper §2: λ-NIC
// targets interactive microsecond-scale lambdas; batch work rides in
// the leftover capacity).
const (
	ClassInteractive Class = "interactive"
	ClassStandard    Class = "standard"
	ClassBatch       Class = "batch"
)

// DefaultWeight returns the scheduling weight a class implies.
func (c Class) DefaultWeight() float64 {
	switch c {
	case ClassInteractive:
		return 4
	case ClassBatch:
		return 1
	default:
		return 2
	}
}

// Quota is a tenant's resource envelope. Zero fields mean "unlimited"
// so a registry can hold best-effort tenants without sentinel values.
type Quota struct {
	// NPUThreads caps the tenant's share of NPU hardware threads
	// across the fleet (placement-time, via DRF).
	NPUThreads float64
	// InstrStoreBytes caps per-core instruction-store bytes the
	// tenant's lambdas may occupy on one NIC.
	InstrStoreBytes int
	// IMEMBytes and EMEMBytes cap the tenant's object footprint in
	// the NIC's internal and external memory levels.
	IMEMBytes int
	EMEMBytes int
	// MemoryMB caps host-side memory for host-fallback replicas.
	MemoryMB float64
	// RatePerSec and Burst parameterize gateway admission: a token
	// bucket refilled at RatePerSec with capacity Burst. RatePerSec
	// <= 0 disables admission control for the tenant.
	RatePerSec float64
	Burst      float64
}

// Tenant is one registered tenant.
type Tenant struct {
	// ID is the dense numeric handle used on the data path (WFQ flow
	// keys, per-tenant counters). Assigned by the registry.
	ID uint32
	// Name is the display / control-store name.
	Name string
	// Class picks the default scheduling weight.
	Class Class
	// Weight is the WFQ weight for the tenant's outer queue. If zero
	// at registration the class default is used.
	Weight float64
	// Quota is the tenant's resource envelope.
	Quota Quota
}

// DefaultTenantName is the tenant that owns workloads registered
// without an explicit owner, preserving the single-tenant behavior of
// the earlier PRs.
const DefaultTenantName = "default"

// Registry errors.
var (
	ErrDuplicateTenant = errors.New("tenant: already registered")
	ErrUnknownTenant   = errors.New("tenant: unknown tenant")
)

// Registry maps tenant names and IDs to tenants and binds workload IDs
// to their owners. Safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*Tenant
	byID     map[uint32]*Tenant
	owner    map[uint32]uint32 // workload ID -> tenant ID
	nextID   uint32
	defaults *Tenant
}

// NewRegistry builds a registry pre-seeded with the "default" tenant
// (standard class, unlimited quota, ID 0).
func NewRegistry() *Registry {
	r := &Registry{
		byName: make(map[string]*Tenant),
		byID:   make(map[uint32]*Tenant),
		owner:  make(map[uint32]uint32),
	}
	def := &Tenant{ID: 0, Name: DefaultTenantName, Class: ClassStandard,
		Weight: ClassStandard.DefaultWeight()}
	r.byName[def.Name] = def
	r.byID[def.ID] = def
	r.defaults = def
	r.nextID = 1
	return r
}

// Add registers a tenant and assigns its ID. A zero Weight takes the
// class default. The passed struct is copied; the stored tenant is
// returned.
func (r *Registry) Add(t Tenant) (*Tenant, error) {
	if t.Name == "" {
		return nil, errors.New("tenant: name must be non-empty")
	}
	if t.Weight < 0 {
		return nil, fmt.Errorf("tenant: %s weight %v must not be negative", t.Name, t.Weight)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[t.Name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateTenant, t.Name)
	}
	if t.Class == "" {
		t.Class = ClassStandard
	}
	if t.Weight == 0 {
		t.Weight = t.Class.DefaultWeight()
	}
	t.ID = r.nextID
	r.nextID++
	stored := &t
	r.byName[t.Name] = stored
	r.byID[t.ID] = stored
	return stored, nil
}

// Get returns a tenant by name.
func (r *Registry) Get(name string) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// ByID returns a tenant by numeric ID.
func (r *Registry) ByID(id uint32) (*Tenant, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.byID[id]
	return t, ok
}

// Default returns the pre-seeded default tenant.
func (r *Registry) Default() *Tenant { return r.defaults }

// Bind records that a workload belongs to the named tenant.
func (r *Registry) Bind(workloadID uint32, tenantName string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byName[tenantName]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownTenant, tenantName)
	}
	r.owner[workloadID] = t.ID
	return nil
}

// Owner returns the tenant owning a workload ID. Unbound workloads
// belong to the default tenant.
func (r *Registry) Owner(workloadID uint32) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if tid, ok := r.owner[workloadID]; ok {
		if t, ok := r.byID[tid]; ok {
			return t
		}
	}
	return r.defaults
}

// OwnerID is Owner reduced to the numeric ID — the shape the NIC
// scheduler wants for its tenant classifier (nicsim.Config.TenantOf).
func (r *Registry) OwnerID(workloadID uint32) uint32 {
	return r.Owner(workloadID).ID
}

// Tenants returns all registered tenants sorted by name (deterministic
// for control-store publication and rendering).
func (r *Registry) Tenants() []*Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Tenant, 0, len(r.byName))
	for _, t := range r.byName {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Weights returns the tenant-ID → WFQ-weight map the NIC scheduler
// consumes (nicsim.Config.TenantWeights).
func (r *Registry) Weights() map[uint32]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[uint32]float64, len(r.byID))
	for id, t := range r.byID {
		out[id] = t.Weight
	}
	return out
}
