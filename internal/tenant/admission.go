package tenant

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrThrottled is the distinct shed signal for over-quota tenants, so
// clients and telemetry can tell quota throttling (back off, don't
// retry hot) from genuine overload or failure (failover/retry).
var ErrThrottled = errors.New("tenant: throttled (rate quota exceeded)")

// TokenBucket is a deterministic, clock-abstracted token bucket:
// callers pass the current time explicitly, so the same bucket works
// on the wall clock (gateway) and on simulated virtual time
// (experiments) with bit-identical decisions. Not safe for concurrent
// use — Admission adds the locking.
type TokenBucket struct {
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Duration
}

// NewTokenBucket builds a bucket refilled at rate tokens/sec with the
// given capacity. The bucket starts full. rate and burst must be
// positive.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("tenant: token bucket rate %v and burst %v must be positive", rate, burst)
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Allow consumes one token if available at time now, reporting whether
// the request is admitted. now must be monotonically non-decreasing
// across calls; an earlier now refills nothing.
func (b *TokenBucket) Allow(now time.Duration) bool {
	if now > b.last {
		b.tokens += b.rate * (now - b.last).Seconds()
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Tokens returns the current token count (diagnostics/tests).
func (b *TokenBucket) Tokens() float64 { return b.tokens }

// Admission is the gateway-edge admission controller: one token bucket
// per rate-limited tenant. Tenants without a rate quota are always
// admitted. Safe for concurrent use.
type Admission struct {
	mu      sync.Mutex
	buckets map[uint32]*TokenBucket
	names   map[uint32]string
	shed    map[uint32]uint64
}

// NewAdmission builds an empty admission controller.
func NewAdmission() *Admission {
	return &Admission{
		buckets: make(map[uint32]*TokenBucket),
		names:   make(map[uint32]string),
		shed:    make(map[uint32]uint64),
	}
}

// SetQuota installs (or replaces) a tenant's rate quota. A
// non-positive RatePerSec removes any existing bucket, making the
// tenant unlimited. Burst defaults to RatePerSec when unset.
func (a *Admission) SetQuota(t *Tenant) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.names[t.ID] = t.Name
	if t.Quota.RatePerSec <= 0 {
		delete(a.buckets, t.ID)
		return nil
	}
	burst := t.Quota.Burst
	if burst <= 0 {
		burst = t.Quota.RatePerSec
	}
	b, err := NewTokenBucket(t.Quota.RatePerSec, burst)
	if err != nil {
		return err
	}
	a.buckets[t.ID] = b
	return nil
}

// Admit decides one request for a tenant at time now. Over-quota
// requests return an error wrapping ErrThrottled that names the
// tenant.
func (a *Admission) Admit(tenantID uint32, now time.Duration) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	b, ok := a.buckets[tenantID]
	if !ok || b.Allow(now) {
		return nil
	}
	a.shed[tenantID]++
	name := a.names[tenantID]
	if name == "" {
		name = fmt.Sprintf("#%d", tenantID)
	}
	return fmt.Errorf("%w: tenant %s", ErrThrottled, name)
}

// Quotas snapshots the tenants known to the controller (ID → name) —
// the series set for per-tenant metric exposition. Tenants whose
// bucket was removed stay listed; their shed count simply stops
// growing.
func (a *Admission) Quotas() map[uint32]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[uint32]string, len(a.names))
	for id, name := range a.names {
		out[id] = name
	}
	return out
}

// Shed returns how many requests have been throttled for a tenant.
func (a *Admission) Shed(tenantID uint32) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shed[tenantID]
}

// TotalShed returns the throttle count summed over all tenants.
func (a *Admission) TotalShed() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	var n uint64
	for _, v := range a.shed {
		n += v
	}
	return n
}
