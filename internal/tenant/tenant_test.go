package tenant

import (
	"errors"
	"testing"
	"time"
)

func TestRegistrySeedsDefault(t *testing.T) {
	r := NewRegistry()
	def := r.Default()
	if def.Name != DefaultTenantName || def.ID != 0 {
		t.Fatalf("default tenant = %+v, want name %q id 0", def, DefaultTenantName)
	}
	if got := r.Owner(999); got != def {
		t.Fatalf("unbound workload owner = %+v, want default", got)
	}
	if got := r.OwnerID(999); got != 0 {
		t.Fatalf("unbound workload OwnerID = %d, want 0", got)
	}
}

func TestRegistryAddAndBind(t *testing.T) {
	r := NewRegistry()
	ten, err := r.Add(Tenant{Name: "acme", Class: ClassInteractive})
	if err != nil {
		t.Fatal(err)
	}
	if ten.ID == 0 {
		t.Fatal("added tenant got the default tenant's ID")
	}
	if ten.Weight != ClassInteractive.DefaultWeight() {
		t.Fatalf("weight = %v, want class default %v", ten.Weight, ClassInteractive.DefaultWeight())
	}
	if _, err := r.Add(Tenant{Name: "acme"}); !errors.Is(err, ErrDuplicateTenant) {
		t.Fatalf("duplicate add err = %v, want ErrDuplicateTenant", err)
	}
	if err := r.Bind(7, "acme"); err != nil {
		t.Fatal(err)
	}
	if got := r.Owner(7); got != ten {
		t.Fatalf("owner(7) = %+v, want acme", got)
	}
	if err := r.Bind(8, "nosuch"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("bind to unknown tenant err = %v, want ErrUnknownTenant", err)
	}
	by, ok := r.ByID(ten.ID)
	if !ok || by != ten {
		t.Fatalf("ByID(%d) = %+v, %v", ten.ID, by, ok)
	}
}

func TestRegistryExplicitWeightWins(t *testing.T) {
	r := NewRegistry()
	ten, err := r.Add(Tenant{Name: "bulk", Class: ClassBatch, Weight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ten.Weight != 0.5 {
		t.Fatalf("weight = %v, want explicit 0.5", ten.Weight)
	}
	w := r.Weights()
	if w[ten.ID] != 0.5 || w[0] != ClassStandard.DefaultWeight() {
		t.Fatalf("Weights() = %v", w)
	}
}

func TestRegistryTenantsSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := r.Add(Tenant{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	ts := r.Tenants()
	want := []string{"alpha", DefaultTenantName, "mid", "zeta"}
	if len(ts) != len(want) {
		t.Fatalf("got %d tenants, want %d", len(ts), len(want))
	}
	for i, w := range want {
		if ts[i].Name != w {
			t.Fatalf("tenants[%d] = %s, want %s", i, ts[i].Name, w)
		}
	}
}

func TestTokenBucketRefill(t *testing.T) {
	b, err := NewTokenBucket(10, 2) // 10 tokens/s, burst 2
	if err != nil {
		t.Fatal(err)
	}
	// Starts full: two immediate requests pass, third sheds.
	if !b.Allow(0) || !b.Allow(0) {
		t.Fatal("bucket should start full")
	}
	if b.Allow(0) {
		t.Fatal("empty bucket admitted a request")
	}
	// 100ms refills one token at 10/s.
	if !b.Allow(100 * time.Millisecond) {
		t.Fatal("refilled token not granted")
	}
	if b.Allow(100 * time.Millisecond) {
		t.Fatal("double-spend of one refilled token")
	}
	// A long idle period caps at burst, not rate*dt.
	for i := 0; i < 2; i++ {
		if !b.Allow(time.Hour) {
			t.Fatalf("token %d after idle not granted", i)
		}
	}
	if b.Allow(time.Hour) {
		t.Fatal("burst cap exceeded after idle")
	}
}

func TestTokenBucketRejectsBadParams(t *testing.T) {
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewTokenBucket(1, 0); err == nil {
		t.Fatal("zero burst accepted")
	}
}

func TestAdmissionThrottlesOnlyQuotaedTenants(t *testing.T) {
	r := NewRegistry()
	lim, _ := r.Add(Tenant{Name: "bulk", Class: ClassBatch,
		Quota: Quota{RatePerSec: 10, Burst: 1}})
	free, _ := r.Add(Tenant{Name: "vip", Class: ClassInteractive})

	adm := NewAdmission()
	if err := adm.SetQuota(lim); err != nil {
		t.Fatal(err)
	}
	if err := adm.SetQuota(free); err != nil {
		t.Fatal(err)
	}

	// Unlimited tenant: never shed.
	for i := 0; i < 100; i++ {
		if err := adm.Admit(free.ID, 0); err != nil {
			t.Fatalf("unlimited tenant shed at %d: %v", i, err)
		}
	}
	// Limited tenant: burst of 1, then throttled with the sentinel.
	if err := adm.Admit(lim.ID, 0); err != nil {
		t.Fatal(err)
	}
	err := adm.Admit(lim.ID, 0)
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("over-quota err = %v, want ErrThrottled", err)
	}
	if adm.Shed(lim.ID) != 1 || adm.TotalShed() != 1 {
		t.Fatalf("shed counts = %d/%d, want 1/1", adm.Shed(lim.ID), adm.TotalShed())
	}
	// Virtual time advances 100ms: one token back.
	if err := adm.Admit(lim.ID, 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestAdmissionQuotaRemoval(t *testing.T) {
	r := NewRegistry()
	ten, _ := r.Add(Tenant{Name: "bulk", Quota: Quota{RatePerSec: 1, Burst: 1}})
	adm := NewAdmission()
	if err := adm.SetQuota(ten); err != nil {
		t.Fatal(err)
	}
	_ = adm.Admit(ten.ID, 0)
	if err := adm.Admit(ten.ID, 0); !errors.Is(err, ErrThrottled) {
		t.Fatalf("err = %v, want throttled", err)
	}
	// Clearing the rate quota lifts the limit.
	ten.Quota.RatePerSec = 0
	if err := adm.SetQuota(ten); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := adm.Admit(ten.ID, 0); err != nil {
			t.Fatalf("unlimited after removal, got %v", err)
		}
	}
}
