package trace

import (
	"testing"
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/obs"
	"lambdanic/internal/sim"
)

// fixedInvoker serves every request after a constant delay, with
// unlimited parallelism.
type fixedInvoker struct {
	s       *sim.Sim
	service time.Duration
	served  int
}

func (f *fixedInvoker) Invoke(id uint32, payload []byte, done func(backend.Result)) {
	f.served++
	f.s.Schedule(f.service, func() { done(backend.Result{}) })
}

// serialInvoker serves one request at a time (a 1-server queue).
type serialInvoker struct {
	s       *sim.Sim
	service time.Duration
	freeAt  sim.Time
}

func (f *serialInvoker) Invoke(id uint32, payload []byte, done func(backend.Result)) {
	start := f.s.Now()
	if f.freeAt > start {
		start = f.freeAt
	}
	f.freeAt = start + sim.Time(f.service)
	f.s.ScheduleAt(f.freeAt, func() { done(backend.Result{}) })
}

func TestClosedLoopSequential(t *testing.T) {
	s := sim.New(1)
	inv := &fixedInvoker{s: s, service: time.Millisecond}
	res, err := ClosedLoop{
		Concurrency: 1,
		Requests:    10,
		Gen:         Fixed(1, func(i int) []byte { return nil }),
	}.Run(s, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() != 10 {
		t.Fatalf("samples = %d", res.Latency.N())
	}
	// Closed loop with one outstanding request: each latency is exactly
	// the service time, and throughput is 1/service.
	if got := res.Latency.Mean(); got < 0.00099 || got > 0.00101 {
		t.Errorf("mean latency = %v, want 1ms", got)
	}
	if got := res.Throughput.PerSecond(); got < 990 || got > 1010 {
		t.Errorf("throughput = %v, want ~1000", got)
	}
}

func TestClosedLoopConcurrencyScalesThroughput(t *testing.T) {
	run := func(conc int) float64 {
		s := sim.New(1)
		inv := &fixedInvoker{s: s, service: time.Millisecond}
		res, err := ClosedLoop{
			Concurrency: conc,
			Requests:    100,
			Gen:         Fixed(1, func(i int) []byte { return nil }),
		}.Run(s, inv)
		if err != nil {
			t.Fatal(err)
		}
		return res.Throughput.PerSecond()
	}
	one, ten := run(1), run(10)
	if ten < 8*one {
		t.Errorf("concurrency 10 throughput %v not ~10x of %v", ten, one)
	}
}

func TestClosedLoopWarmupExcluded(t *testing.T) {
	s := sim.New(1)
	inv := &fixedInvoker{s: s, service: time.Millisecond}
	res, err := ClosedLoop{
		Concurrency: 1,
		Requests:    5,
		Warmup:      3,
		Gen:         Fixed(1, func(i int) []byte { return nil }),
	}.Run(s, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() != 5 {
		t.Errorf("measured samples = %d, want 5 (warmup excluded)", res.Latency.N())
	}
	if inv.served != 8 {
		t.Errorf("served = %d, want 8 (5 + 3 warmup)", inv.served)
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	s := sim.New(1)
	fail := invokerFunc(func(id uint32, payload []byte, done func(backend.Result)) {
		s.Schedule(time.Microsecond, func() { done(backend.Result{Err: errTest}) })
	})
	res, err := ClosedLoop{
		Concurrency: 1,
		Requests:    4,
		Gen:         Fixed(1, func(i int) []byte { return nil }),
	}.Run(s, fail)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 4 {
		t.Errorf("Errors = %d, want 4", res.Errors)
	}
	if res.Latency.N() != 0 {
		t.Errorf("failed requests contributed latencies: %d", res.Latency.N())
	}
}

type invokerFunc func(uint32, []byte, func(backend.Result))

func (f invokerFunc) Invoke(id uint32, payload []byte, done func(backend.Result)) {
	f(id, payload, done)
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test error" }

func TestRoundRobinGenerator(t *testing.T) {
	gen := RoundRobin(
		Fixed(1, func(i int) []byte { return []byte{byte(i)} }),
		Fixed(2, func(i int) []byte { return []byte{byte(i)} }),
		Fixed(3, func(i int) []byte { return []byte{byte(i)} }),
	)
	for i := 0; i < 9; i++ {
		r := gen(i)
		if want := uint32(i%3) + 1; r.Workload != want {
			t.Errorf("request %d workload = %d, want %d", i, r.Workload, want)
		}
		if r.Payload[0] != byte(i/3) {
			t.Errorf("request %d inner index = %d, want %d", i, r.Payload[0], i/3)
		}
	}
}

func TestGatewaySerializesOccupancy(t *testing.T) {
	s := sim.New(1)
	inv := &fixedInvoker{s: s, service: 0}
	gw := NewGateway(s, inv, 0, 100*time.Microsecond)
	// 10 simultaneous requests through a 100µs-occupancy gateway: the
	// last completes no earlier than 1ms.
	completed := 0
	var last sim.Time
	for i := 0; i < 10; i++ {
		gw.Invoke(1, nil, func(backend.Result) {
			completed++
			last = s.Now()
		})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if completed != 10 {
		t.Fatalf("completed = %d", completed)
	}
	if last < 900*time.Microsecond {
		t.Errorf("last completion at %v, want >= 900µs (serialized)", last)
	}
}

func TestGatewayAddsPipelineLatency(t *testing.T) {
	s := sim.New(1)
	inv := &fixedInvoker{s: s, service: time.Microsecond}
	gw := NewGateway(s, inv, time.Millisecond, 0)
	var at sim.Time
	gw.Invoke(1, nil, func(backend.Result) { at = s.Now() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + time.Microsecond
	if at != sim.Time(want) {
		t.Errorf("completion at %v, want %v", at, want)
	}
}

func TestClosedLoopThroughSerialBottleneck(t *testing.T) {
	// With a serialized server, throughput is capped at 1/service no
	// matter the concurrency, and latency grows with queue depth
	// (Little's law) — the mechanism behind Table 2.
	s := sim.New(1)
	inv := &serialInvoker{s: s, service: time.Millisecond}
	res, err := ClosedLoop{
		Concurrency: 8,
		Requests:    80,
		Gen:         Fixed(1, func(i int) []byte { return nil }),
	}.Run(s, inv)
	if err != nil {
		t.Fatal(err)
	}
	tput := res.Throughput.PerSecond()
	if tput < 900 || tput > 1100 {
		t.Errorf("throughput = %v, want ~1000 (serialized)", tput)
	}
	// Latency ~ concurrency x service.
	if mean := res.Latency.Mean(); mean < 0.007 || mean > 0.009 {
		t.Errorf("mean latency = %v, want ~8ms", mean)
	}
}

func TestOpenLoopWindowOpensOnceAtTimeZero(t *testing.T) {
	// With no warmup the first measured request is issued at virtual
	// time 0, so the throughput window legitimately starts at 0. The
	// window must open exactly once: re-stamping Start on later issues
	// (the old `Start == 0` sentinel check) would shrink the window and
	// inflate throughput.
	s := sim.New(1)
	inv := &fixedInvoker{s: s, service: 10 * time.Microsecond}
	res, err := OpenLoop{
		RatePerSec: 1e6,
		Requests:   100,
		Gen:        Fixed(1, func(i int) []byte { return nil }),
	}.Run(s, inv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput.Start != 0 {
		t.Errorf("window start = %v, want 0 (re-stamped after first issue)", res.Throughput.Start)
	}
	if res.Throughput.Completed != 100 {
		t.Errorf("completed = %d, want 100", res.Throughput.Completed)
	}
	if res.Throughput.End <= res.Throughput.Start {
		t.Errorf("window [%v, %v] is empty", res.Throughput.Start, res.Throughput.End)
	}
}

func TestClosedLoopTracesMeasuredRequestsOnly(t *testing.T) {
	s := sim.New(1)
	inv := &fixedInvoker{s: s, service: time.Millisecond}
	col := obs.NewCollector(s.Now)
	_, err := ClosedLoop{
		Concurrency: 1,
		Requests:    5,
		Warmup:      3,
		Gen:         Labeled(7, "web", func(i int) []byte { return nil }),
		Tracer:      col,
	}.Run(s, inv)
	if err != nil {
		t.Fatal(err)
	}
	reqs := col.Requests()
	if len(reqs) != 5 {
		t.Fatalf("traced %d requests, want 5 (warmup excluded)", len(reqs))
	}
	for _, r := range reqs {
		if r.Workload != 7 || r.Label != "web" {
			t.Errorf("request %d: workload=%d label=%q", r.ID, r.Workload, r.Label)
		}
		if r.End <= r.Start {
			t.Errorf("request %d: not finished (start=%v end=%v)", r.ID, r.Start, r.End)
		}
	}
}
