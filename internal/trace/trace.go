// Package trace drives simulated backends with the load patterns the
// paper's evaluation uses (§6.3): closed-loop testing "with sender
// generating each request one after the other", parallel testing with
// 56 concurrent requests, and round-robin generation across multiple
// lambdas for the contention experiments (§6.3.2). It also models the
// OpenFaaS gateway stage every request traverses in the throughput
// experiments.
package trace

import (
	"time"

	"lambdanic/internal/backend"
	"lambdanic/internal/metrics"
	"lambdanic/internal/obs"
	"lambdanic/internal/sim"
)

// Invoker submits one request into the simulation. backend.Backend
// satisfies it.
type Invoker interface {
	Invoke(id uint32, payload []byte, done func(backend.Result))
}

// invoke dispatches through the target's traced path when a span
// container is attached and the target supports it.
func invoke(target Invoker, id uint32, payload []byte, tr *obs.Req, done func(backend.Result)) {
	if tr != nil {
		if ti, ok := target.(backend.Traced); ok {
			ti.InvokeTraced(id, payload, tr, done)
			return
		}
	}
	target.Invoke(id, payload, done)
}

// Gateway models the gateway + NAT proxy in front of the backends: a
// pipeline latency every request experiences plus a serialized
// per-request CPU occupancy whose reciprocal caps cluster throughput
// (Table 2's 58 kreq/s). It implements Invoker by wrapping another.
type Gateway struct {
	sim       *sim.Sim
	inner     Invoker
	latency   time.Duration
	occupancy time.Duration
	freeAt    sim.Time
}

// NewGateway wraps inner with the gateway stage.
func NewGateway(s *sim.Sim, inner Invoker, latency, occupancy time.Duration) *Gateway {
	return &Gateway{sim: s, inner: inner, latency: latency, occupancy: occupancy}
}

// Invoke implements Invoker: the request waits for the gateway's
// serialized slot, experiences the pipeline latency, and then enters
// the backend; the response pays the pipeline latency on the way out.
func (g *Gateway) Invoke(id uint32, payload []byte, done func(backend.Result)) {
	g.InvokeTraced(id, payload, nil, done)
}

// InvokeTraced implements backend.Traced: the occupancy wait plus the
// ingress pipeline half and the egress half are attributed to the
// gateway stage; tr is forwarded to the wrapped invoker.
func (g *Gateway) InvokeTraced(id uint32, payload []byte, tr *obs.Req, done func(backend.Result)) {
	now := g.sim.Now()
	start := now
	if g.freeAt > start {
		start = g.freeAt
	}
	g.freeAt = start + sim.Time(g.occupancy)
	enter := start + sim.Time(g.latency)/2
	if tr != nil {
		tr.AddSpan(obs.StageGateway, "gateway", "ingress", now, enter)
	}
	g.sim.ScheduleAt(enter, func() {
		invoke(g.inner, id, payload, tr, func(r backend.Result) {
			if tr != nil {
				back := g.sim.Now()
				tr.AddSpan(obs.StageGateway, "gateway", "egress", back, back+sim.Time(g.latency)/2)
			}
			g.sim.Schedule(sim.Time(g.latency)/2, func() { done(r) })
		})
	})
}

// Request is one generated request.
type Request struct {
	Workload uint32
	Payload  []byte
	// Label optionally names the workload in trace reports.
	Label string
}

// Generator produces the i-th request of a run.
type Generator func(i int) Request

// RoundRobin interleaves several per-workload generators — the round-
// robin request pattern of §6.3.2.
func RoundRobin(gens ...Generator) Generator {
	return func(i int) Request {
		g := gens[i%len(gens)]
		return g(i / len(gens))
	}
}

// Fixed generates requests for one workload using its payload maker.
func Fixed(id uint32, makePayload func(i int) []byte) Generator {
	return func(i int) Request {
		return Request{Workload: id, Payload: makePayload(i)}
	}
}

// Labeled is Fixed with a workload name attached for trace reports.
func Labeled(id uint32, label string, makePayload func(i int) []byte) Generator {
	return func(i int) Request {
		return Request{Workload: id, Payload: makePayload(i), Label: label}
	}
}

// Result summarizes one load run.
type Result struct {
	Latency    metrics.Sample
	Throughput metrics.Throughput
	Errors     int
}

// OpenLoop issues requests at a fixed offered rate with exponential
// (Poisson) interarrival times, independent of completions — the
// arrival model for latency-versus-load curves. Unlike ClosedLoop,
// queues can grow without bound when the target saturates.
type OpenLoop struct {
	// RatePerSec is the offered load.
	RatePerSec float64
	Requests   int
	Gen        Generator
	Warmup     int
	// Tracer, when non-nil, receives a span container per measured
	// request (sampling is the tracer's decision).
	Tracer obs.Tracer
}

// Run drives the target, returning latency and throughput measurements.
func (o OpenLoop) Run(s *sim.Sim, target Invoker) (*Result, error) {
	res, err := o.Start(s, target)
	if err != nil {
		return nil, err
	}
	if err := s.RunUntilIdle(); err != nil {
		return nil, err
	}
	return res, nil
}

// Start schedules the whole arrival process on s without running the
// simulation: the result fills in as the caller drives s (or the
// sim.Parallel domain holding it). Use Run unless the simulation is
// executed externally.
func (o OpenLoop) Start(s *sim.Sim, target Invoker) (*Result, error) {
	if o.RatePerSec <= 0 {
		return nil, errInvalidRate
	}
	res := &Result{}
	total := o.Warmup + o.Requests
	rng := s.Rand()
	at := sim.Time(0)
	// windowOpen distinguishes "throughput window not yet opened" from
	// a window legitimately starting at virtual time 0: comparing
	// Start against 0 would re-stamp the window on every issue until a
	// nonzero time was recorded.
	windowOpen := false
	for i := 0; i < total; i++ {
		i := i
		req := o.Gen(i)
		measured := i >= o.Warmup
		s.ScheduleAt(at, func() {
			if measured && !windowOpen {
				windowOpen = true
				res.Throughput.Start = s.Now()
			}
			start := s.Now()
			var tr *obs.Req
			if o.Tracer != nil && measured {
				tr = o.Tracer.Begin(req.Workload, req.Label)
			}
			invoke(target, req.Workload, req.Payload, tr, func(r backend.Result) {
				tr.Finish(s.Now(), r.Err)
				if !measured {
					return
				}
				if r.Err != nil {
					res.Errors++
				} else {
					res.Latency.AddDuration(s.Now() - start)
				}
				res.Throughput.Completed++
				res.Throughput.End = s.Now()
			})
		})
		gap := rng.ExpFloat64() / o.RatePerSec
		at += sim.Time(gap * float64(time.Second))
	}
	return res, nil
}

var errInvalidRate = errInvalidRateType{}

type errInvalidRateType struct{}

func (errInvalidRateType) Error() string { return "trace: open-loop rate must be positive" }

// ClosedLoop is a generator keeping Concurrency requests outstanding
// until Requests complete. Concurrency 1 is the paper's closed-loop
// test; 56 is its parallel test.
type ClosedLoop struct {
	Concurrency int
	Requests    int
	Gen         Generator
	// Warmup requests run before measurement starts (the paper
	// measures warm lambdas) and are excluded from the results.
	Warmup int
	// Tracer, when non-nil, receives a span container per measured
	// request (sampling is the tracer's decision).
	Tracer obs.Tracer
}

// Run drives the target until all requests complete, returning latency
// and throughput measurements. It runs the simulation to idle.
func (c ClosedLoop) Run(s *sim.Sim, target Invoker) (*Result, error) {
	res, err := c.Start(s, target)
	if err != nil {
		return nil, err
	}
	if err := s.RunUntilIdle(); err != nil {
		return nil, err
	}
	return res, nil
}

// Start issues the initial concurrency window on s without running the
// simulation; subsequent requests chain from completion callbacks as
// the caller drives s. Use Run unless the simulation is executed
// externally (e.g. by a sim.Parallel coordinator).
func (c ClosedLoop) Start(s *sim.Sim, target Invoker) (*Result, error) {
	res := &Result{}
	if c.Concurrency < 1 {
		c.Concurrency = 1
	}
	total := c.Warmup + c.Requests
	issued := 0
	completed := 0
	measuring := false

	var issue func()
	issue = func() {
		if issued >= total {
			return
		}
		i := issued
		issued++
		req := c.Gen(i)
		start := s.Now()
		if i == c.Warmup {
			// First measured request: open the throughput window.
			res.Throughput.Start = s.Now()
			measuring = true
		}
		measured := measuring && i >= c.Warmup
		var tr *obs.Req
		if c.Tracer != nil && measured {
			tr = c.Tracer.Begin(req.Workload, req.Label)
		}
		invoke(target, req.Workload, req.Payload, tr, func(r backend.Result) {
			tr.Finish(s.Now(), r.Err)
			completed++
			if measured {
				if r.Err != nil {
					res.Errors++
				} else {
					res.Latency.AddDuration(s.Now() - start)
				}
				res.Throughput.Completed++
				res.Throughput.End = s.Now()
			}
			issue()
		})
	}
	for k := 0; k < c.Concurrency && k < total; k++ {
		issue()
	}
	return res, nil
}
