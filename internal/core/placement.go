package core

import (
	"fmt"
	"sort"

	"lambdanic/internal/drf"
	"lambdanic/internal/workloads"
)

// Placement planning: the workload manager decides how many worker
// NICs each lambda gets using Dominant Resource Fairness over the
// fleet's aggregate NIC resources — the allocation mechanism the paper
// names as future work (§4.2.1 D1: "explore more sophisticated
// resource-allocation mechanisms (e.g., DRF)").

// WorkloadDemand is one lambda's per-replica NIC resource demand.
type WorkloadDemand struct {
	Workload *workloads.Workload
	// ThreadsPerReplica is the NPU thread share one replica consumes at
	// its target load.
	ThreadsPerReplica float64
	// MemoryMBPerReplica is NIC memory per replica (working sets +
	// objects).
	MemoryMBPerReplica float64
	// Optional NIC-level demands for tenant-quota planning
	// (PlanTenantPlacements). Zero fields are simply omitted from the
	// DRF demand vector — the zero-demand-key semantics: the resource
	// is neither consumed nor counted toward dominant share.
	InstrPerReplica     float64
	IMEMBytesPerReplica float64
	EMEMBytesPerReplica float64
}

// FleetCapacity aggregates worker NIC resources.
type FleetCapacity struct {
	// Threads is total NPU threads across workers (448 per NIC).
	Threads float64
	// MemoryMB is total NIC memory in MB.
	MemoryMB float64
	// Optional NIC-level capacities for tenant-quota planning
	// (instruction-store bytes, IMEM/EMEM bytes across the fleet).
	// Non-positive dimensions are omitted from the DRF capacity.
	InstrStore float64
	IMEMBytes  float64
	EMEMBytes  float64
	// Workers are the worker node names, used round-robin when
	// materializing replica assignments.
	Workers []string
}

// PlannedPlacement is the DRF outcome for one workload.
type PlannedPlacement struct {
	Workload string
	// Tenant is the owning tenant when planned by PlanTenantPlacements
	// ("" for the per-lambda PlanPlacements path).
	Tenant   string
	Replicas int
	// Workers are the nodes hosting the replicas (round-robin over the
	// fleet; multiple replicas may share a node's NIC).
	Workers []string
}

// PlanPlacements allocates replicas to workloads with DRF and
// materializes worker assignments. Every workload receives at least one
// replica (feasibility is validated against capacity).
func PlanPlacements(fleet FleetCapacity, demands []WorkloadDemand) ([]PlannedPlacement, error) {
	if len(fleet.Workers) == 0 {
		return nil, fmt.Errorf("core: fleet has no workers")
	}
	if len(demands) == 0 {
		return nil, fmt.Errorf("core: no workload demands")
	}
	alloc, err := drf.New(drf.Resources{
		"threads": fleet.Threads,
		"memMB":   fleet.MemoryMB,
	})
	if err != nil {
		return nil, err
	}
	for _, d := range demands {
		if d.Workload == nil {
			return nil, fmt.Errorf("core: demand without workload")
		}
		err := alloc.AddUser(d.Workload.Name, drf.Resources{
			"threads": d.ThreadsPerReplica,
			"memMB":   d.MemoryMBPerReplica,
		})
		if err != nil {
			return nil, fmt.Errorf("core: demand for %s: %w", d.Workload.Name, err)
		}
	}
	alloc.AllocateAll()

	out := make([]PlannedPlacement, 0, len(demands))
	next := 0
	for _, d := range demands {
		replicas := alloc.Tasks(d.Workload.Name)
		if replicas == 0 {
			return nil, fmt.Errorf("core: workload %s starved (demand exceeds fleet share)", d.Workload.Name)
		}
		workers := make([]string, 0, replicas)
		seen := make(map[string]bool)
		for r := 0; r < replicas; r++ {
			w := fleet.Workers[next%len(fleet.Workers)]
			next++
			if !seen[w] {
				seen[w] = true
				workers = append(workers, w)
			}
		}
		sort.Strings(workers)
		out = append(out, PlannedPlacement{
			Workload: d.Workload.Name,
			Replicas: replicas,
			Workers:  workers,
		})
	}
	return out, nil
}

// ApplyPlan records every planned placement in the control store.
func (m *Manager) ApplyPlan(plan []PlannedPlacement) error {
	for _, p := range plan {
		if err := m.RecordPlacement(p.Workload, p.Workers); err != nil {
			return err
		}
	}
	return nil
}
