package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/kvstore"
	"lambdanic/internal/monitor"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

func newTestWorker(t *testing.T, n *transport.MemNetwork, name string) *Worker {
	t.Helper()
	conn, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(conn, nil)
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("worker close: %v", err)
		}
	})
	return w
}

func TestWorkerInstallRemove(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	web := workloads.WebServer()
	if err := w.Install(web); err != nil {
		t.Fatal(err)
	}
	if err := w.Install(web); !errors.Is(err, ErrDuplicateWorkload) {
		t.Errorf("duplicate install: %v", err)
	}
	if got := w.Installed(); len(got) != 1 || got[0] != web.ID {
		t.Errorf("Installed = %v", got)
	}
	w.Remove(web.ID)
	if got := w.Installed(); len(got) != 0 {
		t.Errorf("Installed after Remove = %v", got)
	}
}

func TestWorkerRejectsHandlerlessWorkload(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	if err := w.Install(&workloads.Workload{Name: "stub", ID: 9}); err == nil {
		t.Error("workload without handler installed")
	}
}

// TestWorkerBypassFastPath checks the one-sided fast path: a bypass
// hit serves the request without invoking the handler and is counted
// in both lnic_worker_requests_total and lnic_worker_bypass_total; a
// bypass miss falls through to the handler.
func TestWorkerBypassFastPath(t *testing.T) {
	n := transport.NewMemNetwork(1)
	conn, err := n.Listen("w1")
	if err != nil {
		t.Fatal(err)
	}
	table := kvstore.NewTable(64)
	table.Set("hit", []byte("from-table"))
	w := NewWorker(conn, &workloads.Deps{KVTable: table})
	defer w.Close()
	reg := monitor.NewRegistry()
	if err := w.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	handlerRuns := 0
	wl := &workloads.Workload{
		Name: "kv_probe",
		ID:   77,
		Handle: func(payload []byte, deps *workloads.Deps) ([]byte, error) {
			handlerRuns++
			return []byte("from-lambda"), nil
		},
		Bypass: func(payload []byte, deps *workloads.Deps) ([]byte, bool) {
			return deps.KVTable.Get(string(payload))
		},
	}
	if err := w.Install(wl); err != nil {
		t.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cc, nil,
		transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
	defer cli.Close()
	ctx := context.Background()

	resp, err := cli.Call(ctx, transport.MemAddr("w1"), wl.ID, []byte("hit"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "from-table" {
		t.Errorf("bypass resp = %q, want from-table", resp)
	}
	if handlerRuns != 0 {
		t.Errorf("handler ran %d times on a bypass hit", handlerRuns)
	}
	resp, err = cli.Call(ctx, transport.MemAddr("w1"), wl.ID, []byte("miss"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "from-lambda" || handlerRuns != 1 {
		t.Errorf("miss resp = %q (handler runs %d), want lambda fallback", resp, handlerRuns)
	}
	out := reg.Render()
	for _, want := range []string{
		`lnic_worker_bypass_total{workload="kv_probe"} 1`,
		`lnic_worker_requests_total{workload="kv_probe"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestWorkerServesAndRejectsUnknown(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	web := workloads.WebServer()
	if err := w.Install(web); err != nil {
		t.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cc, nil,
		transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
	defer cli.Close()
	ctx := context.Background()

	resp, err := cli.Call(ctx, transport.MemAddr("w1"), web.ID, web.MakeRequest(0))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !strings.Contains(string(resp), "lambda-nic page 0") {
		t.Errorf("resp = %q", resp)
	}
	// Unknown workload ID: the host-path fall-through (§4.1) surfaces
	// as an error response.
	_, err = cli.Call(ctx, transport.MemAddr("w1"), 999, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown-id err = %v", err)
	}
	// After removal, requests fail again.
	w.Remove(web.ID)
	if _, err := cli.Call(ctx, transport.MemAddr("w1"), web.ID, web.MakeRequest(0)); err == nil {
		t.Error("call after Remove succeeded")
	}
}

// TestWorkerWarmTracking: repeated requests from the same client flow
// count as warm hits after the first; a fresh client is a miss; the
// counters land in the registry for the fleet view's WARM% column.
func TestWorkerWarmTracking(t *testing.T) {
	n := transport.NewMemNetwork(3)
	w := newTestWorker(t, n, "w1")
	reg := monitor.NewRegistry()
	if err := w.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	wl := &workloads.Workload{
		Name: "echo",
		ID:   5,
		Handle: func(payload []byte, deps *workloads.Deps) ([]byte, error) {
			return payload, nil
		},
	}
	if err := w.Install(wl); err != nil {
		t.Fatal(err)
	}
	client := func(name string) *transport.Endpoint {
		t.Helper()
		cc, err := n.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		cli := transport.NewEndpoint(cc, nil,
			transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
		t.Cleanup(func() { cli.Close() })
		return cli
	}
	call := func(cli *transport.Endpoint) {
		t.Helper()
		if _, err := cli.Call(context.Background(), transport.MemAddr("w1"), wl.ID, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	alice, bob := client("alice"), client("bob")
	call(alice)
	call(alice)
	call(alice)
	call(bob)
	out := reg.Render()
	for _, want := range []string{
		"lnic_worker_warm_lookups_total 4",
		"lnic_worker_warm_hits_total 2", // alice's 2nd and 3rd; both firsts miss
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry missing %q:\n%s", want, out)
		}
	}
}

// TestWorkerWarmTrackingDisabled: SetWarmFlows(0) turns lookups off.
func TestWorkerWarmTrackingDisabled(t *testing.T) {
	n := transport.NewMemNetwork(5)
	w := newTestWorker(t, n, "w1")
	reg := monitor.NewRegistry()
	if err := w.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	w.SetWarmFlows(0)
	wl := &workloads.Workload{
		Name: "echo",
		ID:   5,
		Handle: func(payload []byte, deps *workloads.Deps) ([]byte, error) {
			return payload, nil
		},
	}
	if err := w.Install(wl); err != nil {
		t.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cc, nil,
		transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
	defer cli.Close()
	if _, err := cli.Call(context.Background(), transport.MemAddr("w1"), wl.ID, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if out := reg.Render(); !strings.Contains(out, "lnic_worker_warm_lookups_total 0") {
		t.Errorf("lookups counted with tracking disabled:\n%s", out)
	}
}
