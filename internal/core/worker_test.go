package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

func newTestWorker(t *testing.T, n *transport.MemNetwork, name string) *Worker {
	t.Helper()
	conn, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(conn, nil)
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("worker close: %v", err)
		}
	})
	return w
}

func TestWorkerInstallRemove(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	web := workloads.WebServer()
	if err := w.Install(web); err != nil {
		t.Fatal(err)
	}
	if err := w.Install(web); !errors.Is(err, ErrDuplicateWorkload) {
		t.Errorf("duplicate install: %v", err)
	}
	if got := w.Installed(); len(got) != 1 || got[0] != web.ID {
		t.Errorf("Installed = %v", got)
	}
	w.Remove(web.ID)
	if got := w.Installed(); len(got) != 0 {
		t.Errorf("Installed after Remove = %v", got)
	}
}

func TestWorkerRejectsHandlerlessWorkload(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	if err := w.Install(&workloads.Workload{Name: "stub", ID: 9}); err == nil {
		t.Error("workload without handler installed")
	}
}

func TestWorkerServesAndRejectsUnknown(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	web := workloads.WebServer()
	if err := w.Install(web); err != nil {
		t.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cc, nil,
		transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
	defer cli.Close()
	ctx := context.Background()

	resp, err := cli.Call(ctx, transport.MemAddr("w1"), web.ID, web.MakeRequest(0))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !strings.Contains(string(resp), "lambda-nic page 0") {
		t.Errorf("resp = %q", resp)
	}
	// Unknown workload ID: the host-path fall-through (§4.1) surfaces
	// as an error response.
	_, err = cli.Call(ctx, transport.MemAddr("w1"), 999, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown-id err = %v", err)
	}
	// After removal, requests fail again.
	w.Remove(web.ID)
	if _, err := cli.Call(ctx, transport.MemAddr("w1"), web.ID, web.MakeRequest(0)); err == nil {
		t.Error("call after Remove succeeded")
	}
}
