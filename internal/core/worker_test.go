package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/kvstore"
	"lambdanic/internal/monitor"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

func newTestWorker(t *testing.T, n *transport.MemNetwork, name string) *Worker {
	t.Helper()
	conn, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(conn, nil)
	t.Cleanup(func() {
		if err := w.Close(); err != nil {
			t.Errorf("worker close: %v", err)
		}
	})
	return w
}

func TestWorkerInstallRemove(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	web := workloads.WebServer()
	if err := w.Install(web); err != nil {
		t.Fatal(err)
	}
	if err := w.Install(web); !errors.Is(err, ErrDuplicateWorkload) {
		t.Errorf("duplicate install: %v", err)
	}
	if got := w.Installed(); len(got) != 1 || got[0] != web.ID {
		t.Errorf("Installed = %v", got)
	}
	w.Remove(web.ID)
	if got := w.Installed(); len(got) != 0 {
		t.Errorf("Installed after Remove = %v", got)
	}
}

func TestWorkerRejectsHandlerlessWorkload(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	if err := w.Install(&workloads.Workload{Name: "stub", ID: 9}); err == nil {
		t.Error("workload without handler installed")
	}
}

// TestWorkerBypassFastPath checks the one-sided fast path: a bypass
// hit serves the request without invoking the handler and is counted
// in both lnic_worker_requests_total and lnic_worker_bypass_total; a
// bypass miss falls through to the handler.
func TestWorkerBypassFastPath(t *testing.T) {
	n := transport.NewMemNetwork(1)
	conn, err := n.Listen("w1")
	if err != nil {
		t.Fatal(err)
	}
	table := kvstore.NewTable(64)
	table.Set("hit", []byte("from-table"))
	w := NewWorker(conn, &workloads.Deps{KVTable: table})
	defer w.Close()
	reg := monitor.NewRegistry()
	if err := w.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	handlerRuns := 0
	wl := &workloads.Workload{
		Name: "kv_probe",
		ID:   77,
		Handle: func(payload []byte, deps *workloads.Deps) ([]byte, error) {
			handlerRuns++
			return []byte("from-lambda"), nil
		},
		Bypass: func(payload []byte, deps *workloads.Deps) ([]byte, bool) {
			return deps.KVTable.Get(string(payload))
		},
	}
	if err := w.Install(wl); err != nil {
		t.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cc, nil,
		transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
	defer cli.Close()
	ctx := context.Background()

	resp, err := cli.Call(ctx, transport.MemAddr("w1"), wl.ID, []byte("hit"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "from-table" {
		t.Errorf("bypass resp = %q, want from-table", resp)
	}
	if handlerRuns != 0 {
		t.Errorf("handler ran %d times on a bypass hit", handlerRuns)
	}
	resp, err = cli.Call(ctx, transport.MemAddr("w1"), wl.ID, []byte("miss"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "from-lambda" || handlerRuns != 1 {
		t.Errorf("miss resp = %q (handler runs %d), want lambda fallback", resp, handlerRuns)
	}
	out := reg.Render()
	for _, want := range []string{
		`lnic_worker_bypass_total{workload="kv_probe"} 1`,
		`lnic_worker_requests_total{workload="kv_probe"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestWorkerServesAndRejectsUnknown(t *testing.T) {
	n := transport.NewMemNetwork(1)
	w := newTestWorker(t, n, "w1")
	web := workloads.WebServer()
	if err := w.Install(web); err != nil {
		t.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cc, nil,
		transport.WithTimeout(200*time.Millisecond), transport.WithRetries(2))
	defer cli.Close()
	ctx := context.Background()

	resp, err := cli.Call(ctx, transport.MemAddr("w1"), web.ID, web.MakeRequest(0))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !strings.Contains(string(resp), "lambda-nic page 0") {
		t.Errorf("resp = %q", resp)
	}
	// Unknown workload ID: the host-path fall-through (§4.1) surfaces
	// as an error response.
	_, err = cli.Call(ctx, transport.MemAddr("w1"), 999, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown-id err = %v", err)
	}
	// After removal, requests fail again.
	w.Remove(web.ID)
	if _, err := cli.Call(ctx, transport.MemAddr("w1"), web.ID, web.MakeRequest(0)); err == nil {
		t.Error("call after Remove succeeded")
	}
}
