package core

import (
	"strings"
	"testing"

	"lambdanic/internal/workloads"
)

func testFleet() FleetCapacity {
	return FleetCapacity{
		Threads:  4 * 448,  // four worker NICs
		MemoryMB: 4 * 2048, // 2 GiB per NIC
		Workers:  []string{"m2", "m3", "m4", "m5"},
	}
}

func TestPlanPlacementsDRFShares(t *testing.T) {
	web := workloads.WebServer()
	img := workloads.ImageTransformer(64, 64)
	plan, err := PlanPlacements(testFleet(), []WorkloadDemand{
		{Workload: web, ThreadsPerReplica: 64, MemoryMBPerReplica: 8},
		{Workload: img, ThreadsPerReplica: 16, MemoryMBPerReplica: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	byName := map[string]PlannedPlacement{}
	for _, p := range plan {
		byName[p.Workload] = p
	}
	if byName["web_server"].Replicas == 0 || byName["image_transformer"].Replicas == 0 {
		t.Fatalf("starvation in plan: %+v", plan)
	}
	// The thread-hungry and memory-hungry workloads both get multiple
	// replicas; neither monopolizes.
	if byName["web_server"].Replicas < 2 || byName["image_transformer"].Replicas < 2 {
		t.Errorf("shares too small: %+v", plan)
	}
	for _, p := range plan {
		if len(p.Workers) == 0 || len(p.Workers) > 4 {
			t.Errorf("workers = %v", p.Workers)
		}
	}
}

func TestPlanPlacementsValidation(t *testing.T) {
	web := workloads.WebServer()
	if _, err := PlanPlacements(FleetCapacity{}, []WorkloadDemand{{Workload: web, ThreadsPerReplica: 1, MemoryMBPerReplica: 1}}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := PlanPlacements(testFleet(), nil); err == nil {
		t.Error("empty demands accepted")
	}
	if _, err := PlanPlacements(testFleet(), []WorkloadDemand{{}}); err == nil {
		t.Error("nil workload accepted")
	}
	// A demand bigger than total capacity is rejected by the allocator.
	if _, err := PlanPlacements(testFleet(), []WorkloadDemand{
		{Workload: web, ThreadsPerReplica: 1e9, MemoryMBPerReplica: 1},
	}); err == nil {
		t.Error("oversized demand accepted")
	}
}

func TestApplyPlanThroughControlStore(t *testing.T) {
	m := newManager(t)
	web := workloads.WebServer()
	img := workloads.ImageTransformer(64, 64)
	if _, err := m.Register(web); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Register(img); err != nil {
		t.Fatal(err)
	}
	plan, err := PlanPlacements(testFleet(), []WorkloadDemand{
		{Workload: web, ThreadsPerReplica: 100, MemoryMBPerReplica: 16},
		{Workload: img, ThreadsPerReplica: 32, MemoryMBPerReplica: 768},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.ApplyPlan(plan); err != nil {
		t.Fatal(err)
	}
	for _, p := range plan {
		got, err := m.Placement(p.Workload)
		if err != nil {
			t.Fatalf("Placement(%s): %v", p.Workload, err)
		}
		if strings.Join(got.Workers, ",") != strings.Join(p.Workers, ",") {
			t.Errorf("%s placement = %v, want %v", p.Workload, got.Workers, p.Workers)
		}
	}
}
