package core

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"lambdanic/internal/tenant"
	"lambdanic/internal/workloads"
)

func TestRegisterForThreadsTenantThroughRegistration(t *testing.T) {
	m, err := NewManager(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterTenant(tenant.Tenant{Name: "acme", Class: tenant.ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	w := workloads.WebServer()
	id, err := m.RegisterFor("acme", w)
	if err != nil {
		t.Fatal(err)
	}
	if w.Tenant != "acme" {
		t.Errorf("workload Tenant = %q, want acme", w.Tenant)
	}
	own := m.Tenants().Owner(id)
	if own.Name != "acme" {
		t.Errorf("owner(%d) = %s, want acme", id, own.Name)
	}
	// The binding is what the NIC scheduler classifier consumes.
	if got := m.Tenants().OwnerID(id); got != own.ID {
		t.Errorf("OwnerID = %d, want %d", got, own.ID)
	}
	// Unknown tenants are rejected before any registration happens.
	if _, err := m.RegisterFor("ghost", workloads.KVGetClient()); !errors.Is(err, tenant.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
	if _, err := m.Workload(workloads.KVGetClientID); err == nil {
		t.Error("workload registered despite unknown tenant")
	}
}

func TestRegisterTenantPublishesToControlStore(t *testing.T) {
	m, err := NewManager(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	stored, err := m.RegisterTenant(tenant.Tenant{
		Name:  "bulk",
		Class: tenant.ClassBatch,
		Quota: tenant.Quota{NPUThreads: 64, RatePerSec: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	leader, err := m.Control().ElectLeader(500)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := m.Control().Get(leader, "tenant/bulk")
	if !ok {
		t.Fatal("tenant/bulk missing from control store")
	}
	var got tenant.Tenant
	if err := json.Unmarshal([]byte(raw), &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != stored.ID || got.Quota.NPUThreads != 64 || got.Quota.RatePerSec != 100 {
		t.Errorf("control-store tenant = %+v, want %+v", got, *stored)
	}
}

func tenantFleet(workers ...string) FleetCapacity {
	return FleetCapacity{Threads: 64, MemoryMB: 1024, Workers: workers}
}

func TestPlanTenantPlacementsQuotaCapsReplicas(t *testing.T) {
	reg := tenant.NewRegistry()
	// The batch tenant's thread quota allows only 2 replica sets.
	if _, err := reg.Add(tenant.Tenant{Name: "bulk", Class: tenant.ClassBatch,
		Quota: tenant.Quota{NPUThreads: 8}}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(tenant.Tenant{Name: "vip", Class: tenant.ClassInteractive}); err != nil {
		t.Fatal(err)
	}
	web := workloads.WebServer()
	web.Tenant = "vip"
	batch := workloads.BatchSweeper()
	batch.Tenant = "bulk"

	plan, err := PlanTenantPlacements(tenantFleet("m2", "m3"), reg, []WorkloadDemand{
		{Workload: web, ThreadsPerReplica: 4, MemoryMBPerReplica: 16},
		{Workload: batch, ThreadsPerReplica: 4, MemoryMBPerReplica: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PlannedPlacement{}
	for _, p := range plan {
		byName[p.Workload] = p
	}
	if got := byName[batch.Name]; got.Replicas != 2 || got.Tenant != "bulk" {
		t.Errorf("batch placement = %+v, want 2 replicas (8-thread quota / 4 per replica)", got)
	}
	// The interactive tenant absorbs the rest: 64 threads total, batch
	// holds 8, so vip gets floor(56/4) = 14 replica sets.
	if got := byName[web.Name]; got.Replicas != 14 || got.Tenant != "vip" {
		t.Errorf("web placement = %+v, want 14 replicas", got)
	}
}

// DRF is keyed by tenant: a tenant fanning out over two lambdas
// competes as ONE user, so its pair of lambdas together receives the
// same share a single-lambda tenant gets.
func TestPlanTenantPlacementsKeysByTenant(t *testing.T) {
	reg := tenant.NewRegistry()
	for _, n := range []string{"fan", "solo"} {
		if _, err := reg.Add(tenant.Tenant{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	a := workloads.WebServerVariant("fan_a", 11)
	a.Tenant = "fan"
	b := workloads.WebServerVariant("fan_b", 12)
	b.Tenant = "fan"
	c := workloads.WebServerVariant("solo_c", 13)
	c.Tenant = "solo"

	plan, err := PlanTenantPlacements(tenantFleet("m2"), reg, []WorkloadDemand{
		{Workload: a, ThreadsPerReplica: 2},
		{Workload: b, ThreadsPerReplica: 2},
		{Workload: c, ThreadsPerReplica: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range plan {
		got[p.Workload] = p.Replicas
	}
	// 64 threads; fan's replica set costs 4 (both lambdas), solo's 2.
	// Equal dominant shares: fan ~10 sets (40 threads), solo ~12
	// replicas (24 threads) — NOT equal per-lambda replica counts.
	if got["fan_a"] != got["fan_b"] {
		t.Fatalf("fan lambdas unequal: %v", got)
	}
	fanThreads := float64(got["fan_a"]+got["fan_b"]) * 2
	soloThreads := float64(got["solo_c"]) * 2
	ratio := fanThreads / soloThreads
	if ratio < 0.7 || ratio > 1.5 {
		t.Errorf("tenant thread shares: fan=%v solo=%v (ratio %v), want near-equal", fanThreads, soloThreads, ratio)
	}
	// The zero-demand keys (memMB etc.) were omitted, not zero-valued:
	// memory stays untouched.
	if got["solo_c"] == 0 {
		t.Error("solo starved")
	}
}

func TestPlanTenantPlacementsUnknownTenant(t *testing.T) {
	w := workloads.WebServer()
	w.Tenant = "ghost"
	_, err := PlanTenantPlacements(tenantFleet("m2"), tenant.NewRegistry(), []WorkloadDemand{
		{Workload: w, ThreadsPerReplica: 1},
	})
	if !errors.Is(err, tenant.ErrUnknownTenant) {
		t.Fatalf("err = %v, want ErrUnknownTenant", err)
	}
}

func TestPlanTenantPlacementsDefaultTenant(t *testing.T) {
	// Workloads with no Tenant fall to the default tenant and plan
	// exactly like the single-tenant path.
	w := workloads.WebServer()
	plan, err := PlanTenantPlacements(tenantFleet("m2", "m3"), nil, []WorkloadDemand{
		{Workload: w, ThreadsPerReplica: 16, MemoryMBPerReplica: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Tenant != tenant.DefaultTenantName || plan[0].Replicas != 4 {
		t.Fatalf("plan = %+v, want default-tenant 4 replicas", plan)
	}
	if strings.Join(plan[0].Workers, ",") != "m2,m3" {
		t.Errorf("workers = %v", plan[0].Workers)
	}
}
