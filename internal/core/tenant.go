package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"lambdanic/internal/drf"
	"lambdanic/internal/nicsim"
	"lambdanic/internal/tenant"
	"lambdanic/internal/workloads"
)

// Tenant-aware control plane: the workload manager owns the tenant
// registry, publishes tenants into the Raft control store beside
// workloads and placements, and binds every tenant-registered lambda
// to its owner so the data path (gateway admission, NIC hierarchical
// WFQ, worker metric labels) can key on tenant identity.

// Tenants returns the manager's tenant registry (created on first
// use, pre-seeded with the default tenant).
func (m *Manager) Tenants() *tenant.Registry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.tenants == nil {
		m.tenants = tenant.NewRegistry()
	}
	return m.tenants
}

// RegisterTenant adds a tenant to the registry and publishes it at
// tenant/<name> in the control store.
func (m *Manager) RegisterTenant(t tenant.Tenant) (*tenant.Tenant, error) {
	reg := m.Tenants()
	stored, err := reg.Add(t)
	if err != nil {
		return nil, err
	}
	data, err := json.Marshal(stored)
	if err != nil {
		return nil, err
	}
	if err := m.control.Put("tenant/"+stored.Name, string(data), m.controlTicks); err != nil {
		return nil, fmt.Errorf("core: record tenant: %w", err)
	}
	return stored, nil
}

// RegisterFor registers a workload under the named tenant: the
// workload gets its unique ID as usual, is stamped with the owning
// tenant (metric labels), and the ID→tenant binding is recorded for
// data-path classification.
func (m *Manager) RegisterFor(tenantName string, w *workloads.Workload) (uint32, error) {
	reg := m.Tenants()
	if _, ok := reg.Get(tenantName); !ok {
		return 0, fmt.Errorf("%w: %s", tenant.ErrUnknownTenant, tenantName)
	}
	w.Tenant = tenantName
	id, err := m.Register(w)
	if err != nil {
		return 0, err
	}
	if err := reg.Bind(id, tenantName); err != nil {
		return 0, err
	}
	return id, nil
}

// PlanTenantPlacements allocates replicas with DRF keyed by tenant
// instead of by lambda: each grant is one replica set — one replica of
// every lambda the tenant owns — so a tenant fanning out over many
// lambdas competes as a single DRF user. Tenant quota vectors
// (NPU threads, instruction-store bytes, IMEM/EMEM budgets) compile to
// task caps via drf.SetLimit, enforcing isolation at placement time.
// Workloads are grouped by their Tenant field ("" = default tenant);
// every named tenant must exist in reg.
func PlanTenantPlacements(fleet FleetCapacity, reg *tenant.Registry, demands []WorkloadDemand) ([]PlannedPlacement, error) {
	if len(fleet.Workers) == 0 {
		return nil, fmt.Errorf("core: fleet has no workers")
	}
	if len(demands) == 0 {
		return nil, fmt.Errorf("core: no workload demands")
	}
	if reg == nil {
		reg = tenant.NewRegistry()
	}
	capacity := drf.Resources{}
	addCap := func(key string, v float64) {
		if v > 0 {
			capacity[key] = v
		}
	}
	addCap(nicsim.ResThreads, fleet.Threads)
	addCap(nicsim.ResMemMB, fleet.MemoryMB)
	addCap(nicsim.ResInstr, fleet.InstrStore)
	addCap(nicsim.ResIMEM, fleet.IMEMBytes)
	addCap(nicsim.ResEMEM, fleet.EMEMBytes)
	alloc, err := drf.New(capacity)
	if err != nil {
		return nil, err
	}

	// Group demands by owning tenant, preserving first-seen order for
	// deterministic output (the DRF grant order itself is name-sorted
	// inside the allocator).
	type group struct {
		ten     *tenant.Tenant
		ds      []WorkloadDemand
		perTask drf.Resources
	}
	groups := map[string]*group{}
	var order []string
	for _, d := range demands {
		if d.Workload == nil {
			return nil, fmt.Errorf("core: demand without workload")
		}
		name := d.Workload.Tenant
		if name == "" {
			name = tenant.DefaultTenantName
		}
		g, ok := groups[name]
		if !ok {
			ten, found := reg.Get(name)
			if !found {
				return nil, fmt.Errorf("%w: %s (workload %s)", tenant.ErrUnknownTenant, name, d.Workload.Name)
			}
			g = &group{ten: ten, perTask: drf.Resources{}}
			groups[name] = g
			order = append(order, name)
		}
		g.ds = append(g.ds, d)
		addDemand := func(key string, v float64) {
			if v > 0 {
				g.perTask[key] += v
			}
		}
		addDemand(nicsim.ResThreads, d.ThreadsPerReplica)
		addDemand(nicsim.ResMemMB, d.MemoryMBPerReplica)
		addDemand(nicsim.ResInstr, d.InstrPerReplica)
		addDemand(nicsim.ResIMEM, d.IMEMBytesPerReplica)
		addDemand(nicsim.ResEMEM, d.EMEMBytesPerReplica)
	}

	for _, name := range order {
		g := groups[name]
		if err := alloc.AddUser(name, g.perTask); err != nil {
			return nil, fmt.Errorf("core: tenant %s demand: %w", name, err)
		}
		if lim := nicsim.MaxTasks(nicsim.QuotaVector(g.ten.Quota), g.perTask); lim > 0 {
			if err := alloc.SetLimit(name, lim); err != nil {
				return nil, err
			}
		}
	}
	alloc.AllocateAll()

	var out []PlannedPlacement
	next := 0
	for _, name := range order {
		g := groups[name]
		replicas := alloc.Tasks(name)
		if replicas == 0 {
			return nil, fmt.Errorf("core: tenant %s starved (demand exceeds fleet share or quota)", name)
		}
		for _, d := range g.ds {
			workers := make([]string, 0, replicas)
			seen := make(map[string]bool)
			for r := 0; r < replicas; r++ {
				w := fleet.Workers[next%len(fleet.Workers)]
				next++
				if !seen[w] {
					seen[w] = true
					workers = append(workers, w)
				}
			}
			sort.Strings(workers)
			out = append(out, PlannedPlacement{
				Workload: d.Workload.Name,
				Tenant:   name,
				Replicas: replicas,
				Workers:  workers,
			})
		}
	}
	return out, nil
}
