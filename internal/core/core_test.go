package core

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/gateway"
	"lambdanic/internal/kvstore"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

func newManager(t *testing.T) *Manager {
	t.Helper()
	m, err := NewManager(3, 7)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestRegisterAssignsUniqueIDs(t *testing.T) {
	m := newManager(t)
	a := &workloads.Workload{Name: "a"}
	b := &workloads.Workload{Name: "b"}
	ida, err := m.Register(a)
	if err != nil {
		t.Fatal(err)
	}
	idb, err := m.Register(b)
	if err != nil {
		t.Fatal(err)
	}
	if ida == idb || ida == 0 || idb == 0 {
		t.Errorf("ids = %d, %d", ida, idb)
	}
	if _, err := m.Register(&workloads.Workload{Name: "a"}); !errors.Is(err, ErrDuplicateWorkload) {
		t.Errorf("duplicate register: %v", err)
	}
}

func TestRegisterKeepsPresetIDs(t *testing.T) {
	m := newManager(t)
	w := workloads.WebServer()
	id, err := m.Register(w)
	if err != nil {
		t.Fatal(err)
	}
	if id != workloads.WebServerID {
		t.Errorf("id = %d, want preset %d", id, workloads.WebServerID)
	}
	// A colliding preset gets bumped.
	clash := &workloads.Workload{Name: "clash", ID: workloads.WebServerID}
	id2, err := m.Register(clash)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == workloads.WebServerID {
		t.Error("collision not resolved")
	}
}

func TestWorkloadLookup(t *testing.T) {
	m := newManager(t)
	w := workloads.WebServer()
	id, err := m.Register(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Workload(id)
	if err != nil || got.Name != "web_server" {
		t.Errorf("Workload(%d) = %v, %v", id, got, err)
	}
	if _, err := m.Workload(999); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown lookup: %v", err)
	}
	if ws := m.Workloads(); len(ws) != 1 {
		t.Errorf("Workloads = %d entries", len(ws))
	}
}

func TestPlacementThroughControlStore(t *testing.T) {
	m := newManager(t)
	if _, err := m.Register(workloads.WebServer()); err != nil {
		t.Fatal(err)
	}
	if err := m.RecordPlacement("web_server", []string{"w1", "w2"}); err != nil {
		t.Fatalf("RecordPlacement: %v", err)
	}
	p, err := m.Placement("web_server")
	if err != nil {
		t.Fatalf("Placement: %v", err)
	}
	if len(p.Workers) != 2 || p.Workers[0] != "w1" {
		t.Errorf("placement = %+v", p)
	}
	if err := m.RecordPlacement("ghost", nil); !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("ghost placement: %v", err)
	}
}

func TestPlacementSurvivesControlFailover(t *testing.T) {
	m := newManager(t)
	if _, err := m.Register(workloads.WebServer()); err != nil {
		t.Fatal(err)
	}
	if err := m.RecordPlacement("web_server", []string{"w1"}); err != nil {
		t.Fatal(err)
	}
	// Kill the control leader; placement reads must still succeed after
	// the remaining nodes elect a new one.
	leader, err := m.Control().ElectLeader(500)
	if err != nil {
		t.Fatal(err)
	}
	m.Control().Down(leader)
	p, err := m.Placement("web_server")
	if err != nil {
		t.Fatalf("Placement after failover: %v", err)
	}
	if len(p.Workers) != 1 || p.Workers[0] != "w1" {
		t.Errorf("placement = %+v", p)
	}
}

func TestManagerCompileProducesLoadableImage(t *testing.T) {
	m := newManager(t)
	for _, w := range workloads.DefaultSet() {
		if _, err := m.Register(w); err != nil {
			t.Fatal(err)
		}
	}
	exe, results, err := m.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if exe.StaticInstructions() >= workloads.NaiveProgramTarget {
		t.Error("optimized image not smaller than naive")
	}
	if len(results) != 4 {
		t.Errorf("trajectory = %d passes", len(results))
	}
}

func TestArtifactsMatchTable4(t *testing.T) {
	// Paper Table 4: sizes 11.0/17.0/153.0 MiB; startups 19.8/5.0/31.7 s.
	const programInstr = 8052 // optimized image size
	tests := []struct {
		kind      BackendKind
		wantMiB   float64
		wantStart time.Duration
	}{
		{KindLambdaNIC, 11.0, 19800 * time.Millisecond},
		{KindBareMetal, 17.0, 5 * time.Second},
		{KindContainer, 153.0, 31700 * time.Millisecond},
	}
	for _, tt := range tests {
		a := BuildArtifact(tt.kind, programInstr)
		if a.SizeMiB < tt.wantMiB*0.97 || a.SizeMiB > tt.wantMiB*1.03 {
			t.Errorf("%v size = %.1f MiB, want %.1f ± 3%%", tt.kind, a.SizeMiB, tt.wantMiB)
		}
		got := a.StartupTime()
		lo := time.Duration(float64(tt.wantStart) * 0.95)
		hi := time.Duration(float64(tt.wantStart) * 1.05)
		if got < lo || got > hi {
			t.Errorf("%v startup = %v, want %v ± 5%%", tt.kind, got, tt.wantStart)
		}
	}
	// The λ-NIC startup premium over bare metal stays well under the
	// container premium (§6.4: "keeps the additional delay over
	// bare-metal backends 2x less than the container overhead").
	nic := BuildArtifact(KindLambdaNIC, programInstr).StartupTime()
	bare := BuildArtifact(KindBareMetal, programInstr).StartupTime()
	cont := BuildArtifact(KindContainer, programInstr).StartupTime()
	if !(nic-bare < cont-bare) {
		t.Errorf("startup premiums wrong: nic-bare=%v cont-bare=%v", nic-bare, cont-bare)
	}
}

func TestBackendKindString(t *testing.T) {
	if KindLambdaNIC.String() != "lambda-nic" || BackendKind(9).String() != "BackendKind(9)" {
		t.Error("BackendKind.String wrong")
	}
}

// TestEndToEndGatewayWorkerPipeline runs the full functional control
// plane on the in-memory network: manager registers workloads, workers
// install them, the gateway routes by workload ID, and a client invokes
// every lambda through the gateway.
func TestEndToEndGatewayWorkerPipeline(t *testing.T) {
	n := transport.NewMemNetwork(1)

	// memcached substitute on the master node (§6.1.2).
	mcConn, err := n.Listen("m1:memcached")
	if err != nil {
		t.Fatal(err)
	}
	store := kvstore.NewStore()
	mcSrv := kvstore.NewServer(store, mcConn)
	defer mcSrv.Close()

	// Two workers with their own memcached client connections.
	var workers []*Worker
	for _, name := range []string{"m2", "m3"} {
		kvConn, err := n.Listen(name + ":kv")
		if err != nil {
			t.Fatal(err)
		}
		wConn, err := n.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		deps := &workloads.Deps{KV: kvstore.NewClient(kvConn, transport.MemAddr("m1:memcached"))}
		w := NewWorker(wConn, deps)
		defer w.Close()
		workers = append(workers, w)
	}

	m := newManager(t)
	set := []*workloads.Workload{
		workloads.WebServer(),
		workloads.KVGetClient(),
		workloads.KVSetClient(),
		workloads.ImageTransformer(8, 8),
	}
	for _, wl := range set {
		if _, err := m.Register(wl); err != nil {
			t.Fatal(err)
		}
		for _, w := range workers {
			if err := w.Install(wl); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.RecordPlacement(wl.Name, []string{"m2", "m3"}); err != nil {
			t.Fatal(err)
		}
	}

	gwConn, err := n.Listen("m1:gateway")
	if err != nil {
		t.Fatal(err)
	}
	gw := gateway.New(gwConn)
	defer gw.Close()
	for _, wl := range set {
		p, err := m.Placement(wl.Name)
		if err != nil {
			t.Fatal(err)
		}
		var routeAddrs []net.Addr
		for _, name := range p.Workers {
			routeAddrs = append(routeAddrs, transport.MemAddr(name))
		}
		gw.SetRoute(wl.ID, routeAddrs)
	}

	// Client calls through the gateway.
	cliConn, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	cli := transport.NewEndpoint(cliConn, nil, transport.WithTimeout(500*time.Millisecond), transport.WithRetries(4))
	defer cli.Close()
	ctx := context.Background()
	gwAddr := transport.MemAddr("m1:gateway")

	// SET then GET through the kv lambdas.
	if resp, err := cli.Call(ctx, gwAddr, workloads.KVSetClientID, workloads.KVSetClient().MakeRequest(7)); err != nil || string(resp) != "STORED" {
		t.Fatalf("kv set: %q/%v", resp, err)
	}
	if resp, err := cli.Call(ctx, gwAddr, workloads.KVGetClientID, workloads.KVGetClient().MakeRequest(7)); err != nil || string(resp) != "value-7" {
		t.Fatalf("kv get: %q/%v", resp, err)
	}
	// Web page.
	resp, err := cli.Call(ctx, gwAddr, workloads.WebServerID, workloads.WebServer().MakeRequest(2))
	if err != nil {
		t.Fatalf("web: %v", err)
	}
	if want := "lambda-nic page 2"; !strings.Contains(string(resp), want) {
		t.Errorf("web resp = %q", resp)
	}
	// Image transformation (multi-field payload through fragmentation).
	img := workloads.ImageTransformer(8, 8)
	resp, err = cli.Call(ctx, gwAddr, workloads.ImageTransformerID, img.MakeRequest(1))
	if err != nil {
		t.Fatalf("image: %v", err)
	}
	if len(resp) != 64 {
		t.Errorf("image resp = %d bytes, want 64", len(resp))
	}
	// Unrouted workload surfaces an error.
	if _, err := cli.Call(ctx, gwAddr, 999, nil); err == nil {
		t.Error("unrouted call succeeded")
	}
	if gw.Forwarded() < 4 {
		t.Errorf("Forwarded = %d, want >= 4", gw.Forwarded())
	}
	if gw.Unrouted() == 0 {
		t.Error("Unrouted counter not incremented")
	}
}
