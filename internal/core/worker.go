package core

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lambdanic/internal/dispatch"
	"lambdanic/internal/monitor"
	"lambdanic/internal/obs"
	"lambdanic/internal/telemetry"
	"lambdanic/internal/transport"
	"lambdanic/internal/workloads"
)

// DefaultWarmFlows is the worker's warm-state tracking capacity: the
// number of recently-seen flow keys (client source × workload) treated
// as warm — the software twin of the NIC cores' match-table/SRAM
// residency. Fleet views surface the hit rate as the WARM% column.
const DefaultWarmFlows = 64

// Worker is a functional λ-NIC worker node: it serves installed
// lambdas over the λ-NIC wire protocol, dispatching by the workload ID
// the gateway stamped into each request — the software twin of the
// NIC's match stage, used by the runnable daemons and examples.
type Worker struct {
	ep   *transport.Endpoint
	deps *workloads.Deps

	// inflight counts requests currently executing — the load snapshot
	// carried in healthd heartbeats.
	inflight atomic.Int64

	mu       sync.RWMutex
	handlers map[uint32]func(payload []byte, deps *workloads.Deps) ([]byte, error)
	bypasses map[uint32]func(payload []byte, deps *workloads.Deps) ([]byte, bool)
	names    map[uint32]string

	// Optional monitoring-engine instrumentation (§6.1.1).
	registry   *monitor.Registry
	mRequests  map[uint32]*monitor.Counter
	mBypass    map[uint32]*monitor.Counter
	mWlLatency map[uint32]*telemetry.Histogram
	mErrors    *monitor.Counter
	mLatency   *telemetry.Histogram

	// Warm-state tracking: an LRU of recently-seen flow keys guarded by
	// its own mutex (dispatch.LRU is not concurrency-safe, and the
	// request path is concurrent). Counters are atomic and incremented
	// outside the lock.
	warmMu       sync.Mutex
	warm         *dispatch.LRU
	mWarmHits    *monitor.Counter
	mWarmLookups *monitor.Counter

	// Optional request-lifecycle tracing.
	tracer obs.Tracer
}

// NewWorker starts a worker on conn with the given external-service
// dependencies. The worker owns the connection.
func NewWorker(conn net.PacketConn, deps *workloads.Deps) *Worker {
	w := &Worker{
		deps:     deps,
		handlers: make(map[uint32]func([]byte, *workloads.Deps) ([]byte, error)),
		bypasses: make(map[uint32]func([]byte, *workloads.Deps) ([]byte, bool)),
		names:    make(map[uint32]string),
	}
	w.ep = transport.NewEndpoint(conn, w.handle)
	return w
}

// Addr returns the worker's listen address.
func (w *Worker) Addr() net.Addr { return w.ep.Addr() }

// Close stops the worker.
func (w *Worker) Close() error { return w.ep.Close() }

// Inflight returns the number of requests currently executing.
func (w *Worker) Inflight() int { return int(w.inflight.Load()) }

// EnableMetrics registers the worker's per-lambda request counters and
// service-latency histogram in the monitoring engine's registry.
// Enable before Install so every lambda gets a counter.
func (w *Worker) EnableMetrics(reg *monitor.Registry) error {
	errs, err := reg.Counter("lnic_worker_errors_total", "lambda execution failures", nil)
	if err != nil {
		return err
	}
	// Service latency goes through the telemetry plane's lock-free
	// histogram: the serve path records with one atomic add rather than
	// serializing every request on a registry mutex.
	latency := telemetry.NewHistogram()
	if err := latency.Expose(reg, "lnic_worker_latency_seconds",
		"lambda service latency", nil); err != nil {
		return err
	}
	// The transport worker pool sheds requests under overload (PR 3);
	// surface that counter so `lnicctl top` can tell shedding from
	// silence. Read at scrape time — the pool owns the count.
	if err := reg.CounterFunc("lnic_worker_pool_drops_total",
		"requests shed by the transport worker pool", nil, w.ep.Drops); err != nil {
		return err
	}
	// Warm-state counters: WARM% in fleet views is hits/lookups over a
	// scrape window. Tracking is on by default at DefaultWarmFlows; use
	// SetWarmFlows to resize or disable.
	warmHits, err := reg.Counter("lnic_worker_warm_hits_total",
		"requests whose flow key was still warm (recently seen)", nil)
	if err != nil {
		return err
	}
	warmLookups, err := reg.Counter("lnic_worker_warm_lookups_total",
		"warm-state lookups (requests with a known source)", nil)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.registry = reg
	w.mRequests = make(map[uint32]*monitor.Counter)
	w.mBypass = make(map[uint32]*monitor.Counter)
	w.mWlLatency = make(map[uint32]*telemetry.Histogram)
	w.mErrors = errs
	w.mLatency = latency
	w.mWarmHits = warmHits
	w.mWarmLookups = warmLookups
	w.warmMu.Lock()
	if w.warm == nil {
		w.warm = dispatch.NewLRU(DefaultWarmFlows)
	}
	w.warmMu.Unlock()
	return nil
}

// SetWarmFlows resizes the warm-flow tracking window (capacity ≤ 0
// disables tracking). Resizing resets the tracked set.
func (w *Worker) SetWarmFlows(capacity int) {
	w.warmMu.Lock()
	defer w.warmMu.Unlock()
	if capacity <= 0 {
		w.warm = nil
		return
	}
	w.warm = dispatch.NewLRU(capacity)
}

// observeFlow records one warm-state lookup and reports whether the
// flow was already warm.
func (w *Worker) observeFlow(flow uint64) (hit, tracked bool) {
	w.warmMu.Lock()
	if w.warm == nil {
		w.warmMu.Unlock()
		return false, false
	}
	hit = w.warm.Touch(flow)
	w.warmMu.Unlock()
	return hit, true
}

// EnableTracing records each served request's lifecycle (lambda
// execution span per request) in the tracer. Enable before serving.
func (w *Worker) EnableTracing(t obs.Tracer) {
	w.mu.Lock()
	w.tracer = t
	w.mu.Unlock()
}

// Install deploys a workload's native handler.
func (w *Worker) Install(wl *workloads.Workload) error {
	if wl.Handle == nil {
		return fmt.Errorf("core: workload %s has no native handler", wl.Name)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.handlers[wl.ID]; ok {
		return fmt.Errorf("%w: id %d", ErrDuplicateWorkload, wl.ID)
	}
	w.handlers[wl.ID] = wl.Handle
	if wl.Bypass != nil {
		w.bypasses[wl.ID] = wl.Bypass
	}
	w.names[wl.ID] = wl.Name
	if w.registry != nil {
		labels := map[string]string{"workload": wl.Name}
		if wl.Tenant != "" {
			// The owning tenant rides along as a label so fleet views
			// (lnicctl top/slo -tenant) can scope rows per tenant.
			labels["tenant"] = wl.Tenant
		}
		c, err := w.registry.Counter("lnic_worker_requests_total",
			"requests served per lambda", labels)
		if err != nil {
			return err
		}
		w.mRequests[wl.ID] = c
		if wl.Bypass != nil {
			b, err := w.registry.Counter("lnic_worker_bypass_total",
				"requests served by the one-sided fast path, no lambda invoked", labels)
			if err != nil {
				return err
			}
			w.mBypass[wl.ID] = b
		}
		h := telemetry.NewHistogram()
		if err := h.Expose(w.registry, "lnic_worker_workload_latency_seconds",
			"lambda service latency per workload", labels); err != nil {
			return err
		}
		w.mWlLatency[wl.ID] = h
	}
	return nil
}

// Remove undeploys a workload.
func (w *Worker) Remove(id uint32) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.handlers, id)
	delete(w.bypasses, id)
	delete(w.names, id)
}

// Installed lists deployed workload IDs.
func (w *Worker) Installed() []uint32 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]uint32, 0, len(w.handlers))
	for id := range w.handlers {
		out = append(out, id)
	}
	return out
}

func (w *Worker) handle(req *transport.Message) ([]byte, error) {
	w.inflight.Add(1)
	defer w.inflight.Add(-1)
	w.mu.RLock()
	h, ok := w.handlers[req.Header.WorkloadID]
	bypass := w.bypasses[req.Header.WorkloadID]
	name := w.names[req.Header.WorkloadID]
	counter := w.mRequests[req.Header.WorkloadID]
	bypassCounter := w.mBypass[req.Header.WorkloadID]
	wlLatency := w.mWlLatency[req.Header.WorkloadID]
	errs, latency := w.mErrors, w.mLatency
	warmHits, warmLookups := w.mWarmHits, w.mWarmLookups
	tracer := w.tracer
	w.mu.RUnlock()
	var tr *obs.Req
	if tracer != nil {
		tr = tracer.Begin(req.Header.WorkloadID, name)
	}
	if !ok {
		// The match stage's fall-through: unmatched IDs go to the host
		// OS path (§4.1); here that surfaces as an error response.
		if errs != nil {
			errs.Inc()
		}
		err := fmt.Errorf("%w: id %d", ErrUnknownWorkload, req.Header.WorkloadID)
		tr.Mark(obs.StageHost, "worker", "unmatched", tr.Now())
		tr.Finish(tr.Now(), err)
		return nil, err
	}
	// Warm-state lookup: the request's flow key is its client source ×
	// workload — the same key the gateway pins on — so the WARM% column
	// directly measures what flow affinity preserves.
	if req.Source != nil {
		if hit, tracked := w.observeFlow(dispatch.FlowKey(req.Source.String(), req.Header.WorkloadID)); tracked {
			if warmLookups != nil {
				warmLookups.Inc()
			}
			if hit && warmHits != nil {
				warmHits.Inc()
			}
		}
	}
	start := time.Now()
	execStart := tr.Now()
	// One-sided fast path first: a bypass hit serves the request
	// without invoking the lambda, and is recorded in the same latency
	// histograms (a served request is a served request) plus its own
	// counter so fleet views can tell the paths apart.
	if bypass != nil {
		if resp, served := bypass(req.Payload, w.deps); served {
			elapsed := time.Since(start)
			tr.AddSpan(obs.StageExec, "worker/"+name, "bypass", execStart, tr.Now())
			tr.Finish(tr.Now(), nil)
			if latency != nil {
				latency.ObserveDuration(elapsed)
			}
			if wlLatency != nil {
				wlLatency.ObserveDuration(elapsed)
			}
			if counter != nil {
				counter.Inc()
			}
			if bypassCounter != nil {
				bypassCounter.Inc()
			}
			return resp, nil
		}
	}
	resp, err := h(req.Payload, w.deps)
	elapsed := time.Since(start)
	tr.AddSpan(obs.StageExec, "worker/"+name, "", execStart, tr.Now())
	tr.Finish(tr.Now(), err)
	if latency != nil {
		latency.ObserveDuration(elapsed)
	}
	if wlLatency != nil {
		wlLatency.ObserveDuration(elapsed)
	}
	if counter != nil {
		counter.Inc()
	}
	if err != nil && errs != nil {
		errs.Inc()
	}
	return resp, err
}
