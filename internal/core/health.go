package core

import (
	"encoding/json"
	"sort"
	"strings"

	"lambdanic/internal/healthd"
	"lambdanic/internal/monitor"
)

// Manager-side health state: worker heartbeats live in the control
// store under "health/<worker>" (the paper's etcd, §6.1.1), and
// EvictWorker closes healthd's loop — a dead worker is stripped from
// the fleet, its lambdas re-placed with DRF over the surviving
// capacity, and the refreshed placements flow to the gateway through
// the placement watch.

const healthKeyPrefix = "health/"

// PutHealth publishes one worker heartbeat into the control store.
func (m *Manager) PutHealth(hb healthd.Heartbeat) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.control.Put(healthKeyPrefix+hb.Worker, hb.Encode(), m.controlTicks)
}

// HealthSnapshot reads every worker heartbeat from the control-store
// leader, ordered by worker name — the source the healthd daemon polls.
func (m *Manager) HealthSnapshot() ([]healthd.Heartbeat, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	leader, err := m.control.ElectLeader(m.controlTicks)
	if err != nil {
		return nil, err
	}
	var out []healthd.Heartbeat
	for k, v := range m.control.KV(leader).Snapshot() {
		if !strings.HasPrefix(k, healthKeyPrefix) {
			continue
		}
		hb, err := healthd.DecodeHeartbeat(v)
		if err != nil {
			continue
		}
		out = append(out, hb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out, nil
}

// SetFleet records the fleet's capacity and the workloads' per-replica
// demands so evictions can re-run DRF placement. Per-worker capacity is
// derived as an even share, so surviving capacity shrinks as workers
// are evicted.
func (m *Manager) SetFleet(fleet FleetCapacity, demands []WorkloadDemand) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleet = fleet
	m.fleet.Workers = append([]string(nil), fleet.Workers...)
	m.demands = append([]WorkloadDemand(nil), demands...)
	if n := float64(len(fleet.Workers)); n > 0 {
		m.perThreads = fleet.Threads / n
		m.perMem = fleet.MemoryMB / n
	}
}

// EvictWorker removes a dead worker from the fleet and re-places the
// lambdas it hosted. When SetFleet provided capacity and demands, the
// manager re-runs DRF over the surviving workers; otherwise (or if the
// plan is infeasible) it falls back to stripping the worker from every
// recorded placement. Either way the refreshed placements are committed
// to the control store, and the worker's heartbeat key is deleted.
func (m *Manager) EvictWorker(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.fleet.Workers) > 0 {
		kept := make([]string, 0, len(m.fleet.Workers))
		for _, w := range m.fleet.Workers {
			if w != name {
				kept = append(kept, w)
			}
		}
		if len(kept) < len(m.fleet.Workers) {
			m.fleet.Workers = kept
			m.fleet.Threads -= m.perThreads
			m.fleet.MemoryMB -= m.perMem
		}
	}
	// The heartbeat key goes first so a re-run of the detector does not
	// resurrect the evicted worker from its stale beat.
	if err := m.control.Delete(healthKeyPrefix+name, m.controlTicks); err != nil {
		return err
	}
	if len(m.demands) > 0 && len(m.fleet.Workers) > 0 {
		if plan, err := PlanPlacements(m.fleet, m.demands); err == nil {
			for _, p := range plan {
				if err := m.recordPlacementLocked(p.Workload, p.Workers); err != nil {
					return err
				}
			}
			return nil
		}
		// Infeasible plan (remaining share starves a workload): fall
		// back to stripping so surviving replicas keep serving.
	}
	return m.stripWorkerLocked(name)
}

// stripWorkerLocked removes a worker from every recorded placement;
// m.mu must be held.
func (m *Manager) stripWorkerLocked(name string) error {
	leader, err := m.control.ElectLeader(m.controlTicks)
	if err != nil {
		return err
	}
	snap := m.control.KV(leader).Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		if strings.HasPrefix(k, "placement/") {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		var p Placement
		if err := json.Unmarshal([]byte(snap[k]), &p); err != nil {
			continue
		}
		kept := make([]string, 0, len(p.Workers))
		for _, w := range p.Workers {
			if w != name {
				kept = append(kept, w)
			}
		}
		if len(kept) == len(p.Workers) {
			continue
		}
		if err := m.recordPlacementLocked(p.Workload, kept); err != nil {
			return err
		}
	}
	return nil
}

// EnableMetrics surfaces control-plane health through the monitoring
// engine: the Raft leader-change count, read at scrape time.
func (m *Manager) EnableMetrics(reg *monitor.Registry) error {
	return reg.GaugeFunc("lnic_control_leader_changes",
		"control-store Raft leader changes since startup", nil,
		func() float64 { return float64(m.control.LeaderChanges()) })
}
