// Package core implements λ-NIC's workload manager (paper Fig. 2 and
// §4.1): it registers users' workloads, assigns each a unique workload
// ID, compiles Match+Lambda programs for the SmartNIC backend, models
// the per-backend deployment artifacts and startup pipeline (Table 4),
// and syncs placement state with the gateway through the Raft-backed
// control store (the paper's etcd, here internal/raftkv).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lambdanic/internal/mcc"
	"lambdanic/internal/raftkv"
	"lambdanic/internal/tenant"
	"lambdanic/internal/workloads"
)

// BackendKind names a deployment target for artifact/startup modeling.
type BackendKind int

// Deployment targets.
const (
	KindLambdaNIC BackendKind = iota + 1
	KindBareMetal
	KindContainer
)

// String names the kind.
func (k BackendKind) String() string {
	switch k {
	case KindLambdaNIC:
		return "lambda-nic"
	case KindBareMetal:
		return "bare-metal"
	case KindContainer:
		return "container"
	default:
		return fmt.Sprintf("BackendKind(%d)", int(k))
	}
}

// Artifact describes one workload's deployable unit and its startup
// pipeline (Table 4: "Lambda binary size" and "Boot-up time").
type Artifact struct {
	Kind BackendKind
	// SizeMiB is the artifact size: compiled SmartNIC firmware, a
	// Python package (setuptools + Wheel), or a Docker image (§6.4).
	SizeMiB float64
	// Startup pipeline stages.
	Compile  time.Duration // firmware compilation (λ-NIC only)
	Transfer time.Duration // artifact download at link speed
	Install  time.Duration // pip install / docker pull extraction
	Boot     time.Duration // process boot / firmware flash / container start
}

// StartupTime is the end-to-end time to first served request.
func (a Artifact) StartupTime() time.Duration {
	return a.Compile + a.Transfer + a.Install + a.Boot
}

// Artifact/startup model constants, calibrated to the paper's Table 4
// (11/17/153 MiB and 19.8/5.0/31.7 s) from its stated composition:
// compiled firmware vs. Python library packaged using setuptools and
// Wheel vs. the Docker container image.
const (
	// firmwareBaseMiB is the Netronome-style firmware image scaffold
	// (runtime, drivers) before the Match+Lambda program is linked in.
	firmwareBaseMiB = 10.9
	// bytesPerInstruction converts program size to artifact bytes.
	bytesPerInstruction = 8
	// wheelBaseMiB is the Python service + dependency wheels.
	wheelBaseMiB = 16.99
	// containerImageBaseMiB is the Docker base image + Python layers +
	// OpenFaaS watchdog.
	containerImageBaseMiB = 152.9

	// Startup stages.
	firmwareCompileTime = 11500 * time.Millisecond // P4/Micro-C toolchain
	firmwareFlashTime   = 8280 * time.Millisecond  // NIC reload (downtime, §7)
	pipInstallTime      = 2980 * time.Millisecond
	pythonBootTime      = 2 * time.Second
	dockerExtractPerMiB = 154 * time.Millisecond // pull + layer extraction
	containerStartTime  = 4900 * time.Millisecond
	faasProvisionTime   = 3100 * time.Millisecond

	// transferLinkBitsPerSec is the testbed's 10 G link.
	transferLinkBitsPerSec = 10_000_000_000
)

func transferTime(sizeMiB float64) time.Duration {
	bits := sizeMiB * (1 << 20) * 8
	return time.Duration(bits / transferLinkBitsPerSec * float64(time.Second))
}

// Manager is the workload manager. It is safe for concurrent use.
type Manager struct {
	mu       sync.Mutex
	registry map[uint32]*workloads.Workload
	byName   map[string]uint32
	nextID   uint32

	// control is the Raft-backed state store syncing placements with
	// the gateway (§6.1.1: etcd).
	control *raftkv.Cluster
	// controlTicks bounds control-plane proposal retries.
	controlTicks int

	// fleet and demands back self-healing re-placement: when healthd
	// evicts a worker, the manager re-runs DRF over the surviving
	// capacity (health.go).
	fleet      FleetCapacity
	demands    []WorkloadDemand
	perThreads float64
	perMem     float64

	// tenants is the tenant registry (tenant.go); lazily created so
	// single-tenant deployments pay nothing.
	tenants *tenant.Registry
}

// Manager errors.
var (
	ErrDuplicateWorkload = errors.New("core: workload already registered")
	ErrUnknownWorkload   = errors.New("core: unknown workload")
)

// NewManager creates a manager backed by an n-node control store.
func NewManager(controlNodes int, seed int64) (*Manager, error) {
	if controlNodes < 1 {
		return nil, errors.New("core: need at least one control node")
	}
	m := &Manager{
		registry:     make(map[uint32]*workloads.Workload),
		byName:       make(map[string]uint32),
		nextID:       1,
		control:      raftkv.NewCluster(controlNodes, seed),
		controlTicks: 500,
	}
	if _, err := m.control.ElectLeader(m.controlTicks); err != nil {
		return nil, fmt.Errorf("core: control store: %w", err)
	}
	return m, nil
}

// Register assigns the workload a unique ID (§4.1: "the workload
// manager assigns unique identifiers to each of these lambdas") and
// records it in the control store. Workloads arriving with a preset ID
// keep it if free.
func (m *Manager) Register(w *workloads.Workload) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.byName[w.Name]; ok {
		return 0, fmt.Errorf("%w: %s", ErrDuplicateWorkload, w.Name)
	}
	id := w.ID
	if id == 0 {
		id = m.nextID
	}
	for {
		if _, taken := m.registry[id]; !taken {
			break
		}
		id++
	}
	w.ID = id
	if w.Spec != nil {
		w.Spec.ID = id
	}
	m.registry[id] = w
	m.byName[w.Name] = id
	if id >= m.nextID {
		m.nextID = id + 1
	}
	if err := m.control.Put("workload/"+w.Name, fmt.Sprint(id), m.controlTicks); err != nil {
		return 0, fmt.Errorf("core: record workload: %w", err)
	}
	return id, nil
}

// Workload looks up a registered workload by ID.
func (m *Manager) Workload(id uint32) (*workloads.Workload, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w, ok := m.registry[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownWorkload, id)
	}
	return w, nil
}

// Workloads returns all registered workloads ordered by ID.
func (m *Manager) Workloads() []*workloads.Workload {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*workloads.Workload, 0, len(m.registry))
	for _, w := range m.registry {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Placement is a workload's worker assignment, shared with the gateway
// through the control store.
type Placement struct {
	Workload string   `json:"workload"`
	ID       uint32   `json:"id"`
	Workers  []string `json:"workers"`
}

// RecordPlacement publishes a workload's worker set.
func (m *Manager) RecordPlacement(name string, workers []string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.recordPlacementLocked(name, workers)
}

// recordPlacementLocked publishes a placement; m.mu must be held.
func (m *Manager) recordPlacementLocked(name string, workers []string) error {
	id, ok := m.byName[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWorkload, name)
	}
	data, err := json.Marshal(Placement{Workload: name, ID: id, Workers: workers})
	if err != nil {
		return err
	}
	return m.control.Put("placement/"+name, string(data), m.controlTicks)
}

// WatchPlacements registers a callback invoked for every placement
// committed through the control store — the etcd watch that keeps the
// gateway's routing table in sync (§6.1.1). The callback runs inside
// control-store applies; it must be fast and must not call back into
// the manager.
func (m *Manager) WatchPlacements(fn func(Placement)) {
	m.control.Subscribe(1, "placement/", func(cmd raftkv.Command) {
		if cmd.Op != raftkv.OpPut {
			return
		}
		var p Placement
		if err := json.Unmarshal([]byte(cmd.Value), &p); err != nil {
			return
		}
		fn(p)
	})
}

// Placement reads a workload's worker set from the control store
// leader.
func (m *Manager) Placement(name string) (Placement, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	leader, err := m.control.ElectLeader(m.controlTicks)
	if err != nil {
		return Placement{}, err
	}
	raw, ok := m.control.Get(leader, "placement/"+name)
	if !ok {
		return Placement{}, fmt.Errorf("%w: no placement for %s", ErrUnknownWorkload, name)
	}
	var p Placement
	if err := json.Unmarshal([]byte(raw), &p); err != nil {
		return Placement{}, fmt.Errorf("core: decode placement: %w", err)
	}
	return p, nil
}

// Control exposes the Raft control store (tests, failure injection).
func (m *Manager) Control() *raftkv.Cluster { return m.control }

// Compile builds the optimized Match+Lambda image for the registered
// workloads and returns the per-pass size trajectory (Figure 9).
func (m *Manager) Compile() (*mcc.Executable, []mcc.PassResult, error) {
	ws := m.Workloads()
	if len(ws) == 0 {
		return nil, nil, errors.New("core: no workloads registered")
	}
	return workloads.CompileOptimized(ws, workloads.NaiveProgramTarget)
}

// Artifact models the workload set's deployable unit for a backend
// (Table 4). programInstructions sizes the λ-NIC firmware; pass the
// compiled image's StaticInstructions.
func BuildArtifact(kind BackendKind, programInstructions int) Artifact {
	switch kind {
	case KindLambdaNIC:
		size := firmwareBaseMiB + float64(programInstructions*bytesPerInstruction)/(1<<20)
		return Artifact{
			Kind:     kind,
			SizeMiB:  size,
			Compile:  firmwareCompileTime,
			Transfer: transferTime(size),
			Boot:     firmwareFlashTime,
		}
	case KindBareMetal:
		size := wheelBaseMiB + float64(programInstructions)/(1<<20) // source is tiny
		return Artifact{
			Kind:     kind,
			SizeMiB:  size,
			Transfer: transferTime(size),
			Install:  pipInstallTime,
			Boot:     pythonBootTime,
		}
	case KindContainer:
		size := containerImageBaseMiB + float64(programInstructions)/(1<<20)
		return Artifact{
			Kind:     kind,
			SizeMiB:  size,
			Transfer: transferTime(size),
			Install:  time.Duration(size * float64(dockerExtractPerMiB)),
			Boot:     containerStartTime + faasProvisionTime,
		}
	default:
		return Artifact{Kind: kind}
	}
}
