// Package obs is the request-lifecycle tracing subsystem: it records
// where every invocation spends its time as it crosses the pipeline the
// paper's performance claims attribute latency to (§4.2.1, §6.3) —
// gateway occupancy, scheduler queue wait, NPU execution split into
// instruction cycles and per-level memory stalls, host-path fallback,
// and transport hops.
//
// The same span model serves both timing domains: simulations record
// spans in virtual time (the internal/sim clock), the UDP daemons in
// wall time since an epoch. A Collector gathers per-request span
// containers (Req) through the Tracer interface; exporters turn the
// collected requests into a Chrome trace-event JSON file (chrome.go)
// or a per-stage latency-attribution summary (summary.go).
//
// Tracing is strictly opt-in and the disabled path is free: a nil
// Tracer yields nil *Req values, and every *Req method is a no-op on a
// nil receiver, so instrumented hot paths pay only a pointer test.
package obs

import (
	"sync"
	"time"
)

// Stage identifies one pipeline stage a request crosses. Stages are
// the units of latency attribution: the per-request spans of all
// stages tile the request's end-to-end interval.
type Stage string

// The pipeline stages.
const (
	// StageGateway is gateway time: serialized occupancy wait plus the
	// proxy pipeline latency (ingress and egress halves).
	StageGateway Stage = "gateway"
	// StageQueue is scheduler queue wait: the request has arrived at
	// the NIC but no NPU thread is free.
	StageQueue Stage = "queue"
	// StageExec is NPU execution: instruction cycles (including the
	// parse+match pipeline and multi-packet reorder/commit cost).
	StageExec Stage = "exec"
	// Per-level memory-stall stages (§5's four-level hierarchy).
	StageMemLMEM Stage = "mem-lmem"
	StageMemCTM  Stage = "mem-ctm"
	StageMemIMEM Stage = "mem-imem"
	StageMemEMEM Stage = "mem-emem"
	// StageTransport is time on the wire and in the RDMA engine:
	// request/response hops, RDMA payload commit, RPC attempts.
	StageTransport Stage = "transport"
	// StageHost is host-path time: execution that fell back to the
	// host OS path (§4.1) or runs on a CPU backend.
	StageHost Stage = "host"
	// StagePlacement is control-plane boundary work: the placement
	// engine's migrations (warm-up, route cutover, source drain) when a
	// lambda moves between the NIC and the host backend. The
	// placement.migrate span generalizes the old host-fallback mark:
	// every handoff across the boundary is traced here.
	StagePlacement Stage = "placement"
)

// stageRank orders stages pipeline-first in reports.
var stageRank = map[Stage]int{
	StageGateway:   0,
	StageTransport: 1,
	StageQueue:     2,
	StageExec:      3,
	StageMemLMEM:   4,
	StageMemCTM:    5,
	StageMemIMEM:   6,
	StageMemEMEM:   7,
	StageHost:      8,
	StagePlacement: 9,
}

// Span is one timed interval of a request's lifecycle on one track.
type Span struct {
	Stage Stage
	// Track names where the span ran, e.g. "island2/core5/t1", "net",
	// "gateway". One Chrome-trace thread is emitted per track.
	Track string
	// Detail refines the stage, e.g. "rdma-commit" or "retransmit".
	Detail string
	// Start and End are offsets on the collector's clock (virtual time
	// for simulations, time since epoch for daemons). Start == End
	// marks an instant event.
	Start, End time.Duration
}

// Duration returns the span length.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// Req is the span container for one traced request. A nil *Req is the
// disabled-tracing value: every method is a no-op on it, so
// instrumented code can thread it unconditionally.
type Req struct {
	c *Collector

	// ID is the collector-assigned trace sequence number.
	ID uint64
	// Workload and Label identify the invoked lambda.
	Workload uint32
	Label    string
	// Start and End bound the request end to end.
	Start, End time.Duration
	// Err is the failure message, empty on success.
	Err string
	// Spans are the recorded stage intervals, in recording order.
	Spans []Span

	finished bool
}

// AddSpan records one completed stage interval.
func (r *Req) AddSpan(stage Stage, track, detail string, start, end time.Duration) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.c.mu.Lock()
	r.Spans = append(r.Spans, Span{Stage: stage, Track: track, Detail: detail, Start: start, End: end})
	r.c.mu.Unlock()
}

// Mark records an instant event (a zero-length span).
func (r *Req) Mark(stage Stage, track, detail string, at time.Duration) {
	r.AddSpan(stage, track, detail, at, at)
}

// Finish closes the request at the given time. Err may be nil.
func (r *Req) Finish(at time.Duration, err error) {
	if r == nil {
		return
	}
	r.c.mu.Lock()
	if !r.finished {
		r.finished = true
		r.End = at
		if err != nil {
			r.Err = err.Error()
		}
	}
	r.c.mu.Unlock()
}

// Now reads the owning collector's clock; 0 on a nil receiver.
func (r *Req) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.c.Now()
}

// Tracer hands out span containers for requests entering the system.
// A nil Tracer disables tracing; implementations may additionally
// return nil from Begin to sample.
type Tracer interface {
	// Begin opens a trace for one request, or returns nil when the
	// request is not sampled. label may be empty.
	Begin(workload uint32, label string) *Req
	// Now reads the tracer's clock (virtual or wall time).
	Now() time.Duration
}

// Mark is a collector-level instant event on a named track — a fault
// injection, a worker eviction, a recovery — not tied to any single
// request. Exporters render marks as instant markers alongside the
// request spans (the chaos experiment's kill/evict flags).
type Mark struct {
	Track string
	Name  string
	At    time.Duration
}

// CollectorStats counts the collector's admission decisions.
type CollectorStats struct {
	// Started counts Begin calls, Sampled the traces admitted, and
	// Dropped the traces rejected by sampling or the retention limit.
	Started, Sampled, Dropped uint64
}

// Collector is the standard Tracer: it samples, stamps, and retains
// request traces in memory for export after the run. Safe for
// concurrent use (the UDP daemons trace from handler goroutines).
type Collector struct {
	clock func() time.Duration

	mu          sync.Mutex
	sampleEvery uint64
	limit       int
	stats       CollectorStats
	reqs        []*Req
	marks       []Mark
}

// Option configures a Collector.
type Option func(*Collector)

// WithSampleEvery keeps one request trace in every n. n <= 1 keeps all.
func WithSampleEvery(n int) Option {
	return func(c *Collector) {
		if n > 1 {
			c.sampleEvery = uint64(n)
		}
	}
}

// WithLimit caps retained traces; further requests are dropped (and
// counted). The default is DefaultLimit.
func WithLimit(n int) Option {
	return func(c *Collector) {
		if n > 0 {
			c.limit = n
		}
	}
}

// DefaultLimit bounds retained traces so long daemon runs cannot grow
// without bound.
const DefaultLimit = 200_000

// NewCollector builds a collector on the given clock. For simulations
// pass the simulation's Now (func() time.Duration); for daemons pass
// WallClock().
func NewCollector(clock func() time.Duration, opts ...Option) *Collector {
	c := &Collector{clock: clock, sampleEvery: 1, limit: DefaultLimit}
	for _, o := range opts {
		o(c)
	}
	return c
}

// WallClock returns a wall-time clock measuring since its creation,
// for tracing the real UDP daemons.
func WallClock() func() time.Duration {
	epoch := time.Now()
	return func() time.Duration { return time.Since(epoch) }
}

// Now implements Tracer.
func (c *Collector) Now() time.Duration {
	if c == nil {
		return 0
	}
	return c.clock()
}

// Begin implements Tracer: it admits the request according to the
// sampling rate and retention limit and stamps its start time.
func (c *Collector) Begin(workload uint32, label string) *Req {
	if c == nil {
		return nil
	}
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Started++
	if (c.stats.Started-1)%c.sampleEvery != 0 || len(c.reqs) >= c.limit {
		c.stats.Dropped++
		return nil
	}
	c.stats.Sampled++
	r := &Req{c: c, ID: c.stats.Sampled, Workload: workload, Label: label, Start: now, End: now}
	c.reqs = append(c.reqs, r)
	return r
}

// Requests returns a snapshot of the collected traces in admission
// order. The *Req values are shared; callers should export after the
// traced run has quiesced.
func (c *Collector) Requests() []*Req {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Req(nil), c.reqs...)
}

// MarkEvent records a collector-level instant event. Marks bypass
// sampling — fault events are rare and always wanted. Safe on a nil
// collector.
func (c *Collector) MarkEvent(track, name string, at time.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.marks = append(c.marks, Mark{Track: track, Name: name, At: at})
	c.mu.Unlock()
}

// Marks returns a snapshot of the recorded instant events in recording
// order.
func (c *Collector) Marks() []Mark {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Mark(nil), c.marks...)
}

// Stats returns the collector's admission counters.
func (c *Collector) Stats() CollectorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
