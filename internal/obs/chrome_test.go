package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the Chrome trace golden file")

// goldenReqs builds a small deterministic trace: one successful request
// with the full NIC pipeline and one host-path failure.
func goldenReqs() []*Req {
	clk := &manualClock{}
	c := NewCollector(clk.Now)

	us := func(n int64) time.Duration { return time.Duration(n) * time.Microsecond }

	clk.now = us(5)
	r1 := c.Begin(1, "web")
	r1.AddSpan(StageTransport, "net", "request-wire", us(5), us(6))
	r1.AddSpan(StageQueue, "nic-scheduler", "", us(6), us(8))
	r1.AddSpan(StageExec, "island0/core0/t0", "", us(8), us(10))
	r1.AddSpan(StageMemCTM, "island0/core0/t0", "", us(10), us(11))
	r1.AddSpan(StageTransport, "net", "response-wire", us(11), us(12))
	clk.now = us(12)
	r1.Finish(clk.now, nil)

	clk.now = us(20)
	r2 := c.Begin(9, "")
	r2.Mark(StageHost, "host", "fallback", us(21))
	clk.now = us(22)
	r2.Finish(clk.now, os.ErrNotExist)

	return c.Requests()
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenReqs()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace differs from golden file; run with -update-golden to refresh\ngot:\n%s", buf.String())
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenReqs()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.Unit)
	}
	// 2 process_name + 2 workload thread_name + 4 track thread_name
	// metadata events, 2 request events, 6 span events.
	if len(doc.TraceEvents) != 16 {
		t.Errorf("events = %d, want 16", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph != "M" && ph != "X" && ph != "i" {
			t.Errorf("unexpected phase %q in %v", ph, ev)
		}
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, goldenReqs()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, goldenReqs()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("repeated export differs")
	}
}
