package obs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// manualClock is a settable test clock.
type manualClock struct{ now time.Duration }

func (m *manualClock) Now() time.Duration { return m.now }

func TestNilReqIsNoOp(t *testing.T) {
	var r *Req
	r.AddSpan(StageExec, "x", "", 0, 1)
	r.Mark(StageHost, "x", "", 0)
	r.Finish(1, errors.New("boom"))
	if r.Now() != 0 {
		t.Error("nil Req.Now != 0")
	}
}

func TestNilCollectorIsNoOp(t *testing.T) {
	var c *Collector
	if c.Begin(1, "web") != nil {
		t.Error("nil collector sampled a request")
	}
	if c.Now() != 0 {
		t.Error("nil collector clock != 0")
	}
}

func TestCollectorRecordsLifecycle(t *testing.T) {
	clk := &manualClock{}
	c := NewCollector(clk.Now)
	clk.now = 10 * time.Microsecond
	r := c.Begin(7, "web")
	if r == nil {
		t.Fatal("request not sampled")
	}
	if r.Start != 10*time.Microsecond || r.Workload != 7 || r.Label != "web" {
		t.Errorf("bad begin stamp: %+v", r)
	}
	r.AddSpan(StageExec, "island0/core0/t0", "", 10*time.Microsecond, 12*time.Microsecond)
	r.AddSpan(StageMemEMEM, "island0/core0/t0", "", 12*time.Microsecond, 15*time.Microsecond)
	clk.now = 15 * time.Microsecond
	r.Finish(clk.now, nil)
	// Duplicate Finish must not overwrite.
	r.Finish(99*time.Microsecond, errors.New("late"))

	got := c.Requests()
	if len(got) != 1 {
		t.Fatalf("requests = %d, want 1", len(got))
	}
	if got[0].End != 15*time.Microsecond || got[0].Err != "" {
		t.Errorf("finish not recorded correctly: end=%v err=%q", got[0].End, got[0].Err)
	}
	if len(got[0].Spans) != 2 {
		t.Errorf("spans = %d, want 2", len(got[0].Spans))
	}
}

func TestCollectorSampling(t *testing.T) {
	clk := &manualClock{}
	c := NewCollector(clk.Now, WithSampleEvery(3))
	kept := 0
	for i := 0; i < 9; i++ {
		if c.Begin(1, "") != nil {
			kept++
		}
	}
	if kept != 3 {
		t.Errorf("kept %d of 9 with sample-every-3, want 3", kept)
	}
	st := c.Stats()
	if st.Started != 9 || st.Sampled != 3 || st.Dropped != 6 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollectorLimit(t *testing.T) {
	clk := &manualClock{}
	c := NewCollector(clk.Now, WithLimit(2))
	for i := 0; i < 5; i++ {
		c.Begin(1, "")
	}
	if n := len(c.Requests()); n != 2 {
		t.Errorf("retained %d, want 2", n)
	}
	if st := c.Stats(); st.Dropped != 3 {
		t.Errorf("dropped = %d, want 3", st.Dropped)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector(WallClock())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := c.Begin(uint32(g), "web")
				start := r.Now()
				r.AddSpan(StageExec, "worker", "", start, r.Now())
				r.Finish(r.Now(), nil)
			}
		}(g)
	}
	wg.Wait()
	if n := len(c.Requests()); n != 1600 {
		t.Errorf("collected %d, want 1600", n)
	}
}

func TestSummarizeAttributesStages(t *testing.T) {
	clk := &manualClock{}
	c := NewCollector(clk.Now)
	// Two requests for workload 1: exec 2µs + queue 1µs, exec 4µs.
	mk := func(queue, exec time.Duration) {
		r := c.Begin(1, "web")
		t0 := clk.now
		if queue > 0 {
			r.AddSpan(StageQueue, "nic", "", t0, t0+queue)
		}
		r.AddSpan(StageExec, "island0/core0/t0", "", t0+queue, t0+queue+exec)
		clk.now = t0 + queue + exec
		r.Finish(clk.now, nil)
	}
	mk(1*time.Microsecond, 2*time.Microsecond)
	mk(0, 4*time.Microsecond)

	bds := Summarize(c.Requests())
	if len(bds) != 1 {
		t.Fatalf("breakdowns = %d, want 1", len(bds))
	}
	bd := bds[0]
	if bd.N != 2 || bd.Label != "web" {
		t.Errorf("bd = %+v", bd)
	}
	if bd.Coverage < 0.999 || bd.Coverage > 1.001 {
		t.Errorf("coverage = %v, want ~1", bd.Coverage)
	}
	var gotExec, gotQueue *StageSummary
	for i := range bd.Stages {
		switch bd.Stages[i].Stage {
		case StageExec:
			gotExec = &bd.Stages[i]
		case StageQueue:
			gotQueue = &bd.Stages[i]
		}
	}
	if gotExec == nil || gotExec.Total != 6*time.Microsecond || gotExec.N != 2 {
		t.Errorf("exec = %+v", gotExec)
	}
	if gotQueue == nil || gotQueue.Total != 1*time.Microsecond || gotQueue.N != 1 {
		t.Errorf("queue = %+v", gotQueue)
	}
	// Queue stage must sort before exec (pipeline order).
	if bd.Stages[0].Stage != StageQueue {
		t.Errorf("stage order = %v", bd.Stages)
	}
	if out := RenderBreakdown(bds); out == "" {
		t.Error("empty render")
	}
}
