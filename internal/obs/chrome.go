// Chrome trace-event exporter: renders collected request traces in the
// Trace Event Format that chrome://tracing and Perfetto load. Each span
// track (NPU island/core/thread, the wire, the gateway, ...) becomes
// one named thread; every request additionally gets an end-to-end span
// on a per-workload "requests" track, so the viewer shows request
// lifetimes above the hardware timeline they decompose into.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// chromeEvent is one entry of the traceEvents array. Field order is the
// emission order, which keeps output deterministic and diffable.
type chromeEvent struct {
	Name string   `json:"name"`
	Cat  string   `json:"cat,omitempty"`
	Ph   string   `json:"ph"`
	Ts   float64  `json:"ts"`
	Dur  *float64 `json:"dur,omitempty"`
	// S is the instant-event scope; "g" draws a global marker line.
	S    string         `json:"s,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Process IDs in the emitted trace: request-level spans versus the
// stage spans on their hardware/software tracks.
const (
	chromePidRequests = 1
	chromePidStages   = 2
)

// micros converts a clock offset to the format's microsecond unit.
func micros(d int64) float64 { return float64(d) / 1e3 }

// WriteChromeTrace writes reqs as Chrome trace-event JSON. Output is
// deterministic: tracks are numbered in first-appearance order and
// events follow the request/recording order.
func WriteChromeTrace(w io.Writer, reqs []*Req) error {
	return WriteChromeTraceWithMarks(w, reqs, nil)
}

// WriteChromeTraceWithMarks additionally renders collector-level marks
// (fault injections, evictions) as global instant events, drawn as
// vertical marker lines across the whole timeline in the viewer.
func WriteChromeTraceWithMarks(w io.Writer, reqs []*Req, marks []Mark) error {
	tids := map[string]int{}
	var trackNames []string
	trackID := func(name string) int {
		if id, ok := tids[name]; ok {
			return id
		}
		id := len(trackNames) + 1
		tids[name] = id
		trackNames = append(trackNames, name)
		return id
	}

	var events []chromeEvent
	for _, r := range reqs {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("wl-%d", r.Workload)
		}
		dur := micros(int64(r.End - r.Start))
		args := map[string]any{"req": r.ID, "workload": r.Workload}
		if r.Err != "" {
			args["error"] = r.Err
		}
		events = append(events, chromeEvent{
			Name: label, Cat: "request", Ph: "X",
			Ts: micros(int64(r.Start)), Dur: &dur,
			Pid: chromePidRequests, Tid: int(r.Workload) + 1,
			Args: args,
		})
		for _, sp := range r.Spans {
			name := string(sp.Stage)
			if sp.Detail != "" {
				name += ":" + sp.Detail
			}
			ev := chromeEvent{
				Name: name, Cat: string(sp.Stage),
				Ts:  micros(int64(sp.Start)),
				Pid: chromePidStages, Tid: trackID(sp.Track),
				Args: map[string]any{"req": r.ID},
			}
			if sp.Start == sp.End {
				ev.Ph = "i" // instant event
			} else {
				ev.Ph = "X"
				d := micros(int64(sp.Duration()))
				ev.Dur = &d
			}
			events = append(events, ev)
		}
	}

	for _, m := range marks {
		events = append(events, chromeEvent{
			Name: m.Name, Cat: "fault", Ph: "i",
			Ts: micros(int64(m.At)), S: "g",
			Pid: chromePidStages, Tid: trackID(m.Track),
		})
	}

	// Metadata first: process names, then thread names per track plus
	// one per seen workload on the requests process.
	meta := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: chromePidRequests, Tid: 0,
			Args: map[string]any{"name": "requests"}},
		{Name: "process_name", Ph: "M", Pid: chromePidStages, Tid: 0,
			Args: map[string]any{"name": "pipeline"}},
	}
	seenWl := map[int]string{}
	for _, r := range reqs {
		label := r.Label
		if label == "" {
			label = fmt.Sprintf("wl-%d", r.Workload)
		}
		if _, ok := seenWl[int(r.Workload)+1]; !ok {
			seenWl[int(r.Workload)+1] = label
		}
	}
	wlTids := make([]int, 0, len(seenWl))
	for tid := range seenWl {
		wlTids = append(wlTids, tid)
	}
	sort.Ints(wlTids)
	for _, tid := range wlTids {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePidRequests, Tid: tid,
			Args: map[string]any{"name": seenWl[tid]},
		})
	}
	for i, name := range trackNames {
		meta = append(meta, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: chromePidStages, Tid: i + 1,
			Args: map[string]any{"name": name},
		})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(chromeTrace{
		TraceEvents:     append(meta, events...),
		DisplayTimeUnit: "ms",
	})
}

// WriteChromeTraceFile writes the trace to path (0644).
func WriteChromeTraceFile(path string, reqs []*Req) error {
	return WriteChromeTraceFileWithMarks(path, reqs, nil)
}

// WriteChromeTraceFileWithMarks writes the trace with global marks to
// path (0644).
func WriteChromeTraceFileWithMarks(path string, reqs []*Req, marks []Mark) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteChromeTraceWithMarks(f, reqs, marks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
