// Latency-attribution summary: collapses collected request traces into
// a per-workload, per-stage table (p50/p99 and share of end-to-end
// time) — the breakdown behind the paper's Figure 6 gap: where λ-NIC
// requests do and don't spend time.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageSummary aggregates one stage's time across a workload's traced
// requests.
type StageSummary struct {
	Stage Stage
	// N counts requests that recorded at least one span of this stage.
	N int
	// Total is summed span time; Mean/P50/P99 are per-request stage
	// totals over the requests that touched the stage.
	Total, Mean, P50, P99 time.Duration
	// Share is Total over the workload's summed end-to-end time.
	Share float64
}

// WorkloadBreakdown is one workload's latency attribution.
type WorkloadBreakdown struct {
	Workload uint32
	Label    string
	// N counts finished traced requests; Errors those with Err set.
	N, Errors int
	// End-to-end request latency statistics.
	E2EMean, E2EP50, E2EP99 time.Duration
	// Stages in pipeline order.
	Stages []StageSummary
	// Coverage is summed stage time over summed end-to-end time: 1.0
	// means the spans tile every request exactly.
	Coverage float64
}

func quantile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= n {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Summarize attributes the traced requests' time to stages, grouped by
// workload. Unfinished requests (End == Start with no spans) still
// count toward N with zero latency; callers normally export after the
// run drains.
func Summarize(reqs []*Req) []WorkloadBreakdown {
	type wlKey struct {
		id    uint32
		label string
	}
	type wlAcc struct {
		key      wlKey
		e2e      []time.Duration
		e2eTotal time.Duration
		errors   int
		stages   map[Stage][]time.Duration
		totals   map[Stage]time.Duration
	}
	accs := map[wlKey]*wlAcc{}
	var order []wlKey
	for _, r := range reqs {
		k := wlKey{r.Workload, r.Label}
		a := accs[k]
		if a == nil {
			a = &wlAcc{key: k, stages: map[Stage][]time.Duration{}, totals: map[Stage]time.Duration{}}
			accs[k] = a
			order = append(order, k)
		}
		e2e := r.End - r.Start
		a.e2e = append(a.e2e, e2e)
		a.e2eTotal += e2e
		if r.Err != "" {
			a.errors++
		}
		perStage := map[Stage]time.Duration{}
		for _, sp := range r.Spans {
			perStage[sp.Stage] += sp.Duration()
		}
		for st, d := range perStage {
			a.stages[st] = append(a.stages[st], d)
			a.totals[st] += d
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].id != order[j].id {
			return order[i].id < order[j].id
		}
		return order[i].label < order[j].label
	})

	out := make([]WorkloadBreakdown, 0, len(order))
	for _, k := range order {
		a := accs[k]
		sort.Slice(a.e2e, func(i, j int) bool { return a.e2e[i] < a.e2e[j] })
		bd := WorkloadBreakdown{
			Workload: k.id,
			Label:    k.label,
			N:        len(a.e2e),
			Errors:   a.errors,
			E2EMean:  a.e2eTotal / time.Duration(max(len(a.e2e), 1)),
			E2EP50:   quantile(a.e2e, 0.50),
			E2EP99:   quantile(a.e2e, 0.99),
		}
		stages := make([]Stage, 0, len(a.stages))
		for st := range a.stages {
			stages = append(stages, st)
		}
		sort.Slice(stages, func(i, j int) bool {
			ri, iok := stageRank[stages[i]]
			rj, jok := stageRank[stages[j]]
			if iok && jok && ri != rj {
				return ri < rj
			}
			if iok != jok {
				return iok
			}
			return stages[i] < stages[j]
		})
		var stageTotal time.Duration
		for _, st := range stages {
			ds := a.stages[st]
			sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
			total := a.totals[st]
			stageTotal += total
			share := 0.0
			if a.e2eTotal > 0 {
				share = float64(total) / float64(a.e2eTotal)
			}
			bd.Stages = append(bd.Stages, StageSummary{
				Stage: st,
				N:     len(ds),
				Total: total,
				Mean:  total / time.Duration(len(ds)),
				P50:   quantile(ds, 0.50),
				P99:   quantile(ds, 0.99),
				Share: share,
			})
		}
		if a.e2eTotal > 0 {
			bd.Coverage = float64(stageTotal) / float64(a.e2eTotal)
		}
		out = append(out, bd)
	}
	return out
}

// RenderBreakdown prints the attribution table.
func RenderBreakdown(bds []WorkloadBreakdown) string {
	var b strings.Builder
	b.WriteString("Latency attribution by pipeline stage\n")
	for _, bd := range bds {
		label := bd.Label
		if label == "" {
			label = fmt.Sprintf("wl-%d", bd.Workload)
		}
		fmt.Fprintf(&b, "  %s: n=%d errors=%d e2e mean=%s p50=%s p99=%s coverage=%.1f%%\n",
			label, bd.N, bd.Errors, fmtDur(bd.E2EMean), fmtDur(bd.E2EP50), fmtDur(bd.E2EP99),
			100*bd.Coverage)
		for _, st := range bd.Stages {
			fmt.Fprintf(&b, "    %-10s %6.1f%%  mean=%-10s p50=%-10s p99=%-10s (n=%d)\n",
				st.Stage, 100*st.Share, fmtDur(st.Mean), fmtDur(st.P50), fmtDur(st.P99), st.N)
		}
	}
	return b.String()
}

func fmtDur(d time.Duration) string { return d.Round(time.Nanosecond).String() }
