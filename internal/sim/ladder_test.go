package sim

import (
	"math/rand"
	"testing"
	"time"
)

// kernelKinds enumerates both queue implementations for tests that must
// hold on each.
var kernelKinds = []KernelKind{KernelHeap, KernelLadder}

// TestKernelsFireIdentically drives the heap and ladder kernels through
// the same scripted schedule and requires the identical fire sequence —
// the executable statement of the "same (at, seq) total order" contract.
func TestKernelsFireIdentically(t *testing.T) {
	script := func(s *Sim) []Time {
		var fired []Time
		rec := func() { fired = append(fired, s.Now()) }
		// Mix of near band, far band, ties, and nested scheduling.
		for _, d := range []Time{500 * time.Nanosecond, 10 * time.Millisecond,
			500 * time.Nanosecond, 0, 3 * time.Microsecond, 2 * time.Millisecond} {
			s.Schedule(d, rec)
		}
		s.Schedule(time.Microsecond, func() {
			rec()
			s.Schedule(100*time.Nanosecond, rec)
			s.Schedule(5*time.Millisecond, rec)
		})
		if err := s.RunUntilIdle(); err != nil {
			t.Fatalf("run: %v", err)
		}
		return fired
	}
	heap := script(NewWithKernel(1, KernelHeap))
	ladder := script(NewWithKernel(1, KernelLadder))
	if len(heap) != len(ladder) {
		t.Fatalf("fired %d events on heap, %d on ladder", len(heap), len(ladder))
	}
	for i := range heap {
		if heap[i] != ladder[i] {
			t.Fatalf("fire %d: heap at %v, ladder at %v", i, heap[i], ladder[i])
		}
	}
}

// TestKernelFuzzDifferential is the seeded fuzz half of the determinism
// differential: random interleavings of schedule / cancel / reschedule /
// horizon-bounded runs on both kernels must produce the identical fire
// order, executed counts, and final clocks.
func TestKernelFuzzDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		heapLog := fuzzKernel(t, KernelHeap, seed)
		ladderLog := fuzzKernel(t, KernelLadder, seed)
		if len(heapLog) != len(ladderLog) {
			t.Fatalf("seed %d: heap log %d entries, ladder log %d",
				seed, len(heapLog), len(ladderLog))
		}
		for i := range heapLog {
			if heapLog[i] != ladderLog[i] {
				t.Fatalf("seed %d entry %d: heap %+v, ladder %+v",
					seed, i, heapLog[i], ladderLog[i])
			}
		}
	}
}

// fuzzRecord is one observable kernel fact: which event fired at what
// clock, plus the run's closing state.
type fuzzRecord struct {
	id  int
	at  Time
	end bool
}

// fuzzKernel runs a deterministic pseudo-random command stream against
// one kernel and returns the observable log. The command RNG is
// separate from the Sim's RNG so both kernels see the same stream.
func fuzzKernel(t *testing.T, kind KernelKind, seed int64) []fuzzRecord {
	t.Helper()
	cmd := rand.New(rand.NewSource(seed))
	s := NewWithKernel(seed, kind)
	var log []fuzzRecord
	var handles []*Event
	nextID := 0

	// Delays span all ladder regimes: same bucket, in-window, far band.
	randDelay := func() Time {
		switch cmd.Intn(4) {
		case 0:
			return Time(cmd.Intn(200)) // sub-granularity ties
		case 1:
			return Time(cmd.Intn(int(50 * time.Microsecond)))
		case 2:
			return Time(cmd.Intn(int(5 * time.Millisecond)))
		default:
			return Time(cmd.Intn(int(200 * time.Millisecond)))
		}
	}
	schedule := func() {
		id := nextID
		nextID++
		ev := s.Schedule(randDelay(), func() {
			log = append(log, fuzzRecord{id: id, at: s.Now()})
		})
		handles = append(handles, ev)
	}

	for round := 0; round < 60; round++ {
		for op := 0; op < 30; op++ {
			switch cmd.Intn(10) {
			case 0, 1, 2, 3, 4:
				schedule()
			case 5:
				if len(handles) > 0 {
					s.Cancel(handles[cmd.Intn(len(handles))])
				}
			case 6, 7:
				if len(handles) > 0 {
					s.Reschedule(handles[cmd.Intn(len(handles))], randDelay())
				}
			case 8:
				s.After(randDelay(), func() {
					log = append(log, fuzzRecord{id: -1, at: s.Now()})
				})
			default:
				id := nextID
				nextID++
				s.AfterArg(randDelay(), func(arg any) {
					log = append(log, fuzzRecord{id: *(arg.(*int)), at: s.Now()})
				}, &id)
			}
		}
		// Alternate horizon-bounded runs (forcing clock jumps and
		// window rewinds on the ladder) with stepping.
		switch cmd.Intn(3) {
		case 0:
			horizon := s.Now() + randDelay()
			if err := s.Run(horizon); err != nil {
				t.Fatalf("run: %v", err)
			}
		case 1:
			for i := 0; i < cmd.Intn(40); i++ {
				if !s.Step() {
					break
				}
			}
		default:
			for i := 0; i < cmd.Intn(40); i++ {
				if !s.StepUntil(s.Now() + randDelay()) {
					break
				}
			}
		}
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if s.Pending() != 0 {
		t.Fatalf("kernel %v seed %d: %d events still pending after drain",
			kind, seed, s.Pending())
	}
	log = append(log, fuzzRecord{id: int(s.Executed), at: s.Now(), end: true})
	return log
}

// TestLadderRewind exercises the rare window-rewind path directly: a
// horizon stop materializes a far-band bucket (jumping the window
// forward), then a later schedule lands below the window floor.
func TestLadderRewind(t *testing.T) {
	s := New(1)
	var fired []Time
	rec := func() { fired = append(fired, s.Now()) }
	s.Schedule(10*time.Millisecond, rec) // far band
	// Run to a horizon before it: peeking materializes the 10ms bucket.
	if err := s.Run(2 * time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock at %v, want 2ms", s.Now())
	}
	// Now schedule below the materialized window: must still fire first.
	s.Schedule(time.Millisecond, rec) // fires at 3ms < 10ms
	s.Schedule(100*time.Microsecond, rec)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	want := []Time{2100 * time.Microsecond, 3 * time.Millisecond, 10 * time.Millisecond}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fire %d at %v, want %v", i, fired[i], want[i])
		}
	}
}

// TestStepHonorsStopped is the regression test for the satellite fix:
// Step used to pop events even after Stop.
func TestStepHonorsStopped(t *testing.T) {
	for _, kind := range kernelKinds {
		s := NewWithKernel(1, kind)
		fired := 0
		s.Schedule(time.Microsecond, func() { fired++ })
		s.Schedule(2*time.Microsecond, func() { fired++ })
		s.Stop()
		if s.Step() {
			t.Fatalf("kernel %v: Step executed an event while stopped", kind)
		}
		if fired != 0 {
			t.Fatalf("kernel %v: %d events fired while stopped", kind, fired)
		}
		if !s.Stopped() {
			t.Fatalf("kernel %v: Stopped() lost the flag", kind)
		}
		// Run clears the flag, exactly as before the fix.
		if err := s.RunUntilIdle(); err != nil {
			t.Fatalf("kernel %v: run: %v", kind, err)
		}
		if fired != 2 {
			t.Fatalf("kernel %v: fired %d, want 2", kind, fired)
		}
	}
}

// TestStepUntilHorizon verifies StepUntil clamps to the horizon the way
// Run does: events past it do not fire and the clock parks at the
// horizon.
func TestStepUntilHorizon(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(time.Microsecond, func() { fired++ })
	s.Schedule(time.Millisecond, func() { fired++ })
	if !s.StepUntil(10 * time.Microsecond) {
		t.Fatal("first StepUntil should fire the 1µs event")
	}
	if fired != 1 || s.Now() != time.Microsecond {
		t.Fatalf("after first step: fired=%d now=%v", fired, s.Now())
	}
	if s.StepUntil(10 * time.Microsecond) {
		t.Fatal("second StepUntil should not fire past the horizon")
	}
	if s.Now() != 10*time.Microsecond {
		t.Fatalf("clock at %v, want horizon 10µs", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending %d, want 1", s.Pending())
	}
	// Zero horizon means unbounded, like Run.
	if !s.StepUntil(0) {
		t.Fatal("unbounded StepUntil should fire the 1ms event")
	}
	if fired != 2 {
		t.Fatalf("fired %d, want 2", fired)
	}
}

// TestPooledAPIs exercises After/At/AfterArg ordering and free-list
// reuse across both kernels.
func TestPooledAPIs(t *testing.T) {
	for _, kind := range kernelKinds {
		s := NewWithKernel(1, kind)
		var order []int
		s.After(3*time.Microsecond, func() { order = append(order, 3) })
		s.At(s.Now()+time.Microsecond, func() { order = append(order, 1) })
		x := 2
		s.AfterArg(2*time.Microsecond, func(arg any) {
			order = append(order, *(arg.(*int)))
		}, &x)
		s.After(-time.Second, func() { order = append(order, 0) }) // clamps to now
		if err := s.RunUntilIdle(); err != nil {
			t.Fatalf("kernel %v: run: %v", kind, err)
		}
		want := []int{0, 1, 2, 3}
		for i := range want {
			if order[i] != want[i] {
				t.Fatalf("kernel %v: order %v, want %v", kind, order, want)
			}
		}
		if len(s.free) == 0 {
			t.Fatalf("kernel %v: pooled events did not return to the free list", kind)
		}
	}
}

// TestPooledEventReuse checks the free list actually recycles: a chain
// of pooled events must settle on a bounded free list rather than
// allocating per link.
func TestPooledEventReuse(t *testing.T) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(time.Microsecond, tick)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 1000 {
		t.Fatalf("ticks %d, want 1000", n)
	}
	// The chain keeps at most one event in flight; the pool should hold
	// a handful, not a thousand.
	if len(s.free) > 4 {
		t.Fatalf("free list grew to %d for a depth-1 chain", len(s.free))
	}
}

// TestScheduleEventNotPooled: events returned by Schedule are
// caller-owned and must never enter the free list, even after firing —
// callers hold the handle for Reschedule.
func TestScheduleEventNotPooled(t *testing.T) {
	s := New(1)
	ev := s.Schedule(time.Microsecond, func() {})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(s.free) != 0 {
		t.Fatalf("caller-owned event leaked into the free list")
	}
	// The handle must still be usable.
	fired := false
	s.Reschedule(ev, time.Microsecond)
	ev2 := s.Schedule(2*time.Microsecond, func() { fired = true })
	_ = ev2
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !fired {
		t.Fatal("second schedule did not fire")
	}
}

// TestLadderInsertIntoDrainingBucket covers the binary-insert path: a
// callback schedules a new event inside the bucket currently draining.
func TestLadderInsertIntoDrainingBucket(t *testing.T) {
	s := New(1)
	var order []int
	// All three initial events share virtual bucket 0 (at < 128ns).
	s.Schedule(10, func() {
		order = append(order, 1)
		s.Schedule(20, func() { order = append(order, 3) }) // at=30, same bucket
		s.Schedule(5, func() { order = append(order, 2) })  // at=15, same bucket
	})
	s.Schedule(100, func() { order = append(order, 4) })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for i, want := range []int{1, 2, 3, 4} {
		if order[i] != want {
			t.Fatalf("order %v", order)
		}
	}
}

// TestKernelKindString pins the names used in benchmark rows and flags.
func TestKernelKindString(t *testing.T) {
	if KernelLadder.String() != "ladder" || KernelHeap.String() != "heap" {
		t.Fatalf("kernel names changed: %v %v", KernelLadder, KernelHeap)
	}
	if KernelKind(9).String() != "unknown" {
		t.Fatal("unknown kind should stringify as unknown")
	}
}
