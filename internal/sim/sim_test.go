package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(30*time.Nanosecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Nanosecond, func() { got = append(got, 2) })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*time.Nanosecond {
		t.Errorf("Now() = %v, want 30ns", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5*time.Nanosecond, func() { got = append(got, i) })
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want ascending", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired int
	s.Schedule(time.Microsecond, func() {
		s.Schedule(time.Microsecond, func() {
			fired++
		})
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if fired != 1 {
		t.Fatalf("nested event fired %d times, want 1", fired)
	}
	if s.Now() != 2*time.Microsecond {
		t.Errorf("Now() = %v, want 2µs", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	s.Cancel(e)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	// Double-cancel and nil-cancel must be no-ops.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestHorizonStopsClock(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(10*time.Millisecond, func() { fired = true })
	if err := s.Run(time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("event beyond horizon fired")
	}
	if s.Now() != time.Millisecond {
		t.Errorf("Now() = %v, want 1ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	// Resuming past the horizon fires the event.
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !fired {
		t.Error("event did not fire after horizon extended")
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	var count int
	for i := 0; i < 5; i++ {
		s.Schedule(time.Duration(i)*time.Nanosecond, func() {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	if err := s.Run(0); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Errorf("executed %d events before stop, want 2", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !fired || s.Now() != 0 {
		t.Errorf("fired=%v now=%v, want fired at t=0", fired, s.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	s := New(1)
	var at Time
	s.Schedule(time.Second, func() {
		s.ScheduleAt(0, func() { at = s.Now() })
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if at != time.Second {
		t.Errorf("past-scheduled event ran at %v, want clamped to 1s", at)
	}
}

func TestStep(t *testing.T) {
	s := New(1)
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if !s.Step() || !s.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if s.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		s := New(42)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			d := time.Duration(s.Rand().Intn(1000)) * time.Nanosecond
			s.Schedule(d, func() { order = append(order, i) })
		}
		if err := s.RunUntilIdle(); err != nil {
			t.Fatalf("RunUntilIdle: %v", err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCyclesToDuration(t *testing.T) {
	tests := []struct {
		name   string
		cycles uint64
		hz     uint64
		want   time.Duration
	}{
		{"one cycle at 1GHz", 1, 1e9, time.Nanosecond},
		{"633MHz cycle rounds", 1, 633e6, 2 * time.Nanosecond}, // 1.58ns -> 2ns
		{"one second worth", 633e6, 633e6, time.Second},
		{"zero hz", 100, 0, 0},
		{"large count no overflow", 2e18, 1e9, 2e9 * time.Second},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CyclesToDuration(tt.cycles, tt.hz); got != tt.want {
				t.Errorf("CyclesToDuration(%d, %d) = %v, want %v", tt.cycles, tt.hz, got, tt.want)
			}
		})
	}
}

func TestCycleConversionRoundTrip(t *testing.T) {
	// Property: converting cycles -> duration -> cycles is within one
	// cycle of the original for realistic clock rates.
	f := func(c uint32) bool {
		const hz = 633e6
		cycles := uint64(c)
		back := DurationToCycles(CyclesToDuration(cycles, hz), hz)
		diff := int64(back) - int64(cycles)
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExecutedCounter(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.Schedule(time.Duration(i), func() {})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if s.Executed != 7 {
		t.Errorf("Executed = %d, want 7", s.Executed)
	}
}

func TestReschedulePendingEventMovesLater(t *testing.T) {
	// The retransmit-timer shape: a pending timeout is pushed later
	// without firing at its original time.
	s := New(1)
	var fired []Time
	ev := s.Schedule(10*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.Schedule(5*time.Millisecond, func() {
		s.Reschedule(ev, 20*time.Millisecond) // now fires at t=25ms
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 25*time.Millisecond {
		t.Errorf("fired = %v, want [25ms]", fired)
	}
}

func TestRescheduleEarlier(t *testing.T) {
	s := New(1)
	var at Time = -1
	ev := s.Schedule(100*time.Millisecond, func() { at = s.Now() })
	s.Schedule(time.Millisecond, func() { s.Reschedule(ev, time.Millisecond) })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if at != 2*time.Millisecond {
		t.Errorf("fired at %v, want 2ms", at)
	}
}

func TestRescheduleFiredEventReArms(t *testing.T) {
	// Rescheduling from inside the event's own callback re-arms the
	// same Event without a fresh allocation; the periodic-poll shape.
	s := New(1)
	count := 0
	var ev *Event
	ev = s.Schedule(time.Millisecond, func() {
		count++
		if count < 3 {
			if got := s.Reschedule(ev, time.Millisecond); got != ev {
				t.Errorf("Reschedule returned a different event")
			}
		}
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestRescheduleCancelledEventReArms(t *testing.T) {
	s := New(1)
	fired := false
	ev := s.Schedule(time.Millisecond, func() { fired = true })
	s.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not cancelled")
	}
	s.Reschedule(ev, 2*time.Millisecond)
	if ev.Cancelled() {
		t.Error("rescheduled event still reports cancelled")
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("re-armed event did not fire")
	}
}

func TestRescheduleNil(t *testing.T) {
	s := New(1)
	if got := s.Reschedule(nil, time.Millisecond); got != nil {
		t.Errorf("Reschedule(nil) = %v", got)
	}
}

func TestRescheduleOrdersAsFreshlyScheduled(t *testing.T) {
	// A rescheduled event landing on the same timestamp as a later
	// Schedule call fires first only if rescheduled first — ties break
	// by (re)scheduling order.
	s := New(1)
	var order []string
	a := s.Schedule(50*time.Millisecond, func() { order = append(order, "a") })
	s.Schedule(time.Millisecond, func() {
		s.Reschedule(a, 9*time.Millisecond) // t=10ms, re-armed before b scheduled
		s.Schedule(9*time.Millisecond, func() { order = append(order, "b") })
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v, want [a b]", order)
	}
}
