package sim

// heapKernel is the reference event queue: a hand-rolled binary min-heap
// over entry values ordered by (at, seq). It exists as the executable
// specification the ladder queue is differentially tested against, and
// as the far-band store inside the ladder itself. Storing entries by
// value in a plain slice keeps operations allocation-free (the backing
// array grows amortized) and avoids the interface boxing of
// container/heap.
type heapKernel struct {
	h []entry
}

func (k *heapKernel) push(e entry) {
	k.h = append(k.h, e)
	k.up(len(k.h) - 1)
}

func (k *heapKernel) first() (entry, bool) {
	if len(k.h) == 0 {
		return entry{}, false
	}
	return k.h[0], true
}

func (k *heapKernel) shift() {
	n := len(k.h) - 1
	k.h[0] = k.h[n]
	k.h[n] = entry{} // release the *Event reference
	k.h = k.h[:n]
	if n > 0 {
		k.down(0)
	}
}

func (k *heapKernel) len() int { return len(k.h) }

func (k *heapKernel) up(i int) {
	h := k.h
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (k *heapKernel) down(i int) {
	h := k.h
	n := len(h)
	e := h[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && h[r].before(h[l]) {
			least = r
		}
		if !h[least].before(e) {
			break
		}
		h[i] = h[least]
		i = least
	}
	h[i] = e
}
