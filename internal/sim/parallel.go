package sim

import (
	"sort"
)

// Parallel coordinates several simulation domains — each a full Sim
// with its own kernel, clock, and RNG — under conservative synchronous
// lookahead synchronization. It is the multi-NIC scaleout mode: one
// domain per NIC/host runs on its own core, and determinism is
// preserved by construction rather than by luck.
//
// The protocol is null-message-free barrier rounds. Each round the
// coordinator takes tmin, the earliest pending event time across all
// domains, and lets every domain execute events strictly before
// tmin + lookahead concurrently. Cross-domain interactions go through
// Domain.Send, which models a link of latency >= lookahead; outboxes
// are collected at the barrier and delivered before the next round in
// a deterministic (at, src, order) sort. Because a message sent at
// time t >= tmin arrives at t + lookahead >= tmin + lookahead — at or
// after the window edge every domain stopped at — no domain can
// receive an event in its past, and the round's executions are
// independent. See DESIGN.md "Simulation kernel" for the proof sketch.
//
// With lookahead <= 0 the domains are declared non-interacting: Send
// panics, and Run executes each domain to completion concurrently in a
// single round.
//
// Within a round each domain runs on exactly one goroutine and touches
// only its own state, so scheduling, pooling, and RNG draws need no
// locks; the coordinator synchronizes rounds with channels. Results
// are bit-identical across runs and across worker interleavings for a
// fixed domain count and lookahead.
type Parallel struct {
	lookahead Time
	domains   []*Domain
	// Serial forces rounds to execute domains sequentially in id order
	// on the calling goroutine — same results, no concurrency. Tests
	// use it to prove the parallel execution is interleaving-free.
	Serial bool
}

// Domain is one simulation domain inside a Parallel group. It embeds
// its Sim, so components built on a *Sim run unchanged inside a domain.
type Domain struct {
	*Sim
	par   *Parallel
	id    int
	out   []xmsg
	order uint64
}

// xmsg is a cross-domain event in flight between rounds.
type xmsg struct {
	src, dst int
	order    uint64 // per-source send counter, for deterministic ties
	at       Time
	fn       func()
}

// NewParallel returns a coordinator whose domains may interact through
// links of latency at least lookahead. A non-positive lookahead
// declares the domains independent (no Send allowed).
func NewParallel(lookahead Time) *Parallel {
	return &Parallel{lookahead: lookahead}
}

// Lookahead returns the group's synchronization lookahead.
func (p *Parallel) Lookahead() Time { return p.lookahead }

// NewDomain adds a domain backed by the default ladder kernel.
func (p *Parallel) NewDomain(seed int64) *Domain {
	return p.NewDomainKernel(seed, KernelLadder)
}

// NewDomainKernel adds a domain with an explicit queue kernel.
func (p *Parallel) NewDomainKernel(seed int64, kind KernelKind) *Domain {
	d := &Domain{Sim: NewWithKernel(seed, kind), par: p, id: len(p.domains)}
	p.domains = append(p.domains, d)
	return d
}

// Domains returns the group's domains in id order.
func (p *Parallel) Domains() []*Domain { return p.domains }

// ID returns the domain's index within its group.
func (d *Domain) ID() int { return d.id }

// Send schedules fn on domain dst after at least the group's lookahead
// of virtual time — the cross-domain counterpart of Schedule, modeling
// a message over the inter-NIC link. A delay below the lookahead is
// clamped up to it: the lookahead is the link's minimum latency, so a
// shorter delay would be a modeling error (and would break the
// synchronization invariant). Must be called from the sending domain's
// own callbacks.
func (d *Domain) Send(dst int, delay Time, fn func()) {
	la := d.par.lookahead
	if la <= 0 {
		panic("sim: Send on an independent (lookahead<=0) parallel group")
	}
	if delay < la {
		delay = la
	}
	d.out = append(d.out, xmsg{
		src: d.id, dst: dst, order: d.order, at: d.Sim.Now() + delay, fn: fn,
	})
	d.order++
}

// Executed sums fired events across all domains.
func (p *Parallel) Executed() uint64 {
	var n uint64
	for _, d := range p.domains {
		n += d.Executed
	}
	return n
}

// Clock returns the most advanced domain clock.
func (p *Parallel) Clock() Time {
	var t Time
	for _, d := range p.domains {
		if d.Now() > t {
			t = d.Now()
		}
	}
	return t
}

// Pending sums pending events across all domains.
func (p *Parallel) Pending() int {
	n := 0
	for _, d := range p.domains {
		n += d.Sim.Pending()
	}
	return n
}

// Run executes all domains until every queue drains, every clock passes
// horizon, or a domain calls Stop. A zero horizon means no time limit.
// Like Sim.Run it clears stop flags on entry, parks clocks at the
// horizon when one is given, and returns ErrStopped if halted.
func (p *Parallel) Run(horizon Time) error {
	for _, d := range p.domains {
		d.stopped = false
	}
	if p.lookahead <= 0 {
		return p.runRound(func(d *Domain) error { return d.Sim.Run(horizon) })
	}

	// Persistent per-domain workers: rounds are numerous (one per
	// lookahead-wide event cluster), so goroutine spawns per round
	// would dominate small-lookahead runs.
	errs := make([]error, len(p.domains))
	var starts []chan Time
	var done chan struct{}
	if !p.Serial {
		starts = make([]chan Time, len(p.domains))
		done = make(chan struct{})
		for i, d := range p.domains {
			starts[i] = make(chan Time)
			go func(i int, d *Domain) {
				for limit := range starts[i] {
					errs[i] = d.Sim.runWindow(limit)
					done <- struct{}{}
				}
			}(i, d)
		}
		defer func() {
			for _, c := range starts {
				close(c)
			}
		}()
	}
	round := func(limit Time) error {
		if p.Serial {
			for i, d := range p.domains {
				errs[i] = d.Sim.runWindow(limit)
			}
		} else {
			for _, c := range starts {
				c <- limit
			}
			for range p.domains {
				<-done
			}
		}
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		return nil
	}

	var inbox []xmsg
	for {
		// Deliver last round's cross-domain messages in a deterministic
		// order so destination seq assignment (and thus tie-breaks)
		// never depends on worker interleaving.
		sort.Slice(inbox, func(i, j int) bool {
			a, b := inbox[i], inbox[j]
			if a.at != b.at {
				return a.at < b.at
			}
			if a.src != b.src {
				return a.src < b.src
			}
			return a.order < b.order
		})
		for _, m := range inbox {
			p.domains[m.dst].At(m.at, m.fn)
		}
		inbox = inbox[:0]

		tmin, any := Time(0), false
		for _, d := range p.domains {
			if at, ok := d.nextAt(); ok && (!any || at < tmin) {
				tmin, any = at, true
			}
		}
		if !any {
			break
		}
		if horizon > 0 && tmin > horizon {
			break
		}
		limit := tmin + p.lookahead
		if horizon > 0 && limit > horizon {
			// runWindow fires strictly below limit; include the horizon
			// itself, matching Run's at <= horizon.
			limit = horizon + 1
		}
		if err := round(limit); err != nil {
			return err
		}
		for _, d := range p.domains {
			inbox = append(inbox, d.out...)
			d.out = d.out[:0]
		}
	}
	if horizon > 0 {
		for _, d := range p.domains {
			if d.now < horizon {
				d.now = horizon
			}
		}
	}
	return nil
}

// RunUntilIdle executes until every domain's queue drains.
func (p *Parallel) RunUntilIdle() error { return p.Run(0) }

// runRound executes body for every domain — concurrently, one
// goroutine per domain, unless Serial is set. The first error in
// domain-id order wins, so error reporting is deterministic too.
func (p *Parallel) runRound(body func(*Domain) error) error {
	errs := make([]error, len(p.domains))
	if p.Serial {
		for i, d := range p.domains {
			errs[i] = body(d)
		}
	} else {
		done := make(chan struct{})
		for i, d := range p.domains {
			go func(i int, d *Domain) {
				errs[i] = body(d)
				done <- struct{}{}
			}(i, d)
		}
		for range p.domains {
			<-done
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
