package sim

import (
	"testing"
	"time"
)

// TestParallelPingPong bounces a message between two domains and checks
// the delivery times follow the link lookahead exactly.
func TestParallelPingPong(t *testing.T) {
	const la = 450 * time.Nanosecond
	p := NewParallel(la)
	a := p.NewDomain(1)
	b := p.NewDomain(2)

	var log []struct {
		dom int
		at  Time
	}
	hops := 0
	var hop func(d *Domain, peer int) func()
	hop = func(d *Domain, peer int) func() {
		return func() {
			log = append(log, struct {
				dom int
				at  Time
			}{d.ID(), d.Now()})
			hops++
			if hops < 6 {
				d.Send(peer, la, hop(p.Domains()[peer], d.ID()))
			}
		}
	}
	a.Schedule(0, hop(a, b.ID()))
	if err := p.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if hops != 6 {
		t.Fatalf("hops %d, want 6", hops)
	}
	for i, e := range log {
		wantDom := i % 2
		wantAt := Time(i) * la
		if e.dom != wantDom || e.at != wantAt {
			t.Fatalf("hop %d on domain %d at %v, want domain %d at %v",
				i, e.dom, e.at, wantDom, wantAt)
		}
	}
}

// TestParallelMatchesSerial runs a messy multi-domain workload twice —
// once with concurrent workers, once with the Serial flag — and
// requires identical executed counts, clocks, and per-domain logs:
// the proof that results never depend on worker interleaving.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(serial bool) ([]uint64, []Time, [][]Time) {
		const la = time.Microsecond
		p := NewParallel(la)
		p.Serial = serial
		const n = 4
		logs := make([][]Time, n)
		for i := 0; i < n; i++ {
			p.NewDomain(int64(i + 1))
		}
		for i, d := range p.Domains() {
			i, d := i, d
			var tick func()
			count := 0
			tick = func() {
				logs[i] = append(logs[i], d.Now())
				count++
				if count < 50 {
					// Deterministic per-domain jitter plus a cross-domain
					// send every few ticks.
					delay := Time(d.Rand().Intn(3000)) * time.Nanosecond
					d.Schedule(delay, tick)
					if count%5 == 0 {
						dst := (i + 1) % n
						d.Send(dst, la+delay, func() {
							logs[dst] = append(logs[dst], p.Domains()[dst].Now())
						})
					}
				}
			}
			d.Schedule(Time(i)*100*time.Nanosecond, tick)
		}
		if err := p.RunUntilIdle(); err != nil {
			t.Fatalf("run(serial=%v): %v", serial, err)
		}
		execs := make([]uint64, n)
		clocks := make([]Time, n)
		for i, d := range p.Domains() {
			execs[i] = d.Executed
			clocks[i] = d.Now()
		}
		return execs, clocks, logs
	}

	se, sc, sl := run(true)
	pe, pc, pl := run(false)
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("domain %d executed %d serial vs %d parallel", i, se[i], pe[i])
		}
		if sc[i] != pc[i] {
			t.Fatalf("domain %d clock %v serial vs %v parallel", i, sc[i], pc[i])
		}
		if len(sl[i]) != len(pl[i]) {
			t.Fatalf("domain %d log %d serial vs %d parallel", i, len(sl[i]), len(pl[i]))
		}
		for j := range sl[i] {
			if sl[i][j] != pl[i][j] {
				t.Fatalf("domain %d log[%d] %v serial vs %v parallel",
					i, j, sl[i][j], pl[i][j])
			}
		}
	}
}

// TestParallelHorizon checks Run(horizon) semantics match Sim.Run:
// events at the horizon fire, later ones stay pending, and every clock
// parks at the horizon.
func TestParallelHorizon(t *testing.T) {
	p := NewParallel(time.Microsecond)
	a := p.NewDomain(1)
	b := p.NewDomain(2)
	fired := 0
	a.Schedule(time.Millisecond, func() { fired++ })  // exactly at horizon
	b.Schedule(2*time.Millisecond, func() { fired++ }) // beyond
	if err := p.Run(time.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (event at horizon fires, later one does not)", fired)
	}
	if a.Now() != time.Millisecond || b.Now() != time.Millisecond {
		t.Fatalf("clocks %v %v, want both at horizon", a.Now(), b.Now())
	}
	if p.Pending() != 1 {
		t.Fatalf("pending %d, want 1", p.Pending())
	}
	// Resuming past the horizon fires the rest.
	if err := p.RunUntilIdle(); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if fired != 2 || p.Clock() != 2*time.Millisecond {
		t.Fatalf("after resume: fired=%d clock=%v", fired, p.Clock())
	}
}

// TestParallelStop propagates a domain's Stop as ErrStopped.
func TestParallelStop(t *testing.T) {
	p := NewParallel(time.Microsecond)
	a := p.NewDomain(1)
	p.NewDomain(2)
	a.Schedule(time.Microsecond, func() { a.Stop() })
	a.Schedule(time.Millisecond, func() { t.Fatal("event after Stop fired") })
	if err := p.Run(0); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

// TestParallelIndependent covers lookahead<=0: domains run to
// completion concurrently and Send is rejected.
func TestParallelIndependent(t *testing.T) {
	p := NewParallel(0)
	for i := 0; i < 4; i++ {
		d := p.NewDomain(int64(i))
		n := 10 * (i + 1)
		for j := 0; j < n; j++ {
			d.Schedule(Time(j)*time.Microsecond, func() {})
		}
	}
	if err := p.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if p.Executed() != 10+20+30+40 {
		t.Fatalf("executed %d, want 100", p.Executed())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send on independent group did not panic")
		}
	}()
	p.Domains()[0].Send(1, 0, func() {})
}

// TestParallelSendClampsDelay: a sub-lookahead delay is raised to the
// lookahead (the link cannot be faster than its modeled latency).
func TestParallelSendClampsDelay(t *testing.T) {
	const la = time.Microsecond
	p := NewParallel(la)
	a := p.NewDomain(1)
	b := p.NewDomain(2)
	var arrived Time
	a.Schedule(0, func() {
		a.Send(b.ID(), 10*time.Nanosecond, func() { arrived = b.Now() })
	})
	if err := p.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if arrived != la {
		t.Fatalf("arrived at %v, want clamped to lookahead %v", arrived, la)
	}
}
