package sim

import (
	"math/bits"
	"time"
)

// Ladder-queue defaults: 8192 buckets of 128ns cover a sliding ~1.05ms
// near-future window — wide enough that NIC service times, WFQ rounds,
// and wire/RDMA delays (hundreds of ns to tens of µs) all land in the
// O(1) band, while slow control traffic (heartbeats, detector sweeps)
// overflows to the far-band heap.
const (
	defaultGranularity = 128 * time.Nanosecond
	defaultBuckets     = 8192
)

// ladder is the default event kernel: a two-band ladder queue.
//
// Near band: a timer wheel of nb buckets, each gran wide in virtual
// time. An entry at time t belongs to virtual bucket vb = t/gran; the
// wheel stores vb modulo nb. The invariant that makes the modulo safe
// is that the wheel only ever holds vbs in the half-open window
// [curVB, curVB+nb): exactly nb consecutive virtual buckets, so every
// wheel index maps to at most one live vb. Entries beyond the window
// go to the far band, a plain binary heap.
//
// Buckets are unsorted append-only slices — push is O(1). Order is
// recovered lazily: when the earliest non-empty bucket becomes current
// it is sorted once by (at, seq) and drained in place (cur/curIdx).
// Entries pushed into the currently-draining bucket are inserted into
// its undrained tail by binary search, and far-band entries that mature
// into the current bucket are merged at materialization time — so the
// (at, seq) total order is exactly the heap kernel's.
//
// The only rewind — a push below curVB, possible after a horizon stop
// advanced the window past still-pending far entries — is handled by
// the rare dump() path: everything moves to the far heap and the window
// restarts at the pushed entry's bucket.
//
// All storage is value-typed slices reused across buckets, so
// steady-state push/first/shift does not allocate.
type ladder struct {
	gran      Time
	granShift uint   // log2(gran): vb = at >> granShift
	nb        uint64 // bucket count, power of two
	mask      uint64 // nb - 1

	buckets [][]entry
	near    int // entries in the wheel, including cur's undrained tail

	// cur is the materialized current bucket (nil when none), sorted by
	// (at, seq) and drained via curIdx. curVB is the virtual bucket cur
	// holds while draining, or the window floor for the next scan.
	cur    []entry
	curIdx int
	curVB  uint64

	far heapKernel
}

func newLadder(gran Time, nb int) *ladder {
	if gran <= 0 || gran&(gran-1) != 0 {
		panic("sim: ladder granularity must be a power of two")
	}
	if nb <= 0 || nb&(nb-1) != 0 {
		panic("sim: ladder bucket count must be a power of two")
	}
	return &ladder{
		gran:      gran,
		granShift: uint(bits.TrailingZeros64(uint64(gran))),
		nb:        uint64(nb),
		mask:      uint64(nb) - 1,
		buckets:   make([][]entry, nb),
	}
}

func (l *ladder) vbOf(at Time) uint64 { return uint64(at) >> l.granShift }

func (l *ladder) push(e entry) {
	v := l.vbOf(e.at)
	if l.cur != nil && v == l.curVB {
		l.insertCur(e)
		l.near++
		return
	}
	if v < l.curVB {
		// Rewind: the window advanced past this time (horizon stop plus
		// a far-band materialization jump). Rare — reset via the heap.
		l.dump()
		l.curVB = v
	}
	if v < l.curVB+l.nb {
		idx := v & l.mask
		l.buckets[idx] = append(l.buckets[idx], e)
		l.near++
		return
	}
	l.far.push(e)
}

// insertCur places e into the undrained tail of the current bucket,
// keeping it sorted. Entries with equal at order after existing ones:
// e carries the highest seq issued so far, so "first at > e.at" is the
// correct (at, seq) position.
func (l *ladder) insertCur(e entry) {
	lo, hi := l.curIdx, len(l.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.cur[mid].at > e.at {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	l.cur = append(l.cur, entry{})
	copy(l.cur[lo+1:], l.cur[lo:])
	l.cur[lo] = e
}

func (l *ladder) first() (entry, bool) {
	for {
		if l.cur != nil {
			if l.curIdx < len(l.cur) {
				return l.cur[l.curIdx], true
			}
			// Bucket drained: return the (possibly grown) backing array
			// to the wheel slot and move the window floor past it.
			l.buckets[l.curVB&l.mask] = l.cur[:0]
			l.cur = nil
			l.curVB++
			continue
		}
		if l.near == 0 && l.far.len() == 0 {
			return entry{}, false
		}

		// Find the earliest non-empty virtual bucket: scan the wheel
		// from the window floor, bounded by the far band's top (no
		// point scanning past a band that fires sooner).
		var candVB uint64
		haveFar := l.far.len() > 0
		var farVB uint64
		if haveFar {
			farVB = l.vbOf(l.far.h[0].at)
		}
		if l.near > 0 {
			bound := l.curVB + l.nb - 1
			if haveFar && farVB < bound {
				bound = farVB
			}
			found := false
			for v := l.curVB; v <= bound; v++ {
				if len(l.buckets[v&l.mask]) > 0 {
					candVB = v
					found = true
					break
				}
			}
			if !found {
				// The wheel's earliest bucket lies beyond farVB; the
				// far band fires first. (farVB is inside the window
				// here, and its wheel slot was scanned empty.)
				candVB = farVB
			}
		} else {
			candVB = farVB
		}

		// Materialize candVB: adopt its wheel slice, merge far-band
		// entries that mature inside it, sort once, drain in place.
		idx := candVB & l.mask
		b := l.buckets[idx]
		l.buckets[idx] = b[:0]
		l.cur = b
		l.curIdx = 0
		l.curVB = candVB
		lim := Time((candVB + 1) << l.granShift)
		for l.far.len() > 0 && l.far.h[0].at < lim {
			l.cur = append(l.cur, l.far.h[0])
			l.far.shift()
			l.near++
		}
		sortEntries(l.cur)
	}
}

// shift consumes the entry first() returned — always the head of the
// materialized current bucket.
func (l *ladder) shift() {
	l.cur[l.curIdx] = entry{} // release the *Event reference
	l.curIdx++
	l.near--
}

// dump moves every wheel entry (all buckets plus the undrained tail of
// cur) into the far heap, emptying the near band so the window can be
// re-anchored. Rare: only the rewind path in push uses it.
func (l *ladder) dump() {
	for i := range l.buckets {
		for _, e := range l.buckets[i] {
			l.far.push(e)
		}
		l.buckets[i] = l.buckets[i][:0]
	}
	if l.cur != nil {
		for _, e := range l.cur[l.curIdx:] {
			l.far.push(e)
		}
		l.buckets[l.curVB&l.mask] = l.cur[:0]
		l.cur = nil
	}
	l.near = 0
}

// sortEntries orders a bucket by (at, seq) in place without allocating:
// insertion sort for the typical small bucket, heapsort beyond that.
// (at, seq) pairs are unique, so any comparison sort yields the same
// deterministic order.
func sortEntries(s []entry) {
	n := len(s)
	if n < 2 {
		return
	}
	if n <= 24 {
		for i := 1; i < n; i++ {
			e := s[i]
			j := i - 1
			for j >= 0 && e.before(s[j]) {
				s[j+1] = s[j]
				j--
			}
			s[j+1] = e
		}
		return
	}
	// Heapsort: build a max-heap (reverse order), then pop to the tail.
	for i := n/2 - 1; i >= 0; i-- {
		siftDownMax(s, i, n)
	}
	for end := n - 1; end > 0; end-- {
		s[0], s[end] = s[end], s[0]
		siftDownMax(s, 0, end)
	}
}

func siftDownMax(s []entry, i, n int) {
	e := s[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && s[c].before(s[r]) {
			c = r
		}
		if !e.before(s[c]) {
			break
		}
		s[i] = s[c]
		i = c
	}
	s[i] = e
}
