// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate beneath both hardware models in this
// repository: the SmartNIC simulator (internal/nicsim) and the host-CPU
// simulator (internal/cpusim). Components schedule callbacks on a shared
// virtual clock; the kernel executes them in timestamp order, breaking
// ties by scheduling order so that runs are fully reproducible.
//
// The design is callback-driven rather than goroutine-driven: a single
// goroutine owns the event loop, which keeps execution deterministic and
// avoids any dependence on the Go runtime scheduler for simulated time.
package sim

import (
	"container/heap"
	"errors"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as a duration since the
// simulation epoch (t = 0).
type Time = time.Duration

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// Event is a scheduled callback. The callback runs exactly once, at the
// event's timestamp, unless cancelled first.
type Event struct {
	at      Time
	seq     uint64
	fn      func()
	index   int // heap index; -1 once removed
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// At returns the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// eventQueue is a min-heap of events ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with New. Sim is not safe for concurrent use: all
// scheduling must happen from event callbacks or before Run.
type Sim struct {
	now     Time
	seq     uint64
	queue   eventQueue
	rng     *rand.Rand
	stopped bool

	// Executed counts events that have fired, for diagnostics.
	Executed uint64
}

// New returns a simulation with its clock at zero and a deterministic
// random source seeded with seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. Components
// must use this source (never the global one) so runs stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. It returns the event so callers may cancel it.
func (s *Sim) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (s *Sim) ScheduleAt(at Time, fn func()) *Event {
	if at < s.now {
		at = s.now
	}
	e := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (s *Sim) Cancel(e *Event) {
	if e == nil || e.cancelled || e.index < 0 {
		if e != nil {
			e.cancelled = true
		}
		return
	}
	e.cancelled = true
	heap.Remove(&s.queue, e.index)
}

// Reschedule re-arms an event to fire delay after the current time,
// returning the (reused) event. It is the retransmit-timer fast path:
// a pending event is moved in place with one sift (heap.Fix) instead of
// a remove plus a push, and a fired or cancelled event is re-armed
// without allocating a new Event. The event keeps its callback and is
// ordered as if freshly scheduled. A nil event returns nil.
func (s *Sim) Reschedule(e *Event, delay Time) *Event {
	if e == nil {
		return nil
	}
	if delay < 0 {
		delay = 0
	}
	e.at = s.now + delay
	e.seq = s.seq
	s.seq++
	e.cancelled = false
	if e.index >= 0 {
		heap.Fix(&s.queue, e.index)
	} else {
		heap.Push(&s.queue, e)
	}
	return e
}

// Stop halts the event loop after the current callback returns.
func (s *Sim) Stop() { s.stopped = true }

// Pending returns the number of events waiting to fire.
func (s *Sim) Pending() int { return len(s.queue) }

// Run executes events until the queue drains, the clock passes horizon,
// or Stop is called. A zero horizon means no time limit. It returns
// ErrStopped if halted by Stop, and nil otherwise.
func (s *Sim) Run(horizon Time) error {
	s.stopped = false
	for len(s.queue) > 0 {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue[0]
		if horizon > 0 && next.at > horizon {
			s.now = horizon
			return nil
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.Executed++
		next.fn()
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// RunUntilIdle executes events until none remain, with no time horizon.
func (s *Sim) RunUntilIdle() error { return s.Run(0) }

// Step executes exactly one event, returning false when the queue is
// empty.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	next := heap.Pop(&s.queue).(*Event)
	s.now = next.at
	s.Executed++
	next.fn()
	return true
}

// CyclesToDuration converts a cycle count at the given clock frequency
// to virtual time, rounding to the nearest nanosecond. It is the single
// conversion point used by both hardware simulators, so cycle accounting
// is consistent across them.
func CyclesToDuration(cycles uint64, hz uint64) Time {
	if hz == 0 {
		return 0
	}
	// Split to avoid overflow for large cycle counts: whole seconds
	// first, then the fractional remainder at nanosecond resolution.
	sec := cycles / hz
	rem := cycles % hz
	ns := (rem*1e9 + hz/2) / hz
	return Time(sec)*time.Second + Time(ns)
}

// DurationToCycles converts virtual time to cycles at the given clock
// frequency, rounding to the nearest cycle.
func DurationToCycles(d Time, hz uint64) uint64 {
	if d <= 0 || hz == 0 {
		return 0
	}
	ns := uint64(d)
	sec := ns / 1e9
	rem := ns % 1e9
	return sec*hz + (rem*hz+5e8)/1e9
}
