// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is the substrate beneath both hardware models in this
// repository: the SmartNIC simulator (internal/nicsim) and the host-CPU
// simulator (internal/cpusim). Components schedule callbacks on a shared
// virtual clock; the kernel executes them in timestamp order, breaking
// ties by scheduling order so that runs are fully reproducible.
//
// The design is callback-driven rather than goroutine-driven: a single
// goroutine owns the event loop, which keeps execution deterministic and
// avoids any dependence on the Go runtime scheduler for simulated time.
//
// Two interchangeable queue kernels implement the same (at, seq) total
// order: the default ladder queue (a fine-grained timer wheel for the
// near-future band where almost all NIC events land, with a binary-heap
// far band) and the reference binary heap. Because the firing order is
// identical, every experiment produces bit-identical results on either
// kernel; the ladder is simply faster. Events scheduled through the
// fire-and-forget After/At/AfterArg entry points are recycled through a
// free list, so the schedule/fire hot loop allocates nothing.
//
// For multi-NIC runs, parallel.go adds conservative parallel execution:
// each NIC/host becomes a simulation domain with its own kernel, and
// domains synchronize in barrier rounds bounded by the inter-domain
// link-latency lookahead.
package sim

import (
	"errors"
	"math/rand"
	"time"
)

// Time is a point in virtual time, measured as a duration since the
// simulation epoch (t = 0).
type Time = time.Duration

// ErrStopped is returned by Run when the simulation was halted by Stop
// before the event queue drained or the horizon was reached.
var ErrStopped = errors.New("sim: stopped")

// KernelKind selects the event-queue implementation backing a Sim. Both
// kernels fire events in the identical (at, seq) total order, so the
// choice affects throughput only, never results.
type KernelKind int

const (
	// KernelLadder is the default two-band ladder queue: a timer wheel
	// of fine-grained buckets covers the near future with O(1)
	// amortized schedule/fire, and a binary heap holds the far band,
	// merging matured entries bucket by bucket.
	KernelLadder KernelKind = iota
	// KernelHeap is the reference binary min-heap kernel — O(log n)
	// per operation, kept as the executable specification the ladder
	// is differentially tested against.
	KernelHeap
)

// String names the kernel kind.
func (k KernelKind) String() string {
	switch k {
	case KernelLadder:
		return "ladder"
	case KernelHeap:
		return "heap"
	default:
		return "unknown"
	}
}

// staleSeq marks an Event with no live queue entry (fired, cancelled,
// or never scheduled). Sequence numbers are assigned from 0 upward and
// can never reach it.
const staleSeq = ^uint64(0)

// Event is a scheduled callback. The callback runs exactly once, at the
// event's timestamp, unless cancelled first.
type Event struct {
	at  Time
	seq uint64 // matches its queue entry while pending; staleSeq otherwise
	fn  func()
	// fnArg/arg are the allocation-free callback form used by AfterArg:
	// a long-lived func(any) plus a per-fire argument, avoiding a fresh
	// closure per scheduled event on hot paths.
	fnArg func(any)
	arg   any
	// pooled events were scheduled through After/At/AfterArg — the
	// caller holds no reference, so the kernel returns them to the
	// free list when they fire.
	pooled    bool
	cancelled bool
}

// Cancelled reports whether the event was cancelled before firing.
func (e *Event) Cancelled() bool { return e.cancelled }

// At returns the virtual time the event fires at.
func (e *Event) At() Time { return e.at }

// entry is one queue slot: the firing key plus the event it belongs to.
// Entries are values — kernels store them in plain slices, so queue
// operations never allocate. An entry is stale (skipped when reached)
// once its event's seq no longer matches: cancellation and reschedule
// are O(1) flag flips, with the dead slot discarded lazily.
type entry struct {
	at  Time
	seq uint64
	ev  *Event
}

// before reports the (at, seq) ordering the whole kernel contract rests
// on.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// stale reports whether the entry's event was cancelled, rescheduled,
// or already fired.
func (e entry) stale() bool { return e.ev.seq != e.seq }

// kernel is the priority-queue contract shared by the ladder and heap
// implementations: entries come back in (at, seq) order, possibly
// stale — the Sim filters those.
type kernel interface {
	// push inserts an entry. at is never before the last fired time.
	push(entry)
	// first returns the earliest entry without consuming it.
	first() (entry, bool)
	// shift consumes the entry first() last returned.
	shift()
}

// Sim is a discrete-event simulation instance. The zero value is not
// usable; construct with New. Sim is not safe for concurrent use: all
// scheduling must happen from event callbacks or before Run.
type Sim struct {
	now     Time
	seq     uint64
	k       kernel
	rng     *rand.Rand
	stopped bool
	// live counts pending (non-stale) events.
	live int
	// free is the pooled-Event free list: events scheduled via
	// After/At/AfterArg return here when they fire.
	free []*Event

	// Executed counts events that have fired, for diagnostics.
	Executed uint64
}

// New returns a simulation with its clock at zero, the default ladder
// kernel, and a deterministic random source seeded with seed.
func New(seed int64) *Sim { return NewWithKernel(seed, KernelLadder) }

// NewWithKernel is New with an explicit queue kernel.
func NewWithKernel(seed int64, kind KernelKind) *Sim {
	s := &Sim{rng: rand.New(rand.NewSource(seed))}
	if kind == KernelHeap {
		s.k = &heapKernel{}
	} else {
		s.k = newLadder(defaultGranularity, defaultBuckets)
	}
	return s
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. Components
// must use this source (never the global one) so runs stay reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// schedule is the single insertion point behind every public variant.
func (s *Sim) schedule(at Time, fn func(), fnArg func(any), arg any, pooled bool) *Event {
	if at < s.now {
		at = s.now
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		e = &Event{}
	}
	e.at, e.seq = at, s.seq
	e.fn, e.fnArg, e.arg = fn, fnArg, arg
	e.pooled, e.cancelled = pooled, false
	s.k.push(entry{at: at, seq: s.seq, ev: e})
	s.seq++
	s.live++
	return e
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. It returns the event so callers may cancel or
// reschedule it; the event is caller-owned and never recycled. Prefer
// After on hot paths that discard the handle.
func (s *Sim) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.schedule(s.now+delay, fn, nil, nil, false)
}

// ScheduleAt runs fn at absolute virtual time at. Times in the past are
// clamped to the current time.
func (s *Sim) ScheduleAt(at Time, fn func()) *Event {
	return s.schedule(at, fn, nil, nil, false)
}

// After runs fn after delay of virtual time, fire-and-forget: no handle
// is returned, and the backing Event recycles through the kernel's free
// list when it fires — the zero-allocation fast path for the per-packet
// scheduling the hardware models do.
func (s *Sim) After(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.schedule(s.now+delay, fn, nil, nil, true)
}

// At is After with an absolute virtual time (clamped to now).
func (s *Sim) At(at Time, fn func()) {
	s.schedule(at, fn, nil, nil, true)
}

// AfterArg is After for callbacks that would otherwise close over one
// hot-path value: fn is typically a long-lived method value and arg the
// per-fire payload (a pointer, so the interface conversion does not
// allocate). Together with the pooled Event this makes schedule/fire
// allocation-free.
func (s *Sim) AfterArg(delay Time, fn func(any), arg any) {
	if delay < 0 {
		delay = 0
	}
	s.schedule(s.now+delay, nil, fn, arg, true)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op. The queue slot is discarded
// lazily when reached, so Cancel is O(1).
func (s *Sim) Cancel(e *Event) {
	if e == nil {
		return
	}
	if e.seq != staleSeq {
		e.seq = staleSeq
		s.live--
	}
	e.cancelled = true
}

// Reschedule re-arms an event to fire delay after the current time,
// returning the (reused) event. It is the retransmit-timer fast path: a
// pending event's old slot goes stale in place, and a fired or
// cancelled event is re-armed without allocating a new Event. The event
// keeps its callback and is ordered as if freshly scheduled. A nil
// event returns nil.
func (s *Sim) Reschedule(e *Event, delay Time) *Event {
	if e == nil {
		return nil
	}
	if delay < 0 {
		delay = 0
	}
	if e.seq == staleSeq {
		s.live++
	}
	e.at = s.now + delay
	e.seq = s.seq
	e.cancelled = false
	s.k.push(entry{at: e.at, seq: e.seq, ev: e})
	s.seq++
	return e
}

// Stop halts the event loop after the current callback returns.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has halted the loop. Run clears it.
func (s *Sim) Stopped() bool { return s.stopped }

// Pending returns the number of events waiting to fire.
func (s *Sim) Pending() int { return s.live }

// peek returns the earliest pending entry, discarding stale slots.
func (s *Sim) peek() (entry, bool) {
	for {
		en, ok := s.k.first()
		if !ok {
			return entry{}, false
		}
		if en.stale() {
			s.k.shift()
			continue
		}
		return en, true
	}
}

// nextAt returns the time of the earliest pending event.
func (s *Sim) nextAt() (Time, bool) {
	en, ok := s.peek()
	return en.at, ok
}

// fire consumes and executes the entry peek returned. Pooled events are
// recycled before the callback runs, so a callback scheduling new
// pooled work reuses the Event it was invoked from.
func (s *Sim) fire(en entry) {
	s.k.shift()
	e := en.ev
	e.seq = staleSeq
	s.live--
	s.now = en.at
	s.Executed++
	fn, fnArg, arg := e.fn, e.fnArg, e.arg
	if e.pooled {
		e.fn, e.fnArg, e.arg = nil, nil, nil
		s.free = append(s.free, e)
	}
	if fnArg != nil {
		fnArg(arg)
		return
	}
	fn()
}

// Run executes events until the queue drains, the clock passes horizon,
// or Stop is called. A zero horizon means no time limit. It returns
// ErrStopped if halted by Stop, and nil otherwise.
func (s *Sim) Run(horizon Time) error {
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		en, ok := s.peek()
		if !ok {
			break
		}
		if horizon > 0 && en.at > horizon {
			s.now = horizon
			return nil
		}
		s.fire(en)
	}
	if horizon > 0 && s.now < horizon {
		s.now = horizon
	}
	return nil
}

// runWindow fires events strictly before limit without advancing the
// clock past the last fired event — the per-round body the parallel
// coordinator uses, where the clock must not outrun the barrier.
func (s *Sim) runWindow(limit Time) error {
	for {
		if s.stopped {
			return ErrStopped
		}
		en, ok := s.peek()
		if !ok || en.at >= limit {
			return nil
		}
		s.fire(en)
	}
}

// RunUntilIdle executes events until none remain, with no time horizon.
func (s *Sim) RunUntilIdle() error { return s.Run(0) }

// Step executes exactly one event. It returns false — executing
// nothing — when the queue is empty or the simulation is stopped (Run
// clears the stopped flag).
func (s *Sim) Step() bool {
	if s.stopped {
		return false
	}
	en, ok := s.peek()
	if !ok {
		return false
	}
	s.fire(en)
	return true
}

// StepUntil is Step bounded by a horizon the way Run is: an event past
// the horizon does not fire, and the clock advances to the horizon
// instead (a zero horizon means no limit). It returns false when
// nothing fired.
func (s *Sim) StepUntil(horizon Time) bool {
	if s.stopped {
		return false
	}
	en, ok := s.peek()
	if !ok || (horizon > 0 && en.at > horizon) {
		if horizon > 0 && s.now < horizon {
			s.now = horizon
		}
		return false
	}
	s.fire(en)
	return true
}

// CyclesToDuration converts a cycle count at the given clock frequency
// to virtual time, rounding to the nearest nanosecond. It is the single
// conversion point used by both hardware simulators, so cycle accounting
// is consistent across them.
func CyclesToDuration(cycles uint64, hz uint64) Time {
	if hz == 0 {
		return 0
	}
	// Split to avoid overflow for large cycle counts: whole seconds
	// first, then the fractional remainder at nanosecond resolution.
	sec := cycles / hz
	rem := cycles % hz
	ns := (rem*1e9 + hz/2) / hz
	return Time(sec)*time.Second + Time(ns)
}

// DurationToCycles converts virtual time to cycles at the given clock
// frequency, rounding to the nearest cycle.
func DurationToCycles(d Time, hz uint64) uint64 {
	if d <= 0 || hz == 0 {
		return 0
	}
	ns := uint64(d)
	sec := ns / 1e9
	rem := ns % 1e9
	return sec*hz + (rem*hz+5e8)/1e9
}
