package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for e := 0; e < 1000; e++ {
			s.Schedule(time.Duration(e)*time.Nanosecond, func() {})
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "events/iter")
}

func BenchmarkNestedEventChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		depth := 0
		var next func()
		next = func() {
			depth++
			if depth < 1000 {
				s.Schedule(time.Nanosecond, next)
			}
		}
		s.Schedule(0, next)
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}
