package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for e := 0; e < 1000; e++ {
			s.Schedule(time.Duration(e)*time.Nanosecond, func() {})
		}
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "events/iter")
}

func BenchmarkNestedEventChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		depth := 0
		var next func()
		next = func() {
			depth++
			if depth < 1000 {
				s.Schedule(time.Nanosecond, next)
			}
		}
		s.Schedule(0, next)
		if err := s.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSteady is the scheduling microbenchmark shape the simbench
// experiment also uses: a large steady-state population of outstanding
// events, each firing and rescheduling itself with a NIC-like delay
// mixture (mostly µs-scale service events, some wire/RDMA delays, a
// trickle of far-band control timers) — the regime where heap O(log n)
// and per-event allocation hurt most.
func benchSteady(b *testing.B, kind KernelKind, pooled bool, outstanding int) {
	b.ReportAllocs()
	s := NewWithKernel(1, kind)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		var d Time
		switch fired % 10 {
		case 0:
			d = 10 * time.Millisecond // control plane: far band
		case 1, 2:
			d = Time(40+fired%20) * time.Microsecond // wire/RDMA
		default:
			d = Time(1000+fired%9000) * time.Nanosecond // NIC service
		}
		if pooled {
			s.After(d, tick)
		} else {
			s.Schedule(d, tick)
		}
	}
	for e := 0; e < outstanding; e++ {
		s.Schedule(Time(e)*time.Microsecond, tick)
	}
	b.ResetTimer()
	for fired < b.N {
		if !s.Step() {
			b.Fatal("queue drained")
		}
	}
}

func BenchmarkSteadyHeap(b *testing.B)         { benchSteady(b, KernelHeap, false, 32768) }
func BenchmarkSteadyLadder(b *testing.B)       { benchSteady(b, KernelLadder, false, 32768) }
func BenchmarkSteadyLadderPooled(b *testing.B) { benchSteady(b, KernelLadder, true, 32768) }
func BenchmarkSteadyHeapPooled(b *testing.B)   { benchSteady(b, KernelHeap, true, 32768) }
