package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"

	"lambdanic/internal/matchlambda"
)

func reqHeader(id uint64, wid uint32) matchlambda.WireHeader {
	return matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: wid, RequestID: id}
}

func TestFragmentSinglePacket(t *testing.T) {
	pkts, err := Fragment(reqHeader(1, 7), []byte("hello"), DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("packets = %d, want 1", len(pkts))
	}
	h, payload, err := matchlambda.DecodeWireHeader(pkts[0])
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 1 || h.Seq != 0 || h.PayloadLen != 5 || string(payload) != "hello" {
		t.Errorf("header %+v payload %q", h, payload)
	}
}

func TestFragmentEmptyPayload(t *testing.T) {
	pkts, err := Fragment(reqHeader(1, 7), nil, DefaultMTU)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("packets = %d, want 1 (empty message still needs a packet)", len(pkts))
	}
}

func TestFragmentInvalidMTU(t *testing.T) {
	if _, err := Fragment(reqHeader(1, 1), []byte("x"), 0); !errors.Is(err, ErrInvalidMTU) {
		t.Errorf("err = %v", err)
	}
}

func TestFragmentTooMany(t *testing.T) {
	if _, err := Fragment(reqHeader(1, 1), make([]byte, 70000), 1); !errors.Is(err, ErrTooManyFragments) {
		t.Errorf("err = %v", err)
	}
}

func TestReassembleInOrder(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 100) // 800 bytes
	pkts, err := Fragment(reqHeader(42, 9), payload, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 7 {
		t.Fatalf("packets = %d, want 7", len(pkts))
	}
	r := NewReassembler()
	var got *Message
	for _, pkt := range pkts {
		m, err := r.Add(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if m != nil {
			got = m
		}
	}
	if got == nil || !bytes.Equal(got.Payload, payload) {
		t.Fatal("reassembly failed")
	}
	if r.Pending() != 0 {
		t.Errorf("Pending = %d after completion", r.Pending())
	}
}

func TestReassembleOutOfOrderAndDuplicates(t *testing.T) {
	payload := []byte(strings.Repeat("0123456789", 50))
	pkts, err := Fragment(reqHeader(7, 1), payload, 64)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	// Deliver in reverse with every packet duplicated.
	var got *Message
	for i := len(pkts) - 1; i >= 0; i-- {
		for rep := 0; rep < 2; rep++ {
			m, err := r.Add(pkts[i])
			if err != nil {
				t.Fatal(err)
			}
			if m != nil {
				got = m
			}
		}
	}
	if got == nil || !bytes.Equal(got.Payload, payload) {
		t.Fatal("out-of-order reassembly failed")
	}
}

func TestReassemblerPendingLimit(t *testing.T) {
	r := NewReassembler()
	r.MaxPending = 2
	for id := uint64(1); id <= 3; id++ {
		pkts, err := Fragment(reqHeader(id, 1), make([]byte, 300), 128)
		if err != nil {
			t.Fatal(err)
		}
		_, err = r.Add(pkts[0])
		if id <= 2 && err != nil {
			t.Fatalf("id %d: %v", id, err)
		}
		if id == 3 && !errors.Is(err, ErrPendingLimit) {
			t.Fatalf("id 3 err = %v, want ErrPendingLimit", err)
		}
	}
	r.Drop(1)
	if r.Pending() != 1 {
		t.Errorf("Pending = %d after Drop", r.Pending())
	}
}

func TestReassembleFragmentRoundTripProperty(t *testing.T) {
	f := func(raw []byte, mtuSeed uint8) bool {
		mtu := int(mtuSeed)%512 + 16
		pkts, err := Fragment(reqHeader(99, 5), raw, mtu)
		if err != nil {
			return false
		}
		r := NewReassembler()
		var got *Message
		for _, p := range pkts {
			m, err := r.Add(p)
			if err != nil {
				return false
			}
			if m != nil {
				got = m
			}
		}
		return got != nil && bytes.Equal(got.Payload, raw)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// newPair builds a served endpoint and a client endpoint over a memory
// network.
func newPair(t *testing.T, net *MemNetwork, handler Handler, opts ...EndpointOption) (server, client *Endpoint) {
	t.Helper()
	sc, err := net.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := net.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	server = NewEndpoint(sc, handler, opts...)
	client = NewEndpoint(cc, nil, opts...)
	t.Cleanup(func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
		if err := server.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return server, client
}

func TestEndpointRoundTrip(t *testing.T) {
	n := NewMemNetwork(1)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		return append([]byte("echo:"), req.Payload...), nil
	})
	resp, err := client.Call(context.Background(), MemAddr("server"), 3, []byte("ping"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "echo:ping" {
		t.Errorf("resp = %q", resp)
	}
}

func TestEndpointHandlerError(t *testing.T) {
	n := NewMemNetwork(1)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := client.Call(context.Background(), MemAddr("server"), 3, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want remote boom", err)
	}
}

func TestEndpointLargePayloadFragments(t *testing.T) {
	n := NewMemNetwork(1)
	payload := bytes.Repeat([]byte{0xAB}, 100_000)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		sum := 0
		for _, b := range req.Payload {
			sum += int(b)
		}
		return []byte(fmt.Sprintf("%d:%d", len(req.Payload), sum%251)), nil
	})
	resp, err := client.Call(context.Background(), MemAddr("server"), 1, payload)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != fmt.Sprintf("%d:%d", 100_000, (100_000*0xAB)%251) {
		t.Errorf("resp = %q", resp)
	}
}

func TestEndpointRetransmitsThroughLoss(t *testing.T) {
	n := NewMemNetwork(7)
	n.LossRate = 0.4
	var calls atomic.Int32
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		calls.Add(1)
		return []byte("ok"), nil
	}, WithTimeout(20*time.Millisecond), WithRetries(30))
	for i := 0; i < 10; i++ {
		resp, err := client.Call(context.Background(), MemAddr("server"), 1, []byte("q"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != "ok" {
			t.Errorf("resp = %q", resp)
		}
	}
	if client.Retransmits() == 0 {
		t.Error("expected retransmissions under 40% loss")
	}
}

func TestEndpointDuplicateSuppression(t *testing.T) {
	n := NewMemNetwork(3)
	n.DupRate = 1.0 // every packet delivered twice
	var execs atomic.Int32
	server, client := newPair(t, n, func(req *Message) ([]byte, error) {
		execs.Add(1)
		return []byte("once"), nil
	}, WithTimeout(50*time.Millisecond), WithRetries(4))
	if _, err := client.Call(context.Background(), MemAddr("server"), 1, []byte("q")); err != nil {
		t.Fatal(err)
	}
	// Give the duplicate a moment to be processed.
	time.Sleep(20 * time.Millisecond)
	if got := execs.Load(); got != 1 {
		t.Errorf("handler executed %d times, want 1 (duplicates suppressed)", got)
	}
	if server.Duplicates() == 0 {
		t.Error("duplicate counter not incremented")
	}
}

func TestEndpointReordering(t *testing.T) {
	n := NewMemNetwork(11)
	n.ReorderRate = 0.5
	payload := bytes.Repeat([]byte("z"), 50_000)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		if !bytes.Equal(req.Payload, payload) {
			return nil, errors.New("corrupted")
		}
		return []byte("ok"), nil
	}, WithTimeout(100*time.Millisecond), WithRetries(10))
	resp, err := client.Call(context.Background(), MemAddr("server"), 1, payload)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "ok" {
		t.Errorf("resp = %q", resp)
	}
}

func TestEndpointTimeout(t *testing.T) {
	n := NewMemNetwork(1)
	n.LossRate = 1.0 // black hole
	_, client := newPair(t, n, nil, WithTimeout(5*time.Millisecond), WithRetries(2))
	_, err := client.Call(context.Background(), MemAddr("server"), 1, []byte("q"))
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestEndpointContextCancel(t *testing.T) {
	n := NewMemNetwork(1)
	n.LossRate = 1.0
	_, client := newPair(t, n, nil, WithTimeout(time.Second), WithRetries(5))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := client.Call(ctx, MemAddr("server"), 1, []byte("q"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

func TestEndpointConcurrentCalls(t *testing.T) {
	n := NewMemNetwork(5)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		return req.Payload, nil
	})
	const workers = 20
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			want := fmt.Sprintf("req-%d", i)
			resp, err := client.Call(context.Background(), MemAddr("server"), 1, []byte(want))
			if err == nil && string(resp) != want {
				err = fmt.Errorf("mismatch: %q != %q", resp, want)
			}
			errs <- err
		}(i)
	}
	for i := 0; i < workers; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestMemNetworkAddressInUse(t *testing.T) {
	n := NewMemNetwork(1)
	c, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := n.Listen("a"); err == nil {
		t.Error("duplicate Listen succeeded")
	}
}

func TestMemConnClosedWrites(t *testing.T) {
	n := NewMemNetwork(1)
	c, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteTo([]byte("x"), MemAddr("a")); err == nil {
		t.Error("WriteTo after Close succeeded")
	}
	if _, _, err := c.ReadFrom(make([]byte, 10)); err == nil {
		t.Error("ReadFrom after Close succeeded")
	}
}

func TestIndependentClientsWithCollidingRequestIDs(t *testing.T) {
	// Two separate client endpoints both number their first request 1.
	// The server must not serve client B a response cached for client A
	// (regression: the daemons' first requests collided).
	n := NewMemNetwork(23)
	sc, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	server := NewEndpoint(sc, func(req *Message) ([]byte, error) {
		return append([]byte("echo:"), req.Payload...), nil
	})
	defer server.Close()

	mk := func(name string) *Endpoint {
		conn, err := n.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		ep := NewEndpoint(conn, nil)
		t.Cleanup(func() { ep.Close() })
		return ep
	}
	a, b := mk("clientA"), mk("clientB")
	ctx := context.Background()

	respA, err := a.Call(ctx, MemAddr("server"), 1, []byte("from-A"))
	if err != nil {
		t.Fatal(err)
	}
	respB, err := b.Call(ctx, MemAddr("server"), 1, []byte("from-B"))
	if err != nil {
		t.Fatal(err)
	}
	if string(respA) != "echo:from-A" {
		t.Errorf("client A got %q", respA)
	}
	if string(respB) != "echo:from-B" {
		t.Errorf("client B got %q (cross-client cache hit)", respB)
	}
}

func TestReassemblerSourceIsolation(t *testing.T) {
	// Interleaved multi-packet messages from two sources with the same
	// request ID must reassemble independently.
	payloadA := bytes.Repeat([]byte("A"), 300)
	payloadB := bytes.Repeat([]byte("B"), 300)
	pktsA, err := Fragment(reqHeader(1, 7), payloadA, 128)
	if err != nil {
		t.Fatal(err)
	}
	pktsB, err := Fragment(reqHeader(1, 7), payloadB, 128)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReassembler()
	var gotA, gotB *Message
	for i := range pktsA {
		if m, err := r.AddFrom(pktsA[i], "srcA"); err != nil {
			t.Fatal(err)
		} else if m != nil {
			gotA = m
		}
		if m, err := r.AddFrom(pktsB[i], "srcB"); err != nil {
			t.Fatal(err)
		} else if m != nil {
			gotB = m
		}
	}
	if gotA == nil || !bytes.Equal(gotA.Payload, payloadA) {
		t.Error("source A corrupted")
	}
	if gotB == nil || !bytes.Equal(gotB.Payload, payloadB) {
		t.Error("source B corrupted")
	}
}

func TestSeenCacheStaysBounded(t *testing.T) {
	// Regression for the pre-shard seenFIFO, which trimmed its slice
	// with seenFIFO[1:] and kept the evicted keys' backing array (and
	// map entries) alive: after far more distinct requests than
	// seenCap, the dedup cache must hold at most seenCap responses.
	n := NewMemNetwork(1)
	server, client := newPair(t, n, func(req *Message) ([]byte, error) {
		return req.Payload, nil
	})
	ctx := context.Background()
	total := 2*seenCap + 100
	payload := []byte("x")
	for i := 0; i < total; i++ {
		if _, err := client.Call(ctx, MemAddr("server"), 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	cached := 0
	for i := range server.shards {
		sh := &server.shards[i]
		if got := sh.seenLen(); got > len(sh.ring) {
			t.Errorf("shard %d caches %d responses, ring holds %d", i, got, len(sh.ring))
		} else {
			cached += got
		}
	}
	if cached > seenCap {
		t.Errorf("seen cache holds %d entries after %d requests, cap is %d", cached, total, seenCap)
	}
	if cached == 0 {
		t.Error("seen cache empty; requests were not remembered")
	}
}
