//go:build race

package transport

// raceEnabled reports that the race detector is active; its
// instrumentation inflates allocation counts, so the alloc gates skip.
const raceEnabled = true
