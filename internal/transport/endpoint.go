package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lambdanic/internal/matchlambda"
	"lambdanic/internal/obs"
)

// Handler serves one reassembled request and returns the response
// payload. A non-nil error is conveyed to the caller with the error
// flag set.
type Handler func(req *Message) ([]byte, error)

// Endpoint is a weakly-consistent RPC endpoint over a packet network
// (§4.2.1 D3): at-least-once delivery with sender-side retransmission,
// receiver-side reordering and duplicate suppression, and no connection
// state — each RPC is independent, as serverless request-response pairs
// are (§3.1b).
type Endpoint struct {
	conn    net.PacketConn
	mtu     int
	timeout time.Duration
	retries int

	handler Handler

	mu      sync.Mutex
	pending map[uint64]*pendingCall
	reasm   *Reassembler
	// seen caches responses by (client, request ID) so retransmitted
	// requests are answered without re-executing the lambda. The client
	// address is part of the key because independent clients number
	// their requests independently.
	seen     map[string][]byte
	seenErr  map[string]bool
	seenFIFO []string
	// inflight marks requests currently executing so duplicates that
	// arrive before completion are dropped (the client retransmits if
	// the eventual response is lost).
	inflight map[string]bool

	nextID uint64
	wg     sync.WaitGroup
	closed chan struct{}

	// onRetransmit, when set, observes every retransmission (the
	// gateway's monitoring hook; transport stays metrics-agnostic).
	onRetransmit func()

	// Stats.
	retransmits atomic.Uint64
	duplicates  atomic.Uint64
}

// pendingCall tracks one in-flight RPC: its response channel, its
// destination (so AbortTo can drain calls to an evicted worker), and an
// abort signal.
type pendingCall struct {
	ch    chan *Message
	to    string
	abort chan struct{}
}

// EndpointOption configures an Endpoint.
type EndpointOption func(*Endpoint)

// WithMTU sets the fragment payload size.
func WithMTU(mtu int) EndpointOption { return func(e *Endpoint) { e.mtu = mtu } }

// WithTimeout sets the per-attempt response timeout.
func WithTimeout(d time.Duration) EndpointOption { return func(e *Endpoint) { e.timeout = d } }

// WithRetries sets how many times a request is retransmitted before the
// call fails.
func WithRetries(n int) EndpointOption { return func(e *Endpoint) { e.retries = n } }

// Endpoint errors.
var (
	ErrTimeout = errors.New("transport: request timed out after retries")
	ErrClosed  = errors.New("transport: endpoint closed")
	// ErrAborted reports a call cancelled by AbortTo — its destination
	// was evicted while the RPC was in flight.
	ErrAborted = errors.New("transport: call aborted (destination evicted)")
)

// seenCap bounds the duplicate-suppression cache.
const seenCap = 4096

// NewEndpoint wraps a packet connection. handler may be nil for a
// client-only endpoint. The endpoint owns the connection and closes it
// on Close.
func NewEndpoint(conn net.PacketConn, handler Handler, opts ...EndpointOption) *Endpoint {
	e := &Endpoint{
		conn:     conn,
		mtu:      DefaultMTU,
		timeout:  200 * time.Millisecond,
		retries:  4,
		handler:  handler,
		pending:  make(map[uint64]*pendingCall),
		reasm:    NewReassembler(),
		seen:     make(map[string][]byte),
		seenErr:  make(map[string]bool),
		inflight: make(map[string]bool),
		closed:   make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	e.wg.Add(1)
	go e.readLoop()
	return e
}

// Addr returns the endpoint's local address.
func (e *Endpoint) Addr() net.Addr { return e.conn.LocalAddr() }

// Retransmits returns the number of request retransmissions performed.
func (e *Endpoint) Retransmits() uint64 { return e.retransmits.Load() }

// Duplicates returns the number of duplicate requests suppressed.
func (e *Endpoint) Duplicates() uint64 { return e.duplicates.Load() }

// SetRetransmitHook installs a callback invoked on every request
// retransmission. Set before issuing calls.
func (e *Endpoint) SetRetransmitHook(fn func()) {
	e.mu.Lock()
	e.onRetransmit = fn
	e.mu.Unlock()
}

// AbortTo cancels every in-flight call addressed to the given
// destination, failing each with ErrAborted — the gateway's drain path
// when a worker is evicted, so callers fail over immediately instead of
// waiting out the retransmit schedule. Returns the number of calls
// aborted.
func (e *Endpoint) AbortTo(to net.Addr) int {
	key := to.String()
	aborted := 0
	e.mu.Lock()
	for _, pc := range e.pending {
		if pc.to != key {
			continue
		}
		select {
		case <-pc.abort:
		default:
			close(pc.abort)
			aborted++
		}
	}
	e.mu.Unlock()
	return aborted
}

// Close shuts the endpoint down and waits for its goroutines.
func (e *Endpoint) Close() error {
	select {
	case <-e.closed:
		return nil
	default:
	}
	close(e.closed)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

// Call performs one RPC: it stamps a fresh request ID, fragments the
// payload, and retransmits until a response arrives or retries are
// exhausted (the sender-tracked delivery of D3).
func (e *Endpoint) Call(ctx context.Context, to net.Addr, workloadID uint32, payload []byte) ([]byte, error) {
	return e.CallTraced(ctx, to, workloadID, payload, nil)
}

// CallTraced is Call with request-lifecycle tracing: every wire
// attempt (first transmission and each retransmit) is recorded as a
// transport span in tr, so timeout-driven tail latency is visible in
// the exported trace. A nil tr is the untraced fast path.
func (e *Endpoint) CallTraced(ctx context.Context, to net.Addr, workloadID uint32, payload []byte, tr *obs.Req) ([]byte, error) {
	id := atomic.AddUint64(&e.nextID, 1)
	h := matchlambda.WireHeader{
		Version:    matchlambda.Version1,
		WorkloadID: workloadID,
		RequestID:  id,
	}
	pkts, err := Fragment(h, payload, e.mtu)
	if err != nil {
		return nil, err
	}
	pc := &pendingCall{
		ch:    make(chan *Message, 1),
		to:    to.String(),
		abort: make(chan struct{}),
	}
	e.mu.Lock()
	e.pending[id] = pc
	hook := e.onRetransmit
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, id)
		e.mu.Unlock()
	}()

	for attempt := 0; attempt <= e.retries; attempt++ {
		if attempt > 0 {
			e.retransmits.Add(1)
			if hook != nil {
				hook()
			}
		}
		detail := "attempt"
		if attempt > 0 {
			detail = "retransmit"
		}
		attemptStart := tr.Now()
		for _, pkt := range pkts {
			if _, err := e.conn.WriteTo(pkt, to); err != nil {
				return nil, fmt.Errorf("transport: send: %w", err)
			}
		}
		timer := time.NewTimer(e.timeout)
		select {
		case msg := <-pc.ch:
			timer.Stop()
			tr.AddSpan(obs.StageTransport, "rpc", detail, attemptStart, tr.Now())
			if msg.Header.IsError() {
				return nil, fmt.Errorf("transport: remote error: %s", msg.Payload)
			}
			return msg.Payload, nil
		case <-timer.C:
			tr.AddSpan(obs.StageTransport, "rpc", detail+"-timeout", attemptStart, tr.Now())
			// fall through to retransmit
		case <-pc.abort:
			timer.Stop()
			tr.AddSpan(obs.StageTransport, "rpc", detail+"-aborted", attemptStart, tr.Now())
			return nil, fmt.Errorf("%w: request %d", ErrAborted, id)
		case <-ctx.Done():
			timer.Stop()
			tr.AddSpan(obs.StageTransport, "rpc", detail+"-cancelled", attemptStart, tr.Now())
			return nil, ctx.Err()
		case <-e.closed:
			timer.Stop()
			return nil, ErrClosed
		}
	}
	return nil, fmt.Errorf("%w: request %d", ErrTimeout, id)
}

func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	buf := make([]byte, 65536)
	for {
		n, from, err := e.conn.ReadFrom(buf)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
			}
			// Transient decode/socket errors on a datagram socket are
			// survivable; a closed socket is not.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		e.handlePacket(pkt, from)
	}
}

func (e *Endpoint) handlePacket(pkt []byte, from net.Addr) {
	e.mu.Lock()
	msg, err := e.reasm.AddFrom(pkt, from.String())
	e.mu.Unlock()
	if err != nil || msg == nil {
		return
	}
	if msg.Header.IsResponse() {
		e.mu.Lock()
		pc, ok := e.pending[msg.Header.RequestID]
		e.mu.Unlock()
		if ok {
			select {
			case pc.ch <- msg:
			default: // response already delivered (retransmit race)
			}
		}
		return
	}
	if e.handler == nil {
		return
	}
	// Duplicate request: replay the cached response without re-running
	// the lambda (at-least-once delivery made idempotent at the edge).
	// Duplicates of a still-executing request are dropped; the client
	// retransmits if the eventual response is lost.
	id := from.String() + "/" + strconv.FormatUint(msg.Header.RequestID, 16)
	e.mu.Lock()
	if resp, ok := e.seen[id]; ok {
		isErr := e.seenErr[id]
		e.mu.Unlock()
		e.duplicates.Add(1)
		e.sendResponse(msg.Header, resp, isErr, from)
		return
	}
	if e.inflight[id] {
		e.mu.Unlock()
		e.duplicates.Add(1)
		return
	}
	e.inflight[id] = true
	e.mu.Unlock()

	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		resp, herr := e.handler(msg)
		isErr := herr != nil
		if isErr {
			resp = []byte(herr.Error())
		}
		e.mu.Lock()
		delete(e.inflight, id)
		e.rememberLocked(id, resp, isErr)
		e.mu.Unlock()
		e.sendResponse(msg.Header, resp, isErr, from)
	}()
}

// rememberLocked caches a response for duplicate suppression; e.mu must
// be held.
func (e *Endpoint) rememberLocked(id string, resp []byte, isErr bool) {
	if len(e.seenFIFO) >= seenCap {
		old := e.seenFIFO[0]
		e.seenFIFO = e.seenFIFO[1:]
		delete(e.seen, old)
		delete(e.seenErr, old)
	}
	e.seen[id] = resp
	e.seenErr[id] = isErr
	e.seenFIFO = append(e.seenFIFO, id)
}

func (e *Endpoint) sendResponse(reqHeader matchlambda.WireHeader, payload []byte, isErr bool, to net.Addr) {
	h := matchlambda.WireHeader{
		Version:    matchlambda.Version1,
		Flags:      matchlambda.FlagResponse,
		WorkloadID: reqHeader.WorkloadID,
		RequestID:  reqHeader.RequestID,
	}
	if isErr {
		h.Flags |= matchlambda.FlagError
	}
	pkts, err := Fragment(h, payload, e.mtu)
	if err != nil {
		return
	}
	for _, pkt := range pkts {
		if _, err := e.conn.WriteTo(pkt, to); err != nil {
			return
		}
	}
}
