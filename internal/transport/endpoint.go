package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lambdanic/internal/matchlambda"
	"lambdanic/internal/obs"
)

// Handler serves one reassembled request and returns the response
// payload. A non-nil error is conveyed to the caller with the error
// flag set.
//
// The request's Payload may alias an internal packet buffer that is
// recycled after the handler's response has been cached and sent;
// handlers that retain the payload past their return must copy it.
type Handler func(req *Message) ([]byte, error)

// Endpoint is a weakly-consistent RPC endpoint over a packet network
// (§4.2.1 D3): at-least-once delivery with sender-side retransmission,
// receiver-side reordering and duplicate suppression, and no connection
// state — each RPC is independent, as serverless request-response pairs
// are (§3.1b).
//
// The data plane mirrors the NIC's parallelism (§4: many NPU cores, no
// per-request setup): endpoint state is lock-striped across shards
// keyed by request ID / peer hash, several reader goroutines drain the
// socket concurrently, requests execute on a bounded worker pool rather
// than a goroutine per request, and packet buffers, timers, and call
// records are pooled so the steady state allocates (almost) nothing.
type Endpoint struct {
	conn       net.PacketConn
	mtu        int
	timeout    time.Duration
	retries    int
	readers    int
	workers    int
	sendWindow int

	handler Handler
	shards  [numShards]shard
	jobs    chan *execJob

	nextID atomic.Uint64
	wg     sync.WaitGroup
	closed chan struct{}

	// onRetransmit, when set, observes every retransmission (the
	// gateway's monitoring hook; transport stays metrics-agnostic).
	onRetransmit atomic.Pointer[func()]

	// Stats.
	retransmits atomic.Uint64
	duplicates  atomic.Uint64
	drops       atomic.Uint64
}

// numShards stripes endpoint state; a power of two so shard selection
// is a mask.
const numShards = 16

const shardMask = numShards - 1

// shard is one lock stripe of endpoint state. Responses are sharded by
// request ID (the pending-call table); requests by a hash of (peer,
// request ID), so all fragments and duplicates of one request meet in
// the same stripe under one lock acquisition.
type shard struct {
	mu      sync.Mutex
	pending map[uint64]*pendingCall
	reasm   *Reassembler

	// Duplicate-suppression cache: a fixed ring of response entries
	// whose backing arrays are reused on eviction, indexed by a binary
	// (peer, request ID) key. Bounded by construction — no FIFO slice
	// to leak.
	seen     map[dedupKey]int
	ring     []seenEntry
	ringHead int
	ringLen  int

	// inflight marks requests currently executing so duplicates that
	// arrive before completion are dropped (the client retransmits if
	// the eventual response is lost).
	inflight map[dedupKey]struct{}
}

// dedupKey identifies one request for duplicate suppression. The peer
// is part of the key because independent clients number their requests
// independently.
type dedupKey struct {
	src string
	id  uint64
}

// seenEntry is one cached response in a shard's ring. resp's backing
// array survives eviction and is overwritten in place by the next
// occupant, so a warm cache allocates nothing.
type seenEntry struct {
	key   dedupKey
	resp  []byte
	isErr bool
}

// pendingCall tracks one in-flight RPC: its result channel, its
// destination (so AbortTo can drain calls to an evicted worker), and an
// abort signal. Non-aborted calls are pooled; all channel operations
// happen under the owning shard's lock so a recycled call can never
// receive a stale send.
type pendingCall struct {
	ch      chan callResult
	abort   chan struct{}
	aborted bool
	to      string
}

// callResult is a delivered response: the payload (owned by the
// receiver) and whether the remote flagged an error.
type callResult struct {
	payload []byte
	isErr   bool
}

// execJob carries one reassembled request to the worker pool. buf, when
// non-nil, is the pooled read buffer the message payload aliases; the
// worker recycles it after the response is cached and sent.
type execJob struct {
	msg   Message
	from  net.Addr
	key   dedupKey
	shard *shard
	buf   *[]byte
}

// pktBufSize fits the largest datagram a read can return.
const pktBufSize = 64 * 1024

var bufPool = sync.Pool{New: func() any {
	b := make([]byte, pktBufSize)
	return &b
}}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

var timerPool sync.Pool

// acquireTimer returns a timer set to fire after d. Timers are pooled;
// the Go 1.23+ timer semantics (unbuffered channel, Stop/Reset remove
// pending sends) make reuse without draining safe.
func acquireTimer(d time.Duration) *time.Timer {
	if t, ok := timerPool.Get().(*time.Timer); ok {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

var callPool = sync.Pool{New: func() any {
	return &pendingCall{
		ch:    make(chan callResult, 1),
		abort: make(chan struct{}),
	}
}}

var jobPool = sync.Pool{New: func() any { return new(execJob) }}

// EndpointOption configures an Endpoint.
type EndpointOption func(*Endpoint)

// WithMTU sets the fragment payload size.
func WithMTU(mtu int) EndpointOption { return func(e *Endpoint) { e.mtu = mtu } }

// WithTimeout sets the per-attempt response timeout.
func WithTimeout(d time.Duration) EndpointOption { return func(e *Endpoint) { e.timeout = d } }

// WithRetries sets how many times a request is retransmitted before the
// call fails.
func WithRetries(n int) EndpointOption { return func(e *Endpoint) { e.retries = n } }

// WithReaders sets how many goroutines drain the socket concurrently.
func WithReaders(n int) EndpointOption {
	return func(e *Endpoint) {
		if n > 0 {
			e.readers = n
		}
	}
}

// WithWorkers bounds the request-execution pool. Raise it for handlers
// that block (the gateway's proxied upstream calls); the default suits
// compute-bound lambdas.
func WithWorkers(n int) EndpointOption {
	return func(e *Endpoint) {
		if n > 0 {
			e.workers = n
		}
	}
}

// WithSendWindow bounds how many fragments of a multi-fragment message
// are put on the wire back-to-back before the sender yields — the
// transport's credit window. A small window paces bulk transfers so
// receivers (and, on real sockets, kernel buffers) drain between
// bursts; it bounds sender-side buffering regardless of message size.
func WithSendWindow(n int) EndpointOption {
	return func(e *Endpoint) {
		if n > 0 {
			e.sendWindow = n
		}
	}
}

// Endpoint errors.
var (
	ErrTimeout = errors.New("transport: request timed out after retries")
	ErrClosed  = errors.New("transport: endpoint closed")
	// ErrAborted reports a call cancelled by AbortTo — its destination
	// was evicted while the RPC was in flight.
	ErrAborted = errors.New("transport: call aborted (destination evicted)")
)

// seenCap bounds the duplicate-suppression cache across all shards.
const seenCap = 4096

// NewEndpoint wraps a packet connection. handler may be nil for a
// client-only endpoint. The endpoint owns the connection and closes it
// on Close.
func NewEndpoint(conn net.PacketConn, handler Handler, opts ...EndpointOption) *Endpoint {
	e := &Endpoint{
		conn:       conn,
		mtu:        DefaultMTU,
		timeout:    200 * time.Millisecond,
		retries:    4,
		readers:    defaultReaders(),
		workers:    64,
		sendWindow: defaultSendWindow,
		handler:    handler,
		closed:     make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	for i := range e.shards {
		sh := &e.shards[i]
		sh.pending = make(map[uint64]*pendingCall)
		sh.reasm = NewReassembler()
		if handler != nil {
			sh.seen = make(map[dedupKey]int)
			sh.ring = make([]seenEntry, seenCap/numShards)
			sh.inflight = make(map[dedupKey]struct{})
		}
	}
	if handler != nil {
		e.jobs = make(chan *execJob, 4*e.workers)
		for i := 0; i < e.workers; i++ {
			e.wg.Add(1)
			go e.workLoop()
		}
	}
	for i := 0; i < e.readers; i++ {
		e.wg.Add(1)
		go e.readLoop()
	}
	return e
}

func defaultReaders() int {
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shardByID picks the stripe for a response by its request ID.
func (e *Endpoint) shardByID(id uint64) *shard { return &e.shards[id&shardMask] }

// shardByKey picks the stripe for a request by (peer, request ID),
// mixing the peer with FNV-1a so distinct clients spread across
// stripes.
func (e *Endpoint) shardByKey(src string, id uint64) *shard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= 1099511628211
	}
	return &e.shards[(h^id)&shardMask]
}

// Addr returns the endpoint's local address.
func (e *Endpoint) Addr() net.Addr { return e.conn.LocalAddr() }

// Retransmits returns the number of request retransmissions performed.
func (e *Endpoint) Retransmits() uint64 { return e.retransmits.Load() }

// Duplicates returns the number of duplicate requests suppressed.
func (e *Endpoint) Duplicates() uint64 { return e.duplicates.Load() }

// Drops returns the number of requests shed because the worker pool's
// queue was full (the client retransmits under at-least-once delivery).
func (e *Endpoint) Drops() uint64 { return e.drops.Load() }

// SetRetransmitHook installs a callback invoked on every request
// retransmission. Set before issuing calls.
func (e *Endpoint) SetRetransmitHook(fn func()) {
	if fn == nil {
		e.onRetransmit.Store(nil)
		return
	}
	e.onRetransmit.Store(&fn)
}

// AbortTo cancels every in-flight call addressed to the given
// destination, failing each with ErrAborted — the gateway's drain path
// when a worker is evicted, so callers fail over immediately instead of
// waiting out the retransmit schedule. Returns the number of calls
// aborted.
func (e *Endpoint) AbortTo(to net.Addr) int {
	key := to.String()
	aborted := 0
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for _, pc := range sh.pending {
			if pc.to != key || pc.aborted {
				continue
			}
			pc.aborted = true
			close(pc.abort)
			aborted++
		}
		sh.mu.Unlock()
	}
	return aborted
}

// Close shuts the endpoint down and waits for its goroutines.
func (e *Endpoint) Close() error {
	select {
	case <-e.closed:
		return nil
	default:
	}
	close(e.closed)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}

// Call performs one RPC: it stamps a fresh request ID, fragments the
// payload, and retransmits until a response arrives or retries are
// exhausted (the sender-tracked delivery of D3).
func (e *Endpoint) Call(ctx context.Context, to net.Addr, workloadID uint32, payload []byte) ([]byte, error) {
	return e.CallTraced(ctx, to, workloadID, payload, nil)
}

// CallTraced is Call with request-lifecycle tracing: every wire
// attempt (first transmission and each retransmit) is recorded as a
// transport span in tr, so timeout-driven tail latency is visible in
// the exported trace. A nil tr is the untraced fast path.
func (e *Endpoint) CallTraced(ctx context.Context, to net.Addr, workloadID uint32, payload []byte, tr *obs.Req) ([]byte, error) {
	id := e.nextID.Add(1)
	h := matchlambda.WireHeader{
		Version:    matchlambda.Version1,
		WorkloadID: workloadID,
		RequestID:  id,
	}
	// Single-fragment requests (the common case for interactive
	// lambdas) are encoded once into a pooled buffer; larger payloads
	// stream fragment-by-fragment through a pooled buffer under the
	// send window on every attempt.
	var pkt []byte
	var pb *[]byte
	if len(payload) <= e.mtu && matchlambda.WireHeaderSize+len(payload) <= pktBufSize {
		h.Total = 1
		h.PayloadLen = uint32(len(payload))
		pb = getBuf()
		pkt = h.Encode((*pb)[:0])
		pkt = append(pkt, payload...)
	} else if err := checkFragments(len(payload), e.mtu); err != nil {
		return nil, err
	}

	pc := callPool.Get().(*pendingCall)
	pc.to = to.String()
	sh := e.shardByID(id)
	sh.mu.Lock()
	sh.pending[id] = pc
	sh.mu.Unlock()

	payloadOut, err := e.runCall(ctx, to, pc, h, payload, pkt, tr)

	// Tear down under the shard lock: once the entry is deleted and the
	// result channel drained, no sender can reach pc, so pooling it is
	// safe. Aborted calls are dropped (their abort channel is closed
	// for good).
	sh.mu.Lock()
	delete(sh.pending, id)
	select {
	case <-pc.ch:
	default:
	}
	aborted := pc.aborted
	sh.mu.Unlock()
	if !aborted {
		pc.to = ""
		callPool.Put(pc)
	}
	if pb != nil {
		putBuf(pb)
	}
	return payloadOut, err
}

// runCall drives the attempt/retransmit loop for one pending call. A
// non-nil pkt is the pre-encoded single-fragment request; otherwise
// each attempt streams the payload as windowed fragments.
func (e *Endpoint) runCall(ctx context.Context, to net.Addr, pc *pendingCall, h matchlambda.WireHeader, payload, pkt []byte, tr *obs.Req) ([]byte, error) {
	id := h.RequestID
	var tm *time.Timer
	defer func() {
		if tm != nil {
			releaseTimer(tm)
		}
	}()
	for attempt := 0; attempt <= e.retries; attempt++ {
		detail := "attempt"
		if attempt > 0 {
			e.retransmits.Add(1)
			if hook := e.onRetransmit.Load(); hook != nil {
				(*hook)()
			}
			detail = "retransmit"
		}
		attemptStart := tr.Now()
		if pkt != nil {
			if _, err := e.conn.WriteTo(pkt, to); err != nil {
				return nil, fmt.Errorf("transport: send: %w", err)
			}
		} else if err := e.streamFragments(h, payload, to); err != nil {
			return nil, err
		}
		if tm == nil {
			tm = acquireTimer(e.timeout)
		} else {
			tm.Reset(e.timeout)
		}
		select {
		case res := <-pc.ch:
			tr.AddSpan(obs.StageTransport, "rpc", detail, attemptStart, tr.Now())
			if res.isErr {
				return nil, fmt.Errorf("transport: remote error: %s", res.payload)
			}
			return res.payload, nil
		case <-tm.C:
			tr.AddSpan(obs.StageTransport, "rpc", detail+"-timeout", attemptStart, tr.Now())
			// fall through to retransmit
		case <-pc.abort:
			tr.AddSpan(obs.StageTransport, "rpc", detail+"-aborted", attemptStart, tr.Now())
			return nil, fmt.Errorf("%w: request %d", ErrAborted, id)
		case <-ctx.Done():
			tr.AddSpan(obs.StageTransport, "rpc", detail+"-cancelled", attemptStart, tr.Now())
			return nil, ctx.Err()
		case <-e.closed:
			return nil, ErrClosed
		}
	}
	return nil, fmt.Errorf("%w: request %d", ErrTimeout, id)
}

// readLoop drains the socket. Several run concurrently; each owns a
// pooled read buffer that is handed off to the worker pool when a
// single-fragment request's payload aliases it.
func (e *Endpoint) readLoop() {
	defer e.wg.Done()
	pb := getBuf()
	defer func() { putBuf(pb) }()
	for {
		n, from, err := e.conn.ReadFrom(*pb)
		if err != nil {
			select {
			case <-e.closed:
				return
			default:
			}
			// Transient decode/socket errors on a datagram socket are
			// survivable; a closed socket is not.
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		if e.handlePacket((*pb)[:n], from, pb) {
			pb = getBuf()
		}
	}
}

// handlePacket processes one wire packet. It reports whether ownership
// of the read buffer pb was transferred (to the worker pool).
func (e *Endpoint) handlePacket(pkt []byte, from net.Addr, pb *[]byte) bool {
	h, payload, err := matchlambda.DecodeWireHeader(pkt)
	if err != nil {
		return false
	}
	if h.IsResponse() {
		e.handleResponse(h, payload, from)
		return false
	}
	if e.handler == nil {
		return false
	}
	return e.handleRequest(h, payload, from, pb)
}

// handleResponse completes the pending call the response answers. The
// payload is copied before delivery (it escapes to the caller); the
// send happens under the shard lock so it can never land on a recycled
// call.
func (e *Endpoint) handleResponse(h matchlambda.WireHeader, payload []byte, from net.Addr) {
	sh := e.shardByID(h.RequestID)
	sh.mu.Lock()
	if h.Total > 1 {
		msg, err := sh.reasm.addDecoded(h, payload, from.String())
		if err != nil || msg == nil {
			sh.mu.Unlock()
			return
		}
		h = msg.Header
		payload = msg.Payload // owned by the reassembler's copy
		if pc, ok := sh.pending[h.RequestID]; ok {
			select {
			case pc.ch <- callResult{payload: payload, isErr: h.IsError()}:
			default: // response already delivered (retransmit race)
			}
		}
		sh.mu.Unlock()
		return
	}
	if pc, ok := sh.pending[h.RequestID]; ok {
		out := make([]byte, len(payload))
		copy(out, payload)
		select {
		case pc.ch <- callResult{payload: out, isErr: h.IsError()}:
		default:
		}
	}
	sh.mu.Unlock()
}

// handleRequest runs duplicate suppression and dispatches the request
// to the worker pool. It reports whether the read buffer was handed
// off.
func (e *Endpoint) handleRequest(h matchlambda.WireHeader, payload []byte, from net.Addr, pb *[]byte) bool {
	src := from.String()
	key := dedupKey{src: src, id: h.RequestID}
	sh := e.shardByKey(src, h.RequestID)

	var msg Message
	handoff := false
	sh.mu.Lock()
	if h.Total > 1 {
		m, err := sh.reasm.addDecoded(h, payload, src)
		if err != nil || m == nil {
			sh.mu.Unlock()
			return false
		}
		msg = *m
	} else {
		msg = Message{Header: h, Payload: payload}
		handoff = true
	}
	msg.Source = from
	// Duplicate request: replay the cached response without re-running
	// the lambda (at-least-once delivery made idempotent at the edge).
	if slot, ok := sh.seen[key]; ok {
		entry := &sh.ring[slot]
		rb := getBuf()
		resp := append((*rb)[:0], entry.resp...)
		isErr := entry.isErr
		sh.mu.Unlock()
		e.duplicates.Add(1)
		e.sendResponse(msg.Header, resp, isErr, from)
		putBuf(rb)
		return false
	}
	if _, busy := sh.inflight[key]; busy {
		sh.mu.Unlock()
		e.duplicates.Add(1)
		return false
	}
	sh.inflight[key] = struct{}{}
	sh.mu.Unlock()

	job := jobPool.Get().(*execJob)
	job.msg = msg
	job.from = from
	job.key = key
	job.shard = sh
	if handoff {
		job.buf = pb
	} else {
		job.buf = nil
	}
	select {
	case e.jobs <- job:
		return handoff
	default:
		// Queue full: shed the request; the client retransmits. The
		// inflight mark must be cleared or the retransmit would be
		// treated as a duplicate of a request that never ran.
		sh.mu.Lock()
		delete(sh.inflight, key)
		sh.mu.Unlock()
		job.buf = nil
		job.from = nil
		jobPool.Put(job)
		e.drops.Add(1)
		return false
	}
}

// workLoop executes requests from the bounded pool.
func (e *Endpoint) workLoop() {
	defer e.wg.Done()
	for {
		select {
		case job := <-e.jobs:
			e.execute(job)
		case <-e.closed:
			return
		}
	}
}

// execute runs the handler for one request, caches the response for
// duplicate suppression, sends it, and recycles the job's buffers.
func (e *Endpoint) execute(job *execJob) {
	resp, herr := e.handler(&job.msg)
	isErr := herr != nil
	if isErr {
		resp = []byte(herr.Error())
	}
	sh := job.shard
	sh.mu.Lock()
	delete(sh.inflight, job.key)
	sh.remember(job.key, resp, isErr)
	sh.mu.Unlock()
	e.sendResponse(job.msg.Header, resp, isErr, job.from)
	if job.buf != nil {
		putBuf(job.buf)
	}
	job.buf = nil
	job.from = nil
	job.msg = Message{}
	jobPool.Put(job)
}

// remember caches a response in the shard's ring for duplicate
// suppression; sh.mu must be held. When the ring is full the oldest
// entry is evicted and its backing array reused, so the cache is
// bounded by construction and a warm steady state allocates nothing.
func (sh *shard) remember(key dedupKey, resp []byte, isErr bool) {
	if len(sh.ring) == 0 {
		return
	}
	slot := sh.ringHead
	entry := &sh.ring[slot]
	if sh.ringLen == len(sh.ring) {
		delete(sh.seen, entry.key)
	} else {
		sh.ringLen++
	}
	entry.key = key
	entry.resp = append(entry.resp[:0], resp...)
	entry.isErr = isErr
	sh.seen[key] = slot
	sh.ringHead = (sh.ringHead + 1) % len(sh.ring)
}

// seenLen reports the shard's cached-response count; test hook.
func (sh *shard) seenLen() int {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.seen)
}

func (e *Endpoint) sendResponse(reqHeader matchlambda.WireHeader, payload []byte, isErr bool, to net.Addr) {
	h := matchlambda.WireHeader{
		Version:    matchlambda.Version1,
		Flags:      matchlambda.FlagResponse,
		WorkloadID: reqHeader.WorkloadID,
		RequestID:  reqHeader.RequestID,
	}
	if isErr {
		h.Flags |= matchlambda.FlagError
	}
	if len(payload) <= e.mtu && matchlambda.WireHeaderSize+len(payload) <= pktBufSize {
		h.Total = 1
		h.PayloadLen = uint32(len(payload))
		pb := getBuf()
		pkt := h.Encode((*pb)[:0])
		pkt = append(pkt, payload...)
		e.conn.WriteTo(pkt, to)
		putBuf(pb)
		return
	}
	e.streamFragments(h, payload, to)
}

// defaultSendWindow is the fragments-per-burst credit window for
// multi-fragment messages.
const defaultSendWindow = 32

// checkFragments validates that a payload fits the fragment count the
// wire header can express under the given MTU.
func checkFragments(payloadLen, mtu int) error {
	if mtu <= 0 {
		return ErrInvalidMTU
	}
	if n := (payloadLen + mtu - 1) / mtu; n > MaxFragments {
		return fmt.Errorf("%w: %d", ErrTooManyFragments, n)
	}
	return nil
}

// streamFragments sends a multi-fragment message by encoding each
// fragment into one pooled buffer reused across the whole message.
// WriteTo copies the packet (UDP's sendto does, and so does the
// in-memory network), so a single buffer streams arbitrarily large
// payloads with zero per-fragment allocation — replacing the old path
// that materialized every packet up front. Fragments go out in bursts
// of at most the send window, with a scheduler yield between bursts so
// receivers drain in pipeline with the sender (the transport-level
// analogue of the RDMA engine's bounded outstanding-request window).
func (e *Endpoint) streamFragments(h matchlambda.WireHeader, payload []byte, to net.Addr) error {
	if err := checkFragments(len(payload), e.mtu); err != nil {
		return err
	}
	n := (len(payload) + e.mtu - 1) / e.mtu
	if n == 0 {
		n = 1
	}
	h.Total = uint16(n)
	h.PayloadLen = uint32(len(payload))
	pb := getBuf()
	defer putBuf(pb)
	window := e.sendWindow
	if window <= 0 {
		window = defaultSendWindow
	}
	for i := 0; i < n; i++ {
		h.Seq = uint16(i)
		lo := i * e.mtu
		hi := lo + e.mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		pkt := h.Encode((*pb)[:0])
		pkt = append(pkt, payload[lo:hi]...)
		if _, err := e.conn.WriteTo(pkt, to); err != nil {
			return fmt.Errorf("transport: send: %w", err)
		}
		if (i+1)%window == 0 && i+1 < n {
			runtime.Gosched()
		}
	}
	return nil
}
