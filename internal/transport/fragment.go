// Package transport implements λ-NIC's network transport (paper §4.2.1
// D3): small request-response RPCs with a weakly-consistent delivery
// semantic instead of TCP. The sender (gateway or external service)
// tracks outgoing RPCs and retransmits on timeout or loss; the receiver
// reorders fragments of multi-packet RPCs. Packets carry the λ-NIC wire
// header from internal/matchlambda.
//
// The package provides both the packet-level mechanics (fragmentation,
// reordering reassembly, duplicate suppression) and a runnable RPC
// endpoint over any net.PacketConn — real UDP for the daemons in cmd/,
// or the in-memory pipe (with deterministic loss/reorder injection) for
// tests.
package transport

import (
	"errors"
	"fmt"
	"net"

	"lambdanic/internal/matchlambda"
)

// DefaultMTU is the maximum payload bytes carried per fragment,
// leaving room for the wire header inside a 1500-byte Ethernet MTU.
const DefaultMTU = 1400

// MaxFragments is the most fragments one message can carry — the wire
// header's Total/Seq fields are uint16.
const MaxFragments = 0xFFFF

// Message is one logical RPC (request or response) after reassembly.
// Source is the sender's network address when known (endpoints fill it
// in on the request path); handlers use it as the flow identity for
// flow-affine dispatch and warm-state accounting. It may be nil for
// messages assembled outside an endpoint (e.g. direct Reassembler use).
type Message struct {
	Header  matchlambda.WireHeader
	Payload []byte
	Source  net.Addr
}

// Fragmentation errors.
var (
	ErrTooManyFragments = errors.New("transport: payload needs too many fragments")
	ErrInvalidMTU       = errors.New("transport: mtu must be positive")
)

// Fragment splits a logical message into wire packets of at most mtu
// payload bytes each. Single-packet messages (the common case for
// interactive lambdas, §4.2.1) produce exactly one packet.
func Fragment(h matchlambda.WireHeader, payload []byte, mtu int) ([][]byte, error) {
	if mtu <= 0 {
		return nil, ErrInvalidMTU
	}
	n := (len(payload) + mtu - 1) / mtu
	if n == 0 {
		n = 1
	}
	if n > MaxFragments {
		return nil, fmt.Errorf("%w: %d", ErrTooManyFragments, n)
	}
	h.Total = uint16(n)
	h.PayloadLen = uint32(len(payload))
	pkts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		h.Seq = uint16(i)
		lo := i * mtu
		hi := lo + mtu
		if hi > len(payload) {
			hi = len(payload)
		}
		pkt := h.Encode(make([]byte, 0, matchlambda.WireHeaderSize+hi-lo))
		pkt = append(pkt, payload[lo:hi]...)
		pkts = append(pkts, pkt)
	}
	return pkts, nil
}

// Reassembler reorders and reassembles fragments into messages, keyed
// by (source, request ID) — the NIC-side packet reordering of §4.2.1
// D3. Keying on the source prevents request-ID collisions across
// independent clients from corrupting each other's messages. It also
// suppresses duplicate fragments (retransmissions under at-least-once
// delivery).
type Reassembler struct {
	partial map[messageKey]*partialMessage
	// MaxPending bounds concurrent partial messages (DoS guard,
	// §3.1c); zero means unlimited.
	MaxPending int
}

// messageKey identifies one in-flight message.
type messageKey struct {
	src string
	id  uint64
}

type partialMessage struct {
	header    matchlambda.WireHeader
	fragments [][]byte
	have      int
}

// Reassembly errors.
var (
	ErrInconsistentFragment = errors.New("transport: fragment inconsistent with message")
	ErrPendingLimit         = errors.New("transport: too many partial messages")
)

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{partial: make(map[messageKey]*partialMessage)}
}

// Add processes one wire packet from an anonymous source; use AddFrom
// when packets from multiple senders can interleave.
func (r *Reassembler) Add(pkt []byte) (*Message, error) {
	return r.AddFrom(pkt, "")
}

// AddFrom processes one wire packet from the named source. When the
// packet completes a message it returns the assembled message;
// otherwise it returns nil. Duplicate fragments are ignored.
func (r *Reassembler) AddFrom(pkt []byte, src string) (*Message, error) {
	h, payload, err := matchlambda.DecodeWireHeader(pkt)
	if err != nil {
		return nil, err
	}
	return r.addDecoded(h, payload, src)
}

// addDecoded is AddFrom after header decoding — the endpoint's sharded
// packet path decodes once to pick a lock stripe and hands the header
// straight in. The returned message's payload is always a copy, never a
// view into pkt.
func (r *Reassembler) addDecoded(h matchlambda.WireHeader, payload []byte, src string) (*Message, error) {
	if h.Total <= 1 {
		// Fast path: single-packet RPC needs no reassembly state.
		return &Message{Header: h, Payload: append([]byte(nil), payload...)}, nil
	}
	key := messageKey{src: src, id: h.RequestID}
	pm, ok := r.partial[key]
	if !ok {
		if r.MaxPending > 0 && len(r.partial) >= r.MaxPending {
			return nil, ErrPendingLimit
		}
		pm = &partialMessage{header: h, fragments: make([][]byte, h.Total)}
		r.partial[key] = pm
	}
	if h.Total != pm.header.Total || h.WorkloadID != pm.header.WorkloadID {
		return nil, fmt.Errorf("%w: request %d", ErrInconsistentFragment, h.RequestID)
	}
	if int(h.Seq) >= len(pm.fragments) {
		return nil, fmt.Errorf("%w: seq %d of %d", ErrInconsistentFragment, h.Seq, h.Total)
	}
	if pm.fragments[h.Seq] != nil {
		return nil, nil // duplicate
	}
	pm.fragments[h.Seq] = append([]byte(nil), payload...)
	pm.have++
	if pm.have < int(pm.header.Total) {
		return nil, nil
	}
	delete(r.partial, key)
	full := make([]byte, 0, pm.header.PayloadLen)
	for _, f := range pm.fragments {
		full = append(full, f...)
	}
	msg := &Message{Header: pm.header, Payload: full}
	msg.Header.Seq = 0
	return msg, nil
}

// Pending returns the number of incomplete messages held.
func (r *Reassembler) Pending() int { return len(r.partial) }

// Drop discards partial state for an anonymous-source request (sender
// gave up).
func (r *Reassembler) Drop(requestID uint64) {
	delete(r.partial, messageKey{id: requestID})
}
