package transport

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"lambdanic/internal/matchlambda"
)

// TestFragmentCountBoundary pins the fragment-count limit exactly at
// the wire header's uint16 capacity: MaxFragments fragments succeed,
// one more fails with ErrTooManyFragments.
func TestFragmentCountBoundary(t *testing.T) {
	h := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 1, RequestID: 7}

	pkts, err := Fragment(h, make([]byte, MaxFragments), 1)
	if err != nil {
		t.Fatalf("Fragment at exactly MaxFragments: %v", err)
	}
	if len(pkts) != MaxFragments {
		t.Fatalf("fragments = %d, want %d", len(pkts), MaxFragments)
	}

	if _, err := Fragment(h, make([]byte, MaxFragments+1), 1); !errors.Is(err, ErrTooManyFragments) {
		t.Errorf("Fragment one past the limit: err = %v, want ErrTooManyFragments", err)
	}
}

// TestCallRejectsOversizedPayload checks the streaming send path
// refuses a payload that cannot be expressed in MaxFragments fragments
// before anything hits the wire.
func TestCallRejectsOversizedPayload(t *testing.T) {
	n := NewMemNetwork(1)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) { return nil, nil },
		WithMTU(1))
	_, err := client.Call(context.Background(), MemAddr("server"), 1, make([]byte, MaxFragments+1))
	if !errors.Is(err, ErrTooManyFragments) {
		t.Errorf("err = %v, want ErrTooManyFragments", err)
	}
}

// TestMaxFragmentReassemblyReorderDup reassembles a message of exactly
// MaxFragments fragments delivered in a deterministic shuffle with
// injected duplicates — the worst case the uint16 sequence space
// allows.
func TestMaxFragmentReassemblyReorderDup(t *testing.T) {
	if testing.Short() {
		t.Skip("65535-fragment reassembly is slow under -short")
	}
	payload := make([]byte, MaxFragments)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	h := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 2, RequestID: 42}
	pkts, err := Fragment(h, payload, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	rng.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	// Duplicate every 97th fragment immediately after itself.
	dup := make([][]byte, 0, len(pkts)+len(pkts)/97+1)
	for i, p := range pkts {
		dup = append(dup, p)
		if i%97 == 0 {
			dup = append(dup, p)
		}
	}
	r := NewReassembler()
	var got *Message
	for _, p := range dup {
		m, err := r.AddFrom(p, "peer")
		if err != nil {
			t.Fatalf("AddFrom: %v", err)
		}
		if m != nil {
			if got != nil {
				t.Fatal("message assembled twice")
			}
			got = m
		}
	}
	if got == nil {
		t.Fatal("message never assembled")
	}
	if !bytes.Equal(got.Payload, payload) {
		t.Error("reassembled payload differs from original")
	}
	if r.Pending() != 0 {
		t.Errorf("pending = %d after completion, want 0", r.Pending())
	}
}

// TestStreamRoundTripAllocs gates the allocation budget of the
// windowed streaming path: a multi-fragment request and response must
// not regress to the old per-fragment packet materialization (which
// allocated one slice per fragment per attempt on each side).
func TestStreamRoundTripAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state warmup")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates alloc counts")
	}
	n := NewMemNetwork(1)
	payload := bytes.Repeat([]byte{0x7E}, 6*DefaultMTU) // 6 request fragments
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		return req.Payload, nil // 6 response fragments back
	})
	ctx := context.Background()
	call := func() {
		resp, err := client.Call(ctx, MemAddr("server"), 1, payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp) != len(payload) {
			t.Fatalf("resp = %d bytes, want %d", len(resp), len(payload))
		}
	}
	for i := 0; i < 100; i++ {
		call()
	}
	avg := testing.AllocsPerRun(300, call)
	// Reassembly inherently copies each fragment plus the assembled
	// payload on both sides (~26 for 2×6 fragments); the wire path
	// itself must stay at zero. The old Fragment path added ~12 packet
	// slices on top.
	if avg > 32 {
		t.Errorf("streamed round trip allocates %.1f allocs/op, want ≤ 32", avg)
	}
}

// TestStreamSmallWindow exercises burst pacing: a one-fragment window
// must still deliver a large message intact.
func TestStreamSmallWindow(t *testing.T) {
	n := NewMemNetwork(17)
	payload := bytes.Repeat([]byte{0xC3}, 20*DefaultMTU)
	_, client := newPair(t, n, func(req *Message) ([]byte, error) {
		if !bytes.Equal(req.Payload, payload) {
			return nil, errors.New("payload corrupted")
		}
		return []byte("ok"), nil
	}, WithSendWindow(1))
	resp, err := client.Call(context.Background(), MemAddr("server"), 1, payload)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "ok" {
		t.Errorf("resp = %q", resp)
	}
}
