package transport

import (
	"testing"
	"testing/quick"

	"lambdanic/internal/matchlambda"
)

// Robustness properties: hostile or corrupted packets must never panic
// the reassembler or header decoder — the λ-NIC framework faces the
// open network (§3.1c: "robust against security attacks ... from
// outside actors").

func TestDecodeWireHeaderNeverPanicsProperty(t *testing.T) {
	f := func(raw []byte) bool {
		_, _, _ = matchlambda.DecodeWireHeader(raw)
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestReassemblerSurvivesGarbageProperty(t *testing.T) {
	f := func(packets [][]byte) bool {
		r := NewReassembler()
		r.MaxPending = 16
		for _, p := range packets {
			_, _ = r.Add(p) // errors fine, panics are not
		}
		return r.Pending() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReassemblerSurvivesForgedHeaders(t *testing.T) {
	// Valid magic/version but adversarial field combinations.
	f := func(wid uint32, rid uint64, seq, total uint16, plen uint32, payload []byte) bool {
		h := matchlambda.WireHeader{
			Version: matchlambda.Version1, WorkloadID: wid, RequestID: rid,
			Seq: seq, Total: total, PayloadLen: plen,
		}
		pkt := h.Encode(nil)
		pkt = append(pkt, payload...)
		r := NewReassembler()
		msg, err := r.Add(pkt)
		if err != nil {
			return true
		}
		if total <= 1 {
			// Single-packet fast path must surface the payload as-is.
			return msg != nil && len(msg.Payload) == len(payload)
		}
		// Multi-packet first fragment: incomplete.
		return msg == nil && r.Pending() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInconsistentFragmentsRejected(t *testing.T) {
	// Two fragments of the same request claiming different totals: the
	// second must be rejected, not corrupt the first's state.
	h1 := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 1, RequestID: 5, Seq: 0, Total: 3}
	h2 := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 1, RequestID: 5, Seq: 1, Total: 7}
	r := NewReassembler()
	if _, err := r.Add(append(h1.Encode(nil), 'a')); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add(append(h2.Encode(nil), 'b')); err == nil {
		t.Error("inconsistent total accepted")
	}
	// Different workload ID on the same request ID is also rejected.
	h3 := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 9, RequestID: 5, Seq: 2, Total: 3}
	if _, err := r.Add(append(h3.Encode(nil), 'c')); err == nil {
		t.Error("cross-workload fragment accepted")
	}
}
