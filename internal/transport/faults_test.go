package transport

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lambdanic/internal/faults"
)

// newFaultedPair is newPair with both endpoints' connections wrapped by
// a fault injector, so every packet on the client↔server link is judged
// by the given rules.
func newFaultedPair(t *testing.T, net *MemNetwork, inj *faults.Injector,
	handler Handler, opts ...EndpointOption) (server, client *Endpoint) {
	t.Helper()
	sc, err := net.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	cc, err := net.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	server = NewEndpoint(inj.WrapConn(sc, "server"), handler, opts...)
	client = NewEndpoint(inj.WrapConn(cc, "client"), nil, opts...)
	t.Cleanup(func() {
		if err := client.Close(); err != nil {
			t.Errorf("client close: %v", err)
		}
		if err := server.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return server, client
}

// TestReassemblyUnderInjectedReorderDup drives multi-fragment RPCs
// through injector-level reordering and duplication (rather than the
// MemNetwork's built-in knobs) and checks the reassembler still yields
// intact payloads with exactly-once handler execution.
func TestReassemblyUnderInjectedReorderDup(t *testing.T) {
	n := NewMemNetwork(5)
	inj := faults.NewInjector(5,
		faults.Rule{From: "client", Reorder: 0.5, Dup: 0.3},
		faults.Rule{From: "server", Reorder: 0.3, Dup: 0.3},
	)
	payload := bytes.Repeat([]byte("frag"), 20_000) // many fragments each way
	var execs atomic.Int32
	server, client := newFaultedPair(t, n, inj, func(req *Message) ([]byte, error) {
		execs.Add(1)
		if !bytes.Equal(req.Payload, payload) {
			return nil, errors.New("corrupted payload")
		}
		return req.Payload, nil
	}, WithTimeout(200*time.Millisecond), WithRetries(10))

	const calls = 5
	for i := 0; i < calls; i++ {
		resp, err := client.Call(context.Background(), MemAddr("server"), 1, payload)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp, payload) {
			t.Fatalf("call %d: response corrupted (%d bytes)", i, len(resp))
		}
	}
	// Duplicated request fragments must not re-execute the handler; give
	// straggler duplicates a moment to drain first.
	time.Sleep(20 * time.Millisecond)
	if got := execs.Load(); got != calls {
		t.Errorf("handler executed %d times, want %d", got, calls)
	}
	_ = server

	// Verdicts are a pure function of (seed, link, index), so a twin
	// injector replays the fate of the packets the client just sent and
	// proves the run really was exposed to duplication and reordering.
	replay := faults.NewInjector(5,
		faults.Rule{From: "client", Reorder: 0.5, Dup: 0.3},
		faults.Rule{From: "server", Reorder: 0.3, Dup: 0.3},
	)
	dups, reorders := 0, 0
	for i := 0; i < 100; i++ {
		v := replay.Judge("client", "server")
		if v.Dup {
			dups++
		}
		if v.Reorder {
			reorders++
		}
	}
	if dups == 0 || reorders == 0 {
		t.Errorf("replayed verdicts saw %d dups, %d reorders — rules not exercised", dups, reorders)
	}
}

// TestCallThroughInjectedPartitionFails confirms the injector's
// partition rule actually severs the link: with the client→server
// direction cut, calls exhaust their retries and time out.
func TestCallThroughInjectedPartitionFails(t *testing.T) {
	n := NewMemNetwork(9)
	inj := faults.NewInjector(9, faults.Rule{From: "client", To: "server", Partition: true})
	_, client := newFaultedPair(t, n, inj, func(req *Message) ([]byte, error) {
		return []byte("unreachable"), nil
	}, WithTimeout(5*time.Millisecond), WithRetries(2))
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := client.Call(ctx, MemAddr("server"), 1, []byte("q")); err == nil {
		t.Error("call succeeded across a partition")
	}
}
