package transport

import (
	"context"
	"testing"

	"lambdanic/internal/matchlambda"
)

func BenchmarkFragmentReassemble64K(b *testing.B) {
	payload := make([]byte, 64*1024)
	h := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 1}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RequestID = uint64(i + 1)
		pkts, err := Fragment(h, payload, DefaultMTU)
		if err != nil {
			b.Fatal(err)
		}
		r := NewReassembler()
		var got *Message
		for _, p := range pkts {
			m, err := r.Add(p)
			if err != nil {
				b.Fatal(err)
			}
			if m != nil {
				got = m
			}
		}
		if got == nil {
			b.Fatal("no message")
		}
	}
}

func BenchmarkEndpointRoundTrip(b *testing.B) {
	n := NewMemNetwork(1)
	sc, err := n.Listen("server")
	if err != nil {
		b.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		b.Fatal(err)
	}
	server := NewEndpoint(sc, func(req *Message) ([]byte, error) { return req.Payload, nil })
	client := NewEndpoint(cc, nil)
	defer server.Close()
	defer client.Close()
	payload := []byte("benchmark-payload")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, MemAddr("server"), 1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireHeaderEncodeDecode(b *testing.B) {
	h := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 7, RequestID: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := h.Encode(nil)
		if _, _, err := matchlambda.DecodeWireHeader(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
