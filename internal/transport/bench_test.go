package transport

import (
	"context"
	"net"
	"sync"
	"testing"

	"lambdanic/internal/matchlambda"
)

// newBenchPair builds a memnet client/server endpoint pair with an echo
// handler; the cleanup closes both.
func newBenchPair(tb testing.TB) (client *Endpoint, server net.Addr) {
	tb.Helper()
	n := NewMemNetwork(1)
	sc, err := n.Listen("server")
	if err != nil {
		tb.Fatal(err)
	}
	cc, err := n.Listen("client")
	if err != nil {
		tb.Fatal(err)
	}
	srv := NewEndpoint(sc, func(req *Message) ([]byte, error) { return req.Payload, nil })
	cli := NewEndpoint(cc, nil)
	tb.Cleanup(func() {
		cli.Close()
		srv.Close()
	})
	return cli, srv.Addr()
}

func BenchmarkFragmentReassemble64K(b *testing.B) {
	payload := make([]byte, 64*1024)
	h := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 1}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RequestID = uint64(i + 1)
		pkts, err := Fragment(h, payload, DefaultMTU)
		if err != nil {
			b.Fatal(err)
		}
		r := NewReassembler()
		var got *Message
		for _, p := range pkts {
			m, err := r.Add(p)
			if err != nil {
				b.Fatal(err)
			}
			if m != nil {
				got = m
			}
		}
		if got == nil {
			b.Fatal("no message")
		}
	}
}

func BenchmarkEndpointRoundTrip(b *testing.B) {
	client, srv := newBenchPair(b)
	payload := []byte("benchmark-payload")
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(ctx, srv, 1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndpointRoundTripParallel is the sharding acceptance target:
// ≥4 concurrent callers through one client endpoint. Run with -cpu 4 to
// match the issue's measurement.
func BenchmarkEndpointRoundTripParallel(b *testing.B) {
	client, srv := newBenchPair(b)
	payload := []byte("benchmark-payload")
	b.ReportAllocs()
	b.SetParallelism(1)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := client.Call(ctx, srv, 1, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkWireHeaderEncodeDecode(b *testing.B) {
	h := matchlambda.WireHeader{Version: matchlambda.Version1, WorkloadID: 7, RequestID: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pkt := h.Encode(nil)
		if _, _, err := matchlambda.DecodeWireHeader(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRoundTripAllocs gates the steady-state allocation budget of a
// memnet round trip. The pooled data plane measures 1 alloc/op (the
// response payload copy handed to the caller); the bound leaves slack
// for runtime noise while still catching a regression to the pre-shard
// plane's ~26.
func TestRoundTripAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state warmup")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates alloc counts")
	}
	client, srv := newBenchPair(t)
	payload := []byte("benchmark-payload")
	ctx := context.Background()
	// Warm the pools (buffers, timers, pending calls) out of the measured
	// region.
	for i := 0; i < 200; i++ {
		if _, err := client.Call(ctx, srv, 1, payload); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(500, func() {
		if _, err := client.Call(ctx, srv, 1, payload); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 6 {
		t.Errorf("round trip allocates %.1f allocs/op, want ≤ 6", avg)
	}
}

// TestRoundTripAllocsConcurrent checks the budget holds with concurrent
// callers: shards and pools must not fall back to per-call allocation
// under contention. The per-op bound is looser because AllocsPerRun
// only counts the measuring goroutine's view of total allocations
// divided by its runs, while 4 goroutines' worth of response copies
// land in the window.
func TestRoundTripAllocsConcurrent(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state warmup")
	}
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates alloc counts")
	}
	client, srv := newBenchPair(t)
	payload := []byte("benchmark-payload")
	ctx := context.Background()
	const callers = 4
	run := func(per int) {
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := client.Call(ctx, srv, 1, payload); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	run(100) // warm pools across all shards
	avg := testing.AllocsPerRun(50, func() { run(10) })
	// 40 calls per run; budget ≤ 6 allocs per call plus goroutine setup.
	if avg > callers*10*6+callers*4 {
		t.Errorf("concurrent round trips allocate %.1f allocs per %d-call run", avg, callers*10)
	}
}
