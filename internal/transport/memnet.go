package transport

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// This file provides an in-memory packet network implementing
// net.PacketConn, used by tests and examples to run the full λ-NIC
// control plane without real sockets. The network injects configurable
// packet loss, duplication, and reordering so the weakly-consistent
// delivery path (§4.2.1 D3) can be exercised deterministically.

// MemNetwork is a hub connecting named in-memory packet endpoints.
type MemNetwork struct {
	mu    sync.Mutex
	nodes map[string]*MemConn
	rng   *rand.Rand

	// LossRate is the probability a packet is dropped in transit.
	LossRate float64
	// DupRate is the probability a packet is delivered twice.
	DupRate float64
	// ReorderRate is the probability a packet is delayed behind the
	// next one.
	ReorderRate float64
}

// NewMemNetwork returns a hub with deterministic fault injection.
func NewMemNetwork(seed int64) *MemNetwork {
	return &MemNetwork{
		nodes: make(map[string]*MemConn),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// MemAddr is a node name on a MemNetwork.
type MemAddr string

// Network returns "mem".
func (a MemAddr) Network() string { return "mem" }

// String returns the node name.
func (a MemAddr) String() string { return string(a) }

type memPacket struct {
	data []byte
	pb   *[]byte // pooled backing buffer; nil if not pooled
	// from is the sender's address, boxed once at Listen time so the
	// read path never re-boxes the MemAddr string into an interface.
	from net.Addr
}

// recycle returns the packet's backing buffer to the pool.
func (p *memPacket) recycle() {
	if p.pb != nil {
		memBufPool.Put(p.pb)
		p.pb = nil
	}
}

// clone copies the packet into a fresh pooled buffer.
func (p memPacket) clone() memPacket {
	pb := memBufPool.Get().(*[]byte)
	*pb = append((*pb)[:0], p.data...)
	return memPacket{data: *pb, pb: pb, from: p.from}
}

// memBufPool recycles in-flight packet buffers: WriteTo copies into a
// pooled buffer and ReadFrom returns it once the payload is copied out,
// so a steady-state round trip allocates nothing in the network itself.
var memBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// MemConn is one endpoint on a MemNetwork. It implements
// net.PacketConn.
type MemConn struct {
	net    *MemNetwork
	addr   MemAddr
	boxed  net.Addr // addr pre-boxed as an interface (see memPacket.from)
	inbox  chan memPacket
	closed chan struct{}
	once   sync.Once

	// delayed holds one packet being reordered behind the next.
	mu         sync.Mutex
	delayed    memPacket
	hasDelayed bool
}

var _ net.PacketConn = (*MemConn)(nil)

// Listen attaches a new endpoint with the given name.
func (n *MemNetwork) Listen(name string) (*MemConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[name]; ok {
		return nil, errors.New("transport: memnet address in use: " + name)
	}
	c := &MemConn{
		net:    n,
		addr:   MemAddr(name),
		boxed:  MemAddr(name),
		inbox:  make(chan memPacket, 1024),
		closed: make(chan struct{}),
	}
	n.nodes[name] = c
	return c, nil
}

// deliver routes a packet to its destination applying fault injection.
// It takes ownership of pkt's pooled buffer.
func (n *MemNetwork) deliver(to string, pkt memPacket) {
	n.mu.Lock()
	dst, ok := n.nodes[to]
	if !ok {
		n.mu.Unlock()
		pkt.recycle()
		return
	}
	drop := n.rng.Float64() < n.LossRate
	dup := n.rng.Float64() < n.DupRate
	reorder := n.rng.Float64() < n.ReorderRate
	n.mu.Unlock()
	if drop {
		pkt.recycle()
		return
	}
	if dup {
		// The duplicate needs its own buffer: both copies are consumed
		// (and recycled) independently by the receiver.
		dst.receive(pkt.clone(), false)
	}
	dst.receive(pkt, reorder)
}

func (c *MemConn) receive(pkt memPacket, delay bool) {
	c.mu.Lock()
	if delay && !c.hasDelayed {
		c.delayed = pkt
		c.hasDelayed = true
		c.mu.Unlock()
		return
	}
	var flush memPacket
	flushing := c.hasDelayed
	if flushing {
		flush = c.delayed
		c.delayed = memPacket{}
		c.hasDelayed = false
	}
	c.mu.Unlock()
	c.push(pkt)
	if flushing {
		c.push(flush)
	}
}

func (c *MemConn) push(pkt memPacket) {
	select {
	case c.inbox <- pkt:
	case <-c.closed:
		pkt.recycle()
	default: // inbox full: drop, like a real NIC queue
		pkt.recycle()
	}
}

// ReadFrom blocks until a packet arrives or the connection closes.
func (c *MemConn) ReadFrom(p []byte) (int, net.Addr, error) {
	select {
	case pkt := <-c.inbox:
		n := copy(p, pkt.data)
		pkt.recycle()
		return n, pkt.from, nil
	case <-c.closed:
		return 0, nil, net.ErrClosed
	}
}

// WriteTo sends a packet to the named endpoint.
func (c *MemConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	select {
	case <-c.closed:
		return 0, net.ErrClosed
	default:
	}
	pb := memBufPool.Get().(*[]byte)
	*pb = append((*pb)[:0], p...)
	c.net.deliver(addr.String(), memPacket{data: *pb, pb: pb, from: c.boxed})
	return len(p), nil
}

// Close detaches the endpoint.
func (c *MemConn) Close() error {
	c.once.Do(func() {
		close(c.closed)
		c.net.mu.Lock()
		delete(c.net.nodes, string(c.addr))
		c.net.mu.Unlock()
	})
	return nil
}

// LocalAddr returns the endpoint's name.
func (c *MemConn) LocalAddr() net.Addr { return c.addr }

// SetDeadline is a no-op (the in-memory network has no deadlines).
func (c *MemConn) SetDeadline(time.Time) error { return nil }

// SetReadDeadline is a no-op.
func (c *MemConn) SetReadDeadline(time.Time) error { return nil }

// SetWriteDeadline is a no-op.
func (c *MemConn) SetWriteDeadline(time.Time) error { return nil }
