package autoscale

import (
	"testing"
	"time"

	"lambdanic/internal/core"
	"lambdanic/internal/workloads"
)

func testPolicy() Policy {
	return Policy{
		TargetPerReplica: 100,
		MinReplicas:      1,
		MaxReplicas:      4,
		UpThreshold:      1.2,
		DownThreshold:    0.5,
		Cooldown:         10 * time.Second,
		Smoothing:        1, // no smoothing: deterministic tests
	}
}

func newScaler(t *testing.T, p Policy) *Autoscaler {
	t.Helper()
	a, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestPolicyValidation(t *testing.T) {
	bad := []Policy{
		{},
		{TargetPerReplica: 1, MinReplicas: -1, MaxReplicas: 2, UpThreshold: 2, DownThreshold: 0.5, Smoothing: 1},
		{TargetPerReplica: 1, MinReplicas: 3, MaxReplicas: 2, UpThreshold: 2, DownThreshold: 0.5, Smoothing: 1},
		{TargetPerReplica: 1, MinReplicas: 0, MaxReplicas: 0, UpThreshold: 2, DownThreshold: 0.5, Smoothing: 1},
		{TargetPerReplica: 1, MinReplicas: 1, MaxReplicas: 2, UpThreshold: 1, DownThreshold: 0.5, Smoothing: 1},
		{TargetPerReplica: 1, MinReplicas: 1, MaxReplicas: 2, UpThreshold: 2, DownThreshold: 1.5, Smoothing: 1},
		{TargetPerReplica: 1, MinReplicas: 1, MaxReplicas: 2, UpThreshold: 2, DownThreshold: 0.5, Smoothing: 0},
	}
	for i, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid policy accepted", i)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Errorf("DefaultPolicy invalid: %v", err)
	}
	zero := testPolicy()
	zero.MinReplicas = 0
	if err := zero.Validate(); err != nil {
		t.Errorf("MinReplicas=0 (scale-to-zero) rejected: %v", err)
	}
}

// TestScaleToZeroAndBack: with MinReplicas=0, a workload whose rate
// decays away releases every replica, and the first traffic after the
// cooldown brings it back from zero.
func TestScaleToZeroAndBack(t *testing.T) {
	p := testPolicy()
	p.MinReplicas = 0
	a := newScaler(t, p)
	a.Track("web", 2)
	now := time.Unix(1000, 0)

	// Rate collapses: scale all the way to zero in one decision.
	if err := a.Observe("web", 0, time.Second); err != nil {
		t.Fatal(err)
	}
	ds := a.Decide(now)
	if len(ds) != 1 || ds[0].To != 0 || ds[0].From != 2 {
		t.Fatalf("decisions = %+v, want 2->0", ds)
	}
	if a.Replicas("web") != 0 {
		t.Fatalf("Replicas = %d, want 0", a.Replicas("web"))
	}

	// At zero replicas any observed traffic is overload: scale up from
	// zero once the cooldown passes.
	if err := a.Observe("web", 150, time.Second); err != nil {
		t.Fatal(err)
	}
	ds = a.Decide(now.Add(p.Cooldown + time.Second))
	if len(ds) != 1 || ds[0].From != 0 || ds[0].To != 2 {
		t.Fatalf("decisions = %+v, want 0->2", ds)
	}
}

// TestTrackZeroReplicas: Track honors a zero initial count when the
// policy allows it (a cold workload need not be provisioned eagerly).
func TestTrackZeroReplicas(t *testing.T) {
	p := testPolicy()
	p.MinReplicas = 0
	a := newScaler(t, p)
	a.Track("cold", 0)
	if got := a.Replicas("cold"); got != 0 {
		t.Fatalf("Replicas = %d, want 0", got)
	}
}

// TestOscillationDamping: a rate that whipsaws around the target inside
// the hysteresis band produces no decisions — the band plus cooldown
// absorb the oscillation instead of translating it into replica churn.
func TestOscillationDamping(t *testing.T) {
	p := testPolicy()
	p.Smoothing = 0.5 // EWMA on: bursts are averaged before deciding
	a := newScaler(t, p)
	a.Track("web", 2)
	now := time.Unix(1000, 0)
	// Capacity is 200; the band holds inside (100, 240). Alternate 160
	// and 240 req/s: raw rates brush the band edge but the EWMA settles
	// near 200, so no decision should ever fire.
	if err := a.Observe("web", 200, time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		r := uint64(160)
		if i%2 == 1 {
			r = 240
		}
		if err := a.Observe("web", r, time.Second); err != nil {
			t.Fatal(err)
		}
		if ds := a.Decide(now.Add(time.Duration(i) * time.Minute)); len(ds) != 0 {
			t.Fatalf("iteration %d: oscillating load caused decisions %+v (rate %.1f)",
				i, ds, a.Rate("web"))
		}
	}
}

func TestScaleUpOnOverload(t *testing.T) {
	a := newScaler(t, testPolicy())
	a.Track("web", 1)
	now := time.Unix(1000, 0)
	// 350 req/s against 100/replica: needs 4 replicas.
	if err := a.Observe("web", 350, time.Second); err != nil {
		t.Fatal(err)
	}
	ds := a.Decide(now)
	if len(ds) != 1 || ds[0].To != 4 || ds[0].From != 1 {
		t.Fatalf("decisions = %+v, want 1->4", ds)
	}
	if a.Replicas("web") != 4 {
		t.Errorf("Replicas = %d", a.Replicas("web"))
	}
}

func TestScaleUpCappedAtMax(t *testing.T) {
	a := newScaler(t, testPolicy())
	a.Track("web", 1)
	if err := a.Observe("web", 100_000, time.Second); err != nil {
		t.Fatal(err)
	}
	ds := a.Decide(time.Unix(1000, 0))
	if len(ds) != 1 || ds[0].To != 4 {
		t.Fatalf("decisions = %+v, want cap at 4", ds)
	}
}

func TestScaleDownOnIdle(t *testing.T) {
	a := newScaler(t, testPolicy())
	a.Track("web", 4)
	if err := a.Observe("web", 90, time.Second); err != nil { // 90 req/s: one replica suffices
		t.Fatal(err)
	}
	ds := a.Decide(time.Unix(1000, 0))
	if len(ds) != 1 || ds[0].To != 1 {
		t.Fatalf("decisions = %+v, want down to 1", ds)
	}
}

func TestHysteresisBandHolds(t *testing.T) {
	a := newScaler(t, testPolicy())
	a.Track("web", 2)
	// 150 req/s with 2 replicas: between 50% (100) and 120% (240) of
	// capacity — no action.
	if err := a.Observe("web", 150, time.Second); err != nil {
		t.Fatal(err)
	}
	if ds := a.Decide(time.Unix(1000, 0)); len(ds) != 0 {
		t.Errorf("decisions in hysteresis band: %+v", ds)
	}
}

func TestCooldownSuppressesFlapping(t *testing.T) {
	a := newScaler(t, testPolicy())
	a.Track("web", 1)
	now := time.Unix(1000, 0)
	if err := a.Observe("web", 350, time.Second); err != nil {
		t.Fatal(err)
	}
	if ds := a.Decide(now); len(ds) != 1 {
		t.Fatal("first decision missing")
	}
	// Load drops immediately, but the cooldown holds the replica count.
	if err := a.Observe("web", 10, time.Second); err != nil {
		t.Fatal(err)
	}
	if ds := a.Decide(now.Add(5 * time.Second)); len(ds) != 0 {
		t.Errorf("scaled during cooldown: %+v", ds)
	}
	// After the cooldown it scales down.
	if ds := a.Decide(now.Add(11 * time.Second)); len(ds) != 1 || ds[0].To != 1 {
		t.Errorf("post-cooldown decisions = %+v", ds)
	}
}

func TestEWMASmoothing(t *testing.T) {
	p := testPolicy()
	p.Smoothing = 0.5
	a := newScaler(t, p)
	a.Track("web", 1)
	if err := a.Observe("web", 400, time.Second); err != nil {
		t.Fatal(err)
	}
	if err := a.Observe("web", 0, time.Second); err != nil {
		t.Fatal(err)
	}
	// EWMA: 400 then 0.5*0 + 0.5*400 = 200.
	if got := a.Rate("web"); got != 200 {
		t.Errorf("Rate = %v, want 200", got)
	}
}

func TestObserveErrors(t *testing.T) {
	a := newScaler(t, testPolicy())
	if err := a.Observe("ghost", 1, time.Second); err == nil {
		t.Error("untracked workload accepted")
	}
	a.Track("web", 1)
	if err := a.Observe("web", 1, 0); err == nil {
		t.Error("zero window accepted")
	}
}

// TestAutoscalerDrivesPlacements closes the loop with the workload
// manager: decisions become placement updates in the control store.
func TestAutoscalerDrivesPlacements(t *testing.T) {
	m, err := core.NewManager(3, 11)
	if err != nil {
		t.Fatal(err)
	}
	web := workloads.WebServer()
	if _, err := m.Register(web); err != nil {
		t.Fatal(err)
	}
	pool := []string{"m2", "m3", "m4", "m5"}
	if err := m.RecordPlacement(web.Name, pool[:1]); err != nil {
		t.Fatal(err)
	}

	a := newScaler(t, testPolicy())
	a.Track(web.Name, 1)
	if err := a.Observe(web.Name, 350, time.Second); err != nil {
		t.Fatal(err)
	}
	for _, d := range a.Decide(time.Unix(2000, 0)) {
		if err := m.RecordPlacement(d.Workload, pool[:d.To]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := m.Placement(web.Name)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Workers) != 4 {
		t.Errorf("placement scaled to %d workers, want 4", len(p.Workers))
	}
}
