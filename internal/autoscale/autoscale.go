// Package autoscale implements the serverless framework's autoscaler
// ("an autoscaler to scale lambdas as demands change", paper §6.1.1):
// it observes per-workload request rates and decides replica counts
// against a target rate per replica, with EWMA smoothing, a hysteresis
// band, and scale cooldowns — the controls that keep container
// frameworks from flapping, and that λ-NIC's density makes largely
// unnecessary (thousands of lambdas fit one NIC).
package autoscale

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Policy parameterizes scaling decisions.
type Policy struct {
	// TargetPerReplica is the request rate (req/s) one replica should
	// carry at steady state.
	TargetPerReplica float64
	// MinReplicas and MaxReplicas bound the replica count. MinReplicas
	// may be 0: a workload whose rate decays to nothing scales to zero
	// (no replicas provisioned) and scales back up from zero on the
	// first observed traffic — the serverless scale-to-zero contract
	// the placement engine's cost accounting relies on.
	MinReplicas, MaxReplicas int
	// UpThreshold scales up when observed rate exceeds
	// target*replicas*UpThreshold (e.g. 1.2).
	UpThreshold float64
	// DownThreshold scales down when observed rate falls below
	// target*replicas*DownThreshold (e.g. 0.5).
	DownThreshold float64
	// Cooldown is the minimum time between scale operations per
	// workload.
	Cooldown time.Duration
	// Smoothing is the EWMA factor in (0, 1]; 1 disables smoothing.
	Smoothing float64
}

// Validate checks the policy.
func (p Policy) Validate() error {
	switch {
	case p.TargetPerReplica <= 0:
		return errors.New("autoscale: TargetPerReplica must be positive")
	case p.MinReplicas < 0 || p.MaxReplicas < p.MinReplicas || p.MaxReplicas < 1:
		return errors.New("autoscale: need 0 <= MinReplicas <= MaxReplicas, MaxReplicas >= 1")
	case p.UpThreshold <= 1:
		return errors.New("autoscale: UpThreshold must exceed 1")
	case p.DownThreshold <= 0 || p.DownThreshold >= 1:
		return errors.New("autoscale: DownThreshold must be in (0,1)")
	case p.Smoothing <= 0 || p.Smoothing > 1:
		return errors.New("autoscale: Smoothing must be in (0,1]")
	default:
		return nil
	}
}

// DefaultPolicy returns a conservative policy.
func DefaultPolicy() Policy {
	return Policy{
		TargetPerReplica: 500,
		MinReplicas:      1,
		MaxReplicas:      8,
		UpThreshold:      1.2,
		DownThreshold:    0.5,
		Cooldown:         30 * time.Second,
		Smoothing:        0.5,
	}
}

// Decision is one scaling action.
type Decision struct {
	Workload string
	From, To int
	Reason   string
}

type workloadState struct {
	replicas  int
	rate      float64 // EWMA req/s
	hasRate   bool
	lastScale time.Time
}

// Autoscaler tracks workloads and produces decisions. Safe for
// concurrent use.
type Autoscaler struct {
	policy Policy

	mu    sync.Mutex
	state map[string]*workloadState
}

// New builds an autoscaler.
func New(policy Policy) (*Autoscaler, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Autoscaler{policy: policy, state: make(map[string]*workloadState)}, nil
}

// Track registers a workload at an initial replica count (clamped to
// policy bounds).
func (a *Autoscaler) Track(workload string, replicas int) {
	if replicas < a.policy.MinReplicas {
		replicas = a.policy.MinReplicas
	}
	if replicas > a.policy.MaxReplicas {
		replicas = a.policy.MaxReplicas
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.state[workload]; !ok {
		a.state[workload] = &workloadState{replicas: replicas}
	}
}

// Observe records completed requests over a measurement window.
func (a *Autoscaler) Observe(workload string, completed uint64, window time.Duration) error {
	if window <= 0 {
		return fmt.Errorf("autoscale: non-positive window %v", window)
	}
	rate := float64(completed) / window.Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	st, ok := a.state[workload]
	if !ok {
		return fmt.Errorf("autoscale: workload %q not tracked", workload)
	}
	if !st.hasRate {
		st.rate, st.hasRate = rate, true
		return nil
	}
	s := a.policy.Smoothing
	st.rate = s*rate + (1-s)*st.rate
	return nil
}

// Replicas returns the current replica count for a workload.
func (a *Autoscaler) Replicas(workload string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.state[workload]; ok {
		return st.replicas
	}
	return 0
}

// Rate returns the smoothed request rate.
func (a *Autoscaler) Rate(workload string) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if st, ok := a.state[workload]; ok {
		return st.rate
	}
	return 0
}

// Decide evaluates every tracked workload at the given time and applies
// (and returns) the scaling decisions.
func (a *Autoscaler) Decide(now time.Time) []Decision {
	a.mu.Lock()
	defer a.mu.Unlock()
	names := make([]string, 0, len(a.state))
	for name := range a.state {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []Decision
	for _, name := range names {
		st := a.state[name]
		if !st.hasRate {
			continue
		}
		if !st.lastScale.IsZero() && now.Sub(st.lastScale) < a.policy.Cooldown {
			continue
		}
		capacity := a.policy.TargetPerReplica * float64(st.replicas)
		switch {
		case st.rate > capacity*a.policy.UpThreshold && st.replicas < a.policy.MaxReplicas:
			want := int(st.rate/a.policy.TargetPerReplica + 0.999)
			if want <= st.replicas {
				want = st.replicas + 1
			}
			if want > a.policy.MaxReplicas {
				want = a.policy.MaxReplicas
			}
			out = append(out, Decision{
				Workload: name, From: st.replicas, To: want,
				Reason: fmt.Sprintf("rate %.0f req/s exceeds capacity %.0f", st.rate, capacity),
			})
			st.replicas = want
			st.lastScale = now
		case st.rate < capacity*a.policy.DownThreshold && st.replicas > a.policy.MinReplicas:
			want := int(st.rate/a.policy.TargetPerReplica + 0.999)
			if want >= st.replicas {
				want = st.replicas - 1
			}
			if want < a.policy.MinReplicas {
				want = a.policy.MinReplicas
			}
			out = append(out, Decision{
				Workload: name, From: st.replicas, To: want,
				Reason: fmt.Sprintf("rate %.0f req/s below %.0f%% of capacity %.0f",
					st.rate, a.policy.DownThreshold*100, capacity),
			})
			st.replicas = want
			st.lastScale = now
		}
	}
	return out
}
