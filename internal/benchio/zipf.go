package benchio

// Seeded Zipf popularity generator for skewed-workload experiments.
//
// math/rand's Zipf is not reproducible across Go releases (its
// rejection sampler's draw count depends on internal generator
// details), and the skew experiment needs bit-identical arrival
// schedules across serial and parallel simulator runs. This generator
// therefore owns everything: a splitmix64 PRNG and plain CDF inversion
// over a precomputed table, so (seed, n, s) fully determines the i-th
// draw forever.

import (
	"fmt"
	"math"
	"sort"
)

// Zipf draws ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. Rank 0 is the most popular. Not safe for concurrent
// use; give each goroutine its own instance.
type Zipf struct {
	cdf   []float64
	state uint64
}

// NewZipf builds a generator over n ranks with exponent s ≥ 0 (s = 0 is
// uniform; s ≈ 1 is the classic "90/10" web skew) seeded by seed.
func NewZipf(n int, s float64, seed uint64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("benchio: zipf needs n ≥ 1, got %d", n)
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		return nil, fmt.Errorf("benchio: zipf exponent must be finite and ≥ 0, got %v", s)
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against accumulated rounding
	return &Zipf{cdf: cdf, state: seed}, nil
}

// Next returns the next rank.
func (z *Zipf) Next() int {
	u := z.uniform()
	return sort.SearchFloat64s(z.cdf, u)
}

// Uint64 returns the next raw PRNG output — handy for deriving
// secondary choices (e.g. one-shot vs long-lived) from the same seeded
// stream without a second generator.
func (z *Zipf) Uint64() uint64 {
	z.state += 0x9e3779b97f4a7c15
	x := z.state
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// uniform returns a float64 in [0, 1) from the top 53 bits.
func (z *Zipf) uniform() float64 {
	return float64(z.Uint64()>>11) / (1 << 53)
}
