package benchio

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 100)
	for i := range sorted {
		sorted[i] = time.Duration(i+1) * time.Millisecond
	}
	tests := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond},
		{0.5, 51 * time.Millisecond},
		{0.99, 100 * time.Millisecond},
		{1, 100 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); got != tt.want {
			t.Errorf("Percentile(%.2f) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
}

func TestClosedLoopCountsAndThroughput(t *testing.T) {
	res := ClosedLoop("t", "memnet", 4, 50*time.Millisecond, func() error {
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if res.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if res.Mode != "closed" || res.Concurrency != 4 {
		t.Errorf("mode/concurrency = %s/%d", res.Mode, res.Concurrency)
	}
	if res.ReqPerSec <= 0 {
		t.Errorf("ReqPerSec = %f", res.ReqPerSec)
	}
	if res.P50Ns <= 0 || res.P99Ns < res.P50Ns {
		t.Errorf("percentiles p50=%d p99=%d", res.P50Ns, res.P99Ns)
	}
}

func TestClosedLoopCountsErrors(t *testing.T) {
	fail := errors.New("boom")
	n := 0
	res := ClosedLoop("t", "memnet", 1, 10*time.Millisecond, func() error {
		n++
		if n%2 == 0 {
			return fail
		}
		return nil
	})
	if res.Errors == 0 {
		t.Error("errors not counted")
	}
	if res.Errors > res.Requests {
		t.Errorf("errors %d > requests %d", res.Errors, res.Requests)
	}
}

func TestOpenLoopRespectsOfferedRate(t *testing.T) {
	res := OpenLoop("t", "memnet", 2000, 100*time.Millisecond, 64, func() error {
		time.Sleep(50 * time.Microsecond)
		return nil
	})
	if res.Mode != "open" || res.OfferedRPS != 2000 {
		t.Errorf("mode/rate = %s/%f", res.Mode, res.OfferedRPS)
	}
	// ~200 arrivals offered; allow a broad band for scheduler jitter.
	total := res.Requests + res.Shed
	if total < 100 || total > 300 {
		t.Errorf("arrivals = %d, want ≈200", total)
	}
}

func TestOpenLoopShedsOverCap(t *testing.T) {
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		res := OpenLoop("t", "memnet", 5000, 50*time.Millisecond, 1, func() error {
			<-block
			return nil
		})
		if res.Shed == 0 {
			t.Error("expected shed arrivals with in-flight cap 1")
		}
	}()
	time.Sleep(80 * time.Millisecond)
	close(block)
	<-done
}

func TestWriteJSONRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_rpc.json")
	rep := NewReport([]Result{{
		Name: "roundtrip", Transport: "memnet", Mode: "closed",
		Concurrency: 4, Requests: 100, ReqPerSec: 12345.6,
		P50Ns: 1000, P90Ns: 2000, P99Ns: 3000, AllocsPerOp: 1.5,
	}})
	if err := WriteJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.GoVersion == "" || len(back.Results) != 1 {
		t.Errorf("report = %+v", back)
	}
	r := back.Results[0]
	if r.Name != "roundtrip" || r.ReqPerSec != 12345.6 || r.P99Ns != 3000 {
		t.Errorf("result = %+v", r)
	}
}

func TestReadJSONRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	rep := NewReport([]Result{{Name: "sched/heap", ReqPerSec: 100}})
	if err := WriteJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 1 || back.Results[0].Name != "sched/heap" {
		t.Errorf("report = %+v", back)
	}
}

func guardReport(rates map[string]float64) Report {
	var rs []Result
	for name, rps := range rates {
		rs = append(rs, Result{Name: name, ReqPerSec: rps})
	}
	return NewReport(rs)
}

func TestGuard(t *testing.T) {
	baseline := guardReport(map[string]float64{
		"sched/heap": 100, "sched/ladder": 300, "timers/ladder": 500,
		"scaleout16/domains=4": 400,
	})

	// Twice as fast across the board: ratios unchanged, guard passes.
	ok := guardReport(map[string]float64{
		"sched/heap": 200, "sched/ladder": 600, "timers/ladder": 1000,
		"scaleout16/domains=4": 100, // unguarded prefix: may regress freely
	})
	if err := Guard(baseline, ok, "sched/heap", 0.20, "sched/", "timers/"); err != nil {
		t.Errorf("uniform speed change failed the guard: %v", err)
	}

	// Ladder ratio fell from 3x to 2x the reference: a 33% relative
	// regression, beyond the 20% tolerance.
	bad := guardReport(map[string]float64{
		"sched/heap": 100, "sched/ladder": 200, "timers/ladder": 500,
	})
	err := Guard(baseline, bad, "sched/heap", 0.20, "sched/", "timers/")
	if err == nil {
		t.Fatal("33% relative regression passed the guard")
	}
	if !strings.Contains(err.Error(), "sched/ladder") {
		t.Errorf("violation should name sched/ladder: %v", err)
	}

	// A row present on only one side is ignored.
	sparse := guardReport(map[string]float64{"sched/heap": 100, "sched/new-row": 1})
	if err := Guard(baseline, sparse, "sched/heap", 0.20, "sched/", "timers/"); err != nil {
		t.Errorf("new row failed the guard: %v", err)
	}

	// Missing reference is an explicit error.
	if err := Guard(baseline, guardReport(map[string]float64{"sched/ladder": 1}),
		"sched/heap", 0.20, "sched/"); err == nil {
		t.Error("missing reference row should error")
	}
}
