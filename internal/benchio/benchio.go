// Package benchio drives RPC targets closed- and open-loop and reports
// throughput, latency percentiles, and allocation rates — the measured
// counterpart to the paper's claim that the data plane, not the
// harness, should set the throughput ceiling (§6.2). The cmd/lnic-bench
// rpcbench experiment uses it to write BENCH_rpc.json, giving the repo
// a tracked perf trajectory across PRs.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Call issues one request against the benchmarked target and reports
// whether it failed. Implementations must be safe for concurrent use.
type Call func() error

// Result is one benchmark configuration's measurement.
type Result struct {
	// Name identifies the scenario (e.g. "roundtrip/64B").
	Name string `json:"name"`
	// Transport names the packet network ("memnet", "udp").
	Transport string `json:"transport"`
	// Mode is "closed" (fixed concurrency) or "open" (fixed rate).
	Mode string `json:"mode"`
	// Concurrency is the closed-loop caller count (0 for open loop).
	Concurrency int `json:"concurrency,omitempty"`
	// OfferedRPS is the open-loop arrival rate (0 for closed loop).
	OfferedRPS float64 `json:"offered_rps,omitempty"`

	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// Shed counts open-loop arrivals dropped because the in-flight cap
	// was reached (the system could not absorb the offered rate).
	Shed int `json:"shed,omitempty"`

	ReqPerSec float64 `json:"req_per_sec"`
	P50Ns     int64   `json:"p50_ns"`
	P90Ns     int64   `json:"p90_ns"`
	P99Ns     int64   `json:"p99_ns"`
	// P999Ns is the 99.9th percentile; zero when the sample count is too
	// small for the tail to be meaningful (populated by fill for any
	// non-empty run, but older reports omit it).
	P999Ns int64 `json:"p999_ns,omitempty"`

	// AllocsPerOp and BytesPerOp are process-wide deltas divided by
	// completed requests: they include the full data plane (readers,
	// workers, pools), which is exactly the steady state being gated.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
}

// Report is the serialized benchmark output (BENCH_rpc.json).
type Report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Results    []Result `json:"results"`
}

// ClosedLoop runs concurrency callers back-to-back for roughly the
// given duration and measures service throughput and latency.
func ClosedLoop(name, transport string, concurrency int, d time.Duration, call Call) Result {
	if concurrency < 1 {
		concurrency = 1
	}
	lat := make([][]time.Duration, concurrency)
	errs := make([]int, concurrency)

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)

	deadline := time.Now().Add(d)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples := lat[i][:0]
			for time.Now().Before(deadline) {
				t0 := time.Now()
				err := call()
				samples = append(samples, time.Since(t0))
				if err != nil {
					errs[i]++
				}
			}
			lat[i] = samples
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)

	all := merge(lat)
	res := Result{
		Name:        name,
		Transport:   transport,
		Mode:        "closed",
		Concurrency: concurrency,
		Requests:    len(all),
	}
	for _, e := range errs {
		res.Errors += e
	}
	fill(&res, all, elapsed)
	if n := len(all); n > 0 {
		res.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(n)
		res.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(n)
	}
	return res
}

// OpenLoop offers requests at a fixed rate for roughly the given
// duration, with at most maxInflight outstanding; arrivals beyond the
// cap are shed and counted. Latencies include queueing at the target.
func OpenLoop(name, transport string, rps float64, d time.Duration, maxInflight int, call Call) Result {
	if rps <= 0 {
		rps = 1
	}
	if maxInflight < 1 {
		maxInflight = 64
	}
	interval := time.Duration(float64(time.Second) / rps)
	n := int(float64(d) / float64(interval))
	if n < 1 {
		n = 1
	}

	var (
		mu      sync.Mutex
		lat     = make([]time.Duration, 0, n)
		errors_ int
		shed    int
	)
	sem := make(chan struct{}, maxInflight)
	var wg sync.WaitGroup
	var inFlightErrs atomic.Int64

	start := time.Now()
	next := start
	for i := 0; i < n; i++ {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		next = next.Add(interval)
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				err := call()
				dur := time.Since(t0)
				<-sem
				if err != nil {
					inFlightErrs.Add(1)
				}
				mu.Lock()
				lat = append(lat, dur)
				mu.Unlock()
			}()
		default:
			shed++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	errors_ = int(inFlightErrs.Load())

	res := Result{
		Name:       name,
		Transport:  transport,
		Mode:       "open",
		OfferedRPS: rps,
		Requests:   len(lat),
		Errors:     errors_,
		Shed:       shed,
	}
	fill(&res, lat, elapsed)
	return res
}

func merge(parts [][]time.Duration) []time.Duration {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	all := make([]time.Duration, 0, total)
	for _, p := range parts {
		all = append(all, p...)
	}
	return all
}

func fill(res *Result, lat []time.Duration, elapsed time.Duration) {
	if len(lat) == 0 || elapsed <= 0 {
		return
	}
	res.ReqPerSec = float64(len(lat)) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.P50Ns = int64(Percentile(lat, 0.50))
	res.P90Ns = int64(Percentile(lat, 0.90))
	res.P99Ns = int64(Percentile(lat, 0.99))
	res.P999Ns = int64(Percentile(lat, 0.999))
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of sorted durations
// using nearest-rank; zero for an empty slice.
func Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(p * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// NewReport wraps results with the run's environment.
func NewReport(results []Result) Report {
	return Report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results:    results,
	}
}

// WriteJSON writes the report to path, pretty-printed so diffs across
// PRs stay readable.
func WriteJSON(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("benchio: write %s: %w", path, err)
	}
	return nil
}

// ReadJSON loads a report previously written by WriteJSON.
func ReadJSON(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("benchio: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("benchio: parse %s: %w", path, err)
	}
	return r, nil
}

// Guard compares a fresh report against a committed baseline and
// returns an error naming every guarded row whose throughput regressed
// by more than tolerance (a fraction: 0.20 allows a 20% drop).
//
// Raw req/sec is not comparable across machines, so each row is first
// normalized to the same run's reference row — ratio = ReqPerSec /
// reference.ReqPerSec — and the guard requires each current ratio to be
// at least (1 - tolerance) times the baseline's. Machine speed cancels;
// what remains is the relative cost of the scenario against the
// reference implementation, which is exactly what a kernel regression
// changes.
//
// Only rows whose Name begins with one of the prefixes are guarded:
// multi-core scaling rows, for example, are meaningless to compare
// between machines with different core counts. Rows present on only one
// side are skipped — adding a scenario must not fail old baselines.
func Guard(baseline, current Report, reference string, tolerance float64, prefixes ...string) error {
	rps := func(r Report) map[string]float64 {
		m := make(map[string]float64, len(r.Results))
		for _, res := range r.Results {
			m[res.Name] = res.ReqPerSec
		}
		return m
	}
	base, cur := rps(baseline), rps(current)
	refB, refC := base[reference], cur[reference]
	if refB <= 0 || refC <= 0 {
		return fmt.Errorf("benchio: guard reference %q missing from %s",
			reference, map[bool]string{true: "baseline", false: "current report"}[refB <= 0])
	}
	guarded := func(name string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var violations []string
	for _, res := range current.Results {
		name := res.Name
		if name == reference || !guarded(name) {
			continue
		}
		b, ok := base[name]
		if !ok || b <= 0 || cur[name] <= 0 {
			continue
		}
		ratioB, ratioC := b/refB, cur[name]/refC
		if ratioC < ratioB*(1-tolerance) {
			violations = append(violations,
				fmt.Sprintf("%s: %.3fx reference, baseline %.3fx (-%0.1f%%)",
					name, ratioC, ratioB, 100*(1-ratioC/ratioB)))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchio: throughput regressed beyond %.0f%% tolerance:\n  %s",
			tolerance*100, strings.Join(violations, "\n  "))
	}
	return nil
}

// GuardLatency compares p99 latency of guarded rows against a
// committed baseline and returns an error naming every row whose p99
// grew by more than tolerance (0.20 allows a 20% increase).
//
// Unlike Guard, there is no reference-row normalization: this guard is
// meant for virtual-clock experiments (nicsim under the discrete-event
// simulator), where latencies are deterministic simulated durations and
// directly comparable across machines. Do not use it on wall-clock
// benchmarks. Rows present on only one side are skipped, and rows with
// a zero p99 on either side are skipped (degenerate sample).
func GuardLatency(baseline, current Report, tolerance float64, prefixes ...string) error {
	p99 := func(r Report) map[string]int64 {
		m := make(map[string]int64, len(r.Results))
		for _, res := range r.Results {
			m[res.Name] = res.P99Ns
		}
		return m
	}
	base := p99(baseline)
	guarded := func(name string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	var violations []string
	for _, res := range current.Results {
		if !guarded(res.Name) {
			continue
		}
		b, ok := base[res.Name]
		if !ok || b <= 0 || res.P99Ns <= 0 {
			continue
		}
		if float64(res.P99Ns) > float64(b)*(1+tolerance) {
			violations = append(violations,
				fmt.Sprintf("%s: p99 %s, baseline %s (+%0.1f%%)",
					res.Name, time.Duration(res.P99Ns), time.Duration(b),
					100*(float64(res.P99Ns)/float64(b)-1)))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchio: p99 latency regressed beyond %.0f%% tolerance:\n  %s",
			tolerance*100, strings.Join(violations, "\n  "))
	}
	return nil
}
