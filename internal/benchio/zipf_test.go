package benchio

import (
	"strings"
	"testing"
)

func TestZipfDeterministic(t *testing.T) {
	a, err := NewZipf(100, 1.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewZipf(100, 1.1, 42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
	c, _ := NewZipf(100, 1.1, 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("different seeds produced an identical stream")
	}
}

func TestZipfSkew(t *testing.T) {
	z, err := NewZipf(1000, 1.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const draws = 20000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// With s=1.1 over 1000 ranks, the top 10% of ranks should absorb the
	// large majority of draws — the "90/10" shape the skew experiment
	// relies on.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.75 {
		t.Errorf("top 10%% of ranks got %.0f%% of draws, want ≥75%%", frac*100)
	}
	if counts[0] <= counts[500] {
		t.Errorf("rank 0 (%d draws) not hotter than rank 500 (%d)", counts[0], counts[500])
	}
}

func TestZipfUniformWhenExponentZero(t *testing.T) {
	z, err := NewZipf(4, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[z.Next()]++
	}
	for r, c := range counts {
		if c < 1500 || c > 2500 {
			t.Errorf("rank %d drew %d of 8000, want ≈2000 (uniform)", r, c)
		}
	}
}

func TestZipfRange(t *testing.T) {
	z, err := NewZipf(5, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if r := z.Next(); r < 0 || r >= 5 {
			t.Fatalf("rank %d out of [0,5)", r)
		}
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewZipf(10, -1, 1); err == nil {
		t.Error("negative exponent accepted")
	}
}

func latReport(p99 map[string]int64) Report {
	var rs []Result
	for name, v := range p99 {
		rs = append(rs, Result{Name: name, P99Ns: v})
	}
	return NewReport(rs)
}

func TestGuardLatency(t *testing.T) {
	baseline := latReport(map[string]int64{
		"skew/rr": 1000, "skew/pinned": 500, "other/x": 100,
	})

	// Within tolerance: passes.
	ok := latReport(map[string]int64{
		"skew/rr": 1100, "skew/pinned": 550, "other/x": 900,
	})
	if err := GuardLatency(baseline, ok, 0.20, "skew/"); err != nil {
		t.Errorf("10%% growth failed a 20%% guard: %v", err)
	}

	// 50% p99 growth on a guarded row: fails and names the row.
	bad := latReport(map[string]int64{"skew/rr": 1000, "skew/pinned": 750})
	err := GuardLatency(baseline, bad, 0.20, "skew/")
	if err == nil {
		t.Fatal("50% p99 regression passed the guard")
	}
	if !strings.Contains(err.Error(), "skew/pinned") {
		t.Errorf("violation should name skew/pinned: %v", err)
	}

	// New rows and zero-p99 rows are skipped.
	sparse := latReport(map[string]int64{"skew/new": 999999, "skew/rr": 0})
	if err := GuardLatency(baseline, sparse, 0.20, "skew/"); err != nil {
		t.Errorf("new/zero rows failed the guard: %v", err)
	}
}

func TestFillPopulatesP999(t *testing.T) {
	res := ClosedLoop("t", "memnet", 2, 20e6, func() error { return nil })
	if res.Requests > 0 && res.P999Ns < res.P99Ns {
		t.Errorf("p999 %d < p99 %d", res.P999Ns, res.P99Ns)
	}
}
