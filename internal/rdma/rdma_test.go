package rdma

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/monitor"
	"lambdanic/internal/sim"
)

func testEngine(t *testing.T) (*sim.Sim, *Engine) {
	t.Helper()
	s := sim.New(1)
	e := New(s, Config{
		Link:         cluster.Default().Link,
		PerPacketDMA: 200 * time.Nanosecond,
		MTU:          1400,
	})
	return s, e
}

func TestRegisterAndWrite(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("img", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 1000)
	var doneErr error
	var doneAt sim.Time
	e.Write(r.Key(), 100, data, func(err error) {
		doneErr = err
		doneAt = s.Now()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if doneErr != nil {
		t.Fatalf("write: %v", doneErr)
	}
	if doneAt <= 0 {
		t.Error("write completed instantaneously; no transfer time charged")
	}
	if !bytes.Equal(r.Bytes()[100:1100], data) {
		t.Error("data not committed to region")
	}
	c := e.Counters()
	if c.Writes != 1 || c.BytesWritten != 1000 || c.Violations != 0 {
		t.Errorf("counters = %d/%d/%d", c.Writes, c.BytesWritten, c.Violations)
	}
	if c.Doorbells != 1 {
		t.Errorf("doorbells = %d, want 1 (a bare Write rings its own)", c.Doorbells)
	}
}

func TestWriteBadKey(t *testing.T) {
	s, e := testEngine(t)
	var gotErr error
	e.Write(RKey(999), 0, []byte("x"), func(err error) { gotErr = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", gotErr)
	}
}

func TestWriteOutOfRegion(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("small", 16)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	e.Write(r.Key(), 10, []byte("0123456789"), func(err error) { gotErr = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", gotErr)
	}
	if c := e.Counters(); c.Violations != 1 {
		t.Errorf("violations = %d, want 1", c.Violations)
	}
}

func TestDeregisterRevokesKey(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("tmp", 64)
	if err != nil {
		t.Fatal(err)
	}
	e.Deregister(r)
	var gotErr error
	e.Write(r.Key(), 0, []byte("x"), func(err error) { gotErr = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey after deregister", gotErr)
	}
}

func TestIsolationBetweenRegions(t *testing.T) {
	// A write authorized for one region must never touch another —
	// the lambda working-set isolation requirement (§3.1c).
	s, e := testEngine(t)
	r1, err := e.Register("lambda1", 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Register("lambda2", 64)
	if err != nil {
		t.Fatal(err)
	}
	e.Write(r1.Key(), 0, bytes.Repeat([]byte{0xFF}, 64), nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, b := range r2.Bytes() {
		if b != 0 {
			t.Fatal("write to region 1 leaked into region 2")
		}
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("big", 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var smallAt, bigAt sim.Time
	e.Write(r.Key(), 0, make([]byte, 1000), func(error) { smallAt = s.Now() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	e.Write(r.Key(), 0, make([]byte, 1_000_000), func(error) { bigAt = s.Now() - start })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if bigAt < 100*smallAt {
		t.Errorf("1MB transfer (%v) not ≫ 1KB transfer (%v)", bigAt, smallAt)
	}
	// 1 MB at 10 Gbps is 800 µs of serialization alone.
	if bigAt < 800*time.Microsecond {
		t.Errorf("1MB transfer = %v, want >= 800µs", bigAt)
	}
}

func TestPackets(t *testing.T) {
	_, e := testEngine(t)
	tests := []struct {
		bytes, want int
	}{{0, 1}, {1, 1}, {1400, 1}, {1401, 2}, {14000, 10}}
	for _, tt := range tests {
		if got := e.Packets(tt.bytes); got != tt.want {
			t.Errorf("Packets(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestRegisterInvalidSize(t *testing.T) {
	_, e := testEngine(t)
	if _, err := e.Register("zero", 0); err == nil {
		t.Error("Register(0) succeeded")
	}
	if _, err := e.RegisterBuffer("empty", nil); err == nil {
		t.Error("RegisterBuffer(nil) succeeded")
	}
}

func TestWriteCopiesAtSubmit(t *testing.T) {
	// Regression: the completion used to copy `data` at doneAt, so a
	// caller reusing a pooled buffer (the transport's sync.Pool packet
	// buffers do exactly this) corrupted the committed payload.
	s, e := testEngine(t)
	r, err := e.Register("staging", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 1000)
	e.Write(r.Key(), 0, data, nil)
	// The caller reuses its buffer before the completion fires.
	for i := range data {
		data[i] = 0xEE
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for i, b := range r.Bytes()[:1000] {
		if b != 0xAB {
			t.Fatalf("region[%d] = %#x, want %#x: committed bytes aliased the caller's buffer", i, b, 0xAB)
		}
	}
}

func TestReadRoundTrip(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("kv", 4096)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0x5A}, 256)
	copy(r.Bytes()[128:], want)
	var got []byte
	var doneAt sim.Time
	e.Read(r.Key(), 128, 256, func(b []byte, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = append(got, b...) // b is pooled; copy out
		doneAt = s.Now()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read returned wrong bytes")
	}
	if doneAt <= 0 {
		t.Error("read completed instantaneously; no transfer time charged")
	}
	c := e.Counters()
	if c.Reads != 1 || c.BytesRead != 256 {
		t.Errorf("reads/bytesRead = %d/%d, want 1/256", c.Reads, c.BytesRead)
	}
}

func TestReadSeesCompletionTimeBytes(t *testing.T) {
	// A one-sided read returns the region's contents as of completion
	// time, not submit time — the owner may still be writing.
	s, e := testEngine(t)
	r, err := e.Register("live", 64)
	if err != nil {
		t.Fatal(err)
	}
	var got byte
	e.Read(r.Key(), 0, 1, func(b []byte, err error) { got = b[0] })
	r.Bytes()[0] = 0x42 // owner writes after submit, before completion
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got != 0x42 {
		t.Errorf("read = %#x, want completion-time value 0x42", got)
	}
}

func TestReadErrors(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("small", 16)
	if err != nil {
		t.Fatal(err)
	}
	var badKey, outOfRegion error
	e.Read(RKey(999), 0, 1, func(_ []byte, err error) { badKey = err })
	e.Read(r.Key(), 8, 16, func(_ []byte, err error) { outOfRegion = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(badKey, ErrBadKey) {
		t.Errorf("bad key err = %v, want ErrBadKey", badKey)
	}
	if !errors.Is(outOfRegion, ErrAccessDenied) {
		t.Errorf("out-of-region err = %v, want ErrAccessDenied", outOfRegion)
	}
	if c := e.Counters(); c.Violations != 2 {
		t.Errorf("violations = %d, want 2", c.Violations)
	}
}

func TestQPDoorbellBatching(t *testing.T) {
	// N posted writes flushed by one doorbell: one doorbell charge, N
	// batched ops, all committed.
	s, e := testEngine(t)
	r, err := e.Register("batch", 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	qp := e.NewQP(0)
	const n = 8
	completed := 0
	for i := 0; i < n; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 100)
		qp.PostWrite(r.Key(), i*1024, payload, func(err error) {
			if err != nil {
				t.Errorf("write: %v", err)
			}
			completed++
		})
	}
	if qp.Posted() != n {
		t.Fatalf("posted = %d, want %d", qp.Posted(), n)
	}
	qp.RingDoorbell()
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if completed != n {
		t.Fatalf("completed = %d, want %d", completed, n)
	}
	for i := 0; i < n; i++ {
		if r.Bytes()[i*1024] != byte(i+1) {
			t.Errorf("op %d not committed", i)
		}
	}
	c := e.Counters()
	if c.Doorbells != 1 {
		t.Errorf("doorbells = %d, want 1 for the whole batch", c.Doorbells)
	}
	if c.BatchedOps != n {
		t.Errorf("batchedOps = %d, want %d", c.BatchedOps, n)
	}
}

func TestQPDoorbellCostAmortized(t *testing.T) {
	// A batch of N ops under doorbell cost D finishes D later than a
	// free-doorbell batch — not N*D later: one MMIO covers the batch.
	const n = 16
	const dbCost = 10 * time.Microsecond
	run := func(cost sim.Time) sim.Time {
		s := sim.New(1)
		e := New(s, Config{Link: cluster.Default().Link, PerPacketDMA: 200 * time.Nanosecond, MTU: 1400, DoorbellCost: cost})
		r, err := e.Register("amort", n*1400)
		if err != nil {
			t.Fatal(err)
		}
		qp := e.NewQP(0)
		var last sim.Time
		for i := 0; i < n; i++ {
			qp.PostWrite(r.Key(), i*1400, make([]byte, 1400), func(error) { last = s.Now() })
		}
		qp.RingDoorbell()
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	free, charged := run(0), run(dbCost)
	if got := charged - free; got != dbCost {
		t.Errorf("batched doorbell added %v, want exactly %v (one charge per batch)", got, dbCost)
	}
}

func TestQPWindowStallsAndCompletion(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("win", 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	qp := e.NewQP(2)
	const n = 5
	completed := 0
	for i := 0; i < n; i++ {
		qp.PostWrite(r.Key(), 0, make([]byte, 1400), func(error) { completed++ })
	}
	qp.RingDoorbell()
	if qp.Outstanding() != 2 {
		t.Errorf("outstanding = %d, want window limit 2", qp.Outstanding())
	}
	if c := e.Counters(); c.WindowStalls != n-2 {
		t.Errorf("windowStalls = %d, want %d", c.WindowStalls, n-2)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if completed != n {
		t.Errorf("completed = %d, want %d: deferred ops must issue as the window opens", completed, n)
	}
	if qp.Outstanding() != 0 {
		t.Errorf("outstanding = %d after idle, want 0", qp.Outstanding())
	}
}

func TestQPReadsScaleWithWindow(t *testing.T) {
	// SMART-style behavior in miniature: a wider outstanding window
	// overlaps request hops with link serialization, finishing a fixed
	// op count sooner — up to the bandwidth bound.
	elapsed := func(window int) sim.Time {
		s := sim.New(1)
		e := New(s, Config{Link: cluster.Default().Link, PerPacketDMA: 200 * time.Nanosecond, MTU: 1400})
		r, err := e.Register("curve", 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		qp := e.NewQP(window)
		var last sim.Time
		for i := 0; i < 64; i++ {
			qp.PostRead(r.Key(), 0, 128, func([]byte, error) { last = s.Now() })
		}
		qp.RingDoorbell()
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	w1, w8 := elapsed(1), elapsed(8)
	if w8 >= w1 {
		t.Errorf("window 8 (%v) not faster than window 1 (%v)", w8, w1)
	}
}

func TestQPErrorsSkipWindow(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("ok", 1024)
	if err != nil {
		t.Fatal(err)
	}
	qp := e.NewQP(1)
	var badErr error
	goodDone := false
	qp.PostWrite(RKey(999), 0, []byte("x"), func(err error) { badErr = err })
	qp.PostRead(r.Key(), 0, 16, func(_ []byte, err error) { goodDone = err == nil })
	qp.RingDoorbell()
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(badErr, ErrBadKey) {
		t.Errorf("bad op err = %v, want ErrBadKey", badErr)
	}
	if !goodDone {
		t.Error("valid op behind a faulted one never completed")
	}
}

func TestDescribeExposesCounters(t *testing.T) {
	s, e := testEngine(t)
	reg := monitor.NewRegistry()
	if err := e.Describe(reg, map[string]string{"nic": "n0"}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Register("m", 4096)
	if err != nil {
		t.Fatal(err)
	}
	e.Write(r.Key(), 0, make([]byte, 1000), nil)
	e.Read(r.Key(), 0, 100, nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	out := reg.Render()
	for _, want := range []string{
		`lnic_rdma_writes_total{nic="n0"} 1`,
		`lnic_rdma_reads_total{nic="n0"} 1`,
		`lnic_rdma_bytes_written_total{nic="n0"} 1000`,
		`lnic_rdma_bytes_read_total{nic="n0"} 100`,
		`lnic_rdma_doorbells_total{nic="n0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
