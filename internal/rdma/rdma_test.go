package rdma

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lambdanic/internal/cluster"
	"lambdanic/internal/sim"
)

func testEngine(t *testing.T) (*sim.Sim, *Engine) {
	t.Helper()
	s := sim.New(1)
	e := New(s, Config{
		Link:         cluster.Default().Link,
		PerPacketDMA: 200 * time.Nanosecond,
		MTU:          1400,
	})
	return s, e
}

func TestRegisterAndWrite(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("img", 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 1000)
	var doneErr error
	var doneAt sim.Time
	e.Write(r.Key(), 100, data, func(err error) {
		doneErr = err
		doneAt = s.Now()
	})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if doneErr != nil {
		t.Fatalf("write: %v", doneErr)
	}
	if doneAt <= 0 {
		t.Error("write completed instantaneously; no transfer time charged")
	}
	if !bytes.Equal(r.Bytes()[100:1100], data) {
		t.Error("data not committed to region")
	}
	writes, wbytes, violations := e.Stats()
	if writes != 1 || wbytes != 1000 || violations != 0 {
		t.Errorf("stats = %d/%d/%d", writes, wbytes, violations)
	}
}

func TestWriteBadKey(t *testing.T) {
	s, e := testEngine(t)
	var gotErr error
	e.Write(RKey(999), 0, []byte("x"), func(err error) { gotErr = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey", gotErr)
	}
}

func TestWriteOutOfRegion(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("small", 16)
	if err != nil {
		t.Fatal(err)
	}
	var gotErr error
	e.Write(r.Key(), 10, []byte("0123456789"), func(err error) { gotErr = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", gotErr)
	}
	if _, _, violations := e.Stats(); violations != 1 {
		t.Errorf("violations = %d, want 1", violations)
	}
}

func TestDeregisterRevokesKey(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("tmp", 64)
	if err != nil {
		t.Fatal(err)
	}
	e.Deregister(r)
	var gotErr error
	e.Write(r.Key(), 0, []byte("x"), func(err error) { gotErr = err })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(gotErr, ErrBadKey) {
		t.Errorf("err = %v, want ErrBadKey after deregister", gotErr)
	}
}

func TestIsolationBetweenRegions(t *testing.T) {
	// A write authorized for one region must never touch another —
	// the lambda working-set isolation requirement (§3.1c).
	s, e := testEngine(t)
	r1, err := e.Register("lambda1", 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Register("lambda2", 64)
	if err != nil {
		t.Fatal(err)
	}
	e.Write(r1.Key(), 0, bytes.Repeat([]byte{0xFF}, 64), nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	for _, b := range r2.Bytes() {
		if b != 0 {
			t.Fatal("write to region 1 leaked into region 2")
		}
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	s, e := testEngine(t)
	r, err := e.Register("big", 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var smallAt, bigAt sim.Time
	e.Write(r.Key(), 0, make([]byte, 1000), func(error) { smallAt = s.Now() })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	start := s.Now()
	e.Write(r.Key(), 0, make([]byte, 1_000_000), func(error) { bigAt = s.Now() - start })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if bigAt < 100*smallAt {
		t.Errorf("1MB transfer (%v) not ≫ 1KB transfer (%v)", bigAt, smallAt)
	}
	// 1 MB at 10 Gbps is 800 µs of serialization alone.
	if bigAt < 800*time.Microsecond {
		t.Errorf("1MB transfer = %v, want >= 800µs", bigAt)
	}
}

func TestPackets(t *testing.T) {
	_, e := testEngine(t)
	tests := []struct {
		bytes, want int
	}{{0, 1}, {1, 1}, {1400, 1}, {1401, 2}, {14000, 10}}
	for _, tt := range tests {
		if got := e.Packets(tt.bytes); got != tt.want {
			t.Errorf("Packets(%d) = %d, want %d", tt.bytes, got, tt.want)
		}
	}
}

func TestRegisterInvalidSize(t *testing.T) {
	_, e := testEngine(t)
	if _, err := e.Register("zero", 0); err == nil {
		t.Error("Register(0) succeeded")
	}
}
