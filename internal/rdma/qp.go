package rdma

import "lambdanic/internal/sim"

// workReq is one posted-but-not-yet-completed operation on a QP.
type workReq struct {
	read    bool
	key     RKey
	offset  int
	length  int     // read length
	staging *[]byte // write payload, copied at post time
	doneW   func(error)
	doneR   func([]byte, error)
}

// QP is a queue pair: a submission ring that accumulates work requests
// until a doorbell flushes them, plus a bounded outstanding-request
// window. Posting is free in virtual time (the host writes a WQE into
// host memory); RingDoorbell pays the MMIO doorbell cost once for the
// whole batch — the SMART doorbell-batching optimization — and then
// issues operations subject to the window: at most `window` operations
// are in flight at once, the rest wait for completions to retire and
// are counted as window stalls.
//
// A window of 0 means unlimited (every flushed operation issues
// immediately, back-to-back on the shared link).
type QP struct {
	e      *Engine
	window int

	ring        []workReq // posted, awaiting a doorbell
	pending     []workReq // doorbelled, awaiting a window slot
	outstanding int
}

// NewQP creates a queue pair with the given outstanding-request
// window (0 = unlimited).
func (e *Engine) NewQP(window int) *QP {
	if window < 0 {
		window = 0
	}
	return &QP{e: e, window: window}
}

// Window returns the QP's outstanding-request window (0 = unlimited).
func (q *QP) Window() int { return q.window }

// Posted returns the number of work requests in the submission ring
// waiting for a doorbell.
func (q *QP) Posted() int { return len(q.ring) }

// Outstanding returns the number of in-flight operations.
func (q *QP) Outstanding() int { return q.outstanding }

// PostWrite queues a write work request. The payload is copied now, so
// the caller may reuse data immediately. Nothing is issued until
// RingDoorbell.
func (q *QP) PostWrite(key RKey, offset int, data []byte, done func(error)) {
	staging := getStaging(len(data))
	copy(*staging, data)
	q.ring = append(q.ring, workReq{key: key, offset: offset, staging: staging, doneW: done})
}

// PostRead queues a read work request. done receives pooled bytes
// valid only during the callback. Nothing is issued until RingDoorbell.
func (q *QP) PostRead(key RKey, offset, length int, done func([]byte, error)) {
	q.ring = append(q.ring, workReq{read: true, key: key, offset: offset, length: length, doneR: done})
}

// RingDoorbell flushes the submission ring: one doorbell (one MMIO
// charge) covers every posted request. Requests beyond the window are
// deferred until earlier ones complete, each deferral counted as a
// window stall.
func (q *QP) RingDoorbell() {
	if len(q.ring) == 0 {
		return
	}
	q.e.doorbells.Add(1)
	q.e.batchedOps.Add(uint64(len(q.ring)))
	q.pending = append(q.pending, q.ring...)
	q.ring = q.ring[:0]
	q.drain(q.e.sim.Now() + q.e.cfg.DoorbellCost)
	if len(q.pending) > 0 {
		q.e.windowStalls.Add(uint64(len(q.pending)))
	}
}

// drain issues pending operations while the window has room. `at` is
// the earliest the first issued operation may touch the link.
func (q *QP) drain(at sim.Time) {
	for len(q.pending) > 0 && (q.window == 0 || q.outstanding < q.window) {
		wr := q.pending[0]
		// Shift rather than re-slice so retired entries don't pin
		// staging buffers via the backing array.
		copy(q.pending, q.pending[1:])
		q.pending = q.pending[:len(q.pending)-1]
		q.issue(wr, at)
	}
}

// issue validates and launches one work request. Faulted requests
// complete immediately and never occupy a window slot.
func (q *QP) issue(wr workReq, at sim.Time) {
	if wr.read {
		region, ok := q.e.check(wr.key, wr.offset, wr.length)
		if !ok {
			if wr.doneR != nil {
				wr.doneR(nil, q.e.accessErr(wr.key, wr.offset, wr.length))
			}
			return
		}
		q.outstanding++
		q.e.issueRead(region, wr.offset, wr.length, at, func(b []byte, err error) {
			if wr.doneR != nil {
				wr.doneR(b, err)
			}
			q.retire()
		})
		return
	}
	region, ok := q.e.check(wr.key, wr.offset, len(*wr.staging))
	if !ok {
		err := q.e.accessErr(wr.key, wr.offset, len(*wr.staging))
		putStaging(wr.staging)
		if wr.doneW != nil {
			wr.doneW(err)
		}
		return
	}
	q.outstanding++
	q.e.issueWrite(region, wr.offset, wr.staging, at, func(err error) {
		if wr.doneW != nil {
			wr.doneW(err)
		}
		q.retire()
	})
}

// retire frees a window slot at a completion and issues the next
// deferred request, if any, at the current virtual time (the doorbell
// for it was already rung).
func (q *QP) retire() {
	q.outstanding--
	q.drain(q.e.sim.Now())
}
