// Package rdma simulates the RDMA (RoCEv2-style) path λ-NIC uses for
// multi-packet RPCs (paper §4.2.1 D3): the sender writes the message
// payload directly into a registered region of NIC memory; when the
// write completes, a trigger event tells the matching lambda to read
// the data from that location.
//
// The engine provides both the protection-domain semantics (registered
// memory regions with bounds- and key-checked access — the isolation
// the paper requires between lambdas' working sets, §3.1c) and the
// timing model (per-packet DMA cost plus link serialization) used by
// the λ-NIC backend for data-intensive workloads like the image
// transformer.
package rdma

import (
	"errors"
	"fmt"

	"lambdanic/internal/cluster"
	"lambdanic/internal/sim"
)

// RKey authorizes remote access to one registered region.
type RKey uint32

// Region is a registered memory region (protection domain entry).
type Region struct {
	key  RKey
	buf  []byte
	name string
}

// Bytes exposes the region's backing store to its owner (the lambda
// reading RDMA-committed data).
func (r *Region) Bytes() []byte { return r.buf }

// Name returns the region's label.
func (r *Region) Name() string { return r.name }

// Key returns the region's remote key.
func (r *Region) Key() RKey { return r.key }

// Engine errors.
var (
	ErrBadKey       = errors.New("rdma: unknown or revoked rkey")
	ErrAccessDenied = errors.New("rdma: write outside registered region")
)

// Config tunes the engine's timing model.
type Config struct {
	Link cluster.LinkConfig
	// PerPacketDMA is the NIC-side DMA engine cost per wire packet.
	PerPacketDMA sim.Time
	// MTU is the wire packet payload size.
	MTU int
}

// Engine is a simulated RDMA NIC engine: registration, key-checked
// writes, and completion events on the simulation clock.
type Engine struct {
	sim     *sim.Sim
	cfg     Config
	regions map[RKey]*Region
	nextKey RKey

	// linkFreeAt serializes transfers on the shared 10 G link:
	// concurrent writes queue behind each other's serialization time,
	// so bulk-transfer throughput is bandwidth-bound.
	linkFreeAt sim.Time

	// Stats.
	writes       uint64
	bytesWritten uint64
	violations   uint64
}

// New constructs an engine bound to the simulation.
func New(s *sim.Sim, cfg Config) *Engine {
	if cfg.MTU <= 0 {
		cfg.MTU = 1400
	}
	return &Engine{sim: s, cfg: cfg, regions: make(map[RKey]*Region), nextKey: 1}
}

// Register allocates and registers a region of the given size,
// returning it and its remote key.
func (e *Engine) Register(name string, size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rdma: invalid region size %d", size)
	}
	r := &Region{key: e.nextKey, buf: make([]byte, size), name: name}
	e.nextKey++
	e.regions[r.key] = r
	return r, nil
}

// Deregister revokes a region's key.
func (e *Engine) Deregister(r *Region) {
	delete(e.regions, r.key)
}

// Write performs an RDMA write of data into the region identified by
// key at the given offset, invoking done (in virtual time) when the
// last packet has been committed — the event that triggers the lambda
// (D3). The transfer cost is link serialization plus per-packet DMA.
func (e *Engine) Write(key RKey, offset int, data []byte, done func(error)) {
	complete := func(err error) {
		if done != nil {
			done(err)
		}
	}
	region, ok := e.regions[key]
	if !ok {
		e.violations++
		complete(fmt.Errorf("%w: %d", ErrBadKey, key))
		return
	}
	if offset < 0 || offset+len(data) > len(region.buf) {
		e.violations++
		complete(fmt.Errorf("%w: [%d:%d) of %d", ErrAccessDenied, offset, offset+len(data), len(region.buf)))
		return
	}
	packets := (len(data) + e.cfg.MTU - 1) / e.cfg.MTU
	if packets == 0 {
		packets = 1
	}
	// The link is a shared serial resource: this transfer starts when
	// the previous one's bytes are off the wire.
	ser := e.cfg.Link.Serialization(len(data))
	start := e.sim.Now()
	if e.linkFreeAt > start {
		start = e.linkFreeAt
	}
	e.linkFreeAt = start + ser
	doneAt := start + ser + e.cfg.Link.WireLatency + e.cfg.Link.SwitchLatency +
		sim.Time(packets)*e.cfg.PerPacketDMA
	e.writes++
	e.bytesWritten += uint64(len(data))
	e.sim.ScheduleAt(doneAt, func() {
		copy(region.buf[offset:], data)
		complete(nil)
	})
}

// Packets returns the wire packet count for a payload under the
// engine's MTU — the value the NIC charges reordering for.
func (e *Engine) Packets(payloadBytes int) int {
	if payloadBytes <= 0 {
		return 1
	}
	return (payloadBytes + e.cfg.MTU - 1) / e.cfg.MTU
}

// Stats reports engine counters.
func (e *Engine) Stats() (writes, bytes, violations uint64) {
	return e.writes, e.bytesWritten, e.violations
}
