// Package rdma simulates the RDMA (RoCEv2-style) path λ-NIC uses for
// multi-packet RPCs (paper §4.2.1 D3): the sender writes the message
// payload directly into a registered region of NIC memory; when the
// write completes, a trigger event tells the matching lambda to read
// the data from that location.
//
// The engine provides both the protection-domain semantics (registered
// memory regions with bounds- and key-checked access — the isolation
// the paper requires between lambdas' working sets, §3.1c) and the
// timing model (per-packet DMA cost plus link serialization) used by
// the λ-NIC backend for data-intensive workloads like the image
// transformer.
//
// Beyond the plain Write verb the engine models what makes one-sided
// RDMA actually scale (the SMART techniques):
//
//   - a Read verb, so remote state (the EMEM-resident KV table) can be
//     fetched without invoking a lambda at all;
//   - doorbell batching via queue pairs (QP): PostWrite/PostRead queue
//     work requests in a submission ring and a single RingDoorbell
//     flushes the batch, paying the MMIO doorbell cost once instead of
//     per operation;
//   - bounded outstanding-request windows: each QP caps in-flight
//     operations, deferring the rest until completions retire — the
//     knob behind the SMART-style throughput-vs-window curve.
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"lambdanic/internal/cluster"
	"lambdanic/internal/monitor"
	"lambdanic/internal/sim"
)

// RKey authorizes remote access to one registered region.
type RKey uint32

// Region is a registered memory region (protection domain entry).
type Region struct {
	key  RKey
	buf  []byte
	name string
}

// Bytes exposes the region's backing store to its owner (the lambda
// reading RDMA-committed data).
func (r *Region) Bytes() []byte { return r.buf }

// Name returns the region's label.
func (r *Region) Name() string { return r.name }

// Key returns the region's remote key.
func (r *Region) Key() RKey { return r.key }

// Engine errors.
var (
	ErrBadKey       = errors.New("rdma: unknown or revoked rkey")
	ErrAccessDenied = errors.New("rdma: access outside registered region")
)

// Config tunes the engine's timing model.
type Config struct {
	Link cluster.LinkConfig
	// PerPacketDMA is the NIC-side DMA engine cost per wire packet.
	PerPacketDMA sim.Time
	// MTU is the wire packet payload size.
	MTU int
	// DoorbellCost is the MMIO cost of ringing a doorbell. It is paid
	// once per doorbell (so a batched flush amortizes it across the
	// batch) before the first operation reaches the link. Zero (the
	// default) preserves the original cost model, where doorbells are
	// free and only serialization + DMA are charged.
	DoorbellCost sim.Time
}

// Counters is a snapshot of the engine's monotonic counters. Loads are
// atomic, so a snapshot may be taken from any goroutine (the monitor
// registry scrapes at render time) while the simulation runs.
type Counters struct {
	Writes       uint64 // completed-or-issued write verbs
	Reads        uint64 // completed-or-issued read verbs
	BytesWritten uint64
	BytesRead    uint64
	Violations   uint64 // bad-rkey or out-of-bounds accesses
	Doorbells    uint64 // doorbell rings (one per unbatched verb)
	BatchedOps   uint64 // operations flushed through QP doorbells
	WindowStalls uint64 // operations deferred by a full QP window
}

// Engine is a simulated RDMA NIC engine: registration, key-checked
// one-sided reads and writes, doorbell-batched queue pairs, and
// completion events on the simulation clock.
type Engine struct {
	sim     *sim.Sim
	cfg     Config
	regions map[RKey]*Region
	nextKey RKey

	// linkFreeAt serializes transfers on the shared 10 G link:
	// concurrent operations queue behind each other's serialization
	// time, so bulk-transfer throughput is bandwidth-bound.
	linkFreeAt sim.Time

	// Stats. Atomics: written from the simulation goroutine, read by
	// monitor scrape-time CounterFuncs on the HTTP serving goroutine.
	writes       atomic.Uint64
	reads        atomic.Uint64
	bytesWritten atomic.Uint64
	bytesRead    atomic.Uint64
	violations   atomic.Uint64
	doorbells    atomic.Uint64
	batchedOps   atomic.Uint64
	windowStalls atomic.Uint64
}

// New constructs an engine bound to the simulation.
func New(s *sim.Sim, cfg Config) *Engine {
	if cfg.MTU <= 0 {
		cfg.MTU = 1400
	}
	return &Engine{sim: s, cfg: cfg, regions: make(map[RKey]*Region), nextKey: 1}
}

// Register allocates and registers a region of the given size,
// returning it and its remote key.
func (e *Engine) Register(name string, size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rdma: invalid region size %d", size)
	}
	return e.RegisterBuffer(name, make([]byte, size))
}

// RegisterBuffer registers caller-owned memory as a region without
// copying — how the KV store exposes its EMEM-resident table for
// one-sided GETs. The caller keeps writing the buffer; remote reads
// observe whatever bytes are there at completion time.
func (e *Engine) RegisterBuffer(name string, buf []byte) (*Region, error) {
	if len(buf) == 0 {
		return nil, fmt.Errorf("rdma: invalid region size %d", len(buf))
	}
	r := &Region{key: e.nextKey, buf: buf, name: name}
	e.nextKey++
	e.regions[r.key] = r
	return r, nil
}

// Deregister revokes a region's key.
func (e *Engine) Deregister(r *Region) {
	delete(e.regions, r.key)
}

// stagingPool recycles submit-time payload copies so the hot path does
// not allocate per operation.
var stagingPool = sync.Pool{New: func() any { b := make([]byte, 0, 2048); return &b }}

func getStaging(n int) *[]byte {
	bp := stagingPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putStaging(bp *[]byte) {
	*bp = (*bp)[:0]
	stagingPool.Put(bp)
}

// Write performs an RDMA write of data into the region identified by
// key at the given offset, invoking done (in virtual time) when the
// last packet has been committed — the event that triggers the lambda
// (D3). The transfer cost is link serialization plus per-packet DMA
// (plus the doorbell cost, when configured: a bare Write rings its own
// doorbell).
//
// The payload is copied when Write returns, so the caller may
// immediately reuse data — e.g. return it to a sync.Pool — without
// corrupting the committed bytes.
func (e *Engine) Write(key RKey, offset int, data []byte, done func(error)) {
	region, ok := e.check(key, offset, len(data))
	if !ok {
		if done != nil {
			done(e.accessErr(key, offset, len(data)))
		}
		return
	}
	// Copy at submit time: the completion fires later in virtual time
	// and the caller's buffer (often pooled) may be reused by then.
	staging := getStaging(len(data))
	copy(*staging, data)
	e.doorbells.Add(1)
	e.issueWrite(region, offset, staging, e.sim.Now()+e.cfg.DoorbellCost, func(error) {
		if done != nil {
			done(nil)
		}
	})
}

// Read performs a one-sided RDMA read of length bytes from the region
// identified by key at the given offset. done receives the bytes as
// they stood at completion time; the slice is pooled and valid only
// for the duration of the callback. The cost is a request hop, link
// serialization of the response payload, the return hop, and per-packet
// DMA on the NIC fetching the bytes from EMEM — no lambda is invoked.
func (e *Engine) Read(key RKey, offset, length int, done func([]byte, error)) {
	region, ok := e.check(key, offset, length)
	if !ok {
		if done != nil {
			done(nil, e.accessErr(key, offset, length))
		}
		return
	}
	e.doorbells.Add(1)
	e.issueRead(region, offset, length, e.sim.Now()+e.cfg.DoorbellCost, done)
}

// check validates an access, charging a violation on failure.
func (e *Engine) check(key RKey, offset, length int) (*Region, bool) {
	region, ok := e.regions[key]
	if !ok || offset < 0 || offset+length > len(region.buf) {
		e.violations.Add(1)
		return nil, false
	}
	return region, true
}

func (e *Engine) accessErr(key RKey, offset, length int) error {
	region, ok := e.regions[key]
	if !ok {
		return fmt.Errorf("%w: %d", ErrBadKey, key)
	}
	return fmt.Errorf("%w: [%d:%d) of %d", ErrAccessDenied, offset, offset+length, len(region.buf))
}

// issueWrite puts a validated write on the link no earlier than `at`,
// scheduling the commit + completion. staging is owned by the engine
// and recycled after commit.
func (e *Engine) issueWrite(region *Region, offset int, staging *[]byte, at sim.Time, done func(error)) sim.Time {
	n := len(*staging)
	doneAt := e.linkTime(n, at)
	e.writes.Add(1)
	e.bytesWritten.Add(uint64(n))
	e.sim.ScheduleAt(doneAt, func() {
		copy(region.buf[offset:], *staging)
		putStaging(staging)
		if done != nil {
			done(nil)
		}
	})
	return doneAt
}

// issueRead puts a validated read on the link no earlier than `at`.
// The extra WireLatency+SwitchLatency models the request hop of the
// round trip; the response payload pays serialization + DMA like a
// write in the opposite direction.
func (e *Engine) issueRead(region *Region, offset, length int, at sim.Time, done func([]byte, error)) sim.Time {
	doneAt := e.linkTime(length, at) + e.cfg.Link.WireLatency + e.cfg.Link.SwitchLatency
	e.reads.Add(1)
	e.bytesRead.Add(uint64(length))
	e.sim.ScheduleAt(doneAt, func() {
		if done == nil {
			return
		}
		staging := getStaging(length)
		copy(*staging, region.buf[offset:offset+length])
		done(*staging, nil)
		putStaging(staging)
	})
	return doneAt
}

// linkTime claims the shared link for an n-byte payload starting no
// earlier than `at` and returns the time the last byte has been
// serialized, propagated through the switch, and DMA-committed.
func (e *Engine) linkTime(n int, at sim.Time) sim.Time {
	ser := e.cfg.Link.Serialization(n)
	start := at
	if now := e.sim.Now(); start < now {
		start = now
	}
	if e.linkFreeAt > start {
		start = e.linkFreeAt
	}
	e.linkFreeAt = start + ser
	return start + ser + e.cfg.Link.WireLatency + e.cfg.Link.SwitchLatency +
		sim.Time(e.Packets(n))*e.cfg.PerPacketDMA
}

// Packets returns the wire packet count for a payload under the
// engine's MTU — the value the NIC charges reordering for.
func (e *Engine) Packets(payloadBytes int) int {
	if payloadBytes <= 0 {
		return 1
	}
	return (payloadBytes + e.cfg.MTU - 1) / e.cfg.MTU
}

// Counters returns a snapshot of the engine's counters.
func (e *Engine) Counters() Counters {
	return Counters{
		Writes:       e.writes.Load(),
		Reads:        e.reads.Load(),
		BytesWritten: e.bytesWritten.Load(),
		BytesRead:    e.bytesRead.Load(),
		Violations:   e.violations.Load(),
		Doorbells:    e.doorbells.Load(),
		BatchedOps:   e.batchedOps.Load(),
		WindowStalls: e.windowStalls.Load(),
	}
}

// Describe registers the engine's counters with a monitor registry as
// scrape-time counter funcs, consistent with the rest of the fleet's
// exposition (lnic_rdma_* families).
func (e *Engine) Describe(reg *monitor.Registry, labels map[string]string) error {
	for _, m := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"lnic_rdma_writes_total", "One-sided RDMA write verbs issued.", e.writes.Load},
		{"lnic_rdma_reads_total", "One-sided RDMA read verbs issued.", e.reads.Load},
		{"lnic_rdma_bytes_written_total", "Bytes committed by RDMA writes.", e.bytesWritten.Load},
		{"lnic_rdma_bytes_read_total", "Bytes fetched by RDMA reads.", e.bytesRead.Load},
		{"lnic_rdma_violations_total", "Bad-rkey or out-of-bounds RDMA accesses.", e.violations.Load},
		{"lnic_rdma_doorbells_total", "Doorbell rings (batched and unbatched).", e.doorbells.Load},
		{"lnic_rdma_batched_ops_total", "Operations flushed through QP doorbell batches.", e.batchedOps.Load},
		{"lnic_rdma_window_stalls_total", "Operations deferred by a full QP outstanding window.", e.windowStalls.Load},
	} {
		if err := reg.CounterFunc(m.name, m.help, labels, m.fn); err != nil {
			return err
		}
	}
	return nil
}
