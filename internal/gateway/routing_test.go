package gateway

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/dispatch"
	"lambdanic/internal/transport"
)

func TestFlowStatsObserveAndTopK(t *testing.T) {
	fs := newFlowStats()
	for i := 0; i < 100; i++ {
		fs.observe(7)
	}
	for i := 0; i < 10; i++ {
		fs.observe(8)
	}
	fs.observe(9)
	top := fs.topK(2)
	if len(top) != 2 || top[0].Flow != 7 || top[1].Flow != 8 {
		t.Fatalf("topK = %+v", top)
	}
	if top[0].Rate != 100 {
		t.Fatalf("rate = %d, want 100", top[0].Rate)
	}
}

func TestFlowStatsDecayReclaims(t *testing.T) {
	fs := newFlowStats()
	fs.observe(5)
	fs.decay()
	if got := fs.topK(8); len(got) != 0 {
		t.Fatalf("one-shot flow survived decay: %+v", got)
	}
	// An elephant decays but survives.
	for i := 0; i < 64; i++ {
		fs.observe(6)
	}
	fs.decay()
	top := fs.topK(1)
	if len(top) != 1 || top[0].Flow != 6 || top[0].Rate != 32 {
		t.Fatalf("elephant after decay = %+v", top)
	}
}

func TestFlowStatsZeroFlowIgnored(t *testing.T) {
	fs := newFlowStats()
	fs.observe(0)
	if got := fs.topK(8); len(got) != 0 {
		t.Fatalf("flow 0 tracked: %+v", got)
	}
}

// TestRebalancerMigratesElephant: an elephant flow on an overloaded
// worker is migrated to an underloaded one; subsequent requests honor
// the new pin; mice stay put.
func TestRebalancerMigratesElephant(t *testing.T) {
	n := transport.NewMemNetwork(43)
	names := []string{"w1", "w2", "w3"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)

	// The elephant: one hot client flow.
	hot := testClient(t, n)
	ctx := context.Background()
	var before string
	for i := 0; i < 50; i++ {
		resp, err := hot.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		before, _, _ = strings.Cut(string(resp), ":")
	}

	// Load report: the elephant's current owner is overloaded.
	loads := func() []dispatch.Load {
		out := make([]dispatch.Load, len(names))
		for i, name := range names {
			load := 1.0
			if name == before {
				load = 100
			}
			out[i] = dispatch.Load{Worker: name, Load: load}
		}
		return out
	}
	applied := gw.RebalanceOnce(RebalanceConfig{TopK: 4, ImbalanceRatio: 1.5, Loads: loads})
	if applied == 0 {
		t.Fatal("rebalance applied no migrations")
	}
	if gw.Migrations() == 0 || gw.PinnedFlows() == 0 {
		t.Fatalf("Migrations = %d, PinnedFlows = %d", gw.Migrations(), gw.PinnedFlows())
	}

	resp, err := hot.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	after, _, _ := strings.Cut(string(resp), ":")
	if after == before {
		t.Fatalf("elephant still on overloaded worker %s after migration", after)
	}
}

// TestRebalancerBalancedFleetNoops: with even load, nothing migrates.
func TestRebalancerBalancedFleetNoops(t *testing.T) {
	n := transport.NewMemNetwork(47)
	names := []string{"w1", "w2"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)
	cli := testClient(t, n)
	for i := 0; i < 30; i++ {
		if _, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	loads := func() []dispatch.Load {
		return []dispatch.Load{{Worker: "w1", Load: 5}, {Worker: "w2", Load: 5}}
	}
	if applied := gw.RebalanceOnce(RebalanceConfig{Loads: loads}); applied != 0 {
		t.Fatalf("balanced fleet migrated %d flows", applied)
	}
	if gw.PinnedFlows() != 0 {
		t.Fatalf("PinnedFlows = %d, want 0", gw.PinnedFlows())
	}
}

// TestEvictDropsPinsToEvictedWorker: a pin whose target is evicted is
// dropped (the flow reverts to its ring owner); pins to survivors are
// remapped and keep working.
func TestEvictDropsPinsToEvictedWorker(t *testing.T) {
	n := transport.NewMemNetwork(53)
	names := []string{"w1", "w2", "w3"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)

	wr := gw.routes.Load().m[1]
	flow := dispatch.FlowKey("client", 1)
	owner := wr.ownerIndex(flow)
	target := (owner + 1) % len(names)
	gw.applyMigrations(1, []dispatch.Migration{{Flow: flow, From: names[owner], To: names[target]}})
	if gw.PinnedFlows() != 1 {
		t.Fatalf("PinnedFlows = %d, want 1", gw.PinnedFlows())
	}

	gw.EvictWorker(workers[target])
	if gw.PinnedFlows() != 0 {
		t.Fatalf("pin to evicted worker survived: PinnedFlows = %d", gw.PinnedFlows())
	}
	// The flow now routes by ring over the survivors — never to the
	// evicted target.
	cli := testClient(t, n)
	resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	got, _, _ := strings.Cut(string(resp), ":")
	if got == names[target] {
		t.Fatalf("flow routed to evicted worker %s", got)
	}
}

// TestStartRebalancerLifecycle: the background loop runs, migrates
// under skew, and stops cleanly; a second start is a no-op.
func TestStartRebalancerLifecycle(t *testing.T) {
	n := transport.NewMemNetwork(59)
	names := []string{"w1", "w2"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)

	hot := testClient(t, n)
	ctx := context.Background()
	var ownerName string
	for i := 0; i < 40; i++ {
		resp, err := hot.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		ownerName, _, _ = strings.Cut(string(resp), ":")
	}
	loads := func() []dispatch.Load {
		out := make([]dispatch.Load, len(names))
		for i, name := range names {
			load := 1.0
			if name == ownerName {
				load = 50
			}
			out[i] = dispatch.Load{Worker: name, Load: load}
		}
		return out
	}
	stop := gw.StartRebalancer(RebalanceConfig{Every: 5 * time.Millisecond, Loads: loads})
	stop2 := gw.StartRebalancer(RebalanceConfig{Every: time.Hour})
	stop2() // no-op: first loop keeps running
	deadline := time.Now().Add(2 * time.Second)
	for gw.Migrations() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if gw.Migrations() == 0 {
		t.Fatal("background rebalancer never migrated the elephant")
	}
}

// TestLoadsForFallsBackToInflight: workers missing from the load report
// use the gateway's own in-flight counts.
func TestLoadsForFallsBackToInflight(t *testing.T) {
	n := transport.NewMemNetwork(61)
	gw := newGateway(t, n)
	addrs := []net.Addr{transport.MemAddr("a"), transport.MemAddr("b")}
	gw.SetRoute(1, addrs)
	gw.inflightFor("a").Add(3)
	wr := gw.routes.Load().m[1]
	loads := gw.loadsFor(wr, []dispatch.Load{{Worker: "b", Load: 9}})
	byName := map[string]float64{}
	for _, l := range loads {
		byName[l.Worker] = l.Load
	}
	if byName["a"] != 3 || byName["b"] != 9 {
		t.Fatalf("loads = %v, want a:3 (inflight fallback), b:9 (report)", byName)
	}
}
