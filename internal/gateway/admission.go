package gateway

import (
	"fmt"
	"sync/atomic"
	"time"

	"lambdanic/internal/tenant"
)

// Tenant admission control: before routing, the gateway classifies the
// request's workload ID to its owning tenant and charges the tenant's
// token bucket. Over-quota requests are shed at the edge with
// ErrTenantThrottled — a distinct signal from overload or failure, so
// clients back off instead of retrying hot and telemetry can separate
// "throttled by quota" from "broken".

// ErrTenantThrottled is the gateway's quota-shed sentinel. It is the
// tenant package's ErrThrottled re-exported, so errors.Is matches
// whichever package the caller imports.
var ErrTenantThrottled = tenant.ErrThrottled

// admission is the copy-on-write admission snapshot.
type admission struct {
	adm      *tenant.Admission
	tenantOf func(workloadID uint32) uint32
	// now returns the admission clock reading; defaults to wall time
	// since installation.
	now func() time.Duration
}

// AdmissionOption configures EnableAdmission.
type AdmissionOption func(*admission)

// WithAdmissionClock overrides the admission clock (tests, virtual
// time). fn must be monotonically non-decreasing.
func WithAdmissionClock(fn func() time.Duration) AdmissionOption {
	return func(a *admission) { a.now = fn }
}

// EnableAdmission installs tenant admission control on the forward
// path. tenantOf classifies workload IDs to tenant IDs (typically
// tenant.Registry.OwnerID); adm holds the per-tenant token buckets.
// Pass nil adm to remove admission control.
func (g *Gateway) EnableAdmission(adm *tenant.Admission, tenantOf func(uint32) uint32, opts ...AdmissionOption) error {
	if adm == nil {
		g.admission.Store(nil)
		return nil
	}
	if tenantOf == nil {
		return fmt.Errorf("gateway: EnableAdmission needs a tenant classifier")
	}
	a := &admission{adm: adm, tenantOf: tenantOf}
	for _, o := range opts {
		o(a)
	}
	if a.now == nil {
		epoch := time.Now()
		a.now = func() time.Duration { return time.Since(epoch) }
	}
	g.admission.Store(a)
	return nil
}

// Throttled returns the number of requests shed by tenant admission.
func (g *Gateway) Throttled() uint64 { return g.throttled.Load() }

// admit charges the request against its tenant's bucket; nil error
// admits. Called from handle before any routing work.
func (g *Gateway) admit(workloadID uint32) error {
	a := g.admission.Load()
	if a == nil {
		return nil
	}
	if err := a.adm.Admit(a.tenantOf(workloadID), a.now()); err != nil {
		g.throttled.Add(1)
		if ins := g.instr.Load(); ins != nil && ins.throttled != nil {
			ins.throttled.Inc()
		}
		return err
	}
	return nil
}

// atomicAdmission is atomic.Pointer[admission] named for the struct
// field; kept as its own type so the zero Gateway stays valid.
type atomicAdmission = atomic.Pointer[admission]
