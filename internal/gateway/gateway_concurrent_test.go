package gateway

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdanic/internal/dispatch"
	"lambdanic/internal/transport"
)

// TestGatewayRoutingRaces hammers handle with concurrent SetRoute and
// EvictWorker updates. Run under -race: the forward path must read one
// immutable route snapshot per request, so an update can never change
// the worker set between the attempt-count read and worker selection.
func TestGatewayRoutingRaces(t *testing.T) {
	n := transport.NewMemNetwork(21)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	echoWorker(t, n, "w3")
	gw := newGateway(t, n, WithUpstreamTimeout(200*time.Millisecond))
	all := []net.Addr{
		transport.MemAddr("w1"), transport.MemAddr("w2"), transport.MemAddr("w3"),
	}
	gw.SetRoute(1, all)

	cli := testClient(t, n)
	stop := make(chan struct{})
	var mutations sync.WaitGroup
	mutations.Add(2)
	go func() {
		defer mutations.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Shrink and regrow the worker set, never leaving it empty.
			gw.SetRoute(1, all[:1+i%len(all)])
		}
	}()
	go func() {
		defer mutations.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			gw.EvictWorker(all[i%len(all)])
			gw.SetRoute(1, all)
		}
	}()

	var ok atomic.Uint64
	var callers sync.WaitGroup
	for c := 0; c < 4; c++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				// Calls may fail when an eviction drains them mid-flight;
				// the test's assertion is -race cleanliness plus liveness.
				if _, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x")); err == nil {
					ok.Add(1)
				}
			}
		}()
	}
	callers.Wait()
	close(stop)
	mutations.Wait()
	if ok.Load() == 0 {
		t.Error("no request succeeded under routing churn")
	}
}

// TestGatewayFlowSpreadConcurrent: with 4 workers and many concurrent
// client flows, each flow sticks to exactly one worker while the flows
// collectively cover several workers — affinity without starvation.
func TestGatewayFlowSpreadConcurrent(t *testing.T) {
	n := transport.NewMemNetwork(23)
	names := []string{"w1", "w2", "w3", "w4"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)

	const clients = 24
	const perClient = 20
	perFlow := make([]map[string]int, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		cli := namedClient(t, n, fmt.Sprintf("cc%02d", c))
		wg.Add(1)
		go func(c int, cli *transport.Endpoint) {
			defer wg.Done()
			mine := map[string]int{}
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				resp, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
				if err != nil {
					t.Error(err)
					return
				}
				name, _, _ := strings.Cut(string(resp), ":")
				mine[name]++
			}
			perFlow[c] = mine
		}(c, cli)
	}
	wg.Wait()

	covered := map[string]bool{}
	for c, mine := range perFlow {
		if len(mine) != 1 {
			t.Errorf("client %d scattered across %d workers under concurrency: %v", c, len(mine), mine)
		}
		for name := range mine {
			covered[name] = true
		}
	}
	if len(covered) < 3 {
		t.Errorf("%d flows covered only %d of 4 workers", clients, len(covered))
	}
}

// TestGatewayEvictionNeverRoutesToEvicted: a request whose handle
// snapshot is read after EvictWorker returns must never reach the
// evicted worker, even with traffic in flight during the eviction.
func TestGatewayEvictionNeverRoutesToEvicted(t *testing.T) {
	n := transport.NewMemNetwork(37)
	names := []string{"w1", "w2", "w3"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n, WithUpstreamTimeout(200*time.Millisecond))
	gw.SetRoute(1, workers)

	const victim = "w2"
	var evicted atomic.Bool
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		cli := namedClient(t, n, fmt.Sprintf("ev%02d", c))
		wg.Add(1)
		go func(cli *transport.Endpoint) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 40; i++ {
				// Sample the eviction flag BEFORE the call: if the eviction
				// completed before this request started, the new route
				// snapshot is already published and the victim must be
				// unreachable. Calls racing the eviction (flag false) may
				// still legitimately land on it.
				sawEvicted := evicted.Load()
				resp, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
				if err != nil {
					continue // aborted mid-eviction drain: fine
				}
				name, _, _ := strings.Cut(string(resp), ":")
				if sawEvicted && name == victim {
					t.Errorf("request started after eviction served by evicted worker %s", victim)
				}
			}
		}(cli)
	}
	time.Sleep(10 * time.Millisecond)
	gw.EvictWorker(transport.MemAddr(victim))
	evicted.Store(true)
	wg.Wait()
}

// TestGatewayPinsStableUnderRouteChurn: standing migrations (pins) for
// one workload survive concurrent SetRoute traffic on other workloads
// and evictions of unrelated workers, while requests keep honoring the
// pin. Extends the route-update race coverage to the pinned-flow path.
func TestGatewayPinsStableUnderRouteChurn(t *testing.T) {
	n := transport.NewMemNetwork(41)
	names := []string{"w1", "w2", "w3"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	echoWorker(t, n, "other")
	gw := newGateway(t, n, WithUpstreamTimeout(200*time.Millisecond))
	gw.SetRoute(1, workers)
	gw.SetRoute(2, []net.Addr{transport.MemAddr("other")})

	// Pin the client's flow onto a worker that is NOT its ring owner.
	cli := testClient(t, n)
	wr := gw.routes.Load().m[1]
	flow := dispatch.FlowKey("client", 1)
	owner := wr.ownerIndex(flow)
	target := (owner + 1) % len(names)
	applied := gw.applyMigrations(1, []dispatch.Migration{
		{Flow: flow, From: names[owner], To: names[target]},
	})
	if applied != 1 {
		t.Fatalf("applied = %d, want 1", applied)
	}
	if got := gw.PinnedFlows(); got != 1 {
		t.Fatalf("PinnedFlows = %d, want 1", got)
	}

	// Churn: rewrite workload 2's route and evict+restore a worker that
	// is neither the pin target nor the ring owner of the pinned flow.
	bystander := -1
	for i := range names {
		if i != owner && i != target {
			bystander = i
		}
	}
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(2)
	go func() {
		defer churn.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			gw.SetRoute(2, []net.Addr{transport.MemAddr("other")})
		}
	}()
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			gw.EvictWorker(workers[bystander])
			gw.SetRoute(1, workers)
		}
	}()

	// The pinned flow must keep landing on the pin target... except in
	// windows where SetRoute(1) legitimately cleared the pin (placement
	// rewrite drops standing migrations). Since the churn goroutine
	// rewrites workload 1, accept either the pin target or the ring
	// owner — never anything else, and never an error-free scatter.
	ctx := context.Background()
	for i := 0; i < 60; i++ {
		resp, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			continue // eviction drain race: fine
		}
		got, _, _ := strings.Cut(string(resp), ":")
		if got != names[target] && got != names[owner] {
			t.Fatalf("pinned flow served by %s, want %s (pin) or %s (ring owner)", got, names[target], names[owner])
		}
	}
	close(stop)
	churn.Wait()

	// With the churn stopped, re-apply the pin and verify it holds
	// exactly while workload 2 is rewritten concurrently (untouched
	// entries are shared, so the pin cannot move).
	gw.SetRoute(1, workers)
	gw.applyMigrations(1, []dispatch.Migration{
		{Flow: flow, From: names[owner], To: names[target]},
	})
	stop2 := make(chan struct{})
	var churn2 sync.WaitGroup
	churn2.Add(1)
	go func() {
		defer churn2.Done()
		for {
			select {
			case <-stop2:
				return
			default:
			}
			gw.SetRoute(2, []net.Addr{transport.MemAddr("other")})
		}
	}()
	for i := 0; i < 40; i++ {
		resp, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		got, _, _ := strings.Cut(string(resp), ":")
		if got != names[target] {
			t.Fatalf("pin not honored under unrelated churn: served by %s, want %s", got, names[target])
		}
	}
	close(stop2)
	churn2.Wait()
	if got := gw.PinnedFlows(); got != 1 {
		t.Fatalf("PinnedFlows = %d after unrelated churn, want 1", got)
	}
}
