package gateway

import (
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdanic/internal/transport"
)

// TestGatewayRoutingRaces hammers handle with concurrent SetRoute and
// EvictWorker updates. Run under -race: the forward path must read one
// immutable route snapshot per request, so an update can never change
// the worker set between the attempt-count read and worker selection.
func TestGatewayRoutingRaces(t *testing.T) {
	n := transport.NewMemNetwork(21)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	echoWorker(t, n, "w3")
	gw := newGateway(t, n, WithUpstreamTimeout(200*time.Millisecond))
	all := []net.Addr{
		transport.MemAddr("w1"), transport.MemAddr("w2"), transport.MemAddr("w3"),
	}
	gw.SetRoute(1, all)

	cli := testClient(t, n)
	stop := make(chan struct{})
	var mutations sync.WaitGroup
	mutations.Add(2)
	go func() {
		defer mutations.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Shrink and regrow the worker set, never leaving it empty.
			gw.SetRoute(1, all[:1+i%len(all)])
		}
	}()
	go func() {
		defer mutations.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			gw.EvictWorker(all[i%len(all)])
			gw.SetRoute(1, all)
		}
	}()

	var ok atomic.Uint64
	var callers sync.WaitGroup
	for c := 0; c < 4; c++ {
		callers.Add(1)
		go func() {
			defer callers.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				// Calls may fail when an eviction drains them mid-flight;
				// the test's assertion is -race cleanliness plus liveness.
				if _, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x")); err == nil {
					ok.Add(1)
				}
			}
		}()
	}
	callers.Wait()
	close(stop)
	mutations.Wait()
	if ok.Load() == 0 {
		t.Error("no request succeeded under routing churn")
	}
}

// TestGatewayRoundRobinFairnessConcurrent checks that with 4 workers
// and concurrent callers the per-worker request counts stay within 10%
// of a fair share: the per-workload atomic cursor must hand out a
// distinct slot to every request even when calls race.
func TestGatewayRoundRobinFairnessConcurrent(t *testing.T) {
	n := transport.NewMemNetwork(23)
	names := []string{"w1", "w2", "w3", "w4"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)

	cli := testClient(t, n)
	const callers = 4
	const perCaller = 100
	counts := make([]map[string]int, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			mine := map[string]int{}
			ctx := context.Background()
			for i := 0; i < perCaller; i++ {
				resp, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
				if err != nil {
					t.Error(err)
					return
				}
				name, _, _ := strings.Cut(string(resp), ":")
				mine[name]++
			}
			counts[c] = mine
		}(c)
	}
	wg.Wait()

	total := 0
	byWorker := map[string]int{}
	for _, mine := range counts {
		for name, k := range mine {
			byWorker[name] += k
			total += k
		}
	}
	if total != callers*perCaller {
		t.Fatalf("completed %d calls, want %d", total, callers*perCaller)
	}
	fair := float64(total) / float64(len(names))
	for _, name := range names {
		got := float64(byWorker[name])
		if got < fair*0.9 || got > fair*1.1 {
			t.Errorf("worker %s served %d requests, fair share %.0f ±10%% (%v)",
				name, byWorker[name], fair, byWorker)
		}
	}
}
