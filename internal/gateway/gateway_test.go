package gateway

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lambdanic/internal/transport"
)

// echoWorker starts a worker endpoint that tags responses with its
// name.
func echoWorker(t *testing.T, n *transport.MemNetwork, name string) *transport.Endpoint {
	t.Helper()
	conn, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.NewEndpoint(conn, func(req *transport.Message) ([]byte, error) {
		return []byte(name + ":" + string(req.Payload)), nil
	})
	t.Cleanup(func() {
		if err := ep.Close(); err != nil {
			t.Errorf("close %s: %v", name, err)
		}
	})
	return ep
}

// testClient starts a client endpoint.
func testClient(t *testing.T, n *transport.MemNetwork, opts ...transport.EndpointOption) *transport.Endpoint {
	t.Helper()
	conn, err := n.Listen("client")
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.NewEndpoint(conn, nil, opts...)
	t.Cleanup(func() { ep.Close() })
	return ep
}

func newGateway(t *testing.T, n *transport.MemNetwork, opts ...Option) *Gateway {
	t.Helper()
	conn, err := n.Listen("gw")
	if err != nil {
		t.Fatal(err)
	}
	gw := New(conn, opts...)
	t.Cleanup(func() {
		if err := gw.Close(); err != nil {
			t.Errorf("gateway close: %v", err)
		}
	})
	return gw
}

func TestGatewayForwardsByWorkloadID(t *testing.T) {
	n := transport.NewMemNetwork(1)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(7, []net.Addr{transport.MemAddr("w1")})
	gw.SetRoute(8, []net.Addr{transport.MemAddr("w2")})

	cli := testClient(t, n)
	ctx := context.Background()
	resp, err := cli.Call(ctx, transport.MemAddr("gw"), 7, []byte("a"))
	if err != nil || string(resp) != "w1:a" {
		t.Fatalf("workload 7 -> %q, %v", resp, err)
	}
	resp, err = cli.Call(ctx, transport.MemAddr("gw"), 8, []byte("b"))
	if err != nil || string(resp) != "w2:b" {
		t.Fatalf("workload 8 -> %q, %v", resp, err)
	}
	if gw.Forwarded() != 2 {
		t.Errorf("Forwarded = %d", gw.Forwarded())
	}
}

func TestGatewayRoundRobin(t *testing.T) {
	n := transport.NewMemNetwork(1)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1"), transport.MemAddr("w2")})

	cli := testClient(t, n)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		name, _, _ := strings.Cut(string(resp), ":")
		counts[name]++
	}
	if counts["w1"] != 5 || counts["w2"] != 5 {
		t.Errorf("round robin skewed: %v", counts)
	}
}

func TestGatewayUnrouted(t *testing.T) {
	n := transport.NewMemNetwork(1)
	gw := newGateway(t, n)
	cli := testClient(t, n, transport.WithTimeout(100*time.Millisecond), transport.WithRetries(1))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 99, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Errorf("err = %v, want no-route", err)
	}
	if gw.Unrouted() == 0 {
		t.Error("Unrouted not counted")
	}
}

func TestGatewayRouteUpdateAndRemoval(t *testing.T) {
	n := transport.NewMemNetwork(1)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1")})
	cli := testClient(t, n, transport.WithTimeout(100*time.Millisecond), transport.WithRetries(1))

	if resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x")); err != nil || string(resp) != "w1:x" {
		t.Fatalf("before update: %q, %v", resp, err)
	}
	// Repoint to w2 (a placement change).
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w2")})
	if resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("y")); err != nil || string(resp) != "w2:y" {
		t.Fatalf("after update: %q, %v", resp, err)
	}
	// Remove the route entirely.
	gw.SetRoute(1, nil)
	if _, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("z")); err == nil {
		t.Error("call after route removal succeeded")
	}
	if routes := gw.Routes(); len(routes) != 0 {
		t.Errorf("Routes = %v after removal", routes)
	}
}

func TestGatewayUpstreamTimeout(t *testing.T) {
	n := transport.NewMemNetwork(1)
	gw := newGateway(t, n, WithUpstreamTimeout(50*time.Millisecond))
	// Route to a worker that does not exist: upstream calls time out.
	gw.SetRoute(1, []net.Addr{transport.MemAddr("ghost")})
	cli := testClient(t, n, transport.WithTimeout(300*time.Millisecond), transport.WithRetries(1))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil {
		t.Error("call to dead worker succeeded")
	}
}

func TestGatewayRetransmitsThroughLoss(t *testing.T) {
	n := transport.NewMemNetwork(5)
	n.LossRate = 0.3
	echoWorker(t, n, "w1")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1")})
	cli := testClient(t, n, transport.WithTimeout(50*time.Millisecond), transport.WithRetries(20))
	for i := 0; i < 10; i++ {
		resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("q"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != "w1:q" {
			t.Errorf("resp = %q", resp)
		}
	}
}

func TestGatewayConcurrentClients(t *testing.T) {
	n := transport.NewMemNetwork(9)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1"), transport.MemAddr("w2")})
	cli := testClient(t, n)

	const calls = 30
	var failures atomic.Int32
	done := make(chan struct{}, calls)
	for i := 0; i < calls; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			payload := []byte(fmt.Sprintf("m%d", i))
			resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, payload)
			if err != nil || !strings.HasSuffix(string(resp), string(payload)) {
				failures.Add(1)
			}
		}(i)
	}
	for i := 0; i < calls; i++ {
		<-done
	}
	if failures.Load() != 0 {
		t.Errorf("%d concurrent calls failed", failures.Load())
	}
}

func TestGatewayFailoverToLiveWorker(t *testing.T) {
	n := transport.NewMemNetwork(13)
	echoWorker(t, n, "alive")
	gw := newGateway(t, n, WithUpstreamTimeout(60*time.Millisecond))
	// First route slot points at a dead worker; the gateway must fail
	// over to the live one.
	gw.SetRoute(1, []net.Addr{transport.MemAddr("dead"), transport.MemAddr("alive")})
	cli := testClient(t, n, transport.WithTimeout(400*time.Millisecond), transport.WithRetries(1))
	resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if string(resp) != "alive:x" {
		t.Errorf("resp = %q, want from live worker", resp)
	}
}

func TestGatewayNoFailoverOnApplicationError(t *testing.T) {
	n := transport.NewMemNetwork(17)
	// Both workers return application errors; the gateway must not
	// retry the second after the first answers deterministically.
	var calls atomic.Int32
	for _, name := range []string{"e1", "e2"} {
		conn, err := n.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		ep := transport.NewEndpoint(conn, func(req *transport.Message) ([]byte, error) {
			calls.Add(1)
			return nil, fmt.Errorf("handler rejected")
		})
		t.Cleanup(func() { ep.Close() })
	}
	gw := newGateway(t, n, WithUpstreamTimeout(100*time.Millisecond))
	gw.SetRoute(1, []net.Addr{transport.MemAddr("e1"), transport.MemAddr("e2")})
	cli := testClient(t, n, transport.WithTimeout(300*time.Millisecond), transport.WithRetries(1))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "handler rejected") {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("handler invoked %d times, want 1 (no failover on app error)", got)
	}
}

func TestGatewayAllWorkersDead(t *testing.T) {
	n := transport.NewMemNetwork(19)
	gw := newGateway(t, n, WithUpstreamTimeout(30*time.Millisecond))
	gw.SetRoute(1, []net.Addr{transport.MemAddr("d1"), transport.MemAddr("d2")})
	cli := testClient(t, n, transport.WithTimeout(500*time.Millisecond), transport.WithRetries(0))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil {
		t.Error("call with all workers dead succeeded")
	}
}
