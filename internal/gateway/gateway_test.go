package gateway

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lambdanic/internal/dispatch"
	"lambdanic/internal/transport"
)

// echoWorker starts a worker endpoint that tags responses with its
// name.
func echoWorker(t *testing.T, n *transport.MemNetwork, name string) *transport.Endpoint {
	t.Helper()
	conn, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.NewEndpoint(conn, func(req *transport.Message) ([]byte, error) {
		return []byte(name + ":" + string(req.Payload)), nil
	})
	t.Cleanup(func() {
		if err := ep.Close(); err != nil {
			t.Errorf("close %s: %v", name, err)
		}
	})
	return ep
}

// testClient starts a client endpoint.
func testClient(t *testing.T, n *transport.MemNetwork, opts ...transport.EndpointOption) *transport.Endpoint {
	t.Helper()
	return namedClient(t, n, "client", opts...)
}

// namedClient starts a client endpoint on a specific address — under
// flow-affine dispatch the client address is the flow identity, so
// tests spread load by using many named clients.
func namedClient(t *testing.T, n *transport.MemNetwork, name string, opts ...transport.EndpointOption) *transport.Endpoint {
	t.Helper()
	conn, err := n.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	ep := transport.NewEndpoint(conn, nil, opts...)
	t.Cleanup(func() { ep.Close() })
	return ep
}

func newGateway(t *testing.T, n *transport.MemNetwork, opts ...Option) *Gateway {
	t.Helper()
	conn, err := n.Listen("gw")
	if err != nil {
		t.Fatal(err)
	}
	gw := New(conn, opts...)
	t.Cleanup(func() {
		if err := gw.Close(); err != nil {
			t.Errorf("gateway close: %v", err)
		}
	})
	return gw
}

func TestGatewayForwardsByWorkloadID(t *testing.T) {
	n := transport.NewMemNetwork(1)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(7, []net.Addr{transport.MemAddr("w1")})
	gw.SetRoute(8, []net.Addr{transport.MemAddr("w2")})

	cli := testClient(t, n)
	ctx := context.Background()
	resp, err := cli.Call(ctx, transport.MemAddr("gw"), 7, []byte("a"))
	if err != nil || string(resp) != "w1:a" {
		t.Fatalf("workload 7 -> %q, %v", resp, err)
	}
	resp, err = cli.Call(ctx, transport.MemAddr("gw"), 8, []byte("b"))
	if err != nil || string(resp) != "w2:b" {
		t.Fatalf("workload 8 -> %q, %v", resp, err)
	}
	if gw.Forwarded() != 2 {
		t.Errorf("Forwarded = %d", gw.Forwarded())
	}
}

// TestGatewayFlowAffinity: all requests from one client flow land on
// one worker (warm state is reused), while distinct clients spread
// across the fleet via the consistent-hash ring.
func TestGatewayFlowAffinity(t *testing.T) {
	n := transport.NewMemNetwork(1)
	names := []string{"w1", "w2", "w3", "w4"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers)

	// One client: every request sticks to the same worker.
	cli := testClient(t, n)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		name, _, _ := strings.Cut(string(resp), ":")
		counts[name]++
	}
	if len(counts) != 1 {
		t.Fatalf("one flow scattered across %d workers: %v", len(counts), counts)
	}

	// Many clients: flows spread over multiple workers.
	spread := map[string]int{}
	for c := 0; c < 32; c++ {
		cc := namedClient(t, n, fmt.Sprintf("c%02d", c))
		resp, err := cc.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		name, _, _ := strings.Cut(string(resp), ":")
		spread[name]++
	}
	if len(spread) < 3 {
		t.Fatalf("32 flows landed on only %d of 4 workers: %v", len(spread), spread)
	}
}

// TestGatewayFlowAffinityStableAcrossGateways: two gateways with the
// same seed place the same flow on the same worker.
func TestGatewayFlowAffinityStableAcrossGateways(t *testing.T) {
	n := transport.NewMemNetwork(1)
	names := []string{"w1", "w2", "w3"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
	}
	conn1, err := n.Listen("gw1")
	if err != nil {
		t.Fatal(err)
	}
	gw1 := New(conn1)
	t.Cleanup(func() { gw1.Close() })
	conn2, err := n.Listen("gw2")
	if err != nil {
		t.Fatal(err)
	}
	gw2 := New(conn2)
	t.Cleanup(func() { gw2.Close() })
	gw1.SetRoute(1, workers)
	gw2.SetRoute(1, workers)

	cli := testClient(t, n)
	r1, err := cli.Call(context.Background(), transport.MemAddr("gw1"), 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cli.Call(context.Background(), transport.MemAddr("gw2"), 1, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	w1, _, _ := strings.Cut(string(r1), ":")
	w2, _, _ := strings.Cut(string(r2), ":")
	if w1 != w2 {
		t.Fatalf("gateways disagree on placement: %s vs %s", w1, w2)
	}
}

func TestGatewayUnrouted(t *testing.T) {
	n := transport.NewMemNetwork(1)
	gw := newGateway(t, n)
	cli := testClient(t, n, transport.WithTimeout(100*time.Millisecond), transport.WithRetries(1))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 99, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "no route") {
		t.Errorf("err = %v, want no-route", err)
	}
	if gw.Unrouted() == 0 {
		t.Error("Unrouted not counted")
	}
}

func TestGatewayRouteUpdateAndRemoval(t *testing.T) {
	n := transport.NewMemNetwork(1)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1")})
	cli := testClient(t, n, transport.WithTimeout(100*time.Millisecond), transport.WithRetries(1))

	if resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x")); err != nil || string(resp) != "w1:x" {
		t.Fatalf("before update: %q, %v", resp, err)
	}
	// Repoint to w2 (a placement change).
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w2")})
	if resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("y")); err != nil || string(resp) != "w2:y" {
		t.Fatalf("after update: %q, %v", resp, err)
	}
	// Remove the route entirely.
	gw.SetRoute(1, nil)
	if _, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("z")); err == nil {
		t.Error("call after route removal succeeded")
	}
	if routes := gw.Routes(); len(routes) != 0 {
		t.Errorf("Routes = %v after removal", routes)
	}
}

func TestGatewayUpstreamTimeout(t *testing.T) {
	n := transport.NewMemNetwork(1)
	gw := newGateway(t, n, WithUpstreamTimeout(50*time.Millisecond))
	// Route to a worker that does not exist: upstream calls time out.
	gw.SetRoute(1, []net.Addr{transport.MemAddr("ghost")})
	cli := testClient(t, n, transport.WithTimeout(300*time.Millisecond), transport.WithRetries(1))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil {
		t.Error("call to dead worker succeeded")
	}
}

func TestGatewayRetransmitsThroughLoss(t *testing.T) {
	n := transport.NewMemNetwork(5)
	n.LossRate = 0.3
	echoWorker(t, n, "w1")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1")})
	cli := testClient(t, n, transport.WithTimeout(50*time.Millisecond), transport.WithRetries(20))
	for i := 0; i < 10; i++ {
		resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("q"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp) != "w1:q" {
			t.Errorf("resp = %q", resp)
		}
	}
}

func TestGatewayConcurrentClients(t *testing.T) {
	n := transport.NewMemNetwork(9)
	echoWorker(t, n, "w1")
	echoWorker(t, n, "w2")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1"), transport.MemAddr("w2")})
	cli := testClient(t, n)

	const calls = 30
	var failures atomic.Int32
	done := make(chan struct{}, calls)
	for i := 0; i < calls; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			payload := []byte(fmt.Sprintf("m%d", i))
			resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, payload)
			if err != nil || !strings.HasSuffix(string(resp), string(payload)) {
				failures.Add(1)
			}
		}(i)
	}
	for i := 0; i < calls; i++ {
		<-done
	}
	if failures.Load() != 0 {
		t.Errorf("%d concurrent calls failed", failures.Load())
	}
}

func TestGatewayFailoverToLiveWorker(t *testing.T) {
	n := transport.NewMemNetwork(13)
	echoWorker(t, n, "alive")
	gw := newGateway(t, n, WithUpstreamTimeout(60*time.Millisecond))
	// First route slot points at a dead worker; the gateway must fail
	// over to the live one.
	gw.SetRoute(1, []net.Addr{transport.MemAddr("dead"), transport.MemAddr("alive")})
	cli := testClient(t, n, transport.WithTimeout(400*time.Millisecond), transport.WithRetries(1))
	resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err != nil {
		t.Fatalf("failover call: %v", err)
	}
	if string(resp) != "alive:x" {
		t.Errorf("resp = %q, want from live worker", resp)
	}
}

func TestGatewayNoFailoverOnApplicationError(t *testing.T) {
	n := transport.NewMemNetwork(17)
	// Both workers return application errors; the gateway must not
	// retry the second after the first answers deterministically.
	var calls atomic.Int32
	for _, name := range []string{"e1", "e2"} {
		conn, err := n.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		ep := transport.NewEndpoint(conn, func(req *transport.Message) ([]byte, error) {
			calls.Add(1)
			return nil, fmt.Errorf("handler rejected")
		})
		t.Cleanup(func() { ep.Close() })
	}
	gw := newGateway(t, n, WithUpstreamTimeout(100*time.Millisecond))
	gw.SetRoute(1, []net.Addr{transport.MemAddr("e1"), transport.MemAddr("e2")})
	cli := testClient(t, n, transport.WithTimeout(300*time.Millisecond), transport.WithRetries(1))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "handler rejected") {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("handler invoked %d times, want 1 (no failover on app error)", got)
	}
}

func TestGatewayAllWorkersDead(t *testing.T) {
	n := transport.NewMemNetwork(19)
	gw := newGateway(t, n, WithUpstreamTimeout(30*time.Millisecond))
	gw.SetRoute(1, []net.Addr{transport.MemAddr("d1"), transport.MemAddr("d2")})
	cli := testClient(t, n, transport.WithTimeout(500*time.Millisecond), transport.WithRetries(0))
	_, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil {
		t.Error("call with all workers dead succeeded")
	}
}

// TestGatewayFailoverDeterministicSuccessor: when a flow's ring owner
// is dead, every request re-pins to the flow's first live ring
// successor — the same worker each time, not a scatter.
func TestGatewayFailoverDeterministicSuccessor(t *testing.T) {
	n := transport.NewMemNetwork(29)
	names := []string{"w1", "w2", "w3"}
	workers := make([]net.Addr, len(names))
	for i, name := range names {
		workers[i] = transport.MemAddr(name)
	}
	gw := newGateway(t, n, WithUpstreamTimeout(60*time.Millisecond))
	gw.SetRoute(1, workers)

	// White-box: find the flow's ring order for client "client", then
	// start every worker except the owner.
	wr := gw.routes.Load().m[1]
	flow := dispatch.FlowKey("client", 1)
	owner := wr.ownerIndex(flow)
	succ := wr.failoverOrder(flow, owner)
	for i, name := range names {
		if i != owner {
			echoWorker(t, n, name)
		}
	}
	want := names[succ[0]]

	cli := testClient(t, n, transport.WithTimeout(400*time.Millisecond), transport.WithRetries(1))
	for i := 0; i < 5; i++ {
		resp, err := cli.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x"))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		got, _, _ := strings.Cut(string(resp), ":")
		if got != want {
			t.Fatalf("call %d served by %s, want deterministic successor %s", i, got, want)
		}
	}
	if gw.Failovers() == 0 {
		t.Error("failovers not counted")
	}
}

// TestGatewayPerWorkloadFailoverCounters: failovers are attributed to
// the workload that suffered them.
func TestGatewayPerWorkloadFailoverCounters(t *testing.T) {
	n := transport.NewMemNetwork(31)
	echoWorker(t, n, "alive")
	gw := newGateway(t, n, WithUpstreamTimeout(60*time.Millisecond))
	gw.SetRoute(1, []net.Addr{transport.MemAddr("dead"), transport.MemAddr("alive")})
	gw.SetRoute(2, []net.Addr{transport.MemAddr("alive")})
	cli := testClient(t, n, transport.WithTimeout(400*time.Millisecond), transport.WithRetries(1))

	// Workload 2 never fails over.
	if _, err := cli.Call(context.Background(), transport.MemAddr("gw"), 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Drive workload 1 until its flow hits the dead worker's failover
	// path at least once (the client's flow may already own "alive", so
	// use several distinct client flows).
	for c := 0; c < 8 && gw.FailoversFor(1) == 0; c++ {
		cc := namedClient(t, n, fmt.Sprintf("fc%d", c), transport.WithTimeout(400*time.Millisecond), transport.WithRetries(1))
		if _, err := cc.Call(context.Background(), transport.MemAddr("gw"), 1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if gw.FailoversFor(1) == 0 {
		t.Fatal("no failover attributed to workload 1")
	}
	if gw.FailoversFor(2) != 0 {
		t.Fatalf("workload 2 charged %d failovers", gw.FailoversFor(2))
	}
	by := gw.FailoversByWorkload()
	if by[1] != gw.FailoversFor(1) {
		t.Fatalf("FailoversByWorkload mismatch: %v", by)
	}
	if gw.Failovers() < gw.FailoversFor(1) {
		t.Fatal("node-wide failovers below per-workload count")
	}
}
