package gateway

import (
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lambdanic/internal/dispatch"
)

// workloadRoute is the immutable routing state for one workload: the
// worker set, the seeded consistent-hash ring pinning flows to workers,
// and the standing elephant migrations (flow -> worker index) layered
// on top of the ring. stats is the only mutable field — a lock-free
// lossy flow-rate table shared across snapshots so observation survives
// route updates.
type workloadRoute struct {
	workers []net.Addr
	ring    *dispatch.Ring
	pins    map[uint64]int
	stats   *flowStats
}

// newWorkloadRoute builds a route entry, constructing the ring over the
// workers' addresses. pins and stats may be nil (fresh entry).
func newWorkloadRoute(workers []net.Addr, seed uint64, pins map[uint64]int, stats *flowStats) *workloadRoute {
	names := make([]string, len(workers))
	for i, w := range workers {
		names[i] = w.String()
	}
	if stats == nil {
		stats = newFlowStats()
	}
	return &workloadRoute{
		workers: workers,
		ring:    dispatch.NewRing(names, seed, 0),
		pins:    pins,
		stats:   stats,
	}
}

// ownerIndex is the worker index a flow is pinned to: a standing
// migration wins, otherwise the ring decides.
func (wr *workloadRoute) ownerIndex(flow uint64) int {
	if idx, ok := wr.pins[flow]; ok && idx >= 0 && idx < len(wr.workers) {
		return idx
	}
	return wr.ring.Pick(flow)
}

// failoverOrder is the deterministic retry order after the owner
// failed: the flow's ring successors, skipping the failed owner. Every
// gateway computes the same order, so a pinned flow re-pins to the same
// live successor everywhere instead of scattering.
func (wr *workloadRoute) failoverOrder(flow uint64, owner int) []int {
	succ := wr.ring.Successors(flow, len(wr.workers))
	out := make([]int, 0, len(succ))
	for _, s := range succ {
		if s != owner {
			out = append(out, s)
		}
	}
	return out
}

// pinnedFlows counts standing migrations.
func (wr *workloadRoute) pinnedFlows() int { return len(wr.pins) }

// flowStats is a fixed-size, lock-free, lossy per-flow rate table — the
// sliding-window sketch feeding elephant detection. The request path
// records with at most flowProbes CAS/add operations and never blocks;
// the rebalancer scans and decays it once per tick. Collisions drop
// samples (lossy), which only ever under-counts a flow — an elephant
// generates so many samples it cannot stay hidden.
type flowStats struct {
	slots [flowSlots]flowSlot
}

type flowSlot struct {
	key  atomic.Uint64
	hits atomic.Uint64
}

const (
	flowSlots  = 1024 // power of two
	flowProbes = 4
)

func newFlowStats() *flowStats { return &flowStats{} }

// observe records one request for the flow (flow 0 is never tracked).
func (fs *flowStats) observe(flow uint64) {
	if flow == 0 {
		return
	}
	idx := int(flow>>32^flow) & (flowSlots - 1)
	for p := 0; p < flowProbes; p++ {
		slot := &fs.slots[(idx+p)&(flowSlots-1)]
		k := slot.key.Load()
		if k == flow {
			slot.hits.Add(1)
			return
		}
		if k == 0 && slot.key.CompareAndSwap(0, flow) {
			slot.hits.Add(1)
			return
		}
	}
	// All probe slots taken by other flows: drop the sample.
}

// decay halves every count and frees dead slots — the sliding window.
// Races with concurrent observes can lose a sample; the window is a
// heuristic, not an invariant.
func (fs *flowStats) decay() {
	for i := range fs.slots {
		slot := &fs.slots[i]
		if slot.key.Load() == 0 {
			continue
		}
		h := slot.hits.Load() >> 1
		slot.hits.Store(h)
		if h == 0 {
			slot.key.Store(0)
		}
	}
}

// topK returns the k heaviest tracked flows, deterministic order.
func (fs *flowStats) topK(k int) []dispatch.HeavyFlow {
	if k <= 0 {
		return nil
	}
	var all []dispatch.HeavyFlow
	for i := range fs.slots {
		slot := &fs.slots[i]
		key := slot.key.Load()
		if key == 0 {
			continue
		}
		if h := slot.hits.Load(); h > 0 {
			all = append(all, dispatch.HeavyFlow{Flow: key, Rate: h})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].Rate != all[b].Rate {
			return all[a].Rate > all[b].Rate
		}
		return all[a].Flow < all[b].Flow
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// RebalanceConfig parameterizes the elephant-flow rebalancer.
type RebalanceConfig struct {
	// Every is the tick period (default 1s).
	Every time.Duration
	// TopK bounds how many elephants per workload are considered each
	// tick (default 8).
	TopK int
	// ImbalanceRatio is the overload threshold: a worker whose load
	// exceeds ratio × the mean triggers migration of its elephants
	// (default 1.5).
	ImbalanceRatio float64
	// Loads supplies per-worker load, keyed by worker address string.
	// Nil falls back to the gateway's own per-worker in-flight counts;
	// deployments wire healthd's EWMA-smoothed snapshot here.
	Loads func() []dispatch.Load
}

func (c RebalanceConfig) withDefaults() RebalanceConfig {
	if c.Every <= 0 {
		c.Every = time.Second
	}
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.ImbalanceRatio <= 1 {
		c.ImbalanceRatio = 1.5
	}
	return c
}

// rebalancer is the gateway's background migration loop.
type rebalancer struct {
	cfg  RebalanceConfig
	stop chan struct{}
	once sync.Once
}

// StartRebalancer launches the elephant-flow migration loop and returns
// a stop function. Each tick it reads the load report, finds workloads
// whose owner workers are overloaded, migrates their top-k elephant
// flows to underloaded workers, and rolls the rate window. Mice are
// never touched. Calling it twice replaces nothing — the second call
// returns a no-op stop and leaves the first loop running.
func (g *Gateway) StartRebalancer(cfg RebalanceConfig) (stop func()) {
	cfg = cfg.withDefaults()
	g.mu.Lock()
	if g.reb != nil {
		g.mu.Unlock()
		return func() {}
	}
	r := &rebalancer{cfg: cfg, stop: make(chan struct{})}
	g.reb = r
	g.mu.Unlock()
	go func() {
		t := time.NewTicker(cfg.Every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				g.RebalanceOnce(cfg)
			case <-r.stop:
				return
			}
		}
	}()
	return func() {
		r.once.Do(func() { close(r.stop) })
		g.mu.Lock()
		if g.reb == r {
			g.reb = nil
		}
		g.mu.Unlock()
	}
}

// RebalanceOnce runs one rebalance tick synchronously and returns the
// number of migrations applied (exposed for tests and lnicctl).
func (g *Gateway) RebalanceOnce(cfg RebalanceConfig) int {
	cfg = cfg.withDefaults()
	var report []dispatch.Load
	if cfg.Loads != nil {
		report = cfg.Loads()
	}
	rt := g.routes.Load()
	ids := make([]uint32, 0, len(rt.m))
	for id := range rt.m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	applied := 0
	for _, id := range ids {
		wr := rt.m[id]
		if len(wr.workers) < 2 {
			wr.stats.decay()
			continue
		}
		elephants := wr.stats.topK(cfg.TopK)
		if len(elephants) > 0 {
			loads := g.loadsFor(wr, report)
			owner := func(f uint64) string { return wr.workers[wr.ownerIndex(f)].String() }
			plan := dispatch.Plan(loads, elephants, owner, cfg.ImbalanceRatio)
			applied += g.applyMigrations(id, plan)
		}
		wr.stats.decay()
	}
	return applied
}

// loadsFor assembles the load vector for one workload's workers: the
// external report where present, the gateway's own in-flight count
// otherwise.
func (g *Gateway) loadsFor(wr *workloadRoute, report []dispatch.Load) []dispatch.Load {
	byName := make(map[string]float64, len(report))
	for _, l := range report {
		byName[l.Worker] = l.Load
	}
	out := make([]dispatch.Load, len(wr.workers))
	for i, w := range wr.workers {
		name := w.String()
		load, ok := byName[name]
		if !ok {
			load = float64(g.inflightOf(name))
		}
		out[i] = dispatch.Load{Worker: name, Load: load}
	}
	return out
}

// applyMigrations installs standing pins for the planned migrations via
// a copy-on-write rebuild of the workload's route entry. Migrations
// whose target left the route between planning and application are
// skipped. Returns the number applied.
func (g *Gateway) applyMigrations(id uint32, plan []dispatch.Migration) int {
	if len(plan) == 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	old := g.routes.Load()
	wr := old.m[id]
	if wr == nil {
		return 0
	}
	index := make(map[string]int, len(wr.workers))
	for i, w := range wr.workers {
		index[w.String()] = i
	}
	pins := make(map[uint64]int, len(wr.pins)+len(plan))
	for f, i := range wr.pins {
		pins[f] = i
	}
	applied := 0
	for _, mig := range plan {
		to, ok := index[mig.To]
		if !ok {
			continue
		}
		// A migration landing the flow back on its ring owner is just an
		// unpin: drop the override instead of storing a redundant pin.
		if wr.ring.Pick(mig.Flow) == to {
			if _, had := pins[mig.Flow]; had {
				delete(pins, mig.Flow)
				applied++
			}
			continue
		}
		if cur, had := pins[mig.Flow]; had && cur == to {
			continue
		}
		pins[mig.Flow] = to
		applied++
	}
	if applied == 0 {
		return 0
	}
	next := make(map[uint32]*workloadRoute, len(old.m))
	for wid, entry := range old.m {
		next[wid] = entry
	}
	next[id] = &workloadRoute{workers: wr.workers, ring: wr.ring, pins: pins, stats: wr.stats}
	g.routes.Store(&routeTable{m: next})
	g.migrations.Add(uint64(applied))
	return applied
}

// Migrations returns the total elephant-flow migrations applied.
func (g *Gateway) Migrations() uint64 { return g.migrations.Load() }

// PinnedFlows counts standing migrations across all workloads — flows
// currently pinned somewhere other than their ring owner.
func (g *Gateway) PinnedFlows() int {
	rt := g.routes.Load()
	n := 0
	for _, wr := range rt.m {
		n += wr.pinnedFlows()
	}
	return n
}

// FailoversFor returns the failovers counted for one workload.
func (g *Gateway) FailoversFor(id uint32) uint64 {
	if c, ok := g.failoversBy.Load(id); ok {
		return c.(*atomic.Uint64).Load()
	}
	return 0
}

// FailoversByWorkload snapshots the per-workload failover counters.
func (g *Gateway) FailoversByWorkload() map[uint32]uint64 {
	out := make(map[uint32]uint64)
	g.failoversBy.Range(func(k, v any) bool {
		out[k.(uint32)] = v.(*atomic.Uint64).Load()
		return true
	})
	return out
}

// countFailover bumps the node-wide and per-workload failover counters.
func (g *Gateway) countFailover(id uint32) {
	g.failovers.Add(1)
	c, ok := g.failoversBy.Load(id)
	if !ok {
		c, _ = g.failoversBy.LoadOrStore(id, &atomic.Uint64{})
	}
	c.(*atomic.Uint64).Add(1)
}

// inflightFor returns the in-flight counter for a worker address,
// creating it on first use.
func (g *Gateway) inflightFor(name string) *atomic.Int64 {
	if c, ok := g.inflight.Load(name); ok {
		return c.(*atomic.Int64)
	}
	c, _ := g.inflight.LoadOrStore(name, &atomic.Int64{})
	return c.(*atomic.Int64)
}

// inflightOf reads a worker's current in-flight count.
func (g *Gateway) inflightOf(name string) int64 {
	if c, ok := g.inflight.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}
