package gateway

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/monitor"
	"lambdanic/internal/transport"
)

func TestEnableMetricsDoubleRegistration(t *testing.T) {
	n := transport.NewMemNetwork(1)
	gw := newGateway(t, n)
	reg := monitor.NewRegistry()
	if err := gw.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	// The same registry already holds every gateway metric: a second
	// enable must fail on the first registration, not panic or
	// half-register.
	if err := gw.EnableMetrics(reg); err == nil {
		t.Fatal("second EnableMetrics on the same registry succeeded")
	}
	// Two gateways cannot share one registry either (same metric names).
	gw2 := newGateway(t, transport.NewMemNetwork(2))
	if err := gw2.EnableMetrics(reg); err == nil {
		t.Fatal("second gateway registered into an occupied registry")
	}
	// A fresh registry works for the second gateway.
	if err := gw2.EnableMetrics(monitor.NewRegistry()); err != nil {
		t.Fatal(err)
	}
}

func TestEnableMetricsPartialCollision(t *testing.T) {
	// A registry with a colliding metric name must reject EnableMetrics
	// at that metric. Exercise a collision deep in the sequence (the
	// histogram, registered last) to cover the error paths past the
	// first counter.
	n := transport.NewMemNetwork(2)
	gw := newGateway(t, n)
	reg := monitor.NewRegistry()
	reg.MustHistogram("lnic_gateway_upstream_latency_seconds", "squatter", nil,
		monitor.DefaultLatencyBuckets)
	if err := gw.EnableMetrics(reg); err == nil {
		t.Fatal("EnableMetrics succeeded with a colliding histogram name")
	} else if !strings.Contains(err.Error(), "lnic_gateway_upstream_latency_seconds") {
		t.Errorf("error does not name the colliding metric: %v", err)
	}

	reg2 := monitor.NewRegistry()
	reg2.MustCounter("lnic_gateway_failovers_total", "squatter", nil)
	if err := gw.EnableMetrics(reg2); err == nil {
		t.Fatal("EnableMetrics succeeded with a colliding counter name")
	}
}

func TestMetricsRenderAfterTraffic(t *testing.T) {
	// The lock-free histogram's bridge must render the standard
	// _bucket/_sum/_count families after real proxied traffic.
	n := transport.NewMemNetwork(3)
	echoWorker(t, n, "w1")
	gw := newGateway(t, n)
	reg := monitor.NewRegistry()
	if err := gw.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	gw.SetRoute(7, []net.Addr{transport.MemAddr("w1")})
	cli := testClient(t, n)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Call(ctx, transport.MemAddr("gw"), 7, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	page := reg.Render()
	for _, want := range []string{
		"lnic_gateway_upstream_latency_seconds_bucket",
		"lnic_gateway_upstream_latency_seconds_count 1",
		`le="+Inf"`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("rendered metrics missing %q:\n%s", want, page)
		}
	}
}
