package gateway

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/monitor"
	"lambdanic/internal/tenant"
	"lambdanic/internal/transport"
)

// throttleGateway builds a gateway with one routed workload per tenant
// and admission control on a hand-cranked clock.
func throttleGateway(t *testing.T) (*Gateway, *transport.Endpoint, *time.Duration) {
	t.Helper()
	n := transport.NewMemNetwork(1)
	echoWorker(t, n, "w1")
	gw := newGateway(t, n)
	gw.SetRoute(1, []net.Addr{transport.MemAddr("w1")}) // tenant 10 (limited)
	gw.SetRoute(2, []net.Addr{transport.MemAddr("w1")}) // tenant 20 (unlimited)

	adm := tenant.NewAdmission()
	limited := &tenant.Tenant{ID: 10, Name: "bulk",
		Quota: tenant.Quota{RatePerSec: 1, Burst: 2}}
	if err := adm.SetQuota(limited); err != nil {
		t.Fatal(err)
	}
	clock := new(time.Duration)
	err := gw.EnableAdmission(adm, func(workloadID uint32) uint32 {
		if workloadID == 1 {
			return 10
		}
		return 20
	}, WithAdmissionClock(func() time.Duration { return *clock }))
	if err != nil {
		t.Fatal(err)
	}
	return gw, testClient(t, n), clock
}

func TestAdmissionShedsOverQuotaTenant(t *testing.T) {
	gw, cli, clock := throttleGateway(t)
	ctx := context.Background()

	// Burst of 2 admits, then the bucket is dry.
	for i := 0; i < 2; i++ {
		if _, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x")); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	_, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "throttled") {
		t.Fatalf("3rd call err = %v, want throttled", err)
	}
	if !strings.Contains(err.Error(), "bulk") {
		t.Errorf("throttle error should name the tenant: %v", err)
	}
	if gw.Throttled() != 1 {
		t.Errorf("Throttled = %d, want 1", gw.Throttled())
	}
	// Unlimited tenants are untouched by the neighbor's quota.
	if _, err := cli.Call(ctx, transport.MemAddr("gw"), 2, []byte("y")); err != nil {
		t.Fatalf("unlimited tenant: %v", err)
	}
	// The bucket refills with the clock: +1s buys one more request.
	*clock += time.Second
	if _, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x")); err != nil {
		t.Fatalf("post-refill call: %v", err)
	}
	if gw.Forwarded() != 4 {
		t.Errorf("Forwarded = %d, want 4 (throttled request never reached upstream)", gw.Forwarded())
	}
}

func TestAdmissionErrorIsDistinctSentinel(t *testing.T) {
	// Server-side classification: admit() returns the tenant sentinel
	// so in-process callers (experiments, tests) can errors.Is it.
	gw, _, _ := throttleGateway(t)
	gw.admit(1)
	gw.admit(1)
	if err := gw.admit(1); !errors.Is(err, ErrTenantThrottled) {
		t.Fatalf("admit err = %v, want ErrTenantThrottled", err)
	}
}

func TestAdmissionMetricsAndRemoval(t *testing.T) {
	gw, cli, _ := throttleGateway(t)
	reg := monitor.NewRegistry()
	if err := gw.EnableMetrics(reg); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
	}
	page := reg.Render()
	if !strings.Contains(page, "lnic_gateway_tenant_throttled_total 1") {
		t.Errorf("throttled counter missing:\n%s", page)
	}
	if !strings.Contains(page, "lnic_gateway_pool_drops_total 0") {
		t.Errorf("pool drops counter missing:\n%s", page)
	}
	// Removing admission re-opens the floodgates.
	if err := gw.EnableAdmission(nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x")); err != nil {
		t.Fatalf("after removal: %v", err)
	}
}

func TestEnableAdmissionNeedsClassifier(t *testing.T) {
	n := transport.NewMemNetwork(1)
	gw := newGateway(t, n)
	if err := gw.EnableAdmission(tenant.NewAdmission(), nil); err == nil {
		t.Fatal("nil classifier accepted")
	}
}
