package gateway

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lambdanic/internal/autoscale"
	"lambdanic/internal/transport"
)

// TestAutoscaleDecisionVsRouteUpdateRace mirrors routing_test.go's
// copy-on-write discipline under the placement control loop: one
// goroutine runs an autoscaler whose decisions are applied as SetRoute
// snapshot swaps (the exact path the placement engine's cutover uses),
// while client goroutines hammer the handle path. Every request must
// succeed and land on a worker from some installed snapshot — the race
// detector guards the rest.
func TestAutoscaleDecisionVsRouteUpdateRace(t *testing.T) {
	n := transport.NewMemNetwork(67)
	names := []string{"w1", "w2", "w3", "w4"}
	workers := make([]net.Addr, len(names))
	valid := map[string]bool{}
	for i, name := range names {
		echoWorker(t, n, name)
		workers[i] = transport.MemAddr(name)
		valid[name] = true
	}
	gw := newGateway(t, n)
	gw.SetRoute(1, workers[:1])

	a, err := autoscale.New(autoscale.Policy{
		TargetPerReplica: 100,
		MinReplicas:      0,
		MaxReplicas:      len(names),
		UpThreshold:      1.2,
		DownThreshold:    0.5,
		Cooldown:         time.Microsecond, // decide on every tick
		Smoothing:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Track("web", 1)

	stop := make(chan struct{})
	var scales atomic.Uint64
	var scalerWG, wg sync.WaitGroup
	scalerWG.Add(1)
	go func() {
		defer scalerWG.Done()
		// Whipsaw the observed rate so the scaler issues a stream of
		// up/down decisions, each applied as a route-snapshot swap while
		// requests are in flight.
		rates := []uint64{450, 40, 250, 10}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := a.Observe("web", rates[i%len(rates)], time.Second); err != nil {
				t.Error(err)
				return
			}
			for _, d := range a.Decide(time.Unix(int64(1000+i), 0)) {
				to := d.To
				if to < 1 {
					to = 1 // keep the route non-empty so clients never stall
				}
				gw.SetRoute(1, workers[:to])
				scales.Add(1)
			}
		}
	}()

	const clients = 4
	const perClient = 200
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		cli := namedClient(t, n, fmt.Sprintf("client-%d", c))
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < perClient; i++ {
				resp, err := cli.Call(ctx, transport.MemAddr("gw"), 1, []byte("x"))
				if err != nil {
					errCh <- err
					return
				}
				who, _, _ := strings.Cut(string(resp), ":")
				if !valid[who] {
					t.Errorf("response from unknown worker %q", who)
					return
				}
			}
		}()
	}
	// Wait for every client to finish, then stop the scaling loop.
	clientsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(clientsDone)
	}()
	stopScaler := func() {
		close(stop)
		scalerWG.Wait()
	}
	select {
	case <-clientsDone:
		stopScaler()
	case <-time.After(30 * time.Second):
		stopScaler()
		t.Fatal("clients did not finish in time")
	}
	select {
	case err := <-errCh:
		t.Fatalf("client request failed mid-rescale: %v", err)
	default:
	}
	if scales.Load() == 0 {
		t.Fatal("scaling loop never applied a decision during the run")
	}
}
