// Package gateway implements λ-NIC's gateway (paper Fig. 2): it proxies
// users' requests to the worker nodes hosting the destination lambda,
// stamping each request with the lambda's workload ID so the NIC's
// match stage can dispatch it (§4.1: "for each incoming request, the
// gateway inserts the ID of the destined lambda as a new header").
//
// Delivery follows the weakly-consistent semantic of §4.2.1 D3: the
// gateway is the sender that tracks outgoing RPCs and retransmits on
// timeout or drop (provided by transport.Endpoint). Dispatch is
// flow-affine (the oRSS-NIC direction): a seeded consistent-hash ring
// pins each flow (client source × workload) to one worker so its warm
// state on that worker's NPU cores is reused, failover walks the flow's
// ring successors deterministically, and a background rebalancer
// migrates only the elephant flows (top-k of a sliding-window rate
// sketch) off overloaded workers — mice stay pinned.
//
// The forward path is lock-free: the route table is a copy-on-write
// snapshot behind an atomic pointer (ring and pins are immutable per
// snapshot; the flow-rate sketch is a lock-free lossy table), so handle
// never takes a lock, and a concurrent SetRoute/EvictWorker can never
// change the worker set between a request's attempt-count snapshot and
// its worker selection.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lambdanic/internal/dispatch"
	"lambdanic/internal/monitor"
	"lambdanic/internal/obs"
	"lambdanic/internal/telemetry"
	"lambdanic/internal/transport"
)

// Gateway proxies requests to workers by workload ID.
type Gateway struct {
	ep      *transport.Endpoint
	timeout time.Duration
	workers int

	// ringSeed seeds every workload's consistent-hash ring; gateways
	// sharing a seed compute identical flow placements.
	ringSeed uint64

	// routes is the copy-on-write routing snapshot; mu serializes
	// writers only (SetRoute, EvictWorker, rebalancer pin installs,
	// instrument installs).
	routes atomic.Pointer[routeTable]
	mu     sync.Mutex

	forwarded atomic.Uint64
	unrouted  atomic.Uint64

	failovers atomic.Uint64
	timeouts  atomic.Uint64
	throttled atomic.Uint64

	// failoversBy counts failovers per workload ID
	// (map[uint32]*atomic.Uint64).
	failoversBy sync.Map
	// inflight tracks per-worker in-flight upstream calls
	// (map[string]*atomic.Int64) — the rebalancer's default load signal.
	inflight sync.Map
	// migrations counts applied elephant-flow migrations.
	migrations atomic.Uint64
	// reb is the running rebalancer, if any (guarded by mu).
	reb *rebalancer

	// admission is the optional tenant admission snapshot
	// (admission.go), copy-on-write like routes.
	admission atomicAdmission

	// instr is the monitoring/tracing snapshot, also copy-on-write so
	// the forward path reads it with one atomic load.
	instr atomic.Pointer[instruments]
}

// routeTable is one immutable routing snapshot. Entries are shared
// across snapshots: a SetRoute for workload A reuses workload B's
// entry, so B's ring, pins, and flow-rate window survive unrelated
// updates. workloadRoute itself lives in routing.go.
type routeTable struct {
	m map[uint32]*workloadRoute
}

// instruments is the optional monitoring-engine (§6.1.1) and tracing
// hook-up, snapshotted as one unit.
type instruments struct {
	forwarded *monitor.Counter
	unrouted  *monitor.Counter
	errors    *monitor.Counter
	failovers *monitor.Counter
	timeouts  *monitor.Counter
	throttled *monitor.Counter
	latency   *telemetry.Histogram
	tracer    obs.Tracer
}

// Option configures a Gateway.
type Option func(*Gateway)

// WithUpstreamTimeout bounds each proxied call.
func WithUpstreamTimeout(d time.Duration) Option {
	return func(g *Gateway) { g.timeout = d }
}

// WithWorkers bounds the gateway's request-execution pool. Each proxied
// request occupies a worker for its upstream round trip, so this is the
// gateway's concurrency limit.
func WithWorkers(n int) Option {
	return func(g *Gateway) {
		if n > 0 {
			g.workers = n
		}
	}
}

// WithRingSeed sets the consistent-hash ring seed. Gateways fronting
// the same fleet must share a seed to agree on flow placement.
func WithRingSeed(seed uint64) Option {
	return func(g *Gateway) { g.ringSeed = seed }
}

// ErrNoRoute is returned for workload IDs with no registered workers.
var ErrNoRoute = errors.New("gateway: no route for workload")

// DefaultRingSeed is the consistent-hash ring seed when WithRingSeed is
// not given — an arbitrary fixed value so independent gateways agree by
// default.
const DefaultRingSeed = 0x1a4bda9c0ffee

// New starts a gateway on conn. The gateway owns the connection.
func New(conn net.PacketConn, opts ...Option) *Gateway {
	g := &Gateway{
		timeout:  2 * time.Second,
		workers:  256,
		ringSeed: DefaultRingSeed,
	}
	g.routes.Store(&routeTable{m: map[uint32]*workloadRoute{}})
	for _, o := range opts {
		o(g)
	}
	// Proxied requests block a pool worker for a full upstream round
	// trip, so the gateway runs a deeper pool than a compute endpoint.
	g.ep = transport.NewEndpoint(conn, g.handle, transport.WithWorkers(g.workers))
	return g
}

// Addr returns the gateway's listen address.
func (g *Gateway) Addr() net.Addr { return g.ep.Addr() }

// Close shuts the gateway down.
func (g *Gateway) Close() error { return g.ep.Close() }

// Forwarded returns the number of successfully proxied requests.
func (g *Gateway) Forwarded() uint64 { return g.forwarded.Load() }

// Unrouted returns the number of requests with no route.
func (g *Gateway) Unrouted() uint64 { return g.unrouted.Load() }

// Failovers returns the node-wide number of per-request worker
// failovers; FailoversFor breaks the count down by workload.
func (g *Gateway) Failovers() uint64 { return g.failovers.Load() }

// UpstreamTimeouts returns the number of upstream calls that timed out
// after retransmits.
func (g *Gateway) UpstreamTimeouts() uint64 { return g.timeouts.Load() }

// Retransmits returns the number of upstream request retransmissions.
func (g *Gateway) Retransmits() uint64 { return g.ep.Retransmits() }

// LiveWorkers counts the distinct worker addresses across all routes —
// the fleet the gateway can currently reach.
func (g *Gateway) LiveWorkers() int {
	rt := g.routes.Load()
	seen := make(map[string]bool)
	for _, wr := range rt.m {
		for _, w := range wr.workers {
			seen[w.String()] = true
		}
	}
	return len(seen)
}

// EvictWorker removes a worker from every route and aborts the in-flight
// calls addressed to it — the drain step of healthd's eviction: pending
// requests fail over to surviving replicas immediately instead of
// waiting out the retransmit schedule. Returns the number of routes the
// worker was removed from.
func (g *Gateway) EvictWorker(addr net.Addr) int {
	key := addr.String()
	g.mu.Lock()
	old := g.routes.Load()
	next := make(map[uint32]*workloadRoute, len(old.m))
	removed := 0
	for id, wr := range old.m {
		kept := make([]net.Addr, 0, len(wr.workers))
		for _, w := range wr.workers {
			if w.String() != key {
				kept = append(kept, w)
			}
		}
		switch {
		case len(kept) == len(wr.workers):
			next[id] = wr // untouched entry: ring, pins, and window survive
		case len(kept) == 0:
			removed++
		default:
			removed++
			// Rebuild the ring over the survivors. Pins to surviving
			// workers are remapped by address (stable); pins to the
			// evicted worker are dropped, so those flows revert to their
			// ring owner deterministically.
			var pins map[uint64]int
			if len(wr.pins) > 0 {
				index := make(map[string]int, len(kept))
				for i, w := range kept {
					index[w.String()] = i
				}
				pins = make(map[uint64]int, len(wr.pins))
				for f, wi := range wr.pins {
					if wi < 0 || wi >= len(wr.workers) {
						continue
					}
					if ni, ok := index[wr.workers[wi].String()]; ok {
						pins[f] = ni
					}
				}
			}
			next[id] = newWorkloadRoute(kept, g.ringSeed, pins, wr.stats)
		}
	}
	g.routes.Store(&routeTable{m: next})
	g.mu.Unlock()
	g.ep.AbortTo(addr)
	return removed
}

// SetRoute replaces the worker set for a workload (called by the
// workload manager as placements change). The workload's ring is
// rebuilt over the new set and standing migrations are cleared (the
// placement changed wholesale; the rebalancer re-derives them), but the
// flow-rate window carries over so elephant detection keeps its
// history. Other workloads' entries are shared untouched.
func (g *Gateway) SetRoute(id uint32, workers []net.Addr) {
	g.mu.Lock()
	defer g.mu.Unlock()
	old := g.routes.Load()
	next := make(map[uint32]*workloadRoute, len(old.m)+1)
	var stats *flowStats
	for wid, wr := range old.m {
		if wid != id {
			next[wid] = wr
		} else {
			stats = wr.stats
		}
	}
	if len(workers) > 0 {
		next[id] = newWorkloadRoute(append([]net.Addr(nil), workers...), g.ringSeed, nil, stats)
	}
	g.routes.Store(&routeTable{m: next})
}

// Routes returns a snapshot of the routing table.
func (g *Gateway) Routes() map[uint32][]net.Addr {
	rt := g.routes.Load()
	out := make(map[uint32][]net.Addr, len(rt.m))
	for id, wr := range rt.m {
		out[id] = append([]net.Addr(nil), wr.workers...)
	}
	return out
}

// EnableMetrics registers the gateway's counters and upstream latency
// histogram in the monitoring engine's registry.
func (g *Gateway) EnableMetrics(reg *monitor.Registry) error {
	forwarded, err := reg.Counter("lnic_gateway_forwarded_total", "requests proxied to workers", nil)
	if err != nil {
		return err
	}
	unrouted, err := reg.Counter("lnic_gateway_unrouted_total", "requests with no registered route", nil)
	if err != nil {
		return err
	}
	upErr, err := reg.Counter("lnic_gateway_upstream_errors_total", "upstream call failures", nil)
	if err != nil {
		return err
	}
	failovers, err := reg.Counter("lnic_gateway_failovers_total", "requests failed over to another worker", nil)
	if err != nil {
		return err
	}
	timeouts, err := reg.Counter("lnic_gateway_upstream_timeouts_total", "upstream calls that timed out after retransmits", nil)
	if err != nil {
		return err
	}
	retransmits, err := reg.Counter("lnic_gateway_retransmits_total", "upstream request retransmissions", nil)
	if err != nil {
		return err
	}
	throttled, err := reg.Counter("lnic_gateway_tenant_throttled_total", "requests shed by tenant admission control", nil)
	if err != nil {
		return err
	}
	// Per-tenant shed series, read straight from the admission
	// controller at scrape time. Call EnableAdmission before
	// EnableMetrics so the tenant set is known here.
	if a := g.admission.Load(); a != nil {
		for id, name := range a.adm.Quotas() {
			id := id
			if err := reg.CounterFunc("lnic_gateway_tenant_shed_total",
				"requests shed by tenant admission control, per tenant",
				map[string]string{"tenant": name},
				func() uint64 { return a.adm.Shed(id) }); err != nil {
				return err
			}
		}
	}
	// The gateway's own pool sheds under overload exactly like a
	// worker's; exposing it separates "gateway saturated" from
	// "tenant over quota".
	if err := reg.CounterFunc("lnic_gateway_pool_drops_total",
		"requests shed by the gateway worker pool", nil, g.ep.Drops); err != nil {
		return err
	}
	if err := reg.GaugeFunc("lnic_gateway_live_workers",
		"distinct worker addresses across all routes", nil,
		func() float64 { return float64(g.LiveWorkers()) }); err != nil {
		return err
	}
	if err := reg.GaugeFunc("lnic_gateway_pinned_flows",
		"flows pinned off their ring owner by elephant migration", nil,
		func() float64 { return float64(g.PinnedFlows()) }); err != nil {
		return err
	}
	if err := reg.CounterFunc("lnic_gateway_migrations_total",
		"elephant-flow migrations applied by the rebalancer", nil,
		g.Migrations); err != nil {
		return err
	}
	// The latency histogram is the telemetry plane's lock-free sharded
	// implementation: the request hot path records with a single atomic
	// add instead of convoying on the registry histogram's mutex.
	latency := telemetry.NewHistogram()
	if err := latency.Expose(reg, "lnic_gateway_upstream_latency_seconds",
		"upstream call latency", nil); err != nil {
		return err
	}
	g.ep.SetRetransmitHook(retransmits.Inc)
	g.mu.Lock()
	ins := g.instrumentsCopy()
	ins.forwarded, ins.unrouted, ins.errors, ins.latency = forwarded, unrouted, upErr, latency
	ins.failovers, ins.timeouts, ins.throttled = failovers, timeouts, throttled
	g.instr.Store(ins)
	g.mu.Unlock()
	return nil
}

// EnableTracing records each proxied request's lifecycle — upstream
// RPC attempts, retransmits, and failovers — in the tracer. Enable
// before serving traffic.
func (g *Gateway) EnableTracing(t obs.Tracer) {
	g.mu.Lock()
	ins := g.instrumentsCopy()
	ins.tracer = t
	g.instr.Store(ins)
	g.mu.Unlock()
}

// instrumentsCopy returns a mutable copy of the current instrument
// snapshot; g.mu must be held.
func (g *Gateway) instrumentsCopy() *instruments {
	if cur := g.instr.Load(); cur != nil {
		cp := *cur
		return &cp
	}
	return &instruments{}
}

// handle proxies one client request to a worker and relays the
// response. It reads exactly one route snapshot, so the worker set it
// iterates cannot change mid-request. The first attempt goes to the
// flow's pinned owner (standing migration if one exists, ring owner
// otherwise); when an upstream call fails (a crashed or unreachable
// worker), the gateway fails over along the flow's ring successors —
// the same deterministic order on every gateway — before giving up,
// keeping a lambda available while any replica lives.
func (g *Gateway) handle(req *transport.Message) ([]byte, error) {
	// Tenant admission runs before any routing work: an over-quota
	// request costs the gateway one bucket probe, nothing upstream.
	if err := g.admit(req.Header.WorkloadID); err != nil {
		return nil, err
	}
	ins := g.instr.Load()
	var tr *obs.Req
	if ins != nil && ins.tracer != nil {
		tr = ins.tracer.Begin(req.Header.WorkloadID, "")
	}
	wr := g.routes.Load().m[req.Header.WorkloadID]
	if wr == nil || len(wr.workers) == 0 {
		g.unrouted.Add(1)
		if ins != nil && ins.unrouted != nil {
			ins.unrouted.Inc()
		}
		err := fmt.Errorf("%w: %d", ErrNoRoute, req.Header.WorkloadID)
		tr.Finish(tr.Now(), err)
		return nil, err
	}
	src := ""
	if req.Source != nil {
		src = req.Source.String()
	}
	flow := dispatch.FlowKey(src, req.Header.WorkloadID)
	wr.stats.observe(flow)
	owner := wr.ownerIndex(flow)
	attempts := len(wr.workers)
	// The successor order is only materialized on the first failover —
	// the happy path costs one ring lookup and no allocation.
	var order []int
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		wi := owner
		if attempt > 0 {
			if order == nil {
				order = wr.failoverOrder(flow, owner)
			}
			wi = order[attempt-1]
		}
		worker := wr.workers[wi]
		load := g.inflightFor(worker.String())
		ctx, cancel := context.WithTimeout(context.Background(), g.timeout)
		start := time.Now()
		load.Add(1)
		resp, err := g.ep.CallTraced(ctx, worker, req.Header.WorkloadID, req.Payload, tr)
		load.Add(-1)
		cancel()
		if ins != nil && ins.latency != nil {
			ins.latency.ObserveDuration(time.Since(start))
		}
		if err == nil {
			g.forwarded.Add(1)
			if ins != nil && ins.forwarded != nil {
				ins.forwarded.Inc()
			}
			tr.Finish(tr.Now(), nil)
			return resp, nil
		}
		if ins != nil && ins.errors != nil {
			ins.errors.Inc()
		}
		if errors.Is(err, transport.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
			g.timeouts.Add(1)
			if ins != nil && ins.timeouts != nil {
				ins.timeouts.Inc()
			}
		}
		lastErr = fmt.Errorf("gateway: upstream %v: %w", worker, err)
		// Unreachability (timeout after retransmits) and eviction drains
		// (AbortTo) trigger failover; an application error from a live
		// worker is deterministic and is returned as-is.
		if !errors.Is(err, transport.ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) &&
			!errors.Is(err, transport.ErrAborted) {
			tr.Finish(tr.Now(), lastErr)
			return nil, lastErr
		}
		if attempt+1 < attempts {
			g.countFailover(req.Header.WorkloadID)
			if ins != nil && ins.failovers != nil {
				ins.failovers.Inc()
			}
		}
	}
	tr.Finish(tr.Now(), lastErr)
	return nil, lastErr
}
