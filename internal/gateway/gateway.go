// Package gateway implements λ-NIC's gateway (paper Fig. 2): it proxies
// users' requests to the worker nodes hosting the destination lambda,
// stamping each request with the lambda's workload ID so the NIC's
// match stage can dispatch it (§4.1: "for each incoming request, the
// gateway inserts the ID of the destined lambda as a new header").
//
// Delivery follows the weakly-consistent semantic of §4.2.1 D3: the
// gateway is the sender that tracks outgoing RPCs and retransmits on
// timeout or drop (provided by transport.Endpoint). Workers hosting the
// same lambda are balanced round-robin.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lambdanic/internal/monitor"
	"lambdanic/internal/obs"
	"lambdanic/internal/transport"
)

// Gateway proxies requests to workers by workload ID.
type Gateway struct {
	ep      *transport.Endpoint
	timeout time.Duration

	mu     sync.Mutex
	routes map[uint32][]net.Addr
	rr     map[uint32]int

	forwarded atomic.Uint64
	unrouted  atomic.Uint64

	failovers atomic.Uint64
	timeouts  atomic.Uint64

	// Optional monitoring-engine instrumentation (§6.1.1).
	mForwarded *monitor.Counter
	mUnrouted  *monitor.Counter
	mErrors    *monitor.Counter
	mFailovers *monitor.Counter
	mTimeouts  *monitor.Counter
	mLatency   *monitor.Histogram

	// Optional request-lifecycle tracing.
	tracer obs.Tracer
}

// Option configures a Gateway.
type Option func(*Gateway)

// WithUpstreamTimeout bounds each proxied call.
func WithUpstreamTimeout(d time.Duration) Option {
	return func(g *Gateway) { g.timeout = d }
}

// ErrNoRoute is returned for workload IDs with no registered workers.
var ErrNoRoute = errors.New("gateway: no route for workload")

// New starts a gateway on conn. The gateway owns the connection.
func New(conn net.PacketConn, opts ...Option) *Gateway {
	g := &Gateway{
		timeout: 2 * time.Second,
		routes:  make(map[uint32][]net.Addr),
		rr:      make(map[uint32]int),
	}
	for _, o := range opts {
		o(g)
	}
	g.ep = transport.NewEndpoint(conn, g.handle)
	return g
}

// Addr returns the gateway's listen address.
func (g *Gateway) Addr() net.Addr { return g.ep.Addr() }

// Close shuts the gateway down.
func (g *Gateway) Close() error { return g.ep.Close() }

// Forwarded returns the number of successfully proxied requests.
func (g *Gateway) Forwarded() uint64 { return g.forwarded.Load() }

// Unrouted returns the number of requests with no route.
func (g *Gateway) Unrouted() uint64 { return g.unrouted.Load() }

// Failovers returns the number of per-request worker failovers.
func (g *Gateway) Failovers() uint64 { return g.failovers.Load() }

// UpstreamTimeouts returns the number of upstream calls that timed out
// after retransmits.
func (g *Gateway) UpstreamTimeouts() uint64 { return g.timeouts.Load() }

// Retransmits returns the number of upstream request retransmissions.
func (g *Gateway) Retransmits() uint64 { return g.ep.Retransmits() }

// LiveWorkers counts the distinct worker addresses across all routes —
// the fleet the gateway can currently reach.
func (g *Gateway) LiveWorkers() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	seen := make(map[string]bool)
	for _, ws := range g.routes {
		for _, w := range ws {
			seen[w.String()] = true
		}
	}
	return len(seen)
}

// EvictWorker removes a worker from every route and aborts the in-flight
// calls addressed to it — the drain step of healthd's eviction: pending
// requests fail over to surviving replicas immediately instead of
// waiting out the retransmit schedule. Returns the number of routes the
// worker was removed from.
func (g *Gateway) EvictWorker(addr net.Addr) int {
	key := addr.String()
	g.mu.Lock()
	removed := 0
	for id, ws := range g.routes {
		kept := make([]net.Addr, 0, len(ws))
		for _, w := range ws {
			if w.String() != key {
				kept = append(kept, w)
			}
		}
		if len(kept) == len(ws) {
			continue
		}
		removed++
		if len(kept) == 0 {
			delete(g.routes, id)
			delete(g.rr, id)
		} else {
			g.routes[id] = kept
			g.rr[id] = 0
		}
	}
	g.mu.Unlock()
	g.ep.AbortTo(addr)
	return removed
}

// SetRoute replaces the worker set for a workload (called by the
// workload manager as placements change).
func (g *Gateway) SetRoute(id uint32, workers []net.Addr) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(workers) == 0 {
		delete(g.routes, id)
		delete(g.rr, id)
		return
	}
	g.routes[id] = append([]net.Addr(nil), workers...)
	g.rr[id] = 0
}

// Routes returns a snapshot of the routing table.
func (g *Gateway) Routes() map[uint32][]net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make(map[uint32][]net.Addr, len(g.routes))
	for id, ws := range g.routes {
		out[id] = append([]net.Addr(nil), ws...)
	}
	return out
}

// next picks the round-robin worker for a workload.
func (g *Gateway) next(id uint32) (net.Addr, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ws := g.routes[id]
	if len(ws) == 0 {
		return nil, fmt.Errorf("%w: %d", ErrNoRoute, id)
	}
	w := ws[g.rr[id]%len(ws)]
	g.rr[id]++
	return w, nil
}

// EnableMetrics registers the gateway's counters and upstream latency
// histogram in the monitoring engine's registry.
func (g *Gateway) EnableMetrics(reg *monitor.Registry) error {
	forwarded, err := reg.Counter("lnic_gateway_forwarded_total", "requests proxied to workers", nil)
	if err != nil {
		return err
	}
	unrouted, err := reg.Counter("lnic_gateway_unrouted_total", "requests with no registered route", nil)
	if err != nil {
		return err
	}
	upErr, err := reg.Counter("lnic_gateway_upstream_errors_total", "upstream call failures", nil)
	if err != nil {
		return err
	}
	failovers, err := reg.Counter("lnic_gateway_failovers_total", "requests failed over to another worker", nil)
	if err != nil {
		return err
	}
	timeouts, err := reg.Counter("lnic_gateway_upstream_timeouts_total", "upstream calls that timed out after retransmits", nil)
	if err != nil {
		return err
	}
	retransmits, err := reg.Counter("lnic_gateway_retransmits_total", "upstream request retransmissions", nil)
	if err != nil {
		return err
	}
	if err := reg.GaugeFunc("lnic_gateway_live_workers",
		"distinct worker addresses across all routes", nil,
		func() float64 { return float64(g.LiveWorkers()) }); err != nil {
		return err
	}
	latency, err := reg.Histogram("lnic_gateway_upstream_latency_seconds",
		"upstream call latency", nil, monitor.DefaultLatencyBuckets)
	if err != nil {
		return err
	}
	g.ep.SetRetransmitHook(retransmits.Inc)
	g.mu.Lock()
	g.mForwarded, g.mUnrouted, g.mErrors, g.mLatency = forwarded, unrouted, upErr, latency
	g.mFailovers, g.mTimeouts = failovers, timeouts
	g.mu.Unlock()
	return nil
}

func (g *Gateway) metricsSnapshot() (*monitor.Counter, *monitor.Counter, *monitor.Counter, *monitor.Histogram) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.mForwarded, g.mUnrouted, g.mErrors, g.mLatency
}

// EnableTracing records each proxied request's lifecycle — upstream
// RPC attempts, retransmits, and failovers — in the tracer. Enable
// before serving traffic.
func (g *Gateway) EnableTracing(t obs.Tracer) {
	g.mu.Lock()
	g.tracer = t
	g.mu.Unlock()
}

func (g *Gateway) traceBegin(workload uint32) *obs.Req {
	g.mu.Lock()
	t := g.tracer
	g.mu.Unlock()
	if t == nil {
		return nil
	}
	return t.Begin(workload, "")
}

// workerCount returns the number of workers routed for a workload.
func (g *Gateway) workerCount(id uint32) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.routes[id])
}

// handle proxies one client request to a worker and relays the
// response. When an upstream call fails (a crashed or unreachable
// worker), the gateway fails over to the next worker in the route
// before giving up — keeping a lambda available while any replica
// lives.
func (g *Gateway) handle(req *transport.Message) ([]byte, error) {
	mFwd, mUnrouted, mErr, mLat := g.metricsSnapshot()
	tr := g.traceBegin(req.Header.WorkloadID)
	attempts := g.workerCount(req.Header.WorkloadID)
	if attempts == 0 {
		g.unrouted.Add(1)
		if mUnrouted != nil {
			mUnrouted.Inc()
		}
		err := fmt.Errorf("%w: %d", ErrNoRoute, req.Header.WorkloadID)
		tr.Finish(tr.Now(), err)
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		worker, err := g.next(req.Header.WorkloadID)
		if err != nil {
			g.unrouted.Add(1)
			if mUnrouted != nil {
				mUnrouted.Inc()
			}
			tr.Finish(tr.Now(), err)
			return nil, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.timeout)
		start := time.Now()
		resp, err := g.ep.CallTraced(ctx, worker, req.Header.WorkloadID, req.Payload, tr)
		cancel()
		if mLat != nil {
			mLat.ObserveDuration(time.Since(start))
		}
		if err == nil {
			g.forwarded.Add(1)
			if mFwd != nil {
				mFwd.Inc()
			}
			tr.Finish(tr.Now(), nil)
			return resp, nil
		}
		if mErr != nil {
			mErr.Inc()
		}
		if errors.Is(err, transport.ErrTimeout) || errors.Is(err, context.DeadlineExceeded) {
			g.timeouts.Add(1)
			g.mu.Lock()
			mTo := g.mTimeouts
			g.mu.Unlock()
			if mTo != nil {
				mTo.Inc()
			}
		}
		lastErr = fmt.Errorf("gateway: upstream %v: %w", worker, err)
		// Unreachability (timeout after retransmits) and eviction drains
		// (AbortTo) trigger failover; an application error from a live
		// worker is deterministic and is returned as-is.
		if !errors.Is(err, transport.ErrTimeout) && !errors.Is(err, context.DeadlineExceeded) &&
			!errors.Is(err, transport.ErrAborted) {
			tr.Finish(tr.Now(), lastErr)
			return nil, lastErr
		}
		if attempt+1 < attempts {
			g.failovers.Add(1)
			g.mu.Lock()
			mFo := g.mFailovers
			g.mu.Unlock()
			if mFo != nil {
				mFo.Inc()
			}
		}
	}
	tr.Finish(tr.Now(), lastErr)
	return nil, lastErr
}
