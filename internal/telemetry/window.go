package telemetry

import (
	"sync"
	"sync/atomic"
	"time"
)

// WindowConfig sizes a sliding window: Slots boundary snapshots taken
// every SlotDuration, so the rolling view spans up to
// Slots×SlotDuration of history at SlotDuration granularity.
type WindowConfig struct {
	Slots        int
	SlotDuration time.Duration
}

// Default window: 12 slots of 5 s — a one-minute rolling view.
const (
	DefaultSlots        = 12
	DefaultSlotDuration = 5 * time.Second
)

func (c WindowConfig) withDefaults() WindowConfig {
	if c.Slots <= 0 {
		c.Slots = DefaultSlots
	}
	if c.SlotDuration <= 0 {
		c.SlotDuration = DefaultSlotDuration
	}
	return c
}

// Window returns the configured span.
func (c WindowConfig) Window() time.Duration {
	c = c.withDefaults()
	return time.Duration(c.Slots) * c.SlotDuration
}

// windowSlot is one cumulative boundary snapshot.
type windowSlot struct {
	at   time.Duration
	snap HistSnapshot
	errs uint64
}

// Windowed pairs a lock-free histogram with an error counter and a
// ring of cumulative boundary snapshots, yielding rolling quantiles,
// rates, and availability over the configured window.
//
// The hot path (Observe) touches only the striped atomics — it never
// reads a clock or takes the ring lock. Rolling is lazy: every read
// passes an explicit timestamp and advances the slot boundaries it
// implies, so the same Windowed works on the wall clock (pass a
// monotonic duration) and on virtual time (pass sim.Now()). Reads are
// expected at slot granularity or coarser; a long read gap simply
// widens the oldest retained boundary until reads resume.
type Windowed struct {
	cfg  WindowConfig
	hist *Histogram
	errs atomic.Uint64

	mu       sync.Mutex
	ring     []windowSlot // len cfg.Slots, reused in place
	n        int          // boundaries recorded (≤ len(ring))
	head     int          // ring index of the newest boundary
	nextRoll time.Duration
	started  bool
}

// NewWindowed builds a windowed meter.
func NewWindowed(cfg WindowConfig) *Windowed {
	cfg = cfg.withDefaults()
	return &Windowed{
		cfg:  cfg,
		hist: NewHistogram(),
		ring: make([]windowSlot, cfg.Slots),
	}
}

// Histogram exposes the underlying cumulative histogram (for
// registry exposition).
func (w *Windowed) Histogram() *Histogram { return w.hist }

// Config returns the effective window configuration.
func (w *Windowed) Config() WindowConfig { return w.cfg }

// Observe records one completed request: successes contribute a
// latency sample, failures count against availability only.
func (w *Windowed) Observe(latency time.Duration, failed bool) {
	if failed {
		w.errs.Add(1)
		return
	}
	w.hist.ObserveDuration(latency)
}

// roll advances slot boundaries up to now; w.mu must be held.
func (w *Windowed) roll(now time.Duration) {
	if !w.started {
		w.started = true
		w.nextRoll = now + w.cfg.SlotDuration
		w.head = 0
		w.ring[0].at = now
		w.hist.SnapshotInto(&w.ring[0].snap)
		w.ring[0].errs = w.errs.Load()
		w.n = 1
		return
	}
	for w.nextRoll <= now {
		at := w.nextRoll
		// A long quiet gap would imply many identical boundaries; skip
		// ahead so at most one ring lap is ever materialized.
		if behind := (now - w.nextRoll) / w.cfg.SlotDuration; behind > time.Duration(w.cfg.Slots) {
			at = now - time.Duration(w.cfg.Slots)*w.cfg.SlotDuration
			w.nextRoll = at
		}
		w.head = (w.head + 1) % len(w.ring)
		slot := &w.ring[w.head]
		slot.at = at
		w.hist.SnapshotInto(&slot.snap)
		slot.errs = w.errs.Load()
		if w.n < len(w.ring) {
			w.n++
		}
		w.nextRoll += w.cfg.SlotDuration
	}
}

// WindowStats is the rolling view at one instant.
type WindowStats struct {
	// Window is the span actually covered (≤ the configured window
	// while history is still filling).
	Window time.Duration `json:"window"`
	// Count and Errors are completions inside the window; Total is
	// their sum.
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	Total  uint64 `json:"total"`
	// Availability is the fraction of requests answered successfully
	// (1.0 when the window saw no traffic).
	Availability float64 `json:"availability"`
	// RatePerSec is completions per second over the window.
	RatePerSec float64 `json:"rate_per_sec"`
	// Rolling latency quantiles over successful requests.
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	Mean time.Duration `json:"mean"`
	// Latency is the window's full latency delta for further math
	// (good-fraction evaluation in the SLO tracker).
	Latency HistSnapshot `json:"-"`
}

// Stats reads the rolling view at the given instant, advancing slot
// boundaries first.
func (w *Windowed) Stats(now time.Duration) WindowStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.roll(now)

	// Oldest retained boundary: head-(n-1) in ring order.
	oldest := &w.ring[(w.head-(w.n-1)+len(w.ring))%len(w.ring)]
	var cur HistSnapshot
	w.hist.SnapshotInto(&cur)
	curErrs := w.errs.Load()

	delta := cur.Sub(oldest.snap)
	errs := curErrs - oldest.errs
	st := WindowStats{
		Window: now - oldest.at,
		Count:  delta.Count,
		Errors: errs,
		Total:  delta.Count + errs,
	}
	st.Availability = 1.0
	if st.Total > 0 {
		st.Availability = float64(st.Count) / float64(st.Total)
	}
	if st.Window > 0 {
		st.RatePerSec = float64(st.Total) / st.Window.Seconds()
	}
	st.P50 = delta.QuantileDuration(0.50)
	st.P99 = delta.QuantileDuration(0.99)
	st.P999 = delta.QuantileDuration(0.999)
	st.Mean = time.Duration(delta.Mean())
	st.Latency = delta
	return st
}

// Totals returns lifetime (non-windowed) counts: successes and errors.
func (w *Windowed) Totals() (count, errs uint64) {
	return w.hist.Snapshot().Count, w.errs.Load()
}
