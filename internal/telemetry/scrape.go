package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the pull side of the telemetry plane: a parser for the
// Prometheus text exposition format the monitoring engine renders, so
// the fleet collector can scrape every daemon's existing /metrics
// surface without new wire protocols.

// ScrapedSample is one sample line from an exposition page.
type ScrapedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s ScrapedSample) Label(k string) string { return s.Labels[k] }

// Scrape is one parsed exposition page.
type Scrape struct {
	// Types maps metric family name → TYPE (counter, gauge, histogram).
	Types map[string]string
	// Samples holds every sample line in page order.
	Samples []ScrapedSample
}

// Value returns the first sample matching name and all given labels;
// ok reports whether one was found.
func (s Scrape) Value(name string, labels map[string]string) (v float64, ok bool) {
	for _, sm := range s.Samples {
		if sm.Name != name {
			continue
		}
		match := true
		for k, want := range labels {
			if sm.Labels[k] != want {
				match = false
				break
			}
		}
		if match {
			return sm.Value, true
		}
	}
	return 0, false
}

// ParseExposition parses a text exposition page. Unknown or malformed
// lines are an error: the collector only ever scrapes the monitoring
// engine's own renderer, so any surprise means a real bug.
func ParseExposition(r io.Reader) (Scrape, error) {
	s := Scrape{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
				fields := strings.Fields(rest)
				if len(fields) == 2 {
					s.Types[fields[0]] = fields[1]
				}
			}
			continue
		}
		sm, err := parseSampleLine(line)
		if err != nil {
			return Scrape{}, fmt.Errorf("telemetry: exposition line %d: %w", lineNo, err)
		}
		s.Samples = append(s.Samples, sm)
	}
	if err := sc.Err(); err != nil {
		return Scrape{}, err
	}
	return s, nil
}

// parseSampleLine parses `name{k="v",...} value`.
func parseSampleLine(line string) (ScrapedSample, error) {
	var sm ScrapedSample
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return sm, fmt.Errorf("no value in %q", line)
	} else {
		sm.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote, escaped := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case escaped:
				escaped = false
			case inQuote && c == '\\':
				escaped = true
			case c == '"':
				inQuote = !inQuote
			case !inQuote && c == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return sm, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:end])
		if err != nil {
			return sm, err
		}
		sm.Labels = labels
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return sm, fmt.Errorf("bad value in %q: %w", line, err)
	}
	sm.Value = v
	return sm, nil
}

// parseLabels parses `k="v",k2="v2"` with exposition escaping undone.
func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("bad label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", key)
		}
		var val strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				case '\\', '"':
					val.WriteByte(s[i])
				default:
					val.WriteByte('\\')
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		labels[key] = val.String()
		s = strings.TrimPrefix(s[i+1:], ",")
		s = strings.TrimSpace(s)
	}
	return labels, nil
}

// ScrapedHistogram is one histogram family member reassembled from its
// _bucket/_sum/_count sample lines.
type ScrapedHistogram struct {
	// Name is the family base name (without _bucket/_sum/_count).
	Name string
	// Labels are the family labels minus le.
	Labels map[string]string
	// Bounds are the finite upper bounds (seconds, ascending);
	// Cumulative has len(Bounds)+1 entries, last is +Inf.
	Bounds     []float64
	Cumulative []uint64
	Sum        float64
	Count      uint64
}

// labelKey renders labels (minus le) deterministically for grouping.
func labelKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k == "le" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%q,", k, labels[k])
	}
	return b.String()
}

// Histograms reassembles every histogram family on the page.
func (s Scrape) Histograms() []ScrapedHistogram {
	type entry struct {
		h       *ScrapedHistogram
		buckets map[float64]uint64
		hasInf  bool
		inf     uint64
	}
	byKey := map[string]*entry{}
	var order []string
	get := func(base string, labels map[string]string) *entry {
		key := base + "|" + labelKey(labels)
		e, ok := byKey[key]
		if !ok {
			rest := make(map[string]string, len(labels))
			for k, v := range labels {
				if k != "le" {
					rest[k] = v
				}
			}
			e = &entry{
				h:       &ScrapedHistogram{Name: base, Labels: rest},
				buckets: map[float64]uint64{},
			}
			byKey[key] = e
			order = append(order, key)
		}
		return e
	}
	for _, sm := range s.Samples {
		switch {
		case strings.HasSuffix(sm.Name, "_bucket"):
			base := strings.TrimSuffix(sm.Name, "_bucket")
			if s.Types[base] != "histogram" {
				continue
			}
			e := get(base, sm.Labels)
			le := sm.Labels["le"]
			if le == "+Inf" {
				e.hasInf = true
				e.inf = uint64(sm.Value)
				continue
			}
			ub, err := strconv.ParseFloat(le, 64)
			if err != nil {
				continue
			}
			e.buckets[ub] = uint64(sm.Value)
		case strings.HasSuffix(sm.Name, "_sum"):
			base := strings.TrimSuffix(sm.Name, "_sum")
			if s.Types[base] != "histogram" {
				continue
			}
			get(base, sm.Labels).h.Sum = sm.Value
		case strings.HasSuffix(sm.Name, "_count"):
			base := strings.TrimSuffix(sm.Name, "_count")
			if s.Types[base] != "histogram" {
				continue
			}
			get(base, sm.Labels).h.Count = uint64(sm.Value)
		}
	}
	out := make([]ScrapedHistogram, 0, len(order))
	for _, key := range order {
		e := byKey[key]
		bounds := make([]float64, 0, len(e.buckets))
		for ub := range e.buckets {
			bounds = append(bounds, ub)
		}
		sort.Float64s(bounds)
		cum := make([]uint64, 0, len(bounds)+1)
		for _, ub := range bounds {
			cum = append(cum, e.buckets[ub])
		}
		if e.hasInf {
			cum = append(cum, e.inf)
		} else {
			cum = append(cum, e.h.Count)
		}
		e.h.Bounds = bounds
		e.h.Cumulative = cum
		out = append(out, *e.h)
	}
	return out
}

// Sub returns the delta h − older (same bounds assumed: both sides
// come from the same registry). Mismatched shapes return h unchanged.
func (h ScrapedHistogram) Sub(older ScrapedHistogram) ScrapedHistogram {
	if len(older.Cumulative) != len(h.Cumulative) {
		return h
	}
	out := h
	out.Cumulative = make([]uint64, len(h.Cumulative))
	for i := range h.Cumulative {
		if h.Cumulative[i] > older.Cumulative[i] {
			out.Cumulative[i] = h.Cumulative[i] - older.Cumulative[i]
		}
	}
	out.Sum = h.Sum - older.Sum
	out.Count = 0
	if h.Count > older.Count {
		out.Count = h.Count - older.Count
	}
	return out
}

// Merge adds other's buckets into h (fleet-wide aggregation across
// workers scraped with identical bound sets). Mismatched shapes are
// ignored.
func (h *ScrapedHistogram) Merge(other ScrapedHistogram) {
	if len(h.Bounds) == 0 {
		h.Bounds = append([]float64(nil), other.Bounds...)
		h.Cumulative = make([]uint64, len(other.Cumulative))
	}
	if len(other.Cumulative) != len(h.Cumulative) {
		return
	}
	for i, c := range other.Cumulative {
		h.Cumulative[i] += c
	}
	h.Sum += other.Sum
	h.Count += other.Count
}

// Quantile interpolates the q-quantile (seconds) from the cumulative
// buckets. The +Inf bucket resolves to the last finite bound.
func (h ScrapedHistogram) Quantile(q float64) float64 {
	if len(h.Cumulative) == 0 {
		return 0
	}
	n := h.Cumulative[len(h.Cumulative)-1]
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q * float64(n))
	if target == 0 {
		target = 1
	}
	for i, cum := range h.Cumulative {
		if cum < target {
			continue
		}
		if i >= len(h.Bounds) {
			// +Inf bucket: the best point estimate is the last finite bound.
			if len(h.Bounds) == 0 {
				return 0
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lower := 0.0
		var below uint64
		if i > 0 {
			lower = h.Bounds[i-1]
			below = h.Cumulative[i-1]
		}
		inBucket := cum - below
		if inBucket == 0 {
			return h.Bounds[i]
		}
		frac := float64(target-below) / float64(inBucket)
		return lower + frac*(h.Bounds[i]-lower)
	}
	return h.Bounds[len(h.Bounds)-1]
}

// FracAtOrBelow returns the fraction of observations at or below v
// seconds, interpolating the straddling bucket — the good fraction of
// a scraped latency objective.
func (h ScrapedHistogram) FracAtOrBelow(v float64) float64 {
	if len(h.Cumulative) == 0 {
		return 1
	}
	n := h.Cumulative[len(h.Cumulative)-1]
	if n == 0 {
		return 1
	}
	prevBound, prevCum := 0.0, uint64(0)
	for i, ub := range h.Bounds {
		if v < ub {
			inBucket := float64(h.Cumulative[i] - prevCum)
			width := ub - prevBound
			frac := 1.0
			if width > 0 && v > prevBound {
				frac = (v - prevBound) / width
			} else if v <= prevBound {
				frac = 0
			}
			return (float64(prevCum) + frac*inBucket) / float64(n)
		}
		prevBound, prevCum = ub, h.Cumulative[i]
	}
	return float64(prevCum) / float64(n)
}
