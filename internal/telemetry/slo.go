package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// ObjectiveKind selects how an Objective grades a window.
type ObjectiveKind string

const (
	// ObjectiveAvailability grades the fraction of requests answered
	// successfully against Target (e.g. 0.999).
	ObjectiveAvailability ObjectiveKind = "availability"
	// ObjectiveLatency grades the fraction of successful requests at or
	// below Threshold against Target (e.g. 99% of requests under 2 ms).
	ObjectiveLatency ObjectiveKind = "latency"
)

// Objective is one declared service-level objective.
type Objective struct {
	Name string        `json:"name"`
	Kind ObjectiveKind `json:"kind"`
	// Target is the required good fraction in (0, 1), e.g. 0.999.
	Target float64 `json:"target"`
	// Threshold is the latency bound for ObjectiveLatency; ignored for
	// availability objectives.
	Threshold time.Duration `json:"threshold,omitempty"`
}

func (o Objective) validate() error {
	switch o.Kind {
	case ObjectiveAvailability:
	case ObjectiveLatency:
		if o.Threshold <= 0 {
			return fmt.Errorf("telemetry: objective %q: latency objective needs a positive threshold", o.Name)
		}
	default:
		return fmt.Errorf("telemetry: objective %q: unknown kind %q", o.Name, o.Kind)
	}
	if o.Name == "" {
		return fmt.Errorf("telemetry: objective with empty name")
	}
	if o.Target <= 0 || o.Target >= 1 {
		return fmt.Errorf("telemetry: objective %q: target %v outside (0,1)", o.Name, o.Target)
	}
	return nil
}

// ObjectiveStatus is one objective graded over one window.
type ObjectiveStatus struct {
	Objective
	// GoodFraction is the measured good fraction over the window (1.0
	// for an idle window: no traffic burns no budget).
	GoodFraction float64 `json:"good_fraction"`
	// BurnRate is the error-budget burn speed: the window's bad
	// fraction divided by the budgeted bad fraction. 1.0 means the
	// budget is being spent exactly at the sustainable pace; >1 means
	// faster; 0 means no burn.
	BurnRate float64 `json:"burn_rate"`
	// Met reports whether the window itself satisfied the objective.
	Met bool `json:"met"`
}

// grade evaluates the objective over one window.
func (o Objective) grade(st WindowStats) ObjectiveStatus {
	s := ObjectiveStatus{Objective: o, GoodFraction: 1.0}
	switch o.Kind {
	case ObjectiveAvailability:
		s.GoodFraction = st.Availability
	case ObjectiveLatency:
		if st.Count > 0 {
			s.GoodFraction = float64(st.Latency.AtOrBelow(int64(o.Threshold))) / float64(st.Count)
		}
	}
	budget := 1 - o.Target
	s.BurnRate = (1 - s.GoodFraction) / budget
	s.Met = s.GoodFraction >= o.Target
	return s
}

// SLOSample is the full tracker evaluation at one instant.
type SLOSample struct {
	// At is the evaluation timestamp (duration since the tracker's
	// epoch — wall start or virtual time zero).
	At    time.Duration     `json:"at"`
	Stats WindowStats       `json:"stats"`
	Objs  []ObjectiveStatus `json:"objectives"`
}

// Status finds an objective's grading by name; nil if absent.
func (s *SLOSample) Status(name string) *ObjectiveStatus {
	for i := range s.Objs {
		if s.Objs[i].Name == name {
			return &s.Objs[i]
		}
	}
	return nil
}

// SLOTracker grades a windowed meter against declared objectives and
// accumulates a history of samples for reporting. Like every reader in
// this package it is clock-abstracted: Sample receives an explicit
// timestamp.
type SLOTracker struct {
	win     *Windowed
	objs    []Objective
	samples []SLOSample
}

// NewSLOTracker declares objectives over a windowed meter. Invalid
// objectives are rejected.
func NewSLOTracker(win *Windowed, objs ...Objective) (*SLOTracker, error) {
	for _, o := range objs {
		if err := o.validate(); err != nil {
			return nil, err
		}
	}
	return &SLOTracker{win: win, objs: append([]Objective(nil), objs...)}, nil
}

// Windowed exposes the underlying meter so callers can feed it.
func (t *SLOTracker) Windowed() *Windowed { return t.win }

// Sample evaluates every objective over the current window, records
// the result in the tracker's history, and returns it.
func (t *SLOTracker) Sample(now time.Duration) SLOSample {
	st := t.win.Stats(now)
	s := SLOSample{At: now, Stats: st, Objs: make([]ObjectiveStatus, 0, len(t.objs))}
	for _, o := range t.objs {
		s.Objs = append(s.Objs, o.grade(st))
	}
	t.samples = append(t.samples, s)
	return s
}

// Samples returns the recorded history.
func (t *SLOTracker) Samples() []SLOSample { return t.samples }

// SLOReport is the tracker's full history plus per-objective summary,
// serialized by experiments (SLO_chaos.json) and rendered by lnicctl.
type SLOReport struct {
	// Window describes the rolling window the samples were graded over.
	Window time.Duration `json:"window"`
	// Objectives echoes the declarations.
	Objectives []Objective `json:"objectives"`
	// Samples is the full timeline.
	Samples []SLOSample `json:"samples"`
	// Summary aggregates each objective across the timeline.
	Summary []ObjectiveSummary `json:"summary"`
}

// ObjectiveSummary aggregates one objective across a report's samples.
type ObjectiveSummary struct {
	Name string `json:"name"`
	// WorstBurnRate is the maximum burn rate across samples; PeakAt is
	// when it occurred.
	WorstBurnRate float64       `json:"worst_burn_rate"`
	PeakAt        time.Duration `json:"peak_at"`
	// FinalBurnRate is the last sample's burn rate — the steady state
	// the system recovered to.
	FinalBurnRate float64 `json:"final_burn_rate"`
	// SamplesMet / SamplesTotal count windows that satisfied the
	// objective.
	SamplesMet   int `json:"samples_met"`
	SamplesTotal int `json:"samples_total"`
}

// Report assembles the history into a report.
func (t *SLOTracker) Report() SLOReport {
	rep := SLOReport{
		Window:     t.win.Config().Window(),
		Objectives: append([]Objective(nil), t.objs...),
		Samples:    t.samples,
	}
	for _, o := range t.objs {
		sum := ObjectiveSummary{Name: o.Name}
		for _, s := range t.samples {
			st := s.Status(o.Name)
			if st == nil {
				continue
			}
			sum.SamplesTotal++
			if st.Met {
				sum.SamplesMet++
			}
			if st.BurnRate >= sum.WorstBurnRate {
				// >= so ties report the latest peak; with a strictly
				// decaying burn this still pins the first maximum.
				if st.BurnRate > sum.WorstBurnRate {
					sum.PeakAt = s.At
				}
				sum.WorstBurnRate = st.BurnRate
			}
			sum.FinalBurnRate = st.BurnRate
		}
		rep.Summary = append(rep.Summary, sum)
	}
	return rep
}

// JSON serializes the report (indented, stable field order).
func (r SLOReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report as an operator-facing summary table.
func (r SLOReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SLO report  window=%s  samples=%d\n", r.Window, len(r.Samples))
	fmt.Fprintf(&b, "%-24s %-13s %8s %12s %10s %10s\n",
		"OBJECTIVE", "KIND", "TARGET", "WORST BURN", "FINAL", "MET")
	for _, s := range r.Summary {
		var obj Objective
		for _, o := range r.Objectives {
			if o.Name == s.Name {
				obj = o
				break
			}
		}
		kind := string(obj.Kind)
		if obj.Kind == ObjectiveLatency {
			kind = fmt.Sprintf("p≤%s", obj.Threshold)
		}
		fmt.Fprintf(&b, "%-24s %-13s %7.4g%% %11.2fx %9.2fx %6d/%d\n",
			s.Name, kind, obj.Target*100, s.WorstBurnRate, s.FinalBurnRate,
			s.SamplesMet, s.SamplesTotal)
	}
	return b.String()
}

// SortSamples orders a report's samples by time (scrape aggregation
// can interleave sources).
func (r *SLOReport) SortSamples() {
	sort.Slice(r.Samples, func(i, j int) bool { return r.Samples[i].At < r.Samples[j].At })
}
