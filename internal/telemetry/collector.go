package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Target is one scrapeable daemon: the nic label it contributes to the
// fleet view, and its monitoring-engine HTTP endpoint.
type Target struct {
	// Nic names the node in fleet output (m2, m3, gateway).
	Nic string
	// URL is the exposition endpoint (http://host:port/).
	URL string
}

// ParseTargets parses a comma-separated "nic=url,nic=url" flag value.
// A bare "url" entry gets its nic label from the URL's host part.
func ParseTargets(spec string) ([]Target, error) {
	var out []Target
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		nic, url, ok := strings.Cut(part, "=")
		if !ok {
			url = part
			nic = strings.TrimPrefix(strings.TrimPrefix(part, "http://"), "https://")
		}
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		out = append(out, Target{Nic: nic, URL: url})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("telemetry: no scrape targets in %q", spec)
	}
	return out, nil
}

// TargetScrape is one target's parsed page (or its scrape error).
type TargetScrape struct {
	Target
	Err    error
	Scrape Scrape
}

// FleetSnapshot is every target scraped at (roughly) one instant.
type FleetSnapshot struct {
	Scrapes []TargetScrape
}

// Collector pulls the fleet's registries over their existing HTTP
// surfaces. The zero value is not ready — use NewCollector.
type Collector struct {
	targets []Target
	client  *http.Client
	// fetch is swappable for tests and for scraping in-memory
	// registries without a listener.
	fetch func(ctx context.Context, url string) (io.ReadCloser, error)
}

// NewCollector builds a collector over the given targets.
func NewCollector(targets []Target) *Collector {
	c := &Collector{
		targets: targets,
		client:  &http.Client{Timeout: 5 * time.Second},
	}
	c.fetch = c.httpFetch
	return c
}

// SetFetcher overrides the page fetcher (tests, in-memory registries).
func (c *Collector) SetFetcher(fn func(ctx context.Context, url string) (io.ReadCloser, error)) {
	c.fetch = fn
}

func (c *Collector) httpFetch(ctx context.Context, url string) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("telemetry: scrape %s: HTTP %d", url, resp.StatusCode)
	}
	return resp.Body, nil
}

// Collect scrapes every target concurrently. Per-target failures are
// recorded, not fatal: a dead worker must not blind the fleet view.
func (c *Collector) Collect(ctx context.Context) FleetSnapshot {
	snap := FleetSnapshot{Scrapes: make([]TargetScrape, len(c.targets))}
	var wg sync.WaitGroup
	for i, t := range c.targets {
		wg.Add(1)
		go func(i int, t Target) {
			defer wg.Done()
			snap.Scrapes[i] = c.scrapeOne(ctx, t)
		}(i, t)
	}
	wg.Wait()
	return snap
}

func (c *Collector) scrapeOne(ctx context.Context, t Target) TargetScrape {
	ts := TargetScrape{Target: t}
	body, err := c.fetch(ctx, t.URL)
	if err != nil {
		ts.Err = err
		return ts
	}
	defer body.Close()
	ts.Scrape, ts.Err = ParseExposition(body)
	return ts
}

// FleetRow is one (nic, workload) line of the fleet view, computed
// from the delta between two snapshots.
type FleetRow struct {
	Nic      string `json:"nic"`
	Workload string `json:"workload"` // "" for the node-wide row
	// Tenant is the owning tenant when the scraped series carries a
	// tenant label ("" otherwise).
	Tenant   string `json:"tenant,omitempty"`
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// Shed counts requests dropped before execution: worker/gateway
	// pool drops on node rows, admission throttles on tenant rows.
	Shed     uint64  `json:"shed"`
	RatePerS float64 `json:"rate_per_sec"`
	// Bypass counts requests served by the one-sided fast path (no
	// lambda invocation); BypassPerS is its rate over the window.
	Bypass     uint64  `json:"bypass,omitempty"`
	BypassPerS float64 `json:"bypass_per_sec,omitempty"`
	// Flows is the gateway's standing pinned-flow count (elephant
	// migrations in effect) — a gauge, so the current value rather than
	// a delta. Worker rows report zero.
	Flows uint64 `json:"flows,omitempty"`
	// WarmPct is the worker's warm-state hit rate over the window (0
	// when the node tracked no lookups). HasWarm distinguishes a real
	// 0% hit rate from "not a worker / tracking disabled".
	WarmPct float64 `json:"warm_pct,omitempty"`
	HasWarm bool    `json:"has_warm,omitempty"`
	// Place is the placement engine's current side for the workload
	// (HOST, NIC, or MIG while a migration is draining), from the
	// lnic_placement_state gauge; "" when the node runs no engine.
	Place string `json:"place,omitempty"`
	// Migrations is the node's completed boundary-migration count
	// (lnic_placement_migrations_total, a lifetime total on the node
	// row — placement moves are rare events, so the standing count
	// reads better than a per-window delta).
	Migrations uint64  `json:"migrations,omitempty"`
	P50        float64 `json:"p50_seconds"`
	P99        float64 `json:"p99_seconds"`
}

// latencyFamilies maps a scraped histogram family to the workload
// label the fleet view groups by. The node-wide families carry no
// workload label; the per-workload family carries one.
var latencyFamilies = map[string]bool{
	"lnic_worker_latency_seconds":           true,
	"lnic_worker_workload_latency_seconds":  true,
	"lnic_gateway_upstream_latency_seconds": true,
}

// errorFamilies are the per-node counters summed into each node-wide
// row's error column.
var errorFamilies = []string{
	"lnic_worker_errors_total",
	"lnic_gateway_upstream_errors_total",
}

// shedFamilies are the per-node pre-execution drop counters summed into
// each node-wide row's shed column.
var shedFamilies = []string{
	"lnic_worker_pool_drops_total",
	"lnic_gateway_pool_drops_total",
	"lnic_gateway_tenant_throttled_total",
}

// tenantShedFamily is the gateway's per-tenant admission shed counter;
// each tenant-labeled series becomes an "(admission)" row.
const tenantShedFamily = "lnic_gateway_tenant_shed_total"

// bypassFamily is the worker's per-workload one-sided fast-path
// counter, surfaced as the fleet view's 1SIDED/S column.
const bypassFamily = "lnic_worker_bypass_total"

// Flow-affinity families: the gateway's standing-pin gauge and the
// worker's warm-state counters, surfaced as FLOWS and WARM%.
const (
	pinnedFlowsFamily = "lnic_gateway_pinned_flows"
	warmHitsFamily    = "lnic_worker_warm_hits_total"
	warmLookupsFamily = "lnic_worker_warm_lookups_total"
)

// Placement families: the engine's per-workload side gauge and the
// node's completed-migration counter, surfaced as PLACE and MIG.
const (
	placementStateFamily      = "lnic_placement_state"
	placementMigrationsFamily = "lnic_placement_migrations_total"
)

// placeName decodes the lnic_placement_state gauge (the
// placement.Location enum) into the fleet view's PLACE column.
func placeName(v float64) string {
	switch int(v) {
	case 0:
		return "HOST"
	case 1:
		return "NIC"
	case 2:
		return "MIG"
	default:
		return "?"
	}
}

// FleetRows computes the per-(nic, workload) view from the delta
// between two snapshots taken `elapsed` apart. Targets that failed in
// either snapshot contribute an error row with no numbers.
func FleetRows(prev, cur FleetSnapshot, elapsed time.Duration) []FleetRow {
	var rows []FleetRow
	prevByNic := map[string]TargetScrape{}
	for _, ts := range prev.Scrapes {
		prevByNic[ts.Nic] = ts
	}
	for _, ts := range cur.Scrapes {
		if ts.Err != nil {
			rows = append(rows, FleetRow{Nic: ts.Nic, Workload: "(scrape failed)"})
			continue
		}
		prevTS, hasPrev := prevByNic[ts.Nic]
		if hasPrev && prevTS.Err != nil {
			hasPrev = false
		}
		prevHists := map[string]ScrapedHistogram{}
		if hasPrev {
			for _, h := range prevTS.Scrape.Histograms() {
				prevHists[h.Name+"|"+labelKey(h.Labels)] = h
			}
		}
		counterDelta := func(fam string, labels map[string]string) uint64 {
			curV, ok := ts.Scrape.Value(fam, labels)
			if !ok {
				return 0
			}
			prevV := 0.0
			if hasPrev {
				prevV, _ = prevTS.Scrape.Value(fam, labels)
			}
			if curV > prevV {
				return uint64(curV - prevV)
			}
			return 0
		}
		var nodeErrs, nodeShed uint64
		for _, fam := range errorFamilies {
			nodeErrs += counterDelta(fam, nil)
		}
		for _, fam := range shedFamilies {
			nodeShed += counterDelta(fam, nil)
		}
		for _, h := range ts.Scrape.Histograms() {
			if !latencyFamilies[h.Name] {
				continue
			}
			delta := h
			if prevH, ok := prevHists[h.Name+"|"+labelKey(h.Labels)]; ok {
				delta = h.Sub(prevH)
			}
			row := FleetRow{
				Nic:      ts.Nic,
				Workload: h.Labels["workload"],
				Tenant:   h.Labels["tenant"],
				Requests: delta.Count,
				P50:      delta.Quantile(0.50),
				P99:      delta.Quantile(0.99),
			}
			if row.Workload == "" {
				row.Errors = nodeErrs
				row.Shed = nodeShed
				// FLOWS: the gateway's standing pins, a gauge — report the
				// current value, not a delta.
				if pins, ok := ts.Scrape.Value(pinnedFlowsFamily, nil); ok && pins > 0 {
					row.Flows = uint64(pins)
				}
				// WARM%: worker warm hits over lookups within the window.
				if lookups := counterDelta(warmLookupsFamily, nil); lookups > 0 {
					row.HasWarm = true
					row.WarmPct = 100 * float64(counterDelta(warmHitsFamily, nil)) / float64(lookups)
				}
				// MIG: the node's lifetime boundary-migration count.
				if migs, ok := ts.Scrape.Value(placementMigrationsFamily, nil); ok && migs > 0 {
					row.Migrations = uint64(migs)
				}
			} else {
				row.Bypass = counterDelta(bypassFamily, h.Labels)
				// PLACE: which side of the NIC/host boundary the engine
				// currently runs this workload on.
				if st, ok := ts.Scrape.Value(placementStateFamily,
					map[string]string{"workload": row.Workload}); ok {
					row.Place = placeName(st)
				}
			}
			if elapsed > 0 {
				row.RatePerS = float64(delta.Count) / elapsed.Seconds()
				row.BypassPerS = float64(row.Bypass) / elapsed.Seconds()
			}
			rows = append(rows, row)
		}
		// Per-tenant admission sheds become their own rows so a
		// tenant-filtered view still shows what the gateway dropped.
		for _, sm := range ts.Scrape.Samples {
			if sm.Name != tenantShedFamily || sm.Labels["tenant"] == "" {
				continue
			}
			rows = append(rows, FleetRow{
				Nic:      ts.Nic,
				Workload: "(admission)",
				Tenant:   sm.Labels["tenant"],
				Shed:     counterDelta(tenantShedFamily, sm.Labels),
			})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nic != rows[j].Nic {
			return rows[i].Nic < rows[j].Nic
		}
		return rows[i].Workload < rows[j].Workload
	})
	return rows
}

// FilterTenant keeps the rows owned by one tenant (plus scrape-failure
// rows, which must never be hidden by a filter).
func FilterTenant(rows []FleetRow, tenantName string) []FleetRow {
	if tenantName == "" {
		return rows
	}
	out := make([]FleetRow, 0, len(rows))
	for _, r := range rows {
		if r.Tenant == tenantName || r.Workload == "(scrape failed)" {
			out = append(out, r)
		}
	}
	return out
}

// RenderTop renders the fleet rows as the lnicctl top table.
func RenderTop(rows []FleetRow, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet view over %s\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-10s %-18s %-10s %-5s %9s %8s %8s %10s %10s %6s %6s %5s %10s %10s\n",
		"NIC", "WORKLOAD", "TENANT", "PLACE", "REQS", "ERRS", "SHED", "REQ/S", "1SIDED/S", "FLOWS", "WARM%", "MIG", "P50", "P99")
	for _, r := range rows {
		if r.Workload == "(scrape failed)" {
			fmt.Fprintf(&b, "%-10s %-18s %s\n", r.Nic, "-", "scrape failed")
			continue
		}
		wl := r.Workload
		if wl == "" {
			wl = "(node)"
		}
		ten := r.Tenant
		if ten == "" {
			ten = "-"
		}
		place := r.Place
		if place == "" {
			place = "-"
		}
		warm := "-"
		if r.HasWarm {
			warm = fmt.Sprintf("%.1f", r.WarmPct)
		}
		fmt.Fprintf(&b, "%-10s %-18s %-10s %-5s %9d %8d %8d %10.1f %10.1f %6d %6s %5d %10s %10s\n",
			r.Nic, wl, ten, place, r.Requests, r.Errors, r.Shed, r.RatePerS, r.BypassPerS,
			r.Flows, warm, r.Migrations, fmtSeconds(r.P50), fmtSeconds(r.P99))
	}
	return b.String()
}

func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// FleetSLO grades scraped deltas against objectives: availability from
// the request/error counters, latency from the merged node-wide
// histograms. It returns one status per objective.
func FleetSLO(prev, cur FleetSnapshot, objectives []Objective) ([]ObjectiveStatus, error) {
	var reqs, errs uint64
	var merged ScrapedHistogram
	prevByNic := map[string]TargetScrape{}
	for _, ts := range prev.Scrapes {
		prevByNic[ts.Nic] = ts
	}
	for _, ts := range cur.Scrapes {
		if ts.Err != nil {
			continue
		}
		prevTS, hasPrev := prevByNic[ts.Nic]
		if hasPrev && prevTS.Err != nil {
			hasPrev = false
		}
		counterDelta := func(name string) uint64 {
			curV, ok := ts.Scrape.Value(name, nil)
			if !ok {
				return 0
			}
			prevV := 0.0
			if hasPrev {
				prevV, _ = prevTS.Scrape.Value(name, nil)
			}
			if curV > prevV {
				return uint64(curV - prevV)
			}
			return 0
		}
		for _, fam := range errorFamilies {
			errs += counterDelta(fam)
		}
		prevHists := map[string]ScrapedHistogram{}
		if hasPrev {
			for _, h := range prevTS.Scrape.Histograms() {
				prevHists[h.Name+"|"+labelKey(h.Labels)] = h
			}
		}
		for _, h := range ts.Scrape.Histograms() {
			// Node-wide families only: the per-workload family would
			// double-count every request.
			if !latencyFamilies[h.Name] || h.Labels["workload"] != "" {
				continue
			}
			delta := h
			if prevH, ok := prevHists[h.Name+"|"+labelKey(h.Labels)]; ok {
				delta = h.Sub(prevH)
			}
			reqs += delta.Count
			merged.Merge(delta)
		}
	}
	total := reqs + errs
	out := make([]ObjectiveStatus, 0, len(objectives))
	for _, o := range objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		st := ObjectiveStatus{Objective: o, GoodFraction: 1.0}
		switch o.Kind {
		case ObjectiveAvailability:
			if total > 0 {
				st.GoodFraction = float64(reqs) / float64(total)
			}
		case ObjectiveLatency:
			st.GoodFraction = merged.FracAtOrBelow(o.Threshold.Seconds())
		}
		st.BurnRate = (1 - st.GoodFraction) / (1 - o.Target)
		st.Met = st.GoodFraction >= o.Target
		out = append(out, st)
	}
	return out, nil
}

// FleetSLOTenant grades one tenant's traffic: latency from the merged
// tenant-labeled per-workload histograms, availability counting the
// gateway's admission sheds for that tenant as the bad events — the
// question it answers is "did this tenant's admitted traffic meet its
// objectives, and how much was turned away".
func FleetSLOTenant(prev, cur FleetSnapshot, objectives []Objective, tenantName string) ([]ObjectiveStatus, error) {
	if tenantName == "" {
		return FleetSLO(prev, cur, objectives)
	}
	var reqs, shed uint64
	var merged ScrapedHistogram
	prevByNic := map[string]TargetScrape{}
	for _, ts := range prev.Scrapes {
		prevByNic[ts.Nic] = ts
	}
	for _, ts := range cur.Scrapes {
		if ts.Err != nil {
			continue
		}
		prevTS, hasPrev := prevByNic[ts.Nic]
		if hasPrev && prevTS.Err != nil {
			hasPrev = false
		}
		prevHists := map[string]ScrapedHistogram{}
		if hasPrev {
			for _, h := range prevTS.Scrape.Histograms() {
				prevHists[h.Name+"|"+labelKey(h.Labels)] = h
			}
		}
		for _, h := range ts.Scrape.Histograms() {
			if !latencyFamilies[h.Name] || h.Labels["tenant"] != tenantName {
				continue
			}
			delta := h
			if prevH, ok := prevHists[h.Name+"|"+labelKey(h.Labels)]; ok {
				delta = h.Sub(prevH)
			}
			reqs += delta.Count
			merged.Merge(delta)
		}
		labels := map[string]string{"tenant": tenantName}
		if curV, ok := ts.Scrape.Value(tenantShedFamily, labels); ok {
			prevV := 0.0
			if hasPrev {
				prevV, _ = prevTS.Scrape.Value(tenantShedFamily, labels)
			}
			if curV > prevV {
				shed += uint64(curV - prevV)
			}
		}
	}
	total := reqs + shed
	out := make([]ObjectiveStatus, 0, len(objectives))
	for _, o := range objectives {
		if err := o.validate(); err != nil {
			return nil, err
		}
		st := ObjectiveStatus{Objective: o, GoodFraction: 1.0}
		switch o.Kind {
		case ObjectiveAvailability:
			if total > 0 {
				st.GoodFraction = float64(reqs) / float64(total)
			}
		case ObjectiveLatency:
			st.GoodFraction = merged.FracAtOrBelow(o.Threshold.Seconds())
		}
		st.BurnRate = (1 - st.GoodFraction) / (1 - o.Target)
		st.Met = st.GoodFraction >= o.Target
		out = append(out, st)
	}
	return out, nil
}

// RenderSLO renders objective statuses as the lnicctl slo table.
func RenderSLO(statuses []ObjectiveStatus, elapsed time.Duration) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet SLO over %s\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-24s %-13s %8s %10s %10s %6s\n",
		"OBJECTIVE", "KIND", "TARGET", "GOOD", "BURN", "MET")
	for _, s := range statuses {
		kind := string(s.Kind)
		if s.Kind == ObjectiveLatency {
			kind = fmt.Sprintf("p≤%s", s.Threshold)
		}
		met := "no"
		if s.Met {
			met = "yes"
		}
		fmt.Fprintf(&b, "%-24s %-13s %7.4g%% %9.4f%% %9.2fx %6s\n",
			s.Name, kind, s.Target*100, s.GoodFraction*100, s.BurnRate, met)
	}
	return b.String()
}
