package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

// tenantFleet populates the fixture with tenant-labeled workload
// series on the worker and per-tenant shed series on the gateway, then
// drives one delta window: 50 fast interactive requests, 50 slow batch
// requests, 30 batch sheds.
func tenantFleet(t *testing.T) (prev, cur FleetSnapshot) {
	t.Helper()
	c, worker, gatewayReg := fleetFixture(t)

	vip := NewHistogram()
	if err := vip.Expose(worker, "lnic_worker_workload_latency_seconds", "latency",
		map[string]string{"workload": "web_server", "tenant": "vip"}); err != nil {
		t.Fatal(err)
	}
	bulk := NewHistogram()
	if err := bulk.Expose(worker, "lnic_worker_workload_latency_seconds", "latency",
		map[string]string{"workload": "batch_sweep", "tenant": "bulk"}); err != nil {
		t.Fatal(err)
	}
	throttled := gatewayReg.MustCounter("lnic_gateway_tenant_throttled_total", "sheds", nil)
	bulkShed := gatewayReg.MustCounter("lnic_gateway_tenant_shed_total", "sheds",
		map[string]string{"tenant": "bulk"})
	gatewayReg.MustCounter("lnic_gateway_tenant_shed_total", "sheds",
		map[string]string{"tenant": "vip"})

	prev = NewCollectorSnapshot(t, c)
	for i := 0; i < 50; i++ {
		vip.ObserveDuration(time.Millisecond)
		bulk.ObserveDuration(50 * time.Millisecond)
	}
	throttled.Add(30)
	bulkShed.Add(30)
	cur = NewCollectorSnapshot(t, c)
	return prev, cur
}

// NewCollectorSnapshot collects one snapshot, failing the test on any
// per-target scrape error.
func NewCollectorSnapshot(t *testing.T, c *Collector) FleetSnapshot {
	t.Helper()
	snap := c.Collect(context.Background())
	for _, ts := range snap.Scrapes {
		if ts.Err != nil {
			t.Fatalf("scrape %s: %v", ts.Nic, ts.Err)
		}
	}
	return snap
}

func TestFleetRowsCarryTenantAndShed(t *testing.T) {
	prev, cur := tenantFleet(t)
	rows := FleetRows(prev, cur, 10*time.Second)

	byKey := map[string]FleetRow{}
	for _, r := range rows {
		byKey[r.Nic+"/"+r.Workload+"/"+r.Tenant] = r
	}
	if r := byKey["m2/web_server/vip"]; r.Requests != 50 {
		t.Errorf("vip row = %+v", r)
	}
	if r := byKey["m2/batch_sweep/bulk"]; r.Requests != 50 {
		t.Errorf("bulk row = %+v", r)
	}
	// The gateway's node-wide shed sum and the per-tenant admission row.
	if r := byKey["gateway/(admission)/bulk"]; r.Shed != 30 {
		t.Errorf("bulk admission row = %+v", r)
	}
	if r := byKey["gateway/(admission)/vip"]; r.Shed != 0 {
		t.Errorf("vip admission row = %+v", r)
	}

	top := RenderTop(rows, 10*time.Second)
	if !strings.Contains(top, "TENANT") || !strings.Contains(top, "SHED") {
		t.Errorf("top header missing tenant/shed columns:\n%s", top)
	}
	if !strings.Contains(top, "(admission)") {
		t.Errorf("top output missing admission row:\n%s", top)
	}
}

func TestFilterTenant(t *testing.T) {
	prev, cur := tenantFleet(t)
	rows := FilterTenant(FleetRows(prev, cur, 10*time.Second), "bulk")
	if len(rows) != 2 {
		t.Fatalf("filtered rows = %+v, want batch_sweep + admission", rows)
	}
	for _, r := range rows {
		if r.Tenant != "bulk" {
			t.Errorf("foreign row leaked through filter: %+v", r)
		}
	}
	// Empty filter is the identity.
	all := FleetRows(prev, cur, 10*time.Second)
	if got := FilterTenant(all, ""); len(got) != len(all) {
		t.Errorf("empty filter dropped rows")
	}
}

func TestFleetSLOTenantScopesGrading(t *testing.T) {
	prev, cur := tenantFleet(t)
	objectives := []Objective{
		{Name: "availability", Kind: ObjectiveAvailability, Target: 0.9},
		{Name: "p99", Kind: ObjectiveLatency, Target: 0.99, Threshold: 10 * time.Millisecond},
	}

	// vip: nothing shed, every request ≈1ms — both objectives met.
	vip, err := FleetSLOTenant(prev, cur, objectives, "vip")
	if err != nil {
		t.Fatal(err)
	}
	if !vip[0].Met || vip[0].GoodFraction != 1.0 {
		t.Errorf("vip availability = %+v", vip[0])
	}
	if !vip[1].Met {
		t.Errorf("vip latency = %+v", vip[1])
	}

	// bulk: 50 served, 30 shed → availability 50/80; latency 50ms ≫ 10ms.
	bulk, err := FleetSLOTenant(prev, cur, objectives, "bulk")
	if err != nil {
		t.Fatal(err)
	}
	if bulk[0].Met || bulk[0].GoodFraction < 0.62 || bulk[0].GoodFraction > 0.63 {
		t.Errorf("bulk availability = %+v, want 0.625 unmet", bulk[0])
	}
	if bulk[1].Met || bulk[1].GoodFraction > 0.01 {
		t.Errorf("bulk latency = %+v, want unmet", bulk[1])
	}
}
