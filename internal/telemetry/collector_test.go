package telemetry

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"lambdanic/internal/mcc"
	"lambdanic/internal/monitor"
	"lambdanic/internal/placement"
)

func TestParseExposition(t *testing.T) {
	page := `# HELP lnic_requests_total requests
# TYPE lnic_requests_total counter
lnic_requests_total{nic="m2",workload="web_server"} 41
# TYPE lnic_escapes gauge
lnic_escapes{path="C:\\tmp",quote="say \"hi\"",nl="a\nb"} 1.5
# TYPE lnic_latency_seconds histogram
lnic_latency_seconds_bucket{le="0.001"} 2
lnic_latency_seconds_bucket{le="0.01"} 5
lnic_latency_seconds_bucket{le="+Inf"} 6
lnic_latency_seconds_sum 0.75
lnic_latency_seconds_count 6
`
	s, err := ParseExposition(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Value("lnic_requests_total", map[string]string{"workload": "web_server"}); !ok || v != 41 {
		t.Errorf("counter = %v %v", v, ok)
	}
	if v, ok := s.Value("lnic_escapes", nil); !ok || v != 1.5 {
		t.Errorf("gauge = %v %v", v, ok)
	}
	var esc ScrapedSample
	for _, sm := range s.Samples {
		if sm.Name == "lnic_escapes" {
			esc = sm
		}
	}
	if esc.Labels["path"] != `C:\tmp` || esc.Labels["quote"] != `say "hi"` || esc.Labels["nl"] != "a\nb" {
		t.Errorf("unescaping wrong: %+v", esc.Labels)
	}

	hists := s.Histograms()
	if len(hists) != 1 {
		t.Fatalf("histograms = %d, want 1", len(hists))
	}
	h := hists[0]
	if h.Name != "lnic_latency_seconds" || h.Count != 6 || h.Sum != 0.75 {
		t.Errorf("histogram = %+v", h)
	}
	if len(h.Bounds) != 2 || h.Cumulative[2] != 6 {
		t.Errorf("buckets = %v %v", h.Bounds, h.Cumulative)
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, page := range []string{
		"lnic_x{le=\"0.1\" 3\n",     // unterminated labels
		"lnic_x\n",                  // no value
		"lnic_x{le=unquoted} 3\n",   // unquoted label
		"lnic_x{le=\"0.1\"} nope\n", // bad value
	} {
		if _, err := ParseExposition(strings.NewReader(page)); err == nil {
			t.Errorf("page %q accepted", page)
		}
	}
}

// TestScrapeRoundTrip scrapes a real registry render — the parser and
// the renderer must agree, including the telemetry histogram bridge.
func TestScrapeRoundTrip(t *testing.T) {
	reg := monitor.NewRegistry()
	reg.MustCounter("lnic_worker_errors_total", "failures", nil).Add(3)
	th := NewHistogram()
	for i := 0; i < 100; i++ {
		th.ObserveDuration(1800 * time.Microsecond)
	}
	if err := th.Expose(reg, "lnic_worker_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}

	s, err := ParseExposition(strings.NewReader(reg.Render()))
	if err != nil {
		t.Fatal(err)
	}
	hists := s.Histograms()
	if len(hists) != 1 {
		t.Fatalf("histograms = %d", len(hists))
	}
	h := hists[0]
	if h.Count != 100 {
		t.Errorf("count = %d", h.Count)
	}
	// All samples sat at 1.8ms; the scraped p99 must land inside the
	// (1ms, 2ms] exposition bucket.
	p99 := h.Quantile(0.99)
	if p99 < 0.001 || p99 > 0.002001 {
		t.Errorf("scraped p99 = %v, want ≈2ms", p99)
	}
	if frac := h.FracAtOrBelow(0.005); frac < 0.99 {
		t.Errorf("FracAtOrBelow(5ms) = %v, want ≈1", frac)
	}
	if frac := h.FracAtOrBelow(0.0001); frac > 0.2 {
		t.Errorf("FracAtOrBelow(0.1ms) = %v, want ≈0", frac)
	}
}

// fleetFixture builds two registries (a worker and a gateway) and a
// collector whose fetcher serves their renders by URL.
func fleetFixture(t *testing.T) (*Collector, *monitor.Registry, *monitor.Registry) {
	t.Helper()
	worker := monitor.NewRegistry()
	gatewayReg := monitor.NewRegistry()
	pages := map[string]*monitor.Registry{
		"http://m2/":      worker,
		"http://gateway/": gatewayReg,
	}
	targets := []Target{{Nic: "m2", URL: "http://m2/"}, {Nic: "gateway", URL: "http://gateway/"}}
	c := NewCollector(targets)
	c.SetFetcher(func(ctx context.Context, url string) (io.ReadCloser, error) {
		reg, ok := pages[url]
		if !ok {
			return nil, fmt.Errorf("no such target %s", url)
		}
		return io.NopCloser(strings.NewReader(reg.Render())), nil
	})
	return c, worker, gatewayReg
}

func TestFleetRowsAndSLO(t *testing.T) {
	c, worker, gatewayReg := fleetFixture(t)

	errs := worker.MustCounter("lnic_worker_errors_total", "failures", nil)
	wh := NewHistogram()
	if err := wh.Expose(worker, "lnic_worker_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}
	wlh := NewHistogram()
	if err := wlh.Expose(worker, "lnic_worker_workload_latency_seconds", "latency",
		map[string]string{"workload": "web_server"}); err != nil {
		t.Fatal(err)
	}
	gh := NewHistogram()
	if err := gh.Expose(gatewayReg, "lnic_gateway_upstream_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}
	bypass := worker.MustCounter("lnic_worker_bypass_total", "one-sided fast-path hits",
		map[string]string{"workload": "web_server"})

	prev := c.Collect(context.Background())
	for i := 0; i < 100; i++ {
		wh.ObserveDuration(time.Millisecond)
		wlh.ObserveDuration(time.Millisecond)
		gh.ObserveDuration(1800 * time.Microsecond)
	}
	errs.Add(2)
	bypass.Add(40)
	cur := c.Collect(context.Background())

	rows := FleetRows(prev, cur, 10*time.Second)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3: %+v", len(rows), rows)
	}
	byKey := map[string]FleetRow{}
	for _, r := range rows {
		byKey[r.Nic+"/"+r.Workload] = r
	}
	node := byKey["m2/"]
	if node.Requests != 100 || node.Errors != 2 {
		t.Errorf("node row = %+v", node)
	}
	if node.RatePerS < 9.9 || node.RatePerS > 10.1 {
		t.Errorf("rate = %v, want 10/s", node.RatePerS)
	}
	wl := byKey["m2/web_server"]
	if wl.Requests != 100 || wl.Errors != 0 {
		t.Errorf("workload row = %+v", wl)
	}
	if wl.Bypass != 40 || wl.BypassPerS < 3.9 || wl.BypassPerS > 4.1 {
		t.Errorf("bypass = %d at %v/s, want 40 at 4/s", wl.Bypass, wl.BypassPerS)
	}
	if node.Bypass != 0 {
		t.Errorf("node row carries bypass count %d", node.Bypass)
	}
	gw := byKey["gateway/"]
	if gw.Requests != 100 {
		t.Errorf("gateway row = %+v", gw)
	}
	if gw.P99 < 0.001 || gw.P99 > 0.0021 {
		t.Errorf("gateway p99 = %v, want ≈2ms", gw.P99)
	}

	top := RenderTop(rows, 10*time.Second)
	for _, want := range []string{"m2", "gateway", "web_server", "(node)", "1SIDED/S"} {
		if !strings.Contains(top, want) {
			t.Errorf("top output missing %q:\n%s", want, top)
		}
	}

	statuses, err := FleetSLO(prev, cur, []Objective{
		{Name: "availability", Kind: ObjectiveAvailability, Target: 0.999},
		{Name: "p99", Kind: ObjectiveLatency, Target: 0.99, Threshold: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 2 {
		t.Fatalf("statuses = %d", len(statuses))
	}
	// 2 errors against 200 successes (node-wide families only; the
	// per-workload family must not double-count).
	av := statuses[0]
	if av.GoodFraction < 0.98 || av.GoodFraction > 0.995 {
		t.Errorf("availability good fraction = %v, want ≈200/202", av.GoodFraction)
	}
	if av.Met {
		t.Error("availability met with 1% errors against 0.1% budget")
	}
	lat := statuses[1]
	if !lat.Met {
		t.Errorf("latency objective unmet: %+v", lat)
	}
	out := RenderSLO(statuses, 10*time.Second)
	if !strings.Contains(out, "availability") || !strings.Contains(out, "p99") {
		t.Errorf("slo output incomplete:\n%s", out)
	}
}

func TestCollectSurvivesDeadTarget(t *testing.T) {
	c, worker, _ := fleetFixture(t)
	wh := NewHistogram()
	if err := wh.Expose(worker, "lnic_worker_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}
	c.SetFetcher(func(ctx context.Context, url string) (io.ReadCloser, error) {
		if url == "http://gateway/" {
			return nil, fmt.Errorf("connection refused")
		}
		return io.NopCloser(strings.NewReader(worker.Render())), nil
	})
	prev := c.Collect(context.Background())
	wh.ObserveDuration(time.Millisecond)
	cur := c.Collect(context.Background())
	rows := FleetRows(prev, cur, time.Second)
	var failed, ok bool
	for _, r := range rows {
		if r.Workload == "(scrape failed)" && r.Nic == "gateway" {
			failed = true
		}
		if r.Nic == "m2" && r.Requests == 1 {
			ok = true
		}
	}
	if !failed || !ok {
		t.Errorf("rows = %+v, want one failed gateway row and a live m2 row", rows)
	}
}

func TestParseTargets(t *testing.T) {
	ts, err := ParseTargets("m2=127.0.0.1:9100,gateway=http://127.0.0.1:9101/,127.0.0.1:9102")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("targets = %d", len(ts))
	}
	if ts[0].Nic != "m2" || ts[0].URL != "http://127.0.0.1:9100" {
		t.Errorf("target 0 = %+v", ts[0])
	}
	if ts[1].URL != "http://127.0.0.1:9101/" {
		t.Errorf("target 1 = %+v", ts[1])
	}
	if ts[2].Nic != "127.0.0.1:9102" {
		t.Errorf("target 2 = %+v", ts[2])
	}
	if _, err := ParseTargets(" , "); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestExpositionBridge(t *testing.T) {
	// The telemetry histogram rendered through the monitoring engine
	// must produce a well-formed cumulative histogram: monotone, +Inf
	// equal to count.
	h := NewHistogram()
	for _, d := range []time.Duration{
		500 * time.Nanosecond, 30 * time.Microsecond, 1800 * time.Microsecond,
		1800 * time.Microsecond, 80 * time.Millisecond, 30 * time.Second,
	} {
		h.ObserveDuration(d)
	}
	snap := h.Snapshot().Exposition(monitor.FineLatencyBuckets, 1e-9)
	if snap.Count != 6 {
		t.Fatalf("count = %d", snap.Count)
	}
	if len(snap.Cumulative) != len(monitor.FineLatencyBuckets)+1 {
		t.Fatalf("cumulative len = %d", len(snap.Cumulative))
	}
	last := uint64(0)
	for i, c := range snap.Cumulative {
		if c < last {
			t.Fatalf("cumulative not monotone at %d: %v", i, snap.Cumulative)
		}
		last = c
	}
	if snap.Cumulative[len(snap.Cumulative)-1] != 6 {
		t.Errorf("+Inf bucket = %d, want 6", snap.Cumulative[len(snap.Cumulative)-1])
	}
	// The 30s sample exceeds the 10s top bound: it must live only in
	// +Inf.
	if snap.Cumulative[len(snap.Cumulative)-2] != 5 {
		t.Errorf("10s bucket = %d, want 5", snap.Cumulative[len(snap.Cumulative)-2])
	}
	// The 1.8ms pair lands at the 2e-3 bound, not below it.
	var at2ms uint64
	for i, b := range monitor.FineLatencyBuckets {
		if b == 2e-3 {
			at2ms = snap.Cumulative[i]
		}
	}
	if at2ms != 4 {
		t.Errorf("≤2ms = %d, want 4", at2ms)
	}
	// Sum is reconstructed from bucket midpoints, so it carries the
	// bucket's ~3% relative error.
	if snap.Sum < 29 || snap.Sum > 31 {
		t.Errorf("sum = %v, want ≈30.08s", snap.Sum)
	}
}

func TestFleetRowsFlowAffinity(t *testing.T) {
	c, worker, gatewayReg := fleetFixture(t)

	wh := NewHistogram()
	if err := wh.Expose(worker, "lnic_worker_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}
	gh := NewHistogram()
	if err := gh.Expose(gatewayReg, "lnic_gateway_upstream_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}
	hits := worker.MustCounter("lnic_worker_warm_hits_total", "warm hits", nil)
	lookups := worker.MustCounter("lnic_worker_warm_lookups_total", "warm lookups", nil)
	pins := gatewayReg.MustGauge("lnic_gateway_pinned_flows", "standing pins", nil)

	prev := c.Collect(context.Background())
	for i := 0; i < 10; i++ {
		wh.ObserveDuration(time.Millisecond)
		gh.ObserveDuration(time.Millisecond)
	}
	lookups.Add(80)
	hits.Add(60)
	pins.Set(5)
	cur := c.Collect(context.Background())

	rows := FleetRows(prev, cur, 10*time.Second)
	byKey := map[string]FleetRow{}
	for _, r := range rows {
		byKey[r.Nic+"/"+r.Workload] = r
	}
	node := byKey["m2/"]
	if !node.HasWarm {
		t.Fatalf("worker node row has no warm tracking: %+v", node)
	}
	if node.WarmPct < 74.9 || node.WarmPct > 75.1 {
		t.Errorf("warm pct = %v, want 75 (60/80)", node.WarmPct)
	}
	if node.Flows != 0 {
		t.Errorf("worker row carries pinned flows %d", node.Flows)
	}
	gw := byKey["gateway/"]
	if gw.Flows != 5 {
		t.Errorf("gateway pinned flows = %d, want 5 (gauge value, not delta)", gw.Flows)
	}
	if gw.HasWarm {
		t.Errorf("gateway row claims warm tracking: %+v", gw)
	}

	top := RenderTop(rows, 10*time.Second)
	for _, want := range []string{"FLOWS", "WARM%", "75.0"} {
		if !strings.Contains(top, want) {
			t.Errorf("top output missing %q:\n%s", want, top)
		}
	}
	// Warm hit rate resets per window: a second delta with no new
	// lookups shows "-" (no tracking), not a stale percentage.
	rows2 := FleetRows(cur, c.Collect(context.Background()), time.Second)
	for _, r := range rows2 {
		if r.Nic == "m2" && r.Workload == "" && r.HasWarm {
			t.Errorf("idle window still reports warm tracking: %+v", r)
		}
	}
}

// TestFleetRowsPlacement scrapes a real placement engine's metric
// families — the PLACE and MIG columns must agree with the engine's
// exposition, not a hand-rolled copy of its family names.
func TestFleetRowsPlacement(t *testing.T) {
	c, worker, _ := fleetFixture(t)

	wh := NewHistogram()
	if err := wh.Expose(worker, "lnic_worker_latency_seconds", "latency", nil); err != nil {
		t.Fatal(err)
	}
	wlh := NewHistogram()
	if err := wlh.Expose(worker, "lnic_worker_workload_latency_seconds", "latency",
		map[string]string{"workload": "bnd_heavy"}); err != nil {
		t.Fatal(err)
	}
	eng := placement.New(placement.Config{})
	eng.Register("bnd_heavy", mcc.ProgramFootprint{Instructions: 1000}, placement.LocNIC)
	if err := eng.EnableMetrics(worker); err != nil {
		t.Fatal(err)
	}

	prev := c.Collect(context.Background())
	for i := 0; i < 10; i++ {
		wh.ObserveDuration(time.Millisecond)
		wlh.ObserveDuration(time.Millisecond)
	}
	cur := c.Collect(context.Background())

	rows := FleetRows(prev, cur, 10*time.Second)
	byKey := map[string]FleetRow{}
	for _, r := range rows {
		byKey[r.Nic+"/"+r.Workload] = r
	}
	wl := byKey["m2/bnd_heavy"]
	if wl.Place != "NIC" {
		t.Errorf("workload place = %q, want NIC: %+v", wl.Place, wl)
	}
	node := byKey["m2/"]
	if node.Place != "" {
		t.Errorf("node row carries a place %q", node.Place)
	}
	if node.Migrations != 0 {
		t.Errorf("migrations = %d before any move", node.Migrations)
	}

	top := RenderTop(rows, 10*time.Second)
	for _, want := range []string{"PLACE", "MIG", "NIC"} {
		if !strings.Contains(top, want) {
			t.Errorf("top output missing %q:\n%s", want, top)
		}
	}
}
