package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func newTestTracker(t *testing.T) *SLOTracker {
	t.Helper()
	w := NewWindowed(WindowConfig{Slots: 4, SlotDuration: time.Second})
	tr, err := NewSLOTracker(w,
		Objective{Name: "availability", Kind: ObjectiveAvailability, Target: 0.999},
		Objective{Name: "p99-latency", Kind: ObjectiveLatency, Target: 0.99, Threshold: 10 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSLOTrackerHealthySteadyState(t *testing.T) {
	tr := newTestTracker(t)
	w := tr.Windowed()
	w.Stats(0)
	for i := 0; i < 1000; i++ {
		w.Observe(time.Millisecond, false)
	}
	s := tr.Sample(time.Second)
	for _, o := range s.Objs {
		if !o.Met {
			t.Errorf("objective %s not met in healthy state: %+v", o.Name, o)
		}
		if o.BurnRate != 0 {
			t.Errorf("objective %s burn = %v, want 0", o.Name, o.BurnRate)
		}
	}
}

func TestSLOTrackerAvailabilityBurn(t *testing.T) {
	tr := newTestTracker(t)
	w := tr.Windowed()
	w.Stats(0)
	// 1% errors against a 0.1% budget: burn rate 10x.
	for i := 0; i < 990; i++ {
		w.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		w.Observe(0, true)
	}
	s := tr.Sample(time.Second)
	av := s.Status("availability")
	if av == nil {
		t.Fatal("availability objective missing")
	}
	if av.Met {
		t.Error("availability met at 1% errors against 0.1% budget")
	}
	if av.BurnRate < 9.9 || av.BurnRate > 10.1 {
		t.Errorf("burn = %v, want ≈10", av.BurnRate)
	}
}

func TestSLOTrackerLatencyBurn(t *testing.T) {
	tr := newTestTracker(t)
	w := tr.Windowed()
	w.Stats(0)
	// 5% of requests breach the 10ms threshold against a 1% budget:
	// burn ≈ 5x.
	for i := 0; i < 950; i++ {
		w.Observe(time.Millisecond, false)
	}
	for i := 0; i < 50; i++ {
		w.Observe(100*time.Millisecond, false)
	}
	s := tr.Sample(time.Second)
	lat := s.Status("p99-latency")
	if lat == nil {
		t.Fatal("latency objective missing")
	}
	if lat.Met {
		t.Error("latency objective met with 5% breaching")
	}
	if lat.BurnRate < 4.5 || lat.BurnRate > 5.5 {
		t.Errorf("burn = %v, want ≈5", lat.BurnRate)
	}
}

func TestSLOReportSummary(t *testing.T) {
	tr := newTestTracker(t)
	w := tr.Windowed()
	w.Stats(0)

	// Healthy slot, bad slot, then recovery once the bad slot ages out.
	for i := 0; i < 100; i++ {
		w.Observe(time.Millisecond, false)
	}
	tr.Sample(1 * time.Second)
	for i := 0; i < 90; i++ {
		w.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		w.Observe(0, true)
	}
	tr.Sample(2 * time.Second)
	for s := 3; s <= 8; s++ {
		for i := 0; i < 100; i++ {
			w.Observe(time.Millisecond, false)
		}
		tr.Sample(time.Duration(s) * time.Second)
	}

	rep := tr.Report()
	if len(rep.Samples) != 8 {
		t.Fatalf("samples = %d, want 8", len(rep.Samples))
	}
	var av *ObjectiveSummary
	for i := range rep.Summary {
		if rep.Summary[i].Name == "availability" {
			av = &rep.Summary[i]
		}
	}
	if av == nil {
		t.Fatal("availability summary missing")
	}
	if av.WorstBurnRate <= 1 {
		t.Errorf("worst burn = %v, want > 1 (outage slot)", av.WorstBurnRate)
	}
	if av.PeakAt != 2*time.Second {
		t.Errorf("peak at %v, want 2s", av.PeakAt)
	}
	if av.FinalBurnRate != 0 {
		t.Errorf("final burn = %v, want 0 (recovered)", av.FinalBurnRate)
	}

	// JSON round-trips and text renders every objective.
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back SLOReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(rep.Samples) {
		t.Errorf("JSON round-trip lost samples: %d != %d", len(back.Samples), len(rep.Samples))
	}
	text := rep.Text()
	for _, name := range []string{"availability", "p99-latency"} {
		if !strings.Contains(text, name) {
			t.Errorf("text report missing objective %s:\n%s", name, text)
		}
	}
}

func TestObjectiveValidation(t *testing.T) {
	w := NewWindowed(WindowConfig{})
	bad := []Objective{
		{Name: "", Kind: ObjectiveAvailability, Target: 0.99},
		{Name: "x", Kind: ObjectiveAvailability, Target: 0},
		{Name: "x", Kind: ObjectiveAvailability, Target: 1},
		{Name: "x", Kind: ObjectiveLatency, Target: 0.99},
		{Name: "x", Kind: "bogus", Target: 0.99},
	}
	for _, o := range bad {
		if _, err := NewSLOTracker(w, o); err == nil {
			t.Errorf("objective %+v accepted", o)
		}
	}
}
