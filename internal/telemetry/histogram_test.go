package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotone(t *testing.T) {
	// Every bucket's upper bound must map back to its own index, and the
	// next value must map to the next bucket.
	for i := 0; i < nBuckets; i++ {
		ub := BucketUpper(i)
		if got := bucketIndex(ub); got != i {
			t.Fatalf("bucketIndex(BucketUpper(%d)=%d) = %d", i, ub, got)
		}
		if ub < maxValue {
			if got := bucketIndex(ub + 1); got != i+1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d", ub+1, got, i+1)
			}
		}
	}
	if got := bucketIndex(maxValue); got != nBuckets-1 {
		t.Fatalf("bucketIndex(maxValue) = %d, want %d", got, nBuckets-1)
	}
}

func TestBucketRelativeError(t *testing.T) {
	// Log-linear with 32 sub-buckets bounds relative error at ~1/32.
	for _, v := range []int64{100, 999, 12345, 1e6, 1e9, 5e10} {
		i := bucketIndex(v)
		lower := int64(0)
		if i > 0 {
			lower = BucketUpper(i-1) + 1
		}
		width := BucketUpper(i) - lower + 1
		if relErr := float64(width) / float64(v); relErr > 1.0/subCount+1e-9 {
			t.Errorf("value %d: bucket width %d gives relative error %.4f > %.4f",
				v, width, relErr, 1.0/subCount)
		}
	}
}

func TestObserveClamping(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	h.Observe(maxValue + 100)
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Counts[0] != 1 || s.Counts[nBuckets-1] != 1 {
		t.Errorf("clamped samples not in edge buckets")
	}
}

func TestQuantile(t *testing.T) {
	h := NewHistogram()
	// 1..1000 uniformly: p50 ≈ 500, p99 ≈ 990 within bucket resolution.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	checks := []struct {
		q    float64
		want float64
	}{{0.5, 500}, {0.99, 990}, {0.999, 999}, {0, 1}, {1, 1000}}
	for _, c := range checks {
		got := float64(s.Quantile(c.q))
		if math.Abs(got-c.want)/c.want > 2.0/subCount {
			t.Errorf("Quantile(%v) = %v, want ≈%v", c.q, got, c.want)
		}
	}
	if got := (HistSnapshot{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d", got)
	}
}

func TestAtOrBelow(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, v := range []int64{100, 500, 900} {
		got := float64(s.AtOrBelow(v))
		if math.Abs(got-float64(v))/float64(v) > 2.0/subCount {
			t.Errorf("AtOrBelow(%d) = %v, want ≈%d", v, got, v)
		}
	}
	if got := s.AtOrBelow(maxValue); got != 1000 {
		t.Errorf("AtOrBelow(max) = %d, want 1000", got)
	}
	if got := s.AtOrBelow(-1); got != 0 {
		t.Errorf("AtOrBelow(-1) = %d, want 0", got)
	}
}

func TestSubAndMerge(t *testing.T) {
	h := NewHistogram()
	h.Observe(10)
	h.Observe(20)
	older := h.Snapshot()
	h.Observe(30)
	h.Observe(40)
	delta := h.Snapshot().Sub(older)
	if delta.Count != 2 {
		t.Fatalf("delta count = %d, want 2", delta.Count)
	}
	if delta.Counts[bucketIndex(30)] != 1 || delta.Counts[bucketIndex(40)] != 1 {
		t.Errorf("delta buckets wrong")
	}

	var merged HistSnapshot
	merged.Merge(older)
	merged.Merge(delta)
	full := h.Snapshot()
	if merged.Count != full.Count || merged.Sum != full.Sum {
		t.Errorf("merge(older, delta) = {%d %d}, want {%d %d}",
			merged.Count, merged.Sum, full.Count, full.Sum)
	}
}

func TestSnapshotIntoReuses(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	var s HistSnapshot
	h.SnapshotInto(&s)
	buf := &s.Counts[0]
	h.Observe(43)
	h.SnapshotInto(&s)
	if &s.Counts[0] != buf {
		t.Error("SnapshotInto reallocated the bucket slice")
	}
	if s.Count != 2 {
		t.Errorf("count = %d, want 2", s.Count)
	}
}

// TestObserveZeroAlloc is an acceptance criterion: the hot path must
// not allocate.
func TestObserveZeroAlloc(t *testing.T) {
	h := NewHistogram()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(12345)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %.1f times per call, want 0", allocs)
	}
}

// TestHistogramConcurrent hammers one histogram from 8 goroutines (run
// under -race in CI) and checks no samples are lost.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
				if i%128 == 0 {
					// Concurrent reads must be safe too.
					_ = h.Snapshot().Count
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != goroutines*perG {
		t.Fatalf("count = %d, want %d (lost samples under contention)", got, goroutines*perG)
	}
}

func TestObserveDuration(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatal("sample lost")
	}
	got := s.QuantileDuration(1)
	if got < 2900*time.Microsecond || got > 3100*time.Microsecond {
		t.Errorf("QuantileDuration(1) = %v, want ≈3ms", got)
	}
}
