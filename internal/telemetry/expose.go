package telemetry

import (
	"lambdanic/internal/monitor"
)

// Exposition renders the snapshot as a monitoring-engine histogram
// snapshot with the given ascending upper bounds (in seconds) and unit
// scale (seconds per histogram unit; 1e-9 for the nanosecond latency
// histograms). Native log-linear buckets are far finer than any
// exposition bound set, so each native bucket is attributed to the
// first bound at or above its upper edge.
func (s HistSnapshot) Exposition(bounds []float64, secondsPerUnit float64) monitor.HistogramSnapshot {
	out := monitor.HistogramSnapshot{
		Bounds:     bounds,
		Cumulative: make([]uint64, len(bounds)+1),
		Sum:        float64(s.Sum) * secondsPerUnit,
		Count:      s.Count,
	}
	bi := 0
	var cum uint64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		upper := float64(BucketUpper(b)) * secondsPerUnit
		for bi < len(bounds) && upper > bounds[bi] {
			out.Cumulative[bi] = cum
			bi++
		}
		cum += c
	}
	for ; bi <= len(bounds); bi++ {
		out.Cumulative[bi] = cum
	}
	return out
}

// Expose registers the histogram in the monitoring engine's registry
// under the given name, rendered through the fine latency bounds at
// scrape time. The histogram's units must be nanoseconds.
func (h *Histogram) Expose(reg *monitor.Registry, name, help string, labels map[string]string) error {
	return reg.HistogramFunc(name, help, labels, func() monitor.HistogramSnapshot {
		return h.Snapshot().Exposition(monitor.FineLatencyBuckets, 1e-9)
	})
}
