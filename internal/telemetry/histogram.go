// Package telemetry is the fleet telemetry plane: continuous, labeled,
// low-overhead measurement layered on the monitoring engine
// (internal/monitor). It provides
//
//   - Histogram: a lock-free sharded HDR-style latency histogram
//     (log-linear buckets, striped atomics, zero allocations per
//     Observe) replacing the monitoring engine's mutex histogram on the
//     request hot path;
//   - Windowed: sliding-window aggregation over a histogram plus an
//     error counter, yielding rolling quantiles, rates, and
//     availability;
//   - SLOTracker: declared objectives (availability, latency quantile)
//     evaluated into error-budget burn rates and reports;
//   - Collector: a fleet scraper that pulls per-worker registry
//     snapshots over the monitoring engine's HTTP surface and
//     aggregates them with nic/workload labels (lnicctl top, slo).
//
// Everything is clock-abstracted: no component reads a wall clock;
// every read receives an explicit timestamp (a duration since an
// epoch), so the same windows and SLO math run under the wall-clock
// daemons and under virtual time in internal/sim.
package telemetry

import (
	"math/bits"
	"math/rand/v2"
	"sync/atomic"
	"time"
)

// The histogram's value domain is int64 "units" — nanoseconds for the
// latency plane. Buckets are log-linear (HDR-style): subCount linear
// buckets per power-of-two octave, giving a bounded relative error of
// 1/subCount (~3.1%) across the whole range. Values are clamped to
// [0, maxValue]; with nanosecond units the range spans 1ns..~18min,
// which covers every latency this system can produce.
const (
	subBits  = 5
	subCount = 1 << subBits
	// maxExp bounds the bucket count: index(maxValue) is the last bucket.
	maxExp   = 35
	nBuckets = (maxExp + 1) * subCount
	// maxValue is the largest representable unit value (2^40-1 ns).
	maxValue = int64(1)<<(subBits+maxExp) - 1

	// numShards stripes the bucket array to keep concurrent writers off
	// each other's cache lines. Shards are picked per-Observe from the
	// runtime's per-thread fast random source, so no state is shared
	// between writers on distinct threads.
	numShards = 16
)

// bucketIndex maps a non-negative value to its log-linear bucket.
// Values 0..subCount-1 map identically; above that, each power-of-two
// octave is split into subCount linear buckets.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subCount {
		return int(u)
	}
	e := uint(bits.Len64(u)) - 1 - subBits
	return int((uint64(e)+1)<<subBits) + int(u>>e) - subCount
}

// BucketUpper returns the largest value that lands in bucket i — the
// bucket's inclusive upper bound.
func BucketUpper(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	e := uint(i/subCount) - 1
	sub := uint64(i%subCount) + subCount
	return int64((sub+1)<<e) - 1
}

// bucketMid returns the midpoint of bucket i, used to reconstruct an
// approximate sum from counts (bounded by the bucket resolution).
func bucketMid(i int) int64 {
	if i < subCount {
		return int64(i)
	}
	e := uint(i/subCount) - 1
	sub := uint64(i%subCount) + subCount
	return int64(sub<<e) + int64(1)<<e/2
}

// Histogram is a lock-free latency histogram: log-linear buckets
// striped over shards of atomic counters. Observe is wait-free, does
// not allocate, and never takes a lock; Snapshot merges the stripes
// into a cumulative view. The zero value is not ready — use
// NewHistogram.
type Histogram struct {
	counts []atomic.Uint64 // numShards * nBuckets, shard-major
}

// NewHistogram builds an empty histogram (~147 KiB of counters).
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, numShards*nBuckets)}
}

// Observe records one sample. Negative values clamp to zero, values
// beyond the representable range clamp to the top bucket.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	} else if v > maxValue {
		v = maxValue
	}
	// rand/v2's top-level generator is per-thread state in the runtime:
	// picking the stripe this way costs a few nanoseconds and shares
	// nothing between concurrent writers.
	shard := int(rand.Uint64() & (numShards - 1))
	h.counts[shard*nBuckets+bucketIndex(v)].Add(1)
}

// ObserveDuration records a latency sample in nanosecond units — the
// common case for the request-path histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistSnapshot is a point-in-time merged view of a histogram. Counts
// are per-bucket (non-cumulative); Sum is reconstructed from bucket
// midpoints and is exact to the bucket resolution (~3%).
type HistSnapshot struct {
	Counts []uint64 `json:"-"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
}

// Snapshot merges the shards into one view.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	h.SnapshotInto(&s)
	return s
}

// SnapshotInto merges the shards into dst, reusing dst's bucket slice —
// the windowed aggregator rolls snapshots frequently and reuses ring
// slots to avoid re-allocating the bucket array each slot.
func (h *Histogram) SnapshotInto(dst *HistSnapshot) {
	if cap(dst.Counts) < nBuckets {
		dst.Counts = make([]uint64, nBuckets)
	}
	dst.Counts = dst.Counts[:nBuckets]
	dst.Count, dst.Sum = 0, 0
	for b := 0; b < nBuckets; b++ {
		var c uint64
		for s := 0; s < numShards; s++ {
			c += h.counts[s*nBuckets+b].Load()
		}
		dst.Counts[b] = c
		if c > 0 {
			dst.Count += c
			dst.Sum += int64(c) * bucketMid(b)
		}
	}
}

// Sub returns the delta s − older: the observations recorded between
// the two snapshots. Buckets missing from either side read as zero.
func (s HistSnapshot) Sub(older HistSnapshot) HistSnapshot {
	out := HistSnapshot{Counts: make([]uint64, nBuckets)}
	for b := range out.Counts {
		var cur, old uint64
		if b < len(s.Counts) {
			cur = s.Counts[b]
		}
		if b < len(older.Counts) {
			old = older.Counts[b]
		}
		if cur > old {
			out.Counts[b] = cur - old
			out.Count += cur - old
			out.Sum += int64(cur-old) * bucketMid(b)
		}
	}
	return out
}

// Merge adds other's buckets into s in place — fleet-wide aggregation
// across workers.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	if len(s.Counts) < nBuckets {
		grown := make([]uint64, nBuckets)
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for b, c := range other.Counts {
		if c > 0 {
			s.Counts[b] += c
		}
	}
	s.Count += other.Count
	s.Sum += other.Sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) in units, interpolated
// linearly within the containing bucket. Returns 0 for an empty
// snapshot.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for b, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lower := int64(0)
			if b > 0 {
				lower = BucketUpper(b-1) + 1
			}
			upper := BucketUpper(b)
			frac := float64(target-cum) / float64(c)
			return lower + int64(frac*float64(upper-lower))
		}
		cum += c
	}
	return BucketUpper(nBuckets - 1)
}

// QuantileDuration is Quantile for nanosecond-unit histograms.
func (s HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q))
}

// AtOrBelow counts the observations ≤ v — the "good" side of a latency
// objective. The straddling bucket is interpolated.
func (s HistSnapshot) AtOrBelow(v int64) uint64 {
	if v < 0 {
		return 0
	}
	if v >= maxValue {
		return s.Count
	}
	idx := bucketIndex(v)
	var cum uint64
	for b := 0; b < idx; b++ {
		cum += s.Counts[b]
	}
	if c := s.Counts[idx]; c > 0 {
		lower := int64(0)
		if idx > 0 {
			lower = BucketUpper(idx-1) + 1
		}
		upper := BucketUpper(idx)
		if upper > lower {
			frac := float64(v-lower+1) / float64(upper-lower+1)
			cum += uint64(frac * float64(c))
		} else {
			cum += c
		}
	}
	return cum
}

// Mean returns the mean in units (bucket-midpoint approximation).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
