package telemetry

import (
	"runtime"
	"testing"

	"lambdanic/internal/monitor"
)

// The contended benchmarks force 8-way parallelism regardless of the
// host's core count so the mutex histogram's convoy shows even on
// small CI runners: RunParallel spawns GOMAXPROCS goroutines, so we
// pin GOMAXPROCS to 8 for the duration of the benchmark.
func with8Procs(b *testing.B, fn func(b *testing.B)) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	fn(b)
}

// BenchmarkHistogramObserveParallel is the acceptance bench: the
// lock-free sharded histogram under 8-goroutine contention. Compare
// against BenchmarkMutexHistogramObserveParallel.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	with8Procs(b, func(b *testing.B) {
		h := NewHistogram()
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(1)
			for pb.Next() {
				h.Observe(v)
				v = (v*2862933555777941757 + 3037000493) & maxValue
			}
		})
	})
}

// BenchmarkMutexHistogramObserveParallel is the baseline: the
// monitoring engine's mutex histogram under the same contention.
func BenchmarkMutexHistogramObserveParallel(b *testing.B) {
	with8Procs(b, func(b *testing.B) {
		h := monitor.NewHistogram(monitor.FineLatencyBuckets)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			v := int64(1)
			for pb.Next() {
				h.Observe(float64(v) * 1e-9)
				v = (v*2862933555777941757 + 3037000493) & maxValue
			}
		})
	})
}

// BenchmarkHistogramObserve is the uncontended single-goroutine cost.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkMutexHistogramObserve is the uncontended baseline.
func BenchmarkMutexHistogramObserve(b *testing.B) {
	h := monitor.NewHistogram(monitor.FineLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i) * 1e-9)
	}
}

// BenchmarkHistogramSnapshot prices the read path (scrape-time cost).
func BenchmarkHistogramSnapshot(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < 100000; i++ {
		h.Observe(int64(i))
	}
	var s HistSnapshot
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.SnapshotInto(&s)
	}
}

// BenchmarkWindowedObserve prices the windowed hot path (histogram +
// nothing else: rolling happens on read).
func BenchmarkWindowedObserve(b *testing.B) {
	w := NewWindowed(WindowConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Observe(1500, false)
	}
}
