package telemetry

import (
	"testing"
	"time"
)

func TestWindowedRollsOldDataOut(t *testing.T) {
	w := NewWindowed(WindowConfig{Slots: 4, SlotDuration: time.Second})
	now := time.Duration(0)
	w.Stats(now) // establish the epoch

	// 100 slow requests in the first second.
	for i := 0; i < 100; i++ {
		w.Observe(100*time.Millisecond, false)
	}
	now += time.Second
	st := w.Stats(now)
	if st.Count != 100 {
		t.Fatalf("count = %d, want 100", st.Count)
	}
	if st.P50 < 90*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈100ms", st.P50)
	}

	// Then only fast requests; after the window passes, the slow batch
	// must be gone from the rolling view.
	for slot := 0; slot < 5; slot++ {
		for i := 0; i < 100; i++ {
			w.Observe(time.Millisecond, false)
		}
		now += time.Second
		w.Stats(now)
	}
	st = w.Stats(now)
	if st.P99 > 10*time.Millisecond {
		t.Errorf("p99 = %v after slow batch aged out, want ≈1ms", st.P99)
	}
	if st.Count > 400 {
		t.Errorf("count = %d, want ≤400 (window holds 4 slots)", st.Count)
	}
	// Lifetime totals still see everything.
	if c, _ := w.Totals(); c != 600 {
		t.Errorf("lifetime count = %d, want 600", c)
	}
}

func TestWindowedAvailability(t *testing.T) {
	w := NewWindowed(WindowConfig{Slots: 4, SlotDuration: time.Second})
	w.Stats(0)
	for i := 0; i < 90; i++ {
		w.Observe(time.Millisecond, false)
	}
	for i := 0; i < 10; i++ {
		w.Observe(0, true)
	}
	st := w.Stats(time.Second)
	if st.Total != 100 || st.Errors != 10 {
		t.Fatalf("total=%d errors=%d, want 100/10", st.Total, st.Errors)
	}
	if st.Availability < 0.899 || st.Availability > 0.901 {
		t.Errorf("availability = %v, want 0.9", st.Availability)
	}
	if st.RatePerSec < 99 || st.RatePerSec > 101 {
		t.Errorf("rate = %v, want ≈100/s", st.RatePerSec)
	}
}

func TestWindowedIdleWindow(t *testing.T) {
	w := NewWindowed(WindowConfig{Slots: 2, SlotDuration: time.Second})
	w.Stats(0)
	st := w.Stats(5 * time.Second)
	if st.Availability != 1.0 {
		t.Errorf("idle availability = %v, want 1.0 (no traffic burns no budget)", st.Availability)
	}
	if st.Count != 0 || st.Total != 0 {
		t.Errorf("idle window has traffic: %+v", st)
	}
}

func TestWindowedLongGap(t *testing.T) {
	// A read after a long quiet gap must not materialize thousands of
	// boundaries, and old data must be out of the window.
	w := NewWindowed(WindowConfig{Slots: 4, SlotDuration: time.Second})
	w.Stats(0)
	w.Observe(time.Millisecond, false)
	st := w.Stats(1000 * time.Second)
	if st.Count != 0 {
		t.Errorf("count = %d after 1000s gap with a 4s window, want 0", st.Count)
	}
	// And the meter keeps working afterwards.
	w.Observe(2*time.Millisecond, false)
	st = w.Stats(1001 * time.Second)
	if st.Count != 1 {
		t.Errorf("count = %d after gap, want 1", st.Count)
	}
}

func TestWindowDefaults(t *testing.T) {
	w := NewWindowed(WindowConfig{})
	cfg := w.Config()
	if cfg.Slots != DefaultSlots || cfg.SlotDuration != DefaultSlotDuration {
		t.Errorf("defaults = %+v", cfg)
	}
	if got := cfg.Window(); got != time.Minute {
		t.Errorf("default window = %v, want 1m", got)
	}
}
