package mcl

import "testing"

const benchSource = `
object table[256] hot;
object inited[8];

const SLOTS = 32;

func setup() {
	var i int = 0;
	while (i < 256) {
		table[i] = i & 255;
		i = i + 1;
	}
	storew(inited, 0, 1);
}

func handler() int {
	if (loadw(inited, 0) == 0) { setup(); }
	var key int = hdr(7);
	var slot int = (key * 31) % SLOTS;
	var v int = table[slot * 8];
	if (v == 0) {
		emitbyte('M');
		return STATUS_DROP;
	}
	emitbyte(v);
	return STATUS_FORWARD;
}
`

func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compile(benchSource); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseOnly(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSource); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLexOnly(b *testing.B) {
	b.SetBytes(int64(len(benchSource)))
	for i := 0; i < b.N; i++ {
		if _, err := lexAll(benchSource); err != nil {
			b.Fatal(err)
		}
	}
}
