package mcl

import (
	"strings"
	"testing"
	"testing/quick"

	"lambdanic/internal/matchlambda"
	"lambdanic/internal/mcc"
	"lambdanic/internal/nicsim"
)

// compileAndLink compiles a source file with one entry function and
// links it as lambda ID 1.
func compileAndLink(t *testing.T, entry, src string) *mcc.Executable {
	t.Helper()
	spec, err := CompileLambda("test", 1, entry, src, nil)
	if err != nil {
		t.Fatalf("CompileLambda: %v", err)
	}
	p, err := matchlambda.Compose([]*matchlambda.LambdaSpec{spec}, matchlambda.ComposeOptions{})
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	exe, err := mcc.Link(p, mcc.LinkOptions{})
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return exe
}

// run executes the compiled lambda and returns status-ish payload.
func run(t *testing.T, exe *mcc.Executable, payload []byte) []byte {
	t.Helper()
	resp, err := exe.Execute(&nicsim.Request{LambdaID: 1, Payload: payload, Packets: 1})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return resp.Payload
}

func TestArithmeticAndEmit(t *testing.T) {
	exe := compileAndLink(t, "main", `
		func main() int {
			var a int = 6;
			var b int = 7;
			emitbyte(a * b);           // 42
			emitbyte((a + b) - 3);     // 10
			emitbyte(a << 2);          // 24
			emitbyte((a ^ b) & 15);    // 1
			return STATUS_FORWARD;
		}
	`)
	got := run(t, exe, nil)
	want := []byte{42, 10, 24, 1}
	if string(got) != string(want) {
		t.Errorf("output = %v, want %v", got, want)
	}
}

func TestWhileLoopAndComparison(t *testing.T) {
	exe := compileAndLink(t, "main", `
		func main() int {
			var i int = 0;
			var sum int = 0;
			while (i < 10) {
				sum = sum + i;
				i = i + 1;
			}
			emitbyte(sum); // 45
			return 1;
		}
	`)
	got := run(t, exe, nil)
	if len(got) != 1 || got[0] != 45 {
		t.Errorf("sum = %v, want 45", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
		func main() int {
			var x int = hdr(7);  // FieldArg0
			if (x == 0) { emitbyte('a'); }
			else if (x == 1) { emitbyte('b'); }
			else { emitbyte('c'); }
			return 1;
		}
	`
	exe := compileAndLink(t, "main", src)
	// hdr(7) is FieldArg0, populated by parsers; without headers it is
	// zero.
	if got := run(t, exe, nil); got[0] != 'a' {
		t.Errorf("branch = %q, want a", got)
	}
}

func TestBreakContinue(t *testing.T) {
	exe := compileAndLink(t, "main", `
		func main() int {
			var i int = 0;
			var acc int = 0;
			while (1) {
				i = i + 1;
				if (i == 3) { continue; }
				if (i > 5) { break; }
				acc = acc + i;
			}
			emitbyte(acc); // 1+2+4+5 = 12
			return 1;
		}
	`)
	if got := run(t, exe, nil); got[0] != 12 {
		t.Errorf("acc = %d, want 12", got[0])
	}
}

func TestDivModLowering(t *testing.T) {
	exe := compileAndLink(t, "main", `
		func main() int {
			emitbyte(47 / 5);   // 9
			emitbyte(47 % 5);   // 2
			emitbyte(0 / 3);    // 0
			emitbyte(200 % 7);  // 4
			return 1;
		}
	`)
	got := run(t, exe, nil)
	want := []byte{9, 2, 0, 4}
	if string(got) != string(want) {
		t.Errorf("div/mod = %v, want %v", got, want)
	}
}

func TestDivModMatchesGoProperty(t *testing.T) {
	exe := compileAndLink(t, "main", `
		func main() int {
			var a int = hdr(7);
			var b int = hdr(8);
			emitbyte(a / b);
			emitbyte(a % b);
			return 1;
		}
	`)
	f := func(a, b uint8) bool {
		if b == 0 {
			return true // divisor guard covered elsewhere
		}
		// Inject via RunStandalone to set header slots.
		status, out, _, err := exe.RunStandalone("main", nil, map[int]int64{
			mcc.FieldArg0: int64(a), mcc.FieldArg1: int64(b),
		})
		if err != nil || status != 1 || len(out) != 2 {
			return false
		}
		return out[0] == a/b && out[1] == a%b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestObjectsAndMemoryBuiltins(t *testing.T) {
	exe := compileAndLink(t, "main", `
		object buf[32] hot;
		object big[128];

		func main() int {
			buf[0] = 'H';
			buf[1] = 'i';
			storew(big, 0, 123456789);
			var v int = loadw(big, 0);
			if (v != 123456789) { return STATUS_DROP; }
			emit(buf, 0, 2);
			return STATUS_FORWARD;
		}
	`)
	if got := run(t, exe, nil); string(got) != "Hi" {
		t.Errorf("output = %q", got)
	}
}

func TestPayloadBuiltins(t *testing.T) {
	exe := compileAndLink(t, "main", `
		object scratch[64];

		func main() int {
			var n int = pktlen();
			if (n < 2) { return STATUS_DROP; }
			emitbyte(pkt(0) + pkt(1));
			memcpy(scratch, 0, pkt, 0, n);
			emit(scratch, 0, n);
			return STATUS_FORWARD;
		}
	`)
	got := run(t, exe, []byte{3, 4, 9})
	if len(got) != 4 || got[0] != 7 || got[1] != 3 || got[3] != 9 {
		t.Errorf("output = %v", got)
	}
}

func TestUserFunctionCallsAndHelpers(t *testing.T) {
	exe := compileAndLink(t, "main", `
		object state[8];

		func bump() {
			var v int = loadw(state, 0);
			storew(state, 0, v + 1);
		}

		func main() int {
			bump();
			bump();
			bump();
			emitbyte(loadw(state, 0));
			return 1;
		}
	`)
	if got := run(t, exe, nil); got[0] != 3 {
		t.Errorf("state = %d, want 3", got[0])
	}
}

func TestConstFoldingAndCharLiterals(t *testing.T) {
	exe := compileAndLink(t, "main", `
		const PAGE = 16 * 4;
		const MASK = (1 << 6) - 1;

		func main() int {
			emitbyte(PAGE & MASK);  // 0
			emitbyte(PAGE >> 2);    // 16
			emitbyte('A' + 1);      // 'B'
			emitbyte('\n');
			return 1;
		}
	`)
	got := run(t, exe, nil)
	want := []byte{0, 16, 'B', '\n'}
	if string(got) != string(want) {
		t.Errorf("output = %v, want %v", got, want)
	}
}

func TestHashBuiltin(t *testing.T) {
	exe := compileAndLink(t, "main", `
		object key[8];

		func main() int {
			key[0] = 'k';
			var h int = hash(key, 0, 8);
			if (h == 0) { return STATUS_DROP; }
			emitbyte(h & 255);
			return 1;
		}
	`)
	a := run(t, exe, nil)
	b := run(t, exe, nil)
	if len(a) != 1 || a[0] != b[0] {
		t.Errorf("hash unstable: %v vs %v", a, b)
	}
}

func TestLogicalOperators(t *testing.T) {
	exe := compileAndLink(t, "main", `
		func main() int {
			emitbyte(1 && 2);      // 1
			emitbyte(0 && 2);      // 0
			emitbyte(0 || 5);      // 1
			emitbyte(0 || 0);      // 0
			emitbyte(!3);          // 0
			emitbyte(!0);          // 1
			emitbyte(3 >= 3);      // 1
			emitbyte(2 <= 1);      // 0
			return 1;
		}
	`)
	got := run(t, exe, nil)
	want := []byte{1, 0, 1, 0, 0, 1, 1, 0}
	if string(got) != string(want) {
		t.Errorf("output = %v, want %v", got, want)
	}
}

func TestCommentsAndHexNumbers(t *testing.T) {
	exe := compileAndLink(t, "main", `
		// line comment
		/* block
		   comment */
		func main() int {
			emitbyte(0xFF & 0x2A); // hex
			return 1;
		}
	`)
	if got := run(t, exe, nil); got[0] != 0x2A {
		t.Errorf("hex = %#x", got[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"func main( {", `expected ")"`},
		{"object x[0];", "size must be positive"},
		{"func main() { var x int = ; }", "expected expression"},
		{"bogus", "expected object"},
		{"func main() { x = 1; }", "undeclared variable"},
		{"func main() { var x int = y; }", "undeclared identifier"},
		{"func main() { break; }", "break outside loop"},
		{"func main() { emit(nosuch, 0, 1); }", "must name an object"},
		{"func main() { hdr(1, 2); }", "expects 1 arguments"},
		{"func main() { var a int = nofn(); }", "unknown function"},
		{"func main() { var x int = 1; var x int = 2; }", "already declared"},
		{"func f() {} func f() {}", "duplicate function"},
		{"const C = 1; const C = 2;", "duplicate const"},
		{"const D = 1/0;", "division by zero"},
		{"func main() { /* unterminated", "unterminated"},
	}
	for _, tc := range cases {
		_, err := Compile(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Compile(%q) err = %v, want containing %q", tc.src, err, tc.want)
		}
	}
}

func TestRecursionRejectedAtLink(t *testing.T) {
	// The language has no recursion guard itself; the IR validator
	// rejects recursive call graphs (§3.1b).
	spec, err := CompileLambda("test", 1, "main", `
		func main() int { helper(); return 1; }
		func helper() { helper(); }
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = matchlambda.Compose([]*matchlambda.LambdaSpec{spec}, matchlambda.ComposeOptions{})
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Errorf("recursive program accepted: %v", err)
	}
}

func TestStaticAssertionsApplyToCompiledCode(t *testing.T) {
	// A constant out-of-bounds store in the source is caught by the
	// IR's compile-time assertions at link.
	spec, err := CompileLambda("test", 1, "main", `
		object tiny[4];
		func main() int {
			tiny[100] = 1;
			return 1;
		}
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := matchlambda.Compose([]*matchlambda.LambdaSpec{spec}, matchlambda.ComposeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mcc.Link(p, mcc.LinkOptions{}); err == nil {
		t.Error("statically out-of-bounds program linked")
	}
}

func TestCompileLambdaMissingEntry(t *testing.T) {
	if _, err := CompileLambda("x", 1, "main", `func other() {}`, nil); err == nil {
		t.Error("missing entry accepted")
	}
}

func TestWebServerInMCL(t *testing.T) {
	// A complete web-server lambda in the source language, the shape of
	// the paper's Listing 2.
	exe := compileAndLink(t, "web_server", `
		const PAGE_SIZE = 16;
		const PAGES = 3;

		object content[48] hot;
		object inited[8];

		func setup() {
			// First-request initialization of the page store.
			var p int = 0;
			while (p < PAGES) {
				var i int = 0;
				while (i < PAGE_SIZE) {
					content[p * PAGE_SIZE + i] = 'a' + p;
					i = i + 1;
				}
				p = p + 1;
			}
			storew(inited, 0, 1);
		}

		func web_server() int {
			if (loadw(inited, 0) == 0) { setup(); }
			var id int = hdr(7) % PAGES;
			emit(content, id * PAGE_SIZE, PAGE_SIZE);
			return STATUS_FORWARD;
		}
	`)
	status, out, _, err := exe.RunStandalone("web_server", nil, map[int]int64{mcc.FieldArg0: 4})
	if err != nil {
		t.Fatal(err)
	}
	if status != mcc.StatusForward {
		t.Errorf("status = %d", status)
	}
	// Page 4 % 3 = 1 -> sixteen 'b's.
	if len(out) != 16 || out[0] != 'b' || out[15] != 'b' {
		t.Errorf("page = %q", out)
	}
}

func TestParserNeverPanicsProperty(t *testing.T) {
	// Robustness: arbitrary source text must produce an error or a
	// parse tree, never a panic.
	f := func(src string) bool {
		_, _ = Compile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParserHandlesTruncationsOfValidProgram(t *testing.T) {
	src := `
		object buf[16] hot;
		const N = 4;
		func main() int {
			var i int = 0;
			while (i < N) { buf[i] = i * 2; i = i + 1; }
			emit(buf, 0, N);
			return STATUS_FORWARD;
		}
	`
	for i := 0; i <= len(src); i++ {
		_, _ = Compile(src[:i]) // must not panic at any prefix
	}
}
