package mcl

// AST node types for the Micro-C-like language. Fields carry the source
// line for error reporting during codegen.

// File is a parsed source file.
type File struct {
	Objects []*ObjectDecl
	Consts  []*ConstDecl
	Funcs   []*FuncDecl
}

// ObjectDecl declares a static memory object:
// `object name[size] hot;`.
type ObjectDecl struct {
	Name string
	Size int64
	// Hint is "", "hot", or "cold" (the D2 pragma).
	Hint string
	Line int
}

// ConstDecl binds a name to a compile-time constant.
type ConstDecl struct {
	Name  string
	Value Expr
	Line  int
}

// FuncDecl declares a zero-argument function; all functions return int
// (the status code convention of the Match+Lambda ABI).
type FuncDecl struct {
	Name string
	Body *Block
	Line int
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a `{ ... }` statement list with its own variable scope.
type Block struct {
	Stmts []Stmt
	Line  int
}

// VarDecl declares a local: `var x int = expr;`.
type VarDecl struct {
	Name string
	Init Expr // nil means zero
	Line int
}

// Assign assigns to a local: `x = expr;`.
type Assign struct {
	Name  string
	Value Expr
	Line  int
}

// StoreStmt writes one byte into an object: `obj[idx] = expr;`.
type StoreStmt struct {
	Object string
	Index  Expr
	Value  Expr
	Line   int
}

// If is a conditional with optional else.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // nil when absent
	Line int
}

// While is a loop.
type While struct {
	Cond Expr
	Body *Block
	Line int
}

// Break exits the innermost loop.
type Break struct{ Line int }

// Continue restarts the innermost loop.
type Continue struct{ Line int }

// Return exits the function with a status value.
type Return struct {
	Value Expr
	Line  int
}

// ExprStmt evaluates an expression for its side effects (builtin or
// function calls).
type ExprStmt struct {
	X    Expr
	Line int
}

func (*Block) stmtNode()     {}
func (*VarDecl) stmtNode()   {}
func (*Assign) stmtNode()    {}
func (*StoreStmt) stmtNode() {}
func (*If) stmtNode()        {}
func (*While) stmtNode()     {}
func (*Break) stmtNode()     {}
func (*Continue) stmtNode()  {}
func (*Return) stmtNode()    {}
func (*ExprStmt) stmtNode()  {}

// Expr is an expression node.
type Expr interface{ exprNode() }

// NumLit is an integer literal.
type NumLit struct {
	Value int64
	Line  int
}

// VarRef reads a local variable or named constant.
type VarRef struct {
	Name string
	Line int
}

// LoadExpr reads one byte from an object: `obj[idx]`.
type LoadExpr struct {
	Object string
	Index  Expr
	Line   int
}

// Unary is `-x` or `!x`.
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is a binary operation.
type Binary struct {
	Op   string
	L, R Expr
	Line int
}

// Call invokes a builtin or a user function (zero or more arguments;
// user functions take none and return nothing usable).
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*NumLit) exprNode()   {}
func (*VarRef) exprNode()   {}
func (*LoadExpr) exprNode() {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Call) exprNode()     {}
